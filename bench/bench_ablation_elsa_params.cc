// Ablation: the alpha/beta tuning knobs of ELSA's SLA-slack predictor
// (Eq. 2).  The paper introduces them as configurable but does not sweep
// them; this bench maps the design space on ResNet's PARIS server, plus
// the two extra baselines (JSQ, GreedyFastest = ELSA without Step A) that
// isolate the contribution of each ELSA component.
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader("Ablation: ELSA alpha/beta and scheduler components",
                     "ResNet, PARIS partitioning, fixed offered load = 90% "
                     "of PARIS+ELSA(1,1) capacity");

  core::TestbedConfig config;
  config.model_name = "resnet";
  const core::Testbed tb(config);
  const double sla_ms = TicksToMs(tb.sla_target());
  const auto plan = tb.PlanParis();
  auto search = bench::DefaultSearch();

  const auto nominal = core::LatencyBoundedThroughput(
      tb, plan, core::SchedulerKind::kElsa, sla_ms, search);
  const double rate = 0.9 * nominal.qps;
  std::cout << "PARIS+ELSA(alpha=1,beta=1) capacity: "
            << Table::Num(nominal.qps, 0) << " qps; probing at "
            << Table::Num(rate, 0) << " qps\n\n";

  core::RunOptions opt;
  opt.rate_qps = rate;
  opt.num_queries = bench::Queries(8000);

  core::Json points = core::Json::Array();
  auto add_point = [&points](const std::string& scheduler, double alpha,
                             double beta, const sim::ServerStats& stats) {
    core::Json p = core::ToJson(stats);
    p.Set("scheduler", scheduler);
    if (alpha > 0) {
      p.Set("alpha", alpha);
      p.Set("beta", beta);
    }
    points.Add(std::move(p));
  };

  Table t({"scheduler", "alpha", "beta", "p95 ms", "viol. %", "util %"});
  for (double alpha : {0.5, 1.0, 1.5, 2.0}) {
    for (double beta : {0.5, 1.0, 2.0}) {
      sched::ElsaParams params;
      params.alpha = alpha;
      params.beta = beta;
      auto scheduler = tb.MakeScheduler(core::SchedulerKind::kElsa, params);
      const auto stats =
          tb.Run(plan, *scheduler, opt).Stats(tb.sla_target());
      t.AddRow({"ELSA", Table::Num(alpha, 1), Table::Num(beta, 1),
                Table::Num(stats.p95_latency_ms, 2),
                Table::Num(100 * stats.sla_violation_rate, 2),
                Table::Num(100 * stats.mean_worker_utilization, 1)});
      add_point("ELSA", alpha, beta, stats);
    }
  }
  for (auto kind : {core::SchedulerKind::kGreedyFastest,
                    core::SchedulerKind::kJsq, core::SchedulerKind::kFifs}) {
    const auto stats = tb.RunStats(plan, kind, opt);
    t.AddRow({ToString(kind), "-", "-",
              Table::Num(stats.p95_latency_ms, 2),
              Table::Num(100 * stats.sla_violation_rate, 2),
              Table::Num(100 * stats.mean_worker_utilization, 1)});
    add_point(ToString(kind), /*alpha=*/0.0, /*beta=*/0.0, stats);
  }
  t.Print(std::cout);
  std::cout << "\nGreedyFastest = ELSA Step B only (no small-first slack "
               "rule); JSQ ignores the query's own cost; FIFS ignores "
               "heterogeneity entirely.\n";

  core::Json data = core::Json::Object();
  data.Set("model", config.model_name);
  data.Set("sla_ms", sla_ms);
  data.Set("offered_qps", rate);
  data.Set("points", std::move(points));
  bench::WriteReport("ablation_elsa_params", std::move(data));
  return 0;
}
