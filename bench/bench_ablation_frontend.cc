// Ablation: the frontend bottleneck of Section V.  The paper capped
// MobileNet at 24 GPCs because with 48 GPCs the 48x GPU(1) design became
// "completely bottlenecked by the frontend of the inference server".  This
// bench reproduces that observation: with a finite frontend, growing the
// backend from 24 to 48 GPCs stops helping; with an unconstrained frontend
// it scales.
#include "bench/bench_util.h"

#include "partition/homogeneous.h"

int main() {
  using namespace pe;
  bench::PrintHeader("Ablation: frontend bottleneck (Section V)",
                     "MobileNet, GPU(1) homogeneous server; latency-bounded "
                     "throughput");

  auto search = bench::DefaultSearch();

  core::Json points = core::Json::Array();
  Table t({"frontend", "GPCs", "instances", "qps", "scaling 24->48"});
  for (bool constrained : {false, true}) {
    double qps24 = 0.0;
    for (int gpcs : {24, 48}) {
      core::TestbedConfig config;
      config.model_name = "mobilenet";
      if (constrained) {
        config.frontend.enabled = true;
        config.frontend.lanes = 1;
        config.frontend.cost_per_query = UsToTicks(400.0);
      }
      core::Testbed tb(config);
      // Override the Table-I budget via a directly planned homogeneous
      // layout on an 8-GPU cluster.
      partition::HomogeneousPartitioner p(1);
      hw::Cluster cluster(8);
      const auto plan = p.Plan(cluster, gpcs);
      // GPU(1) servers cannot meet the strict SLA for the largest batches
      // even unloaded; this ablation is about *throughput scaling*, so use
      // a relaxed 3x tail bound.
      const double bound_ms = 3.0 * TicksToMs(tb.sla_target());
      const auto r = core::LatencyBoundedThroughput(
          tb, plan, core::SchedulerKind::kFifs, bound_ms, search);
      std::string scaling = "-";
      if (gpcs == 24) {
        qps24 = r.qps;
      } else if (qps24 > 0) {
        scaling = Table::Num(r.qps / qps24, 2) + "x";
      }
      t.AddRow({std::string(constrained ? "1 lane x 400us" : "unconstrained"),
                Table::Int(gpcs), Table::Int(plan.NumInstances()),
                Table::Num(r.qps, 0), scaling});
      core::Json point = core::ToJson(r);
      point.Set("frontend_constrained", constrained);
      point.Set("gpcs", gpcs);
      point.Set("instances", plan.NumInstances());
      points.Add(std::move(point));
    }
  }
  t.Print(std::cout);
  std::cout << "\nExpectation: ~2x scaling without a frontend cap; ~1x with "
               "it (the paper's reason for giving MobileNet only 24 GPCs).\n";

  core::Json data = core::Json::Object();
  data.Set("model", "mobilenet");
  data.Set("points", std::move(points));
  bench::WriteReport("ablation_frontend", std::move(data));
  return 0;
}
