// Ablation (extension): online elastic re-partitioning under workload
// drift.  A ResNet server faces a day-cycle style drift -- a small-batch
// phase, a large-batch phase, and back.  Three policies are compared:
//
//   * static-initial: PARIS planned once on the first phase's PDF
//     (what a statically provisioned paper deployment would run all day),
//   * static-oracle:  PARIS planned on the full-day mixture PDF,
//   * elastic:        TrafficEstimator + RepartitionController re-running
//                     PARIS at epoch boundaries.
//
// All three run as ONE continuous InferenceServer simulation; for the
// elastic policy each re-partitioning is a live reconfiguration event
// (drain in-flight work, carry queues over, hold dispatch for the
// downtime window), so the queue-build-up transient -- surfaced as the
// "stalled" column -- is measured rather than approximated away.
//
// Expectation: static-initial degrades badly in the drifted phase; elastic
// tracks each phase at the cost of a few reconfigurations (whose stall
// transient is now visible) and approaches or beats the mixture oracle.
#include "bench/bench_util.h"

#include "online/elastic_server.h"
#include "perf/model_zoo.h"
#include "profile/profiler.h"
#include "sched/elsa.h"
#include "workload/scenario.h"

int main() {
  using namespace pe;
  bench::PrintHeader("Ablation: online elastic re-partitioning (extension)",
                     "ResNet, drifting log-normal workload; ELSA scheduling "
                     "throughout; reconfigurations simulated live");

  profile::Profiler profiler;
  const auto model = perf::BuildResNet50();
  const auto profile =
      profiler.Profile(model, profile::ProfilerConfig::Default(64));
  perf::RooflineEngine engine;
  const SimTime sla = SecToTicks(1.5 * profile.LatencySec(7, 32));
  sim::LatencyFn actual = [engine, model](int g, int b) {
    return engine.LatencySec(model, g, b);
  };

  // Day cycle: small -> large -> small, 6000 queries per phase at 350 qps.
  const std::uint64_t trace_seed = 11;
  const std::uint64_t server_seed = online::kDefaultElasticSeed;
  workload::LogNormalBatchDist small(3.0, 0.6, 32);
  workload::LogNormalBatchDist large(18.0, 0.4, 32);
  workload::PoissonArrivals arrivals(350.0);
  Rng rng(trace_seed);
  const std::size_t phase = bench::SmokeMode() ? 1500 : 6000;
  const std::size_t queries_per_epoch = phase / 4;
  // Phased source: the batch distribution drifts across the day cycle.
  workload::PhasedTraceSource day_cycle(
      arrivals, {{&small, phase}, {&large, phase}, {&small, phase}});
  const auto trace = workload::Take(day_cycle, 3 * phase, rng);

  // Mixture PDF for the oracle.
  std::vector<double> mixture(32, 0.0);
  for (int b = 1; b <= 32; ++b) {
    mixture[static_cast<std::size_t>(b - 1)] =
        (2.0 * small.Pdf(b) + large.Pdf(b)) / 3.0;
  }
  workload::EmpiricalBatchDist mixture_dist(mixture);

  auto run_policy = [&](const workload::BatchDistribution& plan_dist,
                        online::ElasticConfig config,
                        const std::string& label) {
    online::RepartitionController controller(profile, hw::Cluster(8), 48,
                                             plan_dist, {}, config);
    online::ElasticServerSim sim(
        controller, profile,
        [&] { return std::make_unique<sched::ElsaScheduler>(profile, sla); },
        actual, sla, queries_per_epoch, server_seed);
    return std::pair<std::string, online::ElasticResult>(label,
                                                         sim.Run(trace));
  };

  online::ElasticConfig never;
  never.drift_threshold = 2.0;  // unreachable: never repartitions
  online::ElasticConfig adaptive;
  adaptive.drift_threshold = 0.15;
  adaptive.min_observations = std::min<std::size_t>(800, queries_per_epoch);

  std::vector<std::pair<std::string, online::ElasticResult>> results;
  results.push_back(run_policy(small, never, "static-initial"));
  results.push_back(run_policy(mixture_dist, never, "static-oracle"));
  results.push_back(run_policy(small, adaptive, "elastic"));

  Table t({"policy", "p95 ms", "viol. %", "mean ms", "stalled", "reconfigs"});
  for (const auto& [label, r] : results) {
    t.AddRow({label, Table::Num(r.total.p95_latency_ms, 2),
              Table::Num(100 * r.total.sla_violation_rate, 2),
              Table::Num(r.total.mean_latency_ms, 2),
              Table::Int(static_cast<long long>(r.total.reconfig_stalled)),
              Table::Int(r.reconfigurations)});
  }
  t.Print(std::cout);

  std::cout << "\nPer-epoch view (elastic policy):\n";
  Table e({"epoch", "layout", "p95 ms", "viol. %", "stalled", "reconfigured"});
  const auto& elastic = results.back().second;
  for (std::size_t i = 0; i < elastic.epochs.size(); ++i) {
    const auto& ep = elastic.epochs[i];
    partition::PartitionPlan tmp;
    tmp.instance_gpcs = ep.layout;
    e.AddRow({Table::Int(static_cast<long long>(i)), tmp.Summary(),
              Table::Num(ep.p95_ms, 2), Table::Num(100 * ep.violation_rate, 2),
              Table::Int(static_cast<long long>(ep.stalled)),
              ep.reconfigured ? "yes" : ""});
  }
  e.Print(std::cout);

  core::Json policies = core::Json::Array();
  for (const auto& [label, r] : results) {
    core::Json p = core::ToJson(r);
    p.Set("policy", label);
    policies.Add(std::move(p));
  }
  core::Json data = core::Json::Object();
  data.Set("model", "resnet");
  data.Set("queries_per_epoch", static_cast<std::uint64_t>(queries_per_epoch));
  data.Set("trace_seed", trace_seed);
  data.Set("server_seed", server_seed);
  data.Set("policies", std::move(policies));
  bench::WriteReport("ablation_online", std::move(data));
  return 0;
}
