// Ablation (extension): online elastic re-partitioning under workload
// drift.  A ResNet server faces a day-cycle style drift -- a small-batch
// phase, a large-batch phase, and back.  Three policies are compared:
//
//   * static-initial: PARIS planned once on the first phase's PDF
//     (what a statically provisioned paper deployment would run all day),
//   * static-oracle:  PARIS planned on the full-day mixture PDF,
//   * elastic:        TrafficEstimator + RepartitionController re-running
//                     PARIS at epoch boundaries, charging reconfiguration
//                     downtime.
//
// Expectation: static-initial degrades badly in the drifted phase; elastic
// tracks each phase at the cost of a few reconfigurations and approaches
// or beats the mixture oracle.
#include "bench/bench_util.h"

#include "online/elastic_server.h"
#include "perf/model_zoo.h"
#include "profile/profiler.h"
#include "sched/elsa.h"

int main() {
  using namespace pe;
  bench::PrintHeader("Ablation: online elastic re-partitioning (extension)",
                     "ResNet, drifting log-normal workload; ELSA scheduling "
                     "throughout");

  profile::Profiler profiler;
  const auto model = perf::BuildResNet50();
  const auto profile =
      profiler.Profile(model, profile::ProfilerConfig::Default(64));
  perf::RooflineEngine engine;
  const SimTime sla = SecToTicks(1.5 * profile.LatencySec(7, 32));
  sim::LatencyFn actual = [engine, model](int g, int b) {
    return engine.LatencySec(model, g, b);
  };

  // Day cycle: small -> large -> small, 6000 queries per phase at 350 qps.
  workload::LogNormalBatchDist small(3.0, 0.6, 32);
  workload::LogNormalBatchDist large(18.0, 0.4, 32);
  workload::PoissonArrivals arrivals(350.0);
  Rng rng(11);
  const auto trace = workload::GenerateDriftingTrace(
      arrivals, {{&small, 6000}, {&large, 6000}, {&small, 6000}}, rng);

  // Mixture PDF for the oracle.
  std::vector<double> mixture(32, 0.0);
  for (int b = 1; b <= 32; ++b) {
    mixture[static_cast<std::size_t>(b - 1)] =
        (2.0 * small.Pdf(b) + large.Pdf(b)) / 3.0;
  }
  workload::EmpiricalBatchDist mixture_dist(mixture);

  auto run_static = [&](const workload::BatchDistribution& plan_dist,
                        const std::string& label) {
    online::ElasticConfig config;
    config.drift_threshold = 2.0;  // unreachable: never repartitions
    online::RepartitionController controller(profile, hw::Cluster(8), 48,
                                             plan_dist, {}, config);
    online::ElasticServerSim sim(
        controller, profile,
        [&] { return std::make_unique<sched::ElsaScheduler>(profile, sla); },
        actual, sla, 1500);
    const auto r = sim.Run(trace);
    return std::pair<std::string, online::ElasticResult>(label, r);
  };

  std::vector<std::pair<std::string, online::ElasticResult>> results;
  results.push_back(run_static(small, "static-initial"));
  results.push_back(run_static(mixture_dist, "static-oracle"));
  {
    online::ElasticConfig config;
    config.drift_threshold = 0.15;
    config.min_observations = 800;
    online::RepartitionController controller(profile, hw::Cluster(8), 48,
                                             small, {}, config);
    online::ElasticServerSim sim(
        controller, profile,
        [&] { return std::make_unique<sched::ElsaScheduler>(profile, sla); },
        actual, sla, 1500);
    results.emplace_back("elastic", sim.Run(trace));
  }

  Table t({"policy", "p95 ms", "viol. %", "mean ms", "reconfigs"});
  for (const auto& [label, r] : results) {
    t.AddRow({label, Table::Num(r.total.p95_latency_ms, 2),
              Table::Num(100 * r.total.sla_violation_rate, 2),
              Table::Num(r.total.mean_latency_ms, 2),
              Table::Int(r.reconfigurations)});
  }
  t.Print(std::cout);

  std::cout << "\nPer-epoch view (elastic policy):\n";
  Table e({"epoch", "layout", "p95 ms", "viol. %", "reconfigured"});
  const auto& elastic = results.back().second;
  for (std::size_t i = 0; i < elastic.epochs.size(); ++i) {
    const auto& ep = elastic.epochs[i];
    std::string layout;
    partition::PartitionPlan tmp;
    tmp.instance_gpcs = ep.layout;
    layout = tmp.Summary();
    e.AddRow({Table::Int(static_cast<long long>(i)), layout,
              Table::Num(ep.p95_ms, 2), Table::Num(100 * ep.violation_rate, 2),
              ep.reconfigured ? "yes" : ""});
  }
  e.Print(std::cout);
  return 0;
}
