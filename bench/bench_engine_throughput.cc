// Engine-throughput trajectory bench: simulated queries per wall-clock
// second the discrete-event engine sustains, at W in {8, 64, 256}
// partitions x {single-model, 4-model mix} x {FIFS, ELSA}.
//
// Self-contained timing (std::chrono, no google-benchmark dependency).
// Every configuration runs twice: once on the fast engine (compiled
// profile lookups, incremental scheduler view, sorted arrival cursor) and
// once on the reference (pre-optimization) engine, so the report carries
// the speedup alongside the absolute throughput -- `engine_qps` is the
// fast engine's simulated-queries-per-second, the perf trajectory number
// CI tracks, and `speedup` is engine_qps / reference_qps on identical
// record streams (checked by hash here, record-by-record in
// engine_golden_test).
//
// Headline: `speedup_256_mix4_elsa`, the 256-partition mixed-trace ELSA
// configuration.  Run in Release without PE_BENCH_SMOKE for meaningful
// numbers.
//
// A fleet leg follows the single-server grid: the same 4-model mix served
// by a router-fronted fleet (core::FleetTestbed), measured end-to-end
// (routing + parallel per-server replay) with `--jobs` = hardware
// concurrency, and cross-checked record-by-record against a --jobs 1 run.
// `fleet_qps` is the CI-tracked fleet trajectory number.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/fleet_runner.h"
#include "profile/model_repertoire.h"
#include "sched/elsa.h"
#include "sched/fifs.h"
#include "sim/server.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace {

using namespace pe;  // NOLINT: bench-local convenience

const std::vector<std::string>& MixModels() {
  static const std::vector<std::string> kModels = {"resnet", "mobilenet",
                                                   "bert", "shufflenet"};
  return kModels;
}

// Heterogeneous layout of W partitions cycling the profiled MIG sizes.
std::vector<int> MakeLayout(int workers) {
  const int cycle[] = {1, 2, 3, 7};
  std::vector<int> layout;
  layout.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) layout.push_back(cycle[i % 4]);
  return layout;
}

// Offered load tuned to keep the server busy without unbounded queues:
// a fraction of the layout's aggregate service rate at the median batch.
double RateFor(const profile::ModelRepertoire& rep,
               const std::vector<int>& layout) {
  double capacity = 0.0;
  for (int gpcs : layout) {
    double per_model = 0.0;
    for (int m = 0; m < rep.size(); ++m) {
      per_model += rep.profile(m).ThroughputQps(gpcs, 8);
    }
    capacity += per_model / rep.size();
  }
  return 0.75 * capacity;
}

// Constant-rate scenario specs drain bit-identically to the legacy
// GenerateTrace / GenerateMixedTrace streams this bench tracked before
// the scenario API landed, so the trajectory numbers stay comparable.
workload::QueryTrace MakeTrace(bool mixed, double rate_qps, std::size_t n,
                               std::uint64_t seed) {
  workload::ScenarioSpec spec;
  spec.rate.base_qps = rate_qps;
  spec.max_batch = 32;
  const double medians[] = {6.0, 4.0, 9.0, 12.0};
  const double sigmas[] = {0.9, 0.8, 0.7, 0.9};
  const int components = mixed ? 4 : 1;
  for (int m = 0; m < components; ++m) {
    workload::ComponentSpec c;
    c.model_id = m;
    c.weight = 1.0;
    c.median = medians[m];
    c.sigma = sigmas[m];
    spec.components.push_back(c);
  }
  return workload::GenerateScenarioTrace(spec, n, seed);
}

// FNV-1a over the fields that define a record stream; equal hashes across
// the two engines back the speedup's apples-to-apples claim.
std::uint64_t HashRecords(const std::vector<sim::QueryRecord>& records) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& r : records) {
    mix(r.id);
    mix(static_cast<std::uint64_t>(r.batch));
    mix(static_cast<std::uint64_t>(r.model));
    mix(static_cast<std::uint64_t>(r.started));
    mix(static_cast<std::uint64_t>(r.finished));
    mix(static_cast<std::uint64_t>(r.worker));
    mix(static_cast<std::uint64_t>(r.model_swap ? 1 : 0));
  }
  return h;
}

struct Measurement {
  double qps = 0.0;
  std::uint64_t hash = 0;
};

// Best-of-`reps` wall-clock of a full Run (Reset + inject + drain).
Measurement Measure(sim::InferenceServer& server,
                    const workload::QueryTrace& trace, int reps) {
  Measurement best;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = server.Run(trace);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double qps =
        sec > 0.0 ? static_cast<double>(trace.size()) / sec : 0.0;
    if (qps > best.qps) best.qps = qps;
    best.hash = HashRecords(result.records);
  }
  return best;
}

}  // namespace

int main() {
  using pe::bench::SmokeMode;
  pe::bench::PrintHeader(
      "Engine throughput (simulated queries / wall-clock second)",
      "fast engine vs reference engine, identical record streams");

  const auto repertoire = profile::BuildZooRepertoire(MixModels());
  // Strictest per-model SLA rule across the mix (Section V shape).
  SimTime sla = 0;
  for (int m = 0; m < repertoire.size(); ++m) {
    const double sec = repertoire.profile(m).LatencySec(7, 32);
    sla = std::max(sla, SecToTicks(1.5 * sec));
  }

  const std::size_t num_queries = pe::bench::Queries(60000);
  const int reps = SmokeMode() ? 1 : 2;

  Table table({"workers", "workload", "sched", "queries", "engine_qps",
               "reference_qps", "speedup", "identical"});
  core::Json configs = core::Json::Array();
  double headline_speedup = 0.0;
  double headline_qps = 0.0;

  for (const int workers : {8, 64, 256}) {
    const auto layout = MakeLayout(workers);
    const double rate = RateFor(repertoire, layout);
    for (const bool mixed : {false, true}) {
      const auto trace =
          MakeTrace(mixed, rate, num_queries,
                    0x5EED0 + static_cast<std::uint64_t>(workers));
      for (const bool use_elsa : {false, true}) {
        Measurement fast;
        Measurement ref;
        for (const bool reference : {false, true}) {
          sim::ServerConfig sc;
          sc.partition_gpcs = layout;
          sc.sla_target = sla;
          sc.seed = 0xBE7C4;
          sc.reference_engine = reference;
          std::unique_ptr<sched::Scheduler> scheduler;
          if (use_elsa) {
            sched::ElsaParams params;
            params.compiled_lookups = !reference;
            scheduler = std::make_unique<sched::ElsaScheduler>(repertoire,
                                                               sla, params);
          } else {
            scheduler = std::make_unique<sched::FifsScheduler>();
          }
          sim::InferenceServer server(sc, repertoire, *scheduler);
          (reference ? ref : fast) = Measure(server, trace, reps);
        }
        const double speedup = ref.qps > 0.0 ? fast.qps / ref.qps : 0.0;
        const bool identical = fast.hash == ref.hash;
        const std::string workload = mixed ? "mix4" : "single";
        const std::string sched_name = use_elsa ? "ELSA" : "FIFS";
        table.AddRow({std::to_string(workers), workload, sched_name,
                      std::to_string(trace.size()), Table::Num(fast.qps, 0),
                      Table::Num(ref.qps, 0), Table::Num(speedup, 2),
                      identical ? "yes" : "NO"});
        core::Json entry = core::Json::Object();
        entry.Set("workers", workers);
        entry.Set("workload", workload);
        entry.Set("scheduler", sched_name);
        entry.Set("queries", static_cast<std::uint64_t>(trace.size()));
        entry.Set("engine_qps", fast.qps);
        entry.Set("reference_qps", ref.qps);
        entry.Set("speedup", speedup);
        entry.Set("identical", identical);
        configs.Add(std::move(entry));
        if (workers == 256 && mixed && use_elsa) {
          headline_speedup = speedup;
          headline_qps = fast.qps;
        }
        if (!identical) {
          std::cerr << "error: engines diverged at " << workers << "/"
                    << workload << "/" << sched_name << "\n";
          return 1;
        }
      }
    }
  }

  table.Print(std::cout);
  std::cout << "\nheadline (256 partitions, 4-model mix, ELSA): "
            << Table::Num(headline_qps, 0) << " simulated queries/sec, "
            << Table::Num(headline_speedup, 2)
            << "x over the reference engine\n";

  // Fleet leg: the same 4-model mix behind the router tier.  End-to-end
  // wall clock covers routing (serial) plus the parallel per-server
  // replay; the --jobs 1 rerun pins the bit-identity claim the fleet
  // driver makes (same per-server record streams at any jobs count).
  const int fleet_servers = SmokeMode() ? 4 : 16;
  core::FleetTestbedConfig fleet_config;
  for (const auto& name : MixModels()) {
    core::MixModelConfig m;
    m.model = name;
    m.share = 1.0 / static_cast<double>(MixModels().size());
    fleet_config.mix.models.push_back(m);
  }
  fleet_config.num_servers = fleet_servers;
  fleet_config.policy = fleet::RouterPolicy::kPowerOfTwo;
  const core::FleetTestbed fleet(fleet_config);
  const auto fleet_trace = fleet.GenerateFleetTrace(
      300.0 * fleet_servers, num_queries, /*seed=*/0x5EEDF);
  const int fleet_jobs = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  const auto hash_fleet = [](const fleet::FleetResult& r) {
    std::uint64_t h = 1469598103934665603ull;
    for (const auto& server : r.per_server) {
      h = (h ^ HashRecords(server.records)) * 1099511628211ull;
    }
    return h;
  };
  double fleet_qps = 0.0;
  std::uint64_t fleet_hash = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = fleet.Run(fleet_trace, fleet_jobs);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double qps =
        sec > 0.0 ? static_cast<double>(fleet_trace.size()) / sec : 0.0;
    fleet_qps = std::max(fleet_qps, qps);
    fleet_hash = hash_fleet(result);
  }
  const bool fleet_identical =
      hash_fleet(fleet.Run(fleet_trace, 1)) == fleet_hash;
  std::cout << "fleet (" << fleet_servers << " servers, po2c router, jobs="
            << fleet_jobs << "): " << Table::Num(fleet_qps, 0)
            << " simulated queries/sec, jobs-1 identical: "
            << (fleet_identical ? "yes" : "NO") << "\n";
  if (!fleet_identical) {
    std::cerr << "error: fleet records diverged between --jobs 1 and --jobs "
              << fleet_jobs << "\n";
    return 1;
  }

  core::Json data = core::Json::Object();
  data.Set("configs", std::move(configs));
  data.Set("engine_qps_256_mix4_elsa", headline_qps);
  data.Set("speedup_256_mix4_elsa", headline_speedup);
  data.Set("fleet_servers", fleet_servers);
  data.Set("fleet_jobs", fleet_jobs);
  data.Set("fleet_qps", fleet_qps);
  data.Set("fleet_identical_jobs1", fleet_identical);
  pe::bench::WriteReport("engine_throughput", std::move(data));
  return 0;
}
