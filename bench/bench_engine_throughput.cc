// Engine-throughput trajectory bench: simulated queries per wall-clock
// second the discrete-event engine sustains, at W in {8, 64, 256}
// partitions x {single-model, 4-model mix} x {FIFS, ELSA}.
//
// Self-contained timing (std::chrono, no google-benchmark dependency).
// Every configuration runs twice: once on the fast engine (compiled
// profile lookups, incremental scheduler view, sorted arrival cursor) and
// once on the reference (pre-optimization) engine, so the report carries
// the speedup alongside the absolute throughput -- `engine_qps` is the
// fast engine's simulated-queries-per-second, the perf trajectory number
// CI tracks, and `speedup` is engine_qps / reference_qps on identical
// record streams (checked by hash here, record-by-record in
// engine_golden_test).
//
// Headline: `speedup_256_mix4_elsa`, the 256-partition mixed-trace ELSA
// configuration.  Run in Release without PE_BENCH_SMOKE for meaningful
// numbers.
//
// A fleet-scaling leg follows the single-server grid: the same 4-model
// mix served by a sharded router-fronted fleet (core::FleetTestbed, 100
// servers / 1M queries in full mode), with every pipeline stage timed
// fast vs reference through one MeasureStage helper:
//   router_qps  batched (and, for hash, thread-chunked) RouteAll vs the
//               per-query virtual Route loop, per policy
//               (hash / least / po2c),
//   split_qps   two-pass arena SplitTrace vs the per-query lower_bound
//               reference split,
//   sim_qps     the bucketed-calendar fast engine replaying the split at
//               jobs=1 vs the reference (heap + per-event view refresh)
//               engine on the identical split -- `sim_speedup_jobs1` is
//               the CI-gated event-core trajectory number,
//   stats_sec   zero-copy k-way FleetResult::Stats vs the merged-copy
//               StatsReference,
//   fleet_qps   the end-to-end pipeline (route + split + simulate +
//               stats) at --jobs 1 and hardware concurrency, against the
//               all-reference pipeline (fleet_reference_qps) sharing the
//               same simulate stage -- `fleet_speedup` is the CI-gated
//               fleet trajectory number.
// Every fast stage is cross-checked against its reference output
// (assignment-for-assignment routing, record-for-record split,
// field-for-field stats, jobs-1-identical records); any divergence fails
// the bench.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/fleet_runner.h"
#include "profile/model_repertoire.h"
#include "sched/elsa.h"
#include "sched/fifs.h"
#include "sim/server.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace {

using namespace pe;  // NOLINT: bench-local convenience

const std::vector<std::string>& MixModels() {
  static const std::vector<std::string> kModels = {"resnet", "mobilenet",
                                                   "bert", "shufflenet"};
  return kModels;
}

// Heterogeneous layout of W partitions cycling the profiled MIG sizes.
std::vector<int> MakeLayout(int workers) {
  const int cycle[] = {1, 2, 3, 7};
  std::vector<int> layout;
  layout.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) layout.push_back(cycle[i % 4]);
  return layout;
}

// Offered load tuned to keep the server busy without unbounded queues:
// a fraction of the layout's aggregate service rate at the median batch.
double RateFor(const profile::ModelRepertoire& rep,
               const std::vector<int>& layout) {
  double capacity = 0.0;
  for (int gpcs : layout) {
    double per_model = 0.0;
    for (int m = 0; m < rep.size(); ++m) {
      per_model += rep.profile(m).ThroughputQps(gpcs, 8);
    }
    capacity += per_model / rep.size();
  }
  return 0.75 * capacity;
}

// Constant-rate scenario specs drain bit-identically to the adapter
// sources (ArrivalTraceSource / MixTraceSource) on the same seed, so the
// trajectory numbers stay comparable across bench revisions.
workload::QueryTrace MakeTrace(bool mixed, double rate_qps, std::size_t n,
                               std::uint64_t seed) {
  workload::ScenarioSpec spec;
  spec.rate.base_qps = rate_qps;
  spec.max_batch = 32;
  const double medians[] = {6.0, 4.0, 9.0, 12.0};
  const double sigmas[] = {0.9, 0.8, 0.7, 0.9};
  const int components = mixed ? 4 : 1;
  for (int m = 0; m < components; ++m) {
    workload::ComponentSpec c;
    c.model_id = m;
    c.weight = 1.0;
    c.median = medians[m];
    c.sigma = sigmas[m];
    spec.components.push_back(c);
  }
  return workload::GenerateScenarioTrace(spec, n, seed);
}

// FNV-1a over the fields that define a record stream; equal hashes across
// the two engines back the speedup's apples-to-apples claim.
std::uint64_t HashRecords(const std::vector<sim::QueryRecord>& records) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& r : records) {
    mix(r.id);
    mix(static_cast<std::uint64_t>(r.batch));
    mix(static_cast<std::uint64_t>(r.model));
    mix(static_cast<std::uint64_t>(r.started));
    mix(static_cast<std::uint64_t>(r.finished));
    mix(static_cast<std::uint64_t>(r.worker));
    mix(static_cast<std::uint64_t>(r.model_swap ? 1 : 0));
  }
  return h;
}

struct Measurement {
  double qps = 0.0;
  std::uint64_t hash = 0;
};

// Best-of-`reps` wall-clock of a full Run (Reset + inject + drain).
Measurement Measure(sim::InferenceServer& server,
                    const workload::QueryTrace& trace, int reps) {
  Measurement best;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = server.Run(trace);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double qps =
        sec > 0.0 ? static_cast<double>(trace.size()) / sec : 0.0;
    if (qps > best.qps) best.qps = qps;
    best.hash = HashRecords(result.records);
  }
  return best;
}

// Best-of-`reps` wall-clock seconds of fn().
template <typename Fn>
double TimeSec(Fn&& fn, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct StageResult {
  double fast_sec = 0.0;
  double reference_sec = 0.0;
  double fast_qps = 0.0;
  double reference_qps = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

// One fleet pipeline stage, fast vs its retained reference: best-of-reps
// both sides, identity cross-check, one table row.  Every stage (route,
// split, sim, stats) funnels through here so a new stage is one call.
template <typename FastFn, typename RefFn, typename SameFn>
StageResult MeasureStage(Table& table, const std::string& stage,
                         const std::string& variant, double n, int reps,
                         FastFn&& fast_fn, RefFn&& ref_fn, SameFn&& same) {
  StageResult r;
  r.fast_sec = TimeSec(fast_fn, reps);
  r.reference_sec = TimeSec(ref_fn, reps);
  r.fast_qps = r.fast_sec > 0.0 ? n / r.fast_sec : 0.0;
  r.reference_qps = r.reference_sec > 0.0 ? n / r.reference_sec : 0.0;
  r.speedup = r.reference_qps > 0.0 ? r.fast_qps / r.reference_qps : 0.0;
  r.identical = same();
  table.AddRow({stage, variant, Table::Num(r.fast_qps, 0),
                Table::Num(r.reference_qps, 0), Table::Num(r.speedup, 2),
                r.identical ? "yes" : "NO"});
  return r;
}

// Record-for-record equality of two trace splits (arena layout included).
bool SameSplit(const fleet::TraceSplit& a, const fleet::TraceSplit& b) {
  if (a.offsets != b.offsets || a.global_ids != b.global_ids ||
      a.arena.size() != b.arena.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.arena.size(); ++i) {
    const auto& x = a.arena[i];
    const auto& y = b.arena[i];
    if (x.id != y.id || x.arrival != y.arrival || x.batch != y.batch ||
        x.model_id != y.model_id) {
      return false;
    }
  }
  return true;
}

// Bit-exact field equality (doubles compared with ==, not a tolerance):
// the zero-copy aggregate must reproduce the reference arithmetic.
bool SameServerStats(const sim::ServerStats& a, const sim::ServerStats& b) {
  if (a.completed != b.completed || a.mean_latency_ms != b.mean_latency_ms ||
      a.p50_latency_ms != b.p50_latency_ms ||
      a.p95_latency_ms != b.p95_latency_ms ||
      a.p99_latency_ms != b.p99_latency_ms ||
      a.max_latency_ms != b.max_latency_ms ||
      a.mean_queue_delay_ms != b.mean_queue_delay_ms ||
      a.sla_violation_rate != b.sla_violation_rate ||
      a.achieved_qps != b.achieved_qps ||
      a.mean_worker_utilization != b.mean_worker_utilization ||
      a.reconfig_stalled != b.reconfig_stalled ||
      a.model_swaps != b.model_swaps || a.workers.size() != b.workers.size() ||
      a.models.size() != b.models.size()) {
    return false;
  }
  for (std::size_t w = 0; w < a.workers.size(); ++w) {
    const auto& x = a.workers[w];
    const auto& y = b.workers[w];
    if (x.index != y.index || x.gpcs != y.gpcs ||
        x.busy_ticks != y.busy_ticks || x.queries != y.queries ||
        x.utilization != y.utilization) {
      return false;
    }
  }
  for (std::size_t m = 0; m < a.models.size(); ++m) {
    const auto& x = a.models[m];
    const auto& y = b.models[m];
    if (x.model != y.model || x.completed != y.completed ||
        x.mean_latency_ms != y.mean_latency_ms ||
        x.p95_latency_ms != y.p95_latency_ms ||
        x.p99_latency_ms != y.p99_latency_ms ||
        x.sla_violation_rate != y.sla_violation_rate || x.swaps != y.swaps) {
      return false;
    }
  }
  return true;
}

bool SameFleetStats(const fleet::FleetStats& a, const fleet::FleetStats& b) {
  if (a.num_servers != b.num_servers ||
      a.routed_queries != b.routed_queries ||
      a.routed_per_server != b.routed_per_server ||
      a.per_server.size() != b.per_server.size() ||
      !SameServerStats(a.aggregate, b.aggregate)) {
    return false;
  }
  for (std::size_t s = 0; s < a.per_server.size(); ++s) {
    if (!SameServerStats(a.per_server[s], b.per_server[s])) return false;
  }
  return true;
}

}  // namespace

int main() {
  using pe::bench::SmokeMode;
  pe::bench::PrintHeader(
      "Engine throughput (simulated queries / wall-clock second)",
      "fast engine vs reference engine, identical record streams");

  const auto repertoire = profile::BuildZooRepertoire(MixModels());
  // Strictest per-model SLA rule across the mix (Section V shape).
  SimTime sla = 0;
  for (int m = 0; m < repertoire.size(); ++m) {
    const double sec = repertoire.profile(m).LatencySec(7, 32);
    sla = std::max(sla, SecToTicks(1.5 * sec));
  }

  const std::size_t num_queries = pe::bench::Queries(60000);
  const int reps = SmokeMode() ? 1 : 2;

  Table table({"workers", "workload", "sched", "queries", "engine_qps",
               "reference_qps", "speedup", "identical"});
  core::Json configs = core::Json::Array();
  double headline_speedup = 0.0;
  double headline_qps = 0.0;

  for (const int workers : {8, 64, 256}) {
    const auto layout = MakeLayout(workers);
    const double rate = RateFor(repertoire, layout);
    for (const bool mixed : {false, true}) {
      const auto trace =
          MakeTrace(mixed, rate, num_queries,
                    0x5EED0 + static_cast<std::uint64_t>(workers));
      for (const bool use_elsa : {false, true}) {
        Measurement fast;
        Measurement ref;
        for (const bool reference : {false, true}) {
          sim::ServerConfig sc;
          sc.partition_gpcs = layout;
          sc.sla_target = sla;
          sc.seed = 0xBE7C4;
          sc.reference_engine = reference;
          std::unique_ptr<sched::Scheduler> scheduler;
          if (use_elsa) {
            sched::ElsaParams params;
            params.compiled_lookups = !reference;
            scheduler = std::make_unique<sched::ElsaScheduler>(repertoire,
                                                               sla, params);
          } else {
            scheduler = std::make_unique<sched::FifsScheduler>();
          }
          sim::InferenceServer server(sc, repertoire, *scheduler);
          (reference ? ref : fast) = Measure(server, trace, reps);
        }
        const double speedup = ref.qps > 0.0 ? fast.qps / ref.qps : 0.0;
        const bool identical = fast.hash == ref.hash;
        const std::string workload = mixed ? "mix4" : "single";
        const std::string sched_name = use_elsa ? "ELSA" : "FIFS";
        table.AddRow({std::to_string(workers), workload, sched_name,
                      std::to_string(trace.size()), Table::Num(fast.qps, 0),
                      Table::Num(ref.qps, 0), Table::Num(speedup, 2),
                      identical ? "yes" : "NO"});
        core::Json entry = core::Json::Object();
        entry.Set("workers", workers);
        entry.Set("workload", workload);
        entry.Set("scheduler", sched_name);
        entry.Set("queries", static_cast<std::uint64_t>(trace.size()));
        entry.Set("engine_qps", fast.qps);
        entry.Set("reference_qps", ref.qps);
        entry.Set("speedup", speedup);
        entry.Set("identical", identical);
        configs.Add(std::move(entry));
        if (workers == 256 && mixed && use_elsa) {
          headline_speedup = speedup;
          headline_qps = fast.qps;
        }
        if (!identical) {
          std::cerr << "error: engines diverged at " << workers << "/"
                    << workload << "/" << sched_name << "\n";
          return 1;
        }
      }
    }
  }

  table.Print(std::cout);
  std::cout << "\nheadline (256 partitions, 4-model mix, ELSA): "
            << Table::Num(headline_qps, 0) << " simulated queries/sec, "
            << Table::Num(headline_speedup, 2)
            << "x over the reference engine\n";

  // ------------------------------------------------------------------
  // Fleet-scaling leg: the same 4-model mix behind a sharded router
  // tier, each pipeline stage timed fast vs its retained reference.
  const int fleet_servers = SmokeMode() ? 4 : 100;
  const std::size_t fleet_queries = pe::bench::Queries(1'000'000);
  core::FleetTestbedConfig fleet_config;
  for (const auto& name : MixModels()) {
    core::MixModelConfig m;
    m.model = name;
    m.share = 1.0 / static_cast<double>(MixModels().size());
    fleet_config.mix.models.push_back(m);
  }
  fleet_config.num_servers = fleet_servers;
  fleet_config.placement = fleet::PlacementKind::kSharded;
  fleet_config.replicas = SmokeMode() ? 2 : 8;
  fleet_config.policy = fleet::RouterPolicy::kPowerOfTwo;
  const core::FleetTestbed fleet(fleet_config);
  const auto& zoo = fleet.mix().repertoire();
  const auto fleet_trace = fleet.GenerateFleetTrace(
      300.0 * fleet_servers, fleet_queries, /*seed=*/0x5EEDF);
  const int fleet_jobs = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  const double fleet_n = static_cast<double>(fleet_trace.size());

  // Stage 1: routing.  Batched RouteAll (devirtualized loop, cached
  // replica sets, memoized backlog costs, thread-chunked for the
  // stateless hash policy) vs the per-query virtual Route loop, per
  // policy; the assignment vectors must match exactly.
  Table fleet_table(
      {"stage", "policy", "fast_qps", "reference_qps", "speedup", "identical"});
  core::Json router_qps = core::Json::Object();
  core::Json router_reference_qps = core::Json::Object();
  bool router_identical = true;
  // Routing alone is milliseconds per rep; take more reps than the
  // simulator-driving stages so best-of isn't noise-bound.
  const int route_reps = SmokeMode() ? 1 : 5;
  for (const auto policy :
       {fleet::RouterPolicy::kHash, fleet::RouterPolicy::kLeastLoaded,
        fleet::RouterPolicy::kPowerOfTwo}) {
    auto fast_router =
        fleet::MakeRouter(policy, fleet.placement(), &zoo, /*seed=*/0x70C5);
    std::vector<int> fast_assign;
    auto ref_router =
        fleet::MakeRouter(policy, fleet.placement(), &zoo, /*seed=*/0x70C5);
    std::vector<int> ref_assign;
    const StageResult r = MeasureStage(
        fleet_table, "route", ToString(policy), fleet_n, route_reps,
        [&] {
          fast_router->Reset();
          fast_assign = fast_router->RouteAll(fleet_trace, fleet_jobs);
        },
        [&] {
          ref_router->Reset();
          ref_assign.clear();
          ref_assign.reserve(fleet_trace.size());
          for (const auto& q : fleet_trace.queries()) {
            ref_assign.push_back(ref_router->Route(q));
          }
        },
        [&] { return fast_assign == ref_assign; });
    router_identical = router_identical && r.identical;
    router_qps.Set(ToString(policy), r.fast_qps);
    router_reference_qps.Set(ToString(policy), r.reference_qps);
  }

  // Stage 2: trace split.  Two-pass count-then-fill into the flat arena
  // (routing parallelized for stateless policies) vs the reference
  // per-query lower_bound remap; record-for-record identical sub-traces
  // (po2c, the planted fleet policy).
  auto split_router = fleet.cluster().MakeFleetRouter();
  fleet::TraceSplit fast_split;
  fleet::TraceSplit ref_split;
  const StageResult split_r = MeasureStage(
      fleet_table, "split", "po2c", fleet_n, reps,
      [&] {
        split_router->Reset();
        fast_split = fleet::SplitTrace(fleet_trace, *split_router,
                                       fleet.placement(), fleet_jobs);
      },
      [&] {
        split_router->Reset();
        ref_split = fleet::SplitTraceReference(fleet_trace, *split_router,
                                               fleet.placement());
      },
      [&] { return SameSplit(fast_split, ref_split); });
  const bool split_identical = split_r.identical;

  // Per-server record-stream hash: equal hashes across engine variants
  // (and jobs counts) back every apples-to-apples claim below.
  const auto hash_fleet = [](const fleet::FleetResult& r) {
    std::uint64_t h = 1469598103934665603ull;
    for (const auto& server : r.per_server) {
      h = (h ^ HashRecords(server.records)) * 1099511628211ull;
    }
    return h;
  };

  // Stage 3: simulate.  The fast event core (bucketed calendar, batched
  // same-instant dispatch, epoch-coalesced view refresh) vs the reference
  // engine (binary heap, per-event refresh) replaying the identical split
  // at jobs=1, so the speedup isolates per-event work, not thread
  // fan-out.  The reference fleet shares every config knob but the
  // engine, hence the same placement and per-server seeds.
  core::FleetTestbedConfig ref_fleet_config = fleet_config;
  ref_fleet_config.reference_engine = true;
  const core::FleetTestbed ref_fleet(ref_fleet_config);
  fleet::FleetResult sim_result;
  fleet::FleetResult sim_ref_result;
  const StageResult sim_r = MeasureStage(
      fleet_table, "sim", "jobs=1", fleet_n, reps,
      [&] { sim_result = fleet.cluster().SimulateSplit(fast_split, 1); },
      [&] {
        sim_ref_result = ref_fleet.cluster().SimulateSplit(fast_split, 1);
      },
      [&] { return hash_fleet(sim_result) == hash_fleet(sim_ref_result); });
  const bool sim_identical = sim_r.identical;

  // Stage 4: stats reduction over the shared simulate result.  Zero-copy
  // parallel Stats (k-way latency merge, no merged record vector) vs the
  // merged-copy StatsReference; every field must match bit for bit.
  fleet::FleetStats fast_stats;
  fleet::FleetStats ref_stats;
  const StageResult stats_r = MeasureStage(
      fleet_table, "stats", "-", fleet_n, reps,
      [&] {
        fast_stats = sim_result.Stats(fleet.sla_target(),
                                      /*warmup_fraction=*/0.1, fleet_jobs);
      },
      [&] {
        ref_stats = sim_result.StatsReference(fleet.sla_target(),
                                              /*warmup_fraction=*/0.1);
      },
      [&] { return SameFleetStats(fast_stats, ref_stats); });
  const bool stats_identical = stats_r.identical;

  // End to end: route + split + simulate + stats.  The fast pipeline at
  // --jobs 1 and hardware concurrency; the reference pipeline (per-query
  // Route inside SplitTraceReference, merged-copy StatsReference) shares
  // the simulate stage and jobs count, so the speedup isolates the
  // serial-stage work reduction.  The jobs-1 rerun pins the fleet
  // driver's bit-identity claim.
  std::uint64_t fleet_hash_jobs1 = 0;
  std::uint64_t fleet_hash_jobsn = 0;
  const auto fast_pipeline = [&](int jobs, std::uint64_t* hash_out) {
    auto router = fleet.cluster().MakeFleetRouter();
    const auto split =
        fleet::SplitTrace(fleet_trace, *router, fleet.placement(), jobs);
    const auto result = fleet.cluster().SimulateSplit(split, jobs);
    if (hash_out != nullptr) *hash_out = hash_fleet(result);
    const auto stats =
        result.Stats(fleet.sla_target(), /*warmup_fraction=*/0.1, jobs);
    (void)stats;
  };
  const double fast_sec_jobs1 =
      TimeSec([&] { fast_pipeline(1, &fleet_hash_jobs1); }, reps);
  const double fast_sec_jobsn =
      TimeSec([&] { fast_pipeline(fleet_jobs, &fleet_hash_jobsn); }, reps);
  const double ref_pipeline_sec = TimeSec(
      [&] {
        auto router = fleet.cluster().MakeFleetRouter();
        const auto split = fleet::SplitTraceReference(fleet_trace, *router,
                                                      fleet.placement());
        const auto result = fleet.cluster().SimulateSplit(split, fleet_jobs);
        const auto stats = result.StatsReference(fleet.sla_target(),
                                                 /*warmup_fraction=*/0.1);
        (void)stats;
      },
      reps);
  const double fleet_qps = fast_sec_jobsn > 0.0 ? fleet_n / fast_sec_jobsn
                                                : 0.0;
  const double fleet_qps_jobs1 =
      fast_sec_jobs1 > 0.0 ? fleet_n / fast_sec_jobs1 : 0.0;
  const double fleet_reference_qps =
      ref_pipeline_sec > 0.0 ? fleet_n / ref_pipeline_sec : 0.0;
  const double fleet_speedup =
      fleet_reference_qps > 0.0 ? fleet_qps / fleet_reference_qps : 0.0;
  const bool fleet_identical = fleet_hash_jobs1 == fleet_hash_jobsn;

  std::cout << "\nfleet scaling (" << fleet_servers
            << " servers, sharded, po2c, " << fleet_trace.size()
            << " queries, jobs=" << fleet_jobs << "):\n";
  fleet_table.Print(std::cout);
  std::cout << "sim stage (jobs=1): " << Table::Num(sim_r.speedup, 2)
            << "x over the reference event core\n";
  std::cout << "fleet pipeline: " << Table::Num(fleet_qps, 0)
            << " queries/sec end-to-end ("
            << Table::Num(fleet_qps_jobs1, 0) << " at jobs=1), "
            << Table::Num(fleet_speedup, 2)
            << "x over the reference pipeline, jobs-1 identical: "
            << (fleet_identical ? "yes" : "NO") << "\n";
  if (!router_identical || !split_identical || !sim_identical ||
      !stats_identical) {
    std::cerr << "error: a fleet fast path diverged from its reference"
              << " (router " << router_identical << ", split "
              << split_identical << ", sim " << sim_identical << ", stats "
              << stats_identical << ")\n";
    return 1;
  }
  if (!fleet_identical) {
    std::cerr << "error: fleet records diverged between --jobs 1 and --jobs "
              << fleet_jobs << "\n";
    return 1;
  }

  // ------------------------------------------------------------------
  // Chaos leg: the same fleet under a deterministic serverloss schedule
  // (fleet/fault.h), with and without degraded-capacity repartition.
  // Gate 1: an EMPTY fault plan must reproduce the batch pipeline's
  // record hash bit for bit -- the fault driver costs nothing when
  // nothing breaks.  Gate 2: conservation -- every injected query ends
  // terminal (completed + failed + shed == injected), so a crash sheds
  // loudly instead of losing work.
  const auto empty_plan_run =
      fleet.RunWithFaults(fleet_trace, fleet::FaultPlan{}, fleet_jobs);
  const bool chaos_identity_ok =
      hash_fleet(empty_plan_run) == fleet_hash_jobsn;

  // Crash ~10% of the fleet permanently, with an end-to-end deadline so
  // overload behind the outage sheds instead of queueing forever.
  const std::string chaos_spec =
      "serverloss:count=" + std::to_string(std::max(1, fleet_servers / 10)) +
      ",deadline-ms=250";
  const auto chaos_plan =
      fleet.ResolveFaults(fleet::ParseFaultRef(chaos_spec), fleet_trace);
  auto chaos_routing_only = chaos_plan;
  chaos_routing_only.repartition = false;
  const auto chaos_run = fleet.RunWithFaults(fleet_trace, chaos_plan,
                                             fleet_jobs);
  const auto chaos_no_repart =
      fleet.RunWithFaults(fleet_trace, chaos_routing_only, fleet_jobs);
  const auto& chaos = chaos_run.fault;
  const bool chaos_conserved =
      chaos.completed + chaos.failed + chaos.shed == chaos.injected &&
      chaos.injected == fleet_trace.size();
  double chaos_min_availability = 1.0;
  for (const double a : chaos.availability) {
    chaos_min_availability = std::min(chaos_min_availability, a);
  }
  // Incident-window p99 vs the fault-free fleet p99: what the outage
  // costs the survivors' tail while it is in progress.
  const double chaos_p99_degradation =
      fast_stats.aggregate.p99_latency_ms > 0.0
          ? chaos.p99_incident_ms / fast_stats.aggregate.p99_latency_ms
          : 0.0;

  std::cout << "chaos (" << chaos_spec << "): "
            << chaos.completed << "/" << chaos.injected << " completed, "
            << chaos.shed << " shed ("
            << chaos_no_repart.fault.shed << " without repartition), "
            << chaos.failed << " failed, min availability "
            << Table::Num(chaos_min_availability, 3)
            << ", chaos_p99_degradation "
            << Table::Num(chaos_p99_degradation, 2)
            << "x, fault-free leg identical: "
            << (chaos_identity_ok ? "yes" : "NO") << "\n";
  if (!chaos_identity_ok) {
    std::cerr << "error: empty fault plan diverged from the batch pipeline\n";
    return 1;
  }
  if (!chaos_conserved) {
    std::cerr << "error: chaos leg lost queries (completed " << chaos.completed
              << " + failed " << chaos.failed << " + shed " << chaos.shed
              << " != injected " << chaos.injected << ")\n";
    return 1;
  }
  if (chaos_min_availability >= 1.0) {
    std::cerr << "error: chaos leg crashed nothing (min availability 1.0)\n";
    return 1;
  }

  // Degraded-capacity comparison: the repartition controller replans a
  // survivor's lane mix from its renormalized model shares, so it can
  // only express itself where servers co-host models.  Densify the
  // placement (two models per server), crash 3/4 of the fleet with a
  // tight deadline so the survivors genuinely overload, and run the
  // identical schedule with and without repartition; failover routing
  // alone must shed measurably more than routing + repartition.
  core::FleetTestbedConfig dense_config = fleet_config;
  dense_config.replicas = std::max(2, fleet_servers / 2);
  const core::FleetTestbed dense(dense_config);
  const auto dense_trace = dense.GenerateFleetTrace(
      300.0 * fleet_servers, fleet_queries, /*seed=*/0x5EEDF);
  const std::string degraded_spec =
      "serverloss:count=" + std::to_string(std::max(1, 3 * fleet_servers / 4)) +
      ",deadline-ms=100";
  const auto degraded_plan =
      dense.ResolveFaults(fleet::ParseFaultRef(degraded_spec), dense_trace);
  auto degraded_routing_only = degraded_plan;
  degraded_routing_only.repartition = false;
  const auto degraded_run =
      dense.RunWithFaults(dense_trace, degraded_plan, fleet_jobs);
  const auto degraded_norep =
      dense.RunWithFaults(dense_trace, degraded_routing_only, fleet_jobs);
  const auto& degraded = degraded_run.fault;
  const std::uint64_t degraded_shed_routing_only = degraded_norep.fault.shed;
  const bool degraded_conserved =
      degraded.completed + degraded.failed + degraded.shed ==
          degraded.injected &&
      degraded_norep.fault.completed + degraded_norep.fault.failed +
              degraded_norep.fault.shed ==
          degraded_norep.fault.injected;

  std::cout << "degraded capacity (" << degraded_spec << ", replicas="
            << dense_config.replicas << "): repartition shed " << degraded.shed
            << " vs routing-only " << degraded_shed_routing_only << " ("
            << degraded.repartitions << " repartitions)\n";
  if (!degraded_conserved) {
    std::cerr << "error: degraded-capacity leg lost queries\n";
    return 1;
  }
  // Smoke's 4-server fleet is too small for a stable margin; the full
  // 100-server run must show repartition strictly ahead.
  if (SmokeMode() ? degraded.shed > degraded_shed_routing_only
                  : degraded.shed >= degraded_shed_routing_only) {
    std::cerr << "error: failover repartition did not lower shed ("
              << degraded.shed << " vs " << degraded_shed_routing_only
              << " routing-only)\n";
    return 1;
  }

  core::Json data = core::Json::Object();
  data.Set("configs", std::move(configs));
  data.Set("engine_qps_256_mix4_elsa", headline_qps);
  data.Set("speedup_256_mix4_elsa", headline_speedup);
  data.Set("fleet_servers", fleet_servers);
  data.Set("fleet_queries", static_cast<std::uint64_t>(fleet_trace.size()));
  data.Set("fleet_jobs", fleet_jobs);
  data.Set("router_qps", std::move(router_qps));
  data.Set("router_reference_qps", std::move(router_reference_qps));
  data.Set("router_identical", router_identical);
  data.Set("split_qps", split_r.fast_qps);
  data.Set("split_reference_qps", split_r.reference_qps);
  data.Set("split_identical", split_identical);
  data.Set("sim_qps", sim_r.fast_qps);
  data.Set("sim_reference_qps", sim_r.reference_qps);
  data.Set("sim_speedup_jobs1", sim_r.speedup);
  data.Set("sim_identical", sim_identical);
  data.Set("stats_sec", stats_r.fast_sec);
  data.Set("stats_reference_sec", stats_r.reference_sec);
  data.Set("stats_identical", stats_identical);
  data.Set("fleet_qps", fleet_qps);
  data.Set("fleet_qps_jobs1", fleet_qps_jobs1);
  data.Set("fleet_reference_qps", fleet_reference_qps);
  data.Set("fleet_speedup", fleet_speedup);
  data.Set("fleet_identical_jobs1", fleet_identical);
  data.Set("chaos_spec", chaos_spec);
  data.Set("chaos_identity_ok", chaos_identity_ok);
  data.Set("chaos_injected", chaos.injected);
  data.Set("chaos_completed", chaos.completed);
  data.Set("chaos_failed", chaos.failed);
  data.Set("chaos_shed", chaos.shed);
  data.Set("chaos_shed_no_repartition", chaos_no_repart.fault.shed);
  data.Set("chaos_retried", chaos.retried);
  data.Set("chaos_rerouted", chaos.rerouted);
  data.Set("chaos_repartitions", chaos.repartitions);
  data.Set("chaos_min_availability", chaos_min_availability);
  data.Set("chaos_p99_incident_ms", chaos.p99_incident_ms);
  data.Set("chaos_p99_degradation", chaos_p99_degradation);
  data.Set("degraded_spec", degraded_spec);
  data.Set("degraded_replicas", dense_config.replicas);
  data.Set("degraded_injected", degraded.injected);
  data.Set("degraded_completed", degraded.completed);
  data.Set("degraded_shed_repartition", degraded.shed);
  data.Set("degraded_shed_routing_only", degraded_shed_routing_only);
  data.Set("degraded_repartitions", degraded.repartitions);
  pe::bench::WriteReport("engine_throughput", std::move(data));
  return 0;
}
