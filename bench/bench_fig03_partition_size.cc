// Figure 3: effect of GPU partition size (GPU(1)..GPU(7)) on compute
// utilization and latency at batch size 8, for MobileNet / ResNet / BERT.
//
// Paper expectation: utilization falls monotonically with partition size;
// latency rises as partitions shrink, mildly for MobileNet and most
// steeply for BERT (latency is reported normalized to GPU(7), as in the
// paper's right axis).
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader(
      "Figure 3: utilization & latency vs partition size (batch 8)",
      "latency normalized to GPU(7); utilization in percent");

  for (const std::string model : {"mobilenet", "resnet", "bert"}) {
    core::TestbedConfig config;
    config.model_name = model;
    const core::Testbed tb(config);
    const auto& profile = tb.profile();

    Table t({"partition", "utilization %", "latency (norm)", "latency (ms)"});
    const double base = profile.LatencySec(7, 8);
    for (int gpcs : {1, 2, 3, 4, 7}) {
      t.AddRow({"GPU(" + std::to_string(gpcs) + ")",
                Table::Num(100.0 * profile.Utilization(gpcs, 8), 1),
                Table::Num(profile.LatencySec(gpcs, 8) / base, 2),
                Table::Num(1e3 * profile.LatencySec(gpcs, 8), 2)});
    }
    std::cout << "--- " << model << " ---\n";
    t.Print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
