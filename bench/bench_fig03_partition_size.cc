// Figure 3: effect of GPU partition size (GPU(1)..GPU(7)) on compute
// utilization and latency at batch size 8, for MobileNet / ResNet / BERT.
//
// Paper expectation: utilization falls monotonically with partition size;
// latency rises as partitions shrink, mildly for MobileNet and most
// steeply for BERT (latency is reported normalized to GPU(7), as in the
// paper's right axis).
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader(
      "Figure 3: utilization & latency vs partition size (batch 8)",
      "latency normalized to GPU(7); utilization in percent");

  constexpr int kBatch = 8;
  core::Json models = core::Json::Array();
  for (const std::string model : {"mobilenet", "resnet", "bert"}) {
    core::TestbedConfig config;
    config.model_name = model;
    const core::Testbed tb(config);
    const auto& profile = tb.profile();

    Table t({"partition", "utilization %", "latency (norm)", "latency (ms)"});
    core::Json points = core::Json::Array();
    const double base = profile.LatencySec(7, kBatch);
    for (int gpcs : {1, 2, 3, 4, 7}) {
      const double util = profile.Utilization(gpcs, kBatch);
      const double latency_sec = profile.LatencySec(gpcs, kBatch);
      t.AddRow({"GPU(" + std::to_string(gpcs) + ")",
                Table::Num(100.0 * util, 1),
                Table::Num(latency_sec / base, 2),
                Table::Num(1e3 * latency_sec, 2)});
      core::Json p = core::Json::Object();
      p.Set("partition_gpcs", gpcs);
      p.Set("utilization", util);
      p.Set("latency_normalized", latency_sec / base);
      p.Set("latency_ms", 1e3 * latency_sec);
      points.Add(std::move(p));
    }
    std::cout << "--- " << model << " ---\n";
    t.Print(std::cout);
    std::cout << '\n';

    core::Json m = core::Json::Object();
    m.Set("model", model);
    m.Set("batch", kBatch);
    m.Set("points", std::move(points));
    models.Add(std::move(m));
  }

  core::Json data = core::Json::Object();
  data.Set("models", std::move(models));
  bench::WriteReport("fig03_partition_size", std::move(data));
  return 0;
}
