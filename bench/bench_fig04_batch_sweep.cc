// Figure 4: effect of batch size (1..64) on (a) GPU utilization and
// (b) average latency, per partition size, for MobileNet / ResNet / BERT.
// The MaxBatch_knee of GPU(1) (the paper's blue diamond) is marked with *.
#include "bench/bench_util.h"

#include "profile/profile_table.h"

int main() {
  using namespace pe;
  bench::PrintHeader("Figure 4: utilization (a) and latency (b) vs batch size",
                     "rows: batch; columns: partition size; knee of GPU(1) "
                     "marked with *");

  for (const std::string model : {"mobilenet", "resnet", "bert"}) {
    core::TestbedConfig config;
    config.model_name = model;
    const core::Testbed tb(config);
    const auto& profile = tb.profile();
    const int knee1 =
        profile.MaxBatchKnee(1, tb.config().paris.knee_threshold,
                             tb.config().paris.knee_mode);

    Table util({"batch", "GPU(1) %", "GPU(2) %", "GPU(3) %", "GPU(4) %",
                "GPU(7) %"});
    Table lat({"batch", "GPU(1) ms", "GPU(2) ms", "GPU(3) ms", "GPU(4) ms",
               "GPU(7) ms"});
    for (int b : {1, 2, 4, 8, 16, 32, 64}) {
      const std::string mark = (b == knee1) ? "*" : "";
      std::vector<std::string> urow = {Table::Int(b) + mark};
      std::vector<std::string> lrow = {Table::Int(b) + mark};
      for (int g : {1, 2, 3, 4, 7}) {
        urow.push_back(Table::Num(100.0 * profile.Utilization(g, b), 1));
        lrow.push_back(Table::Num(1e3 * profile.LatencySec(g, b), 2));
      }
      util.AddRow(urow);
      lat.AddRow(lrow);
    }
    std::cout << "--- " << model << " (a) GPU utilization ---\n";
    util.Print(std::cout);
    std::cout << "--- " << model << " (b) latency ---\n";
    lat.Print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
