// Figure 7: how PARIS splits the batch-size distribution into contiguous
// segments at the MaxBatch_knee boundaries, assigning the n-th smallest
// segment to the n-th smallest partition size.
#include "bench/bench_util.h"

#include "partition/paris.h"

int main() {
  using namespace pe;
  bench::PrintHeader(
      "Figure 7: knee-derived batch segments over the batch-size PDF",
      "default workload: log-normal(median 6, sigma 0.9), max batch 32");

  for (const std::string& model : bench::PaperModels()) {
    core::TestbedConfig config;
    config.model_name = model;
    const core::Testbed tb(config);
    partition::ParisPartitioner paris(tb.profile(), tb.dist(),
                                      tb.config().paris);
    const auto d = paris.Derive(tb.table1().gpc_budget);

    Table t({"partition", "MaxBatch_knee", "segment", "PDF mass %",
             "demand R_k"});
    int prev = 0;
    const int dist_max = tb.dist().max_batch();
    for (std::size_t k = 0; k < d.partition_sizes.size(); ++k) {
      int hi = std::min(d.knees[k], dist_max);
      if (k + 1 == d.partition_sizes.size()) hi = dist_max;
      double mass = 0.0;
      for (int b = prev + 1; b <= hi; ++b) mass += tb.dist().Pdf(b);
      // Built with append rather than chained operator+ to dodge the GCC 12
      // -Wrestrict false positive on temporary-string concatenation (PR105329).
      std::string segment = "(empty)";
      if (prev + 1 <= hi) {
        segment = "[";
        segment += std::to_string(prev + 1);
        segment += "..";
        segment += std::to_string(hi);
        segment += "]";
      }
      t.AddRow({"GPU(" + std::to_string(d.partition_sizes[k]) + ")",
                Table::Int(d.knees[k]), segment, Table::Num(100 * mass, 1),
                Table::Num(d.ratios[k] * 1e3, 3) + "e-3"});
      prev = std::max(prev, hi);
    }
    std::cout << "--- " << model << " ---\n";
    t.Print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
