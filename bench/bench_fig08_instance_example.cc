// Figure 8: the paper's worked example of deriving the number of instances
// per partition size.  Two GPU types with knees B1=2 / B2=4, batch PDF
// {20%, 20%, 40%, 20%}, and the profiled throughputs of the paper's table:
// small GPU 40/20 queries/sec at batch 1/2, large GPU 30/20 at batch 3/4.
// Expected demand ratio: 1.5 small : 2.33 large (the paper rounds the
// aggregate to "2.3 large GPUs").
#include "bench/bench_util.h"

#include "partition/paris.h"
#include "profile/profile_table.h"
#include "workload/batch_dist.h"

int main() {
  using namespace pe;
  bench::PrintHeader("Figure 8: PARIS instance-count derivation example",
                     "reproduces the paper's 1.5 : 2.3 small:large ratio");

  profile::ProfileTable profile("fig8", {1, 7}, {1, 2, 3, 4});
  profile.Set(1, 1, {1.0 / 40.0, 0.5});
  profile.Set(1, 2, {1.0 / 20.0, 0.85});
  profile.Set(1, 3, {1.0 / 15.0, 0.9});
  profile.Set(1, 4, {1.0 / 10.0, 0.95});
  profile.Set(7, 1, {1.0 / 60.0, 0.2});
  profile.Set(7, 2, {1.0 / 50.0, 0.4});
  profile.Set(7, 3, {1.0 / 30.0, 0.6});
  profile.Set(7, 4, {1.0 / 20.0, 0.85});

  workload::EmpiricalBatchDist dist({20, 20, 40, 20});
  partition::ParisConfig config;
  config.knee_mode = profile::KneeMode::kAbsolute;
  partition::ParisPartitioner paris(profile, dist, config);
  const auto d = paris.Derive(14);

  Table t({"GPU type", "knee", "R_k (GPU-sec/query)", "x100 queries",
           "instances (14 GPCs)"});
  const char* names[] = {"Small (1 GPC)", "Large (7 GPCs)"};
  for (std::size_t k = 0; k < 2; ++k) {
    t.AddRow({names[k], Table::Int(d.knees[k]), Table::Num(d.ratios[k], 4),
              Table::Num(d.ratios[k] * 100, 2),
              Table::Int(d.instances[k])});
  }
  t.Print(std::cout);
  std::cout << "\nPaper expectation: per 100 queries, 1.50 small and 2.33 "
               "large GPUs of demand (ratio 1 : 1.56).\n";
  std::cout << "Measured ratio: 1 : "
            << Table::Num(d.ratios[1] / d.ratios[0], 2) << "\n";
  return 0;
}
