// Figure 11: p95 tail latency vs latency-bounded throughput for the four
// headline designs -- GPU(7)+FIFS, GPU(max)+FIFS, PARIS+FIFS, PARIS+ELSA --
// for each of the five models.  Each design is swept across offered-load
// fractions of its own latency-bounded throughput; the SLA line is the
// vertical line of the paper's plots.
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader("Figure 11: p95 tail latency vs throughput",
                     "one block per model; (x, y) = (achieved qps, p95 ms)");

  const std::vector<double> fractions = {0.5, 0.7, 0.85, 0.95, 1.0, 1.1};
  auto search = bench::DefaultSearch();
  core::Json models = core::Json::Array();

  for (const std::string& model : bench::PaperModels()) {
    core::TestbedConfig config;
    config.model_name = model;
    const core::Testbed tb(config);
    const double sla_ms = TicksToMs(tb.sla_target());

    const auto gpu_max = core::BestHomogeneous(
        tb, core::SchedulerKind::kFifs, sla_ms, search);

    struct Case {
      std::string label;
      partition::PartitionPlan plan;
      core::SchedulerKind kind;
    };
    std::vector<Case> cases;
    cases.push_back(
        {"GPU(7)+FIFS", tb.PlanHomogeneous(7), core::SchedulerKind::kFifs});
    if (gpu_max.partition_gpcs != 7 && gpu_max.partition_gpcs != 0) {
      cases.push_back({"GPU(max)=GPU(" +
                           std::to_string(gpu_max.partition_gpcs) + ")+FIFS",
                       tb.PlanHomogeneous(gpu_max.partition_gpcs),
                       core::SchedulerKind::kFifs});
    }
    cases.push_back(
        {"PARIS+FIFS", tb.PlanParis(), core::SchedulerKind::kFifs});
    cases.push_back(
        {"PARIS+ELSA", tb.PlanParis(), core::SchedulerKind::kElsa});

    std::cout << "--- " << model << " (SLA " << Table::Num(sla_ms, 1)
              << " ms) ---\n";
    core::Json designs = core::Json::Array();
    Table t({"design", "offered qps", "achieved qps", "p95 ms", "viol. %",
             "util %"});
    for (const auto& c : cases) {
      const auto curve = core::TailLatencyCurve(tb, c.plan, c.kind, fractions,
                                                sla_ms, search);
      for (const auto& p : curve) {
        t.AddRow({c.label, Table::Num(p.offered_qps, 0),
                  Table::Num(p.achieved_qps, 0), Table::Num(p.p95_ms, 2),
                  Table::Num(100 * p.violation_rate, 1),
                  Table::Num(100 * p.utilization, 1)});
      }
      core::Json d = core::Json::Object();
      d.Set("design", c.label);
      d.Set("curve", core::ToJson(curve));
      designs.Add(std::move(d));
    }
    t.Print(std::cout);
    std::cout << '\n';

    core::Json m = core::Json::Object();
    m.Set("model", model);
    m.Set("sla_ms", sla_ms);
    m.Set("gpu_max", core::ToJson(gpu_max));
    m.Set("designs", std::move(designs));
    models.Add(std::move(m));
  }

  core::Json data = core::Json::Object();
  data.Set("load_fractions", [&] {
    core::Json arr = core::Json::Array();
    for (double f : fractions) arr.Add(f);
    return arr;
  }());
  data.Set("models", std::move(models));
  bench::WriteReport("fig11_tail_latency", std::move(data));
  return 0;
}
