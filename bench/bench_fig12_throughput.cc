// Figure 12: latency-bounded throughput of all eight design points,
// normalized to GPU(7)+FIFS, per model.
//
// Paper expectations (shape, not absolute): no homogeneous GPU(N) wins
// universally; PARIS+ELSA is best or tied-best everywhere; ELSA lifts both
// Random and PARIS partitions; BERT favors large partitions (GPU(max) =
// GPU(7)) while the lightweight models favor small/medium ones.
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader(
      "Figure 12: latency-bounded throughput (normalized to GPU(7)+FIFS)",
      "absolute qps in parentheses; p95 bound = SLA target");

  auto search = bench::DefaultSearch();

  Table t({"design", "shufflenet", "mobilenet", "resnet", "bert",
           "conformer"});
  std::vector<std::vector<std::string>> cells;

  bool first_model = true;
  for (const std::string& model : bench::PaperModels()) {
    core::TestbedConfig config;
    config.model_name = model;
    const core::Testbed tb(config);
    const double sla_ms = TicksToMs(tb.sla_target());
    const auto designs = bench::PaperDesigns(tb);

    double base_qps = 0.0;
    std::size_t row = 0;
    for (const auto& d : designs) {
      const auto r = core::LatencyBoundedThroughput(tb, d.plan, d.kind,
                                                    sla_ms, search);
      if (d.label == "GPU(7)+FIFS") base_qps = r.qps;
      if (first_model) cells.push_back({d.label});
      const double norm = base_qps > 0 ? r.qps / base_qps : 0.0;
      cells[row++].push_back(Table::Num(norm, 2) + " (" +
                             Table::Num(r.qps, 0) + ")");
    }
    first_model = false;
  }
  for (auto& row : cells) t.AddRow(row);
  t.Print(std::cout);
  std::cout << "\nNote: designs whose p95 exceeds the SLA even when idle "
               "(small homogeneous partitions on heavy models) report 0.\n";
  return 0;
}
