// Figure 12: latency-bounded throughput of all eight design points,
// normalized to GPU(7)+FIFS, per model.
//
// Paper expectations (shape, not absolute): no homogeneous GPU(N) wins
// universally; PARIS+ELSA is best or tied-best everywhere; ELSA lifts both
// Random and PARIS partitions; BERT favors large partitions (GPU(max) =
// GPU(7)) while the lightweight models favor small/medium ones.
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader(
      "Figure 12: latency-bounded throughput (normalized to GPU(7)+FIFS)",
      "absolute qps in parentheses; p95 bound = SLA target");

  auto search = bench::DefaultSearch();

  Table t({"design", "shufflenet", "mobilenet", "resnet", "bert",
           "conformer"});
  std::vector<std::vector<std::string>> cells;
  core::Json models = core::Json::Array();

  bool first_model = true;
  for (const std::string& model : bench::PaperModels()) {
    core::TestbedConfig config;
    config.model_name = model;
    const core::Testbed tb(config);
    const double sla_ms = TicksToMs(tb.sla_target());
    const auto designs = bench::PaperDesigns(tb);

    // All eight designs of one model are independent probes; fan them out
    // through the batch entry point instead of a serial loop.
    std::vector<core::ProbeSpec> specs;
    specs.reserve(designs.size());
    for (const auto& d : designs) {
      specs.push_back({d.label, d.plan, d.kind, sched::ElsaParams{}});
    }
    const auto results =
        core::LatencyBoundedThroughputBatch(tb, specs, sla_ms, search);

    double base_qps = 0.0;
    for (std::size_t i = 0; i < designs.size(); ++i) {
      if (designs[i].label == "GPU(7)+FIFS") base_qps = results[i].qps;
    }

    core::Json design_results = core::Json::Array();
    for (std::size_t i = 0; i < designs.size(); ++i) {
      if (first_model) cells.push_back({designs[i].label});
      const double norm = base_qps > 0 ? results[i].qps / base_qps : 0.0;
      cells[i].push_back(Table::Num(norm, 2) + " (" +
                         Table::Num(results[i].qps, 0) + ")");
      core::Json d = core::ToJson(results[i]);
      d.Set("design", designs[i].label);
      d.Set("normalized", norm);
      design_results.Add(std::move(d));
    }
    first_model = false;

    core::Json m = core::Json::Object();
    m.Set("model", model);
    m.Set("sla_ms", sla_ms);
    m.Set("baseline", "GPU(7)+FIFS");
    m.Set("designs", std::move(design_results));
    models.Add(std::move(m));
  }
  for (auto& row : cells) t.AddRow(row);
  t.Print(std::cout);
  std::cout << "\nNote: designs whose p95 exceeds the SLA even when idle "
               "(small homogeneous partitions on heavy models) report 0.\n";

  core::Json data = core::Json::Object();
  data.Set("models", std::move(models));
  bench::WriteReport("fig12_throughput", std::move(data));
  return 0;
}
