// Figure 13(a): sensitivity of the designs to the log-normal batch-size
// distribution variance (sigma in {0.3, 0.9, 1.8}), on ResNet.
//
// Paper expectation: with small variance the batch sizes concentrate and a
// well-chosen homogeneous design closes the gap; with large variance the
// heterogeneous PARIS+ELSA advantage over the best GPU(N) grows.
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader(
      "Figure 13(a): sensitivity to batch-size distribution variance",
      "ResNet; latency-bounded throughput normalized to GPU(7)+FIFS");

  auto search = bench::DefaultSearch();

  Table t({"design", "sigma=0.3", "sigma=0.9 (default)", "sigma=1.8"});
  std::vector<std::vector<std::string>> cells;

  bool first = true;
  for (double sigma : {0.3, 0.9, 1.8}) {
    core::TestbedConfig config;
    config.model_name = "resnet";
    config.dist_sigma = sigma;
    const core::Testbed tb(config);
    const double sla_ms = TicksToMs(tb.sla_target());

    std::vector<bench::Design> designs;
    for (int size : {7, 3, 2, 1}) {
      designs.push_back({"GPU(" + std::to_string(size) + ")+FIFS",
                         tb.PlanHomogeneous(size),
                         core::SchedulerKind::kFifs});
    }
    designs.push_back(
        {"PARIS+FIFS", tb.PlanParis(), core::SchedulerKind::kFifs});
    designs.push_back(
        {"PARIS+ELSA", tb.PlanParis(), core::SchedulerKind::kElsa});

    double base = 0.0;
    std::size_t row = 0;
    for (const auto& d : designs) {
      const auto r =
          core::LatencyBoundedThroughput(tb, d.plan, d.kind, sla_ms, search);
      if (d.label == "GPU(7)+FIFS") base = r.qps;
      if (first) cells.push_back({d.label});
      cells[row++].push_back(
          Table::Num(base > 0 ? r.qps / base : 0.0, 2) + " (" +
          Table::Num(r.qps, 0) + ")");
    }
    first = false;
  }
  for (auto& row : cells) t.AddRow(row);
  t.Print(std::cout);
  return 0;
}
