// Figure 13(b): sensitivity to the maximum batch size of the distribution
// (16 / 32 / 64), for all five models.  Throughput normalized to
// GPU(max)+FIFS per (model, max batch), as in the paper.
//
// Paper expectation: PARIS+ELSA's advantage is robust across max batch.
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader(
      "Figure 13(b): sensitivity to maximum batch size",
      "normalized to GPU(max)+FIFS per (model, max batch) pair");

  auto search = bench::DefaultSearch();
  // 15 (model, max-batch) pairs: keep each lean.
  search.num_queries = bench::Queries(3000);

  Table t({"model", "max batch", "GPU(max)+FIFS", "PARIS+FIFS",
           "PARIS+ELSA"});
  for (const std::string& model : bench::PaperModels()) {
    for (int max_batch : {16, 32, 64}) {
      core::TestbedConfig config;
      config.model_name = model;
      config.max_batch = max_batch;
      const core::Testbed tb(config);
      const double sla_ms = TicksToMs(tb.sla_target());

      const auto best = core::BestHomogeneous(
          tb, core::SchedulerKind::kFifs, sla_ms, search);
      const double base = best.qps;
      const auto paris = tb.PlanParis();
      const auto pf = core::LatencyBoundedThroughput(
          tb, paris, core::SchedulerKind::kFifs, sla_ms, search);
      const auto pe_ = core::LatencyBoundedThroughput(
          tb, paris, core::SchedulerKind::kElsa, sla_ms, search);

      auto norm = [&](double qps) {
        return base > 0 ? Table::Num(qps / base, 2) : std::string("n/a");
      };
      t.AddRow({model, Table::Int(max_batch),
                "1.00 [GPU(" + std::to_string(best.partition_gpcs) + "), " +
                    Table::Num(base, 0) + " qps]",
                norm(pf.qps), norm(pe_.qps)});
    }
  }
  t.Print(std::cout);
  return 0;
}
