// Micro-benchmarks (google-benchmark) for the hot paths of the simulator:
// roofline evaluation, profiling, scheduler decisions, PARIS derivation,
// MIG packing, and end-to-end simulated-query throughput.
#include <benchmark/benchmark.h>

#include "core/server_builder.h"
#include "hw/cluster.h"
#include "partition/paris.h"
#include "perf/model_zoo.h"
#include "profile/profiler.h"
#include "sched/elsa.h"
#include "workload/trace.h"

namespace {

using namespace pe;

void BM_RooflineModelEval(benchmark::State& state) {
  const auto model = perf::BuildResNet50();
  perf::RooflineEngine engine;
  int batch = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Time(model, 3, batch));
    batch = batch % 32 + 1;
  }
}
BENCHMARK(BM_RooflineModelEval);

void BM_ProfilerFullGrid(benchmark::State& state) {
  const auto model = perf::BuildMobileNetV1();
  profile::Profiler profiler;
  const auto config = profile::ProfilerConfig::Default(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.Profile(model, config));
  }
}
BENCHMARK(BM_ProfilerFullGrid);

void BM_ElsaDecision(benchmark::State& state) {
  const auto n_workers = static_cast<std::size_t>(state.range(0));
  profile::ProfileTable table("toy", {1, 7}, {32});
  table.Set(1, 32, {10e-3, 0.9});
  table.Set(7, 32, {2e-3, 0.5});
  sched::ElsaScheduler elsa(table, MsToTicks(15.0));
  std::vector<sched::WorkerState> workers(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers[i].index = static_cast<int>(i);
    workers[i].gpcs = (i % 2) ? 7 : 1;
    workers[i].wait_ticks = static_cast<SimTime>(i) * MsToTicks(1.0);
  }
  workload::Query q;
  q.batch = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elsa.OnQueryArrival(q, workers));
  }
}
BENCHMARK(BM_ElsaDecision)->Arg(8)->Arg(32)->Arg(56);

void BM_ParisDerive(benchmark::State& state) {
  profile::Profiler profiler;
  const auto table = profiler.Profile(perf::BuildResNet50(),
                                      profile::ProfilerConfig::Default(64));
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  partition::ParisPartitioner paris(table, dist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(paris.Derive(48));
  }
}
BENCHMARK(BM_ParisDerive);

void BM_ClusterPack(benchmark::State& state) {
  hw::Cluster cluster(8);
  const std::vector<int> sizes = {7, 7, 4, 3, 3, 2, 2, 2, 1, 1, 1, 1, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.Pack(sizes));
  }
}
BENCHMARK(BM_ClusterPack);

void BM_EndToEndSimulatedQueries(benchmark::State& state) {
  core::TestbedConfig config;
  config.model_name = "resnet";
  const core::Testbed tb(config);
  const auto plan = tb.PlanParis();
  core::RunOptions opt;
  opt.rate_qps = 500.0;
  opt.num_queries = 2000;
  for (auto _ : state) {
    auto scheduler = tb.MakeScheduler(core::SchedulerKind::kElsa);
    benchmark::DoNotOptimize(tb.Run(plan, *scheduler, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(opt.num_queries));
}
BENCHMARK(BM_EndToEndSimulatedQueries);

}  // namespace

BENCHMARK_MAIN();
