// Multi-model consolidation study (extension).
//
// A compute-heavy model (ResNet) and a lightweight one (MobileNet) share
// one p4d-style server at equal total GPCs under two provisioning styles:
//
//   * dedicated:     each model gets its share-derived slice of the GPC
//                    budget as its own PARIS layout and serves only its
//                    own traffic (no cross-model interference, but also
//                    no statistical multiplexing);
//   * consolidated:  the union of the same per-model layouts serves the
//                    full interleaved trace, paying a model-swap penalty
//                    whenever a partition starts a non-resident model --
//                    once with model-oblivious ELSA and once with the
//                    locality tie-break that steers queries to partitions
//                    already holding their model.
//
// The total GPC budget is identical in all rows, so the delta is purely
// scheduling/consolidation: multiplexing absorbs each model's bursts in
// the other's lulls, while swap penalties and cross-model queueing push
// the other way.
#include "bench/bench_util.h"

#include "core/mix_runner.h"

int main() {
  using namespace pe;
  bench::PrintHeader(
      "Mixed-model serving: dedicated vs consolidated at equal GPCs",
      "ResNet (60%) + MobileNet (40%), mixed-PARIS layouts, ELSA; "
      "model-swap penalty charged on resident-model changes");

  core::MixConfig mc;
  mc.models.push_back({"resnet", 0.6, 6.0, 0.9});
  mc.models.push_back({"mobilenet", 0.4, 4.0, 0.9});
  mc.swap_cost_us = 1000.0;  // ~1 ms weight reload per displaced model
  const core::MixTestbed tb(mc);
  const auto mixed = tb.PlanMixed();

  const double rate_qps = 400.0;
  const std::size_t num_queries = bench::Queries(16000);
  const std::uint64_t seed = 17;
  const auto trace = tb.GenerateMix(rate_qps, num_queries, seed);

  struct Row {
    std::string policy;
    std::string layout;
    sim::ServerStats stats;
  };
  std::vector<Row> rows;

  // Dedicated: each model's slice serves its own (re-numbered) traffic on
  // its own workers; merged records give the fleet-level view.
  {
    std::vector<sim::QueryRecord> merged;
    std::string layout;
    for (int m = 0; m < tb.num_models(); ++m) {
      const auto& sizes = mixed.per_model_sizes[static_cast<std::size_t>(m)];
      auto scheduler = tb.MakeScheduler(core::SchedulerKind::kElsa);
      const auto result =
          tb.Run(sizes, *scheduler, trace.FilterModel(m), seed + m);
      merged.insert(merged.end(), result.records.begin(),
                    result.records.end());
      partition::PartitionPlan tmp;
      tmp.instance_gpcs = sizes;
      if (!layout.empty()) layout += " | ";
      layout += tb.repertoire().name(m) + ": " + tmp.Summary();
    }
    rows.push_back(
        {"dedicated", layout, sim::ComputeStats(merged, tb.sla_target())});
  }

  // Consolidated: the union layout serves the interleaved trace.
  const auto consolidated = [&](sched::ElsaParams params,
                                const std::string& label) {
    auto scheduler = tb.MakeScheduler(core::SchedulerKind::kElsa, params);
    const auto result =
        tb.Run(mixed.plan.instance_gpcs, *scheduler, trace, seed);
    rows.push_back({label, mixed.plan.Summary(),
                    result.Stats(tb.sla_target())});
  };
  consolidated(sched::ElsaParams{}, "consolidated");
  sched::ElsaParams local;
  local.locality_tie_sec = 0.002;  // 2 ms: roughly the swap cost
  consolidated(local, "consolidated+locality");

  Table t({"policy", "p99 ms", "p95 ms", "achieved qps", "viol. %",
           "swaps"});
  for (const auto& r : rows) {
    t.AddRow({r.policy, Table::Num(r.stats.p99_latency_ms, 2),
              Table::Num(r.stats.p95_latency_ms, 2),
              Table::Num(r.stats.achieved_qps, 1),
              Table::Num(100 * r.stats.sla_violation_rate, 2),
              Table::Int(static_cast<long long>(r.stats.model_swaps))});
  }
  t.Print(std::cout);
  std::cout << "\nLayouts (equal total GPCs, budget "
            << tb.config().gpc_budget << "):\n";
  for (const auto& r : rows) {
    std::cout << "  " << r.policy << ": " << r.layout << "\n";
  }

  core::Json policies = core::Json::Array();
  for (const auto& r : rows) {
    core::Json p = core::ToJson(r.stats);
    p.Set("policy", r.policy);
    p.Set("layout", r.layout);
    policies.Add(std::move(p));
  }
  core::Json data = core::Json::Object();
  core::Json models = core::Json::Array();
  for (std::size_t i = 0; i < mc.models.size(); ++i) {
    core::Json m = core::Json::Object();
    m.Set("model", mc.models[i].model);
    m.Set("share", mc.models[i].share);
    m.Set("budget_gpcs", mixed.budgets[i]);
    models.Add(std::move(m));
  }
  data.Set("mix", std::move(models));
  data.Set("offered_qps", rate_qps);
  data.Set("swap_cost_us", mc.swap_cost_us);
  data.Set("seed", seed);
  data.Set("policies", std::move(policies));
  bench::WriteReport("mix_consolidation", std::move(data));
  return 0;
}
