// Section VI-C, "Different SLA targets": PARIS+ELSA's gains under SLA
// multipliers N in {1.2, 1.5, 2.0} (the paper reports N=2.0 giving on
// average 1.7x over GPU(7) and 1.1x over GPU(max) in latency-bounded
// throughput).  Reported per model plus the geometric mean.
#include "bench/bench_util.h"

#include <cmath>

int main() {
  using namespace pe;
  bench::PrintHeader("SLA sensitivity (Section VI-C)",
                     "PARIS+ELSA speedup over GPU(7)+FIFS and GPU(max)+FIFS "
                     "under different SLA multipliers N");

  auto search = bench::DefaultSearch();
  search.num_queries = bench::Queries(3000);

  Table t({"model", "N", "vs GPU(7)", "vs GPU(max)", "GPU(max)"});
  for (double n : {1.2, 1.5, 2.0}) {
    double log_sum7 = 0.0, log_summax = 0.0;
    int counted = 0;
    for (const std::string& model : bench::PaperModels()) {
      core::TestbedConfig config;
      config.model_name = model;
      config.sla_n = n;
      const core::Testbed tb(config);
      const double sla_ms = TicksToMs(tb.sla_target());

      const auto gpu7 = core::LatencyBoundedThroughput(
          tb, tb.PlanHomogeneous(7), core::SchedulerKind::kFifs, sla_ms,
          search);
      const auto best = core::BestHomogeneous(
          tb, core::SchedulerKind::kFifs, sla_ms, search);
      const auto ours = core::LatencyBoundedThroughput(
          tb, tb.PlanParis(), core::SchedulerKind::kElsa, sla_ms, search);

      const double s7 = gpu7.qps > 0 ? ours.qps / gpu7.qps : 0.0;
      const double smax = best.qps > 0 ? ours.qps / best.qps : 0.0;
      if (s7 > 0 && smax > 0) {
        log_sum7 += std::log(s7);
        log_summax += std::log(smax);
        ++counted;
      }
      t.AddRow({model, Table::Num(n, 1), Table::Num(s7, 2),
                Table::Num(smax, 2),
                "GPU(" + std::to_string(best.partition_gpcs) + ")"});
    }
    if (counted > 0) {
      t.AddRow({"geomean", Table::Num(n, 1),
                Table::Num(std::exp(log_sum7 / counted), 2),
                Table::Num(std::exp(log_summax / counted), 2), ""});
    }
  }
  t.Print(std::cout);
  return 0;
}
