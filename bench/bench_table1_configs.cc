// Table I: homogeneous vs heterogeneous GPU partition configurations per
// model -- instance counts and GPC totals for GPU(1,2,3,7), Random, and
// PARIS, plus the number of physical A100s.
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader("Table I: server configurations per model",
                     "counts as '#instances (#GPCs)'; PARIS/Random show "
                     "their heterogeneous layout");

  Table t({"design", "shufflenet", "mobilenet", "resnet", "bert",
           "conformer"});
  std::vector<std::vector<std::string>> rows(7);
  rows[0] = {"GPU(1)"};
  rows[1] = {"GPU(2)"};
  rows[2] = {"GPU(3)"};
  rows[3] = {"GPU(7)"};
  rows[4] = {"Random"};
  rows[5] = {"PARIS"};
  rows[6] = {"# of A100"};

  for (const std::string& model : bench::PaperModels()) {
    core::TestbedConfig config;
    config.model_name = model;
    const core::Testbed tb(config);
    int r = 0;
    for (int size : {1, 2, 3, 7}) {
      const auto plan = tb.PlanHomogeneous(size);
      rows[static_cast<std::size_t>(r++)].push_back(
          std::to_string(plan.NumInstances()) + " (" +
          std::to_string(plan.TotalGpcs()) + ")");
    }
    rows[4].push_back(tb.PlanRandom().Summary());
    rows[5].push_back(tb.PlanParis().Summary());
    rows[6].push_back(std::to_string(tb.table1().num_gpus));
  }
  for (auto& row : rows) t.AddRow(row);
  t.Print(std::cout);
  return 0;
}
