// Table I: homogeneous vs heterogeneous GPU partition configurations per
// model -- instance counts and GPC totals for GPU(1,2,3,7), Random, and
// PARIS, plus the number of physical A100s.
#include "bench/bench_util.h"

int main() {
  using namespace pe;
  bench::PrintHeader("Table I: server configurations per model",
                     "counts as '#instances (#GPCs)'; PARIS/Random show "
                     "their heterogeneous layout");

  Table t({"design", "shufflenet", "mobilenet", "resnet", "bert",
           "conformer"});
  std::vector<std::vector<std::string>> rows(7);
  rows[0] = {"GPU(1)"};
  rows[1] = {"GPU(2)"};
  rows[2] = {"GPU(3)"};
  rows[3] = {"GPU(7)"};
  rows[4] = {"Random"};
  rows[5] = {"PARIS"};
  rows[6] = {"# of A100"};

  core::Json models = core::Json::Array();
  for (const std::string& model : bench::PaperModels()) {
    core::TestbedConfig config;
    config.model_name = model;
    const core::Testbed tb(config);
    core::Json homogeneous = core::Json::Array();
    int r = 0;
    for (int size : {1, 2, 3, 7}) {
      const auto plan = tb.PlanHomogeneous(size);
      rows[static_cast<std::size_t>(r++)].push_back(
          std::to_string(plan.NumInstances()) + " (" +
          std::to_string(plan.TotalGpcs()) + ")");
      core::Json h = core::Json::Object();
      h.Set("partition_gpcs", size);
      h.Set("instances", static_cast<std::int64_t>(plan.NumInstances()));
      h.Set("total_gpcs", static_cast<std::int64_t>(plan.TotalGpcs()));
      homogeneous.Add(std::move(h));
    }
    const auto random_plan = tb.PlanRandom();
    const auto paris_plan = tb.PlanParis();
    rows[4].push_back(random_plan.Summary());
    rows[5].push_back(paris_plan.Summary());
    rows[6].push_back(std::to_string(tb.table1().num_gpus));

    core::Json m = core::Json::Object();
    m.Set("model", model);
    m.Set("homogeneous", std::move(homogeneous));
    m.Set("random", random_plan.Summary());
    m.Set("paris", paris_plan.Summary());
    m.Set("num_gpus", tb.table1().num_gpus);
    models.Add(std::move(m));
  }
  for (auto& row : rows) t.AddRow(row);
  t.Print(std::cout);

  core::Json data = core::Json::Object();
  data.Set("models", std::move(models));
  bench::WriteReport("table1_configs", std::move(data));
  return 0;
}
