// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/result_io.h"
#include "core/server_builder.h"

namespace pe::bench {

inline const std::vector<std::string>& PaperModels() {
  static const std::vector<std::string> kModels = {
      "shufflenet", "mobilenet", "resnet", "bert", "conformer"};
  return kModels;
}

// A named (plan, scheduler) design point.
struct Design {
  std::string label;
  partition::PartitionPlan plan;
  core::SchedulerKind kind = core::SchedulerKind::kFifs;
};

// The paper's six evaluated design families (Section VI) minus GPU(max),
// which callers derive via core::BestHomogeneous.
inline std::vector<Design> PaperDesigns(const core::Testbed& tb,
                                        bool include_gpu4 = false) {
  std::vector<Design> designs;
  for (int size : {7, 3, 2, 1}) {
    designs.push_back({"GPU(" + std::to_string(size) + ")+FIFS",
                       tb.PlanHomogeneous(size),
                       core::SchedulerKind::kFifs});
  }
  if (include_gpu4) {
    designs.push_back(
        {"GPU(4)+FIFS", tb.PlanHomogeneous(4), core::SchedulerKind::kFifs});
  }
  designs.push_back(
      {"Random+FIFS", tb.PlanRandom(), core::SchedulerKind::kFifs});
  designs.push_back(
      {"Random+ELSA", tb.PlanRandom(), core::SchedulerKind::kElsa});
  designs.push_back(
      {"PARIS+FIFS", tb.PlanParis(), core::SchedulerKind::kFifs});
  designs.push_back(
      {"PARIS+ELSA", tb.PlanParis(), core::SchedulerKind::kElsa});
  return designs;
}

// PE_BENCH_SMOKE=1 in the environment shrinks the search work so every
// bench finishes in seconds; used by tools/run_all_benches.sh for CI-style
// smoke runs.  Numbers stay paper-faithful when the variable is unset.
inline bool SmokeMode() {
  static const bool smoke = [] {
    const char* v = std::getenv("PE_BENCH_SMOKE");
    std::string s = v == nullptr ? "" : v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    const bool on =
        !(s.empty() || s == "0" || s == "false" || s == "off" || s == "no");
    if (on) {
      std::cerr << "note: PE_BENCH_SMOKE is set -- reduced search work; "
                   "numbers are NOT paper-faithful\n";
    }
    return on;
  }();
  return smoke;
}

// Query count honoring smoke mode: benches that want more than the
// default search length route their override through this so
// PE_BENCH_SMOKE still caps the workload.
inline std::size_t Queries(std::size_t n) {
  return SmokeMode() ? std::min<std::size_t>(n, 500) : n;
}

// Experiment-engine threads: PE_BENCH_JOBS in the environment, defaulting
// to the hardware thread count.  Determinism is per-task (fresh scheduler
// and seeded RNG per probe), so any jobs value yields identical numbers.
inline int Jobs() {
  static const int jobs = [] {
    if (const char* v = std::getenv("PE_BENCH_JOBS")) {
      const int parsed = std::atoi(v);
      if (parsed >= 1) return parsed;
      std::cerr << "note: ignoring invalid PE_BENCH_JOBS=" << v << "\n";
    }
    return static_cast<int>(ThreadPool::DefaultThreads());
  }();
  return jobs;
}

inline core::SearchOptions DefaultSearch() {
  core::SearchOptions so;
  so.num_queries = Queries(4000);
  so.iterations = SmokeMode() ? 5 : 9;
  so.jobs = Jobs();
  return so;
}

// JSON sink: when PE_BENCH_JSON_DIR is set each bench drops its
// machine-readable report at <dir>/<bench_name>.json (the directory must
// exist); tools/run_all_benches.sh aggregates them into bench_results.json.
// Reports are additive: CI asserts on specific fields (engine_throughput's
// fleet-scaling section -- per-policy router_qps, split_qps, stats_sec,
// fleet_qps, and the fast-vs-reference identity flags -- is gated by both
// bench-smoke and engine-perf), so rename fields only with the workflow.
inline std::optional<std::string> JsonOutPath(const std::string& bench_name) {
  const char* dir = std::getenv("PE_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string(dir) + "/" + bench_name + ".json";
}

// Attaches `data` to a schema-versioned report and writes it to the JSON
// sink, if one is configured.  Returns false when the sink is unset or
// unwritable (warning on stderr): a broken sink must not turn a completed
// bench run into a crash after all its tables already printed.
inline bool WriteReport(const std::string& bench_name, core::Json data) {
  const auto path = JsonOutPath(bench_name);
  if (!path) return false;
  auto report = core::MakeBenchReport(bench_name, SmokeMode(), Jobs());
  report.Set("data", std::move(data));
  try {
    core::WriteJsonFile(*path, report);
  } catch (const std::exception& e) {
    std::cerr << "warning: JSON report not written: " << e.what() << "\n";
    return false;
  }
  std::cerr << "json: " << *path << "\n";
  return true;
}

inline void PrintHeader(const std::string& title, const std::string& note) {
  std::cout << "==================================================\n"
            << title << "\n" << note << "\n"
            << "==================================================\n\n";
}

}  // namespace pe::bench
