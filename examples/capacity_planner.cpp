// capacity_planner: answers the operator's question the paper's system
// implicitly poses -- "how many A100s do I need to serve this model at this
// load within SLA?"  For each GPU count, partitions with PARIS, schedules
// with ELSA, and reports the latency-bounded capacity; stops at the first
// count that covers the requested load.
//
// Usage: capacity_planner [model] [target_qps]   (default: bert 400)
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/experiment.h"
#include "core/server_builder.h"
#include "partition/paris.h"

int main(int argc, char** argv) {
  using namespace pe;
  const std::string model = argc > 1 ? argv[1] : "bert";
  const double target_qps = argc > 2 ? std::atof(argv[2]) : 400.0;

  core::TestbedConfig config;
  config.model_name = model;
  const core::Testbed tb(config);
  const double sla_ms = TicksToMs(tb.sla_target());

  std::cout << "Planning " << model << " capacity for "
            << Table::Num(target_qps, 0) << " qps at SLA "
            << Table::Num(sla_ms, 1) << " ms (p95)\n\n";

  partition::ParisPartitioner paris(tb.profile(), tb.dist(),
                                    tb.config().paris);
  core::SearchOptions search;
  search.num_queries = 4000;

  Table t({"A100s", "PARIS layout", "capacity qps", "covers target?"});
  int needed = -1;
  for (int gpus = 1; gpus <= 16; ++gpus) {
    hw::Cluster cluster(gpus);
    const auto plan = paris.Plan(cluster, cluster.total_gpcs());
    const auto r = core::LatencyBoundedThroughput(
        tb, plan, core::SchedulerKind::kElsa, sla_ms, search);
    const bool covers = r.qps >= target_qps;
    t.AddRow({Table::Int(gpus), plan.Summary(), Table::Num(r.qps, 0),
              covers ? "yes" : "no"});
    if (covers) {
      needed = gpus;
      break;
    }
  }
  t.Print(std::cout);
  if (needed > 0) {
    std::cout << "\n=> " << needed << "x A100 with PARIS+ELSA cover "
              << Table::Num(target_qps, 0) << " qps.\n";
  } else {
    std::cout << "\n=> target not reachable within 16 A100s; "
                 "consider relaxing the SLA.\n";
  }
  return 0;
}
