// partition_explorer: inspects what the performance model and PARIS decide
// for each paper model.
//
// Prints, per model:
//   * the profiled utilization/latency grid (partition size x batch),
//   * the MaxBatch_knee per partition size,
//   * the PARIS derivation (segment demand ratios R_k, instance counts),
//   * the resulting heterogeneous server layout on the physical A100s.
//
// Usage: partition_explorer [model ...]   (default: all five paper models)
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/server_builder.h"
#include "partition/paris.h"

namespace {

void Explore(const std::string& model_name) {
  using pe::Table;
  pe::core::TestbedConfig config;
  config.model_name = model_name;
  pe::core::Testbed tb(config);

  std::cout << "==== " << model_name << " ====\n";
  std::cout << "GPC budget " << tb.table1().gpc_budget << " on "
            << tb.table1().num_gpus << " GPUs; SLA target "
            << pe::TicksToMs(tb.sla_target()) << " ms\n\n";

  const auto& profile = tb.profile();
  Table grid({"batch", "GPU(1) util", "GPU(2) util", "GPU(3) util",
              "GPU(4) util", "GPU(7) util", "GPU(1) ms", "GPU(7) ms"});
  for (int b : {1, 2, 4, 8, 16, 32, 64}) {
    grid.AddRow({Table::Int(b),
                 Table::Num(100 * profile.Utilization(1, b), 1),
                 Table::Num(100 * profile.Utilization(2, b), 1),
                 Table::Num(100 * profile.Utilization(3, b), 1),
                 Table::Num(100 * profile.Utilization(4, b), 1),
                 Table::Num(100 * profile.Utilization(7, b), 1),
                 Table::Num(1e3 * profile.LatencySec(1, b), 2),
                 Table::Num(1e3 * profile.LatencySec(7, b), 2)});
  }
  grid.Print(std::cout);

  pe::partition::ParisPartitioner paris(profile, tb.dist(),
                                        tb.config().paris);
  const auto derivation = paris.Derive(tb.table1().gpc_budget);
  std::cout << "\nPARIS derivation:\n";
  Table d({"GPU size", "MaxBatch_knee", "R_k", "instances"});
  for (std::size_t k = 0; k < derivation.partition_sizes.size(); ++k) {
    d.AddRow({Table::Int(derivation.partition_sizes[k]),
              Table::Int(derivation.knees[k]),
              Table::Num(derivation.ratios[k], 4),
              Table::Int(derivation.instances[k])});
  }
  d.Print(std::cout);

  const auto plan = tb.PlanParis();
  std::cout << "\nPARIS plan: " << plan.Summary() << "\n";
  std::cout << "Placement:  " << plan.layout.ToString() << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> models;
  for (int i = 1; i < argc; ++i) models.emplace_back(argv[i]);
  if (models.empty()) {
    models = {"shufflenet", "mobilenet", "resnet", "bert", "conformer"};
  }
  for (const auto& m : models) Explore(m);
  return 0;
}
