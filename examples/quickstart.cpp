// quickstart: the smallest end-to-end use of the library.
//
// Builds a ResNet inference testbed with the paper's default workload
// (Poisson arrivals, log-normal batch sizes, max batch 32), partitions the
// 8xA100 cluster with PARIS, schedules with ELSA, and prints the serving
// statistics next to the best homogeneous baseline (GPU(7) + FIFS).
//
// Usage: quickstart [model] [rate_qps]
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/experiment.h"
#include "core/server_builder.h"

int main(int argc, char** argv) {
  using namespace pe;

  core::TestbedConfig config;
  config.model_name = argc > 1 ? argv[1] : "resnet";
  core::Testbed tb(config);

  const double rate_qps = argc > 2 ? std::atof(argv[2]) : 0.0;

  std::cout << "Model: " << config.model_name << "  |  SLA target: "
            << TicksToMs(tb.sla_target()) << " ms  |  cluster: "
            << tb.table1().num_gpus << "x A100 ("
            << tb.table1().gpc_budget << " GPCs for PARIS)\n\n";

  const auto paris = tb.PlanParis();
  const auto gpu7 = tb.PlanHomogeneous(7);
  std::cout << "PARIS plan:  " << paris.Summary() << "\n";
  std::cout << "Baseline:    " << gpu7.Summary() << "\n\n";

  // Pick a load level: explicit from argv, otherwise 85% of the baseline's
  // latency-bounded throughput so both designs operate in a sane regime.
  double rate = rate_qps;
  if (rate <= 0.0) {
    const auto bound = core::LatencyBoundedThroughput(
        tb, gpu7, core::SchedulerKind::kFifs, TicksToMs(tb.sla_target()));
    rate = 0.85 * bound.qps;
    std::cout << "Auto-selected offered load: " << Table::Num(rate, 1)
              << " qps (85% of GPU(7)+FIFS capacity)\n\n";
  }

  core::RunOptions run;
  run.rate_qps = rate;
  run.num_queries = 20000;

  Table table({"design", "p95 (ms)", "mean (ms)", "SLA viol. %",
               "achieved qps", "GPU util %"});
  struct Case {
    const char* label;
    const pe::partition::PartitionPlan* plan;
    core::SchedulerKind kind;
  };
  const Case cases[] = {
      {"GPU(7)+FIFS", &gpu7, core::SchedulerKind::kFifs},
      {"PARIS+FIFS", &paris, core::SchedulerKind::kFifs},
      {"PARIS+ELSA", &paris, core::SchedulerKind::kElsa},
  };
  for (const auto& c : cases) {
    const auto stats = tb.RunStats(*c.plan, c.kind, run);
    table.AddRow({c.label, Table::Num(stats.p95_latency_ms, 2),
                  Table::Num(stats.mean_latency_ms, 2),
                  Table::Num(100 * stats.sla_violation_rate, 2),
                  Table::Num(stats.achieved_qps, 1),
                  Table::Num(100 * stats.mean_worker_utilization, 1)});
  }
  table.Print(std::cout);
  return 0;
}
