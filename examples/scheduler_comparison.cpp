// scheduler_comparison: traces how FIFS and ELSA handle the same query
// stream on the same heterogeneous server, then sweeps the load level.
//
// Demonstrates the paper's Figure 10 mechanism at query granularity: ELSA
// detects that a heavy query would violate SLA on a small idle partition
// and waits for (or picks) a larger one.
//
// Usage: scheduler_comparison [model]   (default: resnet)
#include <iostream>
#include <map>
#include <string>

#include "common/table.h"
#include "core/experiment.h"
#include "core/server_builder.h"

int main(int argc, char** argv) {
  using namespace pe;
  core::TestbedConfig config;
  config.model_name = argc > 1 ? argv[1] : "resnet";
  const core::Testbed tb(config);
  const auto plan = tb.PlanParis();
  const double sla_ms = TicksToMs(tb.sla_target());

  std::cout << "Model " << config.model_name << ", server "
            << plan.Summary() << ", SLA " << Table::Num(sla_ms, 1)
            << " ms\n\n";

  // Where do batches land?  Per-scheduler histogram of batch -> partition.
  core::RunOptions opt;
  opt.num_queries = 12000;
  const auto capacity = core::LatencyBoundedThroughput(
      tb, plan, core::SchedulerKind::kElsa, sla_ms);
  opt.rate_qps = 0.8 * capacity.qps;

  for (auto kind : {core::SchedulerKind::kFifs, core::SchedulerKind::kElsa}) {
    auto scheduler = tb.MakeScheduler(kind);
    const auto result = tb.Run(plan, *scheduler, opt);
    // batch bucket -> (gpcs -> count)
    std::map<int, std::map<int, int>> routing;
    for (const auto& r : result.records) {
      int bucket = 1;
      while (bucket < r.batch) bucket *= 2;
      ++routing[bucket][r.worker_gpcs];
    }
    std::cout << "--- " << ToString(kind) << ": batch -> partition routing "
              << "(row %) ---\n";
    Table t({"batch <=", "GPU(1)", "GPU(2)", "GPU(3)", "GPU(4)", "GPU(7)"});
    for (const auto& [bucket, dist] : routing) {
      double total = 0;
      for (const auto& [g, c] : dist) total += c;
      std::vector<std::string> row = {Table::Int(bucket)};
      for (int g : {1, 2, 3, 4, 7}) {
        const auto it = dist.find(g);
        row.push_back(Table::Num(
            it == dist.end() ? 0.0 : 100.0 * it->second / total, 0));
      }
      t.AddRow(row);
    }
    t.Print(std::cout);
    const auto stats = result.Stats(tb.sla_target());
    std::cout << "p95 " << Table::Num(stats.p95_latency_ms, 2)
              << " ms, violations "
              << Table::Num(100 * stats.sla_violation_rate, 2) << "%\n\n";
  }

  // Load sweep.
  std::cout << "--- load sweep (offered qps -> p95 ms) ---\n";
  Table sweep({"offered qps", "FIFS p95", "ELSA p95", "FIFS viol %",
               "ELSA viol %"});
  for (double f : {0.4, 0.6, 0.8, 0.9, 1.0}) {
    core::RunOptions ro;
    ro.rate_qps = f * capacity.qps;
    ro.num_queries = 8000;
    const auto fifs = tb.RunStats(plan, core::SchedulerKind::kFifs, ro);
    const auto elsa = tb.RunStats(plan, core::SchedulerKind::kElsa, ro);
    sweep.AddRow({Table::Num(ro.rate_qps, 0),
                  Table::Num(fifs.p95_latency_ms, 2),
                  Table::Num(elsa.p95_latency_ms, 2),
                  Table::Num(100 * fifs.sla_violation_rate, 2),
                  Table::Num(100 * elsa.sla_violation_rate, 2)});
  }
  sweep.Print(std::cout);
  return 0;
}
