#include "common/args.h"

#include <algorithm>
#include <stdexcept>

namespace pe {

ArgParser::ArgParser(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string body = token.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        options_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[body] = argv[++i];
      } else {
        options_[body] = "";  // bare flag
      }
    } else {
      positionals_.push_back(token);
    }
  }
}

std::optional<std::string> ArgParser::Subcommand() const {
  if (positionals_.empty()) return std::nullopt;
  return positionals_.front();
}

std::vector<std::string> ArgParser::Positionals() const {
  if (positionals_.size() <= 1) return {};
  return {positionals_.begin() + 1, positionals_.end()};
}

bool ArgParser::HasFlag(const std::string& key) const {
  return options_.count(key) > 0;
}

std::optional<std::string> ArgParser::GetString(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& fallback) const {
  return GetString(key).value_or(fallback);
}

double ArgParser::GetDouble(const std::string& key, double fallback) const {
  const auto v = GetString(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": expected a number, got '" +
                                *v + "'");
  }
}

long long ArgParser::GetInt(const std::string& key, long long fallback) const {
  const auto v = GetString(key);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": expected an integer, got '" +
                                *v + "'");
  }
}

std::vector<std::string> ArgParser::UnknownKeys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : options_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

}  // namespace pe
