#include "common/args.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace pe {
namespace {

// An option name must start with a letter, so "--rate" is an option while
// "--5" is a plain value token (and can be consumed by a preceding
// "--key").  This keeps negative-ish typos from silently becoming flags.
bool IsLongOption(const std::string& token) {
  return token.size() > 2 && token.rfind("--", 0) == 0 &&
         std::isalpha(static_cast<unsigned char>(token[2])) != 0;
}

// "-h" style short flags are exactly one letter.  Anything longer or
// non-alphabetic after the '-' is a plain value: "-5", "-.5" (negative
// numbers) and "-inf" / "-foo" (string values) are all consumable by a
// preceding "--key".
bool IsShortFlag(const std::string& token) {
  return token.size() == 2 && token[0] == '-' &&
         std::isalpha(static_cast<unsigned char>(token[1])) != 0;
}

bool IsOptionToken(const std::string& token) {
  return token == "--" || IsLongOption(token) || IsShortFlag(token);
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv,
                     std::vector<std::string> flags) {
  program_ = argc > 0 ? argv[0] : "";
  const auto is_declared_flag = [&flags](const std::string& name) {
    return std::find(flags.begin(), flags.end(), name) != flags.end();
  };
  bool options_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (options_done) {
      positionals_.push_back(token);
    } else if (token == "--") {
      options_done = true;  // conventional end-of-options separator
    } else if (IsLongOption(token)) {
      const std::string body = token.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        const std::string key = body.substr(0, eq);
        options_[key] = body.substr(eq + 1);
        spelling_[key] = "--" + key;
      } else if (!is_declared_flag(body) && i + 1 < argc &&
                 !IsOptionToken(argv[i + 1])) {
        // Consumes any plain value token, including negative numbers
        // ("--rate -5") and malformed option-ish tokens ("--rate --5",
        // which GetDouble later rejects with an explicit error).
        options_[body] = argv[++i];
        spelling_[body] = token;
      } else {
        options_[body] = "";  // bare flag
        spelling_[body] = token;
      }
    } else if (IsShortFlag(token)) {
      options_[token.substr(1)] = "";  // short flags never take a value
      spelling_[token.substr(1)] = token;
    } else {
      positionals_.push_back(token);
    }
  }
}

std::optional<std::string> ArgParser::Subcommand() const {
  if (positionals_.empty()) return std::nullopt;
  return positionals_.front();
}

std::vector<std::string> ArgParser::Positionals() const {
  if (positionals_.size() <= 1) return {};
  return {positionals_.begin() + 1, positionals_.end()};
}

bool ArgParser::HasFlag(const std::string& key) const {
  return options_.count(key) > 0;
}

std::optional<std::string> ArgParser::GetString(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& fallback) const {
  return GetString(key).value_or(fallback);
}

double ArgParser::GetDouble(const std::string& key, double fallback) const {
  const auto v = GetString(key);
  if (!v) return fallback;
  if (v->empty()) {
    throw std::invalid_argument("--" + key +
                                ": expected a number but none was given");
  }
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": expected a number, got '" +
                                *v + "'");
  }
}

long long ArgParser::GetInt(const std::string& key, long long fallback) const {
  const auto v = GetString(key);
  if (!v) return fallback;
  if (v->empty()) {
    throw std::invalid_argument("--" + key +
                                ": expected an integer but none was given");
  }
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + ": expected an integer, got '" +
                                *v + "'");
  }
}

std::string ArgParser::Spelling(const std::string& key) const {
  const auto it = spelling_.find(key);
  return it == spelling_.end() ? "--" + key : it->second;
}

std::vector<std::string> ArgParser::UnknownKeys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : options_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

}  // namespace pe
