// Minimal command-line argument parsing for the CLI tool and benches.
//
// Grammar (explicit, covered by tests/common_args_test.cc):
//   --key value     long option; the next token is consumed as the value
//                   unless it is itself an option token, so negative
//                   numbers ("--rate -5") and dash-prefixed strings
//                   ("--rate -inf") both work.  An option listed in the
//                   constructor's `flags` set never consumes a value, so
//                   "--csv sweep" keeps "sweep" positional; an UNdeclared
//                   bare flag followed by a positional swallows it --
//                   write "sub --csv", not "--csv sub", for those.
//   --key=value     long option with inline value ("--key=" is an empty
//                   value; numeric getters reject it with a clear error).
//   --verbose       bare flag (stored with an empty value).
//   -h              short flag: exactly '-' plus one letter, stored under
//                   its body ("h").  Short flags never consume a value;
//                   "-5", "-.5", "-inf" are plain values, not flags.
//   --              end-of-options separator; everything after is
//                   positional.
// Option names must start with a letter: "--5" is a plain value token, so
// "--rate --5" assigns the literal "--5" and GetDouble reports it instead
// of silently creating two bare flags.  The first positional token is the
// subcommand, remaining ones are positional.  No external dependencies;
// deterministic error messages.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pe {

class ArgParser {
 public:
  // `flags` lists option names known to take no value ("csv", "help");
  // they never consume the following token.
  ArgParser(int argc, const char* const* argv,
            std::vector<std::string> flags = {});

  // Program name (argv[0]).
  const std::string& program() const { return program_; }

  // First positional token, if any (conventionally the subcommand).
  std::optional<std::string> Subcommand() const;

  // Positional tokens after the subcommand.
  std::vector<std::string> Positionals() const;

  bool HasFlag(const std::string& key) const;

  std::optional<std::string> GetString(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  // Throws std::invalid_argument on malformed numbers.
  double GetDouble(const std::string& key, double fallback) const;
  long long GetInt(const std::string& key, long long fallback) const;

  // All unrecognized "--key"s given the set of known keys; used for
  // friendly error reporting.
  std::vector<std::string> UnknownKeys(
      const std::vector<std::string>& known) const;

  // The option as the user spelled it ("--rate", "-h"); "--key" for keys
  // that were never given.  Lets error messages echo the original token.
  std::string Spelling(const std::string& key) const;

 private:
  std::string program_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;  // key -> value ("" for flag)
  std::map<std::string, std::string> spelling_;  // key -> original token
};

}  // namespace pe
