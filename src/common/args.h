// Minimal command-line argument parsing for the CLI tool and benches.
//
// Supports "--key value", "--key=value" and bare flags ("--verbose"); the
// first non-flag token is the subcommand, remaining bare tokens are
// positional.  No external dependencies; deterministic error messages.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pe {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  // Program name (argv[0]).
  const std::string& program() const { return program_; }

  // First positional token, if any (conventionally the subcommand).
  std::optional<std::string> Subcommand() const;

  // Positional tokens after the subcommand.
  std::vector<std::string> Positionals() const;

  bool HasFlag(const std::string& key) const;

  std::optional<std::string> GetString(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  // Throws std::invalid_argument on malformed numbers.
  double GetDouble(const std::string& key, double fallback) const;
  long long GetInt(const std::string& key, long long fallback) const;

  // All unrecognized "--key"s given the set of known keys; used for
  // friendly error reporting.
  std::vector<std::string> UnknownKeys(
      const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;  // key -> value ("" for flag)
};

}  // namespace pe
