#include "common/log.h"

#include <atomic>
#include <iostream>

namespace pe {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

void Emit(LogLevel level, const std::string& message) {
  std::cerr << '[' << LevelName(level) << "] " << message << '\n';
}

}  // namespace internal
}  // namespace pe
