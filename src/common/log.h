// Minimal leveled logger.
//
// The simulator is a library, so logging is off by default (kWarn) and
// controlled globally; there is no global mutable state other than the
// level, and output goes to stderr to keep stdout clean for bench tables.
#pragma once

#include <sstream>
#include <string>

namespace pe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets/gets the global log threshold.  Messages below the threshold are
// discarded without formatting cost (the macro checks level first).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, const std::string& message);
}  // namespace internal

}  // namespace pe

#define PE_LOG(level_enum, expr)                                    \
  do {                                                              \
    if (static_cast<int>(level_enum) >=                             \
        static_cast<int>(::pe::GetLogLevel())) {                    \
      std::ostringstream pe_log_oss_;                               \
      pe_log_oss_ << expr;                                          \
      ::pe::internal::Emit(level_enum, pe_log_oss_.str());          \
    }                                                               \
  } while (0)

#define PE_DEBUG(expr) PE_LOG(::pe::LogLevel::kDebug, expr)
#define PE_INFO(expr) PE_LOG(::pe::LogLevel::kInfo, expr)
#define PE_WARN(expr) PE_LOG(::pe::LogLevel::kWarn, expr)
#define PE_ERROR(expr) PE_LOG(::pe::LogLevel::kError, expr)
