#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace pe {
namespace {

// Stateful SplitMix64 stream over the shared Mix64 finalizer: returns
// Mix64 of the advanced state.  Bit-identical to the historical inline
// implementation (the gamma added before mixing is the same one Mix64
// applies internally).
std::uint64_t SplitMix64(std::uint64_t& x) {
  const std::uint64_t z = Mix64(x);
  x += 0x9E3779B97F4A7C15ULL;
  return z;
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextU64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw;
  do {
    draw = NextU64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  // 1 - u is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

Rng Rng::Fork() {
  Rng child(0);
  for (auto& w : child.state_) w = NextU64();
  return child;
}

}  // namespace pe
