// Deterministic random number generation.
//
// The simulator must be reproducible: the same configuration and seed must
// produce bit-identical traces and results on every platform.  We therefore
// avoid std::mt19937 + std::*_distribution (whose outputs are not specified
// across standard library implementations) and implement a small, fully
// specified generator (xoshiro256**) together with the handful of
// distributions the paper's workload model needs: uniform, exponential
// (Poisson inter-arrival gaps) and log-normal (batch-size distribution).
#pragma once

#include <array>
#include <cstdint>

namespace pe {

// SplitMix64 step (Steele et al.): adds the golden-ratio gamma and runs
// the bijective 64-bit finalizer.  This is the single shared definition of
// the mixer the whole codebase uses -- Rng seeds its xoshiro state with it,
// and the fleet tier derives hash salts and per-server seed streams from
// it as a pure function (no generator state).
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
// implementation), seeded via SplitMix64 so that any 64-bit seed --
// including zero -- yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform 64-bit draw.
  std::uint64_t NextU64();

  // Uniform double in [0, 1).  Uses the top 53 bits of a 64-bit draw.
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Exponentially distributed draw with the given rate parameter
  // (mean = 1/rate).  Requires rate > 0.
  double Exponential(double rate);

  // Standard normal draw (Box-Muller, both values used alternately).
  double Normal();

  // Normal draw with given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Log-normal draw: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Derives an independent child stream; used to give each simulator
  // component its own stream so that adding draws in one component does not
  // perturb another.
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pe
