// Simulation time representation.
//
// All simulator components agree on a single integral time base so that
// event ordering is exact and runs are bit-reproducible.  Time is measured
// in nanoseconds since the start of the simulation and stored in a signed
// 64-bit integer, which covers ~292 years of simulated time -- far beyond
// any experiment in this repository.
#pragma once

#include <cstdint>

namespace pe {

// Nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNsPerUs = 1'000;
inline constexpr SimTime kNsPerMs = 1'000'000;
inline constexpr SimTime kNsPerSec = 1'000'000'000;

// Converts a duration in (floating-point) milliseconds to SimTime ticks,
// rounding to the nearest nanosecond.  Negative durations are preserved.
constexpr SimTime MsToTicks(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kNsPerMs) +
                              (ms >= 0 ? 0.5 : -0.5));
}

// Converts a duration in (floating-point) microseconds to SimTime ticks.
constexpr SimTime UsToTicks(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kNsPerUs) +
                              (us >= 0 ? 0.5 : -0.5));
}

// Converts a duration in (floating-point) seconds to SimTime ticks.
constexpr SimTime SecToTicks(double sec) {
  return static_cast<SimTime>(sec * static_cast<double>(kNsPerSec) +
                              (sec >= 0 ? 0.5 : -0.5));
}

// Converts SimTime ticks to milliseconds.
constexpr double TicksToMs(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerMs);
}

// Converts SimTime ticks to seconds.
constexpr double TicksToSec(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

}  // namespace pe
