#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pe {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Percentile::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Percentile::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Percentile::Value(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  assert(p >= 0.0 && p <= 100.0);
  if (samples_.size() == 1) return samples_.front();
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo_idx);
  if (lo_idx + 1 >= samples_.size()) return samples_.back();
  return samples_[lo_idx] * (1.0 - frac) + samples_[lo_idx + 1] * frac;
}

double Percentile::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Percentile::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

void Percentile::Clear() {
  samples_.clear();
  sorted_ = true;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

}  // namespace pe
