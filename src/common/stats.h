// Statistics utilities used by the metrics and experiment layers:
//  * StreamingStats -- O(1)-memory mean/variance/min/max (Welford).
//  * Percentile     -- exact percentile over a retained sample vector
//                      (tail latency is the paper's headline metric, so we
//                      keep exact samples rather than an approximate sketch).
//  * Histogram      -- fixed-width bin counts for distribution printing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pe {

// Welford's online algorithm for mean and variance.
class StreamingStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance; zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merges another accumulator into this one (parallel Welford merge).
  void Merge(const StreamingStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exact percentile estimator.  Samples are retained; Value() sorts lazily.
class Percentile {
 public:
  void Add(double x);
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }

  // Returns the p-th percentile (p in [0, 100]) using linear interpolation
  // between closest ranks.  Returns 0 for an empty set.
  double Value(double p) const;

  // Convenience accessors for the percentiles the paper reports.
  double P50() const { return Value(50.0); }
  double P95() const { return Value(95.0); }
  double P99() const { return Value(99.0); }

  double Mean() const;
  double Max() const;

  void Clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;

  void EnsureSorted() const;
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// first/last bin so no sample is dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace pe
