#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace pe {
namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  assert(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << CsvEscape(row[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace pe
