// ASCII table and CSV output.
//
// The bench harness reproduces the paper's tables and figures as text: each
// bench binary prints an aligned ASCII table (human-readable, diffable) and
// can optionally emit the same rows as CSV for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pe {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row.  Rows shorter than the header are padded with empty cells;
  // longer rows are an error (asserted).
  void AddRow(std::vector<std::string> row);

  // Convenience: formats a double with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);

  std::size_t rows() const { return rows_.size(); }

  // Renders an aligned ASCII table with a header rule.
  void Print(std::ostream& os) const;

  // Renders RFC-4180-ish CSV (fields containing comma/quote/newline are
  // quoted, quotes doubled).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pe
