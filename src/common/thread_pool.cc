#include "common/thread_pool.h"

#include <algorithm>

namespace pe {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

std::size_t ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace pe
