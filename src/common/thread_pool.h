// Fixed-size thread pool for fanning out independent simulation probes.
//
// Deliberately simple -- no work stealing, no priorities, no resizing: the
// experiment layer's tasks are coarse (one discrete-event simulation each),
// so a single locked queue is nowhere near contention.  Guarantees:
//
//   * Submit() returns a std::future carrying the task's result; an
//     exception thrown by the task is captured and rethrown from get().
//   * The destructor drains the queue: every task submitted before
//     destruction runs to completion before the workers join.
//   * ParallelMap(n, jobs, fn) evaluates fn(0..n-1) on up to `jobs`
//     threads and returns the results ordered by index, so the output is
//     bit-identical to the serial loop for any thread count (fn must be a
//     pure function of its index).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace pe {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least one).
  explicit ThreadPool(std::size_t num_threads);

  // Drains all pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues `fn` for execution.  The returned future yields fn's result,
  // or rethrows the exception fn exited with.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  // std::thread::hardware_concurrency(), floored at 1 (the standard allows
  // it to report 0 when the core count is unknowable).
  static std::size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// Evaluates fn(i) for i in [0, n) with up to `jobs` threads and returns
// the results in index order.  jobs <= 1 (or n <= 1) runs inline with no
// pool at all, so the serial path stays allocation- and thread-free.  The
// first exception (by index order) propagates to the caller.
template <typename Fn>
auto ParallelMap(std::size_t n, int jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_void_v<R>, "ParallelMap requires a non-void result");
  std::vector<R> results;
  results.reserve(n);
  if (n <= 1 || jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) results.push_back(fn(i));
    return results;
  }
  ThreadPool pool(std::min(static_cast<std::size_t>(jobs), n));
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.Submit([&fn, i] { return fn(i); }));
  }
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace pe
