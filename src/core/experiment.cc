#include "core/experiment.h"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "common/thread_pool.h"

namespace pe::core {
namespace {

double ProbeP95(const Testbed& testbed, const partition::PartitionPlan& plan,
                SchedulerKind kind, double rate_qps,
                const SearchOptions& options, sched::ElsaParams elsa) {
  auto scheduler = testbed.MakeScheduler(kind, elsa);
  RunOptions run;
  run.rate_qps = rate_qps;
  run.num_queries = options.num_queries;
  run.seed = options.seed;
  const auto stats =
      testbed.Run(plan, *scheduler, run).Stats(testbed.sla_target());
  return stats.p95_latency_ms;
}

}  // namespace

ThroughputResult LatencyBoundedThroughput(const Testbed& testbed,
                                          const partition::PartitionPlan& plan,
                                          SchedulerKind kind,
                                          double tail_bound_ms,
                                          const SearchOptions& options,
                                          sched::ElsaParams elsa) {
  assert(tail_bound_ms > 0.0);
  // Bracket: grow the offered rate geometrically until the bound breaks.
  double lo = 0.0;
  double hi = options.initial_rate_qps;
  double p95_lo = 0.0;
  for (;;) {
    const double p95 = ProbeP95(testbed, plan, kind, hi, options, elsa);
    if (p95 > tail_bound_ms) break;
    lo = hi;
    p95_lo = p95;
    hi *= 2.0;
    if (hi > options.max_rate_qps) {
      // Even the cap satisfies the bound; report the cap.
      return ThroughputResult{options.max_rate_qps, p95};
    }
  }
  if (lo == 0.0) {
    // The initial rate already violates the bound: search down instead.
    hi = options.initial_rate_qps;
    lo = hi / 1024.0;
    const double p95 = ProbeP95(testbed, plan, kind, lo, options, elsa);
    if (p95 > tail_bound_ms) {
      // Unachievable even at negligible load.
      return ThroughputResult{0.0, p95};
    }
    p95_lo = p95;
  }
  // Bisect [lo, hi].
  for (int i = 0; i < options.iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double p95 = ProbeP95(testbed, plan, kind, mid, options, elsa);
    if (p95 > tail_bound_ms) {
      hi = mid;
    } else {
      lo = mid;
      p95_lo = p95;
    }
  }
  return ThroughputResult{lo, p95_lo};
}

std::vector<RatePoint> TailLatencyCurve(
    const Testbed& testbed, const partition::PartitionPlan& plan,
    SchedulerKind kind, const std::vector<double>& load_fractions,
    double tail_bound_ms, const SearchOptions& options) {
  const ThroughputResult bound =
      LatencyBoundedThroughput(testbed, plan, kind, tail_bound_ms, options);
  // Every sweep point is an independent simulation at a rate known up
  // front, so the whole curve fans out across options.jobs threads.
  return ParallelMap(
      load_fractions.size(), options.jobs, [&](std::size_t i) {
        const double rate = std::max(1e-3, load_fractions[i] * bound.qps);
        auto scheduler = testbed.MakeScheduler(kind);
        RunOptions run;
        run.rate_qps = rate;
        run.num_queries = options.num_queries;
        run.seed = options.seed;
        const auto stats =
            testbed.Run(plan, *scheduler, run).Stats(testbed.sla_target());
        RatePoint p;
        p.offered_qps = rate;
        p.achieved_qps = stats.achieved_qps;
        p.p95_ms = stats.p95_latency_ms;
        p.mean_ms = stats.mean_latency_ms;
        p.violation_rate = stats.sla_violation_rate;
        p.utilization = stats.mean_worker_utilization;
        return p;
      });
}

HomogeneousChoice BestHomogeneous(const Testbed& testbed, SchedulerKind kind,
                                  double tail_bound_ms,
                                  const SearchOptions& options) {
  static constexpr int kSizes[] = {1, 2, 3, 7};
  const auto results = ParallelMap(
      std::size(kSizes), options.jobs, [&](std::size_t i) {
        const auto plan = testbed.PlanHomogeneous(kSizes[i]);
        return LatencyBoundedThroughput(testbed, plan, kind, tail_bound_ms,
                                        options);
      });
  // Scan in candidate order so ties resolve exactly as the serial loop did
  // (first strictly-greater wins).
  HomogeneousChoice best;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].qps > best.qps) {
      best.qps = results[i].qps;
      best.partition_gpcs = kSizes[i];
    }
  }
  return best;
}

std::vector<ThroughputResult> LatencyBoundedThroughputBatch(
    const Testbed& testbed, const std::vector<ProbeSpec>& specs,
    double tail_bound_ms, const SearchOptions& options) {
  return ParallelMap(specs.size(), options.jobs, [&](std::size_t i) {
    return LatencyBoundedThroughput(testbed, specs[i].plan, specs[i].kind,
                                    tail_bound_ms, options, specs[i].elsa);
  });
}

}  // namespace pe::core
