// Experiment harness for the paper's evaluation metrics.
//
//  * LatencyBoundedThroughput: the paper's Figure 12 metric -- the maximum
//    offered load (queries/sec) at which the p95 tail latency stays within
//    the bound.  Found by exponential growth + bisection over offered rate.
//  * TailLatencyCurve: the paper's Figure 11 -- (achieved throughput, p95)
//    points across an offered-load sweep.
//  * BestHomogeneous: the paper's GPU(max) -- the homogeneous design with
//    the highest latency-bounded throughput, found by brute force exactly
//    as the paper describes system architects would have to.
#pragma once

#include <string>
#include <vector>

#include "core/server_builder.h"

namespace pe::core {

struct SearchOptions {
  std::size_t num_queries = 6000;
  std::uint64_t seed = 7;
  // Bisection iterations after bracketing; 10 gives <0.1% rate resolution.
  int iterations = 10;
  double initial_rate_qps = 4.0;
  double max_rate_qps = 1.0e6;
  // Worker threads for the fan-out entry points (TailLatencyCurve sweep
  // points, BestHomogeneous candidates, batch probes).  Each task runs a
  // fresh scheduler + seeded RNG, so any jobs value produces bit-identical
  // results to the serial loop; 1 keeps everything inline and thread-free.
  int jobs = 1;
};

struct ThroughputResult {
  double qps = 0.0;             // latency-bounded throughput
  double p95_at_qps_ms = 0.0;   // tail latency at that load
};

// Max offered rate whose p95 latency (ms) stays <= `tail_bound_ms`.
// Uses a fresh scheduler instance per probe run.
ThroughputResult LatencyBoundedThroughput(
    const Testbed& testbed, const partition::PartitionPlan& plan,
    SchedulerKind kind, double tail_bound_ms,
    const SearchOptions& options = SearchOptions{},
    sched::ElsaParams elsa = sched::ElsaParams{});

struct RatePoint {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p95_ms = 0.0;
  double mean_ms = 0.0;
  double violation_rate = 0.0;
  double utilization = 0.0;
};

// Sweeps offered load over `load_fractions` x the design's latency-bounded
// throughput and reports one point per load level.
std::vector<RatePoint> TailLatencyCurve(
    const Testbed& testbed, const partition::PartitionPlan& plan,
    SchedulerKind kind, const std::vector<double>& load_fractions,
    double tail_bound_ms, const SearchOptions& options = SearchOptions{});

struct HomogeneousChoice {
  int partition_gpcs = 0;   // the GPU(max) size
  double qps = 0.0;         // its latency-bounded throughput
};

// Brute-force GPU(max): best homogeneous size among {1, 2, 3, 7} under the
// given scheduler (the paper excludes GPU(4) because 7 GPCs/GPU strand 3
// GPCs per A100 under GPU(4) homogeneous partitioning).  The four
// candidate searches are independent and fan out across `options.jobs`
// threads.
HomogeneousChoice BestHomogeneous(
    const Testbed& testbed, SchedulerKind kind, double tail_bound_ms,
    const SearchOptions& options = SearchOptions{});

// One named (plan, scheduler) probe for the batch entry point below.
struct ProbeSpec {
  std::string label;
  partition::PartitionPlan plan;
  SchedulerKind kind = SchedulerKind::kFifs;
  sched::ElsaParams elsa;
};

// Latency-bounded throughput of many independent designs at once -- the
// unit of work behind the Fig. 12 / Table 1 sweeps.  Probes fan out across
// `options.jobs` threads; the result vector is index-aligned with `specs`
// and bit-identical to calling LatencyBoundedThroughput in a serial loop.
std::vector<ThroughputResult> LatencyBoundedThroughputBatch(
    const Testbed& testbed, const std::vector<ProbeSpec>& specs,
    double tail_bound_ms, const SearchOptions& options = SearchOptions{});

}  // namespace pe::core
