#include "core/fleet_runner.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "online/failover_controller.h"
#include "partition/mix.h"
#include "sched/baselines.h"
#include "sched/fifs.h"

namespace pe::core {

namespace {

fleet::PlacementMap BuildPlacement(const FleetTestbedConfig& config,
                                   int num_models) {
  switch (config.placement) {
    case fleet::PlacementKind::kUniform:
      return fleet::UniformPlacement(config.num_servers, num_models,
                                     config.mix.gpc_budget);
    case fleet::PlacementKind::kSharded:
      return fleet::ShardedPlacement(config.num_servers, num_models,
                                     config.replicas,
                                     config.mix.gpc_budget);
  }
  throw std::invalid_argument("FleetTestbed: unknown placement kind");
}

}  // namespace

FleetTestbed::FleetTestbed(FleetTestbedConfig config)
    : config_(std::move(config)), mix_(config_.mix) {
  if (config_.num_servers < 1) {
    throw std::invalid_argument("FleetTestbed: num_servers must be >= 1");
  }

  fleet::PlacementMap placement =
      BuildPlacement(config_, mix_.num_models());

  // Planner pass: each server gets a mixed-PARIS layout for exactly the
  // models it hosts, their global traffic shares renormalized within the
  // server (ShareBudgets normalizes internally).
  for (int s = 0; s < placement.num_servers(); ++s) {
    fleet::ServerPlacement& sp = placement.mutable_server(s);
    sp.partition_gpcs =
        partition::PlanMixedParis(mix_.PlannerInputs(sp.model_ids),
                                  mix_.cluster(), sp.gpc_budget,
                                  config_.mix.paris)
            .plan.instance_gpcs;
  }

  fleet::FleetConfig fc;
  fc.policy = config_.policy;
  fc.sla_target = mix_.sla_target();
  fc.latency_noise_sigma = config_.mix.latency_noise_sigma;
  fc.model_swap_cost = UsToTicks(config_.mix.swap_cost_us);
  fc.seed = config_.seed;
  fc.reference_engine = config_.reference_engine;

  // Value-captured so the factory is self-contained (it runs on pool
  // threads during Simulate); the per-server repertoire argument is owned
  // by the cluster and outlives the scheduler.
  const SchedulerKind kind = config_.scheduler;
  sched::ElsaParams elsa = config_.elsa;
  if (elsa.swap_cost_sec == 0.0) {
    // Keep the slack predictor honest by default: fold the simulator's
    // swap penalty into ELSA's Twait unless the caller tuned it already.
    elsa.swap_cost_sec = config_.mix.swap_cost_us * 1e-6;
  }
  if (config_.reference_engine) {
    // Reference fleets run the full pre-optimization stack, scheduler
    // lookups included (same pairing engine_golden_test pins).
    elsa.compiled_lookups = false;
  }
  const SimTime sla = mix_.sla_target();
  fleet::SchedulerFactory factory =
      [kind, elsa, sla](int /*server_id*/,
                        const profile::ModelRepertoire& repertoire)
      -> std::unique_ptr<sched::Scheduler> {
    switch (kind) {
      case SchedulerKind::kFifs:
        return std::make_unique<sched::FifsScheduler>();
      case SchedulerKind::kElsa:
        return std::make_unique<sched::ElsaScheduler>(repertoire, sla, elsa);
      case SchedulerKind::kJsq:
        return std::make_unique<sched::JsqScheduler>();
      case SchedulerKind::kGreedyFastest:
        return std::make_unique<sched::GreedyFastestScheduler>(
            repertoire.profile(0));
    }
    throw std::invalid_argument("FleetTestbed: unknown scheduler kind");
  };

  cluster_ = std::make_unique<fleet::Cluster>(fc, std::move(placement),
                                              mix_.repertoire(),
                                              std::move(factory));
}

workload::QueryTrace FleetTestbed::GenerateFleetTrace(
    double rate_qps, std::size_t num_queries, std::uint64_t seed) const {
  return mix_.GenerateMix(rate_qps, num_queries, seed);
}

fleet::FleetResult FleetTestbed::Run(const workload::QueryTrace& trace,
                                     int jobs) const {
  return cluster_->Simulate(trace, jobs);
}

fleet::FaultPlan FleetTestbed::ResolveFaults(
    const fleet::FaultOptions& opts,
    const workload::QueryTrace& trace) const {
  if (trace.size() == 0) {
    throw std::invalid_argument("ResolveFaults: empty trace");
  }
  const SimTime span = trace.queries().back().arrival;
  return fleet::ResolveFaultPlan(opts, placement(), std::max<SimTime>(span, 1),
                                 config_.seed);
}

fleet::FleetResult FleetTestbed::RunWithFaults(
    const workload::QueryTrace& trace, const fleet::FaultPlan& plan,
    int jobs) const {
  return fleet::SimulateWithFaults(*cluster_, trace, plan, jobs,
                                   plan.repartition ? MakeReplanFn()
                                                    : fleet::ReplanFn{});
}

fleet::ReplanFn FleetTestbed::MakeReplanFn() const {
  // Value-captured controller; the planner inputs borrow profiles and
  // batch distributions from mix_, which this testbed owns and outlives
  // every RunWithFaults call.
  online::FailoverRepartitionController controller(mix_.cluster(),
                                                   config_.mix.paris);
  return [this, controller](int server,
                            const std::vector<int>& down) -> std::vector<int> {
    const fleet::ServerPlacement& sp = placement().server(server);
    std::vector<partition::MixModelInput> inputs =
        mix_.PlannerInputs(sp.model_ids);
    std::vector<int> full(sp.model_ids.size(), 0);
    std::vector<int> surviving(sp.model_ids.size(), 0);
    for (std::size_t i = 0; i < sp.model_ids.size(); ++i) {
      const std::vector<int>& reps = placement().Replicas(sp.model_ids[i]);
      full[i] = static_cast<int>(reps.size());
      for (const int r : reps) {
        if (!std::binary_search(down.begin(), down.end(), r)) {
          ++surviving[i];
        }
      }
    }
    inputs = online::FailoverRepartitionController::ScaleForOutage(
        std::move(inputs), full, surviving);
    return controller.PlanDegraded(inputs, sp.gpc_budget);
  };
}

fleet::FleetStats FleetTestbed::RunStats(const workload::QueryTrace& trace,
                                         int jobs) const {
  // The stats reduction fans out over the same job budget the simulate
  // stage used (FleetResult::Stats is jobs-invariant bit-for-bit).
  return Run(trace, jobs).Stats(sla_target(), /*warmup_fraction=*/0.1, jobs);
}

}  // namespace pe::core
