// FleetTestbed: the fleet-scale counterpart of MixTestbed.
//
// Owns everything a multi-server serving experiment needs:
//   * the model zoo, traffic mix, and shared SLA (delegated to an
//     embedded MixTestbed -- one server's world, reused N times),
//   * the fleet PlacementMap (uniform replication or round-robin
//     sharding), with every server's MIG layout derived by running
//     mixed-PARIS over exactly the models that server hosts (a sharded
//     server partitions for its shard, not for the whole zoo),
//   * the fleet::Cluster wiring per-server repertoires, RNG streams, and
//     a scheduler factory for the configured SchedulerKind.
//
// Typical use (mirrors Testbed/MixTestbed):
//   core::FleetTestbed ft(core::FleetTestbedConfig{...});
//   auto trace = ft.GenerateFleetTrace(2000.0, 1'000'000, /*seed=*/1);
//   auto stats = ft.Run(trace, /*jobs=*/8).Stats(ft.sla_target());
#pragma once

#include <cstdint>
#include <memory>

#include "core/mix_runner.h"
#include "core/server_builder.h"
#include "fleet/cluster.h"
#include "fleet/failover.h"
#include "fleet/fault.h"
#include "fleet/placement.h"
#include "fleet/router.h"
#include "sched/elsa.h"
#include "workload/trace.h"

namespace pe::core {

struct FleetTestbedConfig {
  // Model zoo, traffic shares, per-server GPC budget / GPU count, swap
  // cost, and noise all come from the mix config; gpc_budget applies to
  // every server.
  MixConfig mix;
  int num_servers = 4;
  fleet::PlacementKind placement = fleet::PlacementKind::kUniform;
  // Replica count per model under sharded placement (clamped to
  // [1, num_servers]); ignored for uniform.
  int replicas = 2;
  fleet::RouterPolicy policy = fleet::RouterPolicy::kHash;
  SchedulerKind scheduler = SchedulerKind::kElsa;
  sched::ElsaParams elsa;
  // Fleet seed: every server stream and the router stream derive from it
  // (fleet::Cluster::ServerSeed / RouterSeed).
  std::uint64_t seed = 0x5EED;
  bool reference_engine = false;
};

class FleetTestbed {
 public:
  explicit FleetTestbed(FleetTestbedConfig config);

  const FleetTestbedConfig& config() const { return config_; }
  const MixTestbed& mix() const { return mix_; }
  const fleet::Cluster& cluster() const { return *cluster_; }
  const fleet::PlacementMap& placement() const {
    return cluster_->placement();
  }
  SimTime sla_target() const { return mix_.sla_target(); }
  int num_servers() const { return config_.num_servers; }

  // Fleet-level interleaved trace at `rate_qps` *total* offered load
  // (the router divides it across servers).
  workload::QueryTrace GenerateFleetTrace(double rate_qps,
                                          std::size_t num_queries,
                                          std::uint64_t seed) const;

  // Routes + replays `trace` over up to `jobs` threads; bit-identical
  // per-server records for any jobs >= 1.
  fleet::FleetResult Run(const workload::QueryTrace& trace, int jobs) const;

  // Convenience: Run + Stats at this fleet's SLA target; `jobs` drives
  // both the simulate fan-out and the parallel stats reduction.
  fleet::FleetStats RunStats(const workload::QueryTrace& trace,
                             int jobs) const;

  // Resolves a parsed `--faults` reference into a concrete schedule over
  // `trace`'s span (last arrival) against this fleet's placement, seeded
  // by the fleet seed.  Throws std::invalid_argument on an unknown
  // preset/key or an empty trace.
  fleet::FaultPlan ResolveFaults(const fleet::FaultOptions& opts,
                                 const workload::QueryTrace& trace) const;

  // Runs `trace` under `plan`: health-patched routing, retry/shed
  // failover, and -- when plan.repartition -- degraded-capacity
  // repartition of survivors through the online mixed-PARIS planner
  // (MakeReplanFn).  An empty plan is bit-identical to Run().
  fleet::FleetResult RunWithFaults(const workload::QueryTrace& trace,
                                   const fleet::FaultPlan& plan,
                                   int jobs) const;

  // The degraded-capacity repartition hook RunWithFaults wires in:
  // survivor layouts re-planned with each impacted model's share scaled
  // by full/surviving replica counts (online::FailoverRepartition-
  // Controller over this testbed's planner inputs).
  fleet::ReplanFn MakeReplanFn() const;

 private:
  FleetTestbedConfig config_;
  MixTestbed mix_;
  std::unique_ptr<fleet::Cluster> cluster_;
};

}  // namespace pe::core
