#include "core/mix_runner.h"

#include <algorithm>
#include <stdexcept>

#include "core/paper_config.h"
#include "sched/baselines.h"
#include "sched/elsa.h"
#include "sched/fifs.h"
#include "workload/arrival.h"

namespace pe::core {

MixTestbed::MixTestbed(MixConfig config)
    : config_(std::move(config)),
      cluster_(std::max(1, config_.num_gpus), config_.gpu) {
  if (config_.models.empty()) {
    throw std::invalid_argument("MixTestbed: no models configured");
  }
  if (config_.swap_cost_us < 0.0) {
    throw std::invalid_argument("MixTestbed: negative swap cost");
  }
  const perf::RooflineEngine engine(config_.gpu, config_.roofline);
  std::vector<std::string> names;
  names.reserve(config_.models.size());
  for (const auto& m : config_.models) {
    if (std::find(names.begin(), names.end(), m.model) != names.end()) {
      throw std::invalid_argument("MixTestbed: duplicate model " + m.model);
    }
    names.push_back(m.model);
  }
  repertoire_ =
      profile::BuildZooRepertoire(names, engine, config_.max_batch);

  sla_target_ = 0;
  for (std::size_t i = 0; i < config_.models.size(); ++i) {
    const auto& m = config_.models[i];
    dists_.push_back(std::make_unique<workload::LogNormalBatchDist>(
        m.dist_median, m.dist_sigma, config_.max_batch));
    workload::MixComponent component;
    component.model_id = static_cast<int>(i);
    component.share = m.share;
    component.dist = dists_.back().get();
    mix_.components.push_back(component);
    // The shared SLA is the strictest rule that covers every model: the
    // max of the per-model Section V targets.
    sla_target_ = std::max(
        sla_target_, SlaTarget(repertoire_.profile(static_cast<int>(i)),
                               config_.max_batch, config_.sla_n));
  }
  mix_.NormalizedShares();  // validates the share vector
}

std::vector<std::string> MixTestbed::ModelNames() const {
  std::vector<std::string> names;
  names.reserve(config_.models.size());
  for (const auto& m : config_.models) names.push_back(m.model);
  return names;
}

std::vector<partition::MixModelInput> MixTestbed::PlannerInputs(
    const std::vector<int>& model_ids) const {
  std::vector<partition::MixModelInput> inputs;
  inputs.reserve(model_ids.size());
  for (int m : model_ids) {
    const auto& c = mix_.components.at(static_cast<std::size_t>(m));
    partition::MixModelInput in;
    in.model_id = c.model_id;
    in.share = c.share;
    in.profile = &repertoire_.profile(c.model_id);
    in.dist = c.dist;
    inputs.push_back(in);
  }
  return inputs;
}

partition::MixedPlan MixTestbed::PlanMixed() const {
  std::vector<int> all(config_.models.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return partition::PlanMixedParis(PlannerInputs(all), cluster_,
                                   config_.gpc_budget, config_.paris);
}

workload::ScenarioSpec MixTestbed::ScenarioFor(double rate_qps) const {
  workload::ScenarioSpec spec;
  spec.rate.base_qps = rate_qps;
  spec.max_batch = config_.max_batch;
  for (std::size_t i = 0; i < config_.models.size(); ++i) {
    const auto& m = config_.models[i];
    workload::ComponentSpec c;
    c.model_id = static_cast<int>(i);
    c.model_name = m.model;
    c.weight = m.share;
    c.median = m.dist_median;
    c.sigma = m.dist_sigma;
    spec.components.push_back(std::move(c));
  }
  return spec;
}

workload::QueryTrace MixTestbed::GenerateMix(double rate_qps,
                                             std::size_t num_queries,
                                             std::uint64_t seed) const {
  return workload::GenerateScenarioTrace(ScenarioFor(rate_qps), num_queries,
                                         seed);
}

std::unique_ptr<sched::Scheduler> MixTestbed::MakeScheduler(
    SchedulerKind kind, sched::ElsaParams elsa) const {
  // Keep ELSA's slack predictor honest about this testbed's swap penalty
  // unless the caller tuned the knob explicitly; a swap-free mix
  // (swap_cost_us == 0) leaves the predictor untouched either way.
  if (elsa.swap_cost_sec == 0.0) {
    elsa.swap_cost_sec = config_.swap_cost_us * 1e-6;
  }
  switch (kind) {
    case SchedulerKind::kFifs:
      return std::make_unique<sched::FifsScheduler>();
    case SchedulerKind::kElsa:
      return std::make_unique<sched::ElsaScheduler>(repertoire_, sla_target_,
                                                    elsa);
    case SchedulerKind::kJsq:
      return std::make_unique<sched::JsqScheduler>();
    case SchedulerKind::kGreedyFastest:
      return std::make_unique<sched::GreedyFastestScheduler>(
          repertoire_.profile(0));
  }
  throw std::invalid_argument("MixTestbed::MakeScheduler: unknown kind");
}

sim::SimResult MixTestbed::Run(const std::vector<int>& partition_gpcs,
                               sched::Scheduler& scheduler,
                               const workload::QueryTrace& trace,
                               std::uint64_t seed) const {
  if (partition_gpcs.empty()) {
    throw std::invalid_argument("MixTestbed::Run: empty partition layout");
  }
  sim::ServerConfig sc;
  sc.partition_gpcs = partition_gpcs;
  sc.sla_target = sla_target_;
  sc.latency_noise_sigma = config_.latency_noise_sigma;
  sc.seed = seed ^ 0xA5A5A5A5ULL;  // matches Testbed::Run
  sc.model_swap_cost = UsToTicks(config_.swap_cost_us);
  sim::InferenceServer server(sc, repertoire_, scheduler);
  return server.Run(trace);
}

}  // namespace pe::core
