// MixTestbed: the multi-model counterpart of Testbed.
//
// Owns, for a *mix* of DNN models sharing one MIG server:
//   * a ModelRepertoire (per-model profile table + ground-truth latency),
//   * per-model batch-size distributions and traffic shares (MixSpec),
//   * the physical cluster and the total GPC budget,
//   * one SLA target (the strictest rule across the mix: the max of the
//     per-model Section V targets -- per-model SLA scheduling is a
//     follow-on, see ROADMAP).
//
// From it, callers derive consolidated (mixed-PARIS union) and dedicated
// (per-model) layouts, generate interleaved traces, and run trace-driven
// simulations with a configurable model-swap penalty.  A one-model mix
// with share 1.0 and swap cost 0 reproduces the single-model Testbed
// simulate path bit-for-bit (asserted by core_mix_test).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/server_builder.h"
#include "hw/cluster.h"
#include "partition/mix.h"
#include "profile/model_repertoire.h"
#include "sched/scheduler.h"
#include "sim/server.h"
#include "workload/batch_dist.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace pe::core {

struct MixModelConfig {
  std::string model = "resnet";  // model-zoo name
  double share = 1.0;            // relative traffic weight
  // Batch-size distribution (paper defaults).
  double dist_median = 6.0;
  double dist_sigma = 0.9;
};

struct MixConfig {
  std::vector<MixModelConfig> models;
  int max_batch = 32;
  double sla_n = 1.5;
  int num_gpus = 8;
  int gpc_budget = 48;
  // Model-swap penalty charged when a partition starts a query of a model
  // other than its resident one.
  double swap_cost_us = 0.0;
  double latency_noise_sigma = 0.0;
  perf::RooflineParams roofline;
  hw::GpuSpec gpu;
  partition::ParisConfig paris;
};

class MixTestbed {
 public:
  explicit MixTestbed(MixConfig config);

  const MixConfig& config() const { return config_; }
  const profile::ModelRepertoire& repertoire() const { return repertoire_; }
  const hw::Cluster& cluster() const { return cluster_; }
  SimTime sla_target() const { return sla_target_; }
  int num_models() const { return repertoire_.size(); }

  // The traffic mix (components borrow this testbed's distributions).
  const workload::MixSpec& mix() const { return mix_; }

  // Symbolic model names indexed by model id (the models[] vector of a
  // captured paris-elsa-trace-v1 document).
  std::vector<std::string> ModelNames() const;

  // Mixed-PARIS planner inputs for a subset of this testbed's models, with
  // their *global* traffic shares (PlanMixedParis renormalizes within the
  // subset).  The one builder behind PlanMixed and the fleet's per-server
  // planner pass, so both always agree on shares and distributions.
  std::vector<partition::MixModelInput> PlannerInputs(
      const std::vector<int>& model_ids) const;

  // Consolidated layout: per-model PARIS within share-derived budgets,
  // union packed on the cluster.
  partition::MixedPlan PlanMixed() const;

  // The declarative scenario equivalent of this testbed's mix at
  // `rate_qps` total offered load: constant rate, static weights, this
  // config's batch distributions.  Presets and key=val overrides
  // (workload::ApplyScenario) reshape it; drained unmodified it is
  // bit-identical to MixTraceSource on the same spec and seed.
  workload::ScenarioSpec ScenarioFor(double rate_qps) const;

  // Interleaved multi-model trace at `rate_qps` total offered load
  // (drains ScenarioFor(rate_qps) on a fresh Rng(seed)).
  workload::QueryTrace GenerateMix(double rate_qps, std::size_t num_queries,
                                   std::uint64_t seed) const;

  std::unique_ptr<sched::Scheduler> MakeScheduler(
      SchedulerKind kind, sched::ElsaParams elsa = sched::ElsaParams{}) const;

  // Replays `trace` on a server with the given partition sizes.  The seed
  // derivation matches Testbed::Run so the one-model mix is bit-identical
  // to the single-model simulate path.
  sim::SimResult Run(const std::vector<int>& partition_gpcs,
                     sched::Scheduler& scheduler,
                     const workload::QueryTrace& trace,
                     std::uint64_t seed) const;

 private:
  MixConfig config_;
  profile::ModelRepertoire repertoire_;
  std::vector<std::unique_ptr<workload::BatchDistribution>> dists_;
  workload::MixSpec mix_;
  hw::Cluster cluster_;
  SimTime sla_target_;
};

}  // namespace pe::core
