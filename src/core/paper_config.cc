#include "core/paper_config.h"

#include <stdexcept>

namespace pe::core {

const std::vector<ModelServerConfig>& PaperTable1() {
  static const std::vector<ModelServerConfig> kTable = {
      {"shufflenet", 4, 24, 28},
      {"mobilenet", 4, 24, 28},
      {"resnet", 8, 48, 56},
      {"bert", 6, 42, 42},
      {"conformer", 8, 48, 56},
  };
  return kTable;
}

const ModelServerConfig& Table1For(const std::string& model) {
  for (const auto& row : PaperTable1()) {
    if (row.model == model) return row;
  }
  throw std::invalid_argument("Table1For: unknown model " + model);
}

SimTime SlaTarget(const profile::ProfileTable& profile, int max_batch,
                  double sla_n) {
  const double base = profile.LatencySec(7, max_batch);
  return SecToTicks(sla_n * base);
}

}  // namespace pe::core
