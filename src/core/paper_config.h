// Paper evaluation configuration (Section V, Table I).
//
// Per model: the GPC budget granted to GPU(1,2,3)/Random/PARIS designs, the
// (larger) budget the GPU(7) homogeneous design uses, and the number of
// physical A100s -- all copied from Table I.  Also the SLA rule: N x the
// inference latency of the distribution's max batch on GPU(7), N = 1.5 by
// default.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "profile/profile_table.h"

namespace pe::core {

struct ModelServerConfig {
  std::string model;
  int num_gpus = 8;       // physical A100s (Table I bottom row)
  int gpc_budget = 48;    // GPCs for GPU(1,2,3), Random and PARIS
  int gpc_budget_gpu7 = 56;  // GPCs for the GPU(7) homogeneous design
};

// Table I rows for the five paper models.
const std::vector<ModelServerConfig>& PaperTable1();

// Looks up a model's Table I row; throws std::invalid_argument if unknown.
const ModelServerConfig& Table1For(const std::string& model);

// SLA target (Section V): sla_n x latency(GPU(7), max profiled batch).
SimTime SlaTarget(const profile::ProfileTable& profile, int max_batch,
                  double sla_n = 1.5);

}  // namespace pe::core
