#include "core/result_io.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace pe::core {

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::Set(const std::string& key, Json value) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Add(Json value) {
  assert(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray: return array_.size();
    case Kind::kObject: return object_.size();
    default: return 0;
  }
}

std::string Json::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Shortest round-trip decimal form; integral values get a ".0" suffix so
// the emitted token stays unambiguously a double.
void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  out.append(buf, end);
  if (out.find_first_of(".eE", out.size() - (end - buf)) == std::string::npos) {
    out += ".0";
  }
}

void AppendIndent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: AppendDouble(out, double_); break;
    case Kind::kString:
      out += '"';
      out += Escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) AppendIndent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) AppendIndent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) AppendIndent(out, indent, depth + 1);
        out += '"';
        out += Escape(object_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) AppendIndent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

Json ToJson(const ThroughputResult& r) {
  Json j = Json::Object();
  j.Set("qps", r.qps);
  j.Set("p95_at_qps_ms", r.p95_at_qps_ms);
  return j;
}

Json ToJson(const RatePoint& p) {
  Json j = Json::Object();
  j.Set("offered_qps", p.offered_qps);
  j.Set("achieved_qps", p.achieved_qps);
  j.Set("p95_ms", p.p95_ms);
  j.Set("mean_ms", p.mean_ms);
  j.Set("violation_rate", p.violation_rate);
  j.Set("utilization", p.utilization);
  return j;
}

Json ToJson(const HomogeneousChoice& c) {
  Json j = Json::Object();
  j.Set("partition_gpcs", c.partition_gpcs);
  j.Set("qps", c.qps);
  return j;
}

Json ToJson(const std::vector<RatePoint>& curve) {
  Json arr = Json::Array();
  for (const auto& p : curve) arr.Add(ToJson(p));
  return arr;
}

Json ToJson(const sim::ServerStats& s) {
  Json j = Json::Object();
  j.Set("completed", static_cast<std::uint64_t>(s.completed));
  j.Set("mean_ms", s.mean_latency_ms);
  j.Set("p50_ms", s.p50_latency_ms);
  j.Set("p95_ms", s.p95_latency_ms);
  j.Set("p99_ms", s.p99_latency_ms);
  j.Set("max_ms", s.max_latency_ms);
  j.Set("mean_queue_delay_ms", s.mean_queue_delay_ms);
  j.Set("sla_violation_rate", s.sla_violation_rate);
  j.Set("achieved_qps", s.achieved_qps);
  j.Set("utilization", s.mean_worker_utilization);
  j.Set("reconfig_stalled", static_cast<std::uint64_t>(s.reconfig_stalled));
  if (s.failed > 0 || s.shed > 0) {
    // Fault casualties (excluded from every latency figure above); only
    // fault-injected runs emit these, keeping the legacy document shape.
    j.Set("failed", static_cast<std::uint64_t>(s.failed));
    j.Set("shed", static_cast<std::uint64_t>(s.shed));
  }
  if (s.model_swaps > 0 || s.models.size() > 1) {
    // Mixed-traffic runs carry the per-model breakdown; single-model runs
    // keep the legacy document shape.
    j.Set("model_swaps", static_cast<std::uint64_t>(s.model_swaps));
    Json models = Json::Array();
    for (const auto& m : s.models) models.Add(ToJson(m));
    j.Set("models", std::move(models));
  }
  return j;
}

Json ToJson(const sim::ModelStats& m) {
  Json j = Json::Object();
  j.Set("model", m.model);
  j.Set("completed", static_cast<std::uint64_t>(m.completed));
  j.Set("mean_ms", m.mean_latency_ms);
  j.Set("p95_ms", m.p95_latency_ms);
  j.Set("p99_ms", m.p99_latency_ms);
  j.Set("sla_violation_rate", m.sla_violation_rate);
  j.Set("swaps", static_cast<std::uint64_t>(m.swaps));
  return j;
}

Json ToJson(const online::EpochStats& e) {
  Json j = Json::Object();
  j.Set("queries", static_cast<std::uint64_t>(e.queries));
  j.Set("p95_ms", e.p95_ms);
  j.Set("violation_rate", e.violation_rate);
  j.Set("stalled", static_cast<std::uint64_t>(e.stalled));
  j.Set("reconfigured", e.reconfigured);
  Json layout = Json::Array();
  for (const int gpcs : e.layout) layout.Add(gpcs);
  j.Set("layout", std::move(layout));
  return j;
}

Json ToJson(const online::ElasticResult& r) {
  Json j = Json::Object();
  j.Set("reconfigurations", r.reconfigurations);
  j.Set("total", ToJson(r.total));
  Json epochs = Json::Array();
  for (const auto& e : r.epochs) epochs.Add(ToJson(e));
  j.Set("epochs", std::move(epochs));
  return j;
}

Json ToJson(const fleet::FleetStats& f) {
  Json j = Json::Object();
  j.Set("num_servers", f.num_servers);
  j.Set("routed_queries", f.routed_queries);
  j.Set("aggregate", ToJson(f.aggregate));
  Json servers = Json::Array();
  for (std::size_t s = 0; s < f.per_server.size(); ++s) {
    Json entry = ToJson(f.per_server[s]);
    entry.Set("server", static_cast<std::uint64_t>(s));
    entry.Set("routed", f.routed_per_server[s]);
    servers.Add(std::move(entry));
  }
  j.Set("servers", std::move(servers));
  if (f.fault.faulted) {
    // Fault-tolerance block (docs/FAULTS.md documents the keys).  The
    // terminal counts satisfy completed + failed + shed == injected; the
    // CI chaos smoke gates on exactly that identity.
    const fleet::FaultSummary& ft = f.fault;
    Json fault = Json::Object();
    fault.Set("injected", ft.injected);
    fault.Set("completed", ft.completed);
    fault.Set("failed", ft.failed);
    fault.Set("shed", ft.shed);
    fault.Set("retried", ft.retried);
    fault.Set("rerouted", ft.rerouted);
    fault.Set("incidents", ft.incidents);
    fault.Set("repartitions", ft.repartitions);
    fault.Set("makespan_ms", TicksToMs(ft.makespan));
    double min_availability = 1.0;
    Json availability = Json::Array();
    for (const double a : ft.availability) {
      availability.Add(a);
      min_availability = std::min(min_availability, a);
    }
    fault.Set("availability", std::move(availability));
    fault.Set("min_availability", min_availability);
    fault.Set("p99_incident_ms", ft.p99_incident_ms);
    fault.Set("incident_completions", ft.incident_completions);
    j.Set("fault", std::move(fault));
  }
  return j;
}

Json MakeBenchReport(const std::string& bench_name, bool smoke, int jobs) {
  Json j = Json::Object();
  j.Set("schema", kResultSchema);
  j.Set("bench", bench_name);
  j.Set("smoke", smoke);
  j.Set("jobs", jobs);
  return j;
}

void WriteJsonFile(const std::string& path, const Json& doc) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("WriteJsonFile: cannot open " + path);
  }
  os << doc.Dump() << '\n';
  if (!os) {
    throw std::runtime_error("WriteJsonFile: write failed for " + path);
  }
}

}  // namespace pe::core
