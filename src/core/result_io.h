// Machine-readable experiment results.
//
// Everything the experiment layer measures (ThroughputResult, RatePoint,
// HomogeneousChoice) serializes to a small dependency-free JSON document so
// benches, the CLI, and CI can exchange results without scraping tables.
//
// Schema (stable; bump kResultSchema on breaking changes):
//
//   {
//     "schema": "paris-elsa-bench-v1",
//     "bench": "<bench or subcommand name>",
//     "smoke": false,          // true when PE_BENCH_SMOKE reduced the work
//     "jobs": 4,               // threads used by the experiment engine
//     "data": { ... }          // producer-specific payload built from the
//   }                          //   ToJson() helpers below
//
// tools/run_all_benches.sh aggregates the per-bench documents into one
//   { "schema": "paris-elsa-bench-results-v1", "benches": [ ... ] }
// which CI uploads as the bench_results.json artifact.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "fleet/cluster.h"
#include "online/elastic_server.h"
#include "sim/metrics.h"

namespace pe::core {

inline constexpr const char* kResultSchema = "paris-elsa-bench-v1";

// A minimal JSON document tree: objects keep insertion order so emitted
// documents are deterministic, doubles print with shortest round-trip
// formatting, and non-finite doubles serialize as null (JSON has no NaN).
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}                // NOLINT
  Json(double v) : kind_(Kind::kDouble), double_(v) {}          // NOLINT
  Json(int v) : kind_(Kind::kInt), int_(v) {}                   // NOLINT
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}          // NOLINT
  Json(std::uint64_t v)                                         // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(std::string v)                                           // NOLINT
      : kind_(Kind::kString), string_(std::move(v)) {}
  Json(const char* v) : kind_(Kind::kString), string_(v) {}     // NOLINT

  static Json Object();
  static Json Array();

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Object member set (insertion-ordered; setting an existing key
  // overwrites in place).  Dies via assert if this is not an object.
  Json& Set(const std::string& key, Json value);

  // Array append.  Dies via assert if this is not an array.
  Json& Add(Json value);

  std::size_t size() const;

  // Serializes the tree.  indent > 0 pretty-prints; indent == 0 emits the
  // compact single-line form.
  std::string Dump(int indent = 2) const;

  // JSON string escaping for one scalar (shared with tests).
  static std::string Escape(const std::string& s);

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

// --- Experiment-type serializers --------------------------------------

Json ToJson(const ThroughputResult& r);
Json ToJson(const RatePoint& p);
Json ToJson(const HomogeneousChoice& c);
Json ToJson(const std::vector<RatePoint>& curve);

// Simulation / elastic-serving serializers.  ToJson(ServerStats) omits the
// per-worker breakdown (aggregate metrics only) and adds the per-model
// breakdown only for mixed-traffic runs (more than one model, or any
// model swap), keeping single-model documents in the legacy shape;
// ToJson(ElasticResult) nests the per-epoch stats and the whole-run
// totals, including the reconfiguration stall counts.
Json ToJson(const sim::ServerStats& s);
Json ToJson(const sim::ModelStats& m);
Json ToJson(const online::EpochStats& e);
Json ToJson(const online::ElasticResult& r);

// Fleet serializer: the aggregate ServerStats document plus a "servers"
// array of {server, routed, <per-server ServerStats>} entries, so fleet
// documents compose out of the established single-server shape.
Json ToJson(const fleet::FleetStats& f);

// Report skeleton: {"schema", "bench", "smoke", "jobs"}.  Producers build
// their payload separately and attach it with report.Set("data", ...).
Json MakeBenchReport(const std::string& bench_name, bool smoke, int jobs);

// Writes `doc.Dump()` (plus trailing newline) to `path`; throws
// std::runtime_error when the file cannot be opened or written.
void WriteJsonFile(const std::string& path, const Json& doc);

}  // namespace pe::core
