#include "core/server_builder.h"

#include <algorithm>
#include <stdexcept>

#include "partition/homogeneous.h"
#include "partition/random_partition.h"
#include "perf/model_zoo.h"
#include "profile/profiler.h"
#include "sched/baselines.h"
#include "sched/fifs.h"
#include "workload/arrival.h"

namespace pe::core {

const char* ToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifs: return "FIFS";
    case SchedulerKind::kElsa: return "ELSA";
    case SchedulerKind::kJsq: return "JSQ";
    case SchedulerKind::kGreedyFastest: return "GreedyFastest";
  }
  return "?";
}

namespace {

profile::ProfileTable BuildProfile(const perf::DnnModel& model,
                                   const perf::RooflineEngine& engine,
                                   int max_batch) {
  profile::Profiler profiler(engine);
  // Profile at least up to batch 64 so knee detection sees the plateau even
  // when the serving distribution is capped lower.
  const auto config = profile::ProfilerConfig::Default(std::max(64, max_batch));
  return profiler.Profile(model, config);
}

profile::ModelRepertoire SingleModelRepertoire(
    const std::string& name, const perf::DnnModel& model,
    const perf::RooflineEngine& engine, int max_batch) {
  profile::ModelRepertoire repertoire;
  // Bind copies so the ground-truth function stays valid independently of
  // the testbed.
  repertoire.Register(name, BuildProfile(model, engine, max_batch),
                      [engine, model](int gpcs, int batch) {
                        return engine.LatencySec(model, gpcs, batch);
                      });
  return repertoire;
}

}  // namespace

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      model_(perf::BuildModelByName(config_.model_name)),
      engine_(config_.gpu, config_.roofline),
      repertoire_(SingleModelRepertoire(config_.model_name, model_, engine_,
                                        config_.max_batch)),
      dist_(std::make_unique<workload::LogNormalBatchDist>(
          config_.dist_median, config_.dist_sigma, config_.max_batch)),
      table1_(Table1For(config_.model_name)),
      cluster_(table1_.num_gpus, config_.gpu),
      sla_target_(SlaTarget(profile(), config_.max_batch, config_.sla_n)) {}

int Testbed::BudgetFor(int homogeneous_size) const {
  return homogeneous_size == 7 ? table1_.gpc_budget_gpu7 : table1_.gpc_budget;
}

partition::PartitionPlan Testbed::PlanHomogeneous(int partition_gpcs) const {
  partition::HomogeneousPartitioner p(partition_gpcs);
  return p.Plan(cluster_, BudgetFor(partition_gpcs));
}

partition::PartitionPlan Testbed::PlanRandom(std::uint64_t seed) const {
  partition::RandomPartitioner p(seed);
  return p.Plan(cluster_, table1_.gpc_budget);
}

partition::PartitionPlan Testbed::PlanParis() const {
  partition::ParisPartitioner p(profile(), *dist_, config_.paris);
  return p.Plan(cluster_, table1_.gpc_budget);
}

std::unique_ptr<sched::Scheduler> Testbed::MakeScheduler(
    SchedulerKind kind, sched::ElsaParams elsa) const {
  switch (kind) {
    case SchedulerKind::kFifs:
      return std::make_unique<sched::FifsScheduler>();
    case SchedulerKind::kElsa:
      // The repertoire form: Testimated routes through the arriving
      // query's model profile (one entry here, the degenerate case).
      return std::make_unique<sched::ElsaScheduler>(repertoire_, sla_target_,
                                                    elsa);
    case SchedulerKind::kJsq:
      return std::make_unique<sched::JsqScheduler>();
    case SchedulerKind::kGreedyFastest:
      return std::make_unique<sched::GreedyFastestScheduler>(profile());
  }
  throw std::invalid_argument("MakeScheduler: unknown kind");
}

sim::LatencyFn Testbed::ActualLatency() const {
  // The repertoire's function already binds copies of the engine and
  // model, so the returned copy stays valid independently of this Testbed.
  return repertoire_.actual(0);
}

workload::ScenarioSpec Testbed::ScenarioFor(double rate_qps) const {
  workload::ScenarioSpec spec;
  spec.rate.base_qps = rate_qps;
  spec.max_batch = config_.max_batch;
  workload::ComponentSpec c;
  c.model_id = 0;
  c.model_name = config_.model_name;
  c.median = config_.dist_median;
  c.sigma = config_.dist_sigma;
  spec.components.push_back(std::move(c));
  return spec;
}

sim::SimResult Testbed::RunTrace(const partition::PartitionPlan& plan,
                                 sched::Scheduler& scheduler,
                                 const workload::QueryTrace& trace,
                                 std::uint64_t seed) const {
  if (plan.instance_gpcs.empty()) {
    throw std::invalid_argument("Testbed::RunTrace: empty partition plan");
  }
  sim::ServerConfig sc;
  sc.partition_gpcs = plan.instance_gpcs;
  sc.sla_target = sla_target_;
  sc.latency_noise_sigma = config_.latency_noise_sigma;
  sc.seed = seed ^ 0xA5A5A5A5ULL;
  sc.frontend = config_.frontend;

  sim::InferenceServer server(sc, repertoire_, scheduler);
  return server.Run(trace);
}

sim::SimResult Testbed::Run(const partition::PartitionPlan& plan,
                            sched::Scheduler& scheduler,
                            const RunOptions& options) const {
  const workload::QueryTrace trace = workload::GenerateScenarioTrace(
      ScenarioFor(options.rate_qps), options.num_queries, options.seed);
  return RunTrace(plan, scheduler, trace, options.seed);
}

sim::ServerStats Testbed::RunStats(const partition::PartitionPlan& plan,
                                   SchedulerKind kind,
                                   const RunOptions& options) const {
  auto scheduler = MakeScheduler(kind);
  return Run(plan, *scheduler, options).Stats(sla_target_);
}

}  // namespace pe::core
