// Testbed: the top-level public API tying the whole system together.
//
// A Testbed owns, for one DNN model:
//   * the layer-accurate model and the roofline engine (ground truth),
//   * the one-time profile table (what PARIS and ELSA are allowed to see),
//   * the batch-size distribution,
//   * the physical cluster and Table-I GPC budgets,
//   * the SLA target (Section V's rule).
//
// From it, callers derive partition plans (homogeneous / random / PARIS),
// schedulers (FIFS / ELSA / baselines), and run trace-driven simulations.
//
// Typical use (see examples/quickstart.cc):
//   core::Testbed tb(core::TestbedConfig{.model_name = "resnet"});
//   auto plan = tb.PlanParis();
//   auto elsa = tb.MakeScheduler(core::SchedulerKind::kElsa);
//   auto stats = tb.Run(plan, *elsa, /*rate_qps=*/500, /*num_queries=*/10000)
//                    .Stats(tb.sla_target());
#pragma once

#include <memory>
#include <string>

#include "core/paper_config.h"
#include "hw/cluster.h"
#include "partition/paris.h"
#include "partition/partitioner.h"
#include "perf/model.h"
#include "perf/roofline.h"
#include "profile/model_repertoire.h"
#include "profile/profile_table.h"
#include "sched/elsa.h"
#include "sched/scheduler.h"
#include "sim/server.h"
#include "workload/batch_dist.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace pe::core {

enum class SchedulerKind { kFifs, kElsa, kJsq, kGreedyFastest };

const char* ToString(SchedulerKind kind);

struct TestbedConfig {
  std::string model_name = "resnet";
  // Batch-size distribution (paper defaults: log-normal, sigma 0.9, max 32).
  double dist_median = 6.0;
  double dist_sigma = 0.9;
  int max_batch = 32;
  // SLA target multiplier N (Section V; default 1.5).
  double sla_n = 1.5;
  // Substrate knobs.
  perf::RooflineParams roofline;
  hw::GpuSpec gpu;
  partition::ParisConfig paris;
  // Optional execution-time noise (log-space sigma) and frontend stage.
  double latency_noise_sigma = 0.0;
  sim::FrontendConfig frontend;
};

struct RunOptions {
  double rate_qps = 100.0;
  std::size_t num_queries = 10000;
  std::uint64_t seed = 1;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  const TestbedConfig& config() const { return config_; }
  const perf::DnnModel& model() const { return model_; }
  const perf::RooflineEngine& engine() const { return engine_; }
  // This testbed's model registered as id 0 of a one-entry repertoire (the
  // degenerate single-model case of the multi-model serving path).
  const profile::ModelRepertoire& repertoire() const { return repertoire_; }
  const profile::ProfileTable& profile() const {
    return repertoire_.profile(0);
  }
  const workload::BatchDistribution& dist() const { return *dist_; }
  const ModelServerConfig& table1() const { return table1_; }
  const hw::Cluster& cluster() const { return cluster_; }
  SimTime sla_target() const { return sla_target_; }

  // GPC budget for a design: GPU(7) homogeneous servers get Table I's
  // (larger) GPU(7) budget; everything else gets the standard budget.
  int BudgetFor(int homogeneous_size) const;

  // --- Partition plans -----------------------------------------------
  partition::PartitionPlan PlanHomogeneous(int partition_gpcs) const;
  partition::PartitionPlan PlanRandom(std::uint64_t seed = 0xBADD5EED) const;
  partition::PartitionPlan PlanParis() const;

  // --- Schedulers ----------------------------------------------------
  std::unique_ptr<sched::Scheduler> MakeScheduler(
      SchedulerKind kind, sched::ElsaParams elsa = sched::ElsaParams{}) const;

  // --- Simulation ----------------------------------------------------
  // The declarative scenario equivalent of this testbed's workload at
  // `rate_qps`: one component (this model), constant rate, this config's
  // batch distribution.  Presets and overrides (workload::ApplyScenario)
  // reshape it; drained unmodified it is bit-identical to
  // ArrivalTraceSource on the same spec and seed.
  workload::ScenarioSpec ScenarioFor(double rate_qps) const;

  // Replays an explicit trace (generated, captured, or loaded) on a server
  // built from `plan` + `scheduler`.  `seed` drives only the server's
  // internal streams (noise), derived exactly as Run derives them.
  sim::SimResult RunTrace(const partition::PartitionPlan& plan,
                          sched::Scheduler& scheduler,
                          const workload::QueryTrace& trace,
                          std::uint64_t seed) const;

  // Generates a Poisson/log-normal trace (ScenarioFor(rate_qps) drained on
  // Rng(seed)) and replays it via RunTrace.
  sim::SimResult Run(const partition::PartitionPlan& plan,
                     sched::Scheduler& scheduler,
                     const RunOptions& options) const;

  // Convenience: Run + Stats at this testbed's SLA target.
  sim::ServerStats RunStats(const partition::PartitionPlan& plan,
                            SchedulerKind kind,
                            const RunOptions& options) const;

  // Ground-truth latency function bound to this model.
  sim::LatencyFn ActualLatency() const;

 private:
  TestbedConfig config_;
  perf::DnnModel model_;
  perf::RooflineEngine engine_;
  profile::ModelRepertoire repertoire_;
  std::unique_ptr<workload::BatchDistribution> dist_;
  ModelServerConfig table1_;
  hw::Cluster cluster_;
  SimTime sla_target_;
};

}  // namespace pe::core
