#include "fleet/cluster.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace pe::fleet {

std::uint64_t Cluster::ServerSeed(std::uint64_t fleet_seed, int server_id) {
  // Domain-separated double mix: the inner term is unique per (seed, id),
  // the outer mix decorrelates neighbouring ids.  Mix64 is the shared
  // SplitMix64 step from common/rng.h.
  return Mix64(fleet_seed ^
               Mix64(0x5EEDF1EE7ULL + static_cast<std::uint64_t>(server_id)));
}

std::uint64_t Cluster::RouterSeed(std::uint64_t fleet_seed) {
  // Negative "server id" domain: no server can collide with it.
  return Mix64(fleet_seed ^ Mix64(0x12007E12ULL));
}

Cluster::Cluster(FleetConfig config, PlacementMap placement,
                 const profile::ModelRepertoire& zoo, SchedulerFactory factory)
    : config_(std::move(config)),
      placement_(std::move(placement)),
      zoo_(&zoo),
      factory_(std::move(factory)) {
  if (!factory_) {
    throw std::invalid_argument("Cluster: null scheduler factory");
  }
  if (placement_.num_models() > zoo.size()) {
    throw std::invalid_argument(
        "Cluster: placement places model ids the zoo does not register");
  }
  repertoires_.reserve(static_cast<size_t>(placement_.num_servers()));
  for (const ServerPlacement& sp : placement_.servers()) {
    if (sp.partition_gpcs.empty()) {
      throw std::invalid_argument(
          "Cluster: server " + std::to_string(sp.server_id) +
          " has no partition layout (run a planner pass first)");
    }
    // Hosted subset of the zoo, re-registered densely: local id k is the
    // k-th (ascending) hosted global id, matching SplitTrace's re-mapping.
    profile::ModelRepertoire local;
    for (int m : sp.model_ids) {
      local.Register(zoo.name(m), zoo.profile(m), zoo.actual(m));
    }
    repertoires_.push_back(std::move(local));
  }
}

const profile::ModelRepertoire& Cluster::server_repertoire(
    int server_id) const {
  if (server_id < 0 || server_id >= num_servers()) {
    throw std::out_of_range("Cluster::server_repertoire: bad id " +
                            std::to_string(server_id));
  }
  return repertoires_[static_cast<size_t>(server_id)];
}

std::unique_ptr<Router> Cluster::MakeFleetRouter() const {
  return MakeRouter(config_.policy, placement_, zoo_,
                    RouterSeed(config_.seed));
}

FleetResult Cluster::Simulate(const workload::QueryTrace& trace,
                              int jobs) const {
  const auto router = MakeFleetRouter();
  return SimulateSplit(SplitTrace(trace, *router, placement_, jobs), jobs);
}

sim::ServerConfig Cluster::MakeServerConfig(int server_id) const {
  const ServerPlacement& sp = placement_.server(server_id);
  sim::ServerConfig sc;
  sc.partition_gpcs = sp.partition_gpcs;
  sc.sla_target = config_.sla_target;
  sc.latency_noise_sigma = config_.latency_noise_sigma;
  sc.seed = ServerSeed(config_.seed, server_id);
  sc.model_swap_cost = config_.model_swap_cost;
  sc.reference_engine = config_.reference_engine;
  return sc;
}

std::unique_ptr<sched::Scheduler> Cluster::MakeScheduler(int server_id) const {
  const auto s = static_cast<std::size_t>(server_id);
  return factory_(server_id, repertoires_[s]);
}

void Cluster::FillGlobalTables(FleetResult& result) const {
  const auto n = static_cast<std::size_t>(num_servers());
  result.global_models.clear();
  result.worker_base.clear();
  result.global_models.reserve(n);
  result.worker_base.reserve(n);
  int worker_base = 0;
  for (const ServerPlacement& sp : placement_.servers()) {
    result.global_models.push_back(sp.model_ids);
    result.worker_base.push_back(worker_base);
    worker_base += static_cast<int>(sp.partition_gpcs.size());
  }
}

FleetResult Cluster::SimulateSplit(const TraceSplit& split, int jobs) const {
  if (split.num_servers() != num_servers()) {
    throw std::invalid_argument(
        "Cluster::SimulateSplit: split has " +
        std::to_string(split.num_servers()) + " servers, cluster has " +
        std::to_string(num_servers()));
  }
  const auto n = static_cast<std::size_t>(num_servers());
  // Pure function of the server index: config, placement, repertoire, and
  // sub-trace are all read-only, the scheduler is freshly built per task,
  // and the engine seed comes from the pure ServerSeed derivation.
  auto sims = ParallelMap(n, jobs, [&](std::size_t s) {
    const sim::ServerConfig sc = MakeServerConfig(static_cast<int>(s));
    const auto scheduler = MakeScheduler(static_cast<int>(s));
    sim::InferenceServer server(sc, repertoires_[s], *scheduler);
    return server.Run(split.Server(static_cast<int>(s)));
  });

  FleetResult result;
  result.per_server = std::move(sims);
  result.global_ids = split.global_ids;
  result.id_offsets = split.offsets;
  FillGlobalTables(result);
  return result;
}

namespace {

// Per-server side outputs of the parallel stats pass.
struct ServerPass {
  sim::ServerStats stats;
  // Stable arrival permutation over the server's records; empty when the
  // records are already arrival-sorted (the normal case: sub-traces keep
  // the fleet trace's arrival order), in which case it is the identity.
  std::vector<std::uint32_t> perm;
};

// Per-server extraction over the records the fleet-level warmup cut keeps.
struct ServerExtract {
  std::size_t violations = 0;
  std::size_t reconfig_stalled = 0;
  std::size_t model_swaps = 0;
  SimTime window_end = 0;
  // Flattened (fleet-global index, gpcs)-sorted worker accumulators.
  std::vector<sim::WorkerStats> workers;
  // Indexed by fleet-global model id (sized only when multi-model).
  std::vector<std::size_t> model_completed;
  std::vector<std::size_t> model_violations;
  std::vector<std::size_t> model_swaps_by_model;
  std::vector<std::vector<double>> model_latency_ms;
};

const sim::QueryRecord& RecordAt(const std::vector<sim::QueryRecord>& records,
                                 const std::vector<std::uint32_t>& perm,
                                 std::size_t k) {
  return perm.empty() ? records[k] : records[perm[k]];
}

// Exact Percentile::Value / Max arithmetic over an unsorted multiset,
// computed by selection instead of a full sort: std::nth_element places
// the same order statistics std::sort would, and the interpolation below
// mirrors Percentile::Value term for term, so the results are
// bit-identical at linear instead of n-log-n cost.  Queries must come in
// non-decreasing rank order (P50, P95, P99, Max): each call partitions the
// vector at the ranks it touches, and the consecutive (lo, lo+1) pairs it
// selects are exactly the positions a later, larger rank may re-read.
class QuantileSelector {
 public:
  explicit QuantileSelector(std::vector<double> samples)
      : v_(std::move(samples)) {}

  double Value(double p) {
    if (v_.empty()) return 0.0;
    if (v_.size() == 1) return v_.front();
    const double rank = (p / 100.0) * static_cast<double>(v_.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo_idx);
    if (lo_idx + 1 >= v_.size()) return OrderStat(v_.size() - 1);
    const double lo = OrderStat(lo_idx);
    const double hi = OrderStat(lo_idx + 1);
    return lo * (1.0 - frac) + hi * frac;
  }

  double Max() {
    if (v_.empty()) return 0.0;
    return OrderStat(v_.size() - 1);
  }

 private:
  // k-th smallest.  v_[0, done_) holds the smallest done_ elements, so
  // partitioning from done_ keeps every nth_element call global.
  double OrderStat(std::size_t k) {
    if (k >= done_) {
      std::nth_element(v_.begin() + static_cast<std::ptrdiff_t>(done_),
                       v_.begin() + static_cast<std::ptrdiff_t>(k), v_.end());
      done_ = k + 1;
    }
    return v_[k];
  }

  std::vector<double> v_;
  std::size_t done_ = 0;
};

}  // namespace

FleetStats FleetResult::Stats(SimTime sla_target, double warmup_fraction,
                              int jobs) const {
  FleetStats stats;
  const std::size_t n = per_server.size();
  stats.num_servers = static_cast<int>(n);

  // Phase A (parallel): per-server ServerStats -- each a pure function of
  // that server's records -- plus the stable arrival permutation the merge
  // walk needs when a record array is not already arrival-sorted.
  auto passes = ParallelMap(n, jobs, [&](std::size_t s) {
    ServerPass pass;
    const auto& records = per_server[s].records;
    pass.stats = sim::ComputeStats(records, sla_target, warmup_fraction);
    for (auto& ms : pass.stats.models) {
      ms.model = global_models[s][static_cast<std::size_t>(ms.model)];
    }
    const auto by_arrival = [&records](std::uint32_t a, std::uint32_t b) {
      return records[a].arrival < records[b].arrival;
    };
    if (!std::is_sorted(records.begin(), records.end(),
                        [](const sim::QueryRecord& a,
                           const sim::QueryRecord& b) {
                          return a.arrival < b.arrival;
                        })) {
      pass.perm.resize(records.size());
      for (std::size_t i = 0; i < records.size(); ++i) {
        pass.perm[i] = static_cast<std::uint32_t>(i);
      }
      std::stable_sort(pass.perm.begin(), pass.perm.end(), by_arrival);
    }
    return pass;
  });

  std::size_t total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t count = per_server[s].records.size();
    stats.per_server.push_back(std::move(passes[s].stats));
    stats.routed_per_server.push_back(count);
    total += count;
  }
  stats.routed_queries = total;
  if (total == 0) {
    stats.fault = fault;
    return stats;
  }

  // Same warmup cut the reference takes over the merged population.
  const std::size_t skip = static_cast<std::size_t>(
      warmup_fraction * static_cast<double>(total));

  int num_models = 0;
  for (const auto& models : global_models) {
    if (!models.empty()) num_models = std::max(num_models, models.back() + 1);
  }

  // Phase B: walk the merged population in the exact order the
  // reference's stable sort visits the merged vector -- ascending
  // arrival, ties by server then per-server position (each server's
  // block precedes the next's in the merged layout).  Only the
  // order-sensitive accumulators run here: the mean-latency sum, the
  // Welford queue-delay stream, and the per-model mean sums; everything
  // order-free stays in the parallel phases.
  //
  // The order itself almost never needs to be computed: arrival
  // processes are cumulative, so the source trace -- and therefore the
  // per-position server sequence recovered by scattering the global ids
  // -- is already arrival-sorted, up to cross-server ties on one arrival
  // tick, which a tiny pending group re-sorts in place.  The walk
  // verifies the assumption as it goes (arrivals must never step
  // backwards); an unsorted source trace falls back to rebuilding the
  // order with parallel pairwise merges of the per-server runs.
  std::vector<std::size_t> included_from(n, 0);  // per-server skip counts
  // Fault casualties past the cut: counted (ServerStats::failed/shed),
  // never sampled -- mirrors ComputeStats record for record.  excluded[s]
  // sizes server s's latency-pool slice in Phase C.
  std::vector<std::size_t> excluded(n, 0);
  std::size_t agg_failed = 0;
  std::size_t agg_shed = 0;
  double latency_sum = 0.0;
  StreamingStats queue_delay;
  std::vector<double> model_latency_sum;
  SimTime window_begin = 0;
  bool window_set = false;
  int first_model = 0;
  bool multi_model = false;

  struct Pending {
    std::uint32_t server;
    const sim::QueryRecord* rec;
  };
  // Walks seq (the server owning each merged position, arrival-ordered up
  // to ties); returns false on an arrival inversion (scatter order only).
  const auto walk = [&](const std::vector<std::uint32_t>& seq) {
    included_from.assign(n, 0);
    excluded.assign(n, 0);
    agg_failed = 0;
    agg_shed = 0;
    latency_sum = 0.0;
    queue_delay = StreamingStats();
    model_latency_sum.assign(static_cast<std::size_t>(num_models), 0.0);
    window_begin = 0;
    window_set = false;
    first_model = 0;
    multi_model = false;
    std::vector<std::size_t> cursor(n, 0);
    std::size_t out_idx = 0;
    const auto emit = [&](std::uint32_t s, const sim::QueryRecord& r) {
      if (out_idx < skip) {
        ++included_from[s];
        ++out_idx;
        return;
      }
      // The reference's multi-model pre-scan compares every post-cut
      // record's model to the one at the cut -- casualties included --
      // so the model bookkeeping runs before the casualty skip.
      const int gm = global_models[s][static_cast<std::size_t>(r.model)];
      if (out_idx == skip) {
        first_model = gm;
      } else if (gm != first_model) {
        multi_model = true;
      }
      ++out_idx;
      if (r.failed || r.shed) {
        if (r.failed) ++agg_failed;
        if (r.shed) ++agg_shed;
        ++excluded[s];
        return;
      }
      const double lat_ms = TicksToMs(r.Latency());
      latency_sum += lat_ms;
      queue_delay.Add(TicksToMs(r.QueueDelay()));
      model_latency_sum[static_cast<std::size_t>(gm)] += lat_ms;
      if (!window_set) {
        // First *completed* record past the cut, as in ComputeStats.
        window_begin = r.arrival;
        window_set = true;
      }
    };
    std::vector<Pending> group;
    SimTime group_arrival = 0;
    const auto flush = [&]() {
      if (group.size() > 1) {
        // Reference tie order on one arrival tick: server-major, then
        // per-server arrival position (already the push order).
        std::stable_sort(group.begin(), group.end(),
                         [](const Pending& a, const Pending& b) {
                           return a.server < b.server;
                         });
      }
      for (const Pending& p : group) emit(p.server, *p.rec);
      group.clear();
    };
    for (const std::uint32_t s : seq) {
      const auto& records = per_server[s].records;
      const sim::QueryRecord& r =
          RecordAt(records, passes[s].perm, cursor[s]++);
      if (!group.empty() && r.arrival != group_arrival) {
        if (r.arrival < group_arrival) return false;  // unsorted source
        flush();
      }
      group_arrival = r.arrival;
      group.push_back({s, &r});
    }
    flush();
    return true;
  };

  // Scatter pass: global ids are the trace positions, so writing each
  // server at its queries' positions recovers the source interleaving.
  std::vector<std::uint32_t> seq;
  bool walked = false;
  if (global_ids.size() == total && id_offsets.size() == n + 1) {
    constexpr std::uint32_t kUnset = ~std::uint32_t{0};
    seq.assign(total, kUnset);
    bool usable = true;
    for (std::size_t s = 0; s < n && usable; ++s) {
      const auto ids = GlobalIds(static_cast<int>(s));
      if (ids.size() != per_server[s].records.size()) {
        usable = false;
        break;
      }
      for (const std::uint64_t id : ids) {
        if (id >= total) {
          usable = false;
          break;
        }
        seq[id] = static_cast<std::uint32_t>(s);
      }
    }
    if (usable) {
      for (const std::uint32_t s : seq) {
        if (s == kUnset) {
          usable = false;  // ids were not a permutation of the positions
          break;
        }
      }
    }
    walked = usable && walk(seq);
  }

  if (!walked) {
    // Fallback: rebuild the merged order from the per-server runs with
    // pairwise std::merge rounds over (arrival, server) keys, parallel
    // across pairs.  Same-server ties keep their relative order through
    // every stable merge, so the walk's pending group is a no-op here.
    struct MergeKey {
      SimTime arrival;
      std::uint32_t server;
    };
    const auto key_less = [](const MergeKey& a, const MergeKey& b) {
      if (a.arrival != b.arrival) return a.arrival < b.arrival;
      return a.server < b.server;
    };
    std::vector<MergeKey> keys(total);
    std::vector<MergeKey> scratch(total);
    std::vector<std::size_t> run_offsets;
    run_offsets.reserve(n + 1);
    run_offsets.push_back(0);
    for (std::size_t s = 0; s < n; ++s) {
      run_offsets.push_back(run_offsets.back() +
                            per_server[s].records.size());
    }
    ParallelMap(n, jobs, [&](std::size_t s) {
      const auto& records = per_server[s].records;
      const auto& perm = passes[s].perm;
      MergeKey* out = keys.data() + run_offsets[s];
      for (std::size_t k = 0; k < records.size(); ++k) {
        out[k] = {RecordAt(records, perm, k).arrival,
                  static_cast<std::uint32_t>(s)};
      }
      return 0;
    });
    while (run_offsets.size() > 2) {
      const std::size_t runs = run_offsets.size() - 1;
      const std::size_t pairs = runs / 2;
      ParallelMap(pairs, jobs, [&](std::size_t p) {
        const auto lo = static_cast<std::ptrdiff_t>(run_offsets[2 * p]);
        const auto mid = static_cast<std::ptrdiff_t>(run_offsets[2 * p + 1]);
        const auto hi = static_cast<std::ptrdiff_t>(run_offsets[2 * p + 2]);
        std::merge(keys.begin() + lo, keys.begin() + mid, keys.begin() + mid,
                   keys.begin() + hi, scratch.begin() + lo, key_less);
        return 0;
      });
      if (runs % 2 != 0) {
        const auto tail = static_cast<std::ptrdiff_t>(run_offsets[runs - 1]);
        std::copy(keys.begin() + tail, keys.end(), scratch.begin() + tail);
      }
      std::vector<std::size_t> next_offsets;
      next_offsets.reserve(pairs + 2);
      for (std::size_t p = 0; p < pairs; ++p) {
        next_offsets.push_back(run_offsets[2 * p]);
      }
      if (runs % 2 != 0) next_offsets.push_back(run_offsets[runs - 1]);
      next_offsets.push_back(total);
      run_offsets = std::move(next_offsets);
      keys.swap(scratch);
    }
    seq.resize(total);
    for (std::size_t i = 0; i < total; ++i) seq[i] = keys[i].server;
    walked = walk(seq);
  }

  // Phase C (parallel): order-free extraction over each server's included
  // suffix -- the first included_from[s] records of its arrival order are
  // exactly the ones the fleet-level cut skipped (the merge walk consumes
  // each server's records in that order).  Latencies land unsorted in a
  // disjoint slice of one shared pool; the percentile selection below
  // does not care about sample order.
  std::size_t excluded_total = 0;
  for (const std::size_t e : excluded) excluded_total += e;
  const std::size_t included_total = total - skip - excluded_total;
  std::vector<double> latency_pool(included_total);
  std::vector<std::size_t> pool_at;
  pool_at.reserve(n);
  {
    std::size_t at = 0;
    for (std::size_t s = 0; s < n; ++s) {
      pool_at.push_back(at);
      at += per_server[s].records.size() - included_from[s] - excluded[s];
    }
  }
  auto extracts = ParallelMap(n, jobs, [&](std::size_t s) {
    ServerExtract e;
    const auto& records = per_server[s].records;
    const auto& perm = passes[s].perm;
    double* lat_out = latency_pool.data() + pool_at[s];
    if (multi_model) {
      const auto m = static_cast<std::size_t>(num_models);
      e.model_completed.assign(m, 0);
      e.model_violations.assign(m, 0);
      e.model_swaps_by_model.assign(m, 0);
      e.model_latency_ms.assign(m, {});
    }
    // (local worker index -> accumulators per distinct gpcs value); the
    // inner list is ~1 long, workers keep one size for a whole run.
    std::vector<std::vector<sim::WorkerStats>> variants;
    for (std::size_t k = included_from[s]; k < records.size(); ++k) {
      const sim::QueryRecord& r = RecordAt(records, perm, k);
      if (r.failed || r.shed) continue;  // counted in the walk, never sampled
      const double lat_ms = TicksToMs(r.Latency());
      *lat_out++ = lat_ms;
      if (r.Latency() > sla_target) ++e.violations;
      if (r.reconfig_stalls > 0) ++e.reconfig_stalled;
      if (r.model_swap) ++e.model_swaps;
      e.window_end = std::max(e.window_end, r.finished);
      const auto widx = static_cast<std::size_t>(r.worker);
      if (widx >= variants.size()) variants.resize(widx + 1);
      sim::WorkerStats* w = nullptr;
      for (auto& v : variants[widx]) {
        if (v.gpcs == r.worker_gpcs) {
          w = &v;
          break;
        }
      }
      if (w == nullptr) {
        sim::WorkerStats fresh;
        fresh.index = worker_base[s] + r.worker;
        fresh.gpcs = r.worker_gpcs;
        w = &variants[widx].emplace_back(fresh);
      }
      w->busy_ticks += r.finished - r.started;
      ++w->queries;
      if (multi_model) {
        const auto gm = static_cast<std::size_t>(
            global_models[s][static_cast<std::size_t>(r.model)]);
        ++e.model_completed[gm];
        if (r.Latency() > sla_target) ++e.model_violations[gm];
        if (r.model_swap) ++e.model_swaps_by_model[gm];
        e.model_latency_ms[gm].push_back(lat_ms);
      }
    }
    // Flatten in (index, gpcs) order -- with the server-major global index
    // offsets this reproduces the reference's fleet-wide worker-map key
    // order exactly.
    for (auto& v : variants) {
      std::sort(v.begin(), v.end(),
                [](const sim::WorkerStats& a, const sim::WorkerStats& b) {
                  return a.gpcs < b.gpcs;
                });
      for (const auto& w2 : v) e.workers.push_back(w2);
    }
    return e;
  });

  // Final assembly (serial, O(completed) for the percentile merge and
  // O(servers + workers + models) for everything else).
  sim::ServerStats& agg = stats.aggregate;
  agg.completed = included_total;
  agg.failed = agg_failed;
  agg.shed = agg_shed;
  stats.fault = fault;
  if (agg.completed == 0) {
    // Every post-cut record was a casualty: the reference bails before
    // any rate/percentile math, leaving only the counters set.
    return stats;
  }
  agg.mean_latency_ms =
      latency_sum / static_cast<double>(agg.completed);
  agg.mean_queue_delay_ms = queue_delay.mean();

  std::size_t violations = 0;
  SimTime window_end = 0;
  for (const ServerExtract& e : extracts) {
    violations += e.violations;
    agg.reconfig_stalled += e.reconfig_stalled;
    agg.model_swaps += e.model_swaps;
    window_end = std::max(window_end, e.window_end);
  }
  agg.sla_violation_rate = static_cast<double>(violations) /
                           static_cast<double>(agg.completed);

  // Exact fleet percentiles by selection over the shared latency pool:
  // the pool holds the same multiset the reference's sorted vector would,
  // and QuantileSelector reproduces Percentile's interpolation exactly.
  {
    QuantileSelector latency(std::move(latency_pool));
    agg.p50_latency_ms = latency.Value(50.0);
    agg.p95_latency_ms = latency.Value(95.0);
    agg.p99_latency_ms = latency.Value(99.0);
    agg.max_latency_ms = latency.Max();
  }

  const SimTime span = window_end - window_begin;
  if (span > 0) {
    agg.achieved_qps =
        static_cast<double>(agg.completed) / TicksToSec(span);
  }
  double gpc_busy = 0.0;
  double gpc_total = 0.0;
  for (ServerExtract& e : extracts) {
    for (sim::WorkerStats& w : e.workers) {
      if (span > 0) {
        w.utilization = std::min(
            1.0,
            static_cast<double>(w.busy_ticks) / static_cast<double>(span));
      }
      gpc_busy += w.utilization * w.gpcs;
      gpc_total += w.gpcs;
      agg.workers.push_back(w);
    }
  }
  if (span > 0 && gpc_total > 0.0) {
    agg.mean_worker_utilization = gpc_busy / gpc_total;
  }

  if (multi_model) {
    // Ascending model id == the reference's per-model map key order.
    std::vector<int> present;
    for (int m = 0; m < num_models; ++m) {
      for (const ServerExtract& e : extracts) {
        if (e.model_completed[static_cast<std::size_t>(m)] > 0) {
          present.push_back(m);
          break;
        }
      }
    }
    auto model_stats = ParallelMap(
        present.size(), jobs, [&](std::size_t i) {
          const auto m = static_cast<std::size_t>(present[i]);
          sim::ModelStats ms;
          ms.model = present[i];
          std::vector<double> samples;
          for (const ServerExtract& e : extracts) {
            ms.completed += e.model_completed[m];
            ms.swaps += e.model_swaps_by_model[m];
            samples.insert(samples.end(), e.model_latency_ms[m].begin(),
                           e.model_latency_ms[m].end());
            ms.sla_violation_rate +=
                static_cast<double>(e.model_violations[m]);
          }
          ms.mean_latency_ms =
              model_latency_sum[m] / static_cast<double>(ms.completed);
          QuantileSelector lat(std::move(samples));
          ms.p95_latency_ms = lat.Value(95.0);
          ms.p99_latency_ms = lat.Value(99.0);
          ms.sla_violation_rate /= static_cast<double>(ms.completed);
          return ms;
        });
    agg.models = std::move(model_stats);
  } else {
    // One model: its slice IS the aggregate.
    sim::ModelStats ms;
    ms.model = first_model;
    ms.completed = agg.completed;
    ms.mean_latency_ms = agg.mean_latency_ms;
    ms.p95_latency_ms = agg.p95_latency_ms;
    ms.p99_latency_ms = agg.p99_latency_ms;
    ms.sla_violation_rate = agg.sla_violation_rate;
    ms.swaps = agg.model_swaps;
    agg.models.push_back(std::move(ms));
  }
  return stats;
}

FleetStats FleetResult::StatsReference(SimTime sla_target,
                                       double warmup_fraction) const {
  FleetStats stats;
  stats.num_servers = static_cast<int>(per_server.size());
  std::size_t total = 0;
  for (const sim::SimResult& r : per_server) total += r.records.size();

  // The fleet-level population: every record, re-keyed to global query
  // ids, global model ids, and fleet-unique worker indices, so one
  // ComputeStats pass yields coherent percentiles and utilizations.
  std::vector<sim::QueryRecord> merged;
  merged.reserve(total);
  for (std::size_t s = 0; s < per_server.size(); ++s) {
    const auto& records = per_server[s].records;
    sim::ServerStats server_stats =
        sim::ComputeStats(records, sla_target, warmup_fraction);
    for (auto& ms : server_stats.models) {
      ms.model = global_models[s][static_cast<size_t>(ms.model)];
    }
    stats.per_server.push_back(std::move(server_stats));
    stats.routed_per_server.push_back(records.size());
    stats.routed_queries += records.size();
    const std::span<const std::uint64_t> ids = GlobalIds(static_cast<int>(s));
    for (const sim::QueryRecord& r : records) {
      sim::QueryRecord g = r;
      g.id = ids[static_cast<size_t>(r.id)];
      g.model = global_models[s][static_cast<size_t>(r.model)];
      g.worker = worker_base[s] + r.worker;
      merged.push_back(g);
    }
  }
  stats.aggregate = sim::ComputeStats(merged, sla_target, warmup_fraction);
  stats.fault = fault;
  return stats;
}

}  // namespace pe::fleet
