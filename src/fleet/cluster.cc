#include "fleet/cluster.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "common/thread_pool.h"

namespace pe::fleet {

namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t Cluster::ServerSeed(std::uint64_t fleet_seed, int server_id) {
  // Domain-separated double mix: the inner term is unique per (seed, id),
  // the outer mix decorrelates neighbouring ids.
  return Mix64(fleet_seed ^
               Mix64(0x5EEDF1EE7ULL + static_cast<std::uint64_t>(server_id)));
}

std::uint64_t Cluster::RouterSeed(std::uint64_t fleet_seed) {
  // Negative "server id" domain: no server can collide with it.
  return Mix64(fleet_seed ^ Mix64(0x12007E12ULL));
}

Cluster::Cluster(FleetConfig config, PlacementMap placement,
                 const profile::ModelRepertoire& zoo, SchedulerFactory factory)
    : config_(std::move(config)),
      placement_(std::move(placement)),
      zoo_(&zoo),
      factory_(std::move(factory)) {
  if (!factory_) {
    throw std::invalid_argument("Cluster: null scheduler factory");
  }
  if (placement_.num_models() > zoo.size()) {
    throw std::invalid_argument(
        "Cluster: placement places model ids the zoo does not register");
  }
  repertoires_.reserve(static_cast<size_t>(placement_.num_servers()));
  for (const ServerPlacement& sp : placement_.servers()) {
    if (sp.partition_gpcs.empty()) {
      throw std::invalid_argument(
          "Cluster: server " + std::to_string(sp.server_id) +
          " has no partition layout (run a planner pass first)");
    }
    // Hosted subset of the zoo, re-registered densely: local id k is the
    // k-th (ascending) hosted global id, matching SplitTrace's re-mapping.
    profile::ModelRepertoire local;
    for (int m : sp.model_ids) {
      local.Register(zoo.name(m), zoo.profile(m), zoo.actual(m));
    }
    repertoires_.push_back(std::move(local));
  }
}

const profile::ModelRepertoire& Cluster::server_repertoire(
    int server_id) const {
  if (server_id < 0 || server_id >= num_servers()) {
    throw std::out_of_range("Cluster::server_repertoire: bad id " +
                            std::to_string(server_id));
  }
  return repertoires_[static_cast<size_t>(server_id)];
}

std::unique_ptr<Router> Cluster::MakeFleetRouter() const {
  return MakeRouter(config_.policy, placement_, zoo_,
                    RouterSeed(config_.seed));
}

FleetResult Cluster::Simulate(const workload::QueryTrace& trace,
                              int jobs) const {
  const auto router = MakeFleetRouter();
  TraceSplit split = SplitTrace(trace, *router, placement_);

  const auto n = static_cast<std::size_t>(num_servers());
  // Pure function of the server index: config, placement, repertoire, and
  // sub-trace are all read-only, the scheduler is freshly built per task,
  // and the engine seed comes from the pure ServerSeed derivation.
  auto sims = ParallelMap(n, jobs, [&](std::size_t s) {
    const ServerPlacement& sp = placement_.server(static_cast<int>(s));
    sim::ServerConfig sc;
    sc.partition_gpcs = sp.partition_gpcs;
    sc.sla_target = config_.sla_target;
    sc.latency_noise_sigma = config_.latency_noise_sigma;
    sc.seed = ServerSeed(config_.seed, static_cast<int>(s));
    sc.model_swap_cost = config_.model_swap_cost;
    sc.reference_engine = config_.reference_engine;
    const auto scheduler = factory_(static_cast<int>(s), repertoires_[s]);
    sim::InferenceServer server(sc, repertoires_[s], *scheduler);
    return server.Run(split.per_server[s]);
  });

  FleetResult result;
  result.per_server = std::move(sims);
  result.global_ids = std::move(split.global_ids);
  result.global_models.reserve(n);
  result.worker_base.reserve(n);
  int worker_base = 0;
  for (const ServerPlacement& sp : placement_.servers()) {
    result.global_models.push_back(sp.model_ids);
    result.worker_base.push_back(worker_base);
    worker_base += static_cast<int>(sp.partition_gpcs.size());
  }
  return result;
}

FleetStats FleetResult::Stats(SimTime sla_target,
                              double warmup_fraction) const {
  FleetStats stats;
  stats.num_servers = static_cast<int>(per_server.size());
  std::size_t total = 0;
  for (const sim::SimResult& r : per_server) total += r.records.size();

  // The fleet-level population: every record, re-keyed to global query
  // ids, global model ids, and fleet-unique worker indices, so one
  // ComputeStats pass yields coherent percentiles and utilizations.
  std::vector<sim::QueryRecord> merged;
  merged.reserve(total);
  for (std::size_t s = 0; s < per_server.size(); ++s) {
    const auto& records = per_server[s].records;
    sim::ServerStats server_stats =
        sim::ComputeStats(records, sla_target, warmup_fraction);
    for (auto& ms : server_stats.models) {
      ms.model = global_models[s][static_cast<size_t>(ms.model)];
    }
    stats.per_server.push_back(std::move(server_stats));
    stats.routed_per_server.push_back(records.size());
    stats.routed_queries += records.size();
    for (const sim::QueryRecord& r : records) {
      sim::QueryRecord g = r;
      g.id = global_ids[s][static_cast<size_t>(r.id)];
      g.model = global_models[s][static_cast<size_t>(r.model)];
      g.worker = worker_base[s] + r.worker;
      merged.push_back(g);
    }
  }
  stats.aggregate = sim::ComputeStats(merged, sla_target, warmup_fraction);
  return stats;
}

}  // namespace pe::fleet
