// fleet::Cluster -- N inference servers behind one router tier.
//
// PR 1-5 built and tuned a single `sim::InferenceServer`; this module
// makes that server a composable unit.  A Cluster owns, per server:
//   * a slot in the fleet PlacementMap (hosted models, GPC budget, and the
//     concrete MIG layout),
//   * a server-local ModelRepertoire (the hosted subset of the fleet zoo,
//     re-numbered densely so Query::model_id keeps indexing it),
//   * an independent RNG stream derived as a *pure function* of
//     (fleet seed, server id) -- never by sequentially forking one
//     generator -- so no server shares draws with another and the streams
//     do not depend on the order servers are constructed or simulated.
//
// Simulate() routes the fleet trace through the configured policy once
// (serially: routing is the sequential front tier), then replays each
// per-server sub-trace on its own engine via common::ThreadPool's
// ParallelMap.  Each map task is a pure function of the server index, so
// the per-server records are bit-identical at any --jobs count -- the same
// discipline core/experiment established for probe fan-out.
//
// FleetStats merges the per-server ServerStats with a fleet-level
// aggregate computed over the union of all records, re-mapped back to
// fleet-global query ids, model ids, and (server-offset) worker indices so
// percentiles, violation rates, and utilizations are measured over one
// coherent population.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/sim_time.h"
#include "fleet/fault.h"
#include "fleet/placement.h"
#include "fleet/router.h"
#include "profile/model_repertoire.h"
#include "sched/scheduler.h"
#include "sim/metrics.h"
#include "sim/server.h"
#include "workload/trace.h"

namespace pe::fleet {

// Builds the scheduler for one server.  Called once per server per
// Simulate(), potentially from several pool threads at once: the factory
// must be thread-safe and a pure function of its arguments (`repertoire`
// is the server's local repertoire and outlives the returned scheduler).
using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>(
    int server_id, const profile::ModelRepertoire& repertoire)>;

struct FleetConfig {
  RouterPolicy policy = RouterPolicy::kHash;
  SimTime sla_target = 0;
  double latency_noise_sigma = 0.0;
  SimTime model_swap_cost = 0;
  std::uint64_t seed = 0x5EED;
  // Forwarded to every ServerConfig (golden-determinism baseline).
  bool reference_engine = false;
};

struct FleetStats {
  int num_servers = 0;
  std::uint64_t routed_queries = 0;
  // Queries the router sent to each server (sub-trace sizes).
  std::vector<std::uint64_t> routed_per_server;
  // Fleet-level aggregate over every server's records (global model ids,
  // server-offset worker indices).
  sim::ServerStats aggregate;
  // Per-server stats; ModelStats entries carry fleet-global model ids.
  std::vector<sim::ServerStats> per_server;
  // Fleet-level fault accounting (defaults when no fault plan ran; see
  // fleet/fault.h).  The aggregate/per_server latency figures above
  // exclude failed and shed attempts -- casualties are *counted* here
  // and in ServerStats::failed/shed, never sampled.
  FaultSummary fault;
};

struct FleetResult {
  // Per-server engine output: local query ids (dense per server) and
  // server-local model ids -- exactly what that server's engine saw.
  std::vector<sim::SimResult> per_server;
  // Local query id -> fleet-level Query::id, flat server-major (the
  // TraceSplit arena layout): server s's ids live in
  // global_ids[id_offsets[s], id_offsets[s+1]).
  std::vector<std::uint64_t> global_ids;
  std::vector<std::size_t> id_offsets;  // size num_servers + 1
  // Per server: local model id -> fleet-global model id (the server's
  // sorted hosted list).
  std::vector<std::vector<int>> global_models;
  // Per server: offset added to local worker indices to make them unique
  // fleet-wide (cumulative layout sizes).
  std::vector<int> worker_base;
  // Filled by fleet::SimulateWithFaults; defaults for fault-free runs.
  // Copied into FleetStats by Stats()/StatsReference().
  FaultSummary fault;

  std::span<const std::uint64_t> GlobalIds(int s) const {
    const auto i = static_cast<std::size_t>(s);
    return {global_ids.data() + id_offsets[i],
            id_offsets[i + 1] - id_offsets[i]};
  }

  // Fleet stats without materializing the merged record vector: per-server
  // ComputeStats fans out over up to `jobs` threads, the merged arrival
  // order is recovered in O(n) by scattering the global ids (the walk
  // verifies sortedness as it goes and falls back to parallel pairwise
  // merges of the per-server (arrival, server) key runs for unsorted
  // source traces), order-sensitive accumulators (mean latency, Welford
  // queue delay, per-model mean sums) run in exactly that order in one
  // serial walk, percentiles come from linear-time selection over a flat
  // latency pool (same order statistics, same interpolation arithmetic as
  // Percentile), and integer counters sum associatively.  Field-for-field
  // bit-identical to StatsReference() at any jobs count (pinned by
  // fleet_stats_test).
  FleetStats Stats(SimTime sla_target, double warmup_fraction = 0.1,
                   int jobs = 1) const;

  // Retained reference aggregate: deep-copies every record (re-keyed to
  // global ids) into one merged vector and runs a single serial
  // ComputeStats over it.  The golden baseline for Stats() and the
  // denominator of the fleet-scaling bench's stats speedup.
  FleetStats StatsReference(SimTime sla_target,
                            double warmup_fraction = 0.1) const;
};

class Cluster {
 public:
  // `zoo` is the fleet-wide model repertoire the placement's model ids
  // index into; borrowed, must outlive the cluster.  Every server's
  // partition_gpcs must be non-empty (run a planner pass first).  Throws
  // std::invalid_argument on an unfilled layout or a placed model id
  // outside the zoo.
  Cluster(FleetConfig config, PlacementMap placement,
          const profile::ModelRepertoire& zoo, SchedulerFactory factory);

  // Pure per-server seed derivation: a SplitMix64-style mix of the fleet
  // seed and the server id.  Distinct ids map to distinct streams (the
  // mixer is bijective per fleet seed), and the result depends on nothing
  // but the two inputs -- simulating servers in any order, or any subset,
  // yields the same per-server streams.
  static std::uint64_t ServerSeed(std::uint64_t fleet_seed, int server_id);

  // The router's own stream, disjoint from every server stream (distinct
  // mixer domain).
  static std::uint64_t RouterSeed(std::uint64_t fleet_seed);

  const FleetConfig& config() const { return config_; }
  const PlacementMap& placement() const { return placement_; }
  int num_servers() const { return placement_.num_servers(); }
  const profile::ModelRepertoire& server_repertoire(int server_id) const;

  // Builds a fresh router for this cluster's policy/placement/seed.
  std::unique_ptr<Router> MakeFleetRouter() const;

  // The ServerConfig Simulate() builds for `server_id` (layout, SLA,
  // noise, per-server seed, engine flavour).  Exposed so external
  // drivers -- fleet::SimulateWithFaults runs engines incrementally --
  // construct bit-identical engines to the batch path.
  sim::ServerConfig MakeServerConfig(int server_id) const;

  // A fresh scheduler for `server_id` over its local repertoire, from
  // the cluster's factory.  Thread-safe (the factory must be).
  std::unique_ptr<sched::Scheduler> MakeScheduler(int server_id) const;

  // Fills `result`'s placement-derived tables (global_models,
  // worker_base) from this cluster's placement.  Callers supply the
  // per_server / global_ids / id_offsets trio themselves.
  void FillGlobalTables(FleetResult& result) const;

  // Routes `trace` and replays every sub-trace, fanning servers over up to
  // `jobs` threads.  Bit-identical per-server records for any jobs >= 1.
  FleetResult Simulate(const workload::QueryTrace& trace, int jobs) const;

  // Replays an already-split trace (the route+split stages factored out,
  // so the fleet-scaling bench can time them separately while both
  // pipelines share this simulate stage).  `split` must come from this
  // cluster's placement; each server replays its arena span in place.
  FleetResult SimulateSplit(const TraceSplit& split, int jobs) const;

 private:
  FleetConfig config_;
  PlacementMap placement_;
  const profile::ModelRepertoire* zoo_;
  SchedulerFactory factory_;
  // Per-server hosted subsets of the zoo, dense local ids.
  std::vector<profile::ModelRepertoire> repertoires_;
};

}  // namespace pe::fleet
