#include "fleet/failover.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "sched/scheduler.h"
#include "sim/server.h"

namespace pe::fleet {

namespace {

// Salt for the failover replica pick: distinct from the fault-schedule,
// server, and router stream domains.  The attempt number folds in so
// consecutive retries of one query spread over the healthy set instead
// of hammering a single replica.
constexpr std::uint64_t kFailoverSalt = 0xFA11BACCULL;

constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

// Merges possibly-overlapping [begin, end) windows into a disjoint
// ascending list.
std::vector<std::pair<SimTime, SimTime>> MergeWindows(
    std::vector<std::pair<SimTime, SimTime>> windows) {
  std::sort(windows.begin(), windows.end());
  std::vector<std::pair<SimTime, SimTime>> merged;
  for (const auto& w : windows) {
    if (w.second <= w.first) continue;
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

}  // namespace

HealthView::HealthView(const FaultPlan& plan, int num_servers) {
  down_.resize(static_cast<std::size_t>(num_servers));
  std::vector<std::pair<SimTime, SimTime>> incident_windows;
  // Open crash windows per server, open worker windows per (server,
  // worker), open slowdown windows per server -- closed by the matching
  // recover/end event, or at +inf (never healed).
  std::vector<SimTime> open_crash(static_cast<std::size_t>(num_servers), -1);
  std::map<std::pair<int, int>, SimTime> open_worker;
  std::vector<SimTime> open_slow(static_cast<std::size_t>(num_servers), -1);
  for (const FaultEvent& ev : plan.events) {
    const auto s = static_cast<std::size_t>(ev.server);
    switch (ev.kind) {
      case FaultKind::kServerCrash:
        if (open_crash[s] < 0) open_crash[s] = ev.time;
        break;
      case FaultKind::kServerRecover:
        if (open_crash[s] >= 0) {
          down_[s].push_back({open_crash[s], ev.time});
          incident_windows.push_back({open_crash[s], ev.time});
          open_crash[s] = -1;
        }
        break;
      case FaultKind::kWorkerFail: {
        const auto key = std::make_pair(ev.server, ev.worker);
        if (open_worker.find(key) == open_worker.end()) {
          open_worker[key] = ev.time;
        }
        break;
      }
      case FaultKind::kWorkerRecover: {
        const auto it = open_worker.find({ev.server, ev.worker});
        if (it != open_worker.end()) {
          incident_windows.push_back({it->second, ev.time});
          open_worker.erase(it);
        }
        break;
      }
      case FaultKind::kSlowdownBegin:
        if (open_slow[s] < 0) open_slow[s] = ev.time;
        break;
      case FaultKind::kSlowdownEnd:
        if (open_slow[s] >= 0) {
          incident_windows.push_back({open_slow[s], ev.time});
          open_slow[s] = -1;
        }
        break;
    }
  }
  for (std::size_t s = 0; s < down_.size(); ++s) {
    if (open_crash[s] >= 0) {
      down_[s].push_back({open_crash[s], kForever});
      incident_windows.push_back({open_crash[s], kForever});
    }
    if (open_slow[s] >= 0) {
      incident_windows.push_back({open_slow[s], kForever});
    }
  }
  for (const auto& [key, begin] : open_worker) {
    incident_windows.push_back({begin, kForever});
  }
  for (auto& windows : down_) windows = MergeWindows(std::move(windows));
  incidents_ = MergeWindows(std::move(incident_windows));
}

bool HealthView::IsUp(int server, SimTime t) const {
  const auto& windows = down_[static_cast<std::size_t>(server)];
  // First window with begin > t; the previous one is the only candidate.
  auto it = std::upper_bound(
      windows.begin(), windows.end(), t,
      [](SimTime v, const std::pair<SimTime, SimTime>& w) {
        return v < w.first;
      });
  if (it == windows.begin()) return true;
  --it;
  return t >= it->second;
}

SimTime HealthView::DownTicks(int server, SimTime horizon) const {
  SimTime ticks = 0;
  for (const auto& w : down_[static_cast<std::size_t>(server)]) {
    const SimTime begin = std::min(w.first, horizon);
    const SimTime end = std::min(w.second, horizon);
    ticks += end - begin;
  }
  return ticks;
}

bool HealthView::InIncident(SimTime t) const {
  auto it = std::upper_bound(
      incidents_.begin(), incidents_.end(), t,
      [](SimTime v, const std::pair<SimTime, SimTime>& w) {
        return v < w.first;
      });
  if (it == incidents_.begin()) return false;
  --it;
  return t < it->second;
}

FleetResult SimulateWithFaults(const Cluster& cluster,
                               const workload::QueryTrace& trace,
                               const FaultPlan& plan, int jobs,
                               const ReplanFn& replan) {
  // The identity contract: no faults, no driver -- the batch path runs
  // unchanged, record for record.
  if (plan.empty()) return cluster.Simulate(trace, jobs);

  const PlacementMap& placement = cluster.placement();
  plan.Validate(placement);
  const int n = placement.num_servers();
  const auto nn = static_cast<std::size_t>(n);
  const std::size_t total = trace.size();
  HealthView health(plan, n);

  FaultSummary fault;
  fault.faulted = true;
  fault.injected = total;

  // ---- Stage 1: route, then patch around planned downtime. -------------
  const auto router = cluster.MakeFleetRouter();
  std::vector<int> assignment = router->RouteAll(trace, jobs);
  std::vector<bool> driver_shed(total, false);
  std::vector<bool> driver_failed(total, false);
  const std::vector<workload::Query>& queries = trace.queries();
  std::vector<int> healthy;
  for (std::size_t i = 0; i < total; ++i) {
    const workload::Query& q = queries[i];
    const int s = assignment[i];
    if (health.IsUp(s, q.arrival)) continue;
    healthy.clear();
    for (const int r : placement.Replicas(q.model_id)) {
      if (health.IsUp(r, q.arrival)) healthy.push_back(r);
    }
    if (healthy.empty()) {
      assignment[i] = -1;  // pre-shed: nobody can take it
      driver_shed[i] = true;
      continue;
    }
    const std::uint64_t h = Mix64(q.id ^ Mix64(kFailoverSalt));
    assignment[i] = healthy[static_cast<std::size_t>(h % healthy.size())];
    ++fault.rerouted;
  }
  const TraceSplit split = SplitByAssignment(trace, assignment, placement);

  // ---- Stage 2: build the engines (incremental mode). ------------------
  std::vector<std::unique_ptr<sched::Scheduler>> schedulers(nn);
  std::vector<std::unique_ptr<sim::InferenceServer>> engines(nn);
  for (int s = 0; s < n; ++s) {
    sim::ServerConfig sc = cluster.MakeServerConfig(s);
    sc.deadline = plan.deadline;  // per-attempt queue-staleness shed
    const auto i = static_cast<std::size_t>(s);
    schedulers[i] = cluster.MakeScheduler(s);
    engines[i] = std::make_unique<sim::InferenceServer>(
        sc, cluster.server_repertoire(s), *schedulers[i]);
  }
  ParallelMap(nn, jobs, [&](std::size_t s) {
    engines[s]->InjectSpan(split.Server(static_cast<int>(s)));
    return 0;
  });

  // Per-server global-id maps, growing as retries inject new local ids.
  std::vector<std::vector<std::uint64_t>> gids(nn);
  for (int s = 0; s < n; ++s) {
    const auto span = split.GlobalIds(s);
    gids[static_cast<std::size_t>(s)].assign(span.begin(), span.end());
  }

  // ---- Stage 3: the epoch loop. ----------------------------------------
  // Advance every engine (parallel, one task per engine -- disjoint
  // state, so --jobs cannot change anything) to the next fault or retry
  // instant, then apply that instant's faults and injections serially in
  // schedule order.
  std::vector<int> retries_done(total, 0);
  std::vector<bool> crashed(nn, false);
  std::vector<std::vector<int>> layouts(nn);
  std::vector<std::vector<int>> original_layouts(nn);
  for (int s = 0; s < n; ++s) {
    layouts[static_cast<std::size_t>(s)] =
        placement.server(s).partition_gpcs;
    original_layouts[static_cast<std::size_t>(s)] =
        layouts[static_cast<std::size_t>(s)];
  }

  struct Retry {
    int server;
    std::uint64_t gid;
  };
  std::map<SimTime, std::vector<Retry>> pending;

  // A lost attempt comes home: retry on a healthy replica, or classify.
  const auto lose = [&](int from_server, SimTime t,
                        const std::vector<workload::Query>& removed) {
    for (const workload::Query& q : removed) {
      const std::uint64_t gid =
          gids[static_cast<std::size_t>(from_server)][q.id];
      if (retries_done[gid] >= plan.max_retries) {
        driver_failed[gid] = true;
        continue;
      }
      const int attempt = ++retries_done[gid];
      const SimTime retry_time =
          t + plan.retry_backoff * (SimTime{1} << (attempt - 1));
      const workload::Query& orig = queries[gid];
      if (plan.deadline > 0 && retry_time - orig.arrival > plan.deadline) {
        driver_shed[gid] = true;  // cannot finish in time; drop, don't churn
        continue;
      }
      healthy.clear();
      for (const int r : placement.Replicas(orig.model_id)) {
        if (health.IsUp(r, retry_time)) healthy.push_back(r);
      }
      if (healthy.empty()) {
        driver_shed[gid] = true;
        continue;
      }
      const std::uint64_t h = Mix64(
          gid ^ Mix64(kFailoverSalt + static_cast<std::uint64_t>(attempt)));
      const int pick = healthy[static_cast<std::size_t>(h % healthy.size())];
      if (pick != from_server) ++fault.rerouted;
      ++fault.retried;
      pending[retry_time].push_back({pick, gid});
    }
  };

  const auto crash_server = [&](int s, SimTime t) {
    auto& engine = *engines[static_cast<std::size_t>(s)];
    std::vector<workload::Query> removed;
    for (int w = 0; w < engine.num_workers(); ++w) {
      auto r = engine.FailWorker(w, /*requeue_orphans=*/false);
      removed.insert(removed.end(), r.begin(), r.end());
    }
    auto parked = engine.FailCentralQueue();
    removed.insert(removed.end(), parked.begin(), parked.end());
    lose(s, t, removed);
  };

  const auto do_repartition = [&](SimTime t) {
    if (!plan.repartition || !replan) return;
    std::vector<int> down;
    std::vector<bool> impacted_model;
    for (int s = 0; s < n; ++s) {
      if (!crashed[static_cast<std::size_t>(s)]) continue;
      down.push_back(s);
      for (const int m : placement.server(s).model_ids) {
        if (static_cast<std::size_t>(m) >= impacted_model.size()) {
          impacted_model.resize(static_cast<std::size_t>(m) + 1, false);
        }
        impacted_model[static_cast<std::size_t>(m)] = true;
      }
    }
    for (int v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (crashed[vi]) continue;
      bool shares = false;
      for (const int m : placement.server(v).model_ids) {
        if (static_cast<std::size_t>(m) < impacted_model.size() &&
            impacted_model[static_cast<std::size_t>(m)]) {
          shares = true;
          break;
        }
      }
      // Re-plan when the server absorbs a dead peer's traffic, or when a
      // recovery lets a previously-degraded layout relax back.
      if (!shares && layouts[vi] == original_layouts[vi]) continue;
      std::vector<int> layout = replan(v, down);
      if (layout.empty() || layout == layouts[vi]) continue;
      engines[vi]->BeginReconfigure(layout, plan.reconfig_downtime);
      layouts[vi] = std::move(layout);
      ++fault.repartitions;
    }
    // Front-tier notification: routing for this run is already fixed
    // (health-patched up front), but the router's cost tables must track
    // the layout edits -- the hook is the documented contract for any
    // placement mutation.
    router->OnPlacementChange();
    (void)t;
  };

  // A live reconfiguration rebuilds the worker set and wipes failure
  // marks (BuildWorkers); a crashed server whose pre-crash repartition
  // completes mid-epoch would silently resurrect.  Re-assert the crash
  // after every advance: abort whatever restarted and keep the marks.
  const auto enforce_crashes = [&](SimTime t) {
    for (int s = 0; s < n; ++s) {
      const auto si = static_cast<std::size_t>(s);
      if (!crashed[si]) continue;
      auto& engine = *engines[si];
      if (engine.num_failed_workers() < engine.num_workers()) {
        crash_server(s, t);
      }
    }
  };

  std::size_t fe = 0;
  SimTime last_applied = 0;
  while (fe < plan.events.size() || !pending.empty()) {
    SimTime t = kForever;
    if (fe < plan.events.size()) t = plan.events[fe].time;
    if (!pending.empty()) t = std::min(t, pending.begin()->first);
    ParallelMap(nn, jobs, [&](std::size_t s) {
      engines[s]->AdvanceTo(t);
      return 0;
    });
    enforce_crashes(t);
    while (fe < plan.events.size() && plan.events[fe].time == t) {
      const FaultEvent& ev = plan.events[fe++];
      const auto si = static_cast<std::size_t>(ev.server);
      auto& engine = *engines[si];
      ++fault.incidents;
      switch (ev.kind) {
        case FaultKind::kServerCrash:
          if (crashed[si]) break;
          crashed[si] = true;
          crash_server(ev.server, t);
          do_repartition(t);
          break;
        case FaultKind::kServerRecover:
          if (!crashed[si]) break;
          crashed[si] = false;
          for (int w = 0; w < engine.num_workers(); ++w) {
            engine.RecoverWorker(w);
          }
          do_repartition(t);
          break;
        case FaultKind::kWorkerFail: {
          if (crashed[si]) break;  // the crash already owns every worker
          if (ev.worker >= engine.num_workers()) break;  // layout shrank
          lose(ev.server, t, engine.FailWorker(ev.worker,
                                               /*requeue_orphans=*/true));
          break;
        }
        case FaultKind::kWorkerRecover:
          if (crashed[si]) break;
          if (ev.worker >= engine.num_workers()) break;
          engine.RecoverWorker(ev.worker);
          break;
        case FaultKind::kSlowdownBegin:
          engine.SetSlowdownFactor(ev.factor);
          break;
        case FaultKind::kSlowdownEnd:
          engine.SetSlowdownFactor(1.0);
          break;
      }
    }
    const auto due = pending.find(t);
    if (due != pending.end()) {
      for (const Retry& r : due->second) {
        const auto si = static_cast<std::size_t>(r.server);
        const workload::Query& orig = queries[r.gid];
        workload::Query q;
        q.id = gids[si].size();
        q.arrival = t;
        q.batch = orig.batch;
        q.model_id = placement.LocalModel(r.server, orig.model_id);
        assert(q.model_id >= 0);
        engines[si]->InjectQuery(q);
        gids[si].push_back(r.gid);
      }
      pending.erase(due);
    }
    last_applied = t;
  }

  // ---- Stage 4: drain and assemble. ------------------------------------
  auto results = ParallelMap(nn, jobs, [&](std::size_t s) {
    return engines[s]->Finish();
  });

  FleetResult result;
  result.per_server = std::move(results);
  result.id_offsets.assign(nn + 1, 0);
  for (std::size_t s = 0; s < nn; ++s) {
    result.id_offsets[s + 1] = result.id_offsets[s] + gids[s].size();
  }
  result.global_ids.reserve(result.id_offsets.back());
  for (std::size_t s = 0; s < nn; ++s) {
    result.global_ids.insert(result.global_ids.end(), gids[s].begin(),
                             gids[s].end());
  }
  cluster.FillGlobalTables(result);

  // ---- Stage 5: terminal classification + incident metrics. ------------
  std::vector<bool> any_completed(total, false);
  std::vector<bool> any_failed(total, false);
  std::vector<bool> any_shed(total, false);
  SimTime makespan = last_applied == kForever ? 0 : last_applied;
  Percentile incident_latency;
  for (std::size_t s = 0; s < nn; ++s) {
    for (const sim::QueryRecord& r : result.per_server[s].records) {
      const std::uint64_t gid = gids[s][r.id];
      makespan = std::max(makespan, r.finished);
      if (!r.failed && !r.shed) {
        any_completed[gid] = true;
        if (health.InIncident(r.finished)) {
          incident_latency.Add(TicksToMs(r.Latency()));
          ++fault.incident_completions;
        }
      } else if (r.failed) {
        any_failed[gid] = true;
      } else {
        any_shed[gid] = true;
      }
    }
  }
  for (std::size_t gid = 0; gid < total; ++gid) {
    if (any_completed[gid]) {
      ++fault.completed;
    } else if (driver_failed[gid]) {
      ++fault.failed;
    } else if (driver_shed[gid] || any_shed[gid]) {
      ++fault.shed;
    } else if (any_failed[gid]) {
      // No retry path saw it (e.g. parked work that died at Finish).
      ++fault.failed;
    } else {
      // Unreachable by construction -- every gid either produced records
      // or was pre-shed -- but classify conservatively rather than lose
      // the conservation invariant.
      ++fault.shed;
    }
  }
  assert(fault.completed + fault.failed + fault.shed == fault.injected);
  fault.makespan = makespan;
  fault.availability.reserve(nn);
  for (int s = 0; s < n; ++s) {
    if (makespan > 0) {
      const double down_frac =
          static_cast<double>(health.DownTicks(s, makespan)) /
          static_cast<double>(makespan);
      fault.availability.push_back(1.0 - down_frac);
    } else {
      fault.availability.push_back(1.0);
    }
  }
  if (fault.incident_completions > 0) {
    fault.p99_incident_ms = incident_latency.P99();
  }
  result.fault = fault;
  return result;
}

}  // namespace pe::fleet
