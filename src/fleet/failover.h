// Fault-tolerant fleet serving: the driver that runs a Cluster under a
// FaultPlan.
//
// Three layers of defence, mirroring a production serving stack:
//  1. Health-aware routing.  The fault schedule is known up front (it is
//     a plan, not a surprise to the simulator), so the front tier routes
//     *around* planned downtime: queries arriving while their assigned
//     server is crashed divert to a healthy replica via a salted hash
//     (counted as rerouted), or are pre-shed when no replica is up.
//     This models a health-checked load balancer whose view is accurate
//     at arrival time; the crashed engine never sees arrivals inside
//     its down window.
//  2. Retry with budget + backoff.  Work lost *inside* a server at the
//     crash instant -- in-flight, queued, centrally parked, all with
//     arrival <= crash time -- comes back to the driver, which re-injects
//     each casualty as a fresh attempt on a healthy replica at
//     t + backoff * 2^(attempt-1), up to max_retries attempts beyond the
//     first.  A retry that would land past the end-to-end deadline (vs
//     the ORIGINAL arrival) or finds no healthy replica is shed; an
//     exhausted budget marks the query failed.  Per-attempt engine
//     deadlines (ServerConfig::deadline) shed queue-stuck work locally.
//  3. Degraded-capacity repartition.  On a crash (and again on
//     recovery), surviving replicas of the impacted models re-plan their
//     MIG layouts through the `ReplanFn` callback -- wired to the
//     online tier's mixed-PARIS planner by core::FleetTestbed -- via
//     BeginReconfigure, absorbing the shifted traffic.
//
// Determinism: routing, the patch pass, fault application, and retry
// injection are all serial and seeded; the only parallel work is
// advancing disjoint engines between fault instants (one task per
// engine).  The result is bit-identical at any --jobs count and across
// repeated runs with the same (trace, plan, seed).  An EMPTY plan
// delegates to Cluster::Simulate verbatim -- record-by-record
// bit-identical to the fault-free driver (pinned by fleet_failover_test).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "fleet/cluster.h"
#include "fleet/fault.h"
#include "workload/trace.h"

namespace pe::fleet {

// Degraded-capacity repartition hook: given a surviving server and the
// currently-down server set (ascending ids; empty after full recovery),
// returns the MIG layout the server should reconfigure to -- or an empty
// vector for "keep the current layout".  Must be deterministic.  The
// fleet module cannot depend on the online planner (layering), so
// core::FleetTestbed injects it from above.
using ReplanFn =
    std::function<std::vector<int>(int server, const std::vector<int>& down)>;

// The fault schedule, digested for O(log) time queries: per-server crash
// windows (crash -> matching recover, open-ended when permanent) and the
// merged union of every incident window (crashes, worker outages,
// slowdowns) for the p99-during-incident metric.
class HealthView {
 public:
  HealthView(const FaultPlan& plan, int num_servers);

  // False iff `t` falls inside one of `server`'s crash windows
  // [crash, recover).  Worker failures and slowdowns leave the server up.
  bool IsUp(int server, SimTime t) const;

  // Total crashed ticks of `server` clipped to [0, horizon).
  SimTime DownTicks(int server, SimTime horizon) const;

  // True iff `t` lies inside the union of all incident windows.
  bool InIncident(SimTime t) const;

  const std::vector<std::pair<SimTime, SimTime>>& incident_windows() const {
    return incidents_;
  }

 private:
  // Per server, disjoint ascending [begin, end) crash windows.
  std::vector<std::vector<std::pair<SimTime, SimTime>>> down_;
  // Merged union over every fault kind, ascending and disjoint.
  std::vector<std::pair<SimTime, SimTime>> incidents_;
};

// Runs `trace` on `cluster` under `plan`.  The FleetResult carries every
// attempt's record (retries appear as extra per-server records whose
// global ids repeat) plus the filled FaultSummary; FleetResult::Stats
// excludes casualties from every latency figure and reports them through
// the failed/shed counters.  Throws what Cluster::Simulate throws, plus
// std::invalid_argument on a plan that does not validate against the
// cluster's placement.
FleetResult SimulateWithFaults(const Cluster& cluster,
                               const workload::QueryTrace& trace,
                               const FaultPlan& plan, int jobs,
                               const ReplanFn& replan = {});

}  // namespace pe::fleet
