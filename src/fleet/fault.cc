#include "fleet/fault.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/rng.h"

namespace pe::fleet {

namespace {

// Disjoint stream tag for fault-schedule draws (servers hash their ids
// through ServerSeed, the router through RouterSeed; this one is ours).
constexpr std::uint64_t kFaultStreamSalt = 0xFA17ULL;

double ParseNumber(const std::string& key, const std::string& val) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(val, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != val.size()) {
    throw std::invalid_argument("faults: bad value for '" + key + "': '" +
                                val + "'");
  }
  return parsed;
}

// Override bundle shared by every preset; negative sentinel = "not set"
// so presets can distinguish an explicit 0 (e.g. down-ms=0 => permanent)
// from an untouched default.
struct Overrides {
  double count = -1.0;
  double at_ms = -1.0;
  double down_ms = -1.0;
  double factor = -1.0;
  double stagger_ms = -1.0;
  double retries = -1.0;
  double backoff_ms = -1.0;
  double deadline_ms = -1.0;
  double repartition = -1.0;
  double downtime_ms = -1.0;
};

Overrides CollectOverrides(const FaultOptions& opts) {
  Overrides o;
  for (const auto& [key, val] : opts.overrides) {
    const double v = ParseNumber(key, val);
    if (key == "count") {
      o.count = v;
    } else if (key == "at-ms") {
      o.at_ms = v;
    } else if (key == "down-ms") {
      o.down_ms = v;
    } else if (key == "factor") {
      o.factor = v;
    } else if (key == "stagger-ms") {
      o.stagger_ms = v;
    } else if (key == "retries") {
      o.retries = v;
    } else if (key == "backoff-ms") {
      o.backoff_ms = v;
    } else if (key == "deadline-ms") {
      o.deadline_ms = v;
    } else if (key == "repartition") {
      o.repartition = v;
    } else if (key == "downtime-ms") {
      o.downtime_ms = v;
    } else {
      throw std::invalid_argument("faults: unknown key '" + key + "'");
    }
  }
  return o;
}

int ClampCount(double requested, int fallback, int limit) {
  int n = requested >= 0.0 ? static_cast<int>(requested) : fallback;
  if (n < 0) n = 0;
  return std::min(n, limit);
}

// `count` distinct server ids, ascending, drawn without replacement.
// Partial Fisher-Yates over the dense id range: O(num_servers) setup,
// deterministic in the rng stream.
std::vector<int> DrawServers(int count, int num_servers, Rng& rng) {
  std::vector<int> ids(static_cast<std::size_t>(num_servers));
  for (int s = 0; s < num_servers; ++s) ids[static_cast<std::size_t>(s)] = s;
  for (int k = 0; k < count; ++k) {
    const auto j = static_cast<std::size_t>(rng.UniformInt(k, num_servers - 1));
    std::swap(ids[static_cast<std::size_t>(k)], ids[j]);
  }
  ids.resize(static_cast<std::size_t>(count));
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash:
      return "server_crash";
    case FaultKind::kServerRecover:
      return "server_recover";
    case FaultKind::kWorkerFail:
      return "worker_fail";
    case FaultKind::kWorkerRecover:
      return "worker_recover";
    case FaultKind::kSlowdownBegin:
      return "slowdown_begin";
    case FaultKind::kSlowdownEnd:
      return "slowdown_end";
  }
  return "unknown";
}

void FaultPlan::Validate(const PlacementMap& placement) const {
  for (const auto& ev : events) {
    if (ev.time < 0) {
      throw std::invalid_argument("faults: negative event time");
    }
    if (ev.server < 0 || ev.server >= placement.num_servers()) {
      throw std::invalid_argument("faults: server " + std::to_string(ev.server) +
                                  " out of range");
    }
    if (ev.kind == FaultKind::kWorkerFail ||
        ev.kind == FaultKind::kWorkerRecover) {
      const auto& layout = placement.server(ev.server).partition_gpcs;
      // An unfilled layout (no planner pass yet) counts as one lane: the
      // layout is decided later and the driver re-checks at apply time.
      const int lanes = layout.empty() ? 1 : static_cast<int>(layout.size());
      if (ev.worker < 0 || ev.worker >= lanes) {
        throw std::invalid_argument(
            "faults: worker " + std::to_string(ev.worker) +
            " out of range for server " + std::to_string(ev.server));
      }
    }
    if (ev.kind == FaultKind::kSlowdownBegin && !(ev.factor > 0.0)) {
      throw std::invalid_argument("faults: slowdown factor must be > 0");
    }
  }
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].time < events[i - 1].time) {
      throw std::invalid_argument("faults: events not sorted by time");
    }
  }
  if (max_retries < 0) {
    throw std::invalid_argument("faults: max_retries must be >= 0");
  }
  if (retry_backoff < 0 || deadline < 0 || reconfig_downtime < 0) {
    throw std::invalid_argument("faults: negative duration knob");
  }
}

FaultOptions ParseFaultRef(const std::string& ref) {
  FaultOptions opts;
  const auto colon = ref.find(':');
  opts.name = ref.substr(0, colon);
  if (opts.name.empty()) {
    throw std::invalid_argument("faults: empty name in '" + ref + "'");
  }
  if (colon == std::string::npos) return opts;
  std::string rest = ref.substr(colon + 1);
  std::string::size_type begin = 0;
  for (;;) {
    const auto comma = rest.find(',', begin);
    const std::string pair = rest.substr(begin, comma - begin);
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      throw std::invalid_argument("faults: expected key=val, got '" + pair +
                                  "'");
    }
    opts.overrides.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return opts;
}

const std::vector<std::string>& FaultPresetNames() {
  static const std::vector<std::string> names = {"serverloss", "flaky",
                                                 "brownout", "cascade"};
  return names;
}

FaultPlan ResolveFaultPlan(const FaultOptions& opts,
                           const PlacementMap& placement, SimTime span,
                           std::uint64_t seed) {
  if (span <= 0) {
    throw std::invalid_argument("faults: non-positive trace span");
  }
  const Overrides o = CollectOverrides(opts);

  FaultPlan plan;
  plan.name = opts.name;
  if (o.retries >= 0.0) plan.max_retries = static_cast<int>(o.retries);
  if (o.backoff_ms >= 0.0) plan.retry_backoff = MsToTicks(o.backoff_ms);
  if (o.deadline_ms >= 0.0) plan.deadline = MsToTicks(o.deadline_ms);
  if (o.repartition >= 0.0) plan.repartition = o.repartition != 0.0;
  if (o.downtime_ms >= 0.0) plan.reconfig_downtime = MsToTicks(o.downtime_ms);

  if (opts.name == "none") {
    if (!opts.overrides.empty()) {
      throw std::invalid_argument("faults: 'none' takes no overrides");
    }
    return plan;
  }

  const int num_servers = placement.num_servers();
  Rng rng(Mix64(seed ^ Mix64(kFaultStreamSalt)));
  const double span_d = static_cast<double>(span);

  if (opts.name == "serverloss") {
    const int count = ClampCount(o.count, 1, num_servers);
    const SimTime at = o.at_ms >= 0.0
                           ? MsToTicks(o.at_ms)
                           : static_cast<SimTime>(0.25 * span_d);
    const SimTime down = o.down_ms >= 0.0 ? MsToTicks(o.down_ms) : 0;
    for (const int s : DrawServers(count, num_servers, rng)) {
      plan.events.push_back({at, FaultKind::kServerCrash, s, -1, 1.0});
      if (down > 0) {
        plan.events.push_back({at + down, FaultKind::kServerRecover, s, -1,
                               1.0});
      }
    }
  } else if (opts.name == "flaky") {
    const int count = ClampCount(o.count, 4, 64 * std::max(1, num_servers));
    const SimTime down = o.down_ms >= 0.0
                             ? MsToTicks(o.down_ms)
                             : static_cast<SimTime>(0.05 * span_d);
    for (int k = 0; k < count; ++k) {
      const int s = static_cast<int>(rng.UniformInt(0, num_servers - 1));
      const auto lanes = std::max<int>(
          1, static_cast<int>(placement.server(s).partition_gpcs.size()));
      const int w = static_cast<int>(rng.UniformInt(0, lanes - 1));
      const auto at =
          static_cast<SimTime>(rng.Uniform(0.1 * span_d, 0.9 * span_d));
      plan.events.push_back({at, FaultKind::kWorkerFail, s, w, 1.0});
      if (down > 0) {
        plan.events.push_back({at + down, FaultKind::kWorkerRecover, s, w,
                               1.0});
      }
    }
  } else if (opts.name == "brownout") {
    const int count = ClampCount(o.count, 2, num_servers);
    const double factor = o.factor >= 0.0 ? o.factor : 2.0;
    if (!(factor > 0.0)) {
      throw std::invalid_argument("faults: brownout factor must be > 0");
    }
    const SimTime at = o.at_ms >= 0.0
                           ? MsToTicks(o.at_ms)
                           : static_cast<SimTime>(0.3 * span_d);
    const SimTime down = o.down_ms >= 0.0
                             ? MsToTicks(o.down_ms)
                             : static_cast<SimTime>(0.4 * span_d);
    for (const int s : DrawServers(count, num_servers, rng)) {
      plan.events.push_back({at, FaultKind::kSlowdownBegin, s, -1, factor});
      if (down > 0) {
        plan.events.push_back({at + down, FaultKind::kSlowdownEnd, s, -1,
                               1.0});
      }
    }
  } else if (opts.name == "cascade") {
    const int count = ClampCount(o.count, 3, num_servers);
    const SimTime at0 = o.at_ms >= 0.0
                            ? MsToTicks(o.at_ms)
                            : static_cast<SimTime>(0.25 * span_d);
    const SimTime stagger = o.stagger_ms >= 0.0
                                ? MsToTicks(o.stagger_ms)
                                : static_cast<SimTime>(0.1 * span_d);
    const SimTime down = o.down_ms >= 0.0
                             ? MsToTicks(o.down_ms)
                             : static_cast<SimTime>(0.25 * span_d);
    const std::vector<int> victims = DrawServers(count, num_servers, rng);
    for (int k = 0; k < static_cast<int>(victims.size()); ++k) {
      const SimTime at = at0 + static_cast<SimTime>(k) * stagger;
      plan.events.push_back(
          {at, FaultKind::kServerCrash, victims[static_cast<std::size_t>(k)],
           -1, 1.0});
      if (down > 0) {
        plan.events.push_back({at + down, FaultKind::kServerRecover,
                               victims[static_cast<std::size_t>(k)], -1, 1.0});
      }
    }
  } else {
    throw std::invalid_argument("faults: unknown preset '" + opts.name + "'");
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  plan.Validate(placement);
  return plan;
}

}  // namespace pe::fleet
