// Deterministic fault injection for the fleet tier.
//
// A FaultPlan is a declarative, time-sorted schedule of fault events --
// server crashes and recoveries, single-worker (MIG-slice) failures,
// replica slowdowns -- resolved once, up front, from a preset name plus
// key=val overrides (the `--faults` CLI grammar, mirroring `--scenario`).
// Resolution is a pure function of (preset, overrides, placement shape,
// trace span, seed): the randomized presets draw from their own forked
// RNG stream, so the same spec and seed always yield the same schedule,
// independent of --jobs and of anything the simulation does later.
//
// The plan says *what breaks when*; `fleet/failover.h` owns what the
// serving stack does about it (health-aware rerouting, retries, shed
// accounting, degraded-capacity repartition).  An empty plan is the
// contract's identity element: SimulateWithFaults({}) delegates to the
// fault-free driver verbatim, record-by-record bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "fleet/placement.h"

namespace pe::fleet {

enum class FaultKind {
  kServerCrash,    // every worker fails; queued + in-flight work is lost
  kServerRecover,  // every worker of a crashed server comes back
  kWorkerFail,     // one MIG slice fails (its queue reroutes in-engine)
  kWorkerRecover,  // that slice comes back
  kSlowdownBegin,  // replica executes `factor` x slower (estimates unchanged)
  kSlowdownEnd,    // back to nominal speed
};

const char* ToString(FaultKind kind);

// One scheduled incident.  `worker` only applies to the kWorker* kinds
// (engine worker index, i.e. position in the server's MIG layout);
// `factor` only to kSlowdownBegin.
struct FaultEvent {
  SimTime time = 0;
  FaultKind kind = FaultKind::kServerCrash;
  int server = 0;
  int worker = -1;
  double factor = 1.0;
};

// The resolved schedule plus the failover policy knobs that ride along
// with it (retry budget, end-to-end deadline, repartition switch).
struct FaultPlan {
  std::string name = "none";
  // Ascending by time; equal times keep schedule order (crash-instant
  // ties are applied in this order, deterministically).
  std::vector<FaultEvent> events;

  // Failover policy.  A lost attempt is retried up to `max_retries`
  // times with exponential backoff (backoff * 2^(attempt-1)) before the
  // query is shed; `deadline` (0 = off) bounds the *end-to-end* latency
  // against the original arrival -- a retry that cannot finish in time
  // is shed instead of re-injected.
  int max_retries = 2;
  SimTime retry_backoff = MsToTicks(50.0);
  SimTime deadline = 0;

  // When true, a server crash triggers a degraded-capacity repartition:
  // surviving replicas of the dead server's models re-plan their MIG
  // layouts for the shifted traffic (see online::FailoverRepartition).
  bool repartition = true;
  // Reconfiguration downtime charged per repartition (BeginReconfigure).
  SimTime reconfig_downtime = 0;

  bool empty() const { return events.empty(); }

  // Throws std::invalid_argument on an out-of-range server id, a worker
  // index outside its server's layout, a non-positive slowdown factor,
  // or a negative event time.
  void Validate(const PlacementMap& placement) const;
};

// A parsed `--faults` reference: preset name + raw key=val overrides
// (same grammar as workload::ParseScenarioRef).
struct FaultOptions {
  std::string name;
  std::vector<std::pair<std::string, std::string>> overrides;
};

// Parses "NAME" or "NAME:key=val,key=val,...".  Throws
// std::invalid_argument on an empty name or a malformed pair.  Preset
// validity is checked later, by ResolveFaultPlan.
FaultOptions ParseFaultRef(const std::string& ref);

// Preset names accepted by ResolveFaultPlan ("none" is also accepted
// and resolves to the empty plan).
const std::vector<std::string>& FaultPresetNames();

// Resolves a preset + overrides into a concrete schedule over a trace
// spanning [0, span) ticks against `placement`'s fleet shape.
//
// Presets (all times scale with `span`; counts clamp to the fleet size):
//  * serverloss -- `count` (default 1) distinct servers crash at
//                  0.25*span; permanent unless down-ms > 0.
//  * flaky      -- `count` (default 4) single-worker incidents at random
//                  (server, worker, time) draws in [0.1, 0.9)*span, each
//                  healing after down-ms (default 5% of span).
//  * brownout   -- `count` (default 2) servers run `factor` (default 2.0)
//                  x slower across [0.3, 0.7]*span.
//  * cascade    -- `count` (default 3) staggered crashes from 0.25*span
//                  every stagger-ms (default 10% of span), each healing
//                  after down-ms (default 25% of span).
//
// Shared override keys: count, at-ms, down-ms, factor, stagger-ms,
// retries, backoff-ms, deadline-ms, repartition (0/1), downtime-ms.
// Unknown keys and unknown preset names throw std::invalid_argument.
//
// Deterministic: randomized draws come from Rng(Mix64(seed ^
// Mix64(0xFA17))), disjoint from every server and router stream.
FaultPlan ResolveFaultPlan(const FaultOptions& opts,
                           const PlacementMap& placement, SimTime span,
                           std::uint64_t seed);

// Fleet-level fault accounting, filled by fleet::SimulateWithFaults and
// surfaced through FleetStats / the fleet CLI's JSON report.  Terminal
// counts classify every injected query exactly once:
// completed + failed + shed == injected (pinned by the fuzz harness).
struct FaultSummary {
  bool faulted = false;        // true iff a non-empty plan ran
  std::uint64_t injected = 0;  // fleet-trace queries offered
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;   // every attempt died and no retry was possible
  std::uint64_t shed = 0;     // dropped: deadline, retry budget, or no
                              // healthy replica at (re)route time
  std::uint64_t retried = 0;  // re-injected attempts (not terminal)
  std::uint64_t rerouted = 0;   // attempts diverted off the original route
  std::uint64_t incidents = 0;  // fault events applied
  std::uint64_t repartitions = 0;  // degraded-capacity re-plans applied
  SimTime makespan = 0;
  // Per server: fraction of the makespan the server was up (1.0 when
  // never crashed).  Worker-level failures and slowdowns do not count
  // as downtime -- the server kept serving.
  std::vector<double> availability;
  // p99 latency over completions that *finished* inside an incident
  // window (crash-to-recover / slowdown / worker-outage union); 0 when
  // no completion landed in one.
  double p99_incident_ms = 0.0;
  std::uint64_t incident_completions = 0;
};

}  // namespace pe::fleet
