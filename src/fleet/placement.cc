#include "fleet/placement.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pe::fleet {

PlacementMap::PlacementMap(std::vector<ServerPlacement> servers)
    : servers_(std::move(servers)) {
  if (servers_.empty()) {
    throw std::invalid_argument("PlacementMap: no servers");
  }
  int max_model = -1;
  for (int s = 0; s < static_cast<int>(servers_.size()); ++s) {
    const ServerPlacement& sp = servers_[s];
    if (sp.server_id != s) {
      throw std::invalid_argument(
          "PlacementMap: server ids must be dense 0..N-1, got id " +
          std::to_string(sp.server_id) + " at slot " + std::to_string(s));
    }
    if (sp.model_ids.empty()) {
      throw std::invalid_argument("PlacementMap: server " +
                                  std::to_string(s) + " hosts no model");
    }
    if (sp.gpc_budget <= 0) {
      throw std::invalid_argument("PlacementMap: server " +
                                  std::to_string(s) +
                                  " has non-positive gpc_budget");
    }
    for (int m : sp.model_ids) {
      if (m < 0) {
        throw std::invalid_argument("PlacementMap: negative model id on server " +
                                    std::to_string(s));
      }
      max_model = std::max(max_model, m);
    }
  }
  replicas_.assign(max_model + 1, {});
  for (const ServerPlacement& sp : servers_) {
    for (int m : sp.model_ids) {
      replicas_[m].push_back(sp.server_id);
    }
  }
  for (int m = 0; m <= max_model; ++m) {
    std::vector<int>& reps = replicas_[m];
    std::sort(reps.begin(), reps.end());
    if (std::adjacent_find(reps.begin(), reps.end()) != reps.end()) {
      throw std::invalid_argument("PlacementMap: model " + std::to_string(m) +
                                  " listed twice on one server");
    }
    if (reps.empty()) {
      throw std::invalid_argument("PlacementMap: model " + std::to_string(m) +
                                  " is hosted by no server");
    }
  }
  // Keep each server's hosted list sorted so downstream consumers
  // (repertoire construction, JSON output) are order-independent.
  for (ServerPlacement& sp : servers_) {
    std::sort(sp.model_ids.begin(), sp.model_ids.end());
  }
  // Dense global->local model remap tables (the sorted hosted list is the
  // local id space, matching the per-server repertoire registration order).
  local_models_.assign(servers_.size(),
                       std::vector<int>(static_cast<std::size_t>(max_model + 1),
                                        -1));
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const std::vector<int>& hosted = servers_[s].model_ids;
    for (std::size_t local = 0; local < hosted.size(); ++local) {
      local_models_[s][static_cast<std::size_t>(hosted[local])] =
          static_cast<int>(local);
    }
  }
}

const ServerPlacement& PlacementMap::server(int server_id) const {
  if (server_id < 0 || server_id >= num_servers()) {
    throw std::out_of_range("PlacementMap::server: bad id " +
                            std::to_string(server_id));
  }
  return servers_[server_id];
}

ServerPlacement& PlacementMap::mutable_server(int server_id) {
  if (server_id < 0 || server_id >= num_servers()) {
    throw std::out_of_range("PlacementMap::mutable_server: bad id " +
                            std::to_string(server_id));
  }
  return servers_[server_id];
}

const std::vector<int>& PlacementMap::Replicas(int model_id) const {
  if (model_id < 0 || model_id >= num_models()) {
    throw std::out_of_range("PlacementMap::Replicas: unplaced model " +
                            std::to_string(model_id));
  }
  return replicas_[model_id];
}

PlacementMap UniformPlacement(int num_servers, int num_models,
                              int gpc_budget) {
  std::vector<ServerPlacement> servers(
      static_cast<size_t>(std::max(num_servers, 0)));
  for (int s = 0; s < num_servers; ++s) {
    servers[s].server_id = s;
    servers[s].gpc_budget = gpc_budget;
    for (int m = 0; m < num_models; ++m) servers[s].model_ids.push_back(m);
  }
  return PlacementMap(std::move(servers));
}

PlacementMap ShardedPlacement(int num_servers, int num_models, int replicas,
                              int gpc_budget) {
  if (num_servers <= 0) {
    throw std::invalid_argument("ShardedPlacement: num_servers must be > 0");
  }
  replicas = std::clamp(replicas, 1, num_servers);
  std::vector<ServerPlacement> servers(static_cast<size_t>(num_servers));
  for (int s = 0; s < num_servers; ++s) {
    servers[s].server_id = s;
    servers[s].gpc_budget = gpc_budget;
  }
  for (int m = 0; m < num_models; ++m) {
    for (int k = 0; k < replicas; ++k) {
      servers[(m + k) % num_servers].model_ids.push_back(m);
    }
  }
  // Sharding can leave a server empty when num_models < num_servers;
  // give such servers the model that hashes to them so every server is
  // usable (a serving fleet has no reason to idle a whole server).
  for (int s = 0; s < num_servers; ++s) {
    if (servers[s].model_ids.empty() && num_models > 0) {
      servers[s].model_ids.push_back(s % num_models);
    }
  }
  return PlacementMap(std::move(servers));
}

const char* ToString(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kUniform:
      return "uniform";
    case PlacementKind::kSharded:
      return "sharded";
  }
  return "?";
}

std::optional<PlacementKind> ParsePlacementKind(const std::string& name) {
  if (name == "uniform") return PlacementKind::kUniform;
  if (name == "sharded") return PlacementKind::kSharded;
  return std::nullopt;
}

}  // namespace pe::fleet
