// Fleet-wide model placement: which models live on which servers at
// which GPC budgets.
//
// The single-server world pins one repertoire to one `InferenceServer`;
// a fleet shards the repertoire across N servers, each serving a subset
// of the models on its own MIG layout.  A PlacementMap is the source of
// truth for that assignment: per server the hosted model ids, the GPC
// budget its layout was derived under, and the concrete partition
// multiset; per model the replica set (the servers the router may send
// its traffic to).  bench_mix_consolidation's dedicated-vs-consolidated
// study samples exactly one point of this space (two single-model
// "servers" vs one two-model server); the builders below generate whole
// families of placements.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace pe::fleet {

// One server's slot in the fleet placement map.
struct ServerPlacement {
  int server_id = 0;
  // Hosted models (global repertoire ids), ascending and unique.  The
  // router only offers a query to servers hosting its model.
  std::vector<int> model_ids;
  // GPC budget the layout was (or is to be) derived under.
  int gpc_budget = 48;
  // Concrete MIG layout (multiset of partition sizes).  Builders leave it
  // empty; the fleet planner (core::FleetTestbed) fills it per server and
  // fleet::Cluster requires it non-empty.
  std::vector<int> partition_gpcs;
};

class PlacementMap {
 public:
  PlacementMap() = default;
  // Takes ownership of `servers`; ids must be dense 0..N-1 in order.
  // Throws std::invalid_argument on non-dense ids, an empty server list,
  // a server hosting no model (or duplicate/negative model ids), or a
  // model id left unhosted by every server.
  explicit PlacementMap(std::vector<ServerPlacement> servers);

  int num_servers() const { return static_cast<int>(servers_.size()); }
  const ServerPlacement& server(int server_id) const;
  // Mutable access for the layout-filling planner pass.  Only
  // partition_gpcs may change post-construction: the hosted-model sets are
  // baked into the replica index and the local-model remap tables at
  // construction time.
  ServerPlacement& mutable_server(int server_id);
  const std::vector<ServerPlacement>& servers() const { return servers_; }

  // Number of distinct placed models (max hosted id + 1; ids are dense by
  // construction).
  int num_models() const { return static_cast<int>(replicas_.size()); }

  // Servers hosting `model_id`, ascending server id.  Throws
  // std::out_of_range on an unplaced model id.
  const std::vector<int>& Replicas(int model_id) const;

  // Server-local model id (the index of `model_id` within the server's
  // sorted hosted list), or -1 when the server does not host it.  Backed
  // by dense tables precomputed at construction, so the trace-split hot
  // path pays an array index instead of a lower_bound per query.  No
  // bounds checks: both ids must be in range (server in [0, num_servers),
  // model in [0, num_models)).
  int LocalModel(int server_id, int model_id) const {
    return local_models_[static_cast<std::size_t>(server_id)]
                        [static_cast<std::size_t>(model_id)];
  }

 private:
  std::vector<ServerPlacement> servers_;
  std::vector<std::vector<int>> replicas_;  // model id -> server ids
  // server id -> (global model id -> local model id, -1 when unhosted)
  std::vector<std::vector<int>> local_models_;
};

// Full replication: every one of `num_servers` servers hosts every one of
// `num_models` models at `gpc_budget` GPCs.  Maximum routing freedom,
// maximum cross-model interference per server.
PlacementMap UniformPlacement(int num_servers, int num_models,
                              int gpc_budget = 48);

// Round-robin sharding: model m lives on servers (m + k) % num_servers
// for k in [0, replicas).  `replicas` is clamped to [1, num_servers].
// Fewer models per server means smaller per-server repertoires (fewer
// model swaps) at the cost of a narrower replica set per model.
PlacementMap ShardedPlacement(int num_servers, int num_models, int replicas,
                              int gpc_budget = 48);

// Named builder selection (the CLI's --placement spellings).
enum class PlacementKind { kUniform, kSharded };

const char* ToString(PlacementKind kind);

// Parses "uniform" / "sharded"; nullopt otherwise.
std::optional<PlacementKind> ParsePlacementKind(const std::string& name);

}  // namespace pe::fleet
