#include "fleet/router.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"
#include "common/sim_time.h"

namespace pe::fleet {

namespace {

// SplitMix64 finalizer (Steele et al.): a bijective 64-bit mixer; the same
// construction common/rng.h uses for seeding, reproduced here so the hash
// policy is a pure function with no generator state.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Deterministic virtual backlog shared by the load-aware policies: one
// free-at clock per server, advanced by the profiled service estimate
// scaled down by the server's parallelism.
class BacklogModel {
 public:
  BacklogModel(const PlacementMap& placement,
               const profile::ModelRepertoire* repertoire)
      : placement_(placement), repertoire_(repertoire) {
    gpcs_.reserve(placement.num_servers());
    lanes_.reserve(placement.num_servers());
    for (const ServerPlacement& sp : placement.servers()) {
      // Layout may be unfilled when the router runs standalone (tests);
      // treat the whole budget as one lane then.
      int max_gpcs = sp.gpc_budget;
      int lanes = 1;
      if (!sp.partition_gpcs.empty()) {
        max_gpcs = *std::max_element(sp.partition_gpcs.begin(),
                                     sp.partition_gpcs.end());
        lanes = static_cast<int>(sp.partition_gpcs.size());
      }
      gpcs_.push_back(max_gpcs);
      lanes_.push_back(lanes);
    }
    Reset();
  }

  void Reset() { free_at_.assign(gpcs_.size(), 0.0); }

  double BacklogSec(int server, double now_sec) const {
    return std::max(0.0, free_at_[static_cast<size_t>(server)] - now_sec);
  }

  void Charge(int server, const workload::Query& query, double now_sec) {
    double& free_at = free_at_[static_cast<size_t>(server)];
    free_at = std::max(free_at, now_sec) + CostSec(server, query);
  }

 private:
  double CostSec(int server, const workload::Query& query) const {
    const auto s = static_cast<size_t>(server);
    if (repertoire_ != nullptr && repertoire_->Has(query.model_id)) {
      const int batch = std::min(query.batch, repertoire_->max_batch());
      return repertoire_->EstimateSec(query.model_id, gpcs_[s], batch) /
             static_cast<double>(lanes_[s]);
    }
    // No profile surface: a nominal 1 ms per batch item keeps the policy
    // deterministic and batch-aware, just not model-weighted.
    return 1e-3 * static_cast<double>(query.batch) /
           static_cast<double>(lanes_[s]);
  }

  const PlacementMap& placement_;
  const profile::ModelRepertoire* repertoire_;
  std::vector<int> gpcs_;   // largest partition per server
  std::vector<int> lanes_;  // worker count per server
  std::vector<double> free_at_;
};

class HashRouter final : public Router {
 public:
  explicit HashRouter(const PlacementMap& placement)
      : placement_(placement) {}

  int Route(const workload::Query& query) override {
    const std::vector<int>& reps = placement_.Replicas(query.model_id);
    if (reps.size() == 1) return reps[0];
    // Salting with the model id decorrelates the replica choice across
    // models sharing a replica-set size.
    const std::uint64_t h =
        Mix64(query.id ^ Mix64(static_cast<std::uint64_t>(query.model_id)));
    return reps[h % reps.size()];
  }

  void Reset() override {}
  std::string name() const override { return "hash"; }

 private:
  const PlacementMap& placement_;
};

class LeastLoadedRouter final : public Router {
 public:
  LeastLoadedRouter(const PlacementMap& placement,
                    const profile::ModelRepertoire* repertoire)
      : placement_(placement), backlog_(placement, repertoire) {}

  int Route(const workload::Query& query) override {
    const std::vector<int>& reps = placement_.Replicas(query.model_id);
    const double now = TicksToSec(query.arrival);
    int best = reps[0];
    double best_backlog = backlog_.BacklogSec(best, now);
    for (std::size_t i = 1; i < reps.size(); ++i) {
      const double b = backlog_.BacklogSec(reps[i], now);
      // Strict < : ties break toward the lowest server id (reps ascend).
      if (b < best_backlog) {
        best = reps[i];
        best_backlog = b;
      }
    }
    backlog_.Charge(best, query, now);
    return best;
  }

  void Reset() override { backlog_.Reset(); }
  std::string name() const override { return "least"; }

 private:
  const PlacementMap& placement_;
  BacklogModel backlog_;
};

class PowerOfTwoRouter final : public Router {
 public:
  PowerOfTwoRouter(const PlacementMap& placement,
                   const profile::ModelRepertoire* repertoire,
                   std::uint64_t seed)
      : placement_(placement),
        backlog_(placement, repertoire),
        seed_(seed),
        rng_(seed) {}

  int Route(const workload::Query& query) override {
    const std::vector<int>& reps = placement_.Replicas(query.model_id);
    const double now = TicksToSec(query.arrival);
    int choice;
    if (reps.size() == 1) {
      choice = reps[0];
    } else {
      const auto n = static_cast<std::int64_t>(reps.size());
      // Two distinct candidates from the router's own stream.
      const auto a = static_cast<std::size_t>(rng_.UniformInt(0, n - 1));
      auto b = static_cast<std::size_t>(rng_.UniformInt(0, n - 2));
      if (b >= a) ++b;
      const double backlog_a = backlog_.BacklogSec(reps[a], now);
      const double backlog_b = backlog_.BacklogSec(reps[b], now);
      if (backlog_a < backlog_b) {
        choice = reps[a];
      } else if (backlog_b < backlog_a) {
        choice = reps[b];
      } else {
        choice = std::min(reps[a], reps[b]);  // tie: lowest server id
      }
    }
    backlog_.Charge(choice, query, now);
    return choice;
  }

  void Reset() override {
    backlog_.Reset();
    rng_ = Rng(seed_);
  }

  std::string name() const override { return "po2c"; }

 private:
  const PlacementMap& placement_;
  BacklogModel backlog_;
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace

const char* ToString(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kHash:
      return "hash";
    case RouterPolicy::kLeastLoaded:
      return "least";
    case RouterPolicy::kPowerOfTwo:
      return "po2c";
  }
  return "?";
}

std::optional<RouterPolicy> ParseRouterPolicy(const std::string& name) {
  if (name == "hash") return RouterPolicy::kHash;
  if (name == "least") return RouterPolicy::kLeastLoaded;
  if (name == "po2c") return RouterPolicy::kPowerOfTwo;
  return std::nullopt;
}

std::unique_ptr<Router> MakeRouter(RouterPolicy policy,
                                   const PlacementMap& placement,
                                   const profile::ModelRepertoire* repertoire,
                                   std::uint64_t seed) {
  switch (policy) {
    case RouterPolicy::kHash:
      return std::make_unique<HashRouter>(placement);
    case RouterPolicy::kLeastLoaded:
      return std::make_unique<LeastLoadedRouter>(placement, repertoire);
    case RouterPolicy::kPowerOfTwo:
      return std::make_unique<PowerOfTwoRouter>(placement, repertoire, seed);
  }
  throw std::invalid_argument("MakeRouter: unknown policy");
}

TraceSplit SplitTrace(const workload::QueryTrace& trace, Router& router,
                      const PlacementMap& placement) {
  TraceSplit split;
  const int n = placement.num_servers();
  std::vector<std::vector<workload::Query>> queries(
      static_cast<size_t>(n));
  split.global_ids.assign(static_cast<size_t>(n), {});
  for (const workload::Query& q : trace.queries()) {
    const int server = router.Route(q);
    if (server < 0 || server >= n) {
      throw std::logic_error("SplitTrace: router returned bad server id");
    }
    const ServerPlacement& sp = placement.server(server);
    const auto it = std::lower_bound(sp.model_ids.begin(),
                                     sp.model_ids.end(), q.model_id);
    if (it == sp.model_ids.end() || *it != q.model_id) {
      throw std::logic_error(
          "SplitTrace: router sent a query to a server not hosting its "
          "model");
    }
    auto& bucket = queries[static_cast<size_t>(server)];
    workload::Query local = q;
    local.id = bucket.size();  // dense per-server ids, as the engine needs
    local.model_id = static_cast<int>(it - sp.model_ids.begin());
    bucket.push_back(local);
    split.global_ids[static_cast<size_t>(server)].push_back(q.id);
  }
  split.per_server.reserve(static_cast<size_t>(n));
  for (auto& bucket : queries) {
    split.per_server.emplace_back(std::move(bucket));
  }
  return split;
}

}  // namespace pe::fleet
