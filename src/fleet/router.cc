#include "fleet/router.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/thread_pool.h"

namespace pe::fleet {

namespace {

// Replica lookup shared by every policy: all three previously indexed
// reps[...] without checking, which is UB when a trace carries a model id
// no server hosts.  One guard, one message, named model.
[[noreturn]] void ThrowUnroutable(int model_id) {
  throw std::logic_error("Router: no server hosts model " +
                         std::to_string(model_id) +
                         " (query references an unplaced model)");
}

const std::vector<int>& RoutableReplicas(const PlacementMap& placement,
                                         int model_id) {
  if (model_id < 0 || model_id >= placement.num_models()) {
    ThrowUnroutable(model_id);
  }
  const std::vector<int>& reps = placement.Replicas(model_id);
  if (reps.empty()) ThrowUnroutable(model_id);
  return reps;
}

// Per-model replica cache for the batch loops: pointer + size resolved
// once per model instead of a Replicas() call (bounds check + two
// indirections) per query.
struct ReplicaRef {
  const int* data = nullptr;
  std::uint32_t size = 0;
};

std::vector<ReplicaRef> CacheReplicas(const PlacementMap& placement) {
  std::vector<ReplicaRef> cache(
      static_cast<std::size_t>(placement.num_models()));
  for (int m = 0; m < placement.num_models(); ++m) {
    const std::vector<int>& reps = RoutableReplicas(placement, m);
    cache[static_cast<std::size_t>(m)] = {
        reps.data(), static_cast<std::uint32_t>(reps.size())};
  }
  return cache;
}

// Deterministic virtual backlog shared by the load-aware policies: one
// free-at clock per server, advanced by the profiled service estimate
// scaled down by the server's parallelism.
class BacklogModel {
 public:
  BacklogModel(const PlacementMap& placement,
               const profile::ModelRepertoire* repertoire)
      : repertoire_(repertoire) {
    RefreshTopology(placement);
    Reset();
  }

  // (Re)derives every layout-dependent table from the placement's current
  // state: per-server geometry, the cost classes, and the memo (dropped --
  // its entries bake in the old gpcs/lanes).  Called at construction and
  // by Router::OnPlacementChange after a layout edit; the free-at clocks
  // are preserved across a refresh so the router's load picture survives.
  void RefreshTopology(const PlacementMap& placement) {
    gpcs_.clear();
    lanes_.clear();
    gpcs_.reserve(placement.num_servers());
    lanes_.reserve(placement.num_servers());
    for (const ServerPlacement& sp : placement.servers()) {
      // Layout may be unfilled when the router runs standalone (tests);
      // treat the whole budget as one lane then.
      int max_gpcs = sp.gpc_budget;
      int lanes = 1;
      if (!sp.partition_gpcs.empty()) {
        max_gpcs = *std::max_element(sp.partition_gpcs.begin(),
                                     sp.partition_gpcs.end());
        lanes = static_cast<int>(sp.partition_gpcs.size());
      }
      gpcs_.push_back(max_gpcs);
      lanes_.push_back(lanes);
    }
    // Servers sharing a (largest partition, lane count) pair see identical
    // costs for any (model, batch); the memo below caches per such class,
    // not per server, so a 100-server homogeneous fleet shares one table.
    classes_.clear();
    class_of_.clear();
    class_of_.reserve(gpcs_.size());
    for (std::size_t s = 0; s < gpcs_.size(); ++s) {
      const std::pair<int, int> key{gpcs_[s], lanes_[s]};
      std::size_t id = 0;
      while (id < classes_.size() && classes_[id] != key) ++id;
      if (id == classes_.size()) classes_.push_back(key);
      class_of_.push_back(id);
    }
    memo_.clear();
    free_at_.resize(gpcs_.size(), 0.0);
  }

  void Reset() { free_at_.assign(gpcs_.size(), 0.0); }

  double BacklogSec(int server, double now_sec) const {
    return std::max(0.0, free_at_[static_cast<size_t>(server)] - now_sec);
  }

  void Charge(int server, const workload::Query& query, double now_sec) {
    double& free_at = free_at_[static_cast<size_t>(server)];
    free_at = std::max(free_at, now_sec) + CostSec(server, query);
  }

  // Reference per-query cost: map-backed profile lookup each call.
  double CostSec(int server, const workload::Query& query) const {
    const auto s = static_cast<size_t>(server);
    if (repertoire_ != nullptr && repertoire_->Has(query.model_id)) {
      const int batch = std::min(query.batch, repertoire_->max_batch());
      return repertoire_->EstimateSec(query.model_id, gpcs_[s], batch) /
             static_cast<double>(lanes_[s]);
    }
    // No profile surface: a nominal 1 ms per batch item keeps the policy
    // deterministic and batch-aware, just not model-weighted.
    return 1e-3 * static_cast<double>(query.batch) /
           static_cast<double>(lanes_[s]);
  }

  // Batch-loop charge: identical value to Charge(), but the profiled cost
  // is memoized per (server class, model, clamped batch) -- it stores the
  // already-divided CostSec result, so the arithmetic (and hence the
  // backlog clocks) stay bit-identical to the reference path while the
  // std::map profile lookup happens once per distinct key.
  void ChargeMemo(int server, const workload::Query& query, double now_sec) {
    double& free_at = free_at_[static_cast<size_t>(server)];
    free_at = std::max(free_at, now_sec) + CostSecMemo(server, query);
  }

  double BacklogRaw(int server) const {
    return free_at_[static_cast<size_t>(server)];
  }

 private:
  double CostSecMemo(int server, const workload::Query& query) {
    if (repertoire_ == nullptr || !repertoire_->Has(query.model_id) ||
        query.batch < 0) {
      return CostSec(server, query);
    }
    const int batch = std::min(query.batch, repertoire_->max_batch());
    const auto s = static_cast<size_t>(server);
    const std::size_t cls = class_of_[s];
    if (memo_.empty()) {
      memo_.assign(classes_.size(), {});
    }
    std::vector<double>& table = memo_[cls];
    const auto stride = static_cast<std::size_t>(repertoire_->max_batch()) + 1;
    if (table.empty()) {
      table.assign(static_cast<std::size_t>(repertoire_->size()) * stride,
                   -1.0);
    }
    double& slot = table[static_cast<std::size_t>(query.model_id) * stride +
                         static_cast<std::size_t>(batch)];
    if (slot < 0.0) {
      slot = repertoire_->EstimateSec(query.model_id, gpcs_[s], batch) /
             static_cast<double>(lanes_[s]);
    }
    return slot;
  }

  const profile::ModelRepertoire* repertoire_;
  std::vector<int> gpcs_;   // largest partition per server
  std::vector<int> lanes_;  // worker count per server
  std::vector<double> free_at_;
  std::vector<std::pair<int, int>> classes_;  // distinct (gpcs, lanes)
  std::vector<std::size_t> class_of_;         // server -> class index
  std::vector<std::vector<double>> memo_;     // class -> cost table
};

class HashRouter final : public Router {
 public:
  explicit HashRouter(const PlacementMap& placement)
      : placement_(placement) {}

  int Route(const workload::Query& query) override {
    const std::vector<int>& reps =
        RoutableReplicas(placement_, query.model_id);
    if (reps.size() == 1) return reps[0];
    // Salting with the model id decorrelates the replica choice across
    // models sharing a replica-set size.
    const std::uint64_t h =
        Mix64(query.id ^ Mix64(static_cast<std::uint64_t>(query.model_id)));
    return reps[h % reps.size()];
  }

  std::vector<int> RouteAll(const workload::QueryTrace& trace) override {
    const std::vector<workload::Query>& queries = trace.queries();
    const std::vector<ReplicaRef> reps = CacheReplicas(placement_);
    const std::vector<std::uint64_t> salt = HoistSalts(reps.size());
    std::vector<int> out(queries.size());
    RouteRange(queries, reps, salt, out, 0, queries.size());
    return out;
  }

  std::vector<int> RouteAll(const workload::QueryTrace& trace,
                            int jobs) override {
    const std::vector<workload::Query>& queries = trace.queries();
    if (jobs <= 1 || queries.size() < kParallelGrain) return RouteAll(trace);
    const std::vector<ReplicaRef> reps = CacheReplicas(placement_);
    const std::vector<std::uint64_t> salt = HoistSalts(reps.size());
    std::vector<int> out(queries.size());
    // Chunk boundaries depend only on the query count, and out[i] depends
    // only on query i -- the assignment vector is identical for any jobs
    // (the serial loop included).  Chunks write disjoint ranges of `out`;
    // reps/salt are shared read-only.
    const std::size_t chunks =
        (queries.size() + kParallelGrain - 1) / kParallelGrain;
    ParallelMap(chunks, jobs, [&](std::size_t c) {
      const std::size_t begin = c * kParallelGrain;
      const std::size_t end =
          std::min(begin + kParallelGrain, queries.size());
      RouteRange(queries, reps, salt, out, begin, end);
      return 0;  // ParallelMap needs a result; the chunk writes in place
    });
    return out;
  }

  void Reset() override {}
  std::string name() const override { return "hash"; }

 private:
  // Queries per parallel chunk: coarse enough that pool overhead is noise
  // against the ~ns-per-query hash kernel, fine enough to spread a
  // million-query trace over every core.
  static constexpr std::size_t kParallelGrain = 65536;

  // The per-model salt Mix64(model_id) is query-independent; hoist it.
  static std::vector<std::uint64_t> HoistSalts(std::size_t num_models) {
    std::vector<std::uint64_t> salt(num_models);
    for (std::size_t m = 0; m < num_models; ++m) {
      salt[m] = Mix64(static_cast<std::uint64_t>(m));
    }
    return salt;
  }

  // The sealed hash kernel over queries[begin, end): shared by the serial
  // fast path (one full-range call) and the parallel chunks.
  static void RouteRange(const std::vector<workload::Query>& queries,
                         const std::vector<ReplicaRef>& reps,
                         const std::vector<std::uint64_t>& salt,
                         std::vector<int>& out, std::size_t begin,
                         std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const workload::Query& q = queries[i];
      if (static_cast<std::uint32_t>(q.model_id) >=
          static_cast<std::uint32_t>(reps.size())) {
        ThrowUnroutable(q.model_id);
      }
      const ReplicaRef& r = reps[static_cast<std::size_t>(q.model_id)];
      out[i] = r.size == 1
                   ? r.data[0]
                   : r.data[Mix64(q.id ^
                                  salt[static_cast<std::size_t>(q.model_id)]) %
                            r.size];
    }
  }

  const PlacementMap& placement_;
};

class LeastLoadedRouter final : public Router {
 public:
  LeastLoadedRouter(const PlacementMap& placement,
                    const profile::ModelRepertoire* repertoire)
      : placement_(placement), backlog_(placement, repertoire) {}

  int Route(const workload::Query& query) override {
    const std::vector<int>& reps =
        RoutableReplicas(placement_, query.model_id);
    const double now = TicksToSec(query.arrival);
    int best = reps[0];
    double best_backlog = backlog_.BacklogSec(best, now);
    for (std::size_t i = 1; i < reps.size(); ++i) {
      const double b = backlog_.BacklogSec(reps[i], now);
      // Strict < : ties break toward the lowest server id (reps ascend).
      if (b < best_backlog) {
        best = reps[i];
        best_backlog = b;
      }
    }
    backlog_.Charge(best, query, now);
    return best;
  }

  std::vector<int> RouteAll(const workload::QueryTrace& trace) override {
    const std::vector<workload::Query>& queries = trace.queries();
    const std::vector<ReplicaRef> reps = CacheReplicas(placement_);
    std::vector<int> out(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const workload::Query& q = queries[i];
      if (static_cast<std::uint32_t>(q.model_id) >=
          static_cast<std::uint32_t>(reps.size())) {
        ThrowUnroutable(q.model_id);
      }
      const ReplicaRef& r = reps[static_cast<std::size_t>(q.model_id)];
      const double now = TicksToSec(q.arrival);
      int best = r.data[0];
      double best_backlog = backlog_.BacklogSec(best, now);
      for (std::uint32_t k = 1; k < r.size; ++k) {
        const double b = backlog_.BacklogSec(r.data[k], now);
        if (b < best_backlog) {
          best = r.data[k];
          best_backlog = b;
        }
      }
      backlog_.ChargeMemo(best, q, now);
      out[i] = best;
    }
    return out;
  }

  void Reset() override { backlog_.Reset(); }
  void OnPlacementChange() override { backlog_.RefreshTopology(placement_); }
  std::string name() const override { return "least"; }

 private:
  const PlacementMap& placement_;
  BacklogModel backlog_;
};

class PowerOfTwoRouter final : public Router {
 public:
  PowerOfTwoRouter(const PlacementMap& placement,
                   const profile::ModelRepertoire* repertoire,
                   std::uint64_t seed)
      : placement_(placement),
        backlog_(placement, repertoire),
        seed_(seed),
        rng_(seed) {}

  int Route(const workload::Query& query) override {
    const std::vector<int>& reps =
        RoutableReplicas(placement_, query.model_id);
    const double now = TicksToSec(query.arrival);
    int choice;
    if (reps.size() == 1) {
      choice = reps[0];
    } else {
      const auto n = static_cast<std::int64_t>(reps.size());
      // Two distinct candidates from the router's own stream.
      const auto a = static_cast<std::size_t>(rng_.UniformInt(0, n - 1));
      auto b = static_cast<std::size_t>(rng_.UniformInt(0, n - 2));
      if (b >= a) ++b;
      const double backlog_a = backlog_.BacklogSec(reps[a], now);
      const double backlog_b = backlog_.BacklogSec(reps[b], now);
      if (backlog_a < backlog_b) {
        choice = reps[a];
      } else if (backlog_b < backlog_a) {
        choice = reps[b];
      } else {
        choice = std::min(reps[a], reps[b]);  // tie: lowest server id
      }
    }
    backlog_.Charge(choice, query, now);
    return choice;
  }

  std::vector<int> RouteAll(const workload::QueryTrace& trace) override {
    const std::vector<workload::Query>& queries = trace.queries();
    const std::vector<ReplicaRef> reps = CacheReplicas(placement_);
    std::vector<int> out(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const workload::Query& q = queries[i];
      if (static_cast<std::uint32_t>(q.model_id) >=
          static_cast<std::uint32_t>(reps.size())) {
        ThrowUnroutable(q.model_id);
      }
      const ReplicaRef& r = reps[static_cast<std::size_t>(q.model_id)];
      const double now = TicksToSec(q.arrival);
      int choice;
      if (r.size == 1) {
        choice = r.data[0];
      } else {
        const auto n = static_cast<std::int64_t>(r.size);
        const auto a = static_cast<std::size_t>(rng_.UniformInt(0, n - 1));
        auto b = static_cast<std::size_t>(rng_.UniformInt(0, n - 2));
        if (b >= a) ++b;
        const double backlog_a = backlog_.BacklogSec(r.data[a], now);
        const double backlog_b = backlog_.BacklogSec(r.data[b], now);
        if (backlog_a < backlog_b) {
          choice = r.data[a];
        } else if (backlog_b < backlog_a) {
          choice = r.data[b];
        } else {
          choice = std::min(r.data[a], r.data[b]);
        }
      }
      backlog_.ChargeMemo(choice, q, now);
      out[i] = choice;
    }
    return out;
  }

  void Reset() override {
    backlog_.Reset();
    rng_ = Rng(seed_);
  }

  void OnPlacementChange() override { backlog_.RefreshTopology(placement_); }

  std::string name() const override { return "po2c"; }

 private:
  const PlacementMap& placement_;
  BacklogModel backlog_;
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace

std::vector<int> Router::RouteAll(const workload::QueryTrace& trace) {
  // Reference loop: one virtual dispatch per query.  The built-in
  // policies override this with sealed loops that must match it exactly.
  std::vector<int> out;
  out.reserve(trace.queries().size());
  for (const workload::Query& q : trace.queries()) out.push_back(Route(q));
  return out;
}

std::vector<int> Router::RouteAll(const workload::QueryTrace& trace,
                                  int jobs) {
  // Stateful-policy fallback: per-query routing mutates policy state in
  // arrival order, so threads cannot help; `jobs` is deliberately unused.
  (void)jobs;
  return RouteAll(trace);
}

const char* ToString(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kHash:
      return "hash";
    case RouterPolicy::kLeastLoaded:
      return "least";
    case RouterPolicy::kPowerOfTwo:
      return "po2c";
  }
  return "?";
}

std::optional<RouterPolicy> ParseRouterPolicy(const std::string& name) {
  if (name == "hash") return RouterPolicy::kHash;
  if (name == "least") return RouterPolicy::kLeastLoaded;
  if (name == "po2c") return RouterPolicy::kPowerOfTwo;
  return std::nullopt;
}

std::unique_ptr<Router> MakeRouter(RouterPolicy policy,
                                   const PlacementMap& placement,
                                   const profile::ModelRepertoire* repertoire,
                                   std::uint64_t seed) {
  switch (policy) {
    case RouterPolicy::kHash:
      return std::make_unique<HashRouter>(placement);
    case RouterPolicy::kLeastLoaded:
      return std::make_unique<LeastLoadedRouter>(placement, repertoire);
    case RouterPolicy::kPowerOfTwo:
      return std::make_unique<PowerOfTwoRouter>(placement, repertoire, seed);
  }
  throw std::invalid_argument("MakeRouter: unknown policy");
}

TraceSplit SplitTrace(const workload::QueryTrace& trace, Router& router,
                      const PlacementMap& placement, int jobs) {
  return SplitByAssignment(trace, router.RouteAll(trace, jobs), placement);
}

TraceSplit SplitByAssignment(const workload::QueryTrace& trace,
                             std::span<const int> assignment,
                             const PlacementMap& placement) {
  const std::vector<workload::Query>& queries = trace.queries();
  const int n = placement.num_servers();
  if (assignment.size() != queries.size()) {
    throw std::logic_error("SplitByAssignment: assignment size mismatch");
  }

  TraceSplit split;
  split.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  // Pass 1: exact per-server counts (offsets[s+1] accumulates server s,
  // turned into span boundaries by the prefix sum).  -1 = dropped.
  std::size_t assigned = 0;
  for (const int server : assignment) {
    if (server == -1) continue;
    if (static_cast<std::uint32_t>(server) >=
        static_cast<std::uint32_t>(n)) {
      throw std::logic_error("SplitByAssignment: bad server id");
    }
    ++split.offsets[static_cast<std::size_t>(server) + 1];
    ++assigned;
  }
  for (std::size_t s = 1; s < split.offsets.size(); ++s) {
    split.offsets[s] += split.offsets[s - 1];
  }
  // Pass 2: single fill into the flat arenas; cursor[s] walks server s's
  // span, and the dense local id is the distance from the span start.
  split.arena.resize(assigned);
  split.global_ids.resize(assigned);
  std::vector<std::size_t> cursor(split.offsets.begin(),
                                  split.offsets.end() - 1);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const int server = assignment[i];
    if (server == -1) continue;
    const workload::Query& q = queries[i];
    const int local_model = placement.LocalModel(server, q.model_id);
    if (local_model < 0) {
      throw std::logic_error(
          "SplitByAssignment: query routed to a server not hosting its "
          "model");
    }
    std::size_t& at = cursor[static_cast<std::size_t>(server)];
    workload::Query& local = split.arena[at];
    local = q;
    local.id = at - split.offsets[static_cast<std::size_t>(server)];
    local.model_id = local_model;
    split.global_ids[at] = q.id;
    ++at;
  }
  return split;
}

TraceSplit SplitTraceReference(const workload::QueryTrace& trace,
                               Router& router,
                               const PlacementMap& placement) {
  const int n = placement.num_servers();
  std::vector<std::vector<workload::Query>> queries(static_cast<size_t>(n));
  std::vector<std::vector<std::uint64_t>> global_ids(static_cast<size_t>(n));
  for (const workload::Query& q : trace.queries()) {
    const int server = router.Route(q);
    if (server < 0 || server >= n) {
      throw std::logic_error(
          "SplitTraceReference: router returned bad server id");
    }
    const ServerPlacement& sp = placement.server(server);
    const auto it = std::lower_bound(sp.model_ids.begin(),
                                     sp.model_ids.end(), q.model_id);
    if (it == sp.model_ids.end() || *it != q.model_id) {
      throw std::logic_error(
          "SplitTraceReference: router sent a query to a server not "
          "hosting its model");
    }
    auto& bucket = queries[static_cast<size_t>(server)];
    workload::Query local = q;
    local.id = bucket.size();  // dense per-server ids, as the engine needs
    local.model_id = static_cast<int>(it - sp.model_ids.begin());
    bucket.push_back(local);
    global_ids[static_cast<size_t>(server)].push_back(q.id);
  }
  // Pack the grown buckets into the arena layout SplitTrace emits
  // directly.
  TraceSplit split;
  split.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int s = 0; s < n; ++s) {
    split.offsets[static_cast<std::size_t>(s) + 1] =
        split.offsets[static_cast<std::size_t>(s)] +
        queries[static_cast<std::size_t>(s)].size();
  }
  split.arena.reserve(split.offsets.back());
  split.global_ids.reserve(split.offsets.back());
  for (int s = 0; s < n; ++s) {
    const auto& bucket = queries[static_cast<std::size_t>(s)];
    split.arena.insert(split.arena.end(), bucket.begin(), bucket.end());
    const auto& gids = global_ids[static_cast<std::size_t>(s)];
    split.global_ids.insert(split.global_ids.end(), gids.begin(), gids.end());
  }
  return split;
}

}  // namespace pe::fleet
