// The fleet's front tier: splitting one query stream across N servers.
//
// A Router sees each arrival once, in trace order, and picks a server
// among the replicas hosting the query's model (PlacementMap::Replicas).
// Routing happens *before* any server simulation starts and consumes no
// server RNG stream, so the per-server sub-traces -- and therefore every
// downstream simulation -- are a pure function of (trace, placement,
// policy, router seed).  That is what makes the fleet driver bit-identical
// at any --jobs count: parallelism only changes which thread replays a
// sub-trace, never the sub-trace itself.
//
// Three policies (paper-adjacent serving-tier staples):
//  * hash            -- model-affinity hashing: a stateless hash of the
//                       query id spreads a model's traffic over exactly its
//                       replica set (weights stay warm; no load feedback);
//  * least           -- least-loaded: deterministic virtual backlog per
//                       server (estimated service seconds still queued),
//                       pick the replica with the smallest backlog;
//  * po2c            -- power-of-two-choices: sample two distinct replicas
//                       from the router's own RNG stream, keep the less
//                       loaded one -- the classic O(1) approximation of
//                       least-loaded.
//
// The backlog model is the router's own bookkeeping, not a peek into the
// simulators: per server it tracks a single virtual free-at clock advanced
// by the profiled service estimate divided by the server's worker count.
// Coarse on purpose -- a real front tier routes on stale, aggregate
// signals, not on the scheduler's internal state.
//
// Hot path: RouteAll() routes a whole trace in one sealed per-policy loop
// (no virtual dispatch per query, replica sets resolved once per model,
// profiled backlog charges memoized per (model, server-class, batch)).
// The per-query Route() interface is the retained reference path; both
// must produce the identical assignment sequence and the fleet tests pin
// that identity per policy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fleet/placement.h"
#include "profile/model_repertoire.h"
#include "workload/trace.h"

namespace pe::fleet {

enum class RouterPolicy { kHash, kLeastLoaded, kPowerOfTwo };

const char* ToString(RouterPolicy policy);

// Parses "hash" / "least" / "po2c" (the CLI spellings); nullopt otherwise.
std::optional<RouterPolicy> ParseRouterPolicy(const std::string& name);

class Router {
 public:
  virtual ~Router() = default;

  // Server id for `query`, guaranteed to host query.model_id.  Must be
  // called in arrival order (stateful policies advance their backlog
  // clocks and RNG stream per call).  Throws std::logic_error when no
  // server hosts the query's model (unplaced id or empty replica set).
  virtual int Route(const workload::Query& query) = 0;

  // Batch fast path: the server id for every query of `trace`, in order,
  // identical to calling Route() per query on a fresh router.  Consumes
  // the same policy state as the per-query loop (call Reset() to replay).
  // The base implementation is the per-query reference loop; the built-in
  // policies override it with devirtualized single-policy loops.
  virtual std::vector<int> RouteAll(const workload::QueryTrace& trace);

  // Parallel batch path: same assignment vector, computed with up to
  // `jobs` threads when the policy is stateless (each query routed
  // independently of every other).  `hash` chunks the trace across a
  // thread pool -- out[i] depends only on query i, so the result is
  // bit-identical at any jobs count by construction.  Stateful policies
  // (`least`, `po2c` advance backlog clocks / an RNG stream per query)
  // ignore `jobs` and run the serial fast path; this base implementation
  // is that fallback.
  virtual std::vector<int> RouteAll(const workload::QueryTrace& trace,
                                    int jobs);

  // Restores the construction-time state (backlog clocks, RNG stream), so
  // the same query sequence re-routes identically.
  virtual void Reset() = 0;

  // The borrowed PlacementMap mutated underneath the router (a failover
  // repartition resized a server's layout, or a health change edited a
  // replica set).  Replica tables are re-read from the placement on every
  // Route/RouteAll call, but the load-aware policies also snapshot each
  // server's *layout geometry* (largest partition, worker-lane count) and
  // derived cost tables at construction; this hook rebuilds those from
  // the current placement -- virtual backlog clocks are preserved, so the
  // router's load picture survives the change.  Stateless policies no-op.
  // Forgetting to call this after a placement edit serves stale cost
  // tables (pinned by fleet_router_test's regression case).
  virtual void OnPlacementChange() {}

  virtual std::string name() const = 0;
};

// Builds a policy instance over `placement` (borrowed; must outlive the
// router).  `repertoire` (borrowed, may be null) supplies the profiled
// service estimates for the backlog model; without it the backlog charge
// falls back to a nominal per-batch-item cost, which preserves determinism
// but not model-specific weighting.  `seed` feeds po2c's candidate draws;
// hash and least-loaded are RNG-free.
std::unique_ptr<Router> MakeRouter(RouterPolicy policy,
                                   const PlacementMap& placement,
                                   const profile::ModelRepertoire* repertoire,
                                   std::uint64_t seed);

// A trace split into per-server sub-streams, ready for InferenceServer.
// One flat server-major arena instead of N separately grown vectors: the
// queries of server s live in arena[offsets[s], offsets[s+1]) as an
// offset-indexed span.  Per server, query ids are re-numbered densely
// from 0 (the engine requires dense ids) and model ids are re-mapped to
// the server's local repertoire (the index of the global id within its
// sorted hosted list).
struct TraceSplit {
  // Every query of the input trace, grouped by destination server in
  // arrival order within each group.
  std::vector<workload::Query> arena;
  // Local query id -> the fleet-level Query::id it came from; same
  // server-major layout as `arena`.
  std::vector<std::uint64_t> global_ids;
  // Per-server span boundaries into the arenas; size num_servers + 1.
  std::vector<std::size_t> offsets;

  int num_servers() const {
    return static_cast<int>(offsets.empty() ? 0 : offsets.size() - 1);
  }
  std::span<const workload::Query> Server(int s) const {
    const auto i = static_cast<std::size_t>(s);
    return {arena.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
  std::span<const std::uint64_t> GlobalIds(int s) const {
    const auto i = static_cast<std::size_t>(s);
    return {global_ids.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
};

// Routes every query of `trace` through `router` and builds the
// per-server sub-traces with a two-pass count-then-fill over one flat
// arena: RouteAll() yields the assignment vector, a counting pass sizes
// every span exactly, and the fill pass writes each query once -- no
// per-server vector growth, no lower_bound remap per query (the
// placement's precomputed LocalModel tables serve the remap).  `jobs`
// feeds the router's parallel batch path (stateless policies only; see
// Router::RouteAll).  Throws std::logic_error if a query references a
// model no server hosts, or if the router returns a server id out of
// range / not hosting the model.
TraceSplit SplitTrace(const workload::QueryTrace& trace, Router& router,
                      const PlacementMap& placement, int jobs = 1);

// The count-then-fill core of SplitTrace over an explicit assignment
// vector (assignment[i] = destination server of trace query i).  An
// assignment of -1 drops the query from every sub-trace -- the failover
// driver pre-sheds queries whose model has no healthy replica at
// arrival and routes the rest around the outage, then splits here.
// Throws std::logic_error on a server id other than -1 outside
// [0, num_servers) or a destination not hosting the query's model.
TraceSplit SplitByAssignment(const workload::QueryTrace& trace,
                             std::span<const int> assignment,
                             const PlacementMap& placement);

// Retained reference implementation: per-query Route() calls into growing
// per-server buckets with a lower_bound model remap, packed into the same
// TraceSplit layout at the end.  SplitTrace must match it record for
// record (pinned by fleet_stats_test for every policy); it is also the
// denominator of the fleet-scaling bench's split speedup.
TraceSplit SplitTraceReference(const workload::QueryTrace& trace,
                               Router& router, const PlacementMap& placement);

}  // namespace pe::fleet
