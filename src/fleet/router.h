// The fleet's front tier: splitting one query stream across N servers.
//
// A Router sees each arrival once, in trace order, and picks a server
// among the replicas hosting the query's model (PlacementMap::Replicas).
// Routing happens *before* any server simulation starts and consumes no
// server RNG stream, so the per-server sub-traces -- and therefore every
// downstream simulation -- are a pure function of (trace, placement,
// policy, router seed).  That is what makes the fleet driver bit-identical
// at any --jobs count: parallelism only changes which thread replays a
// sub-trace, never the sub-trace itself.
//
// Three policies (paper-adjacent serving-tier staples):
//  * hash            -- model-affinity hashing: a stateless hash of the
//                       query id spreads a model's traffic over exactly its
//                       replica set (weights stay warm; no load feedback);
//  * least           -- least-loaded: deterministic virtual backlog per
//                       server (estimated service seconds still queued),
//                       pick the replica with the smallest backlog;
//  * po2c            -- power-of-two-choices: sample two distinct replicas
//                       from the router's own RNG stream, keep the less
//                       loaded one -- the classic O(1) approximation of
//                       least-loaded.
//
// The backlog model is the router's own bookkeeping, not a peek into the
// simulators: per server it tracks a single virtual free-at clock advanced
// by the profiled service estimate divided by the server's worker count.
// Coarse on purpose -- a real front tier routes on stale, aggregate
// signals, not on the scheduler's internal state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/placement.h"
#include "profile/model_repertoire.h"
#include "workload/trace.h"

namespace pe::fleet {

enum class RouterPolicy { kHash, kLeastLoaded, kPowerOfTwo };

const char* ToString(RouterPolicy policy);

// Parses "hash" / "least" / "po2c" (the CLI spellings); nullopt otherwise.
std::optional<RouterPolicy> ParseRouterPolicy(const std::string& name);

class Router {
 public:
  virtual ~Router() = default;

  // Server id for `query`, guaranteed to host query.model_id.  Must be
  // called in arrival order (stateful policies advance their backlog
  // clocks and RNG stream per call).
  virtual int Route(const workload::Query& query) = 0;

  // Restores the construction-time state (backlog clocks, RNG stream), so
  // the same query sequence re-routes identically.
  virtual void Reset() = 0;

  virtual std::string name() const = 0;
};

// Builds a policy instance over `placement` (borrowed; must outlive the
// router).  `repertoire` (borrowed, may be null) supplies the profiled
// service estimates for the backlog model; without it the backlog charge
// falls back to a nominal per-batch-item cost, which preserves determinism
// but not model-specific weighting.  `seed` feeds po2c's candidate draws;
// hash and least-loaded are RNG-free.
std::unique_ptr<Router> MakeRouter(RouterPolicy policy,
                                   const PlacementMap& placement,
                                   const profile::ModelRepertoire* repertoire,
                                   std::uint64_t seed);

// A trace split into per-server sub-streams, ready for InferenceServer:
// per server, query ids are re-numbered densely from 0 (the engine
// requires dense ids) and model ids are re-mapped to the server's local
// repertoire (the index of the global id within its sorted hosted list).
struct TraceSplit {
  std::vector<workload::QueryTrace> per_server;
  // Per server, local query id -> the fleet-level Query::id it came from.
  std::vector<std::vector<std::uint64_t>> global_ids;
};

// Routes every query of `trace` (in order) through `router` and builds the
// per-server sub-traces.  Throws std::out_of_range if a query references a
// model the placement does not place, and std::logic_error if the router
// returns a server that does not host the query's model.
TraceSplit SplitTrace(const workload::QueryTrace& trace, Router& router,
                      const PlacementMap& placement);

}  // namespace pe::fleet
