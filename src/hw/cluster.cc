#include "hw/cluster.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>
#include <sstream>

namespace pe::hw {

std::vector<int> ClusterLayout::AllInstanceSizes() const {
  std::vector<int> all;
  for (const auto& gpu : per_gpu) {
    all.insert(all.end(), gpu.begin(), gpu.end());
  }
  std::sort(all.begin(), all.end(), std::greater<int>());
  return all;
}

int ClusterLayout::TotalUsedGpcs() const {
  int total = 0;
  for (const auto& gpu : per_gpu) {
    total += std::accumulate(gpu.begin(), gpu.end(), 0);
  }
  return total;
}

std::string ClusterLayout::ToString() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < per_gpu.size(); ++i) {
    if (i > 0) oss << ' ';
    oss << "GPU" << i << "{";
    for (std::size_t j = 0; j < per_gpu[i].size(); ++j) {
      if (j > 0) oss << ',';
      oss << per_gpu[i][j];
    }
    oss << '}';
  }
  return oss.str();
}

Cluster::Cluster(int num_gpus, GpuSpec spec)
    : num_gpus_(num_gpus), spec_(std::move(spec)) {
  assert(num_gpus_ > 0);
}

std::optional<ClusterLayout> Cluster::Pack(
    const std::vector<int>& sizes) const {
  for (int s : sizes) {
    if (!GpuSpec::IsValidPartitionSize(s)) return std::nullopt;
  }
  const int total =
      std::accumulate(sizes.begin(), sizes.end(), 0);
  if (total > total_gpcs()) return std::nullopt;

  std::vector<int> sorted = sizes;
  std::sort(sorted.begin(), sorted.end(), std::greater<int>());

  // Backtracking first-fit: assign each instance (largest first) to the
  // first GPU whose current multiset remains placeable.  To prune symmetric
  // branches, an instance never starts a new GPU beyond the first empty one.
  std::vector<std::vector<int>> gpus(static_cast<std::size_t>(num_gpus_));
  std::vector<int> used(static_cast<std::size_t>(num_gpus_), 0);

  std::function<bool(std::size_t)> assign = [&](std::size_t idx) -> bool {
    if (idx == sorted.size()) return true;
    const int g = sorted[idx];
    bool tried_empty = false;
    for (std::size_t gi = 0; gi < gpus.size(); ++gi) {
      if (used[gi] + g > spec_.gpcs) continue;
      const bool is_empty = gpus[gi].empty();
      if (is_empty) {
        if (tried_empty) continue;  // symmetric to a previous empty GPU
        tried_empty = true;
      }
      gpus[gi].push_back(g);
      if (MigLayout::CanPlaceAll(gpus[gi], spec_)) {
        used[gi] += g;
        if (assign(idx + 1)) return true;
        used[gi] -= g;
      }
      gpus[gi].pop_back();
    }
    return false;
  };

  if (!assign(0)) return std::nullopt;

  ClusterLayout layout;
  layout.spec = spec_;
  layout.per_gpu = std::move(gpus);
  for (auto& gpu : layout.per_gpu) {
    std::sort(gpu.begin(), gpu.end(), std::greater<int>());
  }
  return layout;
}

bool Cluster::CanPack(const std::vector<int>& sizes) const {
  return Pack(sizes).has_value();
}

std::optional<ClusterLayout> PackWithRepair(const Cluster& cluster,
                                            std::vector<int> sizes) {
  // Split table preserving total GPC count.
  auto split = [](int g) -> std::vector<int> {
    switch (g) {
      case 7: return {4, 3};
      case 4: return {3, 1};
      case 3: return {2, 1};
      case 2: return {1, 1};
      default: return {};
    }
  };
  for (;;) {
    auto packed = cluster.Pack(sizes);
    if (packed) return packed;
    // Find the largest splittable partition.
    auto it = std::max_element(sizes.begin(), sizes.end());
    if (it == sizes.end() || *it <= 1) return std::nullopt;
    const auto parts = split(*it);
    // A size with no split rule (an invalid MIG profile) cannot be
    // repaired; erasing it would silently shrink the demand instead.
    if (parts.empty()) return std::nullopt;
    sizes.erase(it);
    sizes.insert(sizes.end(), parts.begin(), parts.end());
  }
}

}  // namespace pe::hw
