// Multi-GPU cluster packing.
//
// The paper's server is an EC2 p4d.24xlarge: eight A100s, 56 GPCs total.
// PARIS (and the Random baseline) produce a *multiset* of partition sizes;
// this module decides whether that multiset can be realised across the
// physical GPUs under MIG placement rules, and produces the concrete
// per-GPU layouts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/gpu_spec.h"
#include "hw/mig.h"

namespace pe::hw {

// A concrete assignment of instances to GPUs.
struct ClusterLayout {
  GpuSpec spec;
  // One entry per GPU: the multiset of instance sizes on it (descending).
  std::vector<std::vector<int>> per_gpu;

  // All instance sizes across the cluster, descending.
  std::vector<int> AllInstanceSizes() const;
  int TotalUsedGpcs() const;
  std::string ToString() const;
};

class Cluster {
 public:
  Cluster(int num_gpus, GpuSpec spec = GpuSpec{});

  int num_gpus() const { return num_gpus_; }
  const GpuSpec& spec() const { return spec_; }
  int total_gpcs() const { return num_gpus_ * spec_.gpcs; }

  // Attempts to pack the multiset of partition sizes into the cluster.
  // Returns the concrete layout, or nullopt if infeasible.  Deterministic:
  // first-fit-decreasing with backtracking across GPUs.
  std::optional<ClusterLayout> Pack(const std::vector<int>& sizes) const;

  // True if the multiset fits.
  bool CanPack(const std::vector<int>& sizes) const;

 private:
  int num_gpus_;
  GpuSpec spec_;
};

// Attempts to repair an unpackable multiset by repeatedly splitting its
// largest partition (7 -> 4+3, 4 -> 3+1, 3 -> 2+1, 2 -> 1+1) until it packs
// or only 1-GPC partitions remain.  Total GPCs are preserved.  Returns the
// packed layout, or nullopt if even all-1s cannot fit (i.e. total GPCs
// exceed cluster capacity).
std::optional<ClusterLayout> PackWithRepair(const Cluster& cluster,
                                            std::vector<int> sizes);

}  // namespace pe::hw
