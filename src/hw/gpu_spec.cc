#include "hw/gpu_spec.h"

#include <algorithm>
#include <cassert>

namespace pe::hw {

PartitionResources GpuSpec::Partition(int partition_gpcs) const {
  assert(IsValidPartitionSize(partition_gpcs));
  PartitionResources r;
  r.gpcs = partition_gpcs;
  r.sms = partition_gpcs * sms_per_gpc;
  r.peak_flops = static_cast<double>(r.sms) * peak_flops_per_sm;
  const double mem_frac = static_cast<double>(MemorySlicesFor(partition_gpcs)) /
                          static_cast<double>(memory_slices);
  r.dram_bw = dram_bw * mem_frac;
  r.l2_bytes = l2_bytes * mem_frac;
  return r;
}

int GpuSpec::MemorySlicesFor(int partition_gpcs) const {
  // Mirrors A100 MIG profiles: 1g.5gb, 2g.10gb, 3g.20gb, 4g.20gb, 7g.40gb.
  switch (partition_gpcs) {
    case 1: return 1;
    case 2: return 2;
    case 3: return 4;
    case 4: return 4;
    case 7: return 8;
    default:
      assert(false && "invalid MIG partition size");
      return 0;
  }
}

const std::vector<int>& GpuSpec::ValidPartitionSizes() {
  static const std::vector<int> kSizes = {1, 2, 3, 4, 7};
  return kSizes;
}

bool GpuSpec::IsValidPartitionSize(int gpcs) {
  const auto& sizes = ValidPartitionSizes();
  return std::find(sizes.begin(), sizes.end(), gpcs) != sizes.end();
}

}  // namespace pe::hw
