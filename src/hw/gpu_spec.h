// Reconfigurable GPU hardware description (Section II-C of the paper).
//
// The paper uses NVIDIA A100: seven GPCs of compute, eight L2/DRAM memory
// slices, reconfigurable via MIG into partitions of {1, 2, 3, 4, 7} GPCs.
// This module captures the *resources* a partition of a given size owns;
// the performance model in perf/ turns those resources into latency and
// utilization figures.
#pragma once

#include <string>
#include <vector>

namespace pe::hw {

// Resources owned by one GPU partition (a "GPU instance" in MIG terms).
struct PartitionResources {
  int gpcs = 0;              // compute slices
  int sms = 0;               // streaming multiprocessors
  double peak_flops = 0.0;   // aggregate peak FLOP/s across the SMs
  double dram_bw = 0.0;      // DRAM bandwidth, bytes/s
  double l2_bytes = 0.0;     // L2 capacity, bytes
};

// Whole-GPU specification.  Defaults model an NVIDIA A100-SXM4-40GB.
struct GpuSpec {
  std::string name = "A100";
  int gpcs = 7;                      // compute slices per GPU
  int memory_slices = 8;             // L2/DRAM slices per GPU
  int sms_per_gpc = 14;              // 98 usable SMs across 7 GPCs
  // TF32 tensor-core peak per SM (~141 TFLOP/s across 98 SMs).  The paper's
  // stack (PyTorch 1.7 + cuDNN 8) runs FP32 models via TF32 on Ampere.
  double peak_flops_per_sm = 1.44e12;
  double dram_bw = 1555e9;           // bytes/s (HBM2, full GPU)
  double l2_bytes = 40e6;            // 40 MB L2 (full GPU)

  // Returns the resources of a partition with `gpcs` compute slices.
  // Memory slices follow the real MIG profile table:
  //   1 GPC -> 1/8, 2 -> 2/8, 3 -> 4/8, 4 -> 4/8, 7 -> 8/8.
  // (3g and 4g profiles both receive half the memory on A100.)
  PartitionResources Partition(int gpcs) const;

  // Memory slices granted to a partition of the given compute size.
  int MemorySlicesFor(int gpcs) const;

  // Partition sizes MIG supports, ascending: {1, 2, 3, 4, 7}.
  static const std::vector<int>& ValidPartitionSizes();

  // True if `gpcs` is a valid MIG partition size.
  static bool IsValidPartitionSize(int gpcs);
};

}  // namespace pe::hw
