#include "hw/mig.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>
#include <sstream>

namespace pe::hw {

const std::vector<int>& LegalStartSlots(int gpcs) {
  static const std::vector<int> kOne = {0, 1, 2, 3, 4, 5, 6};
  static const std::vector<int> kTwo = {0, 2, 4};
  static const std::vector<int> kThree = {0, 4};
  static const std::vector<int> kFour = {0};
  static const std::vector<int> kSeven = {0};
  static const std::vector<int> kNone = {};
  switch (gpcs) {
    case 1: return kOne;
    case 2: return kTwo;
    case 3: return kThree;
    case 4: return kFour;
    case 7: return kSeven;
    default: return kNone;
  }
}

MigLayout::MigLayout(const GpuSpec& spec)
    : spec_(spec), occupied_(static_cast<std::size_t>(spec.gpcs), false) {}

bool MigLayout::SlotRangeFree(int start, int len) const {
  if (start + len > spec_.gpcs) return false;
  for (int i = start; i < start + len; ++i) {
    if (occupied_[static_cast<std::size_t>(i)]) return false;
  }
  return true;
}

void MigLayout::MarkRange(int start, int len, bool value) {
  for (int i = start; i < start + len; ++i) {
    occupied_[static_cast<std::size_t>(i)] = value;
  }
}

std::optional<Placement> MigLayout::TryPlace(int gpcs) {
  for (int slot : LegalStartSlots(gpcs)) {
    if (SlotRangeFree(slot, gpcs)) {
      MarkRange(slot, gpcs, true);
      Placement p{gpcs, slot};
      placements_.push_back(p);
      return p;
    }
  }
  return std::nullopt;
}

bool MigLayout::Remove(const Placement& p) {
  auto it = std::find(placements_.begin(), placements_.end(), p);
  if (it == placements_.end()) return false;
  MarkRange(p.start_slot, p.gpcs, false);
  placements_.erase(it);
  return true;
}

int MigLayout::used_gpcs() const {
  int used = 0;
  for (const auto& p : placements_) used += p.gpcs;
  return used;
}

std::vector<int> MigLayout::InstanceSizes() const {
  std::vector<int> sizes;
  sizes.reserve(placements_.size());
  for (const auto& p : placements_) sizes.push_back(p.gpcs);
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

std::string MigLayout::ToString() const {
  std::ostringstream oss;
  oss << '[';
  auto sorted = placements_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Placement& a, const Placement& b) {
              return a.start_slot < b.start_slot;
            });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) oss << ' ';
    oss << sorted[i].gpcs << '@' << sorted[i].start_slot;
  }
  oss << ']';
  return oss.str();
}

bool MigLayout::CanPlaceAll(const std::vector<int>& sizes,
                            const GpuSpec& spec) {
  // Backtracking over placement order: try to place each remaining size at
  // each of its legal slots.  The search space is tiny (<= 7 instances).
  std::vector<int> remaining = sizes;
  std::sort(remaining.begin(), remaining.end(), std::greater<int>());
  std::vector<bool> occupied(static_cast<std::size_t>(spec.gpcs), false);

  std::function<bool(std::size_t)> place = [&](std::size_t idx) -> bool {
    if (idx == remaining.size()) return true;
    const int g = remaining[idx];
    if (!GpuSpec::IsValidPartitionSize(g)) return false;
    for (int slot : LegalStartSlots(g)) {
      bool free = slot + g <= spec.gpcs;
      for (int i = slot; free && i < slot + g; ++i) {
        free = !occupied[static_cast<std::size_t>(i)];
      }
      if (!free) continue;
      for (int i = slot; i < slot + g; ++i) {
        occupied[static_cast<std::size_t>(i)] = true;
      }
      if (place(idx + 1)) return true;
      for (int i = slot; i < slot + g; ++i) {
        occupied[static_cast<std::size_t>(i)] = false;
      }
    }
    return false;
  };
  return place(0);
}

std::vector<std::vector<int>> MigLayout::EnumerateFeasibleMultisets(
    const GpuSpec& spec) {
  // Enumerate all multisets of valid sizes with total <= spec.gpcs, then
  // filter by placement feasibility.  Sizes sorted descending for stable
  // output.
  std::set<std::vector<int>> result;
  const auto& sizes = GpuSpec::ValidPartitionSizes();
  std::vector<int> current;
  std::function<void(std::size_t, int)> rec = [&](std::size_t idx,
                                                  int budget) {
    if (CanPlaceAll(current, spec)) {
      auto sorted = current;
      std::sort(sorted.begin(), sorted.end(), std::greater<int>());
      result.insert(sorted);
    }
    if (idx == sizes.size()) return;
    rec(idx + 1, budget);  // skip this size
    // Iterate over ascending sizes; take one more of sizes[idx] if it fits.
    if (sizes[idx] <= budget) {
      current.push_back(sizes[idx]);
      rec(idx, budget - sizes[idx]);
      current.pop_back();
    }
  };
  rec(0, spec.gpcs);
  return {result.begin(), result.end()};
}

}  // namespace pe::hw
