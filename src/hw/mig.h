// MIG placement rules for a single GPU.
//
// A100 exposes seven compute slices (GPCs).  A MIG GPU instance occupies a
// *contiguous* run of slices and may only start at profile-specific offsets
// (NVIDIA's "placement" table).  This module validates per-GPU layouts and
// enumerates the feasible ones; the cluster packer (cluster.h) builds on it.
//
// Placement table modeled (start slots per profile size, A100):
//   1 GPC : slots {0,1,2,3,4,5,6}
//   2 GPCs: slots {0,2,4}
//   3 GPCs: slots {0,4}
//   4 GPCs: slots {0}
//   7 GPCs: slots {0}
// Examples of valid layouts: [7], [4,3], [3,2,1,1], [2,2,2,1], [1x7].
// Example of an *invalid* multiset: {4,4} (second 4g has no legal slot).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hw/gpu_spec.h"

namespace pe::hw {

// One placed GPU instance within a GPU: profile size + start slot.
struct Placement {
  int gpcs = 0;
  int start_slot = 0;

  bool operator==(const Placement&) const = default;
};

// Returns the legal start slots for a profile of `gpcs` compute slices.
const std::vector<int>& LegalStartSlots(int gpcs);

// A single GPU's MIG layout: a set of non-overlapping placements.
class MigLayout {
 public:
  explicit MigLayout(const GpuSpec& spec = GpuSpec{});

  // Attempts to place an instance of `gpcs` slices at the lowest legal free
  // slot.  Returns the placement on success, nullopt if it cannot fit.
  std::optional<Placement> TryPlace(int gpcs);

  // Removes a previously placed instance; returns false if not present.
  bool Remove(const Placement& p);

  const std::vector<Placement>& placements() const { return placements_; }

  // Total compute slices in use / free.
  int used_gpcs() const;
  int free_gpcs() const { return spec_.gpcs - used_gpcs(); }

  // Instance sizes, ascending.
  std::vector<int> InstanceSizes() const;

  // Human-readable form, e.g. "[4@0 3@4]".
  std::string ToString() const;

  // True if the multiset of sizes can be placed on one empty GPU.
  static bool CanPlaceAll(const std::vector<int>& sizes,
                          const GpuSpec& spec = GpuSpec{});

  // Enumerates all distinct feasible size-multisets for one GPU (including
  // the empty layout), each sorted descending.  Used by the random
  // partitioner and by tests.
  static std::vector<std::vector<int>> EnumerateFeasibleMultisets(
      const GpuSpec& spec = GpuSpec{});

 private:
  GpuSpec spec_;
  std::vector<bool> occupied_;  // per compute slice
  std::vector<Placement> placements_;

  bool SlotRangeFree(int start, int len) const;
  void MarkRange(int start, int len, bool value);
};

}  // namespace pe::hw
