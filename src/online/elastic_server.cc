#include "online/elastic_server.h"

#include <algorithm>
#include <cassert>

#include "online/traffic_estimator.h"
#include "sim/metrics.h"

namespace pe::online {

ElasticServerSim::ElasticServerSim(RepartitionController& controller,
                                   const profile::ProfileTable& profile,
                                   SchedulerFactory scheduler_factory,
                                   sim::LatencyFn actual_latency,
                                   SimTime sla_target,
                                   std::size_t queries_per_epoch)
    : controller_(controller),
      profile_(profile),
      scheduler_factory_(std::move(scheduler_factory)),
      actual_latency_(std::move(actual_latency)),
      sla_target_(sla_target),
      queries_per_epoch_(queries_per_epoch) {
  assert(queries_per_epoch_ > 0);
}

ElasticResult ElasticServerSim::Run(const workload::QueryTrace& trace) {
  ElasticResult result;
  std::vector<sim::QueryRecord> all_records;
  all_records.reserve(trace.size());

  TrafficEstimator estimator(profile_.max_batch());
  // Extra delay accumulated by reconfigurations: arrivals shift later.
  SimTime reconfig_shift = 0;

  const auto& queries = trace.queries();
  for (std::size_t begin = 0; begin < queries.size();
       begin += queries_per_epoch_) {
    const std::size_t end =
        std::min(begin + queries_per_epoch_, queries.size());

    bool reconfigured = false;
    if (begin > 0) {
      if (controller_.MaybeRepartition(estimator)) {
        reconfigured = true;
        reconfig_shift += controller_.config().reconfig_downtime;
        ++result.reconfigurations;
      }
    }

    // Epoch-local trace: arrivals re-based to the epoch start, dense ids.
    // Queries that arrived during a reconfiguration window pile up at 0.
    const SimTime epoch_origin = queries[begin].arrival + reconfig_shift;
    std::vector<workload::Query> epoch_queries;
    epoch_queries.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      workload::Query q = queries[i];
      q.id = i - begin;
      q.arrival = std::max<SimTime>(0, q.arrival + reconfig_shift -
                                           epoch_origin);
      epoch_queries.push_back(q);
    }
    workload::QueryTrace epoch_trace(std::move(epoch_queries));

    sim::ServerConfig sc;
    sc.partition_gpcs = controller_.current_plan().instance_gpcs;
    sc.sla_target = sla_target_;
    sc.seed = 0xE1A5 + begin;
    auto scheduler = scheduler_factory_();
    sim::InferenceServer server(sc, profile_, *scheduler, actual_latency_);
    auto epoch_result = server.Run(epoch_trace);

    // Feed the estimator with what was served this epoch.
    for (const auto& q : epoch_trace.queries()) estimator.Observe(q.batch);

    // Re-base records to global time and collect.
    EpochStats es;
    es.queries = epoch_result.records.size();
    es.reconfigured = reconfigured;
    es.layout = controller_.current_plan().instance_gpcs;
    const auto stats = sim::ComputeStats(epoch_result.records, sla_target_,
                                         /*warmup_fraction=*/0.0);
    es.p95_ms = stats.p95_latency_ms;
    es.violation_rate = stats.sla_violation_rate;
    result.epochs.push_back(std::move(es));

    for (auto& r : epoch_result.records) {
      r.id += begin;
      r.arrival += epoch_origin;
      r.dispatched += epoch_origin;
      r.started += epoch_origin;
      r.finished += epoch_origin;
      all_records.push_back(r);
    }
  }

  result.total = sim::ComputeStats(all_records, sla_target_,
                                   /*warmup_fraction=*/0.0);
  return result;
}

}  // namespace pe::online
