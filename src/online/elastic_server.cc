#include "online/elastic_server.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "online/traffic_estimator.h"
#include "sim/metrics.h"

namespace pe::online {

ElasticServerSim::ElasticServerSim(RepartitionPolicy& controller,
                                   const profile::ProfileTable& profile,
                                   SchedulerFactory scheduler_factory,
                                   sim::LatencyFn actual_latency,
                                   SimTime sla_target,
                                   std::size_t queries_per_epoch,
                                   std::uint64_t seed)
    : controller_(controller),
      profile_(&profile),
      scheduler_factory_(std::move(scheduler_factory)),
      actual_latency_(std::move(actual_latency)),
      sla_target_(sla_target),
      queries_per_epoch_(queries_per_epoch),
      seed_(seed) {
  assert(queries_per_epoch_ > 0);
}

ElasticServerSim::ElasticServerSim(RepartitionPolicy& controller,
                                   const profile::ModelRepertoire& repertoire,
                                   SchedulerFactory scheduler_factory,
                                   SimTime sla_target,
                                   std::size_t queries_per_epoch,
                                   std::uint64_t seed,
                                   SimTime model_swap_cost)
    : controller_(controller),
      repertoire_(&repertoire),
      scheduler_factory_(std::move(scheduler_factory)),
      sla_target_(sla_target),
      queries_per_epoch_(queries_per_epoch),
      seed_(seed),
      model_swap_cost_(model_swap_cost) {
  assert(queries_per_epoch_ > 0);
  assert(model_swap_cost_ >= 0);
}

ElasticResult ElasticServerSim::Run(const workload::QueryTrace& trace) {
  ElasticResult result;
  if (trace.empty()) return result;

  // One continuous server run on the initial layout; reconfigurations are
  // injected live at epoch boundaries (no per-epoch incarnations, no
  // arrival re-basing, one RNG stream end to end).
  sim::ServerConfig sc;
  sc.partition_gpcs = controller_.current_plan().instance_gpcs;
  sc.sla_target = sla_target_;
  sc.seed = seed_;
  sc.model_swap_cost = model_swap_cost_;
  sc.reference_engine = reference_engine_;
  auto scheduler = scheduler_factory_();
  std::optional<sim::InferenceServer> server;
  if (repertoire_ != nullptr) {
    server.emplace(sc, *repertoire_, *scheduler);
  } else {
    server.emplace(sc, *profile_, *scheduler, actual_latency_);
  }
  server->InjectTrace(trace);

  const auto& queries = trace.queries();
  const std::size_t num_epochs =
      (queries.size() + queries_per_epoch_ - 1) / queries_per_epoch_;
  std::vector<bool> reconfigured(num_epochs, false);
  std::vector<std::vector<int>> layouts(num_epochs);
  layouts[0] = controller_.current_plan().instance_gpcs;

  TrafficEstimator estimator(repertoire_ != nullptr ? repertoire_->max_batch()
                                                    : profile_->max_batch());
  for (std::size_t epoch = 1; epoch < num_epochs; ++epoch) {
    const std::size_t begin = epoch * queries_per_epoch_;
    // Simulate up to the instant the new epoch's first query arrives; the
    // controller decides before that query is dispatched.
    server->AdvanceTo(queries[begin].arrival);
    for (std::size_t i = begin - queries_per_epoch_; i < begin; ++i) {
      estimator.Observe(queries[i].model_id, queries[i].batch);
    }
    if (const auto plan = controller_.MaybeRepartition(estimator)) {
      server->BeginReconfigure(plan->instance_gpcs,
                               controller_.config().reconfig_downtime);
      reconfigured[epoch] = true;
      ++result.reconfigurations;
    }
    layouts[epoch] = controller_.current_plan().instance_gpcs;
  }

  const auto sim_result = server->Finish();

  // Per-epoch stats sliced out of the continuous record stream by query
  // id (ids are dense and epoch membership is an id range).
  for (std::size_t epoch = 0; epoch < num_epochs; ++epoch) {
    const std::size_t begin = epoch * queries_per_epoch_;
    const std::size_t end =
        std::min(begin + queries_per_epoch_, sim_result.records.size());
    const std::vector<sim::QueryRecord> slice(
        sim_result.records.begin() + static_cast<std::ptrdiff_t>(begin),
        sim_result.records.begin() + static_cast<std::ptrdiff_t>(end));
    const auto stats =
        sim::ComputeStats(slice, sla_target_, /*warmup_fraction=*/0.0);
    EpochStats es;
    es.queries = slice.size();
    es.p95_ms = stats.p95_latency_ms;
    es.violation_rate = stats.sla_violation_rate;
    es.stalled = stats.reconfig_stalled;
    es.reconfigured = reconfigured[epoch];
    es.layout = layouts[epoch];
    result.epochs.push_back(std::move(es));
  }

  result.total = sim::ComputeStats(sim_result.records, sla_target_,
                                   /*warmup_fraction=*/0.0);
  return result;
}

}  // namespace pe::online
