// Elastic serving simulation (extension).
//
// Replays a (possibly drifting) query trace in epochs.  Within an epoch
// the server runs a fixed PARIS layout; at each epoch boundary the
// RepartitionController inspects the TrafficEstimator and may order a
// reconfiguration, which is charged as downtime: queries arriving during
// the reconfiguration window wait until the new layout is up.
//
// Approximation (documented): in-flight work always drains at the epoch
// boundary before a reconfiguration begins -- i.e. epochs are simulated as
// independent server incarnations with a time-shifted arrival stream.
// This slightly flatters reconfiguration (no mid-drain stragglers), which
// is acceptable because the comparison of interest -- static-mismatched vs
// elastic -- charges both sides identically.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "online/repartition_controller.h"
#include "sched/scheduler.h"
#include "sim/server.h"
#include "workload/trace.h"

namespace pe::online {

// Builds a fresh scheduler for each epoch's server incarnation.
using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>()>;

struct EpochStats {
  std::size_t queries = 0;
  double p95_ms = 0.0;
  double violation_rate = 0.0;
  bool reconfigured = false;  // a reconfiguration preceded this epoch
  std::vector<int> layout;    // instance sizes in effect (descending)
};

struct ElasticResult {
  std::vector<EpochStats> epochs;
  sim::ServerStats total;  // over all per-query records, no warmup cut
  int reconfigurations = 0;
};

class ElasticServerSim {
 public:
  // `queries_per_epoch` defines the epoch boundary in query count (an
  // arrival-rate-independent proxy for the paper's "given period of time").
  ElasticServerSim(RepartitionController& controller,
                   const profile::ProfileTable& profile,
                   SchedulerFactory scheduler_factory,
                   sim::LatencyFn actual_latency, SimTime sla_target,
                   std::size_t queries_per_epoch = 2000);

  ElasticResult Run(const workload::QueryTrace& trace);

 private:
  RepartitionController& controller_;
  const profile::ProfileTable& profile_;
  SchedulerFactory scheduler_factory_;
  sim::LatencyFn actual_latency_;
  SimTime sla_target_;
  std::size_t queries_per_epoch_;
};

}  // namespace pe::online
