// Elastic serving simulation (extension).
//
// Replays a (possibly drifting) query trace as ONE continuous
// InferenceServer run.  At each epoch boundary the RepartitionController
// inspects the TrafficEstimator and may order a live reconfiguration,
// which the simulation core models as a first-class event
// (InferenceServer::BeginReconfigure): in-flight queries drain on the old
// layout, queued work is carried over to the new workers, and dispatch is
// held for the drain + downtime window.  The queue build-up through a MIG
// reconfiguration is therefore simulated, not approximated away --
// queries delayed by a window are flagged in their records
// (QueryRecord::reconfig_stalls) and surface as the per-epoch and total
// `stalled` counts.
//
// A drift-free run (no reconfigurations) is bit-identical to a plain
// InferenceServer::Run of the same trace on the initial layout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "online/repartition_controller.h"
#include "sched/scheduler.h"
#include "sim/server.h"
#include "workload/trace.h"

namespace pe::online {

// Builds the scheduler driving the whole continuous run (the simulator
// borrows it; ElasticServerSim keeps it alive).
using SchedulerFactory = std::function<std::unique_ptr<sched::Scheduler>()>;

struct EpochStats {
  std::size_t queries = 0;
  double p95_ms = 0.0;
  double violation_rate = 0.0;
  // Queries of this epoch whose queueing crossed a reconfiguration window.
  std::size_t stalled = 0;
  bool reconfigured = false;  // a reconfiguration began at this epoch
  std::vector<int> layout;    // instance sizes in effect (descending)
};

struct ElasticResult {
  std::vector<EpochStats> epochs;
  sim::ServerStats total;  // over all per-query records, no warmup cut
  int reconfigurations = 0;
};

// Default seed for the continuous elastic run (override via the
// constructor to make elastic experiments reproducible end-to-end).
inline constexpr std::uint64_t kDefaultElasticSeed = 0xE1A5;

class ElasticServerSim {
 public:
  // `queries_per_epoch` defines the epoch boundary in query count (an
  // arrival-rate-independent proxy for the paper's "given period of
  // time").  `seed` seeds the single run's RNG stream (latency noise).
  // `controller` is any RepartitionPolicy (single-model PMF drift or the
  // mixed per-model-share controller).
  ElasticServerSim(RepartitionPolicy& controller,
                   const profile::ProfileTable& profile,
                   SchedulerFactory scheduler_factory,
                   sim::LatencyFn actual_latency, SimTime sla_target,
                   std::size_t queries_per_epoch = 2000,
                   std::uint64_t seed = kDefaultElasticSeed);

  // Multi-model form: the continuous server serves `repertoire` and the
  // trace may interleave models (per-model estimates and ground truth come
  // from the repertoire; the estimator tracks the live mix).
  // `model_swap_cost` is charged whenever a partition starts a query of a
  // non-resident model, matching the mix CLI/bench semantics.
  ElasticServerSim(RepartitionPolicy& controller,
                   const profile::ModelRepertoire& repertoire,
                   SchedulerFactory scheduler_factory, SimTime sla_target,
                   std::size_t queries_per_epoch = 2000,
                   std::uint64_t seed = kDefaultElasticSeed,
                   SimTime model_swap_cost = 0);

  ElasticResult Run(const workload::QueryTrace& trace);

  // Routes the continuous run through the pre-optimization reference
  // engine instead of the fast path (see ServerConfig::reference_engine);
  // results are bit-identical -- the golden determinism suite drives both.
  void set_reference_engine(bool reference) { reference_engine_ = reference; }

 private:
  RepartitionPolicy& controller_;
  // Exactly one of the two serving sources is set.
  const profile::ProfileTable* profile_ = nullptr;
  const profile::ModelRepertoire* repertoire_ = nullptr;
  SchedulerFactory scheduler_factory_;
  sim::LatencyFn actual_latency_;  // single-model form only
  SimTime sla_target_;
  std::size_t queries_per_epoch_;
  std::uint64_t seed_;
  SimTime model_swap_cost_ = 0;  // repertoire form only
  bool reference_engine_ = false;
};

}  // namespace pe::online
