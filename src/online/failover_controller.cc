#include "online/failover_controller.h"

#include <stdexcept>
#include <utility>

namespace pe::online {

FailoverRepartitionController::FailoverRepartitionController(
    hw::Cluster cluster, partition::ParisConfig paris)
    : cluster_(std::move(cluster)), paris_(paris) {}

std::vector<int> FailoverRepartitionController::PlanDegraded(
    const std::vector<partition::MixModelInput>& inputs,
    int gpc_budget) const {
  return partition::PlanMixedParis(inputs, cluster_, gpc_budget, paris_)
      .plan.instance_gpcs;
}

std::vector<partition::MixModelInput>
FailoverRepartitionController::ScaleForOutage(
    std::vector<partition::MixModelInput> inputs,
    const std::vector<int>& full_replicas,
    const std::vector<int>& surviving_replicas) {
  if (full_replicas.size() != inputs.size() ||
      surviving_replicas.size() != inputs.size()) {
    throw std::invalid_argument(
        "ScaleForOutage: replica vectors must align with inputs");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (full_replicas[i] <= 0) {
      throw std::invalid_argument(
          "ScaleForOutage: full replica count must be positive");
    }
    if (surviving_replicas[i] <= 0) continue;  // orphaned model: no warp
    inputs[i].share *= static_cast<double>(full_replicas[i]) /
                       static_cast<double>(surviving_replicas[i]);
  }
  return inputs;
}

}  // namespace pe::online
