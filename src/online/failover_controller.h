// Degraded-capacity repartition: re-planning a survivor's MIG layout
// after a fleet-level outage.
//
// When a server crashes, the health-aware front tier diverts its traffic
// to the surviving replicas of the models it hosted -- each survivor of
// an impacted model absorbs share * full/surviving times its normal
// load.  A layout planned for the nominal mix is now mis-provisioned:
// the impacted models deserve more GPCs at the expense of the others.
// This controller re-runs the same mixed-PARIS pipeline the fleet
// planner pass used (per-model budgets from scaled shares, PARIS within
// each budget, union packed on the cluster), yielding the layout a
// survivor should reconfigure to for the degraded epoch -- and, on
// recovery, the scaling drops back to 1x and the nominal layout returns.
//
// Layering: this lives in the online tier (planning machinery), NOT in
// fleet/ -- the fleet module cannot depend on the partition planner.
// core::FleetTestbed bridges the two by wrapping PlanDegraded in the
// fleet::ReplanFn callback it hands to fleet::SimulateWithFaults.
#pragma once

#include <vector>

#include "hw/cluster.h"
#include "partition/mix.h"
#include "partition/partitioner.h"

namespace pe::online {

class FailoverRepartitionController {
 public:
  // `cluster` is the per-server GPU topology layouts are packed on
  // (copied); `paris` tunes the underlying PARIS passes.
  explicit FailoverRepartitionController(hw::Cluster cluster,
                                         partition::ParisConfig paris = {});

  // The MIG layout (partition multiset) one server should run over
  // `gpc_budget`, given planner inputs for exactly its hosted models
  // whose shares are already scaled for the degraded fleet (see
  // ScaleForOutage).  Deterministic; throws what PlanMixedParis throws.
  std::vector<int> PlanDegraded(
      const std::vector<partition::MixModelInput>& inputs,
      int gpc_budget) const;

  // Scales each input's share by full_replicas[i] / surviving_replicas[i]
  // (both index-aligned with `inputs`): the per-survivor traffic
  // multiplier after an outage.  A model with zero surviving replicas
  // keeps its nominal share -- nobody serves it, so it should not warp
  // the survivors' budgets.  Throws std::invalid_argument on mismatched
  // vector sizes or non-positive full counts.
  static std::vector<partition::MixModelInput> ScaleForOutage(
      std::vector<partition::MixModelInput> inputs,
      const std::vector<int>& full_replicas,
      const std::vector<int>& surviving_replicas);

 private:
  hw::Cluster cluster_;
  partition::ParisConfig paris_;
};

}  // namespace pe::online
