#include "online/repartition_controller.h"

#include <algorithm>

namespace pe::online {

RepartitionController::RepartitionController(
    const profile::ProfileTable& profile, hw::Cluster cluster, int gpc_budget,
    const workload::BatchDistribution& initial_dist,
    partition::ParisConfig paris, ElasticConfig config)
    : profile_(profile),
      cluster_(std::move(cluster)),
      gpc_budget_(gpc_budget),
      paris_config_(paris),
      config_(config),
      plan_(PlanFor(initial_dist)),
      plan_pmf_(initial_dist.PdfVector()) {}

partition::PartitionPlan RepartitionController::PlanFor(
    const workload::BatchDistribution& dist) {
  partition::ParisPartitioner paris(profile_, dist, paris_config_);
  return paris.Plan(cluster_, gpc_budget_);
}

double RepartitionController::DriftOf(
    const TrafficEstimator& estimator) const {
  return estimator.TotalVariation(plan_pmf_);
}

std::optional<partition::PartitionPlan> RepartitionController::MaybeRepartition(
    const TrafficEstimator& estimator) {
  if (estimator.count() < config_.min_observations) return std::nullopt;
  if (DriftOf(estimator) < config_.drift_threshold) return std::nullopt;

  const auto live = estimator.Snapshot();
  partition::PartitionPlan candidate = PlanFor(live);

  // Identical layouts need no reconfiguration -- but the committed PMF is
  // refreshed so drift is measured against what the plan now represents.
  auto sorted = [](std::vector<int> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  const bool same_layout =
      sorted(candidate.instance_gpcs) == sorted(plan_.instance_gpcs);
  plan_pmf_ = estimator.Pmf();
  if (same_layout) return std::nullopt;

  plan_ = std::move(candidate);
  ++reconfigurations_;
  return plan_;
}

}  // namespace pe::online
