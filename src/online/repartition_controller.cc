#include "online/repartition_controller.h"

#include <algorithm>
#include <stdexcept>

namespace pe::online {
namespace {

// pmf indexed by batch size ([0] unused) -> EmpiricalBatchDist weights.
workload::EmpiricalBatchDist DistFromPmf(const std::vector<double>& pmf) {
  if (pmf.size() < 2) {
    throw std::invalid_argument("DistFromPmf: empty PMF");
  }
  std::vector<double> weights(pmf.size() - 1, 0.0);
  for (std::size_t b = 1; b < pmf.size(); ++b) weights[b - 1] = pmf[b];
  return workload::EmpiricalBatchDist(std::move(weights));
}

std::vector<int> SortedSizes(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

RepartitionController::RepartitionController(
    const profile::ProfileTable& profile, hw::Cluster cluster, int gpc_budget,
    const workload::BatchDistribution& initial_dist,
    partition::ParisConfig paris, ElasticConfig config)
    : profile_(profile),
      cluster_(std::move(cluster)),
      gpc_budget_(gpc_budget),
      paris_config_(paris),
      config_(config),
      plan_(PlanFor(initial_dist)),
      plan_pmf_(initial_dist.PdfVector()) {}

partition::PartitionPlan RepartitionController::PlanFor(
    const workload::BatchDistribution& dist) {
  partition::ParisPartitioner paris(profile_, dist, paris_config_);
  return paris.Plan(cluster_, gpc_budget_);
}

double RepartitionController::DriftOf(
    const TrafficEstimator& estimator) const {
  return estimator.TotalVariation(plan_pmf_);
}

std::optional<partition::PartitionPlan> RepartitionController::MaybeRepartition(
    const TrafficEstimator& estimator) {
  if (estimator.count() < config_.min_observations) return std::nullopt;
  if (DriftOf(estimator) < config_.drift_threshold) return std::nullopt;

  const auto live = estimator.Snapshot();
  partition::PartitionPlan candidate = PlanFor(live);

  // Identical layouts need no reconfiguration -- but the committed PMF is
  // refreshed so drift is measured against what the plan now represents.
  const bool same_layout = SortedSizes(candidate.instance_gpcs) ==
                           SortedSizes(plan_.instance_gpcs);
  plan_pmf_ = estimator.Pmf();
  if (same_layout) return std::nullopt;

  plan_ = std::move(candidate);
  ++reconfigurations_;
  return plan_;
}

MixedRepartitionController::MixedRepartitionController(
    const profile::ModelRepertoire& repertoire, hw::Cluster cluster,
    int gpc_budget, const workload::MixSpec& initial_mix,
    partition::ParisConfig paris, ElasticConfig config)
    : repertoire_(repertoire),
      cluster_(std::move(cluster)),
      gpc_budget_(gpc_budget),
      paris_config_(paris),
      config_(config) {
  const auto norm = initial_mix.NormalizedShares();
  shares_.assign(static_cast<std::size_t>(repertoire_.size()), 0.0);
  pmfs_.assign(shares_.size(), {});
  for (std::size_t i = 0; i < initial_mix.components.size(); ++i) {
    const auto& c = initial_mix.components[i];
    if (!repertoire_.Has(c.model_id)) {
      throw std::invalid_argument(
          "MixedRepartitionController: mix references unknown model");
    }
    const auto m = static_cast<std::size_t>(c.model_id);
    if (!pmfs_[m].empty()) {
      // Two components for one model would need share-weighted PMF
      // blending to form a correct drift baseline; reject rather than
      // silently letting the last component's PMF win.
      throw std::invalid_argument(
          "MixedRepartitionController: duplicate model in mix");
    }
    shares_[m] = norm[i];
    pmfs_[m] = c.dist->PdfVector();
  }
  for (std::size_t m = 0; m < pmfs_.size(); ++m) {
    if (shares_[m] > 0.0 && pmfs_[m].empty()) {
      throw std::invalid_argument(
          "MixedRepartitionController: component without distribution");
    }
  }
  plan_ = PlanFor(shares_, pmfs_);
}

partition::MixedPlan MixedRepartitionController::PlanFor(
    const std::vector<double>& shares,
    const std::vector<std::vector<double>>& pmfs) const {
  // Models with no traffic are left out of the union entirely; their ids
  // keep a zero budget in the result for index stability.
  std::vector<partition::MixModelInput> inputs;
  std::vector<workload::EmpiricalBatchDist> dists;
  dists.reserve(shares.size());
  std::vector<std::size_t> input_model(shares.size());
  for (std::size_t m = 0; m < shares.size(); ++m) {
    if (shares[m] <= 0.0) continue;
    dists.push_back(DistFromPmf(pmfs[m]));
    partition::MixModelInput in;
    in.model_id = static_cast<int>(m);
    in.share = shares[m];
    in.profile = &repertoire_.profile(static_cast<int>(m));
    in.dist = &dists.back();
    input_model[inputs.size()] = m;
    inputs.push_back(in);
  }
  if (inputs.empty()) {
    throw std::invalid_argument(
        "MixedRepartitionController: no model has traffic");
  }
  partition::MixedPlan packed =
      partition::PlanMixedParis(inputs, cluster_, gpc_budget_, paris_config_);
  // Re-index budgets/sizes by model id (PlanMixedParis aligns to inputs).
  partition::MixedPlan result;
  result.plan = std::move(packed.plan);
  result.budgets.assign(shares.size(), 0);
  result.per_model_sizes.assign(shares.size(), {});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    result.budgets[input_model[i]] = packed.budgets[i];
    result.per_model_sizes[input_model[i]] =
        std::move(packed.per_model_sizes[i]);
  }
  return result;
}

double MixedRepartitionController::DriftOf(
    const TrafficEstimator& estimator) const {
  double drift = estimator.ShareDrift(shares_);
  for (std::size_t m = 0; m < pmfs_.size(); ++m) {
    if (estimator.ModelCount(static_cast<int>(m)) == 0) continue;
    if (pmfs_[m].empty()) {
      // A model with live traffic but no committed PMF is maximal drift.
      drift = 1.0;
      continue;
    }
    const auto live = estimator.ModelPmf(static_cast<int>(m));
    const std::size_t n = std::max(live.size(), pmfs_[m].size());
    double tv = 0.0;
    for (std::size_t b = 1; b < n; ++b) {
      const double a = b < live.size() ? live[b] : 0.0;
      const double o = b < pmfs_[m].size() ? pmfs_[m][b] : 0.0;
      tv += std::abs(a - o);
    }
    drift = std::max(drift, 0.5 * tv);
  }
  return drift;
}

std::optional<partition::PartitionPlan>
MixedRepartitionController::MaybeRepartition(
    const TrafficEstimator& estimator) {
  if (estimator.count() < config_.min_observations) return std::nullopt;
  if (DriftOf(estimator) < config_.drift_threshold) return std::nullopt;

  // Live mix: observed shares; observed per-model PMFs where available,
  // the committed PMF otherwise.
  std::vector<double> shares =
      estimator.ModelShares(static_cast<std::size_t>(repertoire_.size()));
  std::vector<std::vector<double>> pmfs(pmfs_);
  for (std::size_t m = 0; m < shares.size(); ++m) {
    if (estimator.ModelCount(static_cast<int>(m)) > 0) {
      pmfs[m] = estimator.ModelPmf(static_cast<int>(m));
    }
  }
  partition::MixedPlan candidate = PlanFor(shares, pmfs);

  const bool same_layout = SortedSizes(candidate.plan.instance_gpcs) ==
                           SortedSizes(plan_.plan.instance_gpcs);
  shares_ = std::move(shares);
  pmfs_ = std::move(pmfs);
  if (same_layout) return std::nullopt;

  plan_ = std::move(candidate);
  ++reconfigurations_;
  return plan_.plan;
}

}  // namespace pe::online
