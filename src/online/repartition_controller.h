// Epoch-based elastic re-partitioning controller (extension).
//
// The paper derives one PARIS configuration offline.  In production the
// batch-size distribution drifts (time of day, service popularity); this
// controller closes the loop: at every epoch boundary it compares the live
// PMF from the TrafficEstimator against the PMF the current plan was built
// for, and if the total-variation drift exceeds a threshold it re-runs
// PARIS and -- if the resulting layout actually differs -- orders a
// reconfiguration.  MIG reconfiguration is not free (instances must drain
// and be re-created), which the elastic simulator charges as downtime.
#pragma once

#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "hw/cluster.h"
#include "online/traffic_estimator.h"
#include "partition/paris.h"
#include "partition/partitioner.h"
#include "profile/profile_table.h"

namespace pe::online {

struct ElasticConfig {
  // Minimum observations before the estimator is trusted.
  std::size_t min_observations = 500;
  // Total-variation drift (vs the PMF of the current plan) that triggers
  // re-partitioning.
  double drift_threshold = 0.10;
  // Downtime charged per reconfiguration (drain + MIG re-create).
  SimTime reconfig_downtime = MsToTicks(2000.0);
};

class RepartitionController {
 public:
  // `profile` must outlive the controller.  `initial_dist` seeds the first
  // plan (e.g. yesterday's traffic or a provisioning guess).
  RepartitionController(const profile::ProfileTable& profile,
                        hw::Cluster cluster, int gpc_budget,
                        const workload::BatchDistribution& initial_dist,
                        partition::ParisConfig paris = {},
                        ElasticConfig config = {});

  const partition::PartitionPlan& current_plan() const { return plan_; }
  const std::vector<double>& current_pmf() const { return plan_pmf_; }
  int reconfigurations() const { return reconfigurations_; }
  const ElasticConfig& config() const { return config_; }

  // Epoch-boundary decision.  Returns the new plan if a reconfiguration is
  // warranted (and commits to it), nullopt to keep the current plan.
  std::optional<partition::PartitionPlan> MaybeRepartition(
      const TrafficEstimator& estimator);

  // Drift of the live traffic vs the committed plan's PMF.
  double DriftOf(const TrafficEstimator& estimator) const;

 private:
  const profile::ProfileTable& profile_;
  hw::Cluster cluster_;
  int gpc_budget_;
  partition::ParisConfig paris_config_;
  ElasticConfig config_;
  partition::PartitionPlan plan_;
  std::vector<double> plan_pmf_;
  int reconfigurations_ = 0;

  partition::PartitionPlan PlanFor(const workload::BatchDistribution& dist);
};

}  // namespace pe::online
