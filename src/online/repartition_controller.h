// Epoch-based elastic re-partitioning controllers (extension).
//
// The paper derives one PARIS configuration offline.  In production the
// workload drifts (time of day, service popularity); these controllers
// close the loop: at every epoch boundary they compare the live traffic
// from the TrafficEstimator against what the current plan was built for,
// and if the drift exceeds a threshold they re-run PARIS and -- if the
// resulting layout actually differs -- order a reconfiguration.  MIG
// reconfiguration is not free (instances must drain and be re-created),
// which the elastic simulator charges as downtime.
//
//  * RepartitionController: single-model; drift is the total-variation
//    distance between the live batch PMF and the committed plan's PMF.
//  * MixedRepartitionController: multi-model; drift is the larger of the
//    model-share drift (the *mix* moving) and any model's own batch-PMF
//    drift, and re-planning re-derives per-model GPC budgets from the live
//    shares (partition::PlanMixedParis).
#pragma once

#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "hw/cluster.h"
#include "online/traffic_estimator.h"
#include "partition/mix.h"
#include "partition/paris.h"
#include "partition/partitioner.h"
#include "profile/model_repertoire.h"
#include "profile/profile_table.h"
#include "workload/trace.h"

namespace pe::online {

struct ElasticConfig {
  // Minimum observations before the estimator is trusted.
  std::size_t min_observations = 500;
  // Total-variation drift (vs what the current plan was built for) that
  // triggers re-partitioning.
  double drift_threshold = 0.10;
  // Downtime charged per reconfiguration (drain + MIG re-create).
  SimTime reconfig_downtime = MsToTicks(2000.0);
};

// The epoch-boundary decision interface the elastic simulator drives.
class RepartitionPolicy {
 public:
  virtual ~RepartitionPolicy() = default;

  virtual const partition::PartitionPlan& current_plan() const = 0;
  virtual const ElasticConfig& config() const = 0;

  // Epoch-boundary decision.  Returns the new plan if a reconfiguration is
  // warranted (and commits to it), nullopt to keep the current plan.
  virtual std::optional<partition::PartitionPlan> MaybeRepartition(
      const TrafficEstimator& estimator) = 0;
};

class RepartitionController : public RepartitionPolicy {
 public:
  // `profile` must outlive the controller.  `initial_dist` seeds the first
  // plan (e.g. yesterday's traffic or a provisioning guess).
  RepartitionController(const profile::ProfileTable& profile,
                        hw::Cluster cluster, int gpc_budget,
                        const workload::BatchDistribution& initial_dist,
                        partition::ParisConfig paris = {},
                        ElasticConfig config = {});

  const partition::PartitionPlan& current_plan() const override {
    return plan_;
  }
  const std::vector<double>& current_pmf() const { return plan_pmf_; }
  int reconfigurations() const { return reconfigurations_; }
  const ElasticConfig& config() const override { return config_; }

  std::optional<partition::PartitionPlan> MaybeRepartition(
      const TrafficEstimator& estimator) override;

  // Drift of the live traffic vs the committed plan's PMF.
  double DriftOf(const TrafficEstimator& estimator) const;

 private:
  const profile::ProfileTable& profile_;
  hw::Cluster cluster_;
  int gpc_budget_;
  partition::ParisConfig paris_config_;
  ElasticConfig config_;
  partition::PartitionPlan plan_;
  std::vector<double> plan_pmf_;
  int reconfigurations_ = 0;

  partition::PartitionPlan PlanFor(const workload::BatchDistribution& dist);
};

// Multi-model controller: tracks the committed per-model shares and batch
// PMFs; drift in either re-derives per-model budgets and re-packs the
// union layout.
class MixedRepartitionController : public RepartitionPolicy {
 public:
  // `repertoire` must outlive the controller.  `initial_mix` seeds the
  // first plan: component model_ids index the repertoire, shares give the
  // provisioning guess of the traffic split.
  MixedRepartitionController(const profile::ModelRepertoire& repertoire,
                             hw::Cluster cluster, int gpc_budget,
                             const workload::MixSpec& initial_mix,
                             partition::ParisConfig paris = {},
                             ElasticConfig config = {});

  const partition::PartitionPlan& current_plan() const override {
    return plan_.plan;
  }
  const ElasticConfig& config() const override { return config_; }
  // Per-model GPC budgets of the committed plan, indexed by model id.
  const std::vector<int>& current_budgets() const { return plan_.budgets; }
  const std::vector<double>& committed_shares() const { return shares_; }
  int reconfigurations() const { return reconfigurations_; }

  std::optional<partition::PartitionPlan> MaybeRepartition(
      const TrafficEstimator& estimator) override;

  // max(share drift, max over models of batch-PMF drift).
  double DriftOf(const TrafficEstimator& estimator) const;

 private:
  const profile::ModelRepertoire& repertoire_;
  hw::Cluster cluster_;
  int gpc_budget_;
  partition::ParisConfig paris_config_;
  ElasticConfig config_;
  partition::MixedPlan plan_;
  // Committed state, indexed by model id.
  std::vector<double> shares_;
  std::vector<std::vector<double>> pmfs_;  // index = batch size, [0] unused
  int reconfigurations_ = 0;

  partition::MixedPlan PlanFor(
      const std::vector<double>& shares,
      const std::vector<std::vector<double>>& pmfs) const;
};

}  // namespace pe::online
