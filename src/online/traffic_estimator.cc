#include "online/traffic_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pe::online {

TrafficEstimator::TrafficEstimator(int max_batch, std::size_t window)
    : max_batch_(max_batch),
      window_(window),
      counts_(static_cast<std::size_t>(max_batch) + 1, 0) {
  if (max_batch < 1) {
    throw std::invalid_argument("TrafficEstimator: max_batch < 1");
  }
  if (window < 1) {
    throw std::invalid_argument("TrafficEstimator: window < 1");
  }
}

void TrafficEstimator::Observe(int batch) {
  const int clamped = std::clamp(batch, 1, max_batch_);
  recent_.push_back(clamped);
  ++counts_[static_cast<std::size_t>(clamped)];
  if (recent_.size() > window_) {
    const int evicted = recent_.front();
    recent_.pop_front();
    assert(counts_[static_cast<std::size_t>(evicted)] > 0);
    --counts_[static_cast<std::size_t>(evicted)];
  }
}

std::vector<double> TrafficEstimator::Pmf() const {
  std::vector<double> pmf(counts_.size(), 0.0);
  if (recent_.empty()) return pmf;
  const double n = static_cast<double>(recent_.size());
  for (std::size_t b = 1; b < counts_.size(); ++b) {
    pmf[b] = static_cast<double>(counts_[b]) / n;
  }
  return pmf;
}

workload::EmpiricalBatchDist TrafficEstimator::Snapshot() const {
  if (recent_.empty()) {
    throw std::logic_error("TrafficEstimator::Snapshot: no observations");
  }
  std::vector<double> weights(static_cast<std::size_t>(max_batch_), 0.0);
  for (std::size_t b = 1; b < counts_.size(); ++b) {
    weights[b - 1] = static_cast<double>(counts_[b]);
  }
  return workload::EmpiricalBatchDist(std::move(weights));
}

double TrafficEstimator::TotalVariation(
    const std::vector<double>& other_pmf) const {
  const auto mine = Pmf();
  const std::size_t n = std::max(mine.size(), other_pmf.size());
  double tv = 0.0;
  for (std::size_t b = 1; b < n; ++b) {
    const double a = b < mine.size() ? mine[b] : 0.0;
    const double o = b < other_pmf.size() ? other_pmf[b] : 0.0;
    tv += std::abs(a - o);
  }
  return 0.5 * tv;
}

void TrafficEstimator::Clear() {
  recent_.clear();
  std::fill(counts_.begin(), counts_.end(), 0);
}

}  // namespace pe::online
