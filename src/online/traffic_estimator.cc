#include "online/traffic_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pe::online {

TrafficEstimator::TrafficEstimator(int max_batch, std::size_t window)
    : max_batch_(max_batch),
      window_(window),
      counts_(static_cast<std::size_t>(max_batch) + 1, 0) {
  if (max_batch < 1) {
    throw std::invalid_argument("TrafficEstimator: max_batch < 1");
  }
  if (window < 1) {
    throw std::invalid_argument("TrafficEstimator: window < 1");
  }
}

void TrafficEstimator::Observe(int batch) { Observe(/*model_id=*/0, batch); }

void TrafficEstimator::Observe(int model_id, int batch) {
  if (model_id < 0) {
    throw std::invalid_argument("TrafficEstimator: negative model id");
  }
  const int clamped = std::clamp(batch, 1, max_batch_);
  recent_.push_back(Observation{model_id, clamped});
  ++counts_[static_cast<std::size_t>(clamped)];
  if (model_counts_.size() <= static_cast<std::size_t>(model_id)) {
    model_counts_.resize(static_cast<std::size_t>(model_id) + 1,
                         std::vector<std::size_t>(counts_.size(), 0));
  }
  auto& mc = model_counts_[static_cast<std::size_t>(model_id)];
  ++mc[0];  // [0] doubles as the model's total
  ++mc[static_cast<std::size_t>(clamped)];
  if (recent_.size() > window_) {
    const Observation evicted = recent_.front();
    recent_.pop_front();
    assert(counts_[static_cast<std::size_t>(evicted.batch)] > 0);
    --counts_[static_cast<std::size_t>(evicted.batch)];
    auto& emc = model_counts_[static_cast<std::size_t>(evicted.model)];
    --emc[0];
    --emc[static_cast<std::size_t>(evicted.batch)];
  }
}

std::vector<double> TrafficEstimator::Pmf() const {
  std::vector<double> pmf(counts_.size(), 0.0);
  if (recent_.empty()) return pmf;
  const double n = static_cast<double>(recent_.size());
  for (std::size_t b = 1; b < counts_.size(); ++b) {
    pmf[b] = static_cast<double>(counts_[b]) / n;
  }
  return pmf;
}

std::vector<double> TrafficEstimator::ModelPmf(int model_id) const {
  std::vector<double> pmf(counts_.size(), 0.0);
  const std::size_t n = ModelCount(model_id);
  if (n == 0) return pmf;
  const auto& mc = model_counts_[static_cast<std::size_t>(model_id)];
  for (std::size_t b = 1; b < mc.size(); ++b) {
    pmf[b] = static_cast<double>(mc[b]) / static_cast<double>(n);
  }
  return pmf;
}

std::size_t TrafficEstimator::ModelCount(int model_id) const {
  if (model_id < 0 ||
      static_cast<std::size_t>(model_id) >= model_counts_.size()) {
    return 0;
  }
  return model_counts_[static_cast<std::size_t>(model_id)][0];
}

std::vector<double> TrafficEstimator::ModelShares(
    std::size_t min_models) const {
  std::vector<double> shares(std::max(min_models, model_counts_.size()), 0.0);
  if (recent_.empty()) return shares;
  const double n = static_cast<double>(recent_.size());
  for (std::size_t m = 0; m < model_counts_.size(); ++m) {
    shares[m] = static_cast<double>(model_counts_[m][0]) / n;
  }
  return shares;
}

workload::EmpiricalBatchDist TrafficEstimator::Snapshot() const {
  if (recent_.empty()) {
    throw std::logic_error("TrafficEstimator::Snapshot: no observations");
  }
  std::vector<double> weights(static_cast<std::size_t>(max_batch_), 0.0);
  for (std::size_t b = 1; b < counts_.size(); ++b) {
    weights[b - 1] = static_cast<double>(counts_[b]);
  }
  return workload::EmpiricalBatchDist(std::move(weights));
}

workload::EmpiricalBatchDist TrafficEstimator::ModelSnapshot(
    int model_id) const {
  if (ModelCount(model_id) == 0) {
    throw std::logic_error(
        "TrafficEstimator::ModelSnapshot: no observations for model");
  }
  const auto& mc = model_counts_[static_cast<std::size_t>(model_id)];
  std::vector<double> weights(static_cast<std::size_t>(max_batch_), 0.0);
  for (std::size_t b = 1; b < mc.size(); ++b) {
    weights[b - 1] = static_cast<double>(mc[b]);
  }
  return workload::EmpiricalBatchDist(std::move(weights));
}

double TrafficEstimator::TotalVariation(
    const std::vector<double>& other_pmf) const {
  const auto mine = Pmf();
  const std::size_t n = std::max(mine.size(), other_pmf.size());
  double tv = 0.0;
  for (std::size_t b = 1; b < n; ++b) {
    const double a = b < mine.size() ? mine[b] : 0.0;
    const double o = b < other_pmf.size() ? other_pmf[b] : 0.0;
    tv += std::abs(a - o);
  }
  return 0.5 * tv;
}

double TrafficEstimator::ShareDrift(
    const std::vector<double>& baseline_shares) const {
  const auto mine = ModelShares(baseline_shares.size());
  const std::size_t n = std::max(mine.size(), baseline_shares.size());
  double tv = 0.0;
  for (std::size_t m = 0; m < n; ++m) {
    const double a = m < mine.size() ? mine[m] : 0.0;
    const double o = m < baseline_shares.size() ? baseline_shares[m] : 0.0;
    tv += std::abs(a - o);
  }
  return 0.5 * tv;
}

void TrafficEstimator::Clear() {
  recent_.clear();
  std::fill(counts_.begin(), counts_.end(), 0);
  model_counts_.clear();
}

}  // namespace pe::online
