// Online batch-size distribution estimation.
//
// The paper notes (Section IV-B) that the batch-size PDF "can readily be
// generated in the inference server by collecting the number of input
// batch sizes serviced within a given period of time, which PARIS can
// utilize as a proxy for the batch size distribution".  This module
// implements that collector: a sliding window over the most recent
// observations, an empirical PMF snapshot for PARIS, and a total-variation
// drift metric for deciding when the live distribution has moved far
// enough from the one the server was partitioned for.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "workload/batch_dist.h"

namespace pe::online {

class TrafficEstimator {
 public:
  // `max_batch`: largest batch size tracked (larger observations clamp).
  // `window`: number of most recent queries retained.
  explicit TrafficEstimator(int max_batch, std::size_t window = 10000);

  int max_batch() const { return max_batch_; }
  std::size_t window() const { return window_; }
  std::size_t count() const { return recent_.size(); }
  bool empty() const { return recent_.empty(); }

  // Records one served query's batch size.
  void Observe(int batch);

  // Empirical PMF over [1, max_batch]; index 0 unused.  All zeros when no
  // observations have been made.
  std::vector<double> Pmf() const;

  // Snapshot usable as a PARIS input.  Requires count() > 0.
  workload::EmpiricalBatchDist Snapshot() const;

  // Total-variation distance between this window's PMF and another PMF
  // (same indexing convention).  Ranges over [0, 1].
  double TotalVariation(const std::vector<double>& other_pmf) const;

  void Clear();

 private:
  int max_batch_;
  std::size_t window_;
  std::deque<int> recent_;
  std::vector<std::size_t> counts_;  // index = batch size
};

}  // namespace pe::online
