// Online batch-size distribution estimation.
//
// The paper notes (Section IV-B) that the batch-size PDF "can readily be
// generated in the inference server by collecting the number of input
// batch sizes serviced within a given period of time, which PARIS can
// utilize as a proxy for the batch size distribution".  This module
// implements that collector: a sliding window over the most recent
// observations, an empirical PMF snapshot for PARIS, and a total-variation
// drift metric for deciding when the live distribution has moved far
// enough from the one the server was partitioned for.
//
// Multi-model extension: each observation optionally carries the model
// identity of the served query, so the estimator also tracks the live
// *mix* -- per-model rate shares and per-model batch PMFs.  Drift in the
// mix (one model's traffic growing at another's expense) can then trigger
// a re-partition even when the aggregate batch PMF barely moves.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "workload/batch_dist.h"

namespace pe::online {

class TrafficEstimator {
 public:
  // `max_batch`: largest batch size tracked (larger observations clamp).
  // `window`: number of most recent queries retained.
  explicit TrafficEstimator(int max_batch, std::size_t window = 10000);

  int max_batch() const { return max_batch_; }
  std::size_t window() const { return window_; }
  std::size_t count() const { return recent_.size(); }
  bool empty() const { return recent_.empty(); }

  // Records one served query's batch size (model 0, the single-model
  // degenerate case).
  void Observe(int batch);

  // Records one served query's (model, batch).  Negative model ids throw
  // std::invalid_argument.
  void Observe(int model_id, int batch);

  // Empirical PMF over [1, max_batch] across all models; index 0 unused.
  // All zeros when no observations have been made.
  std::vector<double> Pmf() const;

  // Empirical PMF of one model's batches (same indexing).  All zeros when
  // the model has no observations in the window.
  std::vector<double> ModelPmf(int model_id) const;

  // Number of windowed observations of one model.
  std::size_t ModelCount(int model_id) const;

  // Per-model share of the windowed traffic, indexed by model id; sized
  // max(min_models, highest observed id + 1).  All zeros when empty.
  std::vector<double> ModelShares(std::size_t min_models = 0) const;

  // Snapshot usable as a PARIS input.  Requires count() > 0.
  workload::EmpiricalBatchDist Snapshot() const;

  // Per-model snapshot.  Requires ModelCount(model_id) > 0.
  workload::EmpiricalBatchDist ModelSnapshot(int model_id) const;

  // Total-variation distance between this window's PMF and another PMF
  // (same indexing convention).  Ranges over [0, 1].
  double TotalVariation(const std::vector<double>& other_pmf) const;

  // Total-variation distance between the live per-model shares and a
  // baseline share vector (indexed by model id).  Ranges over [0, 1].
  double ShareDrift(const std::vector<double>& baseline_shares) const;

  void Clear();

 private:
  struct Observation {
    int model = 0;
    int batch = 1;
  };

  int max_batch_;
  std::size_t window_;
  std::deque<Observation> recent_;
  std::vector<std::size_t> counts_;  // index = batch size, all models
  // Per model id: [0] = total observations, [b] = count of batch b.
  std::vector<std::vector<std::size_t>> model_counts_;
};

}  // namespace pe::online
