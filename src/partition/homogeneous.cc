#include "partition/homogeneous.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "hw/gpu_spec.h"

namespace pe::partition {

int PartitionPlan::TotalGpcs() const {
  return std::accumulate(instance_gpcs.begin(), instance_gpcs.end(), 0);
}

std::string PartitionPlan::Summary() const {
  // Count instances per size, descending by size.
  std::ostringstream oss;
  std::vector<int> sorted = instance_gpcs;
  std::sort(sorted.begin(), sorted.end(), std::greater<int>());
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    if (i > 0) oss << ' ';
    oss << (j - i) << "xGPU(" << sorted[i] << ")";
    i = j;
  }
  return oss.str();
}

PartitionPlan MakePlan(const hw::Cluster& cluster, std::vector<int> sizes,
                       std::string rationale) {
  auto layout = hw::PackWithRepair(cluster, std::move(sizes));
  if (!layout) {
    throw std::runtime_error("MakePlan: instance multiset does not fit");
  }
  PartitionPlan plan;
  plan.instance_gpcs = layout->AllInstanceSizes();
  plan.layout = std::move(*layout);
  plan.rationale = std::move(rationale);
  return plan;
}

HomogeneousPartitioner::HomogeneousPartitioner(int partition_gpcs)
    : partition_gpcs_(partition_gpcs) {
  if (!hw::GpuSpec::IsValidPartitionSize(partition_gpcs)) {
    throw std::invalid_argument("HomogeneousPartitioner: invalid size " +
                                std::to_string(partition_gpcs));
  }
}

PartitionPlan HomogeneousPartitioner::Plan(const hw::Cluster& cluster,
                                           int gpc_budget) {
  if (gpc_budget < partition_gpcs_) {
    throw std::runtime_error(
        "HomogeneousPartitioner: budget below one instance");
  }
  const int budget = std::min(gpc_budget, cluster.total_gpcs());
  // Per-GPU instance count is limited by MIG placement (e.g. only one
  // GPU(4) per A100 despite 7 GPCs).
  int per_gpu = 0;
  {
    hw::MigLayout layout(cluster.spec());
    while (layout.TryPlace(partition_gpcs_)) ++per_gpu;
  }
  const int budget_limit = budget / partition_gpcs_;
  const int placement_limit = per_gpu * cluster.num_gpus();
  const int count = std::min(budget_limit, placement_limit);
  if (count <= 0) {
    throw std::runtime_error("HomogeneousPartitioner: no instance fits");
  }
  std::vector<int> sizes(static_cast<std::size_t>(count), partition_gpcs_);
  std::ostringstream why;
  why << "homogeneous GPU(" << partition_gpcs_ << "): budget " << budget
      << " GPCs -> " << count << " instances";
  // Homogeneous plans must not be silently repaired into heterogeneous
  // ones; Pack directly (the count above is placement-feasible by
  // construction).
  auto layout = cluster.Pack(sizes);
  if (!layout) {
    throw std::runtime_error("HomogeneousPartitioner: packing failed");
  }
  PartitionPlan plan;
  plan.instance_gpcs = layout->AllInstanceSizes();
  plan.layout = std::move(*layout);
  plan.rationale = why.str();
  return plan;
}

std::string HomogeneousPartitioner::name() const {
  return "GPU(" + std::to_string(partition_gpcs_) + ")";
}

}  // namespace pe::partition
