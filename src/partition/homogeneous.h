// Homogeneous partitioning: the paper's baseline GPU(N) designs --
// as many instances of a single partition size as the GPC budget and MIG
// placement rules allow (Section V, Table I).
#pragma once

#include "partition/partitioner.h"

namespace pe::partition {

class HomogeneousPartitioner final : public Partitioner {
 public:
  explicit HomogeneousPartitioner(int partition_gpcs);

  PartitionPlan Plan(const hw::Cluster& cluster, int gpc_budget) override;
  std::string name() const override;

  int partition_gpcs() const { return partition_gpcs_; }

 private:
  int partition_gpcs_;
};

// Shared helper: packs `sizes` (with repair fallback) and assembles a plan.
PartitionPlan MakePlan(const hw::Cluster& cluster, std::vector<int> sizes,
                       std::string rationale);

}  // namespace pe::partition
