#include "partition/mix.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "partition/homogeneous.h"

namespace pe::partition {

std::vector<int> ShareBudgets(const std::vector<double>& shares,
                              int total_gpcs) {
  if (shares.empty()) {
    throw std::invalid_argument("ShareBudgets: no shares");
  }
  if (total_gpcs < 1) {
    throw std::invalid_argument("ShareBudgets: total budget must be >= 1");
  }
  double sum = 0.0;
  for (double s : shares) {
    if (s < 0.0) throw std::invalid_argument("ShareBudgets: negative share");
    sum += s;
  }
  if (sum <= 0.0) {
    throw std::invalid_argument("ShareBudgets: shares sum to zero");
  }

  const std::size_t n = shares.size();
  std::vector<int> budgets(n, 0);
  std::vector<double> exact(n), frac(n);
  int used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    exact[i] = shares[i] / sum * static_cast<double>(total_gpcs);
    budgets[i] = static_cast<int>(std::floor(exact[i]));
    frac[i] = exact[i] - std::floor(exact[i]);
    used += budgets[i];
  }
  // Largest fractional remainders absorb the leftover GPCs.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return frac[a] > frac[b];
  });
  for (std::size_t j = 0; used < total_gpcs; j = (j + 1) % n) {
    ++budgets[order[j]];
    ++used;
  }
  // Floor: every model with traffic gets at least 1 GPC (a 0-GPC model
  // would have no partition at all for its queries), funded by the largest
  // allocations while they stay above the floor themselves.
  for (std::size_t i = 0; i < n; ++i) {
    while (shares[i] > 0.0 && budgets[i] == 0) {
      auto donor = std::max_element(budgets.begin(), budgets.end());
      if (*donor <= 1) break;  // nothing left to donate
      --*donor;
      ++budgets[i];
    }
  }
  return budgets;
}

MixedPlan PlanMixedParis(const std::vector<MixModelInput>& inputs,
                         const hw::Cluster& cluster, int gpc_budget,
                         ParisConfig config) {
  if (inputs.empty()) {
    throw std::invalid_argument("PlanMixedParis: no models");
  }
  std::vector<double> shares;
  shares.reserve(inputs.size());
  for (const auto& in : inputs) {
    if (in.profile == nullptr || in.dist == nullptr) {
      throw std::invalid_argument("PlanMixedParis: null profile or dist");
    }
    shares.push_back(in.share);
  }

  MixedPlan result;
  const int budget = std::min(gpc_budget, cluster.total_gpcs());
  result.budgets = ShareBudgets(shares, budget);

  std::vector<int> union_sizes;
  std::ostringstream why;
  why << "mixed PARIS budgets={";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) why << ',';
    why << "model" << inputs[i].model_id << ':' << result.budgets[i];
    std::vector<int> sizes;
    if (result.budgets[i] > 0) {
      ParisPartitioner paris(*inputs[i].profile, *inputs[i].dist, config);
      const ParisDerivation d = paris.Derive(result.budgets[i]);
      for (std::size_t k = 0; k < d.partition_sizes.size(); ++k) {
        for (int c = 0; c < d.instances[k]; ++c) {
          sizes.push_back(d.partition_sizes[k]);
        }
      }
    }
    union_sizes.insert(union_sizes.end(), sizes.begin(), sizes.end());
    result.per_model_sizes.push_back(std::move(sizes));
  }
  why << "}";
  result.plan = MakePlan(cluster, std::move(union_sizes), why.str());
  return result;
}

}  // namespace pe::partition
