// Multi-model PARIS: one heterogeneous MIG layout serving a traffic mix.
//
// The paper partitions a server for a single model's batch-size PDF.  For
// a mix of models, each model's share of the traffic earns it a slice of
// the total GPC budget (largest-remainder split), PARIS derives that
// model's instance multiset within its slice, and the union multiset is
// packed onto the physical cluster through Cluster::Pack (with the usual
// split-repair fallback).  The per-model multisets are kept alongside the
// packed union so dedicated-per-model layouts can be compared against the
// consolidated one at equal total GPCs.
#pragma once

#include <vector>

#include "partition/paris.h"
#include "partition/partitioner.h"
#include "profile/profile_table.h"
#include "workload/batch_dist.h"

namespace pe::partition {

// One model's inputs to the mixed planner.  `profile` and `dist` are
// borrowed and must outlive the PlanMixedParis call.
struct MixModelInput {
  int model_id = 0;
  double share = 1.0;  // relative traffic weight; normalized internally
  const profile::ProfileTable* profile = nullptr;
  const workload::BatchDistribution* dist = nullptr;
};

struct MixedPlan {
  PartitionPlan plan;  // packed union across all models
  // Index-aligned with the PlanMixedParis inputs:
  std::vector<int> budgets;                       // GPCs granted per model
  std::vector<std::vector<int>> per_model_sizes;  // PARIS multiset per model
};

// Largest-remainder split of `total_gpcs` across `shares` (normalized
// internally).  Every strictly positive share receives at least 1 GPC when
// `total_gpcs` allows, taken from the largest allocations.  Throws
// std::invalid_argument on an empty/negative/all-zero share vector or a
// non-positive total.
std::vector<int> ShareBudgets(const std::vector<double>& shares,
                              int total_gpcs);

// Runs PARIS per model within its share-derived budget and packs the union
// onto `cluster`.  A single-input mix with share 1.0 degenerates to
// ParisPartitioner::Plan on the full budget.  Throws std::runtime_error if
// even the repaired union cannot pack.
MixedPlan PlanMixedParis(const std::vector<MixModelInput>& inputs,
                         const hw::Cluster& cluster, int gpc_budget,
                         ParisConfig config = ParisConfig{});

}  // namespace pe::partition
