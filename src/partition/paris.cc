#include "partition/paris.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "partition/homogeneous.h"

namespace pe::partition {
namespace {

std::string Fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

ParisPartitioner::ParisPartitioner(const profile::ProfileTable& profile,
                                   const workload::BatchDistribution& dist,
                                   ParisConfig config)
    : profile_(profile), dist_(dist), config_(config) {}

ParisDerivation ParisPartitioner::Derive(int gpc_budget) const {
  if (gpc_budget < 1) {
    throw std::invalid_argument("ParisPartitioner: budget must be >= 1");
  }
  ParisDerivation d;
  d.partition_sizes = profile_.partition_sizes();
  const std::size_t n = d.partition_sizes.size();
  assert(n > 0);

  // Step A: MaxBatch_knee per partition size (monotone, last covers the
  // profiled max batch).  The relative-knee plateau is referenced at the
  // distribution's max batch so the segmentation is meaningful within the
  // range of batches that will actually be served.
  d.knees = profile_.AllKnees(config_.knee_threshold, config_.knee_mode,
                              dist_.max_batch());

  // Step B: relative instance demand per size over its batch segment.
  // Segments partition [1, dist_max]; the last segment absorbs any batch
  // sizes beyond the last knee.
  const int dist_max = dist_.max_batch();
  d.ratios.assign(n, 0.0);
  int prev = 0;
  for (std::size_t k = 0; k < n; ++k) {
    int hi = std::min(d.knees[k], dist_max);
    if (k + 1 == n) hi = dist_max;
    for (int b = prev + 1; b <= hi; ++b) {
      const double p = dist_.Pdf(b);
      if (p <= 0.0) continue;
      const double tput = profile_.ThroughputQps(d.partition_sizes[k], b);
      if (tput > 0.0) d.ratios[static_cast<std::size_t>(k)] += p / tput;
    }
    prev = std::max(prev, hi);
  }

  // Step C: absolute instance counts.
  double sum_r = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum_r += static_cast<double>(d.partition_sizes[k]) * d.ratios[k];
  }
  if (sum_r <= 0.0) {
    throw std::runtime_error(
        "ParisPartitioner: distribution has no mass over profiled batches");
  }
  d.scale_c = static_cast<double>(gpc_budget) / sum_r;

  std::vector<double> exact(n);
  for (std::size_t k = 0; k < n; ++k) exact[k] = d.scale_c * d.ratios[k];

  // Largest-remainder rounding under the GPC budget.
  d.instances.assign(n, 0);
  int used = 0;
  for (std::size_t k = 0; k < n; ++k) {
    d.instances[k] = static_cast<int>(std::floor(exact[k]));
    used += d.instances[k] * d.partition_sizes[k];
  }
  assert(used <= gpc_budget);
  for (;;) {
    int leftover = gpc_budget - used;
    // Candidate with the largest fractional remainder whose size fits.
    double best_frac = 0.0;
    std::size_t best_k = n;
    for (std::size_t k = 0; k < n; ++k) {
      if (d.partition_sizes[k] > leftover) continue;
      const double frac = exact[k] - std::floor(exact[k]);
      if (d.ratios[k] > 0.0 && frac > best_frac) {
        best_frac = frac;
        best_k = k;
      }
    }
    if (best_k == n) break;
    ++d.instances[best_k];
    exact[best_k] = std::floor(exact[best_k]);  // remainder consumed
    used += d.partition_sizes[best_k];
  }
  // Backfill remaining GPCs with the highest-demand size that still fits,
  // so budget is not stranded (the extra capacity relieves the hottest
  // segment).
  for (;;) {
    const int leftover = gpc_budget - used;
    if (leftover <= 0) break;
    double best_r = 0.0;
    std::size_t best_k = n;
    for (std::size_t k = 0; k < n; ++k) {
      if (d.partition_sizes[k] > leftover) continue;
      if (d.ratios[k] > best_r) {
        best_r = d.ratios[k];
        best_k = k;
      }
    }
    if (best_k == n) break;
    ++d.instances[best_k];
    used += d.partition_sizes[best_k];
  }

  // Segment-coverage guarantee: every segment with traffic gets at least
  // one dedicated instance ("each GPU partition now has a dedicated batch
  // range segment", Section IV-B) -- otherwise its batches have no partition
  // sized for them and tail latency collapses.  Free the GPCs by shrinking
  // the most-populated smaller allocations.
  for (std::size_t k = n; k-- > 0;) {
    if (d.ratios[k] <= 0.0 || d.instances[k] > 0) continue;
    const int need = d.partition_sizes[k];
    int freed = gpc_budget - used;
    std::vector<int> taken(n, 0);
    while (freed < need) {
      // Donor: the size with the most instances beyond its own minimum.
      std::size_t donor = n;
      int donor_count = 1;  // must keep at least one instance per segment
      for (std::size_t j = 0; j < n; ++j) {
        if (j == k) continue;
        const int keep = d.ratios[j] > 0.0 ? 1 : 0;
        if (d.instances[j] - taken[j] > std::max(donor_count, keep)) {
          donor = j;
          donor_count = d.instances[j] - taken[j];
        }
      }
      if (donor == n) break;
      ++taken[donor];
      freed += d.partition_sizes[donor];
    }
    if (freed >= need) {
      for (std::size_t j = 0; j < n; ++j) {
        d.instances[j] -= taken[j];
        used -= taken[j] * d.partition_sizes[j];
      }
      d.instances[k] = 1;
      used += need;
      // Re-backfill any slack created by the donation.
      for (;;) {
        const int leftover = gpc_budget - used;
        if (leftover <= 0) break;
        double best_r = 0.0;
        std::size_t best_j = n;
        for (std::size_t j = 0; j < n; ++j) {
          if (d.partition_sizes[j] > leftover) continue;
          if (d.ratios[j] > best_r) {
            best_r = d.ratios[j];
            best_j = j;
          }
        }
        if (best_j == n) break;
        ++d.instances[best_j];
        used += d.partition_sizes[best_j];
      }
    }
  }

  // Degenerate safeguard: at least one instance overall.
  if (std::accumulate(d.instances.begin(), d.instances.end(), 0) == 0) {
    const std::size_t k_best = static_cast<std::size_t>(
        std::max_element(d.ratios.begin(), d.ratios.end()) - d.ratios.begin());
    // Choose the largest size that fits the budget at or below k_best.
    for (std::size_t k = k_best + 1; k-- > 0;) {
      if (d.partition_sizes[k] <= gpc_budget) {
        d.instances[k] = 1;
        break;
      }
    }
  }
  return d;
}

PartitionPlan ParisPartitioner::Plan(const hw::Cluster& cluster,
                                     int gpc_budget) {
  const int budget = std::min(gpc_budget, cluster.total_gpcs());
  const ParisDerivation d = Derive(budget);

  std::vector<int> sizes;
  for (std::size_t k = 0; k < d.partition_sizes.size(); ++k) {
    for (int i = 0; i < d.instances[k]; ++i) {
      sizes.push_back(d.partition_sizes[k]);
    }
  }
  std::ostringstream why;
  why << "PARIS knees={";
  for (std::size_t k = 0; k < d.knees.size(); ++k) {
    if (k > 0) why << ',';
    why << "GPU(" << d.partition_sizes[k] << "):" << d.knees[k];
  }
  why << "} ratios={";
  for (std::size_t k = 0; k < d.ratios.size(); ++k) {
    if (k > 0) why << ',';
    why << Fmt3(d.ratios[k]);
  }
  why << "} C=" << Fmt3(d.scale_c);
  return MakePlan(cluster, std::move(sizes), why.str());
}

}  // namespace pe::partition
