// PARIS: Partitioning Algorithm for Reconfigurable multi-GPU Inference
// Servers (paper Section IV-B, Algorithm 1).
//
// Inputs:
//   * the one-time profile table (utilization + effective throughput per
//     (partition size, batch size)),
//   * the batch size distribution PDF,
//   * the GPC budget of the multi-GPU server.
//
// Step A derives each partition size's MaxBatch_knee from the utilization
// curve.  The knees split the batch axis into contiguous segments, the n-th
// smallest segment assigned to the n-th smallest partition size (Figure 7).
// Step B computes the relative instance demand
//     R_k = sum_{b in segment_k} Dist(b) / Throughput(k, b)
// (expected service-time demand of the segment, cf. Figure 8).
// Step C scales the ratios to the absolute GPC budget:
//     C = budget / sum_k (GPC[k] * R_k),  N_k = C * R_k,
// then (implementation) rounds N_k to integer instance counts by largest
// fractional remainder under the GPC budget, backfills leftover GPCs with
// the highest-demand sizes that still fit, and packs the multiset onto the
// physical GPUs under MIG placement rules (with split-repair fallback).
#pragma once

#include <vector>

#include "partition/partitioner.h"
#include "profile/profile_table.h"
#include "workload/batch_dist.h"

namespace pe::partition {

struct ParisConfig {
  // MaxBatch_knee derivation (Algorithm 1 line 8 uses absolute 0.8; see
  // DESIGN.md for why relative-to-plateau is the default here).
  double knee_threshold = 0.8;
  profile::KneeMode knee_mode = profile::KneeMode::kRelative;
};

// Intermediate quantities of one PARIS run, exposed for tests, benches and
// the partition-explorer example.
struct ParisDerivation {
  std::vector<int> partition_sizes;  // ascending, from the profile table
  std::vector<int> knees;            // MaxBatch_knee per size
  std::vector<double> ratios;        // R_k per size
  std::vector<int> instances;        // rounded N_k per size
  double scale_c = 0.0;              // Algorithm 1's C
};

class ParisPartitioner final : public Partitioner {
 public:
  // `profile` and `dist` must outlive the partitioner.
  ParisPartitioner(const profile::ProfileTable& profile,
                   const workload::BatchDistribution& dist,
                   ParisConfig config = ParisConfig{});

  PartitionPlan Plan(const hw::Cluster& cluster, int gpc_budget) override;
  std::string name() const override { return "PARIS"; }

  // Runs Algorithm 1 up to (and including) instance-count rounding for a
  // given budget, without packing.
  ParisDerivation Derive(int gpc_budget) const;

 private:
  const profile::ProfileTable& profile_;
  const workload::BatchDistribution& dist_;
  ParisConfig config_;
};

}  // namespace pe::partition
