// Partitioner interface: maps a GPC budget to a multiset of GPU partition
// sizes, realizable on the physical cluster under MIG placement rules.
#pragma once

#include <string>
#include <vector>

#include "hw/cluster.h"

namespace pe::partition {

// The outcome of a partitioning decision.
struct PartitionPlan {
  // Instance sizes (GPCs per instance), descending.
  std::vector<int> instance_gpcs;
  // Concrete placement on the physical cluster.
  hw::ClusterLayout layout;
  // Free-form rationale for logs/benches (e.g. PARIS's R_k ratios).
  std::string rationale;

  int TotalGpcs() const;
  int NumInstances() const { return static_cast<int>(instance_gpcs.size()); }
  std::string Summary() const;  // e.g. "6xGPU(1) 4xGPU(2) 2xGPU(3) 1xGPU(4)"
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  // Produces a plan using at most `gpc_budget` GPCs of `cluster`.
  // Throws std::runtime_error if no feasible plan exists.
  virtual PartitionPlan Plan(const hw::Cluster& cluster, int gpc_budget) = 0;

  virtual std::string name() const = 0;
};

}  // namespace pe::partition
