#include "partition/random_partition.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "hw/gpu_spec.h"
#include "partition/homogeneous.h"

namespace pe::partition {

RandomPartitioner::RandomPartitioner(std::uint64_t seed) : seed_(seed) {}

PartitionPlan RandomPartitioner::Plan(const hw::Cluster& cluster,
                                      int gpc_budget) {
  Rng rng(seed_);
  const int budget = std::min(gpc_budget, cluster.total_gpcs());

  // Random valid sizes drawn until the budget is exhausted; any residual
  // too small for the drawn size is filled with GPU(1)s.
  const auto& valid = hw::GpuSpec::ValidPartitionSizes();
  std::vector<int> sizes;
  int remaining = budget;
  while (remaining > 0) {
    std::vector<int> fitting;
    for (int s : valid) {
      if (s <= remaining) fitting.push_back(s);
    }
    const int pick = fitting[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(fitting.size()) - 1))];
    sizes.push_back(pick);
    remaining -= pick;
  }
  std::ostringstream why;
  why << "random heterogeneous draw, seed=" << seed_ << ", budget=" << budget;
  // PackWithRepair keeps the total GPC count while fixing draws that violate
  // MIG placement (e.g. two GPU(4) landing on one GPU).
  return MakePlan(cluster, std::move(sizes), why.str());
}

}  // namespace pe::partition
