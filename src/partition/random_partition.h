// Random heterogeneous partitioning: the paper's "Random" baseline
// (Section VI), included "to demonstrate the importance of accommodating
// model properties and batch size distribution when heterogeneously
// partitioning".  Draws random valid MIG layouts GPU by GPU until the GPC
// budget is consumed.  Seeded and deterministic.
#pragma once

#include "common/rng.h"
#include "partition/partitioner.h"

namespace pe::partition {

class RandomPartitioner final : public Partitioner {
 public:
  explicit RandomPartitioner(std::uint64_t seed = 0xBADD5EED);

  PartitionPlan Plan(const hw::Cluster& cluster, int gpc_budget) override;
  std::string name() const override { return "Random"; }

 private:
  std::uint64_t seed_;
};

}  // namespace pe::partition
