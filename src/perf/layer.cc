#include "perf/layer.h"

#include <cassert>

namespace pe::perf {

const char* ToString(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kDepthwiseConv: return "dwconv";
    case LayerKind::kGemm: return "gemm";
    case LayerKind::kAttention: return "attention";
    case LayerKind::kElementwise: return "elementwise";
    case LayerKind::kNormalization: return "normalization";
    case LayerKind::kPool: return "pool";
    case LayerKind::kMemoryOp: return "memory";
  }
  return "?";
}

Layer Conv2d(std::string name, int h, int w, int c, int k, int r, int s,
             int stride, double dtype) {
  assert(stride >= 1);
  const int ho = (h + stride - 1) / stride;
  const int wo = (w + stride - 1) / stride;
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kConv;
  l.flops_per_sample = 2.0 * static_cast<double>(k) * c * r * s * ho * wo;
  l.weight_bytes = static_cast<double>(k) * c * r * s * dtype;
  l.io_bytes_per_sample =
      (static_cast<double>(h) * w * c + static_cast<double>(ho) * wo * k) *
      dtype;
  l.gemm_m_per_sample = static_cast<double>(ho) * wo;
  l.gemm_n = k;
  return l;
}

Layer DepthwiseConv2d(std::string name, int h, int w, int c, int r, int s,
                      int stride, double dtype) {
  assert(stride >= 1);
  const int ho = (h + stride - 1) / stride;
  const int wo = (w + stride - 1) / stride;
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kDepthwiseConv;
  l.flops_per_sample = 2.0 * static_cast<double>(c) * r * s * ho * wo;
  l.weight_bytes = static_cast<double>(c) * r * s * dtype;
  l.io_bytes_per_sample =
      (static_cast<double>(h) * w * c + static_cast<double>(ho) * wo * c) *
      dtype;
  l.gemm_m_per_sample = static_cast<double>(ho) * wo;
  l.gemm_n = c;
  return l;
}

Layer Linear(std::string name, int tokens_per_sample, int in_features,
             int out_features, double dtype) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kGemm;
  l.flops_per_sample = 2.0 * static_cast<double>(tokens_per_sample) *
                       in_features * out_features;
  l.weight_bytes = static_cast<double>(in_features) * out_features * dtype;
  l.io_bytes_per_sample =
      static_cast<double>(tokens_per_sample) * (in_features + out_features) *
      dtype;
  l.gemm_m_per_sample = tokens_per_sample;
  l.gemm_n = out_features;
  return l;
}

Layer AttentionScores(std::string name, int seq, int d_head, int heads,
                      double dtype) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kAttention;
  l.flops_per_sample =
      2.0 * static_cast<double>(seq) * seq * d_head * heads;
  l.weight_bytes = 0.0;
  l.io_bytes_per_sample =
      (2.0 * seq * d_head + static_cast<double>(seq) * seq) * heads * dtype;
  l.gemm_m_per_sample = seq;
  l.gemm_n = seq;
  l.groups = heads;
  return l;
}

Layer AttentionContext(std::string name, int seq, int d_head, int heads,
                       double dtype) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kAttention;
  l.flops_per_sample =
      2.0 * static_cast<double>(seq) * seq * d_head * heads;
  l.weight_bytes = 0.0;
  l.io_bytes_per_sample =
      (static_cast<double>(seq) * seq + 2.0 * seq * d_head) * heads * dtype;
  l.gemm_m_per_sample = seq;
  l.gemm_n = d_head;
  l.groups = heads;
  return l;
}

namespace {

// Shared shape for elementwise-like layers: tiles cover 128x128 element
// blocks so that small tensors under-occupy large partitions, as real
// elementwise kernels do.
void FillElementwiseGeometry(Layer& l, double elems) {
  l.gemm_m_per_sample = elems / 128.0;
  l.gemm_n = 128.0;
}

}  // namespace

Layer Elementwise(std::string name, double elems, double flops_per_elem,
                  double dtype) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kElementwise;
  l.flops_per_sample = elems * flops_per_elem;
  l.weight_bytes = 0.0;
  l.io_bytes_per_sample = 2.0 * elems * dtype;  // read + write
  FillElementwiseGeometry(l, elems);
  return l;
}

Layer Normalization(std::string name, double elems, double flops_per_elem,
                    double dtype) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kNormalization;
  l.flops_per_sample = elems * flops_per_elem;
  l.weight_bytes = 0.0;
  l.io_bytes_per_sample = 2.0 * elems * dtype;
  FillElementwiseGeometry(l, elems);
  return l;
}

Layer Pool2d(std::string name, int h, int w, int c, int r, int s, int stride,
             double dtype) {
  const int ho = (h + stride - 1) / stride;
  const int wo = (w + stride - 1) / stride;
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kPool;
  l.flops_per_sample = static_cast<double>(ho) * wo * c * r * s;
  l.weight_bytes = 0.0;
  l.io_bytes_per_sample =
      (static_cast<double>(h) * w * c + static_cast<double>(ho) * wo * c) *
      dtype;
  FillElementwiseGeometry(l, static_cast<double>(ho) * wo * c);
  return l;
}

Layer MemoryOp(std::string name, double bytes_per_sample) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kMemoryOp;
  l.flops_per_sample = bytes_per_sample / 16.0;  // address arithmetic
  l.weight_bytes = 0.0;
  l.io_bytes_per_sample = bytes_per_sample;
  FillElementwiseGeometry(l, bytes_per_sample / 4.0);
  return l;
}

}  // namespace pe::perf
