// Layer-level cost descriptors.
//
// The paper's methodology profiles real DNNs (PyTorch eager mode on A100
// MIG partitions).  We replace the measurement with an analytical model:
// each network is described as a sequence of layers, and each layer is
// reduced to the quantities a roofline + occupancy model needs:
//
//   * flops_per_sample    -- arithmetic work per batch element
//   * weight_bytes        -- parameter traffic, paid once per invocation
//                            (assumed L2-resident within a layer)
//   * io_bytes_per_sample -- activation read+write traffic per element
//   * tile geometry       -- a GEMM-view (M rows per sample, N cols,
//                            independent groups) from which the number of
//                            thread-block tiles, and hence SM occupancy and
//                            wave quantization, is derived.
//
// Factory functions construct layers from semantic parameters (conv shapes,
// linear dims, attention dims), keeping the model zoo readable and auditable.
#pragma once

#include <string>

namespace pe::perf {

// Broad kernel families; each maps to an achievable fraction of per-SM peak
// in its compute-bound inner loop (see RooflineParams::EfficiencyFor).
enum class LayerKind {
  kConv,           // dense convolution (im2col GEMM view)
  kDepthwiseConv,  // depthwise convolution: very low arithmetic density
  kGemm,           // dense matrix multiply / fully connected
  kAttention,      // batched attention matmuls (scores / context)
  kElementwise,    // activation, residual add, BN inference, scaling
  kNormalization,  // layer norm / softmax style row reductions
  kPool,           // pooling
  kMemoryOp,       // pure data movement: shuffle, concat, embedding lookup
};

const char* ToString(LayerKind kind);

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kGemm;

  double flops_per_sample = 0.0;
  double weight_bytes = 0.0;
  double io_bytes_per_sample = 0.0;

  // GEMM-view tile geometry: an invocation at batch b spawns
  //   ceil(gemm_m_per_sample * b / tile_m) * ceil(gemm_n / tile_n) * groups
  // thread-block tiles.
  double gemm_m_per_sample = 1.0;
  double gemm_n = 1.0;
  int groups = 1;
};

// ---- Factory functions -------------------------------------------------

// Dense 2D convolution: input HxWxC, K output channels, RxS kernel, given
// stride.  `dtype` is the element size in bytes.
Layer Conv2d(std::string name, int h, int w, int c, int k, int r, int s,
             int stride, double dtype);

// Depthwise 2D convolution over C channels.
Layer DepthwiseConv2d(std::string name, int h, int w, int c, int r, int s,
                      int stride, double dtype);

// Linear layer applied to `tokens_per_sample` positions (1 for CNN heads,
// seq_len for transformers): in_features -> out_features.
Layer Linear(std::string name, int tokens_per_sample, int in_features,
             int out_features, double dtype);

// Batched attention score computation: per head, (seq x d_head) x
// (d_head x seq) -> seq x seq.
Layer AttentionScores(std::string name, int seq, int d_head, int heads,
                      double dtype);

// Batched attention context: per head, (seq x seq) x (seq x d_head).
Layer AttentionContext(std::string name, int seq, int d_head, int heads,
                       double dtype);

// Elementwise op over `elems` elements per sample with `flops_per_elem`
// arithmetic (e.g. ReLU 1, BN inference 2, GELU 8, residual add 1).
Layer Elementwise(std::string name, double elems, double flops_per_elem,
                  double dtype);

// Row-reduction style op (softmax, layernorm) over `elems` per sample.
Layer Normalization(std::string name, double elems, double flops_per_elem,
                    double dtype);

// Pooling over an HxWxC input with an RxS window and given stride.
Layer Pool2d(std::string name, int h, int w, int c, int r, int s, int stride,
             double dtype);

// Pure data-movement op over `bytes_per_sample` (shuffle/concat/lookup).
Layer MemoryOp(std::string name, double bytes_per_sample);

}  // namespace pe::perf
