#include "perf/model.h"

#include <cassert>

namespace pe::perf {

DnnModel::DnnModel(std::string name, std::vector<Layer> layers)
    : name_(std::move(name)), layers_(std::move(layers)) {}

void DnnModel::AddLayer(Layer layer) { layers_.push_back(std::move(layer)); }

double DnnModel::TotalFlopsPerSample() const {
  double total = 0.0;
  for (const auto& l : layers_) total += l.flops_per_sample;
  return total;
}

double DnnModel::TotalWeightBytes() const {
  double total = 0.0;
  for (const auto& l : layers_) total += l.weight_bytes;
  return total;
}

double DnnModel::TotalIoBytesPerSample() const {
  double total = 0.0;
  for (const auto& l : layers_) total += l.io_bytes_per_sample;
  return total;
}

double DnnModel::ArithmeticIntensity(int batch) const {
  assert(batch >= 1);
  const double b = static_cast<double>(batch);
  const double flops = TotalFlopsPerSample() * b;
  const double bytes = TotalWeightBytes() + TotalIoBytesPerSample() * b;
  return bytes > 0.0 ? flops / bytes : 0.0;
}

}  // namespace pe::perf
