// A DNN model: a named sequence of layers plus aggregate statistics.
#pragma once

#include <string>
#include <vector>

#include "perf/layer.h"

namespace pe::perf {

class DnnModel {
 public:
  DnnModel() = default;
  DnnModel(std::string name, std::vector<Layer> layers);

  const std::string& name() const { return name_; }
  const std::vector<Layer>& layers() const { return layers_; }
  std::size_t num_layers() const { return layers_.size(); }

  void AddLayer(Layer layer);

  // Total arithmetic work per sample (FLOPs).
  double TotalFlopsPerSample() const;
  // Total parameter bytes.
  double TotalWeightBytes() const;
  // Total activation traffic per sample (bytes).
  double TotalIoBytesPerSample() const;
  // Arithmetic intensity at batch b: flops / dram bytes.
  double ArithmeticIntensity(int batch) const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
};

}  // namespace pe::perf
