#include "perf/model_zoo.h"

#include <cassert>
#include <stdexcept>

#include "perf/layer.h"

namespace pe::perf {
namespace {

// The paper's stack is PyTorch 1.7.1 + CUDA 11.1 in FP32 eager mode.
constexpr double kDtype = 4.0;  // bytes per element

// Appends [BatchNorm, ReLU] as the separate elementwise kernels eager-mode
// PyTorch launches after a convolution over an HxWxC activation.
void AddBnRelu(std::vector<Layer>& layers, const std::string& prefix, int h,
               int w, int c) {
  const double elems = static_cast<double>(h) * w * c;
  layers.push_back(Elementwise(prefix + ".bn", elems, 2.0, kDtype));
  layers.push_back(Elementwise(prefix + ".relu", elems, 1.0, kDtype));
}

}  // namespace

// ---------------------------------------------------------------------------
// MobileNetV1 (224x224x3, width multiplier 1.0).
// 13 depthwise-separable blocks; each block in eager mode launches
// dw-conv, bn, relu, pw-conv, bn, relu.
// ---------------------------------------------------------------------------
DnnModel BuildMobileNetV1() {
  std::vector<Layer> layers;
  int h = 224, w = 224;

  layers.push_back(Conv2d("stem.conv", h, w, 3, 32, 3, 3, 2, kDtype));
  h = 112; w = 112;
  AddBnRelu(layers, "stem", h, w, 32);

  struct Block { int in_c, out_c, stride; };
  const Block blocks[] = {
      {32, 64, 1},    {64, 128, 2},   {128, 128, 1},  {128, 256, 2},
      {256, 256, 1},  {256, 512, 2},  {512, 512, 1},  {512, 512, 1},
      {512, 512, 1},  {512, 512, 1},  {512, 512, 1},  {512, 1024, 2},
      {1024, 1024, 1},
  };
  int idx = 0;
  for (const auto& b : blocks) {
    const std::string p = "block" + std::to_string(idx++);
    layers.push_back(
        DepthwiseConv2d(p + ".dw", h, w, b.in_c, 3, 3, b.stride, kDtype));
    h = (h + b.stride - 1) / b.stride;
    w = (w + b.stride - 1) / b.stride;
    AddBnRelu(layers, p + ".dw", h, w, b.in_c);
    layers.push_back(Conv2d(p + ".pw", h, w, b.in_c, b.out_c, 1, 1, 1, kDtype));
    AddBnRelu(layers, p + ".pw", h, w, b.out_c);
  }

  layers.push_back(Pool2d("head.avgpool", h, w, 1024, h, w, h, kDtype));
  layers.push_back(Linear("head.fc", 1, 1024, 1000, kDtype));
  return DnnModel("mobilenet", std::move(layers));
}

// ---------------------------------------------------------------------------
// ShuffleNetV2 1.0x (224x224x3): stage channels {116, 232, 464},
// stage repeats {4, 8, 4}; each basic unit runs pw/dw/pw on half the
// channels plus a channel shuffle; stage-entry units are strided with a
// second (downsample) branch.
// ---------------------------------------------------------------------------
DnnModel BuildShuffleNetV2() {
  std::vector<Layer> layers;
  int h = 224, w = 224;

  layers.push_back(Conv2d("stem.conv", h, w, 3, 24, 3, 3, 2, kDtype));
  h = 112; w = 112;
  AddBnRelu(layers, "stem", h, w, 24);
  layers.push_back(Pool2d("stem.maxpool", h, w, 24, 3, 3, 2, kDtype));
  h = 56; w = 56;

  struct Stage { int out_c, repeats; };
  const Stage stages[] = {{116, 4}, {232, 8}, {464, 4}};
  int in_c = 24;
  int stage_idx = 0;
  for (const auto& st : stages) {
    for (int u = 0; u < st.repeats; ++u) {
      const std::string p = "stage" + std::to_string(stage_idx) + ".unit" +
                            std::to_string(u);
      const bool down = (u == 0);
      const int branch_c = st.out_c / 2;
      if (down) {
        // Downsample branch: dw(stride2) + bn + pw + bn/relu.
        layers.push_back(DepthwiseConv2d(p + ".proj.dw", h, w, in_c, 3, 3, 2,
                                         kDtype));
        const int h2 = h / 2, w2 = w / 2;
        layers.push_back(Elementwise(p + ".proj.dw.bn",
                                     static_cast<double>(h2) * w2 * in_c, 2.0,
                                     kDtype));
        layers.push_back(
            Conv2d(p + ".proj.pw", h2, w2, in_c, branch_c, 1, 1, 1, kDtype));
        AddBnRelu(layers, p + ".proj.pw", h2, w2, branch_c);
        // Main branch at stride 2.
        layers.push_back(
            Conv2d(p + ".pw1", h, w, in_c, branch_c, 1, 1, 1, kDtype));
        AddBnRelu(layers, p + ".pw1", h, w, branch_c);
        layers.push_back(DepthwiseConv2d(p + ".dw", h, w, branch_c, 3, 3, 2,
                                         kDtype));
        h = h2; w = w2;
        layers.push_back(Elementwise(p + ".dw.bn",
                                     static_cast<double>(h) * w * branch_c,
                                     2.0, kDtype));
        layers.push_back(
            Conv2d(p + ".pw2", h, w, branch_c, branch_c, 1, 1, 1, kDtype));
        AddBnRelu(layers, p + ".pw2", h, w, branch_c);
      } else {
        // Basic unit: channel split, pw/dw/pw on half the channels.
        layers.push_back(
            Conv2d(p + ".pw1", h, w, branch_c, branch_c, 1, 1, 1, kDtype));
        AddBnRelu(layers, p + ".pw1", h, w, branch_c);
        layers.push_back(
            DepthwiseConv2d(p + ".dw", h, w, branch_c, 3, 3, 1, kDtype));
        layers.push_back(Elementwise(p + ".dw.bn",
                                     static_cast<double>(h) * w * branch_c,
                                     2.0, kDtype));
        layers.push_back(
            Conv2d(p + ".pw2", h, w, branch_c, branch_c, 1, 1, 1, kDtype));
        AddBnRelu(layers, p + ".pw2", h, w, branch_c);
      }
      // Concat + channel shuffle: pure data movement over the full tensor.
      layers.push_back(MemoryOp(p + ".shuffle",
                                static_cast<double>(h) * w * st.out_c * kDtype *
                                    2.0));
      in_c = st.out_c;
    }
    ++stage_idx;
  }

  layers.push_back(Conv2d("head.conv5", h, w, in_c, 1024, 1, 1, 1, kDtype));
  AddBnRelu(layers, "head.conv5", h, w, 1024);
  layers.push_back(Pool2d("head.avgpool", h, w, 1024, h, w, h, kDtype));
  layers.push_back(Linear("head.fc", 1, 1024, 1000, kDtype));
  return DnnModel("shufflenet", std::move(layers));
}

// ---------------------------------------------------------------------------
// ResNet-50 (224x224x3): stem + stages of {3, 4, 6, 3} bottleneck blocks
// (1x1 reduce, 3x3, 1x1 expand), eager-mode bn/relu/residual-add kernels.
// ---------------------------------------------------------------------------
DnnModel BuildResNet50() {
  std::vector<Layer> layers;
  int h = 224, w = 224;

  layers.push_back(Conv2d("stem.conv", h, w, 3, 64, 7, 7, 2, kDtype));
  h = 112; w = 112;
  AddBnRelu(layers, "stem", h, w, 64);
  layers.push_back(Pool2d("stem.maxpool", h, w, 64, 3, 3, 2, kDtype));
  h = 56; w = 56;

  struct Stage { int mid_c, out_c, blocks, stride; };
  const Stage stages[] = {
      {64, 256, 3, 1}, {128, 512, 4, 2}, {256, 1024, 6, 2}, {512, 2048, 3, 2}};
  int in_c = 64;
  int stage_idx = 0;
  for (const auto& st : stages) {
    for (int b = 0; b < st.blocks; ++b) {
      const std::string p = "stage" + std::to_string(stage_idx) + ".block" +
                            std::to_string(b);
      const int stride = (b == 0) ? st.stride : 1;
      layers.push_back(
          Conv2d(p + ".conv1", h, w, in_c, st.mid_c, 1, 1, 1, kDtype));
      AddBnRelu(layers, p + ".conv1", h, w, st.mid_c);
      layers.push_back(
          Conv2d(p + ".conv2", h, w, st.mid_c, st.mid_c, 3, 3, stride, kDtype));
      const int ho = (h + stride - 1) / stride;
      const int wo = (w + stride - 1) / stride;
      AddBnRelu(layers, p + ".conv2", ho, wo, st.mid_c);
      layers.push_back(
          Conv2d(p + ".conv3", ho, wo, st.mid_c, st.out_c, 1, 1, 1, kDtype));
      layers.push_back(Elementwise(p + ".conv3.bn",
                                   static_cast<double>(ho) * wo * st.out_c,
                                   2.0, kDtype));
      if (b == 0) {
        layers.push_back(Conv2d(p + ".downsample", h, w, in_c, st.out_c, 1, 1,
                                stride, kDtype));
        layers.push_back(Elementwise(p + ".downsample.bn",
                                     static_cast<double>(ho) * wo * st.out_c,
                                     2.0, kDtype));
      }
      layers.push_back(Elementwise(p + ".residual",
                                   static_cast<double>(ho) * wo * st.out_c,
                                   1.0, kDtype));
      layers.push_back(Elementwise(p + ".relu",
                                   static_cast<double>(ho) * wo * st.out_c,
                                   1.0, kDtype));
      h = ho; w = wo;
      in_c = st.out_c;
    }
    ++stage_idx;
  }

  layers.push_back(Pool2d("head.avgpool", h, w, 2048, h, w, h, kDtype));
  layers.push_back(Linear("head.fc", 1, 2048, 1000, kDtype));
  return DnnModel("resnet", std::move(layers));
}

// ---------------------------------------------------------------------------
// BERT-base (12 layers, hidden 768, 12 heads, FFN 3072).
// ---------------------------------------------------------------------------
DnnModel BuildBertBase(int seq_len) {
  assert(seq_len > 0);
  std::vector<Layer> layers;
  const int hidden = 768;
  const int heads = 12;
  const int d_head = hidden / heads;
  const int ffn = 3072;
  const double tok_elems = static_cast<double>(seq_len) * hidden;

  layers.push_back(
      MemoryOp("embed.lookup", tok_elems * kDtype * 2.0));
  layers.push_back(Normalization("embed.ln", tok_elems, 8.0, kDtype));

  for (int i = 0; i < 12; ++i) {
    const std::string p = "encoder" + std::to_string(i);
    layers.push_back(
        Linear(p + ".qkv", seq_len, hidden, 3 * hidden, kDtype));
    layers.push_back(
        AttentionScores(p + ".scores", seq_len, d_head, heads, kDtype));
    layers.push_back(Normalization(
        p + ".softmax", static_cast<double>(seq_len) * seq_len * heads, 5.0,
        kDtype));
    layers.push_back(
        AttentionContext(p + ".context", seq_len, d_head, heads, kDtype));
    layers.push_back(Linear(p + ".out", seq_len, hidden, hidden, kDtype));
    layers.push_back(Elementwise(p + ".residual1", tok_elems, 1.0, kDtype));
    layers.push_back(Normalization(p + ".ln1", tok_elems, 8.0, kDtype));
    layers.push_back(Linear(p + ".ffn1", seq_len, hidden, ffn, kDtype));
    layers.push_back(Elementwise(p + ".gelu",
                                 static_cast<double>(seq_len) * ffn, 8.0,
                                 kDtype));
    layers.push_back(Linear(p + ".ffn2", seq_len, ffn, hidden, kDtype));
    layers.push_back(Elementwise(p + ".residual2", tok_elems, 1.0, kDtype));
    layers.push_back(Normalization(p + ".ln2", tok_elems, 8.0, kDtype));
  }

  layers.push_back(Linear("pooler", 1, hidden, hidden, kDtype));
  return DnnModel("bert", std::move(layers));
}

// ---------------------------------------------------------------------------
// Conformer (L-sized encoder: 17 blocks, d_model 512, 8 heads, conv kernel
// 31, macaron FFN pairs with expansion 4) -- medium compute intensity per
// the paper: large aggregate FLOPs but interleaved with many memory-bound
// conv/norm/gating kernels.  Input: seq_len frames after conv subsampling.
// ---------------------------------------------------------------------------
DnnModel BuildConformer(int seq_len) {
  assert(seq_len > 0);
  std::vector<Layer> layers;
  const int d_model = 512;
  const int heads = 8;
  const int d_head = d_model / heads;
  const int ffn = 4 * d_model;
  const int conv_kernel = 31;
  const double tok_elems = static_cast<double>(seq_len) * d_model;

  // Conv subsampling stem (2x stride-2 convs over an 80-dim mel input,
  // viewed as 1-channel images of size (4*seq_len) x 80).
  layers.push_back(
      Conv2d("stem.conv1", 4 * seq_len, 80, 1, d_model, 3, 3, 2, kDtype));
  AddBnRelu(layers, "stem.conv1", 2 * seq_len, 40, d_model);
  layers.push_back(Conv2d("stem.conv2", 2 * seq_len, 40, d_model, d_model, 3,
                          3, 2, kDtype));
  AddBnRelu(layers, "stem.conv2", seq_len, 20, d_model);
  layers.push_back(Linear("stem.proj", seq_len, d_model * 20, d_model, kDtype));

  auto add_half_ffn = [&](const std::string& p) {
    layers.push_back(Normalization(p + ".ln", tok_elems, 8.0, kDtype));
    layers.push_back(Linear(p + ".w1", seq_len, d_model, ffn, kDtype));
    layers.push_back(Elementwise(p + ".swish",
                                 static_cast<double>(seq_len) * ffn, 4.0,
                                 kDtype));
    layers.push_back(Linear(p + ".w2", seq_len, ffn, d_model, kDtype));
    layers.push_back(Elementwise(p + ".scale_add", tok_elems, 2.0, kDtype));
  };

  for (int i = 0; i < 17; ++i) {
    const std::string p = "block" + std::to_string(i);
    add_half_ffn(p + ".ffn_a");
    // Multi-head self attention.
    layers.push_back(Normalization(p + ".mhsa.ln", tok_elems, 8.0, kDtype));
    layers.push_back(
        Linear(p + ".mhsa.qkv", seq_len, d_model, 3 * d_model, kDtype));
    layers.push_back(
        AttentionScores(p + ".mhsa.scores", seq_len, d_head, heads, kDtype));
    layers.push_back(Normalization(
        p + ".mhsa.softmax", static_cast<double>(seq_len) * seq_len * heads,
        5.0, kDtype));
    layers.push_back(
        AttentionContext(p + ".mhsa.context", seq_len, d_head, heads, kDtype));
    layers.push_back(Linear(p + ".mhsa.out", seq_len, d_model, d_model,
                            kDtype));
    layers.push_back(Elementwise(p + ".mhsa.residual", tok_elems, 1.0, kDtype));
    // Convolution module: pw-GLU, dw conv (kernel 31), bn, swish, pw.
    layers.push_back(Normalization(p + ".conv.ln", tok_elems, 8.0, kDtype));
    layers.push_back(
        Linear(p + ".conv.pw1", seq_len, d_model, 2 * d_model, kDtype));
    layers.push_back(Elementwise(p + ".conv.glu",
                                 2.0 * tok_elems, 2.0, kDtype));
    layers.push_back(DepthwiseConv2d(p + ".conv.dw", seq_len, 1, d_model,
                                     conv_kernel, 1, 1, kDtype));
    layers.push_back(Elementwise(p + ".conv.bn", tok_elems, 2.0, kDtype));
    layers.push_back(Elementwise(p + ".conv.swish", tok_elems, 4.0, kDtype));
    layers.push_back(
        Linear(p + ".conv.pw2", seq_len, d_model, d_model, kDtype));
    layers.push_back(Elementwise(p + ".conv.residual", tok_elems, 1.0,
                                 kDtype));
    add_half_ffn(p + ".ffn_b");
    layers.push_back(Normalization(p + ".final_ln", tok_elems, 8.0, kDtype));
  }

  layers.push_back(Linear("head.ctc", seq_len, d_model, 1024, kDtype));
  return DnnModel("conformer", std::move(layers));
}

// ---------------------------------------------------------------------------
// GPT-2 small (12 layers, hidden 768, 12 heads, FFN 3072) prompt encode.
// Structurally a pre-norm decoder; per-token cost mirrors BERT-base with a
// lm-head projection to the 50k vocabulary at the end.
// ---------------------------------------------------------------------------
DnnModel BuildGpt2Small(int seq_len) {
  assert(seq_len > 0);
  std::vector<Layer> layers;
  const int hidden = 768;
  const int heads = 12;
  const int d_head = hidden / heads;
  const int ffn = 3072;
  const int vocab = 50257;
  const double tok_elems = static_cast<double>(seq_len) * hidden;

  layers.push_back(MemoryOp("embed.wte_wpe", tok_elems * kDtype * 2.0));
  for (int i = 0; i < 12; ++i) {
    const std::string p = "decoder" + std::to_string(i);
    layers.push_back(Normalization(p + ".ln1", tok_elems, 8.0, kDtype));
    layers.push_back(Linear(p + ".qkv", seq_len, hidden, 3 * hidden, kDtype));
    // Causal attention: roughly half the score/context work of full
    // attention; modeled as full-seq attention (upper bound) since the
    // kernel computes the full matrix and masks.
    layers.push_back(
        AttentionScores(p + ".scores", seq_len, d_head, heads, kDtype));
    layers.push_back(Normalization(
        p + ".softmax", static_cast<double>(seq_len) * seq_len * heads, 5.0,
        kDtype));
    layers.push_back(
        AttentionContext(p + ".context", seq_len, d_head, heads, kDtype));
    layers.push_back(Linear(p + ".out", seq_len, hidden, hidden, kDtype));
    layers.push_back(Elementwise(p + ".residual1", tok_elems, 1.0, kDtype));
    layers.push_back(Normalization(p + ".ln2", tok_elems, 8.0, kDtype));
    layers.push_back(Linear(p + ".ffn1", seq_len, hidden, ffn, kDtype));
    layers.push_back(Elementwise(p + ".gelu",
                                 static_cast<double>(seq_len) * ffn, 8.0,
                                 kDtype));
    layers.push_back(Linear(p + ".ffn2", seq_len, ffn, hidden, kDtype));
    layers.push_back(Elementwise(p + ".residual2", tok_elems, 1.0, kDtype));
  }
  layers.push_back(Normalization("final_ln", tok_elems, 8.0, kDtype));
  // LM head over the last position only (next-token prediction).
  layers.push_back(Linear("lm_head", 1, hidden, vocab, kDtype));
  return DnnModel("gpt2", std::move(layers));
}

// ---------------------------------------------------------------------------
// DLRM (RM2-ish scale): 26 sparse embedding lookups of dim 64, bottom MLP
// 13-512-256-64, pairwise dot interaction, top MLP 512-256-1.
// ---------------------------------------------------------------------------
DnnModel BuildDlrm(int num_sparse_features) {
  assert(num_sparse_features > 0);
  std::vector<Layer> layers;
  const int emb_dim = 64;
  const int dense_in = 13;

  // Embedding gathers: pure memory traffic, one row per sparse feature.
  layers.push_back(MemoryOp(
      "sparse.gather",
      static_cast<double>(num_sparse_features) * emb_dim * kDtype * 2.0));

  layers.push_back(Linear("bot_mlp.fc1", 1, dense_in, 512, kDtype));
  layers.push_back(Elementwise("bot_mlp.relu1", 512, 1.0, kDtype));
  layers.push_back(Linear("bot_mlp.fc2", 1, 512, 256, kDtype));
  layers.push_back(Elementwise("bot_mlp.relu2", 256, 1.0, kDtype));
  layers.push_back(Linear("bot_mlp.fc3", 1, 256, emb_dim, kDtype));

  // Pairwise dot-product interaction across (sparse + 1) feature vectors.
  const int features = num_sparse_features + 1;
  const double pairs = 0.5 * features * (features - 1);
  Layer interact = Elementwise("interaction", pairs * emb_dim, 2.0, kDtype);
  layers.push_back(interact);

  const int interact_out = static_cast<int>(pairs) + emb_dim;
  layers.push_back(Linear("top_mlp.fc1", 1, interact_out, 512, kDtype));
  layers.push_back(Elementwise("top_mlp.relu1", 512, 1.0, kDtype));
  layers.push_back(Linear("top_mlp.fc2", 1, 512, 256, kDtype));
  layers.push_back(Elementwise("top_mlp.relu2", 256, 1.0, kDtype));
  layers.push_back(Linear("top_mlp.fc3", 1, 256, 1, kDtype));
  layers.push_back(Elementwise("sigmoid", 1, 4.0, kDtype));
  return DnnModel("dlrm", std::move(layers));
}

std::vector<DnnModel> BuildPaperModels() {
  return {BuildShuffleNetV2(), BuildMobileNetV1(), BuildResNet50(),
          BuildBertBase(), BuildConformer()};
}

DnnModel BuildModelByName(const std::string& name) {
  if (name == "shufflenet") return BuildShuffleNetV2();
  if (name == "mobilenet") return BuildMobileNetV1();
  if (name == "resnet") return BuildResNet50();
  if (name == "bert") return BuildBertBase();
  if (name == "conformer") return BuildConformer();
  throw std::invalid_argument("unknown model: " + name);
}

ComputeIntensity IntensityOf(const std::string& model_name) {
  if (model_name == "shufflenet" || model_name == "mobilenet") {
    return ComputeIntensity::kLow;
  }
  if (model_name == "resnet" || model_name == "conformer") {
    return ComputeIntensity::kMedium;
  }
  if (model_name == "bert") return ComputeIntensity::kHigh;
  throw std::invalid_argument("unknown model: " + model_name);
}

}  // namespace pe::perf
