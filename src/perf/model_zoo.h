// The five benchmark DNNs from the paper (Section V):
//   computer vision:  ShuffleNetV2-1.0x, MobileNetV1-1.0, ResNet-50
//   NLP:              BERT-base
//   speech:           Conformer (medium)
//
// Each builder produces a layer-accurate eager-mode graph: convolutions,
// matmuls, and the separate BN / activation / residual / norm kernels that
// a PyTorch 1.7 eager execution would launch (the paper's software stack).
// Those small memory-bound kernels are what make lightweight models unable
// to utilize large GPU partitions -- the effect the paper's Figures 3-4
// characterize -- so they are modeled explicitly rather than fused away.
#pragma once

#include <string>
#include <vector>

#include "perf/model.h"

namespace pe::perf {

// Compute-intensity classes the paper assigns to its benchmarks.
enum class ComputeIntensity { kLow, kMedium, kHigh };

DnnModel BuildShuffleNetV2();           // low intensity
DnnModel BuildMobileNetV1();            // low intensity
DnnModel BuildResNet50();               // medium intensity
DnnModel BuildBertBase(int seq_len = 384);   // high intensity (MLPerf seq len)
DnnModel BuildConformer(int seq_len = 250);  // medium intensity

// All five paper models, in the paper's order:
// ShuffleNet, MobileNet, ResNet, BERT, Conformer.
std::vector<DnnModel> BuildPaperModels();

// Looks a paper model up by name ("shufflenet", "mobilenet", "resnet",
// "bert", "conformer"); throws std::invalid_argument on unknown names.
DnnModel BuildModelByName(const std::string& name);

// The paper's stated intensity class for each model.
ComputeIntensity IntensityOf(const std::string& model_name);

// ---- Extension models (beyond the paper) -------------------------------
// Demonstrate that the profiling/PARIS/ELSA pipeline generalizes to other
// serving workloads; not part of the paper's evaluation.

// GPT-2 small decoder (12 layers, hidden 768) encoding a prompt of
// `seq_len` tokens -- transformer inference with a causal-attention cost
// profile and a vocabulary-sized LM head.
DnnModel BuildGpt2Small(int seq_len = 256);

// DLRM-style recommendation model: large embedding gather (memory-only),
// bottom/top MLPs and pairwise feature interaction.  Extremely low
// arithmetic intensity -- the opposite end of the spectrum from BERT.
DnnModel BuildDlrm(int num_sparse_features = 26);

}  // namespace pe::perf
