#include "perf/roofline.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pe::perf {

double RooflineParams::EfficiencyFor(LayerKind kind) const {
  switch (kind) {
    case LayerKind::kConv: return eff_conv;
    case LayerKind::kDepthwiseConv: return eff_dwconv;
    case LayerKind::kGemm: return eff_gemm;
    case LayerKind::kAttention: return eff_attention;
    case LayerKind::kElementwise: return eff_elementwise;
    case LayerKind::kNormalization: return eff_normalization;
    case LayerKind::kPool: return eff_pool;
    case LayerKind::kMemoryOp: return eff_memory;
  }
  return eff_gemm;
}

RooflineEngine::RooflineEngine(hw::GpuSpec spec, RooflineParams params)
    : spec_(std::move(spec)), params_(params) {}

LayerTiming RooflineEngine::TimeLayer(const Layer& layer, int gpcs,
                                      int batch) const {
  assert(batch >= 1);
  const hw::PartitionResources res = spec_.Partition(gpcs);
  const double b = static_cast<double>(batch);

  const double tiles_m =
      std::max(1.0, std::ceil(layer.gemm_m_per_sample * b / params_.tile_m));
  const double tiles_n =
      std::max(1.0, std::ceil(layer.gemm_n / params_.tile_n));
  const double tiles = tiles_m * tiles_n * static_cast<double>(layer.groups);
  const double sms = static_cast<double>(res.sms);
  const double waves = std::ceil(tiles / sms);

  const double flops = layer.flops_per_sample * b;
  const double eff = params_.EfficiencyFor(layer.kind);
  const double sm_peak = spec_.peak_flops_per_sm;

  LayerTiming t;
  // Compute roof with wave quantization: every wave takes as long as one
  // full tile even if partially filled.
  t.t_comp = flops > 0.0
                 ? (flops / tiles) * waves / (sm_peak * eff)
                 : 0.0;
  const double bytes = layer.weight_bytes + layer.io_bytes_per_sample * b;
  t.t_mem = bytes > 0.0 ? bytes / res.dram_bw : 0.0;
  t.memory_bound = t.t_mem > t.t_comp;
  const double roof = std::max(t.t_comp, t.t_mem);
  t.seconds = roof + params_.kernel_overhead_sec;
  t.occupancy = tiles / (waves * sms);
  // SM-busy fraction (nvidia-smi semantics): SMs count as busy while the
  // kernel is resident -- whether crunching or stalled on memory -- and idle
  // during launch gaps; scaled by how many SMs the kernel actually covers.
  const double resident_fraction = t.seconds > 0.0 ? roof / t.seconds : 0.0;
  t.utilization = t.occupancy * std::min(1.0, resident_fraction);
  return t;
}

ModelTiming RooflineEngine::Time(const DnnModel& model, int gpcs,
                                 int batch) const {
  ModelTiming mt;
  mt.partition_gpcs = gpcs;
  mt.batch = batch;
  double busy_weighted = 0.0;
  double compute_bound_time = 0.0;
  for (const auto& layer : model.layers()) {
    const LayerTiming lt = TimeLayer(layer, gpcs, batch);
    mt.gpu_sec += lt.seconds;
    busy_weighted += lt.utilization * lt.seconds;
    if (!lt.memory_bound) compute_bound_time += lt.seconds;
  }
  // Host serving path (fixed + per-sample), GPU idle throughout.
  const double host = params_.host_fixed_sec +
                      params_.host_per_sample_sec * static_cast<double>(batch);
  mt.latency_sec = mt.gpu_sec + host;
  if (mt.latency_sec > 0.0) {
    mt.utilization = busy_weighted / mt.latency_sec;
    mt.compute_bound_frac = compute_bound_time / mt.latency_sec;
  }
  return mt;
}

double RooflineEngine::LatencySec(const DnnModel& model, int gpcs,
                                  int batch) const {
  return Time(model, gpcs, batch).latency_sec;
}

double RooflineEngine::Utilization(const DnnModel& model, int gpcs,
                                   int batch) const {
  return Time(model, gpcs, batch).utilization;
}

std::vector<LayerTiming> RooflineEngine::Breakdown(const DnnModel& model,
                                                   int gpcs,
                                                   int batch) const {
  std::vector<LayerTiming> result;
  result.reserve(model.num_layers());
  for (const auto& layer : model.layers()) {
    result.push_back(TimeLayer(layer, gpcs, batch));
  }
  return result;
}

}  // namespace pe::perf
