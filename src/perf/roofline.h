// Roofline + occupancy performance model.
//
// Converts a (model, partition size, batch size) triple into latency and
// GPU utilization, replacing the paper's one-time hardware profiling run.
//
// Per layer, with partition resources (SMs, peak FLOP/s, DRAM bandwidth):
//
//   tiles  = ceil(M*b / tile_m) * ceil(N / tile_n) * groups
//   waves  = ceil(tiles / SMs)                (wave quantization)
//   t_comp = flops * waves / (tiles * sm_peak * eff(kind))
//   t_mem  = dram_bytes / bandwidth
//   t      = max(t_comp, t_mem) + kernel_overhead
//
// Utilization is the SM-busy fraction with nvidia-smi semantics (SMs count
// as busy while a kernel is resident, whether computing or stalled on
// memory; idle during launch gaps):
//   util(layer) = occupancy * resident_fraction
//               = (tiles / (waves * SMs)) * (max(t_comp, t_mem) / t)
// aggregated time-weighted across layers.  This produces the saturating
// utilization-vs-batch curves of the paper's Figure 4(a): small partitions
// saturate at small batch (small MaxBatch_knee), large partitions need
// large batches.
#pragma once

#include <vector>

#include "hw/gpu_spec.h"
#include "perf/model.h"

namespace pe::perf {

struct RooflineParams {
  // Thread-block tile footprint of GEMM-like kernels (cuBLAS-style 128x128).
  double tile_m = 128.0;
  double tile_n = 128.0;
  // Fixed per-kernel launch + scheduling overhead (PyTorch eager mode).
  double kernel_overhead_sec = 25e-6;
  // Host-side serving costs per query, independent of partition size:
  // query deserialization + tensor assembly (fixed) and per-sample
  // preprocessing + H2D staging over PCIe (linear in batch).  These are the
  // DeepRecInfra serving-path costs that compress the latency gap between
  // small and large partitions for cheap models (paper Fig. 4(b): ResNet
  // GPU(1) is ~3.8x GPU(7) at batch 32 despite 7x less compute) while
  // leaving compute-dominated models (BERT) ratio-bound by the GPU.
  double host_fixed_sec = 500e-6;
  double host_per_sample_sec = 150e-6;
  // Achievable fraction of per-SM peak in the compute-bound inner loop.
  double eff_conv = 0.55;
  double eff_dwconv = 0.10;
  double eff_gemm = 0.62;
  double eff_attention = 0.45;
  double eff_elementwise = 0.05;
  double eff_normalization = 0.06;
  double eff_pool = 0.06;
  double eff_memory = 0.04;

  double EfficiencyFor(LayerKind kind) const;
};

// Timing of one layer at one (partition, batch) point.
struct LayerTiming {
  double seconds = 0.0;       // total layer time incl. overhead
  double t_comp = 0.0;        // compute-roof time
  double t_mem = 0.0;         // memory-roof time
  double occupancy = 0.0;     // tiles / (waves * SMs), in (0, 1]
  double utilization = 0.0;   // SM-busy fraction for this layer
  bool memory_bound = false;  // t_mem > t_comp
};

// Aggregate timing of a whole model.
struct ModelTiming {
  double latency_sec = 0.0;       // end-to-end: host costs + GPU time
  double gpu_sec = 0.0;           // GPU-resident portion only
  double utilization = 0.0;       // time-weighted SM-busy fraction
  double compute_bound_frac = 0.0;  // fraction of time in compute-bound layers
  int partition_gpcs = 0;
  int batch = 0;
};

class RooflineEngine {
 public:
  explicit RooflineEngine(hw::GpuSpec spec = hw::GpuSpec{},
                          RooflineParams params = RooflineParams{});

  const hw::GpuSpec& spec() const { return spec_; }
  const RooflineParams& params() const { return params_; }

  // Times one layer on a partition of `gpcs` compute slices at batch `b`.
  LayerTiming TimeLayer(const Layer& layer, int gpcs, int batch) const;

  // Times a whole model; also fills utilization.
  ModelTiming Time(const DnnModel& model, int gpcs, int batch) const;

  // Convenience accessors.
  double LatencySec(const DnnModel& model, int gpcs, int batch) const;
  double Utilization(const DnnModel& model, int gpcs, int batch) const;

  // Per-layer breakdown (same order as model.layers()).
  std::vector<LayerTiming> Breakdown(const DnnModel& model, int gpcs,
                                     int batch) const;

 private:
  hw::GpuSpec spec_;
  RooflineParams params_;
};

}  // namespace pe::perf
