#include "profile/compiled_profile.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pe::profile {

CompiledProfile::CompiledProfile(const ModelRepertoire& repertoire)
    : repertoire_(&repertoire) {
  models_.resize(static_cast<std::size_t>(repertoire.size()));
  for (int m = 0; m < repertoire.size(); ++m) {
    CompileModel(repertoire.profile(m), models_[static_cast<std::size_t>(m)]);
  }
}

CompiledProfile::CompiledProfile(const ProfileTable& table) : table_(&table) {
  models_.resize(1);
  CompileModel(table, models_[0]);
}

void CompiledProfile::CompileModel(const ProfileTable& table, Model& model) {
  const std::vector<int>& batches = table.batch_sizes();
  const std::vector<int>& sizes = table.partition_sizes();
  if (batches.empty() || sizes.empty()) return;  // all lookups fall back

  model.num_batches = static_cast<int>(batches.size());
  model.max_gpcs = sizes.back();
  model.row.assign(static_cast<std::size_t>(model.max_gpcs) + 1, -1);

  // Batch-snap table: snap[b] is lower_bound(batches, b) as an index,
  // exactly ProfileTable's nearest-profiled-batch-above rule.
  model.snap.assign(static_cast<std::size_t>(batches.back()) + 1, 0);
  std::size_t j = 0;
  for (int b = 0; b <= batches.back(); ++b) {
    while (batches[j] < b) ++j;
    model.snap[static_cast<std::size_t>(b)] = static_cast<std::uint16_t>(j);
  }

  const std::size_t cells = sizes.size() * batches.size();
  model.est_sec.assign(cells, 0.0);
  model.est_ticks.assign(cells, kMissing);
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    const std::int32_t base = static_cast<std::int32_t>(g) *
                              static_cast<std::int32_t>(batches.size());
    model.row[static_cast<std::size_t>(sizes[g])] = base;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      if (!table.Has(sizes[g], batches[b])) continue;  // sparse hole
      const double sec = table.At(sizes[g], batches[b]).latency_sec;
      model.est_sec[static_cast<std::size_t>(base) + b] = sec;
      model.est_ticks[static_cast<std::size_t>(base) + b] =
          std::max<SimTime>(1, SecToTicks(sec));
    }
  }

  model.actual_max_batch = batches.back();
  const std::size_t actual_cells =
      (static_cast<std::size_t>(model.max_gpcs) + 1) *
      (static_cast<std::size_t>(model.actual_max_batch) + 1);
  model.actual_sec.assign(actual_cells, 0.0);
  model.actual_seen.assign(actual_cells, 0);
}

const CompiledProfile::Model* CompiledProfile::ModelFor(int model_id) const {
  if (table_ != nullptr) return &models_[0];  // legacy: model-oblivious
  if (model_id < 0 || model_id >= static_cast<int>(models_.size())) {
    return nullptr;
  }
  return &models_[static_cast<std::size_t>(model_id)];
}

std::ptrdiff_t CompiledProfile::EstimateIndex(const Model& m, int gpcs,
                                              int batch) const {
  if (gpcs < 0 || gpcs > m.max_gpcs || m.row.empty()) return -1;
  const std::int32_t base = m.row[static_cast<std::size_t>(gpcs)];
  if (base < 0) return -1;
  std::size_t bi;
  if (batch >= static_cast<int>(m.snap.size())) {
    bi = static_cast<std::size_t>(m.num_batches) - 1;  // clamp to largest
  } else {
    bi = m.snap[static_cast<std::size_t>(batch < 0 ? 0 : batch)];
  }
  return static_cast<std::ptrdiff_t>(base) + static_cast<std::ptrdiff_t>(bi);
}

double CompiledProfile::FallbackEstimateSec(int model_id, int gpcs,
                                            int batch) const {
  if (repertoire_ != nullptr) {
    return repertoire_->EstimateSec(model_id, gpcs, batch);
  }
  if (table_ != nullptr) return table_->LatencySec(gpcs, batch);
  throw std::logic_error("CompiledProfile: empty (no source compiled)");
}

double CompiledProfile::EstimateSec(int model_id, int gpcs, int batch) const {
  if (const Model* m = ModelFor(model_id)) {
    const std::ptrdiff_t idx = EstimateIndex(*m, gpcs, batch);
    if (idx >= 0 && m->est_ticks[static_cast<std::size_t>(idx)] != kMissing) {
      return m->est_sec[static_cast<std::size_t>(idx)];
    }
  }
  return FallbackEstimateSec(model_id, gpcs, batch);
}

SimTime CompiledProfile::EstimateTicks(int model_id, int gpcs,
                                       int batch) const {
  if (const Model* m = ModelFor(model_id)) {
    const std::ptrdiff_t idx = EstimateIndex(*m, gpcs, batch);
    if (idx >= 0) {
      const SimTime ticks = m->est_ticks[static_cast<std::size_t>(idx)];
      if (ticks != kMissing) return ticks;
    }
  }
  return std::max<SimTime>(
      1, SecToTicks(FallbackEstimateSec(model_id, gpcs, batch)));
}

double CompiledProfile::ActualSec(int model_id, int gpcs, int batch) const {
  if (repertoire_ == nullptr) {
    throw std::logic_error(
        "CompiledProfile: no ground truth in the single-table form");
  }
  const Model* m = ModelFor(model_id);
  if (m == nullptr || m->actual_seen.empty() || gpcs < 0 ||
      gpcs > m->max_gpcs || batch < 0 || batch > m->actual_max_batch) {
    return repertoire_->ActualSec(model_id, gpcs, batch);
  }
  const std::size_t idx =
      static_cast<std::size_t>(gpcs) *
          (static_cast<std::size_t>(m->actual_max_batch) + 1) +
      static_cast<std::size_t>(batch);
  if (!m->actual_seen[idx]) {
    m->actual_sec[idx] = repertoire_->ActualSec(model_id, gpcs, batch);
    m->actual_seen[idx] = 1;
  }
  return m->actual_sec[idx];
}

}  // namespace pe::profile
