// CompiledProfile: the profile layer's hot-path compilation.
//
// ProfileTable answers every scheduler/simulator lookup through a
// std::map::find plus a lower_bound batch snap, and ModelRepertoire's
// ground truth goes through a std::function -- costs paid once per
// latency estimate, i.e. per worker per arrival in ELSA's inner loop.
// CompiledProfile flattens that surface once, at construction:
//
//  * a per-model batch-snap table (batch -> index of the smallest profiled
//    batch >= batch, clamped to the largest), replacing lower_bound;
//  * a dense (gpcs, snapped-batch-index) -> {latency_sec, latency_ticks}
//    array per model, replacing the map walk -- EstimateSec/EstimateTicks
//    become two array indexes;
//  * a lazily memoized ground-truth grid, so ActualSec calls the
//    repertoire's LatencyFn at most once per (model, gpcs, batch) and
//    serves repeats from a flat array.
//
// Every value is produced by the exact code path it replaces (the table's
// LatencySec, the repertoire's ActualSec), so compiled lookups are
// bit-identical to the uncompiled ones -- asserted by profile_compiled_test
// and end-to-end by the engine golden determinism suite.  Lookups outside
// the compiled range (unprofiled partition size, unknown model, sparse
// table holes) fall back to the uncompiled path, preserving its exact
// error behavior.
//
// The estimate arrays are immutable after construction and safe to share
// across threads; the ground-truth memo mutates on first use, so a
// CompiledProfile whose ActualSec is exercised must stay thread-private
// (each InferenceServer owns its own).  The source table/repertoire is
// borrowed and must outlive the CompiledProfile.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "profile/model_repertoire.h"
#include "profile/profile_table.h"

namespace pe::profile {

class CompiledProfile {
 public:
  // Empty; every lookup throws (there is no source to fall back to).
  CompiledProfile() = default;

  // Compiles every model of `repertoire` (estimates and ground truth).
  explicit CompiledProfile(const ModelRepertoire& repertoire);

  // Single-table form: estimate lookups answer regardless of model_id
  // (the legacy single-profile scheduler behavior); there is no ground
  // truth, so ActualSec throws std::logic_error.
  explicit CompiledProfile(const ProfileTable& table);

  bool empty() const { return models_.empty(); }
  int num_models() const { return static_cast<int>(models_.size()); }

  // Profiled (estimated) latency; identical to
  // ModelRepertoire::EstimateSec / ProfileTable::LatencySec.
  double EstimateSec(int model_id, int gpcs, int batch) const;

  // max<SimTime>(1, SecToTicks(EstimateSec(...))): the simulator's
  // integral estimate, precomputed per grid point.
  SimTime EstimateTicks(int model_id, int gpcs, int batch) const;

  // Ground-truth latency; identical to ModelRepertoire::ActualSec.
  // Memoized over the (gpcs <= max profiled size, batch <= max profiled
  // batch) grid; anything outside calls the LatencyFn directly.
  double ActualSec(int model_id, int gpcs, int batch) const;

 private:
  struct Model {
    // batch (0..max profiled batch) -> index into the batch grid of the
    // smallest profiled batch >= batch; larger batches clamp to the last
    // grid point, negative ones to the first.
    std::vector<std::uint16_t> snap;
    int num_batches = 0;
    int max_gpcs = 0;
    // gpcs -> base offset into est_sec/est_ticks, -1 when unprofiled.
    std::vector<std::int32_t> row;
    std::vector<double> est_sec;
    // kMissing for holes in a sparse table (fallback re-creates the
    // uncompiled error); valid entries are >= 1.
    std::vector<SimTime> est_ticks;
    // Lazy ground-truth memo over (gpcs 0..max_gpcs) x (batch
    // 0..actual_max_batch); actual_seen gates validity.
    int actual_max_batch = 0;
    mutable std::vector<double> actual_sec;
    mutable std::vector<std::uint8_t> actual_seen;
  };

  static constexpr SimTime kMissing = -1;

  void CompileModel(const ProfileTable& table, Model& model);
  // Compiled entry index for the lookup, or -1 when it must fall back.
  std::ptrdiff_t EstimateIndex(const Model& m, int gpcs, int batch) const;
  const Model* ModelFor(int model_id) const;
  double FallbackEstimateSec(int model_id, int gpcs, int batch) const;

  // Exactly one source is set for a non-empty profile.
  const ModelRepertoire* repertoire_ = nullptr;
  const ProfileTable* table_ = nullptr;
  std::vector<Model> models_;
};

}  // namespace pe::profile
