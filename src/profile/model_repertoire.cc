#include "profile/model_repertoire.h"

#include <algorithm>
#include <stdexcept>

#include "perf/model_zoo.h"
#include "profile/profiler.h"

namespace pe::profile {

int ModelRepertoire::Register(std::string name, ProfileTable profile,
                              LatencyFn actual) {
  if (!actual) {
    throw std::invalid_argument("ModelRepertoire: null latency function");
  }
  if (IdOf(name) != -1) {
    throw std::invalid_argument("ModelRepertoire: duplicate model " + name);
  }
  entries_.push_back(
      Entry{std::move(name), std::move(profile), std::move(actual)});
  return static_cast<int>(entries_.size()) - 1;
}

const ModelRepertoire::Entry& ModelRepertoire::At(int model_id) const {
  if (!Has(model_id)) {
    throw std::out_of_range("ModelRepertoire: unknown model id " +
                            std::to_string(model_id));
  }
  return entries_[static_cast<std::size_t>(model_id)];
}

const std::string& ModelRepertoire::name(int model_id) const {
  return At(model_id).name;
}

const ProfileTable& ModelRepertoire::profile(int model_id) const {
  return At(model_id).profile;
}

const LatencyFn& ModelRepertoire::actual(int model_id) const {
  return At(model_id).actual;
}

int ModelRepertoire::IdOf(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

double ModelRepertoire::EstimateSec(int model_id, int gpcs, int batch) const {
  return At(model_id).profile.LatencySec(gpcs, batch);
}

double ModelRepertoire::ActualSec(int model_id, int gpcs, int batch) const {
  return At(model_id).actual(gpcs, batch);
}

int ModelRepertoire::max_batch() const {
  int max = 0;
  for (const auto& e : entries_) max = std::max(max, e.profile.max_batch());
  return max;
}

ModelRepertoire BuildZooRepertoire(
    const std::vector<std::string>& model_names,
    const perf::RooflineEngine& engine, int max_batch) {
  ModelRepertoire repertoire;
  const Profiler profiler(engine);
  const auto config = ProfilerConfig::Default(std::max(64, max_batch));
  for (const auto& name : model_names) {
    const perf::DnnModel model = perf::BuildModelByName(name);
    ProfileTable table = profiler.Profile(model, config);
    // Bind copies so the latency function outlives this builder.
    LatencyFn actual = [engine, model](int gpcs, int batch) {
      return engine.LatencySec(model, gpcs, batch);
    };
    repertoire.Register(name, std::move(table), std::move(actual));
  }
  return repertoire;
}

}  // namespace pe::profile
