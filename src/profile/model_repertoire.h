// The set of DNN models one server incarnation can serve.
//
// The paper's evaluation runs one model per server; a production MIG
// cluster is shared by a *mix* of models with different roofline knees,
// batch distributions and SLAs.  A ModelRepertoire makes that mix
// first-class: per registered model it owns the one-time ProfileTable
// (what PARIS and ELSA are allowed to see) and the ground-truth latency
// function (what the simulator charges).  Query::model_id indexes into
// the repertoire; a single-entry repertoire is the degenerate one-model
// case and reproduces the original single-table plumbing bit-for-bit.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "perf/roofline.h"
#include "profile/profile_table.h"

namespace pe::profile {

// Ground truth: actual execution latency in seconds of (partition gpcs,
// batch).  Lives here (rather than in sim/) so every layer below the
// simulator can be model-aware without depending on it.
//
// Must be a pure function of (gpcs, batch): the simulator's fast path
// memoizes it per (model, gpcs, batch) through CompiledProfile, so a
// stateful function (e.g. one drawing its own noise) would have its
// first sample frozen and replayed.  Execution-time randomness belongs
// in the simulator (ServerConfig::latency_noise_sigma), which applies
// mean-one log-normal noise on top of this deterministic ground truth.
using LatencyFn = std::function<double(int gpcs, int batch)>;

class ModelRepertoire {
 public:
  ModelRepertoire() = default;

  // Registers a model and returns its dense id (0, 1, 2, ...).  Names must
  // be unique; throws std::invalid_argument on a duplicate or a null
  // `actual`.  `actual` must be deterministic (see LatencyFn above).
  int Register(std::string name, ProfileTable profile, LatencyFn actual);

  int size() const { return static_cast<int>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  const std::string& name(int model_id) const;
  const ProfileTable& profile(int model_id) const;
  const LatencyFn& actual(int model_id) const;

  // Model id for a registered name, or -1 when unknown.
  int IdOf(const std::string& name) const;
  bool Has(int model_id) const {
    return model_id >= 0 && model_id < size();
  }

  // Profiled (estimated) latency for the scheduler's Twait/Testimated
  // lookups, routed through the model's own table.
  double EstimateSec(int model_id, int gpcs, int batch) const;

  // Ground-truth latency for the simulator's execution clock.
  double ActualSec(int model_id, int gpcs, int batch) const;

  // Largest profiled batch across all registered models.
  int max_batch() const;

 private:
  struct Entry {
    std::string name;
    ProfileTable profile;
    LatencyFn actual;
  };

  const Entry& At(int model_id) const;

  std::vector<Entry> entries_;
};

// Builds a repertoire from paper model-zoo names ("resnet", "mobilenet",
// ...), profiling each with the shared roofline engine up to `max_batch`
// (at least 64 so knee detection sees the plateau) and binding its
// ground-truth latency function to the same engine.
ModelRepertoire BuildZooRepertoire(
    const std::vector<std::string>& model_names,
    const perf::RooflineEngine& engine = perf::RooflineEngine{},
    int max_batch = 64);

}  // namespace pe::profile
