#include "profile/profile_table.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pe::profile {

ProfileTable::ProfileTable(std::string model_name,
                           std::vector<int> partition_sizes,
                           std::vector<int> batch_sizes)
    : model_name_(std::move(model_name)),
      partition_sizes_(std::move(partition_sizes)),
      batch_sizes_(std::move(batch_sizes)) {
  assert(std::is_sorted(partition_sizes_.begin(), partition_sizes_.end()));
  assert(std::is_sorted(batch_sizes_.begin(), batch_sizes_.end()));
}

int ProfileTable::max_batch() const {
  return batch_sizes_.empty() ? 0 : batch_sizes_.back();
}

void ProfileTable::Set(int gpcs, int batch, ProfileEntry entry) {
  entries_[{gpcs, batch}] = entry;
}

bool ProfileTable::Has(int gpcs, int batch) const {
  return entries_.count({gpcs, batch}) > 0;
}

const ProfileEntry& ProfileTable::At(int gpcs, int batch) const {
  auto it = entries_.find({gpcs, batch});
  if (it == entries_.end()) {
    throw std::out_of_range("ProfileTable: no entry for gpcs=" +
                            std::to_string(gpcs) +
                            " batch=" + std::to_string(batch));
  }
  return it->second;
}

namespace {

// Smallest profiled batch >= `batch`, clamped to the largest profiled one.
int SnapBatch(const std::vector<int>& batches, int batch) {
  assert(!batches.empty());
  auto it = std::lower_bound(batches.begin(), batches.end(), batch);
  if (it == batches.end()) return batches.back();
  return *it;
}

}  // namespace

double ProfileTable::LatencySec(int gpcs, int batch) const {
  return At(gpcs, SnapBatch(batch_sizes_, batch)).latency_sec;
}

double ProfileTable::Utilization(int gpcs, int batch) const {
  return At(gpcs, SnapBatch(batch_sizes_, batch)).utilization;
}

double ProfileTable::ThroughputQps(int gpcs, int batch) const {
  return At(gpcs, SnapBatch(batch_sizes_, batch)).throughput_qps();
}

int ProfileTable::MaxBatchKnee(int gpcs, double threshold, KneeMode mode,
                               int reference_batch) const {
  assert(!batch_sizes_.empty());
  double target = threshold;
  if (mode == KneeMode::kRelative) {
    const int ref = reference_batch > 0
                        ? SnapBatch(batch_sizes_, reference_batch)
                        : batch_sizes_.back();
    target = threshold * At(gpcs, ref).utilization;
  }
  for (int b : batch_sizes_) {
    if (At(gpcs, b).utilization >= target) return b;
  }
  return batch_sizes_.back();
}

std::vector<int> ProfileTable::AllKnees(double threshold, KneeMode mode,
                                        int reference_batch) const {
  std::vector<int> knees;
  knees.reserve(partition_sizes_.size());
  for (int g : partition_sizes_) {
    knees.push_back(MaxBatchKnee(g, threshold, mode, reference_batch));
  }
  // Enforce monotonicity in partition size.
  for (std::size_t i = 1; i < knees.size(); ++i) {
    knees[i] = std::max(knees[i], knees[i - 1]);
  }
  if (!knees.empty()) knees.back() = max_batch();
  return knees;
}

void ProfileTable::SaveCsv(std::ostream& os) const {
  os << "model,gpcs,batch,latency_sec,utilization\n";
  for (const auto& [key, entry] : entries_) {
    os << model_name_ << ',' << key.first << ',' << key.second << ','
       << entry.latency_sec << ',' << entry.utilization << '\n';
  }
}

ProfileTable ProfileTable::LoadCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("ProfileTable::LoadCsv: empty input");
  }
  std::string model_name;
  std::map<std::pair<int, int>, ProfileEntry> entries;
  std::vector<int> gpcs_list;
  std::vector<int> batch_list;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    std::getline(ls, field, ',');
    model_name = field;
    std::getline(ls, field, ',');
    const int gpcs = std::stoi(field);
    std::getline(ls, field, ',');
    const int batch = std::stoi(field);
    ProfileEntry e;
    std::getline(ls, field, ',');
    e.latency_sec = std::stod(field);
    std::getline(ls, field, ',');
    e.utilization = std::stod(field);
    entries[{gpcs, batch}] = e;
    gpcs_list.push_back(gpcs);
    batch_list.push_back(batch);
  }
  auto uniq_sort = [](std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  uniq_sort(gpcs_list);
  uniq_sort(batch_list);
  ProfileTable table(model_name, gpcs_list, batch_list);
  for (const auto& [key, entry] : entries) {
    table.Set(key.first, key.second, entry);
  }
  return table;
}

}  // namespace pe::profile
