// The paper's one-time profiling lookup table (Section IV-C):
// (GPU partition size, batch size) -> {latency, utilization, throughput}.
//
// Both PARIS (Algorithm 1 inputs Util[], Throughput[]) and ELSA
// (T_estimated lookups, Eq. 1-2) consume this table, never the performance
// model directly -- mirroring the deployment flow on real hardware where the
// table is measured once (~5 minutes per the paper) and then reused.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace pe::profile {

struct ProfileEntry {
  double latency_sec = 0.0;
  double utilization = 0.0;  // SM-busy fraction in [0, 1]

  // Effective inference throughput in queries/sec: a query is one batch, so
  // this is 1 / latency (cf. the paper's Figure 8 example where batch-1
  // latency 25 ms -> 40 queries/sec).
  double throughput_qps() const {
    return latency_sec > 0.0 ? 1.0 / latency_sec : 0.0;
  }
};

// MaxBatch_knee derivation mode (see DESIGN.md):
//  * kAbsolute: first batch with util >= threshold (Algorithm 1, line 8).
//  * kRelative: first batch with util >= threshold * util(max batch); total
//    even when a partition's plateau sits below the absolute threshold.
enum class KneeMode { kAbsolute, kRelative };

class ProfileTable {
 public:
  ProfileTable() = default;
  ProfileTable(std::string model_name, std::vector<int> partition_sizes,
               std::vector<int> batch_sizes);

  const std::string& model_name() const { return model_name_; }
  const std::vector<int>& partition_sizes() const { return partition_sizes_; }
  const std::vector<int>& batch_sizes() const { return batch_sizes_; }
  int max_batch() const;

  void Set(int gpcs, int batch, ProfileEntry entry);
  bool Has(int gpcs, int batch) const;

  // Returns the profiled entry; exact match required (throws
  // std::out_of_range otherwise).
  const ProfileEntry& At(int gpcs, int batch) const;

  // Latency with lookup semantics used by the scheduler: exact batch match
  // if profiled, otherwise the nearest profiled batch >= `batch` (a batch
  // between grid points costs as much as the next grid point), clamping to
  // the largest profiled batch.
  double LatencySec(int gpcs, int batch) const;
  double Utilization(int gpcs, int batch) const;
  double ThroughputQps(int gpcs, int batch) const;

  // MaxBatch_knee for a partition size (Algorithm 1 Step A): the first
  // profiled batch whose utilization crosses the threshold; falls back to
  // the largest profiled batch if never crossed.  In kRelative mode the
  // plateau is the utilization at `reference_batch` (<= 0 means the largest
  // profiled batch); callers serving a capped distribution pass its max
  // batch so knees are meaningful within the served range.
  int MaxBatchKnee(int gpcs, double threshold = 0.8,
                   KneeMode mode = KneeMode::kRelative,
                   int reference_batch = 0) const;

  // Knees for every partition size, ascending by size, made non-decreasing
  // (a larger partition never gets a smaller knee than a smaller one, which
  // Algorithm 1 implicitly assumes when segmenting), with the largest
  // partition's knee clamped up to the max profiled batch so the segments
  // cover the whole distribution.
  std::vector<int> AllKnees(double threshold = 0.8,
                            KneeMode mode = KneeMode::kRelative,
                            int reference_batch = 0) const;

  // CSV round trip: columns model,gpcs,batch,latency_sec,utilization.
  void SaveCsv(std::ostream& os) const;
  static ProfileTable LoadCsv(std::istream& is);

 private:
  std::string model_name_;
  std::vector<int> partition_sizes_;  // ascending
  std::vector<int> batch_sizes_;      // ascending
  std::map<std::pair<int, int>, ProfileEntry> entries_;
};

}  // namespace pe::profile
