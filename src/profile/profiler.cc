#include "profile/profiler.h"

#include <algorithm>

#include "hw/gpu_spec.h"

namespace pe::profile {

ProfilerConfig ProfilerConfig::Default(int max_batch) {
  ProfilerConfig c;
  c.partition_sizes = hw::GpuSpec::ValidPartitionSizes();
  // Dense grid up to 8, then even steps: captures the knee position with
  // single-batch resolution where it matters.
  for (int b = 1; b <= std::min(8, max_batch); ++b) c.batch_sizes.push_back(b);
  for (int b = 10; b <= max_batch; b += 2) c.batch_sizes.push_back(b);
  if (c.batch_sizes.back() != max_batch) c.batch_sizes.push_back(max_batch);
  return c;
}

Profiler::Profiler(perf::RooflineEngine engine) : engine_(std::move(engine)) {}

ProfileTable Profiler::Profile(const perf::DnnModel& model,
                               const ProfilerConfig& config) const {
  ProfileTable table(model.name(), config.partition_sizes,
                     config.batch_sizes);
  for (int gpcs : config.partition_sizes) {
    for (int batch : config.batch_sizes) {
      const perf::ModelTiming t = engine_.Time(model, gpcs, batch);
      table.Set(gpcs, batch, ProfileEntry{t.latency_sec, t.utilization});
    }
  }
  return table;
}

}  // namespace pe::profile
