// Profiler: runs the roofline model over the (partition size x batch size)
// grid to build the one-time ProfileTable the paper's Section IV relies on.
#pragma once

#include <vector>

#include "perf/model.h"
#include "perf/roofline.h"
#include "profile/profile_table.h"

namespace pe::profile {

struct ProfilerConfig {
  // Partition sizes to profile; defaults to MIG's {1, 2, 3, 4, 7}.
  std::vector<int> partition_sizes;
  // Batch sizes to profile; defaults to powers of two 1..64 plus the
  // intermediate even grid, matching the paper's Figure 4 sweep.
  std::vector<int> batch_sizes;

  static ProfilerConfig Default(int max_batch = 64);
};

class Profiler {
 public:
  explicit Profiler(perf::RooflineEngine engine = perf::RooflineEngine{});

  const perf::RooflineEngine& engine() const { return engine_; }

  // Profiles the model over the grid.
  ProfileTable Profile(const perf::DnnModel& model,
                       const ProfilerConfig& config =
                           ProfilerConfig::Default()) const;

 private:
  perf::RooflineEngine engine_;
};

}  // namespace pe::profile
