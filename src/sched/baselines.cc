#include "sched/baselines.h"

#include <cassert>
#include <limits>

namespace pe::sched {

int JsqScheduler::OnQueryArrival(const workload::Query& query,
                                 const WorkerView& workers) {
  (void)query;
  const std::size_t n = workers.size();
  assert(n > 0);
  SimTime best_wait = std::numeric_limits<SimTime>::max();
  int best = kNoAssignment;
  for (std::size_t i = 0; i < n; ++i) {
    const WorkerState& w = workers.Get(i);
    if (w.failed) continue;
    if (best == kNoAssignment || w.wait_ticks < best_wait) {
      best_wait = w.wait_ticks;
      best = w.index;
    }
  }
  return best;
}

GreedyFastestScheduler::GreedyFastestScheduler(
    const profile::ProfileTable& profile)
    : profile_(profile) {}

int GreedyFastestScheduler::OnQueryArrival(const workload::Query& query,
                                           const WorkerView& workers) {
  const std::size_t n = workers.size();
  assert(n > 0);
  double t_min = std::numeric_limits<double>::infinity();
  int best = kNoAssignment;
  for (std::size_t i = 0; i < n; ++i) {
    const WorkerState& w = workers.Get(i);
    if (w.failed) continue;
    const double t = TicksToSec(w.wait_ticks) +
                     profile_.LatencySec(w.gpcs, query.batch);
    if (best == kNoAssignment || t < t_min) {
      t_min = t;
      best = w.index;
    }
  }
  return best;
}

}  // namespace pe::sched
