#include "sched/baselines.h"

#include <cassert>
#include <limits>

namespace pe::sched {

int JsqScheduler::OnQueryArrival(const workload::Query& query,
                                 const std::vector<WorkerState>& workers) {
  (void)query;
  assert(!workers.empty());
  SimTime best_wait = std::numeric_limits<SimTime>::max();
  int best = workers.front().index;
  for (const auto& w : workers) {
    if (w.wait_ticks < best_wait) {
      best_wait = w.wait_ticks;
      best = w.index;
    }
  }
  return best;
}

GreedyFastestScheduler::GreedyFastestScheduler(
    const profile::ProfileTable& profile)
    : profile_(profile) {}

int GreedyFastestScheduler::OnQueryArrival(
    const workload::Query& query, const std::vector<WorkerState>& workers) {
  assert(!workers.empty());
  double t_min = std::numeric_limits<double>::infinity();
  int best = workers.front().index;
  for (const auto& w : workers) {
    const double t = TicksToSec(w.wait_ticks) +
                     profile_.LatencySec(w.gpcs, query.batch);
    if (t < t_min) {
      t_min = t;
      best = w.index;
    }
  }
  return best;
}

}  // namespace pe::sched
