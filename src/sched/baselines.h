// Additional scheduling baselines beyond the paper's FIFS, used by the
// ablation benches:
//
//  * JsqScheduler     -- join-shortest-queue by estimated wait time;
//    heterogeneity-aware about load but not about the query's own cost.
//  * GreedyFastestScheduler -- always minimizes Twait + Testimated,new,
//    i.e. ELSA with Step A removed.  Isolates the contribution of ELSA's
//    "prefer the smallest partition with slack" rule (utilization-driven).
//
// Both are stateless (every decision reads fresh WorkerState snapshots),
// so the base-class reconfiguration hooks -- no-op OnReconfigure, orphans
// requeued like fresh arrivals -- are the correct behavior.
#pragma once

#include "profile/profile_table.h"
#include "sched/scheduler.h"

namespace pe::sched {

class JsqScheduler final : public Scheduler {
 public:
  using Scheduler::OnQueryArrival;
  using Scheduler::RequeueOrphan;

  int OnQueryArrival(const workload::Query& query,
                     const WorkerView& workers) override;
  bool UsesCentralQueue() const override { return false; }
  std::string name() const override { return "JSQ"; }
};

class GreedyFastestScheduler final : public Scheduler {
 public:
  explicit GreedyFastestScheduler(const profile::ProfileTable& profile);

  using Scheduler::OnQueryArrival;
  using Scheduler::RequeueOrphan;

  int OnQueryArrival(const workload::Query& query,
                     const WorkerView& workers) override;
  bool UsesCentralQueue() const override { return false; }
  std::string name() const override { return "GreedyFastest"; }

 private:
  const profile::ProfileTable& profile_;
};

}  // namespace pe::sched
