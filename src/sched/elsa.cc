#include "sched/elsa.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pe::sched {

ElsaScheduler::ElsaScheduler(const profile::ProfileTable& profile,
                             SimTime sla_target, ElsaParams params)
    : profile_(profile), sla_target_(sla_target), params_(params) {
  assert(sla_target_ > 0);
}

double ElsaScheduler::SlackSec(const WorkerState& worker, int batch) const {
  const double t_wait = TicksToSec(worker.wait_ticks);
  const double t_new = profile_.LatencySec(worker.gpcs, batch);
  return TicksToSec(sla_target_) -
         params_.alpha * (t_wait + params_.beta * t_new);
}

int ElsaScheduler::OnQueryArrival(const workload::Query& query,
                                  const std::vector<WorkerState>& workers) {
  assert(!workers.empty());

  // Step A: smallest partition whose predicted slack is positive.  Workers
  // are visited in ascending (gpcs, index) order regardless of their order
  // in the vector.
  std::vector<const WorkerState*> sorted;
  sorted.reserve(workers.size());
  for (const auto& w : workers) sorted.push_back(&w);
  std::sort(sorted.begin(), sorted.end(),
            [](const WorkerState* a, const WorkerState* b) {
              if (a->gpcs != b->gpcs) return a->gpcs < b->gpcs;
              return a->index < b->index;
            });
  for (const WorkerState* w : sorted) {
    if (SlackSec(*w, query.batch) > 0.0) return w->index;
  }

  // Step B: no partition satisfies the SLA; pick minimum completion time.
  double t_min = std::numeric_limits<double>::infinity();
  int best = sorted.front()->index;
  for (const WorkerState* w : sorted) {
    const double t = TicksToSec(w->wait_ticks) +
                     profile_.LatencySec(w->gpcs, query.batch);
    if (t < t_min) {
      t_min = t;
      best = w->index;
    }
  }
  return best;
}

}  // namespace pe::sched
