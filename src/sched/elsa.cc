#include "sched/elsa.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pe::sched {

ElsaScheduler::ElsaScheduler(const profile::ProfileTable& profile,
                             SimTime sla_target, ElsaParams params)
    : profile_(&profile), sla_target_(sla_target), params_(params) {
  assert(sla_target_ > 0);
}

ElsaScheduler::ElsaScheduler(const profile::ModelRepertoire& repertoire,
                             SimTime sla_target, ElsaParams params)
    : repertoire_(&repertoire), sla_target_(sla_target), params_(params) {
  assert(sla_target_ > 0);
  assert(!repertoire.empty());
}

double ElsaScheduler::EstimateSec(int model_id, int gpcs, int batch) const {
  // The single-profile form serves exactly one model; its table answers
  // regardless of the id so legacy callers stay model-oblivious.
  if (repertoire_ != nullptr) {
    return repertoire_->EstimateSec(model_id, gpcs, batch);
  }
  return profile_->LatencySec(gpcs, batch);
}

double ElsaScheduler::SlackSec(const WorkerState& worker, int batch) const {
  return SlackSec(worker, /*model_id=*/0, batch);
}

double ElsaScheduler::SlackSec(const WorkerState& worker, int model_id,
                               int batch) const {
  const double t_wait = TicksToSec(worker.wait_ticks);
  const double t_new = EstimateSec(model_id, worker.gpcs, batch);
  return TicksToSec(sla_target_) -
         params_.alpha * (t_wait + params_.beta * t_new);
}

int ElsaScheduler::OnQueryArrival(const workload::Query& query,
                                  const std::vector<WorkerState>& workers) {
  assert(!workers.empty());

  // Workers are visited in ascending (gpcs, index) order regardless of
  // their order in the vector.
  std::vector<const WorkerState*> sorted;
  sorted.reserve(workers.size());
  for (const auto& w : workers) sorted.push_back(&w);
  std::sort(sorted.begin(), sorted.end(),
            [](const WorkerState* a, const WorkerState* b) {
              if (a->gpcs != b->gpcs) return a->gpcs < b->gpcs;
              return a->index < b->index;
            });

  const auto completion_sec = [&](const WorkerState& w) {
    return TicksToSec(w.wait_ticks) +
           EstimateSec(query.model_id, w.gpcs, query.batch);
  };
  // Among positive-slack candidates, a swap-free partition -- one whose
  // resident model already matches the query, or one that has never loaded
  // a model (-1) -- wins over `chosen` when its predicted completion ties
  // within the locality window: the query avoids a model-swap penalty at
  // no predicted SLA cost.
  const auto swap_free = [&](const WorkerState& w) {
    return w.resident_model == query.model_id || w.resident_model == -1;
  };
  const auto prefer_local = [&](const WorkerState* chosen) {
    if (params_.locality_tie_sec <= 0.0 || chosen == nullptr) return chosen;
    if (swap_free(*chosen)) return chosen;
    const double bound = completion_sec(*chosen) + params_.locality_tie_sec;
    for (const WorkerState* w : sorted) {
      if (!swap_free(*w)) continue;
      if (SlackSec(*w, query.model_id, query.batch) <= 0.0) continue;
      if (completion_sec(*w) <= bound) return w;
    }
    return chosen;
  };

  // Step A: smallest partition whose predicted slack is positive.
  for (const WorkerState* w : sorted) {
    if (SlackSec(*w, query.model_id, query.batch) > 0.0) {
      return prefer_local(w)->index;
    }
  }

  // Step B: no partition satisfies the SLA; pick minimum completion time.
  double t_min = std::numeric_limits<double>::infinity();
  const WorkerState* best = sorted.front();
  for (const WorkerState* w : sorted) {
    const double t = completion_sec(*w);
    if (t < t_min) {
      t_min = t;
      best = w;
    }
  }
  return best->index;
}

}  // namespace pe::sched
