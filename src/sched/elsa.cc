#include "sched/elsa.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pe::sched {

ElsaScheduler::ElsaScheduler(const profile::ProfileTable& profile,
                             SimTime sla_target, ElsaParams params)
    : profile_(&profile),
      compiled_(profile),
      sla_target_(sla_target),
      params_(params) {
  assert(sla_target_ > 0);
}

ElsaScheduler::ElsaScheduler(const profile::ModelRepertoire& repertoire,
                             SimTime sla_target, ElsaParams params)
    : repertoire_(&repertoire),
      compiled_(repertoire),
      sla_target_(sla_target),
      params_(params) {
  assert(sla_target_ > 0);
  assert(!repertoire.empty());
}

double ElsaScheduler::EstimateSec(int model_id, int gpcs, int batch) const {
  // Compiled values are produced by the uncompiled path at construction,
  // so both branches return the same doubles; the single-profile form
  // serves exactly one model and answers regardless of the id either way.
  if (params_.compiled_lookups) {
    return compiled_.EstimateSec(model_id, gpcs, batch);
  }
  if (repertoire_ != nullptr) {
    return repertoire_->EstimateSec(model_id, gpcs, batch);
  }
  return profile_->LatencySec(gpcs, batch);
}

double ElsaScheduler::SlackSec(const WorkerState& worker, int batch) const {
  return SlackSec(worker, /*model_id=*/0, batch);
}

double ElsaScheduler::SlackSec(const WorkerState& worker, int model_id,
                               int batch) const {
  const double t_wait = TicksToSec(worker.wait_ticks);
  const double t_new = EstimateSec(model_id, worker.gpcs, batch);
  // Pending-swap charge: 0.0 when disabled or swap-free, so the legacy
  // predictor is reproduced exactly (x + 0.0 == x).
  const double t_swap =
      (params_.swap_cost_sec > 0.0 && worker.resident_model != model_id &&
       worker.resident_model != -1)
          ? params_.swap_cost_sec
          : 0.0;
  return TicksToSec(sla_target_) -
         params_.alpha * (t_wait + t_swap + params_.beta * t_new);
}

void ElsaScheduler::RefreshCandidates(const WorkerView& workers) {
  const std::size_t n = workers.size();
  const bool cacheable = workers.stable();
  if (cacheable && order_cached_ && order_.size() == n &&
      order_version_ == workers.layout_version()) {
    return;
  }
  // Workers are visited in ascending (gpcs, index) order regardless of
  // their position order in the view.  The server's live view keeps its
  // positions fixed within one layout, so the sort runs once per layout
  // there; ad-hoc vector views re-sort per call as before.
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(order_.begin(), order_.end(),
            [&workers](std::uint32_t a, std::uint32_t b) {
              const WorkerState& wa = workers.Get(a);
              const WorkerState& wb = workers.Get(b);
              if (wa.gpcs != wb.gpcs) return wa.gpcs < wb.gpcs;
              return wa.index < wb.index;
            });
  // Contiguous equal-gpcs runs of the sorted order, for the size-class
  // skips below.
  runs_.clear();
  for (std::size_t k = 0; k < n;) {
    const int gpcs = workers.Get(order_[k]).gpcs;
    std::size_t e = k + 1;
    while (e < n && workers.Get(order_[e]).gpcs == gpcs) ++e;
    runs_.push_back(SizeRun{gpcs, static_cast<std::uint32_t>(k),
                            static_cast<std::uint32_t>(e)});
    k = e;
  }
  order_cached_ = cacheable;
  order_version_ = workers.layout_version();
  if (slack_memo_.size() != n) {
    slack_memo_.assign(n, 0.0);
    completion_memo_.assign(n, 0.0);
    twait_memo_.assign(n, 0.0);
    slack_stamp_.assign(n, 0);
    completion_stamp_.assign(n, 0);
    twait_stamp_.assign(n, 0);
  }
}

int ElsaScheduler::OnQueryArrival(const workload::Query& query,
                                  const WorkerView& workers) {
  assert(workers.size() > 0);
  RefreshCandidates(workers);
  ++arrival_stamp_;

  const double sla_sec = TicksToSec(sla_target_);

  // Testimated,new depends only on (model, batch, gpcs); model and batch
  // are fixed within one arrival, so one lookup per distinct partition
  // size covers every candidate.
  const auto tnew_sec = [&](int gpcs) {
    if (gpcs < 0) return EstimateSec(query.model_id, gpcs, query.batch);
    const auto g = static_cast<std::size_t>(gpcs);
    if (g >= tnew_memo_.size()) {
      tnew_memo_.resize(g + 1, 0.0);
      tnew_stamp_.resize(g + 1, 0);
    }
    if (tnew_stamp_[g] != arrival_stamp_) {
      tnew_memo_[g] = EstimateSec(query.model_id, gpcs, query.batch);
      tnew_stamp_[g] = arrival_stamp_;
    }
    return tnew_memo_[g];
  };
  // Step A, the locality tie-break, and Step B consult the same predictor
  // terms; each is computed at most once per arrival (keyed by view
  // position via the arrival stamp).  The expressions are exactly
  // SlackSec / Twait + Testimated,new, so memoized values are the same
  // doubles the unmemoized path produces.  The scans read the wait
  // through WaitTicks(i) (== Get(i).wait_ticks) so a live view skips
  // whole-snapshot maintenance; gpcs comes from the candidate's size run.
  const auto twait_sec = [&](std::uint32_t i) {
    if (twait_stamp_[i] != arrival_stamp_) {
      twait_memo_[i] = TicksToSec(workers.WaitTicks(i));
      twait_stamp_[i] = arrival_stamp_;
    }
    return twait_memo_[i];
  };
  // A swap-free partition: its resident model already matches the query,
  // or it has never loaded a model (-1).
  const auto swap_free = [&](const WorkerState& w) {
    return w.resident_model == query.model_id || w.resident_model == -1;
  };
  // Pending-swap charge of candidate i (Tswap): the configured cost when
  // starting this query there would displace a different resident model,
  // else exactly 0.0 -- which makes the disabled-knob predictor the same
  // doubles as the legacy swap-oblivious one (x + 0.0 == x).
  const auto swap_sec = [&](std::uint32_t i) {
    return (params_.swap_cost_sec > 0.0 && !swap_free(workers.Get(i)))
               ? params_.swap_cost_sec
               : 0.0;
  };
  const auto slack_sec = [&](std::uint32_t i, int gpcs) {
    if (slack_stamp_[i] != arrival_stamp_) {
      slack_memo_[i] =
          sla_sec - params_.alpha * (twait_sec(i) + swap_sec(i) +
                                     params_.beta * tnew_sec(gpcs));
      slack_stamp_[i] = arrival_stamp_;
    }
    return slack_memo_[i];
  };
  const auto completion_sec = [&](std::uint32_t i, int gpcs) {
    if (completion_stamp_[i] != arrival_stamp_) {
      completion_memo_[i] = twait_sec(i) + swap_sec(i) + tnew_sec(gpcs);
      completion_stamp_[i] = arrival_stamp_;
    }
    return completion_memo_[i];
  };

  // Size-class skips, valid only when every wait is known non-negative
  // (the server's live view guarantees it; ad-hoc vector views scan in
  // full).  Slack is monotone non-increasing in Twait + Tswap under IEEE
  // rounding when alpha >= 0 (Tswap >= 0 by construction), so a class
  // whose *zero-wait, swap-free* slack is already non-positive cannot
  // contain a Step A (or locality) candidate; and completion >=
  // Testimated,new, so a class whose floor cannot beat the running Step B
  // minimum cannot improve it.  Skipping therefore changes no comparison
  // outcome -- decisions are bit-identical to the full scan.
  const bool skip_a = workers.stable() && params_.alpha >= 0.0;
  const bool skip_b = workers.stable();
  const auto zero_wait_slack = [&](int gpcs) {
    // SlackSec with Twait = 0 (0.0 + x == x exactly, so this is the same
    // double the per-candidate expression yields at zero wait).
    return sla_sec - params_.alpha * (params_.beta * tnew_sec(gpcs));
  };

  // Step A: smallest partition whose predicted slack is positive.
  for (const SizeRun& run : runs_) {
    if (skip_a && zero_wait_slack(run.gpcs) <= 0.0) continue;
    for (std::uint32_t k = run.begin; k < run.end; ++k) {
      const std::uint32_t i = order_[k];
      if (slack_sec(i, run.gpcs) <= 0.0) continue;
      const WorkerState& w = workers.Get(i);
      if (w.failed) continue;
      // Among positive-slack candidates, a swap-free partition wins over
      // the default choice when its predicted completion ties within the
      // locality window: the query avoids a model-swap penalty at no
      // predicted SLA cost.
      if (params_.locality_tie_sec > 0.0 && !swap_free(w)) {
        const double bound =
            completion_sec(i, run.gpcs) + params_.locality_tie_sec;
        for (const SizeRun& local : runs_) {
          if (skip_a && zero_wait_slack(local.gpcs) <= 0.0) continue;
          for (std::uint32_t k2 = local.begin; k2 < local.end; ++k2) {
            const std::uint32_t j = order_[k2];
            // Pure predicates conjoined, so evaluation order is free;
            // the memoized slack goes first to keep Get off the miss
            // path.
            if (slack_sec(j, local.gpcs) <= 0.0) continue;
            const WorkerState& c = workers.Get(j);
            if (c.failed) continue;
            if (!swap_free(c)) continue;
            if (completion_sec(j, local.gpcs) <= bound) return c.index;
          }
        }
      }
      return w.index;
    }
  }

  // Step B: no partition satisfies the SLA; pick minimum completion time.
  // Failed partitions are excluded here too; if every partition is failed
  // the arrival is declined (kNoAssignment) and the server parks it until
  // recovery.
  double t_min = std::numeric_limits<double>::infinity();
  int best = kNoAssignment;
  for (const SizeRun& run : runs_) {
    if (skip_b && best != kNoAssignment && !(tnew_sec(run.gpcs) < t_min)) {
      continue;
    }
    for (std::uint32_t k = run.begin; k < run.end; ++k) {
      const std::uint32_t i = order_[k];
      const WorkerState& w = workers.Get(i);
      if (w.failed) continue;
      const double t = completion_sec(i, run.gpcs);
      if (best == kNoAssignment || t < t_min) {
        t_min = t;
        best = w.index;
      }
    }
  }
  return best;
}

}  // namespace pe::sched
