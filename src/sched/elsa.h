// ELSA: ELastic Scheduling Algorithm (paper Section IV-C, Algorithm 2).
//
// For an arriving query, ELSA predicts the SLA slack it would have on each
// partition (Eq. 1-2):
//
//   Twait      = sum(Testimated,queued) + Tremaining,current
//   SLA slack  = SLAtarget - alpha * (Twait + beta * Testimated,new)
//
// Step A: walk partitions in ascending size order and bind the query to the
// first one whose predicted slack is positive -- preferring small partitions
// maximizes GPU utilization when slack allows.
// Step B: if no partition can meet the SLA, bind to the partition with the
// minimum completion time (Twait + Testimated,new), evacuating the doomed
// query as fast as possible so it disturbs other queries the least.
//
// Testimated comes from the one-time profiled lookup table; Twait comes in
// precomputed through WorkerState (the server derives it from each queued
// query's own model profile plus the in-flight query's elapsed timestamp).
//
// Hot-path mechanics: Testimated lookups go through a CompiledProfile
// (dense arrays instead of map + lower_bound; `compiled_lookups` in
// ElsaParams re-enables the uncompiled path for the reference engine),
// the size-ascending candidate order is computed once per layout and
// cached against a stable WorkerView's layout_version() instead of
// re-sorting every arrival, Testimated,new is computed once per distinct
// partition size per arrival (it depends only on (model, batch, gpcs)),
// and each candidate's slack/completion prediction is computed at most
// once per arrival (Step A, the locality tie-break, and Step B share the
// memo).  The cached order groups workers into contiguous equal-size
// runs; when even a zero-wait worker of a size class has non-positive
// slack, the whole class is skipped -- valid because slack is monotone
// non-increasing in Twait under IEEE rounding (for alpha >= 0), so every
// member would have failed the same test.  None of this changes any
// decision: compiled values are bit-identical by construction and the
// visit order (and every comparison outcome) is the same as before.
//
// Multi-model extension: constructed from a ModelRepertoire, ELSA routes
// every Testimated,new lookup through the *arriving query's* model profile,
// and -- when `locality_tie_sec` is enabled -- prefers a positive-slack
// partition whose resident model already matches the query whenever its
// predicted completion ties the default choice within the threshold,
// avoiding a model-swap penalty at no predicted SLA cost.  FIFS remains
// model-oblivious as the baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "profile/compiled_profile.h"
#include "profile/model_repertoire.h"
#include "profile/profile_table.h"
#include "sched/scheduler.h"

namespace pe::sched {

struct ElsaParams {
  // Tuning knobs of Eq. 2 ("configurable parameters we employ to tune the
  // SLA slack predictor"); 1.0/1.0 makes the predictor exact under
  // noise-free execution.
  double alpha = 1.0;
  double beta = 1.0;
  // Model-locality tie-break window: a swap-free partition (resident
  // model already matching the query, or never loaded) wins over the
  // default Step A choice when its predicted completion is within this
  // many seconds of the default's.  0 (default) disables the tie-break,
  // reproducing the paper's model-oblivious Algorithm 2 exactly.
  double locality_tie_sec = 0.0;
  // Pending model-swap charge folded into the slack predictor: a
  // candidate whose resident model differs from the arriving query's
  // pays this many extra seconds inside Twait, i.e.
  //   slack      = SLA - alpha * (Twait + Tswap + beta * Tnew)
  //   completion = Twait + Tswap + Tnew
  // Set it to the simulator's ServerConfig::model_swap_cost (in seconds)
  // so the predictor stays honest when swaps are expensive: without the
  // term, Step A systematically over-estimates the slack of swap-needing
  // partitions and binds doomed queries to them.  0 (default) restores
  // the swap-oblivious predictor bit-for-bit (the added term is exactly
  // +0.0), which is what engine_golden_test pins.
  double swap_cost_sec = 0.0;
  // Route Testimated lookups through the dense CompiledProfile (default).
  // false restores the uncompiled map/lower_bound path -- the decisions
  // are identical either way; the flag exists so the engine-throughput
  // bench can measure a faithful pre-optimization baseline.
  bool compiled_lookups = true;
};

class ElsaScheduler final : public Scheduler {
 public:
  // Single-model form: `profile` must outlive the scheduler.  `sla_target`
  // is the model's SLA target (Section V: N x the max-batch latency on
  // GPU(7)).
  ElsaScheduler(const profile::ProfileTable& profile, SimTime sla_target,
                ElsaParams params = ElsaParams{});

  // Multi-model form: Testimated lookups route through the arriving
  // query's model profile.  `repertoire` must outlive the scheduler.
  ElsaScheduler(const profile::ModelRepertoire& repertoire,
                SimTime sla_target, ElsaParams params = ElsaParams{});

  using Scheduler::OnQueryArrival;
  using Scheduler::RequeueOrphan;

  int OnQueryArrival(const workload::Query& query,
                     const WorkerView& workers) override;
  bool UsesCentralQueue() const override { return false; }
  // Reconfiguration hooks: ELSA's only cross-call state is the per-layout
  // candidate order, which is keyed on the stable view's layout_version()
  // and self-invalidates when the server swaps layouts, and the default
  // RequeueOrphan (re-run Step A/B against the new layout) is exactly the
  // right policy for orphans -- so the base-class defaults apply.
  std::string name() const override { return "ELSA"; }

  SimTime sla_target() const { return sla_target_; }
  const ElsaParams& params() const { return params_; }

  // Predicted slack of scheduling `batch` of model 0 on a worker (exposed
  // for tests and for the slack-visualisation example).
  double SlackSec(const WorkerState& worker, int batch) const;

  // Model-aware form of the slack predictor.
  double SlackSec(const WorkerState& worker, int model_id, int batch) const;

 private:
  double EstimateSec(int model_id, int gpcs, int batch) const;
  // Rebuilds the (gpcs, index)-ascending candidate order unless it is
  // already cached for this view's layout; also sizes the per-arrival
  // memo arrays.
  void RefreshCandidates(const WorkerView& workers);

  // Exactly one of the two sources is set.
  const profile::ProfileTable* profile_ = nullptr;
  const profile::ModelRepertoire* repertoire_ = nullptr;
  profile::CompiledProfile compiled_;
  SimTime sla_target_;
  ElsaParams params_;

  // Candidate order (view positions, ascending by (gpcs, index)), cached
  // across arrivals while the stable view's layout_version() holds,
  // grouped into contiguous equal-gpcs runs for the size-class skip.
  struct SizeRun {
    int gpcs = 0;
    std::uint32_t begin = 0;  // [begin, end) into order_
    std::uint32_t end = 0;
  };
  std::vector<std::uint32_t> order_;
  std::vector<SizeRun> runs_;
  std::uint64_t order_version_ = 0;
  bool order_cached_ = false;

  // Per-arrival memo of the predictor terms, stamped by arrival so the
  // arrays never need clearing.  tnew is keyed by gpcs (the only variable
  // of Testimated,new within one arrival); slack/completion by candidate.
  std::uint64_t arrival_stamp_ = 0;
  std::vector<double> tnew_memo_;
  std::vector<std::uint64_t> tnew_stamp_;
  std::vector<double> twait_memo_;
  std::vector<std::uint64_t> twait_stamp_;
  std::vector<double> slack_memo_;
  std::vector<double> completion_memo_;
  std::vector<std::uint64_t> slack_stamp_;
  std::vector<std::uint64_t> completion_stamp_;
};

}  // namespace pe::sched
