// ELSA: ELastic Scheduling Algorithm (paper Section IV-C, Algorithm 2).
//
// For an arriving query, ELSA predicts the SLA slack it would have on each
// partition (Eq. 1-2):
//
//   Twait      = sum(Testimated,queued) + Tremaining,current
//   SLA slack  = SLAtarget - alpha * (Twait + beta * Testimated,new)
//
// Step A: walk partitions in ascending size order and bind the query to the
// first one whose predicted slack is positive -- preferring small partitions
// maximizes GPU utilization when slack allows.
// Step B: if no partition can meet the SLA, bind to the partition with the
// minimum completion time (Twait + Testimated,new), evacuating the doomed
// query as fast as possible so it disturbs other queries the least.
//
// Testimated comes from the one-time profiled lookup table; Twait comes in
// precomputed through WorkerState (the server derives it from each queued
// query's own model profile plus the in-flight query's elapsed timestamp).
//
// Multi-model extension: constructed from a ModelRepertoire, ELSA routes
// every Testimated,new lookup through the *arriving query's* model profile,
// and -- when `locality_tie_sec` is enabled -- prefers a positive-slack
// partition whose resident model already matches the query whenever its
// predicted completion ties the default choice within the threshold,
// avoiding a model-swap penalty at no predicted SLA cost.  FIFS remains
// model-oblivious as the baseline.
#pragma once

#include "profile/model_repertoire.h"
#include "profile/profile_table.h"
#include "sched/scheduler.h"

namespace pe::sched {

struct ElsaParams {
  // Tuning knobs of Eq. 2 ("configurable parameters we employ to tune the
  // SLA slack predictor"); 1.0/1.0 makes the predictor exact under
  // noise-free execution.
  double alpha = 1.0;
  double beta = 1.0;
  // Model-locality tie-break window: a swap-free partition (resident
  // model already matching the query, or never loaded) wins over the
  // default Step A choice when its predicted completion is within this
  // many seconds of the default's.  0 (default) disables the tie-break,
  // reproducing the paper's model-oblivious Algorithm 2 exactly.
  double locality_tie_sec = 0.0;
};

class ElsaScheduler final : public Scheduler {
 public:
  // Single-model form: `profile` must outlive the scheduler.  `sla_target`
  // is the model's SLA target (Section V: N x the max-batch latency on
  // GPU(7)).
  ElsaScheduler(const profile::ProfileTable& profile, SimTime sla_target,
                ElsaParams params = ElsaParams{});

  // Multi-model form: Testimated lookups route through the arriving
  // query's model profile.  `repertoire` must outlive the scheduler.
  ElsaScheduler(const profile::ModelRepertoire& repertoire,
                SimTime sla_target, ElsaParams params = ElsaParams{});

  int OnQueryArrival(const workload::Query& query,
                     const std::vector<WorkerState>& workers) override;
  bool UsesCentralQueue() const override { return false; }
  // Reconfiguration hooks: ELSA keeps no per-worker state, and the default
  // RequeueOrphan (re-run Step A/B against the new layout) is exactly the
  // right policy for orphans, so the base-class defaults apply.
  std::string name() const override { return "ELSA"; }

  SimTime sla_target() const { return sla_target_; }
  const ElsaParams& params() const { return params_; }

  // Predicted slack of scheduling `batch` of model 0 on a worker (exposed
  // for tests and for the slack-visualisation example).
  double SlackSec(const WorkerState& worker, int batch) const;

  // Model-aware form of the slack predictor.
  double SlackSec(const WorkerState& worker, int model_id, int batch) const;

 private:
  double EstimateSec(int model_id, int gpcs, int batch) const;

  // Exactly one of the two sources is set.
  const profile::ProfileTable* profile_ = nullptr;
  const profile::ModelRepertoire* repertoire_ = nullptr;
  SimTime sla_target_;
  ElsaParams params_;
};

}  // namespace pe::sched
