#include "sched/fifs.h"

namespace pe::sched {

int FifsScheduler::OnQueryArrival(const workload::Query& query,
                                  const WorkerView& workers) {
  (void)query;
  // Ties among several idle GPUs are broken toward the largest partition --
  // the most charitable reading of FIFS on a heterogeneous server.  The
  // Figure 5(b) pathology still occurs whenever the only idle GPUs are
  // small ones, which is exactly the loaded regime the paper targets.
  int best = kNoAssignment;
  int best_gpcs = -1;
  const std::size_t n = workers.size();
  for (std::size_t i = 0; i < n; ++i) {
    const WorkerState& w = workers.Get(i);
    if (w.idle && w.gpcs > best_gpcs) {
      best = w.index;
      best_gpcs = w.gpcs;
    }
  }
  return best;
}

}  // namespace pe::sched
