#include "sched/fifs.h"

namespace pe::sched {

int FifsScheduler::OnQueryArrival(const workload::Query& query,
                                  const WorkerView& workers) {
  (void)query;
  // Fast path: the server's live view maintains the (max gpcs, lowest
  // index) idle worker incrementally, so the per-arrival cost is O(log W)
  // instead of an O(W) scan.  Equivalence with the scan below (the
  // reference path, exercised by engine_golden_test) is exact: both
  // select the idle worker with maximum gpcs, lowest index among ties,
  // and kNoAssignment when none is idle.
  const int fast = workers.MaxGpcsIdleWorker();
  if (fast != WorkerView::kIdleScanUnsupported) return fast;

  // Ties among several idle GPUs are broken toward the largest partition --
  // the most charitable reading of FIFS on a heterogeneous server.  The
  // Figure 5(b) pathology still occurs whenever the only idle GPUs are
  // small ones, which is exactly the loaded regime the paper targets.
  int best = kNoAssignment;
  int best_gpcs = -1;
  const std::size_t n = workers.size();
  for (std::size_t i = 0; i < n; ++i) {
    const WorkerState& w = workers.Get(i);
    if (w.idle && w.gpcs > best_gpcs) {
      best = w.index;
      best_gpcs = w.gpcs;
    }
  }
  return best;
}

}  // namespace pe::sched
