// First-idle first-serve (FIFS): the paper's baseline policy (Section III-C),
// as employed by NVIDIA Triton-style multi-GPU servers.  An arriving query
// is dispatched to an idle GPU if one exists; otherwise it waits in the
// central FIFO and the first GPU to become idle takes it.
//
// FIFS is heterogeneity-unaware in the sense that it never *waits* for a
// better-suited GPU: any idle GPU absorbs the query immediately.  Among
// several idle GPUs we break ties toward the largest partition (the most
// charitable reading); Figure 5(b)'s pathology -- a heavy query landing on
// a small GPU because that is the only idle one -- still occurs whenever
// the server is loaded.
#pragma once

#include "sched/scheduler.h"

namespace pe::sched {

class FifsScheduler final : public Scheduler {
 public:
  using Scheduler::OnQueryArrival;
  using Scheduler::RequeueOrphan;

  int OnQueryArrival(const workload::Query& query,
                     const WorkerView& workers) override;
  bool UsesCentralQueue() const override { return true; }

  // Reconfiguration orphans rejoin the central FIFO rather than being
  // re-bound directly: the server inserts them ahead of arrivals held
  // during the downtime window, preserving strict FIFO service order
  // across the layout swap.
  int RequeueOrphan(const workload::Query& query,
                    const WorkerView& workers) override {
    (void)query;
    (void)workers;
    return kNoAssignment;
  }

  std::string name() const override { return "FIFS"; }
};

}  // namespace pe::sched
