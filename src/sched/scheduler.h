// Scheduler interface.
//
// The inference server calls the scheduler at three points:
//  * when a query arrives: the scheduler may bind it to a partition's local
//    queue immediately (ELSA-style) or leave it in the server's central
//    FIFO (FIFS-style) by returning kNoAssignment;
//  * when a partition goes idle with a non-empty central queue: servers
//    with central-queue schedulers hand the head query to that partition
//    ("first idle, first serve");
//  * when the server swaps partition layouts mid-run (a live MIG
//    reconfiguration): OnReconfigure announces the new worker set, and
//    RequeueOrphan re-places every query that was queued on a partition
//    that no longer exists.
//
// Schedulers see workers through WorkerState snapshots; `wait_ticks` is the
// paper's Twait (Eq. 1): the estimated execution time of everything queued
// locally plus the estimated remainder of the in-flight query, both derived
// from the profiled lookup table.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "workload/trace.h"

namespace pe::sched {

struct WorkerState {
  int index = 0;
  int gpcs = 0;
  bool idle = true;             // not executing and local queue empty
  SimTime wait_ticks = 0;       // Twait per Eq. 1
  std::size_t queue_length = 0;
  // Model most recently started on this partition (the one its weights
  // are loaded for); -1 until the first query starts.  Model-locality-
  // aware schedulers prefer partitions whose resident model matches the
  // arriving query so the server avoids a model-swap penalty.
  int resident_model = -1;
};

// Sentinel: leave the query in the central queue.
inline constexpr int kNoAssignment = -1;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Decide where an arriving query goes: a worker index, or kNoAssignment
  // to hold it centrally.
  virtual int OnQueryArrival(const workload::Query& query,
                             const std::vector<WorkerState>& workers) = 0;

  // True if unassigned queries wait in a central FIFO that idle workers
  // pull from.  Schedulers returning kNoAssignment must return true here.
  virtual bool UsesCentralQueue() const = 0;

  // Lifecycle hook: the server finished a live reconfiguration and the
  // worker set changed from `old_workers` to `new_workers` (worker indices
  // are NOT stable across the swap).  Stateless schedulers -- everything in
  // this repository scores workers from per-call snapshots -- need no
  // action; schedulers that cache per-worker state must invalidate it here.
  virtual void OnReconfigure(const std::vector<WorkerState>& old_workers,
                             const std::vector<WorkerState>& new_workers) {
    (void)old_workers;
    (void)new_workers;
  }

  // Re-places a query orphaned by a reconfiguration (it was sitting in a
  // removed partition's local queue, never started).  Returns a new worker
  // index or kNoAssignment to move it to the central FIFO (central-queue
  // schedulers only).  Default: treat the orphan like a fresh arrival.
  virtual int RequeueOrphan(const workload::Query& query,
                            const std::vector<WorkerState>& workers) {
    return OnQueryArrival(query, workers);
  }

  virtual std::string name() const = 0;
};

}  // namespace pe::sched
