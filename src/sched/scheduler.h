// Scheduler interface.
//
// The inference server calls the scheduler at two points:
//  * when a query arrives: the scheduler may bind it to a partition's local
//    queue immediately (ELSA-style) or leave it in the server's central
//    FIFO (FIFS-style) by returning kNoAssignment;
//  * when a partition goes idle with a non-empty central queue: servers
//    with central-queue schedulers hand the head query to that partition
//    ("first idle, first serve").
//
// Schedulers see workers through WorkerState snapshots; `wait_ticks` is the
// paper's Twait (Eq. 1): the estimated execution time of everything queued
// locally plus the estimated remainder of the in-flight query, both derived
// from the profiled lookup table.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "workload/trace.h"

namespace pe::sched {

struct WorkerState {
  int index = 0;
  int gpcs = 0;
  bool idle = true;             // not executing and local queue empty
  SimTime wait_ticks = 0;       // Twait per Eq. 1
  std::size_t queue_length = 0;
};

// Sentinel: leave the query in the central queue.
inline constexpr int kNoAssignment = -1;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Decide where an arriving query goes: a worker index, or kNoAssignment
  // to hold it centrally.
  virtual int OnQueryArrival(const workload::Query& query,
                             const std::vector<WorkerState>& workers) = 0;

  // True if unassigned queries wait in a central FIFO that idle workers
  // pull from.  Schedulers returning kNoAssignment must return true here.
  virtual bool UsesCentralQueue() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace pe::sched
