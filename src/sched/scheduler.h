// Scheduler interface.
//
// The inference server calls the scheduler at three points:
//  * when a query arrives: the scheduler may bind it to a partition's local
//    queue immediately (ELSA-style) or leave it in the server's central
//    FIFO (FIFS-style) by returning kNoAssignment;
//  * when a partition goes idle with a non-empty central queue: servers
//    with central-queue schedulers hand the head query to that partition
//    ("first idle, first serve");
//  * when the server swaps partition layouts mid-run (a live MIG
//    reconfiguration): OnReconfigure announces the new worker set, and
//    RequeueOrphan re-places every query that was queued on a partition
//    that no longer exists.
//
// Schedulers see workers through WorkerState snapshots; `wait_ticks` is the
// paper's Twait (Eq. 1): the estimated execution time of everything queued
// locally plus the estimated remainder of the in-flight query, both derived
// from the profiled lookup table.
//
// Snapshots are delivered through a WorkerView -- an indexed, read-only
// window onto the worker set.  The server's live view materializes a
// worker's state lazily and only when it actually changed, so consulting
// the scheduler no longer copies (or re-sorts) all W workers per arrival;
// VectorWorkerView wraps a plain snapshot vector for tests and the
// reference engine path.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "workload/trace.h"

namespace pe::sched {

struct WorkerState {
  int index = 0;
  int gpcs = 0;
  bool idle = true;             // not executing and local queue empty
  SimTime wait_ticks = 0;       // Twait per Eq. 1
  std::size_t queue_length = 0;
  // Model most recently started on this partition (the one its weights
  // are loaded for); -1 until the first query starts.  Model-locality-
  // aware schedulers prefer partitions whose resident model matches the
  // arriving query so the server avoids a model-swap penalty.
  int resident_model = -1;
  // True while the partition is failed (fault injection): it executes
  // nothing and must not receive work.  Schedulers skip failed workers;
  // when every worker is failed they return kNoAssignment and the server
  // holds arrivals centrally until recovery.  `idle` is always false for
  // a failed worker.
  bool failed = false;
};

// Sentinel: leave the query in the central queue.
inline constexpr int kNoAssignment = -1;

// Read-only, indexed access to the current worker set.  Get(i) returns the
// state of the worker at position i, current as of the consultation; the
// reference stays valid until the next simulation event mutates that
// worker.
class WorkerView {
 public:
  // Sentinel for MaxGpcsIdleWorker(): this view keeps no incremental idle
  // index; the caller must scan the workers itself.
  static constexpr int kIdleScanUnsupported = -2;

  virtual ~WorkerView() = default;

  virtual std::size_t size() const = 0;
  virtual const WorkerState& Get(std::size_t i) const = 0;

  // The worker FIFS's arrival rule picks: idle, maximum gpcs, lowest
  // index among ties -- exactly the winner of the ascending-index strict
  // `>` scan.  kNoAssignment when no worker is idle; the default
  // kIdleScanUnsupported means the view maintains no idle index (ad-hoc
  // wrappers), telling the scheduler to fall back to the O(W) scan.  The
  // server's live view answers from an incrementally maintained ordered
  // set in O(log W).
  virtual int MaxGpcsIdleWorker() const { return kIdleScanUnsupported; }

  // Twait of worker i alone (== Get(i).wait_ticks).  The one
  // time-dependent field; a live view can answer it without
  // re-materializing the whole snapshot, which is what ELSA's inner scan
  // is bound by at large W.  Time dependence is tracked by a view-global
  // epoch the engine advances once per distinct simulated instant, so a
  // burst of same-timestamp consultations shares one refresh per worker.
  virtual SimTime WaitTicks(std::size_t i) const { return Get(i).wait_ticks; }

  // True for a long-lived, server-owned view whose Get() positions are
  // stable within one layout and whose layout_version() uniquely
  // identifies the worker set process-wide.  Schedulers may then cache
  // layout-derived state (e.g. ELSA's size-ascending candidate order)
  // keyed on the version.  Ad-hoc wrappers (VectorWorkerView) return
  // false: their contents can differ call to call, so nothing about them
  // may be cached.
  virtual bool stable() const { return false; }
  virtual std::uint64_t layout_version() const { return 0; }
};

// Wraps a snapshot vector as a WorkerView (tests, the reference engine
// path, and the vector convenience overloads below).  Borrows the vector.
class VectorWorkerView final : public WorkerView {
 public:
  explicit VectorWorkerView(const std::vector<WorkerState>& states)
      : states_(states) {}

  std::size_t size() const override { return states_.size(); }
  const WorkerState& Get(std::size_t i) const override {
    assert(i < states_.size());
    return states_[i];
  }

 private:
  const std::vector<WorkerState>& states_;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Decide where an arriving query goes: a worker index, or kNoAssignment
  // to hold it centrally.
  virtual int OnQueryArrival(const workload::Query& query,
                             const WorkerView& workers) = 0;

  // Convenience overload for callers holding a snapshot vector.  Derived
  // classes re-expose it with `using Scheduler::OnQueryArrival;`.
  int OnQueryArrival(const workload::Query& query,
                     const std::vector<WorkerState>& workers) {
    const VectorWorkerView view(workers);
    return OnQueryArrival(query, view);
  }

  // True if unassigned queries wait in a central FIFO that idle workers
  // pull from.  Schedulers returning kNoAssignment must return true here.
  virtual bool UsesCentralQueue() const = 0;

  // Lifecycle hook: the server finished a live reconfiguration and the
  // worker set changed from `old_workers` to `new_workers` (worker indices
  // are NOT stable across the swap).  Schedulers that cache per-worker
  // state must invalidate it here; per-layout caches keyed on a stable
  // view's layout_version() self-invalidate and need no action.
  virtual void OnReconfigure(const std::vector<WorkerState>& old_workers,
                             const std::vector<WorkerState>& new_workers) {
    (void)old_workers;
    (void)new_workers;
  }

  // Re-places a query orphaned by a reconfiguration (it was sitting in a
  // removed partition's local queue, never started).  Returns a new worker
  // index or kNoAssignment to move it to the central FIFO (central-queue
  // schedulers only).  Default: treat the orphan like a fresh arrival.
  virtual int RequeueOrphan(const workload::Query& query,
                            const WorkerView& workers) {
    return OnQueryArrival(query, workers);
  }

  int RequeueOrphan(const workload::Query& query,
                    const std::vector<WorkerState>& workers) {
    const VectorWorkerView view(workers);
    return RequeueOrphan(query, view);
  }

  virtual std::string name() const = 0;
};

}  // namespace pe::sched
