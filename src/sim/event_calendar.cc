#include "sim/event_calendar.h"

#include <algorithm>
#include <cassert>

namespace pe::sim {

namespace {

// Starting window: ~1 ms of simulated time per bucket.  Only a warm-up
// value -- the first re-anchor or scan-pressure rebuild replaces it with a
// width derived from the actual event density.
constexpr SimTime kInitialWidth = SimTime{1} << 20;

// Width cap so Horizon() (num_buckets * width) can never overflow SimTime:
// 2^16 buckets * 2^40 ticks = 2^56 < 2^63.  Events farther out than the
// capped horizon simply wait in the spill across several re-anchors.
constexpr SimTime kMaxWidth = SimTime{1} << 40;

constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;

// Scan-pressure rebuild: every kSampleWindow pops, rebuild if the average
// cursor-bucket scan exceeded kScanThreshold events (and the queue is big
// enough for geometry to matter).
constexpr std::uint32_t kSampleWindow = 64;
constexpr std::uint64_t kScanThreshold = 8;
constexpr std::size_t kRebuildMinSize = 32;

// Bucket count ~2x the live event count keeps expected occupancy below
// one event per bucket.
std::size_t BucketTarget(std::size_t events) {
  std::size_t target = kMinBuckets;
  while (target < 2 * events && target < kMaxBuckets) target <<= 1;
  return target;
}

}  // namespace

EventCalendar::EventCalendar() {
  num_buckets_ = kMinBuckets;
  buckets_.resize(num_buckets_);
  width_ = kInitialWidth;
}

void EventCalendar::Clear() {
  for (auto& bucket : buckets_) bucket.clear();
  overflow_.clear();
  overflow_sorted_ = true;
  wheel_count_ = 0;
  size_ = 0;
  cursor_ = 0;
  base_ = 0;  // incarnations restart at time zero; re-anchor re-aligns
  cached_ = false;
  sampled_pops_ = 0;
  sampled_scans_ = 0;
  // width_/num_buckets_ deliberately survive: the next incarnation starts
  // with the adapted geometry (pop order is geometry-independent, so this
  // is purely a warm-up saving).
}

void EventCalendar::Place(const Event& ev) {
  if (ev.time >= Horizon()) {
    // Far future: the spill absorbs it until a re-anchor promotes it.
    overflow_.push_back(ev);
    overflow_sorted_ = overflow_sorted_ && overflow_.size() == 1;
    return;
  }
  std::size_t idx = cursor_;
  if (ev.time >= base_) {
    const auto raw =
        static_cast<std::size_t>((ev.time - base_) / width_);
    // Events at or before the cursor's window (the engine pushes at times
    // >= now, which can still precede the *window* lower bound) clamp into
    // the cursor bucket; the min-scan there keeps them correctly ordered.
    if (raw > cursor_) idx = raw;
  }
  buckets_[idx].push_back(ev);
  ++wheel_count_;
}

void EventCalendar::Push(const Event& ev) {
  Place(ev);
  ++size_;
  cached_ = false;
}

void EventCalendar::ReAnchor() {
  assert(wheel_count_ == 0 && !overflow_.empty());
  if (!overflow_sorted_) {
    std::sort(overflow_.begin(), overflow_.end(),
              [](const Event& a, const Event& b) { return a > b; });
    overflow_sorted_ = true;
  }
  const SimTime min_time = overflow_.back().time;
  const SimTime max_time = overflow_.front().time;
  // Width from the spill's own density: a clustered spill gets fine
  // buckets, a sparse one coarse buckets.
  width_ = std::clamp<SimTime>(
      (max_time - min_time) / static_cast<SimTime>(overflow_.size()), 1,
      kMaxWidth);
  const std::size_t target = BucketTarget(overflow_.size());
  if (target != num_buckets_) {
    buckets_.resize(target);
    num_buckets_ = target;
  }
  base_ = min_time - (min_time % width_);
  cursor_ = 0;
  // Promote everything inside the new horizon (at least the minimum --
  // base_ <= min_time < base_ + width_ -- so re-anchoring always makes
  // progress even against a wider-than-horizon spill).
  const SimTime horizon = Horizon();
  while (!overflow_.empty() && overflow_.back().time < horizon) {
    const Event& ev = overflow_.back();
    buckets_[static_cast<std::size_t>((ev.time - base_) / width_)].push_back(
        ev);
    ++wheel_count_;
    overflow_.pop_back();
  }
}

void EventCalendar::Rebuild() {
  // Pull every live event out, re-derive the geometry from their span,
  // and re-place them.  O(n + buckets), amortized across the sampling
  // window that triggered it.
  std::vector<Event> scratch;
  scratch.reserve(size_);
  for (auto& bucket : buckets_) {
    scratch.insert(scratch.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  scratch.insert(scratch.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();
  overflow_sorted_ = true;
  wheel_count_ = 0;
  assert(scratch.size() == size_);

  SimTime min_time = scratch.front().time;
  SimTime max_time = min_time;
  for (const Event& ev : scratch) {
    min_time = std::min(min_time, ev.time);
    max_time = std::max(max_time, ev.time);
  }
  width_ = std::clamp<SimTime>(
      (max_time - min_time) / static_cast<SimTime>(scratch.size()), 1,
      kMaxWidth);
  const std::size_t target = BucketTarget(scratch.size());
  if (target != num_buckets_) {
    buckets_.resize(target);
    num_buckets_ = target;
  }
  base_ = min_time - (min_time % width_);
  cursor_ = 0;
  for (const Event& ev : scratch) Place(ev);
  cached_ = false;
}

void EventCalendar::Locate() {
  assert(size_ > 0);
  for (;;) {
    if (wheel_count_ == 0) {
      ReAnchor();
      continue;
    }
    // Invariant: every wheel event lives at or after cursor_, so the walk
    // cannot run off the end while wheel_count_ > 0.
    while (buckets_[cursor_].empty()) {
      ++cursor_;
      assert(cursor_ < num_buckets_);
    }
    const std::vector<Event>& bucket = buckets_[cursor_];
    // The first non-empty bucket holds the global minimum: later buckets
    // cover strictly later windows and the spill lies beyond the horizon.
    std::size_t best = 0;
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      if (bucket[best] > bucket[i]) best = i;
    }
    sampled_scans_ += bucket.size();
    cached_ = true;
    cached_pos_ = best;
    return;
  }
}

const Event* EventCalendar::Peek() {
  if (size_ == 0) return nullptr;
  if (!cached_) Locate();
  return &buckets_[cursor_][cached_pos_];
}

Event EventCalendar::Pop() {
  assert(size_ > 0);
  if (!cached_) Locate();
  std::vector<Event>& bucket = buckets_[cursor_];
  const Event ev = bucket[cached_pos_];
  bucket[cached_pos_] = bucket.back();
  bucket.pop_back();
  --wheel_count_;
  --size_;
  cached_ = false;
  if (++sampled_pops_ >= kSampleWindow) {
    // Scan pressure: the width is too coarse for the event density (many
    // events per cursor bucket); re-derive geometry from the live span.
    if (sampled_scans_ > kSampleWindow * kScanThreshold &&
        size_ > kRebuildMinSize) {
      Rebuild();
    }
    sampled_pops_ = 0;
    sampled_scans_ = 0;
  }
  return ev;
}

}  // namespace pe::sim
