// A two-level bucketed event calendar: the fast engine's pending-event
// queue, replacing the binary heap over every worker/frontend/reconfig
// event.
//
// Level 1 is a near-future bucket wheel: `num_buckets` contiguous windows
// of `width` ticks each starting at `base`, one unsorted vector of events
// per window.  Pushing an event whose time falls inside the wheel horizon
// is an O(1) append; popping scans the cursor bucket (the first that can
// still hold the minimum) for the smallest `(time, seq)` key.  With the
// width adapted so buckets hold O(1) events, the dominant completion ->
// dispatch -> completion cycle costs O(1) amortized per event instead of
// the heap's O(log E).
//
// Level 2 is the overflow spill: events beyond the wheel horizon -- far
// future completions, reconfiguration deadlines, and out-of-order arrival
// injections that fell off the server's sorted cursor -- append to a spill
// vector that is sorted (descending, so promotion pops from the back) only
// when the wheel next exhausts.  Re-anchoring then moves the wheel to the
// earliest spilled event, re-derives the bucket width from the spill's
// span, and promotes every event inside the new horizon.
//
// Determinism: Pop() always removes the exact `(time, seq)` minimum of the
// whole structure -- the bucket geometry (width, count, anchor) only
// affects *where* events wait, never the order they leave in.  The pop
// sequence is therefore the same total order a single binary heap
// produces, which is what lets the engine swap the heap for the calendar
// without perturbing a single simulation result (engine_golden_test and
// event_calendar_test pin this).
//
// Geometry adapts in two deterministic ways, both pure functions of the
// queue's content history:
//  * re-anchor (wheel exhausted): width := spill span / spill size, so a
//    clustered spill gets fine buckets and a sparse one coarse buckets;
//  * scan pressure (steady state): when the average cursor-bucket scan
//    length over a sampling window exceeds a threshold, the calendar
//    rebuilds itself around the live events' span -- this catches a width
//    that started too coarse for the event density.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace pe::sim {

// The engine's event record.  24 bytes: time + the shared seq tie-breaker
// + a packed payload; small enough that bucket vectors stay cache-friendly.
enum class EventType : std::uint8_t {
  kArrival,
  kFrontendDone,
  kWorkerDone,
  kReconfigDone
};

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;      // tie-breaker: deterministic FIFO order
  std::uint32_t payload = 0;  // query index, worker index, or reconfig gen
  EventType type = EventType::kArrival;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

class EventCalendar {
 public:
  EventCalendar();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Removes every event but keeps bucket/spill capacity and the adapted
  // geometry: a server re-used across incarnations re-learns nothing.
  // (Geometry carry-over cannot perturb results -- see the determinism
  // note above.)
  void Clear();

  // O(1) amortized.  `ev.time` may be arbitrarily far in the future (the
  // spill absorbs it) and may precede the wheel cursor's window (the event
  // is clamped into the cursor bucket, which keeps the pop order exact for
  // the engine's pushes-at-or-after-now contract).
  void Push(const Event& ev);

  // The (time, seq)-minimum pending event, or nullptr when empty.  May
  // advance the cursor, re-anchor the wheel, or rebuild geometry -- all
  // deterministic -- and caches the located minimum for the Pop() that
  // typically follows.
  const Event* Peek();

  // Removes and returns the minimum.  Requires !empty().
  Event Pop();

 private:
  void Locate();        // positions cached_* on the current minimum
  void ReAnchor();      // wheel exhausted: promote from the sorted spill
  void Rebuild();       // scan pressure: re-derive geometry from content
  void Place(const Event& ev);  // wheel/spill placement (no size_ change)
  SimTime Horizon() const {
    return base_ + static_cast<SimTime>(num_buckets_) * width_;
  }

  std::vector<std::vector<Event>> buckets_;  // the wheel, one per window
  std::size_t num_buckets_ = 0;              // power of two
  SimTime width_ = 0;                        // window ticks per bucket
  SimTime base_ = 0;      // lower time bound of bucket 0's window
  std::size_t cursor_ = 0;  // first bucket that can hold the minimum
  std::size_t wheel_count_ = 0;

  std::vector<Event> overflow_;  // the spill; sorted descending on demand
  bool overflow_sorted_ = true;

  std::size_t size_ = 0;

  // Cached position of the located minimum (valid until the next push or
  // pop), so Peek-then-Pop scans the cursor bucket once.
  bool cached_ = false;
  std::size_t cached_pos_ = 0;

  // Scan-pressure sampling: rebuild when pops keep scanning long buckets.
  std::uint32_t sampled_pops_ = 0;
  std::uint64_t sampled_scans_ = 0;
};

}  // namespace pe::sim
