#include "sim/metrics.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

#include "common/stats.h"

namespace pe::sim {

ServerStats ComputeStats(const std::vector<QueryRecord>& records,
                         SimTime sla_target, double warmup_fraction) {
  ServerStats stats;
  if (records.empty()) return stats;
  assert(warmup_fraction >= 0.0 && warmup_fraction < 1.0);

  // Records stable-sorted by arrival for a well-defined warmup cut AND a
  // well-defined tie order: equal arrivals keep their input positions, so
  // the iteration order -- which the order-sensitive accumulators below
  // (mean sum, Welford queue delay) depend on -- is a pure function of
  // the input vector.  The fleet fast path (fleet/cluster.cc) reproduces
  // this order with a k-way merge over per-server arrays; an unstable
  // sort would make its bit-identity unachievable.
  std::vector<const QueryRecord*> sorted;
  sorted.reserve(records.size());
  for (const auto& r : records) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const QueryRecord* a, const QueryRecord* b) {
                     return a->arrival < b->arrival;
                   });
  const std::size_t skip =
      static_cast<std::size_t>(warmup_fraction *
                               static_cast<double>(sorted.size()));

  Percentile latency;
  StreamingStats queue_delay;
  std::size_t violations = 0;
  SimTime window_begin = 0;
  SimTime window_end = 0;
  // A live reconfiguration reuses worker indices across layouts, so key
  // by (index, gpcs): records from differently-sized partitions that
  // happened to share an index stay separate entries.
  std::map<std::pair<int, int>, WorkerStats> workers;
  // Per-model latency slices of a mixed-traffic run.  Single-model runs
  // (the common case on every legacy hot path) skip the duplicate sample
  // storage: their one models[] entry is synthesized from the aggregate.
  struct ModelAccum {
    Percentile latency;
    std::size_t violations = 0;
    std::size_t swaps = 0;
    std::size_t completed = 0;
  };
  std::map<int, ModelAccum> models;
  bool multi_model = false;
  for (std::size_t i = skip; i < sorted.size(); ++i) {
    if (sorted[i]->model != sorted[skip]->model) {
      multi_model = true;
      break;
    }
  }

  for (std::size_t i = skip; i < sorted.size(); ++i) {
    const QueryRecord& r = *sorted[i];
    if (r.failed || r.shed) {
      // Fault casualties never completed; their timestamps mark the
      // failure/shed instant and must stay out of every latency pool.
      if (r.failed) ++stats.failed;
      if (r.shed) ++stats.shed;
      continue;
    }
    latency.Add(TicksToMs(r.Latency()));
    queue_delay.Add(TicksToMs(r.QueueDelay()));
    if (r.Latency() > sla_target) ++violations;
    if (r.reconfig_stalls > 0) ++stats.reconfig_stalled;
    if (r.model_swap) ++stats.model_swaps;
    if (stats.completed == 0) window_begin = r.arrival;
    window_end = std::max(window_end, r.finished);
    ++stats.completed;

    auto& w = workers[{r.worker, r.worker_gpcs}];
    w.index = r.worker;
    w.gpcs = r.worker_gpcs;
    w.busy_ticks += r.finished - r.started;
    ++w.queries;

    if (multi_model) {
      auto& m = models[r.model];
      m.latency.Add(TicksToMs(r.Latency()));
      if (r.Latency() > sla_target) ++m.violations;
      if (r.model_swap) ++m.swaps;
      ++m.completed;
    }
  }
  if (stats.completed == 0) return stats;

  stats.mean_latency_ms = latency.Mean();
  stats.p50_latency_ms = latency.P50();
  stats.p95_latency_ms = latency.P95();
  stats.p99_latency_ms = latency.P99();
  stats.max_latency_ms = latency.Max();
  stats.mean_queue_delay_ms = queue_delay.mean();
  stats.sla_violation_rate =
      static_cast<double>(violations) / static_cast<double>(stats.completed);

  // A zero-length measurement span (all included completions at one
  // instant, e.g. a single record or a reconfig-dominated epoch slice)
  // leaves the rate/utilization metrics at zero instead of dividing by it.
  const SimTime span = window_end - window_begin;
  if (span > 0) {
    stats.achieved_qps =
        static_cast<double>(stats.completed) / TicksToSec(span);
  }
  double gpc_busy = 0.0;
  double gpc_total = 0.0;
  for (auto& [key, w] : workers) {
    if (span > 0) {
      w.utilization = std::min(
          1.0, static_cast<double>(w.busy_ticks) / static_cast<double>(span));
    }
    gpc_busy += w.utilization * w.gpcs;
    gpc_total += w.gpcs;
    stats.workers.push_back(w);
  }
  if (span > 0 && gpc_total > 0.0) {
    stats.mean_worker_utilization = gpc_busy / gpc_total;
  }
  if (multi_model) {
    for (auto& [model, m] : models) {
      ModelStats ms;
      ms.model = model;
      ms.completed = m.completed;
      ms.mean_latency_ms = m.latency.Mean();
      ms.p95_latency_ms = m.latency.P95();
      ms.p99_latency_ms = m.latency.P99();
      ms.sla_violation_rate = static_cast<double>(m.violations) /
                              static_cast<double>(m.completed);
      ms.swaps = m.swaps;
      stats.models.push_back(std::move(ms));
    }
  } else {
    // One model: its slice IS the aggregate.
    ModelStats ms;
    ms.model = sorted[skip]->model;
    ms.completed = stats.completed;
    ms.mean_latency_ms = stats.mean_latency_ms;
    ms.p95_latency_ms = stats.p95_latency_ms;
    ms.p99_latency_ms = stats.p99_latency_ms;
    ms.sla_violation_rate = stats.sla_violation_rate;
    ms.swaps = stats.model_swaps;
    stats.models.push_back(std::move(ms));
  }
  return stats;
}

}  // namespace pe::sim
