// Per-query records and aggregate server statistics.
//
// The paper's headline metrics are 95th-percentile tail latency (Fig. 11)
// and latency-bounded throughput (Fig. 12); we additionally track SLA
// violation rate, queueing delay, and per-worker utilization.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace pe::sim {

struct QueryRecord {
  std::uint64_t id = 0;
  int batch = 1;
  // Model identity (repertoire id); 0 for single-model runs.
  int model = 0;
  SimTime arrival = 0;     // enters the server
  SimTime dispatched = 0;  // bound to a worker (== arrival unless queued)
  SimTime started = 0;     // execution begins on the GPU partition
  SimTime finished = 0;    // execution completes
  int worker = -1;
  int worker_gpcs = 0;
  // True when starting this query displaced a different resident model on
  // its partition (the server charged the model-swap penalty, if any).
  bool model_swap = false;
  // Number of live-reconfiguration windows this query waited through while
  // queued (held at arrival, already central-queued, or orphaned from a
  // retired partition's local queue).  0 in any run without
  // reconfigurations; the downtime itself lands in QueueDelay().
  int reconfig_stalls = 0;
  // Fault outcome of this attempt.  `failed`: the query was on a worker
  // (or held by a server) that failed before completing it -- `finished`
  // holds the failure instant, not a completion.  `shed`: the per-query
  // deadline expired before the query could start, so the server dropped
  // it.  Both are excluded from latency statistics and tallied separately
  // (ServerStats::failed / shed).  Always false without fault injection.
  bool failed = false;
  bool shed = false;
  // Times this query was re-placed because of a fault: local re-queues
  // after a worker failure, plus (for fleet re-injections) the attempt
  // number the failover driver stamped on this record.
  int retries = 0;

  SimTime Latency() const { return finished - arrival; }
  SimTime QueueDelay() const { return started - arrival; }
};

struct WorkerStats {
  int index = 0;
  int gpcs = 0;
  SimTime busy_ticks = 0;
  std::uint64_t queries = 0;
  double utilization = 0.0;  // busy fraction of the measured span
};

// Per-model slice of a (possibly mixed-traffic) run.
struct ModelStats {
  int model = 0;
  std::size_t completed = 0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double sla_violation_rate = 0.0;
  // Completions whose start displaced a different resident model.
  std::size_t swaps = 0;
};

struct ServerStats {
  std::size_t completed = 0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double mean_queue_delay_ms = 0.0;
  double sla_violation_rate = 0.0;  // fraction with latency > SLA target
  double achieved_qps = 0.0;        // completions / measured span
  double mean_worker_utilization = 0.0;  // GPC-weighted busy fraction
  // Queries (among the included records) whose queueing was prolonged by
  // at least one live reconfiguration (QueryRecord::reconfig_stalls > 0):
  // the queue-build-up transient a layout swap causes.
  std::size_t reconfig_stalled = 0;
  // Starts (among the included records) that displaced a different
  // resident model on their partition -- the cross-model interference a
  // consolidated multi-model layout pays for sharing partitions.
  std::size_t model_swaps = 0;
  // Fault casualties among the included records: attempts killed by a
  // worker/server failure and queries dropped on deadline expiry.  Both
  // are excluded from every latency/throughput/utilization figure above
  // (their sentinel timestamps would poison the percentiles); `completed`
  // counts only genuine completions.  Zero without fault injection.
  std::size_t failed = 0;
  std::size_t shed = 0;
  std::vector<WorkerStats> workers;
  // One entry per model id seen in the included records, ascending; a
  // single entry (model 0) for single-model runs.
  std::vector<ModelStats> models;
};

// Aggregates records into ServerStats.
//  * `sla_target`: latency bound for the violation-rate metric.
//  * `warmup_fraction`: leading fraction of records (by arrival order)
//    excluded from latency statistics, removing cold-start transients.
// Worker utilization is measured over the span between the first and last
// *included* completion.  Degenerate inputs -- empty records, or a
// measurement span of zero ticks (possible for single-record or
// reconfig-heavy epoch slices) -- yield zeroed rate/utilization metrics
// rather than dividing by the zero-length span.
ServerStats ComputeStats(const std::vector<QueryRecord>& records,
                         SimTime sla_target, double warmup_fraction = 0.1);

}  // namespace pe::sim
