#include "sim/server.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pe::sim {

InferenceServer::InferenceServer(ServerConfig config,
                                 const profile::ProfileTable& profile,
                                 sched::Scheduler& scheduler,
                                 LatencyFn actual_latency)
    : config_(std::move(config)),
      profile_(profile),
      scheduler_(scheduler),
      actual_latency_(std::move(actual_latency)),
      rng_(config_.seed) {
  if (config_.partition_gpcs.empty()) {
    throw std::invalid_argument("InferenceServer: no partitions configured");
  }
  // Workers ordered by ascending partition size (then creation order);
  // FIFS's "first idle" scan and ELSA's Step A both rely on this order
  // being stable and size-ascending.
  std::vector<int> sizes = config_.partition_gpcs;
  std::sort(sizes.begin(), sizes.end());
  workers_.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    workers_.emplace_back(static_cast<int>(i), sizes[i]);
  }
}

void InferenceServer::Push(SimTime time, EventType type,
                           std::size_t payload) {
  events_.push(Event{time, next_seq_++, type, payload});
}

SimTime InferenceServer::ActualTicks(int gpcs, int batch) {
  double sec = actual_latency_(gpcs, batch);
  if (config_.latency_noise_sigma > 0.0) {
    const double sigma = config_.latency_noise_sigma;
    // Mean-one log-normal multiplier so noise does not shift mean latency.
    sec *= std::exp(rng_.Normal(0.0, sigma) - 0.5 * sigma * sigma);
  }
  return std::max<SimTime>(1, SecToTicks(sec));
}

SimTime InferenceServer::EstimateTicks(int gpcs, int batch) const {
  return std::max<SimTime>(1, SecToTicks(profile_.LatencySec(gpcs, batch)));
}

void InferenceServer::StartHead(PartitionWorker& worker, SimTime now) {
  if (!worker.CanStart()) return;
  const int batch = worker.Head().batch;
  const SimTime actual = ActualTicks(worker.gpcs(), batch);
  const workload::Query q = worker.Start(now, actual);
  QueryRecord& rec = records_[q.id];
  rec.started = now;
  rec.worker = worker.index();
  rec.worker_gpcs = worker.gpcs();
  Push(now + actual, EventType::kWorkerDone,
       static_cast<std::size_t>(worker.index()));
}

void InferenceServer::Dispatch(const workload::Query& query, SimTime now) {
  std::vector<sched::WorkerState> states;
  states.reserve(workers_.size());
  for (const auto& w : workers_) states.push_back(w.Snapshot(now));

  const int idx = scheduler_.OnQueryArrival(query, states);
  if (idx == sched::kNoAssignment) {
    if (!scheduler_.UsesCentralQueue()) {
      throw std::logic_error(
          "scheduler returned kNoAssignment but has no central queue");
    }
    central_queue_.push_back(query);
    return;
  }
  if (idx < 0 || idx >= static_cast<int>(workers_.size())) {
    throw std::out_of_range("scheduler returned invalid worker index");
  }
  PartitionWorker& worker = workers_[static_cast<std::size_t>(idx)];
  records_[query.id].dispatched = now;
  worker.Enqueue(query, EstimateTicks(worker.gpcs(), query.batch));
  StartHead(worker, now);
}

SimResult InferenceServer::Run(const workload::QueryTrace& trace) {
  // Reset run state.
  events_ = {};
  next_seq_ = 0;
  central_queue_.clear();
  records_.assign(trace.size(), QueryRecord{});
  frontend_free_at_.assign(
      static_cast<std::size_t>(std::max(1, config_.frontend.lanes)), 0);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const workload::Query& q = trace.queries()[i];
    if (q.id != i) {
      throw std::invalid_argument("trace query ids must be dense 0..n-1");
    }
    records_[i].id = q.id;
    records_[i].batch = q.batch;
    records_[i].arrival = q.arrival;
    Push(q.arrival, EventType::kArrival, i);
  }

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    const SimTime now = ev.time;
    switch (ev.type) {
      case EventType::kArrival: {
        if (config_.frontend.enabled) {
          // G/D/c preprocessing stage: earliest-free lane serves FIFO.
          auto lane = std::min_element(frontend_free_at_.begin(),
                                       frontend_free_at_.end());
          const SimTime start = std::max(now, *lane);
          const SimTime done = start + config_.frontend.cost_per_query;
          *lane = done;
          Push(done, EventType::kFrontendDone, ev.payload);
        } else {
          Dispatch(trace.queries()[ev.payload], now);
        }
        break;
      }
      case EventType::kFrontendDone: {
        Dispatch(trace.queries()[ev.payload], now);
        break;
      }
      case EventType::kWorkerDone: {
        PartitionWorker& worker = workers_[ev.payload];
        const workload::Query done = worker.Finish();
        records_[done.id].finished = now;
        // Start next local query, or pull from the central queue.
        if (worker.CanStart()) {
          StartHead(worker, now);
        } else if (scheduler_.UsesCentralQueue() && !central_queue_.empty()) {
          const workload::Query next = central_queue_.front();
          central_queue_.pop_front();
          records_[next.id].dispatched = now;
          worker.Enqueue(next, EstimateTicks(worker.gpcs(), next.batch));
          StartHead(worker, now);
        }
        break;
      }
    }
  }

  return SimResult{std::move(records_)};
}

}  // namespace pe::sim
