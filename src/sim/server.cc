#include "sim/server.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace pe::sim {

namespace {

std::unique_ptr<profile::ModelRepertoire> WrapSingleModel(
    const profile::ProfileTable& profile, LatencyFn actual_latency) {
  auto repertoire = std::make_unique<profile::ModelRepertoire>();
  const std::string name =
      profile.model_name().empty() ? "model" : profile.model_name();
  repertoire->Register(name, profile, std::move(actual_latency));
  return repertoire;
}

// Process-unique layout stamp: every BuildWorkers gets a fresh value, so a
// scheduler's per-layout cache can never alias two different worker sets
// (even across servers sharing one scheduler object).
std::uint64_t NextLayoutVersion() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

}  // namespace

std::size_t InferenceServer::LiveWorkerView::size() const {
  return server_.workers_.size();
}

const sched::WorkerState& InferenceServer::LiveWorkerView::Get(
    std::size_t i) const {
  assert(i < server_.workers_.size());
  const PartitionWorker& w = server_.workers_[i];
  Slot& slot = slots_[i];
  // Idle-or-queued-only workers have a time-independent snapshot, so the
  // version check alone suffices; a busy worker's Twait remainder shrinks
  // as time advances, hence the extra time-epoch check (the event loop
  // bumps the epoch once per distinct instant).
  if (slot.seen_version != w.version()) {
    slot.state = w.Snapshot(server_.now_);
    slot.seen_version = w.version();
    slot.seen_epoch = time_epoch_;
  } else if (w.busy() && slot.seen_epoch != time_epoch_) {
    // Same worker state, later instant: only Twait's in-flight remainder
    // moved; everything else in the snapshot is version-covered.
    slot.state.wait_ticks = w.EstimatedWait(server_.now_);
    slot.seen_epoch = time_epoch_;
  }
  return slot.state;
}

SimTime InferenceServer::LiveWorkerView::WaitTicks(std::size_t i) const {
  assert(i < server_.workers_.size());
  // Uncached on purpose: schedulers consult each worker's wait at most
  // once per arrival (ELSA memoizes on its side), and the direct
  // computation is cheaper than snapshot-cache maintenance.
  return server_.workers_[i].EstimatedWait(server_.now_);
}

int InferenceServer::LiveWorkerView::MaxGpcsIdleWorker() const {
  const auto& idle = server_.idle_workers_;
  if (idle.empty()) return sched::kNoAssignment;
  // Keys are {-gpcs, index}: begin() is the largest idle partition,
  // lowest index among equals -- the FIFS scan winner.
  return idle.begin()->second;
}

void InferenceServer::LiveWorkerView::OnLayoutChange(std::size_t num_workers) {
  slots_.assign(num_workers, Slot{});  // keeps capacity across layouts
  version_ = NextLayoutVersion();
}

InferenceServer::InferenceServer(ServerConfig config,
                                 const profile::ProfileTable& profile,
                                 sched::Scheduler& scheduler,
                                 LatencyFn actual_latency)
    : config_(std::move(config)),
      owned_repertoire_(WrapSingleModel(profile, std::move(actual_latency))),
      repertoire_(owned_repertoire_.get()),
      scheduler_(scheduler),
      rng_(config_.seed),
      compiled_(*repertoire_) {
  if (config_.partition_gpcs.empty()) {
    throw std::invalid_argument("InferenceServer: no partitions configured");
  }
  Reset();
}

InferenceServer::InferenceServer(ServerConfig config,
                                 const profile::ModelRepertoire& repertoire,
                                 sched::Scheduler& scheduler)
    : config_(std::move(config)),
      repertoire_(&repertoire),
      scheduler_(scheduler),
      rng_(config_.seed),
      compiled_(*repertoire_) {
  if (config_.partition_gpcs.empty()) {
    throw std::invalid_argument("InferenceServer: no partitions configured");
  }
  if (repertoire.empty()) {
    throw std::invalid_argument("InferenceServer: empty model repertoire");
  }
  Reset();
}

void InferenceServer::Reset() {
  // clear() everywhere (never a fresh container): a server re-used across
  // incarnations -- Run after Run, or the experiment engine replaying
  // probes -- keeps its event/arrival/record capacity instead of
  // reallocating it each time.
  calendar_.Clear();
  events_.clear();
  arrivals_.clear();
  arrival_cursor_ = 0;
  next_seq_ = 0;
  now_ = 0;
  central_queue_.clear();
  queries_.clear();
  records_.clear();
  frontend_free_at_.assign(
      static_cast<std::size_t>(std::max(1, config_.frontend.lanes)), 0);
  reconfiguring_ = false;
  reconfig_ready_ = 0;
  pending_layout_.clear();
  reconfig_gen_ = 0;
  stale_done_.clear();
  slowdown_ = 1.0;
  BuildWorkers(config_.partition_gpcs);
}

void InferenceServer::BuildWorkers(const std::vector<int>& partition_gpcs) {
  // Workers ordered by ascending partition size (then creation order);
  // FIFS's "first idle" scan and ELSA's Step A both rely on this order
  // being stable and size-ascending.
  std::vector<int> sizes = partition_gpcs;
  std::sort(sizes.begin(), sizes.end());
  workers_.clear();
  workers_.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    workers_.emplace_back(static_cast<int>(i), sizes[i]);
  }
  idle_workers_.clear();
  if (!config_.reference_engine) {
    // A fresh layout starts all-idle.
    for (const auto& w : workers_) {
      idle_workers_.emplace(-w.gpcs(), w.index());
    }
  }
  snapshots_.reserve(workers_.size());
  done_seq_.assign(workers_.size(), 0);
  num_failed_ = 0;
  view_.OnLayoutChange(workers_.size());
}

void InferenceServer::SyncIdle(const PartitionWorker& worker) {
  if (config_.reference_engine) return;
  const std::pair<int, int> key{-worker.gpcs(), worker.index()};
  if (worker.idle()) {
    idle_workers_.insert(key);
  } else {
    idle_workers_.erase(key);
  }
}

void InferenceServer::PushWithSeq(SimTime time, std::uint64_t seq,
                                  EventType type, std::uint32_t payload) {
  if (config_.reference_engine) {
    events_.push_back(Event{time, seq, payload, type});
    std::push_heap(events_.begin(), events_.end(), std::greater<Event>{});
  } else {
    calendar_.Push(Event{time, seq, payload, type});
  }
}

void InferenceServer::Push(SimTime time, EventType type,
                           std::uint32_t payload) {
  PushWithSeq(time, next_seq_++, type, payload);
}

bool InferenceServer::PopNextEvent(SimTime bound, bool bounded, Event& ev) {
  // Both paths expose their pending minimum the same way: a pointer that
  // is null when the structure is empty.  The calendar's Peek caches the
  // located minimum, so the Pop below re-scans nothing.
  const bool reference = config_.reference_engine;
  const Event* head = reference
                          ? (events_.empty() ? nullptr : &events_.front())
                          : calendar_.Peek();
  const bool have_arrival = arrival_cursor_ < arrivals_.size();
  if (head == nullptr && !have_arrival) return false;
  bool take_arrival = have_arrival;
  if (head != nullptr && have_arrival) {
    const PendingArrival& a = arrivals_[arrival_cursor_];
    take_arrival =
        a.time != head->time ? a.time < head->time : a.seq < head->seq;
  }
  if (take_arrival) {
    const PendingArrival& a = arrivals_[arrival_cursor_];
    if (bounded && a.time >= bound) return false;
    ev = Event{a.time, a.seq, a.query, EventType::kArrival};
    ++arrival_cursor_;
  } else {
    if (bounded && head->time >= bound) return false;
    if (reference) {
      ev = *head;
      std::pop_heap(events_.begin(), events_.end(), std::greater<Event>{});
      events_.pop_back();
    } else {
      ev = calendar_.Pop();
    }
  }
  return true;
}

SimTime InferenceServer::ActualTicks(int model_id, int gpcs, int batch) {
  double sec = config_.reference_engine
                   ? repertoire_->ActualSec(model_id, gpcs, batch)
                   : compiled_.ActualSec(model_id, gpcs, batch);
  // Degraded-replica multiplier (fault injection); exactly 1.0 -- the
  // clean-run value -- takes no branch into the multiply.
  if (slowdown_ != 1.0) sec *= slowdown_;
  if (config_.latency_noise_sigma > 0.0) {
    const double sigma = config_.latency_noise_sigma;
    // Mean-one log-normal multiplier so noise does not shift mean latency.
    sec *= std::exp(rng_.Normal(0.0, sigma) - 0.5 * sigma * sigma);
  }
  return std::max<SimTime>(1, SecToTicks(sec));
}

SimTime InferenceServer::EstimateTicks(int model_id, int gpcs,
                                       int batch) const {
  if (config_.reference_engine) {
    return std::max<SimTime>(
        1, SecToTicks(repertoire_->EstimateSec(model_id, gpcs, batch)));
  }
  return compiled_.EstimateTicks(model_id, gpcs, batch);
}

const std::vector<sched::WorkerState>& InferenceServer::Snapshots(
    SimTime now) const {
  snapshots_.clear();
  for (const auto& w : workers_) snapshots_.push_back(w.Snapshot(now));
  return snapshots_;
}

int InferenceServer::ConsultScheduler(const workload::Query& query,
                                      SimTime now, bool orphan) {
  if (config_.reference_engine) {
    return orphan ? scheduler_.RequeueOrphan(query, Snapshots(now))
                  : scheduler_.OnQueryArrival(query, Snapshots(now));
  }
  assert(now == now_);  // the live view reads wait times at now_
  return orphan ? scheduler_.RequeueOrphan(query, view_)
                : scheduler_.OnQueryArrival(query, view_);
}

void InferenceServer::StartHead(PartitionWorker& worker, SimTime now) {
  if (reconfiguring_) return;  // dispatch held until the new layout is up
  if (config_.deadline > 0) {
    // Every start passes through here with the query at head position, so
    // this is the one shed point: heads whose start deadline has lapsed
    // are dropped before they can occupy the partition.
    while (worker.CanStart() &&
           now > records_[worker.Head().id].arrival + config_.deadline) {
      const workload::Query dropped = worker.PopHead();
      QueryRecord& rec = records_[dropped.id];
      rec.shed = true;
      rec.finished = now;
      SyncIdle(worker);
    }
  }
  if (!worker.CanStart()) return;
  const workload::Query& head = worker.Head();
  SimTime actual = ActualTicks(head.model_id, worker.gpcs(), head.batch);
  // Displacing a different resident model re-loads weights; the charge
  // extends this query's occupancy of the partition.
  const bool swap = worker.resident_model() != -1 &&
                    worker.resident_model() != head.model_id;
  if (swap) actual += config_.model_swap_cost;
  const workload::Query q = worker.Start(now, actual);
  QueryRecord& rec = records_[q.id];
  rec.started = now;
  rec.worker = worker.index();
  rec.worker_gpcs = worker.gpcs();
  rec.model_swap = swap;
  // The completion's seq is remembered per worker so a mid-flight failure
  // can cancel it (see FailWorker / stale_done_).
  const std::uint64_t seq = next_seq_++;
  done_seq_[static_cast<std::size_t>(worker.index())] = seq;
  PushWithSeq(now + actual, seq, EventType::kWorkerDone,
              static_cast<std::uint32_t>(worker.index()));
}

void InferenceServer::Dispatch(const workload::Query& query, SimTime now) {
  if (reconfiguring_) {
    // Held for the drain + downtime window; re-dispatched (in order,
    // behind carried-over orphans) when the new layout comes up.
    ++records_[query.id].reconfig_stalls;
    central_queue_.push_back(query);
    return;
  }
  const int idx = ConsultScheduler(query, now, /*orphan=*/false);
  if (idx == sched::kNoAssignment) {
    if (!scheduler_.UsesCentralQueue()) {
      if (num_failed_ > 0) {
        // Total outage: even bind-immediately schedulers have nowhere to
        // put this; park it until RecoverWorker replays the queue.
        central_queue_.push_back(query);
        return;
      }
      throw std::logic_error(
          "scheduler returned kNoAssignment but has no central queue");
    }
    central_queue_.push_back(query);
    return;
  }
  if (idx < 0 || idx >= static_cast<int>(workers_.size())) {
    throw std::out_of_range("scheduler returned invalid worker index");
  }
  PartitionWorker& worker = workers_[static_cast<std::size_t>(idx)];
  assert(!worker.failed());
  records_[query.id].dispatched = now;
  worker.Enqueue(query,
                 EstimateTicks(query.model_id, worker.gpcs(), query.batch));
  SyncIdle(worker);
  StartHead(worker, now);
}

void InferenceServer::ReofferCentralQueue(SimTime now) {
  if (!scheduler_.UsesCentralQueue()) return;
  while (!central_queue_.empty()) {
    // The scheduler decides the placement (preserving e.g. FIFS's
    // largest-idle-partition tie-break); kNoAssignment means it prefers
    // to keep the head queued, which ends the re-offer.  The live view
    // tracks the enqueues this loop itself causes, so draining a queue of
    // Q entries costs O(Q), not O(Q*W).
    const workload::Query head = central_queue_.front();
    const int idx = ConsultScheduler(head, now, /*orphan=*/false);
    if (idx == sched::kNoAssignment) break;
    if (idx < 0 || idx >= static_cast<int>(workers_.size())) {
      throw std::out_of_range("scheduler returned invalid worker index");
    }
    central_queue_.pop_front();
    PartitionWorker& worker = workers_[static_cast<std::size_t>(idx)];
    records_[head.id].dispatched = now;
    worker.Enqueue(head,
                   EstimateTicks(head.model_id, worker.gpcs(), head.batch));
    SyncIdle(worker);
    StartHead(worker, now);
  }
}

void InferenceServer::InjectQuery(const workload::Query& query) {
  if (query.id != queries_.size()) {
    throw std::invalid_argument("trace query ids must be dense 0..n-1");
  }
  if (query.arrival < now_) {
    throw std::invalid_argument(
        "InferenceServer: arrival predates the current simulation time");
  }
  if (!repertoire_->Has(query.model_id)) {
    throw std::invalid_argument(
        "InferenceServer: query model_id " + std::to_string(query.model_id) +
        " is not in the repertoire");
  }
  if (queries_.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::invalid_argument(
        "InferenceServer: too many queries for one run");
  }
  const auto index = static_cast<std::uint32_t>(queries_.size());
  queries_.push_back(query);
  QueryRecord rec;
  rec.id = query.id;
  rec.batch = query.batch;
  rec.model = query.model_id;
  rec.arrival = query.arrival;
  records_.push_back(rec);
  const std::uint64_t seq = next_seq_++;
  if (!config_.reference_engine &&
      (arrivals_.empty() || query.arrival >= arrivals_.back().time)) {
    // The common case: arrivals keep the trace's time order, so the flat
    // cursor replaces a heap push (and, for a whole trace, a heap that
    // would hold every arrival at once).
    arrivals_.push_back(PendingArrival{query.arrival, seq, index});
  } else {
    // Out-of-order (or reference-engine) arrival: the heap restores the
    // global (time, seq) order.
    PushWithSeq(query.arrival, seq, EventType::kArrival, index);
  }
}

void InferenceServer::InjectTrace(const workload::QueryTrace& trace) {
  InjectSpan(trace.queries());
}

void InferenceServer::InjectSpan(std::span<const workload::Query> queries) {
  const std::size_t n = queries.size();
  queries_.reserve(queries_.size() + n);
  records_.reserve(records_.size() + n);
  if (config_.reference_engine) {
    events_.reserve(events_.size() + n);
  } else {
    arrivals_.reserve(arrivals_.size() + n);
  }
  for (const workload::Query& q : queries) InjectQuery(q);
}

void InferenceServer::BeginReconfigure(std::vector<int> new_layout,
                                       SimTime downtime) {
  if (new_layout.empty()) {
    throw std::invalid_argument("BeginReconfigure: empty layout");
  }
  for (int gpcs : new_layout) {
    if (gpcs < 1) {
      throw std::invalid_argument(
          "BeginReconfigure: partition sizes must be >= 1 GPC");
    }
  }
  if (downtime < 0) {
    throw std::invalid_argument("BeginReconfigure: negative downtime");
  }
  // In-flight queries drain on the old layout; the swap lands after the
  // last of them completes plus the downtime charge.
  SimTime drain_end = now_;
  for (const auto& w : workers_) {
    if (w.busy()) drain_end = std::max(drain_end, w.busy_until());
  }
  SimTime ready = drain_end + downtime;
  if (reconfiguring_) {
    // Superseding an open window: retarget the layout, never shorten.
    ready = std::max(ready, reconfig_ready_);
  } else {
    // Queries already waiting centrally are now additionally delayed by
    // this window; arrivals during the window are marked as they land.
    for (const auto& q : central_queue_) ++records_[q.id].reconfig_stalls;
  }
  reconfiguring_ = true;
  reconfig_ready_ = ready;
  pending_layout_ = std::move(new_layout);
  Push(ready, EventType::kReconfigDone, ++reconfig_gen_);
}

void InferenceServer::CompleteReconfigure(SimTime now) {
  // Carry over queued-but-unstarted work from the retiring partitions, in
  // global dispatch order (then id, for same-instant determinism).
  std::vector<workload::Query> orphans;
  // Snapshots() returns the reusable scratch; the old layout's states must
  // survive BuildWorkers, so copy them out.
  const std::vector<sched::WorkerState> old_states = Snapshots(now);
  for (auto& worker : workers_) {
    assert(!worker.busy());  // drain window covered every in-flight query
    auto q = worker.TakeQueue();
    orphans.insert(orphans.end(), q.begin(), q.end());
  }
  std::stable_sort(orphans.begin(), orphans.end(),
                   [this](const workload::Query& a, const workload::Query& b) {
                     const SimTime da = records_[a.id].dispatched;
                     const SimTime db = records_[b.id].dispatched;
                     if (da != db) return da < db;
                     return a.id < b.id;
                   });

  BuildWorkers(pending_layout_);
  reconfiguring_ = false;
  reconfig_ready_ = 0;
  pending_layout_.clear();
  scheduler_.OnReconfigure(old_states, Snapshots(now));

  // Orphans are re-placed first (they were dispatched before anything the
  // window held), then the held arrivals in their original order.  The
  // fast path's live view makes this loop O(orphans), not O(orphans * W).
  std::deque<workload::Query> held = std::move(central_queue_);
  central_queue_.clear();
  for (const workload::Query& q : orphans) {
    ++records_[q.id].reconfig_stalls;
    const int idx = ConsultScheduler(q, now, /*orphan=*/true);
    if (idx == sched::kNoAssignment) {
      if (!scheduler_.UsesCentralQueue()) {
        throw std::logic_error(
            "scheduler returned kNoAssignment but has no central queue");
      }
      central_queue_.push_back(q);
      continue;
    }
    if (idx < 0 || idx >= static_cast<int>(workers_.size())) {
      throw std::out_of_range("scheduler returned invalid worker index");
    }
    PartitionWorker& worker = workers_[static_cast<std::size_t>(idx)];
    records_[q.id].dispatched = now;
    worker.Enqueue(q, EstimateTicks(q.model_id, worker.gpcs(), q.batch));
    SyncIdle(worker);
    StartHead(worker, now);
  }
  ReofferCentralQueue(now);
  for (const workload::Query& q : held) Dispatch(q, now);
}

void InferenceServer::ProcessEvent(const Event& ev) {
  const SimTime now = ev.time;
  switch (ev.type) {
    case EventType::kArrival: {
      if (config_.frontend.enabled) {
        // G/D/c preprocessing stage: earliest-free lane serves FIFO.  The
        // host-side frontend keeps working through a reconfiguration; only
        // dispatch to the GPU partitions is held.
        auto lane = std::min_element(frontend_free_at_.begin(),
                                     frontend_free_at_.end());
        const SimTime start = std::max(now, *lane);
        const SimTime done = start + config_.frontend.cost_per_query;
        *lane = done;
        Push(done, EventType::kFrontendDone, ev.payload);
      } else {
        Dispatch(queries_[ev.payload], now);
      }
      break;
    }
    case EventType::kFrontendDone: {
      Dispatch(queries_[ev.payload], now);
      break;
    }
    case EventType::kWorkerDone: {
      // A completion cancelled by a worker failure (the query was aborted
      // mid-flight); the seq was filed stale by FailWorker.
      if (!stale_done_.empty() && stale_done_.erase(ev.seq) > 0) break;
      PartitionWorker& worker = workers_[ev.payload];
      const workload::Query done = worker.Finish();
      records_[done.id].finished = now;
      SyncIdle(worker);  // may have gone idle (empty local queue)
      if (reconfiguring_) break;  // draining: nothing new starts
      // Start next local query, then pull from the central queue for as
      // long as the worker stays unoccupied -- deadline sheds can burn
      // through several expired entries before one actually starts (a
      // clean run pulls at most one, exactly the pre-fault behavior).
      if (worker.CanStart()) StartHead(worker, now);
      while (!worker.busy() && scheduler_.UsesCentralQueue() &&
             !central_queue_.empty()) {
        const workload::Query next = central_queue_.front();
        central_queue_.pop_front();
        records_[next.id].dispatched = now;
        worker.Enqueue(next,
                       EstimateTicks(next.model_id, worker.gpcs(), next.batch));
        SyncIdle(worker);
        StartHead(worker, now);
      }
      break;
    }
    case EventType::kReconfigDone: {
      // A superseded window's completion carries a stale generation.
      if (reconfiguring_ && ev.payload == reconfig_gen_) {
        CompleteReconfigure(now);
      }
      break;
    }
  }
}

void InferenceServer::SetNow(SimTime when) {
  if (when == now_) return;
  now_ = when;
  view_.BeginInstant();
}

void InferenceServer::DrainEvents(SimTime bound, bool bounded) {
  // The batched same-instant sweep: SetNow moves the clock (and the live
  // view's time epoch) only when the popped event's timestamp differs from
  // the current one, so a burst of events at one instant -- simultaneous
  // completions, a same-tick arrival train -- shares a single epoch and
  // each busy worker's wait ticks refresh at most once for the whole
  // burst.
  Event ev;
  while (PopNextEvent(bound, bounded, ev)) {
    SetNow(ev.time);
    ProcessEvent(ev);
  }
}

void InferenceServer::AdvanceTo(SimTime when) {
  DrainEvents(when, /*bounded=*/true);
  if (when > now_) SetNow(when);
}

SimResult InferenceServer::Finish() {
  DrainEvents(0, /*bounded=*/false);
  if (!central_queue_.empty()) {
    // Only reachable under fault injection: a total outage (every worker
    // failed) parked these arrivals and no recovery came.  They die with
    // the outage so every record ends terminal.
    for (const workload::Query& q : central_queue_) {
      QueryRecord& rec = records_[q.id];
      rec.failed = true;
      rec.finished = now_;
    }
    central_queue_.clear();
  }
  return SimResult{std::move(records_)};
}

std::vector<workload::Query> InferenceServer::FailWorker(int index,
                                                         bool requeue_orphans) {
  if (index < 0 || index >= static_cast<int>(workers_.size())) {
    throw std::out_of_range("FailWorker: no such worker");
  }
  PartitionWorker& worker = workers_[static_cast<std::size_t>(index)];
  std::vector<workload::Query> removed;
  if (worker.failed()) return removed;
  if (worker.busy()) {
    // Cancel the in-flight completion and kill its query.
    stale_done_.insert(done_seq_[static_cast<std::size_t>(index)]);
    const workload::Query victim = worker.Abort();
    QueryRecord& rec = records_[victim.id];
    rec.failed = true;
    rec.finished = now_;
    removed.push_back(victim);
  }
  std::vector<workload::Query> orphans = worker.TakeQueue();
  worker.SetFailed(true);
  ++num_failed_;
  SyncIdle(worker);
  if (requeue_orphans) {
    for (const workload::Query& q : orphans) {
      QueryRecord& rec = records_[q.id];
      ++rec.retries;
      if (reconfiguring_) {
        ++rec.reconfig_stalls;
        central_queue_.push_back(q);
        continue;
      }
      const int idx = ConsultScheduler(q, now_, /*orphan=*/true);
      if (idx == sched::kNoAssignment) {
        // Central-queue scheduler preference, or a total outage: park
        // until a pull or a recovery.
        central_queue_.push_back(q);
        continue;
      }
      if (idx < 0 || idx >= static_cast<int>(workers_.size())) {
        throw std::out_of_range("scheduler returned invalid worker index");
      }
      PartitionWorker& target = workers_[static_cast<std::size_t>(idx)];
      assert(!target.failed());
      records_[q.id].dispatched = now_;
      target.Enqueue(q, EstimateTicks(q.model_id, target.gpcs(), q.batch));
      SyncIdle(target);
      StartHead(target, now_);
    }
  } else {
    for (const workload::Query& q : orphans) {
      QueryRecord& rec = records_[q.id];
      rec.failed = true;
      rec.finished = now_;
      removed.push_back(q);
    }
  }
  return removed;
}

void InferenceServer::RecoverWorker(int index) {
  if (index < 0 || index >= static_cast<int>(workers_.size())) {
    throw std::out_of_range("RecoverWorker: no such worker");
  }
  PartitionWorker& worker = workers_[static_cast<std::size_t>(index)];
  if (!worker.failed()) return;
  worker.SetFailed(false);
  --num_failed_;
  SyncIdle(worker);
  if (reconfiguring_) return;  // held work re-dispatches at window close
  if (scheduler_.UsesCentralQueue()) {
    ReofferCentralQueue(now_);
  } else if (!central_queue_.empty()) {
    // Arrivals parked by a total outage: replay through the scheduler now
    // that capacity is back.
    std::deque<workload::Query> parked = std::move(central_queue_);
    central_queue_.clear();
    for (const workload::Query& q : parked) Dispatch(q, now_);
  }
}

std::vector<workload::Query> InferenceServer::FailCentralQueue() {
  std::vector<workload::Query> removed(central_queue_.begin(),
                                       central_queue_.end());
  central_queue_.clear();
  for (const workload::Query& q : removed) {
    QueryRecord& rec = records_[q.id];
    rec.failed = true;
    rec.finished = now_;
  }
  return removed;
}

void InferenceServer::SetSlowdownFactor(double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("SetSlowdownFactor: factor must be > 0");
  }
  slowdown_ = factor;
}

SimResult InferenceServer::Run(const workload::QueryTrace& trace) {
  return Run(std::span<const workload::Query>(trace.queries()));
}

SimResult InferenceServer::Run(std::span<const workload::Query> queries) {
  Reset();
  InjectSpan(queries);
  return Finish();
}

}  // namespace pe::sim
