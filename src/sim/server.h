// The multi-GPU inference server simulator.
//
// A discrete-event simulation of the paper's serving system (Figure 6):
// queries arrive from a trace, optionally pass through a finite-capacity
// frontend (the query-supply stage whose saturation the paper observed for
// MobileNet at 48 GPCs), are placed by the scheduler, and execute on
// heterogeneous GPU partition workers.
//
// Execution times are sampled from a ground-truth latency function
// (the roofline model, optionally with log-normal noise); the scheduler
// only ever sees the profiled estimates, so estimate/actual divergence is
// faithfully represented when noise is enabled.
//
// The engine can be driven two ways:
//  * batch: Run(trace) replays a whole trace to completion;
//  * incremental: InjectQuery/InjectTrace feed arrivals, AdvanceTo(T)
//    simulates up to (but not including) instant T, BeginReconfigure swaps
//    the partition layout live, and Finish() drains everything left.
//
// Hot-path design (the fast engine, on by default):
//  * profile lookups go through a CompiledProfile -- EstimateTicks /
//    ActualTicks are two array indexes instead of a map find +
//    lower_bound + std::function call;
//  * the scheduler consults a server-owned live WorkerView whose per-
//    worker snapshots refresh only when the worker mutated (or, while
//    busy, when time moved), instead of an O(W) snapshot-vector rebuild
//    per consultation -- draining a long central queue after a
//    reconfiguration is no longer O(Q*W);
//  * injected arrivals are (typically) already time-sorted, so they live
//    in a flat cursor merged on the fly with the pending-event calendar;
//    a million-query trace never sits in the priority structure at all;
//  * worker/frontend/reconfiguration events (and out-of-order arrival
//    injections, which fall off the sorted cursor) live in a two-level
//    bucketed EventCalendar -- a near-future bucket wheel plus a sorted
//    overflow spill -- so the dominant completion -> dispatch ->
//    completion cycle is O(1) amortized instead of the binary heap's
//    O(log E) (see sim/event_calendar.h);
//  * the event loop drains every event at the same timestamp in one
//    sweep: the current time is written, the bound re-checked, and the
//    live view's time epoch bumped once per distinct instant, so wide
//    servers refresh busy-worker wait ticks at most once per instant
//    rather than re-validating per event.
// ServerConfig::reference_engine re-enables the pre-optimization
// implementation (every event in one binary heap, per-consultation
// snapshot vectors, uncompiled profile lookups); both paths produce
// bit-identical SimResults (the event order is the same total (time, seq)
// order), asserted record-by-record by the golden determinism suite and
// measured by bench_engine_throughput.
//
// A live reconfiguration models a MIG layout change as a first-class
// simulation event: in-flight queries drain on the old layout, queued work
// (central FIFO and the retired partitions' local queues) is carried over
// to the new workers through the scheduler's requeue hook, and dispatch is
// held for the drain + downtime window.  Queries delayed this way are
// marked in their QueryRecord (reconfig_stalls), so the queue-build-up
// transient a reconfiguration causes is measurable.  One RNG stream spans
// the whole run regardless of how many reconfigurations occur.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "profile/compiled_profile.h"
#include "sim/event_calendar.h"
#include "profile/model_repertoire.h"
#include "profile/profile_table.h"
#include "sched/scheduler.h"
#include "sim/metrics.h"
#include "sim/worker.h"
#include "workload/trace.h"

namespace pe::sim {

// Ground truth: actual execution latency of (partition gpcs, batch).
// Alias of the repertoire's per-model function type.
using LatencyFn = profile::LatencyFn;

struct FrontendConfig {
  bool enabled = false;
  // Parallel preprocessing lanes (the paper's host has 96 vCPUs).
  int lanes = 96;
  // Deterministic per-query preprocessing cost.
  SimTime cost_per_query = UsToTicks(500.0);
};

struct ServerConfig {
  // One worker per element; the multiset of GPU partition sizes.
  std::vector<int> partition_gpcs;
  // SLA target for bookkeeping (violation rate in stats).
  SimTime sla_target = 0;
  // Log-normal multiplicative execution-time noise (sigma in log space);
  // 0 disables noise and makes runs fully deterministic.
  double latency_noise_sigma = 0.0;
  std::uint64_t seed = 0x5EED;
  FrontendConfig frontend;
  // Charged on top of a query's execution time when its start displaces a
  // different resident model on the partition (weight re-load / context
  // switch).  0 (the default) models free swaps; single-model runs never
  // swap, so the knob cannot perturb them either way.
  SimTime model_swap_cost = 0;
  // Per-query start deadline, relative to the query's (local) arrival; a
  // query whose head-of-queue turn comes more than `deadline` ticks after
  // it arrived is dropped (QueryRecord::shed) instead of started.  0 (the
  // default) disables shedding entirely -- no code path changes, so
  // deadline-free runs are bit-identical to the pre-fault engine.
  SimTime deadline = 0;
  // true re-enables the pre-optimization engine (uncompiled profile
  // lookups, per-consultation snapshot vectors, every arrival heaped).
  // Kept as the golden-determinism baseline and as the denominator of
  // bench_engine_throughput's speedup; results are bit-identical either
  // way.
  bool reference_engine = false;
};

struct SimResult {
  std::vector<QueryRecord> records;
  ServerStats Stats(SimTime sla_target, double warmup_fraction = 0.1) const {
    return ComputeStats(records, sla_target, warmup_fraction);
  }
};

class InferenceServer {
 public:
  // Single-model convenience: wraps `profile` + `actual_latency` into an
  // owned one-entry repertoire (model id 0).  `profile` is copied, so only
  // `scheduler` must outlive the server.
  InferenceServer(ServerConfig config, const profile::ProfileTable& profile,
                  sched::Scheduler& scheduler, LatencyFn actual_latency);

  // Multi-model serving: every injected query's model_id must be a valid
  // id of `repertoire`, whose per-model tables provide the scheduler
  // estimates and whose latency functions provide the ground truth.
  // `repertoire` and `scheduler` must outlive the server.
  InferenceServer(ServerConfig config,
                  const profile::ModelRepertoire& repertoire,
                  sched::Scheduler& scheduler);

  // Batch driving: resets incremental state, replays the whole trace to
  // completion, and returns per-query records.  Equivalent to a fresh
  // InjectTrace(trace) + Finish().
  SimResult Run(const workload::QueryTrace& trace);

  // Span form: same semantics over a borrowed query sequence -- lets the
  // fleet tier replay an arena slice (fleet::TraceSplit) without copying
  // it into a QueryTrace first.
  SimResult Run(std::span<const workload::Query> queries);

  // --- Incremental driving API ---------------------------------------
  // Feeds one arrival.  Ids must stay dense (query.id == number of queries
  // injected so far) and arrivals must not predate the current time.
  void InjectQuery(const workload::Query& query);

  // Feeds every query of `trace` (ids continuing the dense sequence),
  // reserving arrival/record capacity for the whole trace up front.
  void InjectTrace(const workload::QueryTrace& trace);

  // Span form of InjectTrace (same dense-id and ordering requirements).
  void InjectSpan(std::span<const workload::Query> queries);

  // Processes every pending event strictly before `when`, then sets the
  // current time to `when` (no-op when `when` is in the past).  Events at
  // exactly `when` stay pending: AdvanceTo leaves the simulation in the
  // state at the *start* of that instant.
  void AdvanceTo(SimTime when);

  // Begins a live reconfiguration to `new_layout` at the current time:
  // dispatch is held from now on, in-flight queries drain on the old
  // workers, and the new layout comes up `downtime` ticks after the drain
  // completes.  Queued work is carried over (nothing is lost or re-run).
  // Calling again before the window closes supersedes the pending target
  // layout and extends the window -- it never shortens.
  void BeginReconfigure(std::vector<int> new_layout, SimTime downtime);

  // Drains every remaining event (including a pending reconfiguration)
  // and returns the per-query records.  Queries still parked by a total
  // outage (every worker failed, no recovery) are marked failed rather
  // than left dangling, so every record ends terminal: completed, failed,
  // or shed.
  SimResult Finish();

  // --- Fault injection -------------------------------------------------
  // Fails worker `index` at the current time (a lost MIG slice).  The
  // in-flight query, if any, is killed -- its record marked failed, its
  // pending completion event cancelled -- and returned.  Queued-but-
  // unstarted entries are, with `requeue_orphans`, re-placed through the
  // scheduler's orphan hook onto surviving workers (parked centrally when
  // every worker is down); without it they are marked failed and returned
  // too (the whole-server-crash path, where the caller re-routes them
  // across the fleet).  A failed worker reports failed in its WorkerState,
  // never reports idle, and receives no work until RecoverWorker.  Note: a
  // live reconfiguration replaces the worker set, so failure marks do not
  // survive BeginReconfigure.  No-op (empty return) if already failed.
  std::vector<workload::Query> FailWorker(int index,
                                          bool requeue_orphans = true);

  // Heals worker `index`; parked/central work is re-offered immediately.
  void RecoverWorker(int index);

  // Removes every centrally held query (awaiting dispatch or parked by an
  // outage), marking each record failed at the current time, and returns
  // them -- the whole-server-crash path, where the fleet driver re-routes
  // them to surviving replicas.
  std::vector<workload::Query> FailCentralQueue();

  // Multiplies every subsequent query's *actual* execution time by
  // `factor` (a degraded replica / brownout).  Scheduler estimates are
  // deliberately unchanged: the scheduler plans against the profile while
  // the hardware underdelivers, exactly the estimate/actual divergence a
  // real slowdown causes.  1.0 restores nominal speed; factor must be > 0.
  void SetSlowdownFactor(double factor);

  int num_failed_workers() const { return num_failed_; }
  // Current worker count -- the *live* layout's size, which tracks
  // BeginReconfigure swaps (callers iterating workers to fail a whole
  // server must use this, not the configured layout).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  SimTime now() const { return now_; }
  bool reconfiguring() const { return reconfiguring_; }

  const std::vector<PartitionWorker>& workers() const { return workers_; }

 private:
  // The Event record and EventType live in sim/event_calendar.h beside
  // the structure that orders them.

  // An injected arrival on the sorted cursor; `seq` is drawn from the
  // same counter as heap events so the merged pop order reproduces the
  // single-queue order exactly.
  struct PendingArrival {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint32_t query = 0;
  };

  // Server-owned incremental scheduler view.  WorkerState snapshots are
  // cached per worker and re-materialized only when the worker's version
  // ticked or, for busy workers, when the view's time epoch moved (the
  // in-flight remainder of Twait is the one time-dependent term); Get is
  // O(1) and the per-consultation O(W) vector rebuild of the reference
  // path disappears.  The epoch is bumped by the event loop exactly once
  // per distinct simulated instant (the batched same-timestamp sweep), so
  // however many events land on one timestamp, each busy worker's wait
  // ticks refresh at most once for it.  layout_version() is
  // process-unique per BuildWorkers so schedulers can cache per-layout
  // derived state against it.
  class LiveWorkerView final : public sched::WorkerView {
   public:
    explicit LiveWorkerView(const InferenceServer& server)
        : server_(server) {}

    std::size_t size() const override;
    const sched::WorkerState& Get(std::size_t i) const override;
    SimTime WaitTicks(std::size_t i) const override;
    // Answered from the server's incrementally maintained idle set
    // (O(log W) per worker mutation, O(1) here); see idle_workers_.
    int MaxGpcsIdleWorker() const override;
    bool stable() const override { return true; }
    std::uint64_t layout_version() const override { return version_; }

    void OnLayoutChange(std::size_t num_workers);
    // One call per distinct simulated instant: invalidates every busy
    // worker's cached wait ticks in O(1) by moving the shared epoch.
    void BeginInstant() { ++time_epoch_; }

   private:
    struct Slot {
      sched::WorkerState state;
      std::uint64_t seen_version = std::numeric_limits<std::uint64_t>::max();
      std::uint64_t seen_epoch = std::numeric_limits<std::uint64_t>::max();
    };

    const InferenceServer& server_;
    std::uint64_t version_ = 0;
    std::uint64_t time_epoch_ = 0;
    mutable std::vector<Slot> slots_;
  };

  void Reset();
  void Push(SimTime time, EventType type, std::uint32_t payload);
  void PushWithSeq(SimTime time, std::uint64_t seq, EventType type,
                   std::uint32_t payload);
  // Pops the earliest pending event (merging the calendar -- or, on the
  // reference path, the heap -- with the arrival cursor by (time, seq))
  // into `ev`.  With `bounded`, events at or after `bound` stay pending.
  // Returns false when nothing qualifies.
  bool PopNextEvent(SimTime bound, bool bounded, Event& ev);
  // The shared event loop of AdvanceTo/Finish: pops events in (time, seq)
  // order and drains every event at the same timestamp in one sweep --
  // the current time is written and the view's time epoch bumped once per
  // distinct instant.
  void DrainEvents(SimTime bound, bool bounded);
  // Moves the clock, bumping the live view's time epoch on real moves.
  void SetNow(SimTime when);
  void ProcessEvent(const Event& ev);
  // Scheduler consultation for an arrival or a reconfiguration orphan:
  // the fast path hands the scheduler the live view; the reference path
  // materializes a snapshot vector per call, as the pre-optimization
  // engine did.
  int ConsultScheduler(const workload::Query& query, SimTime now,
                       bool orphan);
  void Dispatch(const workload::Query& query, SimTime now);
  void CompleteReconfigure(SimTime now);
  // Re-offers central-queue heads to the scheduler (central-queue
  // schedulers only), stopping at the first it declines; used after a
  // reconfiguration brings the new (all-idle) workers up.
  void ReofferCentralQueue(SimTime now);
  // Refills and returns the member scratch vector (reference engine path
  // and the OnReconfigure lifecycle hook).  The reference is invalidated
  // by the next call.
  const std::vector<sched::WorkerState>& Snapshots(SimTime now) const;
  void BuildWorkers(const std::vector<int>& partition_gpcs);
  // Re-files `worker` in idle_workers_ after a mutation that may have
  // changed its idleness (Enqueue or Finish).  No-op on the reference
  // engine path, which keeps no idle index.
  void SyncIdle(const PartitionWorker& worker);
  // Starts the worker's head query if the worker is free, recording start
  // metadata (including any model-swap charge) and scheduling the
  // completion event.
  void StartHead(PartitionWorker& worker, SimTime now);
  SimTime ActualTicks(int model_id, int gpcs, int batch);
  SimTime EstimateTicks(int model_id, int gpcs, int batch) const;

  ServerConfig config_;
  // `repertoire_` points at either the borrowed multi-model repertoire or
  // the owned single-model wrapper built by the legacy constructor.
  std::unique_ptr<profile::ModelRepertoire> owned_repertoire_;
  const profile::ModelRepertoire* repertoire_;
  sched::Scheduler& scheduler_;
  Rng rng_;
  // Dense lookup surface compiled from `repertoire_` once per server.
  profile::CompiledProfile compiled_;

  // Fast path: worker/frontend/reconfig events plus out-of-order arrival
  // injections, in the two-level bucketed calendar (O(1) amortized).
  EventCalendar calendar_;
  // Reference path: the same event population in a binary min-heap over
  // (time, seq), kept in a plain vector so Reset() retains its capacity
  // across incarnations.  Unused on the fast path.
  std::vector<Event> events_;
  // In-order arrivals: a flat cursor over the (already time-sorted)
  // injected trace, merged with the heap at pop time.
  std::vector<PendingArrival> arrivals_;
  std::size_t arrival_cursor_ = 0;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;

  std::vector<PartitionWorker> workers_;
  LiveWorkerView view_{*this};
  // Fast-path idle index backing LiveWorkerView::MaxGpcsIdleWorker():
  // {-gpcs, index} per idle worker, so begin() is the largest partition
  // with the lowest index -- exactly FIFS's scan winner.  Maintained by
  // SyncIdle at every Enqueue/Finish site and rebuilt by BuildWorkers;
  // empty on the reference engine path (its ad-hoc views report
  // kIdleScanUnsupported, forcing the original O(W) scan).
  std::set<std::pair<int, int>> idle_workers_;
  // Unassigned queries.  For central-queue schedulers this is the ordinary
  // central FIFO; during a reconfiguration window it additionally holds
  // every arrival (any scheduler) until the new layout is up.
  std::deque<workload::Query> central_queue_;
  std::vector<SimTime> frontend_free_at_;  // per lane
  std::vector<workload::Query> queries_;   // injected arrivals, by id
  std::vector<QueryRecord> records_;
  // Scratch for Snapshots(): reserved once per layout, reused per event.
  mutable std::vector<sched::WorkerState> snapshots_;

  // Live-reconfiguration state: while `reconfiguring_`, no query starts
  // and arrivals are held.  `reconfig_gen_` stamps the kReconfigDone event
  // so a superseded window's completion is ignored.
  bool reconfiguring_ = false;
  SimTime reconfig_ready_ = 0;
  std::vector<int> pending_layout_;
  std::uint32_t reconfig_gen_ = 0;

  // Fault-injection state.  `done_seq_[i]` is the event seq of worker i's
  // pending completion (written at every start), so FailWorker can cancel
  // it through `stale_done_`; the kWorkerDone handler drops cancelled
  // seqs.  All empty/neutral without fault injection: the clean-run cost
  // is one empty() check per completion.
  std::vector<std::uint64_t> done_seq_;
  std::set<std::uint64_t> stale_done_;
  int num_failed_ = 0;
  double slowdown_ = 1.0;
};

}  // namespace pe::sim
