// The multi-GPU inference server simulator.
//
// A discrete-event simulation of the paper's serving system (Figure 6):
// queries arrive from a trace, optionally pass through a finite-capacity
// frontend (the query-supply stage whose saturation the paper observed for
// MobileNet at 48 GPCs), are placed by the scheduler, and execute on
// heterogeneous GPU partition workers.
//
// Execution times are sampled from a ground-truth latency function
// (the roofline model, optionally with log-normal noise); the scheduler
// only ever sees the profiled estimates, so estimate/actual divergence is
// faithfully represented when noise is enabled.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "profile/profile_table.h"
#include "sched/scheduler.h"
#include "sim/metrics.h"
#include "sim/worker.h"
#include "workload/trace.h"

namespace pe::sim {

// Ground truth: actual execution latency of (partition gpcs, batch).
using LatencyFn = std::function<double(int gpcs, int batch)>;

struct FrontendConfig {
  bool enabled = false;
  // Parallel preprocessing lanes (the paper's host has 96 vCPUs).
  int lanes = 96;
  // Deterministic per-query preprocessing cost.
  SimTime cost_per_query = UsToTicks(500.0);
};

struct ServerConfig {
  // One worker per element; the multiset of GPU partition sizes.
  std::vector<int> partition_gpcs;
  // SLA target for bookkeeping (violation rate in stats).
  SimTime sla_target = 0;
  // Log-normal multiplicative execution-time noise (sigma in log space);
  // 0 disables noise and makes runs fully deterministic.
  double latency_noise_sigma = 0.0;
  std::uint64_t seed = 0x5EED;
  FrontendConfig frontend;
};

struct SimResult {
  std::vector<QueryRecord> records;
  ServerStats Stats(SimTime sla_target, double warmup_fraction = 0.1) const {
    return ComputeStats(records, sla_target, warmup_fraction);
  }
};

class InferenceServer {
 public:
  // `profile` (estimates) and `scheduler` must outlive the server.
  // `actual_latency` returns seconds for (gpcs, batch).
  InferenceServer(ServerConfig config, const profile::ProfileTable& profile,
                  sched::Scheduler& scheduler, LatencyFn actual_latency);

  // Replays the trace to completion and returns per-query records.
  SimResult Run(const workload::QueryTrace& trace);

  const std::vector<PartitionWorker>& workers() const { return workers_; }

 private:
  enum class EventType { kArrival, kFrontendDone, kWorkerDone };

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  // tie-breaker: deterministic FIFO order
    EventType type = EventType::kArrival;
    std::size_t payload = 0;  // trace index or worker index

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void Push(SimTime time, EventType type, std::size_t payload);
  void Dispatch(const workload::Query& query, SimTime now);
  // Starts the worker's head query if the worker is free, recording start
  // metadata and scheduling the completion event.
  void StartHead(PartitionWorker& worker, SimTime now);
  SimTime ActualTicks(int gpcs, int batch);
  SimTime EstimateTicks(int gpcs, int batch) const;

  ServerConfig config_;
  const profile::ProfileTable& profile_;
  sched::Scheduler& scheduler_;
  LatencyFn actual_latency_;
  Rng rng_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t next_seq_ = 0;

  std::vector<PartitionWorker> workers_;
  std::deque<workload::Query> central_queue_;
  std::vector<SimTime> frontend_free_at_;  // per lane
  std::vector<QueryRecord> records_;
};

}  // namespace pe::sim
