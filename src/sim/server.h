// The multi-GPU inference server simulator.
//
// A discrete-event simulation of the paper's serving system (Figure 6):
// queries arrive from a trace, optionally pass through a finite-capacity
// frontend (the query-supply stage whose saturation the paper observed for
// MobileNet at 48 GPCs), are placed by the scheduler, and execute on
// heterogeneous GPU partition workers.
//
// Execution times are sampled from a ground-truth latency function
// (the roofline model, optionally with log-normal noise); the scheduler
// only ever sees the profiled estimates, so estimate/actual divergence is
// faithfully represented when noise is enabled.
//
// The engine can be driven two ways:
//  * batch: Run(trace) replays a whole trace to completion;
//  * incremental: InjectQuery/InjectTrace feed arrivals, AdvanceTo(T)
//    simulates up to (but not including) instant T, BeginReconfigure swaps
//    the partition layout live, and Finish() drains everything left.
//
// A live reconfiguration models a MIG layout change as a first-class
// simulation event: in-flight queries drain on the old layout, queued work
// (central FIFO and the retired partitions' local queues) is carried over
// to the new workers through the scheduler's requeue hook, and dispatch is
// held for the drain + downtime window.  Queries delayed this way are
// marked in their QueryRecord (reconfig_stalls), so the queue-build-up
// transient a reconfiguration causes is measurable.  One RNG stream spans
// the whole run regardless of how many reconfigurations occur.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "profile/model_repertoire.h"
#include "profile/profile_table.h"
#include "sched/scheduler.h"
#include "sim/metrics.h"
#include "sim/worker.h"
#include "workload/trace.h"

namespace pe::sim {

// Ground truth: actual execution latency of (partition gpcs, batch).
// Alias of the repertoire's per-model function type.
using LatencyFn = profile::LatencyFn;

struct FrontendConfig {
  bool enabled = false;
  // Parallel preprocessing lanes (the paper's host has 96 vCPUs).
  int lanes = 96;
  // Deterministic per-query preprocessing cost.
  SimTime cost_per_query = UsToTicks(500.0);
};

struct ServerConfig {
  // One worker per element; the multiset of GPU partition sizes.
  std::vector<int> partition_gpcs;
  // SLA target for bookkeeping (violation rate in stats).
  SimTime sla_target = 0;
  // Log-normal multiplicative execution-time noise (sigma in log space);
  // 0 disables noise and makes runs fully deterministic.
  double latency_noise_sigma = 0.0;
  std::uint64_t seed = 0x5EED;
  FrontendConfig frontend;
  // Charged on top of a query's execution time when its start displaces a
  // different resident model on the partition (weight re-load / context
  // switch).  0 (the default) models free swaps; single-model runs never
  // swap, so the knob cannot perturb them either way.
  SimTime model_swap_cost = 0;
};

struct SimResult {
  std::vector<QueryRecord> records;
  ServerStats Stats(SimTime sla_target, double warmup_fraction = 0.1) const {
    return ComputeStats(records, sla_target, warmup_fraction);
  }
};

class InferenceServer {
 public:
  // Single-model convenience: wraps `profile` + `actual_latency` into an
  // owned one-entry repertoire (model id 0).  `profile` is copied, so only
  // `scheduler` must outlive the server.
  InferenceServer(ServerConfig config, const profile::ProfileTable& profile,
                  sched::Scheduler& scheduler, LatencyFn actual_latency);

  // Multi-model serving: every injected query's model_id must be a valid
  // id of `repertoire`, whose per-model tables provide the scheduler
  // estimates and whose latency functions provide the ground truth.
  // `repertoire` and `scheduler` must outlive the server.
  InferenceServer(ServerConfig config,
                  const profile::ModelRepertoire& repertoire,
                  sched::Scheduler& scheduler);

  // Batch driving: resets incremental state, replays the whole trace to
  // completion, and returns per-query records.  Equivalent to a fresh
  // InjectTrace(trace) + Finish().
  SimResult Run(const workload::QueryTrace& trace);

  // --- Incremental driving API ---------------------------------------
  // Feeds one arrival.  Ids must stay dense (query.id == number of queries
  // injected so far) and arrivals must not predate the current time.
  void InjectQuery(const workload::Query& query);

  // Feeds every query of `trace` (ids continuing the dense sequence).
  void InjectTrace(const workload::QueryTrace& trace);

  // Processes every pending event strictly before `when`, then sets the
  // current time to `when` (no-op when `when` is in the past).  Events at
  // exactly `when` stay pending: AdvanceTo leaves the simulation in the
  // state at the *start* of that instant.
  void AdvanceTo(SimTime when);

  // Begins a live reconfiguration to `new_layout` at the current time:
  // dispatch is held from now on, in-flight queries drain on the old
  // workers, and the new layout comes up `downtime` ticks after the drain
  // completes.  Queued work is carried over (nothing is lost or re-run).
  // Calling again before the window closes supersedes the pending target
  // layout and extends the window -- it never shortens.
  void BeginReconfigure(std::vector<int> new_layout, SimTime downtime);

  // Drains every remaining event (including a pending reconfiguration)
  // and returns the per-query records.
  SimResult Finish();

  SimTime now() const { return now_; }
  bool reconfiguring() const { return reconfiguring_; }

  const std::vector<PartitionWorker>& workers() const { return workers_; }

 private:
  enum class EventType { kArrival, kFrontendDone, kWorkerDone, kReconfigDone };

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;  // tie-breaker: deterministic FIFO order
    EventType type = EventType::kArrival;
    std::size_t payload = 0;  // query index, worker index, or reconfig gen

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void Reset();
  void Push(SimTime time, EventType type, std::size_t payload);
  void ProcessEvent(const Event& ev);
  void Dispatch(const workload::Query& query, SimTime now);
  void CompleteReconfigure(SimTime now);
  // Re-offers central-queue heads to the scheduler (central-queue
  // schedulers only), stopping at the first it declines; used after a
  // reconfiguration brings the new (all-idle) workers up.
  void ReofferCentralQueue(SimTime now);
  // Refills and returns the member scratch vector: the hot path runs once
  // per scheduler consultation, so the per-event allocation of a fresh
  // vector is avoided.  The reference is invalidated by the next call.
  const std::vector<sched::WorkerState>& Snapshots(SimTime now) const;
  void BuildWorkers(const std::vector<int>& partition_gpcs);
  // Starts the worker's head query if the worker is free, recording start
  // metadata (including any model-swap charge) and scheduling the
  // completion event.
  void StartHead(PartitionWorker& worker, SimTime now);
  SimTime ActualTicks(int model_id, int gpcs, int batch);
  SimTime EstimateTicks(int model_id, int gpcs, int batch) const;

  ServerConfig config_;
  // `repertoire_` points at either the borrowed multi-model repertoire or
  // the owned single-model wrapper built by the legacy constructor.
  std::unique_ptr<profile::ModelRepertoire> owned_repertoire_;
  const profile::ModelRepertoire* repertoire_;
  sched::Scheduler& scheduler_;
  Rng rng_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;

  std::vector<PartitionWorker> workers_;
  // Unassigned queries.  For central-queue schedulers this is the ordinary
  // central FIFO; during a reconfiguration window it additionally holds
  // every arrival (any scheduler) until the new layout is up.
  std::deque<workload::Query> central_queue_;
  std::vector<SimTime> frontend_free_at_;  // per lane
  std::vector<workload::Query> queries_;   // injected arrivals, by id
  std::vector<QueryRecord> records_;
  // Scratch for Snapshots(): reserved once per layout, reused per event.
  mutable std::vector<sched::WorkerState> snapshots_;

  // Live-reconfiguration state: while `reconfiguring_`, no query starts
  // and arrivals are held.  `reconfig_gen_` stamps the kReconfigDone event
  // so a superseded window's completion is ignored.
  bool reconfiguring_ = false;
  SimTime reconfig_ready_ = 0;
  std::vector<int> pending_layout_;
  std::size_t reconfig_gen_ = 0;
};

}  // namespace pe::sim
