#include "sim/worker.h"

#include <algorithm>
#include <cassert>

namespace pe::sim {

PartitionWorker::PartitionWorker(int index, int gpcs)
    : index_(index), gpcs_(gpcs) {
  assert(index >= 0);
  assert(gpcs >= 1);
}

void PartitionWorker::Enqueue(const workload::Query& query,
                              SimTime estimated) {
  assert(estimated >= 0);
  queue_.push_back(Pending{query, estimated});
  queued_estimated_ += estimated;
  ++version_;
}

const workload::Query& PartitionWorker::Head() const {
  assert(!queue_.empty());
  return queue_.front().query;
}

workload::Query PartitionWorker::Start(SimTime now, SimTime actual) {
  assert(CanStart());
  assert(actual > 0);
  Pending head = queue_.front();
  queue_.pop_front();
  queued_estimated_ -= head.estimated;
  current_ = head.query;
  current_estimated_ = head.estimated;
  current_started_ = now;
  busy_until_ = now + actual;
  resident_model_ = head.query.model_id;
  ++version_;
  return head.query;
}

workload::Query PartitionWorker::Finish() {
  assert(busy());
  workload::Query done = *current_;
  current_.reset();
  current_estimated_ = 0;
  ++version_;
  return done;
}

workload::Query PartitionWorker::Abort() {
  assert(busy());
  workload::Query victim = *current_;
  current_.reset();
  current_estimated_ = 0;
  busy_until_ = 0;
  ++version_;
  return victim;
}

workload::Query PartitionWorker::PopHead() {
  assert(!queue_.empty());
  Pending head = queue_.front();
  queue_.pop_front();
  queued_estimated_ -= head.estimated;
  ++version_;
  return head.query;
}

void PartitionWorker::SetFailed(bool failed) {
  if (failed_ == failed) return;
  failed_ = failed;
  ++version_;
}

std::vector<workload::Query> PartitionWorker::TakeQueue() {
  std::vector<workload::Query> orphans;
  orphans.reserve(queue_.size());
  for (const Pending& p : queue_) orphans.push_back(p.query);
  queue_.clear();
  queued_estimated_ = 0;
  ++version_;
  return orphans;
}

SimTime PartitionWorker::EstimatedWait(SimTime now) const {
  SimTime wait = queued_estimated_;
  if (busy()) {
    const SimTime elapsed = now - current_started_;
    wait += std::max<SimTime>(0, current_estimated_ - elapsed);
  }
  return wait;
}

sched::WorkerState PartitionWorker::Snapshot(SimTime now) const {
  sched::WorkerState s;
  s.index = index_;
  s.gpcs = gpcs_;
  s.idle = idle();
  s.wait_ticks = EstimatedWait(now);
  s.queue_length = queue_.size();
  s.resident_model = resident_model_;
  s.failed = failed_;
  return s;
}

}  // namespace pe::sim
