// A GPU partition worker: one MIG instance executing queries from its
// local FIFO queue (Figure 9: "all GPU partitions have [a] local scheduling
// queue").
//
// The worker tracks two clocks per query:
//  * the *actual* execution time, drawn from the ground-truth latency
//    function (roofline model, optionally with multiplicative noise);
//  * the *estimated* execution time from the profiled lookup table, used
//    to expose Twait (Eq. 1) to the scheduler -- including
//    Tremaining,current = Testimated,current - Telapsed,current via the
//    start timestamp, exactly as the paper implements it.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "sched/scheduler.h"
#include "workload/trace.h"

namespace pe::sim {

class PartitionWorker {
 public:
  PartitionWorker(int index, int gpcs);

  int index() const { return index_; }
  int gpcs() const { return gpcs_; }

  // Model whose weights are loaded on this partition: the model of the
  // most recently started query, -1 until the first start.  Persists
  // across idle periods (the model stays resident until displaced).
  int resident_model() const { return resident_model_; }

  // Mutation counter: ticks on every state change that can alter a
  // Snapshot (enqueue/start/finish/queue takeover).  The server's live
  // scheduler view re-materializes a worker's WorkerState only when this
  // moved -- or, for a busy worker, when the view's time epoch moved,
  // since the in-flight remainder of Twait is the one time-dependent
  // term.  The event loop bumps that epoch once per distinct simulated
  // instant, so however many same-timestamp events a batched sweep
  // processes, a busy worker's wait ticks refresh at most once per
  // instant.
  std::uint64_t version() const { return version_; }

  bool busy() const { return current_.has_value(); }
  bool idle() const { return !failed_ && !busy() && queue_.empty(); }
  std::size_t queue_length() const { return queue_.size(); }

  // Fault state: a failed partition (lost MIG slice) executes nothing and
  // never reports idle; the scheduler skips it until recovery.
  bool failed() const { return failed_; }
  void SetFailed(bool failed);

  // Appends a query to the local queue with its estimated execution time.
  void Enqueue(const workload::Query& query, SimTime estimated);

  // True if a query is ready to start (worker not busy, queue non-empty).
  bool CanStart() const { return !busy() && !queue_.empty(); }

  // The query at the head of the local queue; requires a non-empty queue.
  const workload::Query& Head() const;

  // Pops the head query and marks the worker busy until now + actual.
  // Returns the started query.
  workload::Query Start(SimTime now, SimTime actual);

  // Completes the in-flight query; the worker becomes free.
  workload::Query Finish();

  // Kills the in-flight query mid-execution (partition failure); the
  // worker becomes free immediately and the victim is returned so the
  // caller can record/retry it.  Requires busy().
  workload::Query Abort();

  // Pops the head query without starting it (deadline shed); requires a
  // non-empty queue.
  workload::Query PopHead();

  // Removes and returns every not-yet-started local-queue entry in FIFO
  // order, leaving the queue empty.  The in-flight query (if any) is
  // unaffected.  Used when a reconfiguration retires this partition and
  // its queued work must be carried over to the new layout.
  std::vector<workload::Query> TakeQueue();

  const workload::Query& current() const { return *current_; }
  SimTime current_started() const { return current_started_; }
  SimTime busy_until() const { return busy_until_; }

  // Twait per Eq. 1 at time `now`: estimated time of all queued queries
  // plus the estimated remainder of the in-flight one.
  SimTime EstimatedWait(SimTime now) const;

  // Snapshot for the scheduler.
  sched::WorkerState Snapshot(SimTime now) const;

 private:
  struct Pending {
    workload::Query query;
    SimTime estimated;
  };

  int index_;
  int gpcs_;
  int resident_model_ = -1;
  bool failed_ = false;
  std::uint64_t version_ = 0;
  std::deque<Pending> queue_;
  SimTime queued_estimated_ = 0;  // running sum over queue_

  std::optional<workload::Query> current_;
  SimTime current_estimated_ = 0;
  SimTime current_started_ = 0;
  SimTime busy_until_ = 0;
};

}  // namespace pe::sim
