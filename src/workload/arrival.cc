#include "workload/arrival.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pe::workload {

PoissonArrivals::PoissonArrivals(double rate_qps) : rate_qps_(rate_qps) {
  if (rate_qps <= 0.0) {
    throw std::invalid_argument("PoissonArrivals: rate must be positive");
  }
}

SimTime PoissonArrivals::NextGap(Rng& rng) {
  const double gap_sec = rng.Exponential(rate_qps_);
  return std::max<SimTime>(1, SecToTicks(gap_sec));
}

std::string PoissonArrivals::Describe() const {
  std::ostringstream oss;
  oss << "poisson(rate=" << rate_qps_ << " qps)";
  return oss.str();
}

BurstyArrivals::BurstyArrivals(double base_rate_qps, double burst_rate_qps,
                               double mean_normal_sec, double mean_burst_sec)
    : base_rate_(base_rate_qps),
      burst_rate_(burst_rate_qps),
      mean_normal_sec_(mean_normal_sec),
      mean_burst_sec_(mean_burst_sec) {
  if (base_rate_qps <= 0.0 || burst_rate_qps <= 0.0 ||
      mean_normal_sec <= 0.0 || mean_burst_sec <= 0.0) {
    throw std::invalid_argument("BurstyArrivals: all parameters must be > 0");
  }
}

SimTime BurstyArrivals::NextGap(Rng& rng) {
  // Draw a gap at the current state's rate; switch states when the dwell
  // budget is exhausted.
  if (state_left_ <= 0) {
    in_burst_ = !in_burst_;
    const double dwell_sec =
        rng.Exponential(1.0 / (in_burst_ ? mean_burst_sec_ : mean_normal_sec_));
    state_left_ = std::max<SimTime>(1, SecToTicks(dwell_sec));
  }
  const double rate = in_burst_ ? burst_rate_ : base_rate_;
  const SimTime gap = std::max<SimTime>(1, SecToTicks(rng.Exponential(rate)));
  state_left_ -= gap;
  return gap;
}

double BurstyArrivals::MeanRateQps() const {
  // Time-weighted average of the two states.
  const double total = mean_normal_sec_ + mean_burst_sec_;
  return (base_rate_ * mean_normal_sec_ + burst_rate_ * mean_burst_sec_) /
         total;
}

std::string BurstyArrivals::Describe() const {
  std::ostringstream oss;
  oss << "bursty(base=" << base_rate_ << ", burst=" << burst_rate_ << " qps)";
  return oss.str();
}

}  // namespace pe::workload
