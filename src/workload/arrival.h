// Query arrival processes.
//
// The paper uses MLPerf's recommended Poisson arrival process.  A bursty
// (Markov-modulated) process is provided as an extension for stress tests.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/sim_time.h"

namespace pe::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Returns the gap to the next arrival (strictly positive ticks).
  virtual SimTime NextGap(Rng& rng) = 0;

  // Mean offered load in queries/sec.
  virtual double MeanRateQps() const = 0;

  virtual std::string Describe() const = 0;
};

// Poisson arrivals: i.i.d. exponential gaps at `rate_qps`.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_qps);

  SimTime NextGap(Rng& rng) override;
  double MeanRateQps() const override { return rate_qps_; }
  std::string Describe() const override;

 private:
  double rate_qps_;
};

// Two-state Markov-modulated Poisson process: alternates between a normal
// and a burst state with exponentially distributed dwell times.  Extension
// beyond the paper for failure-injection style load tests.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double base_rate_qps, double burst_rate_qps,
                 double mean_normal_sec, double mean_burst_sec);

  SimTime NextGap(Rng& rng) override;
  double MeanRateQps() const override;
  std::string Describe() const override;

 private:
  double base_rate_;
  double burst_rate_;
  double mean_normal_sec_;
  double mean_burst_sec_;
  bool in_burst_ = false;
  SimTime state_left_ = 0;
};

}  // namespace pe::workload
