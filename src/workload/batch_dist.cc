#include "workload/batch_dist.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pe::workload {
namespace {

// Standard normal CDF.
double Phi(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// Builds a CDF vector from a PMF vector (index 0 unused).
std::vector<double> BuildCdf(const std::vector<double>& pmf) {
  std::vector<double> cdf(pmf.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 1; i < pmf.size(); ++i) {
    acc += pmf[i];
    cdf[i] = acc;
  }
  if (!cdf.empty()) cdf.back() = 1.0;  // guard against rounding
  return cdf;
}

int SampleFromCdf(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.NextDouble();
  // First index with cdf >= u; index 0 is unused (cdf[0] == 0).
  const auto it = std::lower_bound(cdf.begin() + 1, cdf.end(), u);
  return static_cast<int>(it - cdf.begin());
}

}  // namespace

std::vector<double> BatchDistribution::PdfVector() const {
  std::vector<double> v(static_cast<std::size_t>(max_batch()) + 1, 0.0);
  for (int b = 1; b <= max_batch(); ++b) {
    v[static_cast<std::size_t>(b)] = Pdf(b);
  }
  return v;
}

double BatchDistribution::MeanBatch() const {
  double mean = 0.0;
  for (int b = 1; b <= max_batch(); ++b) mean += b * Pdf(b);
  return mean;
}

LogNormalBatchDist::LogNormalBatchDist(double median, double sigma,
                                       int max_batch)
    : median_(median),
      sigma_(sigma),
      mu_(std::log(median)),
      max_batch_(max_batch) {
  if (median <= 0.0 || sigma <= 0.0 || max_batch < 1) {
    throw std::invalid_argument("LogNormalBatchDist: invalid parameters");
  }
  // Exact mass of the rounded-and-clamped continuous distribution:
  //   P(b) = Phi((ln(b+0.5)-mu)/sigma) - Phi((ln(b-0.5)-mu)/sigma)
  // with the lower tail folded into b=1 and the upper tail into max_batch.
  pmf_.assign(static_cast<std::size_t>(max_batch_) + 1, 0.0);
  double total = 0.0;
  for (int b = 1; b <= max_batch_; ++b) {
    const double hi = (b == max_batch_)
                          ? 1.0
                          : Phi((std::log(b + 0.5) - mu_) / sigma_);
    const double lo = (b == 1) ? 0.0 : Phi((std::log(b - 0.5) - mu_) / sigma_);
    pmf_[static_cast<std::size_t>(b)] = hi - lo;
    total += hi - lo;
  }
  for (auto& p : pmf_) p /= total;
  cdf_ = BuildCdf(pmf_);
}

double LogNormalBatchDist::Pdf(int b) const {
  if (b < 1 || b > max_batch_) return 0.0;
  return pmf_[static_cast<std::size_t>(b)];
}

int LogNormalBatchDist::Sample(Rng& rng) const {
  return SampleFromCdf(cdf_, rng);
}

std::string LogNormalBatchDist::Describe() const {
  std::ostringstream oss;
  oss << "lognormal(median=" << median_ << ", sigma=" << sigma_
      << ", max=" << max_batch_ << ")";
  return oss.str();
}

FixedBatchDist::FixedBatchDist(int batch) : batch_(batch) {
  if (batch < 1) throw std::invalid_argument("FixedBatchDist: batch < 1");
}

int FixedBatchDist::Sample(Rng& rng) const {
  (void)rng;
  return batch_;
}

std::string FixedBatchDist::Describe() const {
  return "fixed(batch=" + std::to_string(batch_) + ")";
}

EmpiricalBatchDist::EmpiricalBatchDist(std::vector<double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("EmpiricalBatchDist: empty weights");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("EmpiricalBatchDist: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("EmpiricalBatchDist: zero total weight");
  }
  pmf_.assign(weights.size() + 1, 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pmf_[i + 1] = weights[i] / total;
  }
  cdf_ = BuildCdf(pmf_);
}

int EmpiricalBatchDist::max_batch() const {
  return static_cast<int>(pmf_.size()) - 1;
}

double EmpiricalBatchDist::Pdf(int b) const {
  if (b < 1 || b >= static_cast<int>(pmf_.size())) return 0.0;
  return pmf_[static_cast<std::size_t>(b)];
}

int EmpiricalBatchDist::Sample(Rng& rng) const {
  return SampleFromCdf(cdf_, rng);
}

std::string EmpiricalBatchDist::Describe() const {
  return "empirical(max=" + std::to_string(max_batch()) + ")";
}

}  // namespace pe::workload
