// Query (batch) size distributions.
//
// The paper (Sections II-A, V) models inference query sizes as log-normal,
// discretized to integer batch sizes in [1, max_batch] -- the default
// configuration uses max batch 32 and sweeps sigma in {0.3, 0.9, 1.8} for
// Figure 13(a) and max batch in {16, 32, 64} for Figure 13(b).
//
// PARIS consumes the distribution as a PDF over integer batch sizes
// (Algorithm 1, Dist[]); the trace generator samples from the same PDF so
// the partitioning decision and the served traffic are consistent, exactly
// as in the paper where the server estimates the PDF from recent traffic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pe::workload {

// Interface: a probability mass function over integer batch sizes
// [1, max_batch] plus sampling.
class BatchDistribution {
 public:
  virtual ~BatchDistribution() = default;

  virtual int max_batch() const = 0;

  // P(batch == b); zero outside [1, max_batch].  Sums to 1 over the range.
  virtual double Pdf(int b) const = 0;

  // Draws one batch size.
  virtual int Sample(Rng& rng) const = 0;

  virtual std::string Describe() const = 0;

  // Full PMF as a vector indexed by batch size (index 0 unused).
  std::vector<double> PdfVector() const;

  // Mean batch size under the PMF.
  double MeanBatch() const;
};

// Discretized log-normal: a continuous LogNormal(mu, sigma) draw is rounded
// to the nearest integer and clamped to [1, max_batch]; the PMF is the
// corresponding exact probability mass (tails folded into the endpoints).
class LogNormalBatchDist final : public BatchDistribution {
 public:
  // `median` is exp(mu): the paper's "batch sizes centered around a
  // specific value".  Default median 4, sigma 0.9 (paper default variance),
  // max batch 32.
  LogNormalBatchDist(double median = 4.0, double sigma = 0.9,
                     int max_batch = 32);

  int max_batch() const override { return max_batch_; }
  double Pdf(int b) const override;
  int Sample(Rng& rng) const override;
  std::string Describe() const override;

  double sigma() const { return sigma_; }
  double median() const { return median_; }

 private:
  double median_;
  double sigma_;
  double mu_;
  int max_batch_;
  std::vector<double> pmf_;  // index = batch size, [0] unused
  std::vector<double> cdf_;  // for inverse-CDF sampling
};

// Fixed batch size (used by the characterization experiments, e.g. Figure 3
// runs everything at batch 8).
class FixedBatchDist final : public BatchDistribution {
 public:
  explicit FixedBatchDist(int batch);

  int max_batch() const override { return batch_; }
  double Pdf(int b) const override { return b == batch_ ? 1.0 : 0.0; }
  int Sample(Rng& rng) const override;
  std::string Describe() const override;

 private:
  int batch_;
};

// Arbitrary empirical PMF (e.g. the hand-constructed PDF of the paper's
// Figure 8 example, or a PDF estimated from served traffic).
class EmpiricalBatchDist final : public BatchDistribution {
 public:
  // `pmf[b]` is the (unnormalized) weight of batch size b+1; normalized
  // internally.  Must be non-empty with a positive sum.
  explicit EmpiricalBatchDist(std::vector<double> weights);

  int max_batch() const override;
  double Pdf(int b) const override;
  int Sample(Rng& rng) const override;
  std::string Describe() const override;

 private:
  std::vector<double> pmf_;  // index = batch size, [0] unused
  std::vector<double> cdf_;
};

}  // namespace pe::workload
