#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pe::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Strict numeric parse for override values: the whole token must be
// consumed, so "0.6x" is an error, not 0.6.
double ParseValue(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != value.size()) {
    throw std::invalid_argument("scenario: bad value for " + key + ": '" +
                                value + "'");
  }
  return v;
}

}  // namespace

// ---- Take -----------------------------------------------------------------

QueryTrace Take(TraceSource& source, std::size_t max_queries, Rng& rng) {
  std::vector<Query> queries;
  queries.reserve(max_queries);
  for (std::size_t i = 0; i < max_queries; ++i) {
    auto q = source.Next(rng);
    if (!q) break;
    queries.push_back(*q);
  }
  return QueryTrace(std::move(queries));
}

// ---- Legacy-shape adapters --------------------------------------------------

ArrivalTraceSource::ArrivalTraceSource(ArrivalProcess& arrivals,
                                       const BatchDistribution& dist)
    : arrivals_(arrivals), dist_(dist) {}

std::optional<Query> ArrivalTraceSource::Next(Rng& rng) {
  now_ += arrivals_.NextGap(rng);
  Query q;
  q.id = id_++;
  q.arrival = now_;
  q.batch = dist_.Sample(rng);
  return q;
}

std::string ArrivalTraceSource::Describe() const {
  return arrivals_.Describe() + " x " + dist_.Describe();
}

PhasedTraceSource::PhasedTraceSource(ArrivalProcess& arrivals,
                                     std::vector<WorkloadPhase> phases)
    : arrivals_(arrivals), phases_(std::move(phases)) {
  if (phases_.empty()) {
    throw std::invalid_argument("PhasedTraceSource: no phases");
  }
  for (const auto& phase : phases_) {
    if (phase.dist == nullptr) {
      throw std::invalid_argument(
          "PhasedTraceSource: null phase distribution");
    }
  }
}

std::optional<Query> PhasedTraceSource::Next(Rng& rng) {
  while (phase_ + 1 < phases_.size() &&
         in_phase_ >= phases_[phase_].num_queries) {
    ++phase_;
    in_phase_ = 0;
  }
  ++in_phase_;
  now_ += arrivals_.NextGap(rng);
  Query q;
  q.id = id_++;
  q.arrival = now_;
  q.batch = phases_[phase_].dist->Sample(rng);
  return q;
}

std::string PhasedTraceSource::Describe() const {
  return arrivals_.Describe() + " x " + std::to_string(phases_.size()) +
         " phases";
}

MixTraceSource::MixTraceSource(ArrivalProcess& arrivals, const MixSpec& mix)
    : arrivals_(arrivals), mix_(mix), shares_(mix.NormalizedShares()) {
  for (const auto& c : mix_.components) {
    if (c.dist == nullptr) {
      throw std::invalid_argument("MixTraceSource: null distribution");
    }
  }
}

std::optional<Query> MixTraceSource::Next(Rng& rng) {
  now_ += arrivals_.NextGap(rng);
  // Single-component mixes skip the model-selection draw so the degenerate
  // one-model case stays bit-identical to the ArrivalTraceSource stream.
  std::size_t k = 0;
  if (mix_.components.size() > 1) {
    const double u = rng.NextDouble();
    double acc = 0.0;
    for (std::size_t j = 0; j < shares_.size(); ++j) {
      acc += shares_[j];
      if (u < acc || j + 1 == shares_.size()) {
        k = j;
        break;
      }
    }
  }
  const MixComponent& c = mix_.components[k];
  Query q;
  q.id = id_++;
  q.arrival = now_;
  q.batch = c.dist->Sample(rng);
  q.model_id = c.model_id;
  return q;
}

std::string MixTraceSource::Describe() const {
  return arrivals_.Describe() + " x mix(" +
         std::to_string(mix_.components.size()) + " models)";
}

std::optional<Query> ReplayTraceSource::Next(Rng& rng) {
  (void)rng;  // replay is RNG-free by design
  if (next_ >= trace_.size()) return std::nullopt;
  return trace_.queries()[next_++];
}

std::string ReplayTraceSource::Describe() const {
  return "replay(" + std::to_string(trace_.size()) + " queries)";
}

// ---- Rate curves ------------------------------------------------------------

const char* ToString(RateShape shape) {
  switch (shape) {
    case RateShape::kConstant: return "constant";
    case RateShape::kDiurnal: return "diurnal";
    case RateShape::kFlash: return "flash";
  }
  return "?";
}

double RateCurve::QpsAt(double t_sec) const {
  switch (shape) {
    case RateShape::kConstant:
      return base_qps;
    case RateShape::kDiurnal:
      return base_qps *
             (1.0 + amplitude * std::sin(2.0 * kPi * t_sec / period_sec));
    case RateShape::kFlash: {
      if (t_sec < flash_at_sec) return base_qps;
      const double decay = std::exp(-(t_sec - flash_at_sec) / flash_decay_sec);
      return base_qps * (1.0 + (flash_mult - 1.0) * decay);
    }
  }
  return base_qps;
}

std::string RateCurve::Describe() const {
  std::ostringstream oss;
  oss << ToString(shape) << "(base=" << base_qps;
  if (shape == RateShape::kDiurnal) {
    oss << ", amp=" << amplitude << ", period=" << period_sec << "s";
  } else if (shape == RateShape::kFlash) {
    oss << ", x" << flash_mult << "@" << flash_at_sec
        << "s, decay=" << flash_decay_sec << "s";
  }
  oss << ")";
  return oss.str();
}

// ---- ScenarioSpec ------------------------------------------------------------

void ScenarioSpec::Validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument("ScenarioSpec '" + name + "': " + what);
  };
  if (components.empty()) fail("no components");
  if (!(rate.base_qps > 0.0)) fail("rate must be positive");
  if (rate.shape == RateShape::kDiurnal) {
    if (rate.amplitude < 0.0 || rate.amplitude >= 1.0) {
      fail("diurnal amplitude must be in [0, 1)");
    }
    if (!(rate.period_sec > 0.0)) fail("diurnal period must be positive");
  }
  if (rate.shape == RateShape::kFlash) {
    if (rate.flash_at_sec < 0.0) fail("flash time must be >= 0");
    if (rate.flash_mult < 1.0) fail("flash multiplier must be >= 1");
    if (!(rate.flash_decay_sec > 0.0)) fail("flash decay must be positive");
  }
  if (max_batch < 1) fail("max_batch must be >= 1");
  if (!(drift_window_sec > 0.0)) fail("drift window must be positive");
  if (sigma_steps < 2) fail("sigma_steps must be >= 2");
  double start_total = 0.0;
  double end_total = 0.0;
  for (const auto& c : components) {
    if (c.weight < 0.0) fail("negative component weight");
    if (!(c.median > 0.0)) fail("component median must be positive");
    if (!(c.sigma > 0.0)) fail("component sigma must be positive");
    if (c.end_sigma >= 0.0 && !(c.end_sigma > 0.0)) {
      fail("drifted sigma must be positive");
    }
    start_total += c.weight;
    end_total += c.end_weight < 0.0 ? c.weight : c.end_weight;
  }
  if (!(start_total > 0.0)) fail("component weights sum to zero");
  if (!(end_total > 0.0)) fail("drifted weights sum to zero");
  if (burst.rate_per_sec < 0.0) fail("burst rate must be >= 0");
  if (burst.rate_per_sec > 0.0) {
    if (!(burst.duration_sec > 0.0)) fail("burst duration must be positive");
    if (!(burst.share > 0.0 && burst.share <= 1.0)) {
      fail("burst share must be in (0, 1]");
    }
  }
}

std::string ScenarioSpec::Describe() const {
  std::ostringstream oss;
  oss << name << "{" << rate.Describe() << ", models="
      << components.size();
  bool drifting = false;
  for (const auto& c : components) {
    if (c.end_weight >= 0.0 || c.end_sigma >= 0.0) drifting = true;
  }
  if (drifting) oss << ", drift=" << drift_window_sec << "s";
  if (burst.rate_per_sec > 0.0 && components.size() > 1) {
    oss << ", bursts=" << burst.rate_per_sec << "/s";
  }
  oss << "}";
  return oss.str();
}

// ---- ScenarioTraceSource -------------------------------------------------------

ScenarioTraceSource::ScenarioTraceSource(ScenarioSpec spec)
    : spec_(std::move(spec)) {
  spec_.Validate();
  dists_.reserve(spec_.components.size());
  for (const auto& c : spec_.components) {
    std::vector<std::unique_ptr<BatchDistribution>> steps;
    if (c.end_sigma < 0.0) {
      steps.push_back(std::make_unique<LogNormalBatchDist>(c.median, c.sigma,
                                                           spec_.max_batch));
    } else {
      // Discretized sigma drift: step s covers frac in [s/N, (s+1)/N).
      for (int s = 0; s < spec_.sigma_steps; ++s) {
        const double frac =
            static_cast<double>(s) / static_cast<double>(spec_.sigma_steps - 1);
        const double sigma = c.sigma + frac * (c.end_sigma - c.sigma);
        steps.push_back(std::make_unique<LogNormalBatchDist>(c.median, sigma,
                                                             spec_.max_batch));
      }
    }
    dists_.push_back(std::move(steps));
    if (c.end_weight >= 0.0 && c.end_weight != c.weight) static_mix_ = false;
  }
  if (spec_.burst.rate_per_sec > 0.0 && spec_.components.size() > 1) {
    static_mix_ = false;
  }
  // Static mixes pay the normalization once, in exactly the
  // MixSpec::NormalizedShares arithmetic (bit-identity with the legacy
  // generator depends on it).
  weights_.resize(spec_.components.size(), 0.0);
  if (static_mix_) EffectiveWeights(0.0, /*in_burst=*/false, 0);
}

int ScenarioTraceSource::SigmaStep(double frac) const {
  const int step = static_cast<int>(frac * spec_.sigma_steps);
  return std::min(step, spec_.sigma_steps - 1);
}

void ScenarioTraceSource::EffectiveWeights(double t_sec, bool in_burst,
                                           int burst_model) {
  const double frac =
      std::min(1.0, std::max(0.0, t_sec / spec_.drift_window_sec));
  double total = 0.0;
  for (std::size_t j = 0; j < spec_.components.size(); ++j) {
    const auto& c = spec_.components[j];
    weights_[j] = c.end_weight < 0.0
                      ? c.weight
                      : c.weight + frac * (c.end_weight - c.weight);
    total += weights_[j];
  }
  for (double& w : weights_) w /= total;
  if (in_burst) {
    for (std::size_t j = 0; j < weights_.size(); ++j) {
      weights_[j] *= 1.0 - spec_.burst.share;
      if (static_cast<int>(j) == burst_model) weights_[j] += spec_.burst.share;
    }
  }
}

std::optional<Query> ScenarioTraceSource::Next(Rng& rng) {
  // Gap at the rate in effect at the previous arrival; a constant curve
  // reduces to PoissonArrivals::NextGap draw for draw.
  const double qps = spec_.rate.QpsAt(TicksToSec(now_));
  now_ += std::max<SimTime>(1, SecToTicks(rng.Exponential(qps)));
  const double t_sec = TicksToSec(now_);

  // Burst state machine (only consulted when bursts can matter).
  bool in_burst = false;
  if (spec_.burst.rate_per_sec > 0.0 && spec_.components.size() > 1) {
    if (!burst_clock_started_) {
      burst_clock_started_ = true;
      next_burst_at_ = std::max<SimTime>(
          1, SecToTicks(rng.Exponential(spec_.burst.rate_per_sec)));
    }
    while (now_ >= next_burst_at_) {
      burst_model_ = static_cast<int>(rng.UniformInt(
          0, static_cast<std::int64_t>(spec_.components.size()) - 1));
      burst_until_ = next_burst_at_ + SecToTicks(spec_.burst.duration_sec);
      next_burst_at_ =
          burst_until_ +
          std::max<SimTime>(
              1, SecToTicks(rng.Exponential(spec_.burst.rate_per_sec)));
    }
    in_burst = now_ < burst_until_;
  }

  // Model pick: one uniform draw walked over the effective weights, in
  // the canonical mixed order (gap, model, batch); single-component
  // scenarios skip the draw entirely.
  std::size_t k = 0;
  if (spec_.components.size() > 1) {
    if (!static_mix_) EffectiveWeights(t_sec, in_burst, burst_model_);
    const double u = rng.NextDouble();
    double acc = 0.0;
    for (std::size_t j = 0; j < weights_.size(); ++j) {
      acc += weights_[j];
      if (u < acc || j + 1 == weights_.size()) {
        k = j;
        break;
      }
    }
  }

  const auto& steps = dists_[k];
  const BatchDistribution* dist = steps.front().get();
  if (steps.size() > 1) {
    const double frac =
        std::min(1.0, std::max(0.0, t_sec / spec_.drift_window_sec));
    dist = steps[static_cast<std::size_t>(SigmaStep(frac))].get();
  }

  Query q;
  q.id = id_++;
  q.arrival = now_;
  q.batch = dist->Sample(rng);
  q.model_id = spec_.components[k].model_id;
  return q;
}

std::string ScenarioTraceSource::Describe() const { return spec_.Describe(); }

QueryTrace GenerateScenarioTrace(const ScenarioSpec& spec,
                                 std::size_t num_queries,
                                 std::uint64_t seed) {
  Rng rng(seed);
  ScenarioTraceSource source(spec);
  return Take(source, num_queries, rng);
}

// ---- Preset registry -----------------------------------------------------------

ScenarioOptions ParseScenarioRef(const std::string& ref) {
  ScenarioOptions opts;
  const auto colon = ref.find(':');
  opts.name = ref.substr(0, colon);
  if (opts.name.empty()) {
    throw std::invalid_argument("scenario: empty name in '" + ref + "'");
  }
  if (colon == std::string::npos) return opts;
  std::string rest = ref.substr(colon + 1);
  std::string::size_type begin = 0;
  for (;;) {
    const auto comma = rest.find(',', begin);
    const std::string pair = rest.substr(begin, comma - begin);
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      throw std::invalid_argument("scenario: expected key=val, got '" + pair +
                                  "'");
    }
    opts.overrides.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return opts;
}

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string> names = {
      "steady", "diurnal", "flashcrowd", "mixdrift", "heavytail"};
  return names;
}

void ApplyScenario(ScenarioSpec& spec, const ScenarioOptions& opts) {
  spec.name = opts.name;
  if (opts.name == "steady") {
    spec.rate.shape = RateShape::kConstant;
  } else if (opts.name == "diurnal") {
    spec.rate.shape = RateShape::kDiurnal;
    spec.rate.amplitude = 0.6;
    spec.rate.period_sec = 60.0;
  } else if (opts.name == "flashcrowd") {
    spec.rate.shape = RateShape::kFlash;
    spec.rate.flash_at_sec = 10.0;
    spec.rate.flash_mult = 8.0;
    spec.rate.flash_decay_sec = 5.0;
  } else if (opts.name == "mixdrift") {
    // The mix inverts over the drift window: component j drifts to the
    // start weight of component K-1-j.  The adversarial shape the
    // MixedRepartitionController exists to chase; a no-op on one model.
    spec.rate.shape = RateShape::kConstant;
    const std::size_t k = spec.components.size();
    for (std::size_t j = 0; j < k; ++j) {
      spec.components[j].end_weight = spec.components[k - 1 - j].weight;
    }
  } else if (opts.name == "heavytail") {
    spec.rate.shape = RateShape::kConstant;
    for (auto& c : spec.components) c.sigma = 1.8;
  } else {
    std::string known;
    for (const auto& n : ScenarioNames()) {
      if (!known.empty()) known += "|";
      known += n;
    }
    throw std::invalid_argument("scenario: unknown preset '" + opts.name +
                                "' (expected " + known + ")");
  }

  for (const auto& [key, value] : opts.overrides) {
    const double v = ParseValue(key, value);
    if (key == "rate") {
      spec.rate.base_qps = v;
    } else if (key == "amplitude") {
      spec.rate.amplitude = v;
    } else if (key == "period") {
      spec.rate.period_sec = v;
    } else if (key == "at") {
      spec.rate.flash_at_sec = v;
    } else if (key == "mult") {
      spec.rate.flash_mult = v;
    } else if (key == "decay") {
      spec.rate.flash_decay_sec = v;
    } else if (key == "window") {
      spec.drift_window_sec = v;
    } else if (key == "sigma") {
      for (auto& c : spec.components) c.sigma = v;
    } else if (key == "burst-rate") {
      spec.burst.rate_per_sec = v;
    } else if (key == "burst-dur") {
      spec.burst.duration_sec = v;
    } else if (key == "burst-share") {
      spec.burst.share = v;
    } else {
      throw std::invalid_argument(
          "scenario: unknown key '" + key +
          "' (expected rate|amplitude|period|at|mult|decay|window|sigma|"
          "burst-rate|burst-dur|burst-share)");
    }
  }
  spec.Validate();
}

}  // namespace pe::workload
