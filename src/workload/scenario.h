// Scenario-first workload API.
//
// One composable abstraction replaces the parallel Generate*Trace free
// functions: a workload::TraceSource is a pull-based stream of
// (time, model, batch) events.  Finite sources (trace replay) signal
// exhaustion by returning nullopt; generative sources are unbounded and
// Take() cuts them to length.
//
// On top of the interface sits the declarative ScenarioSpec: a rate curve
// (constant / diurnal sinusoid / flash-crowd step+decay), per-model batch
// distributions (optionally drifting sigma), and a model-mix schedule
// (static weights, linear drift, correlated bursts).  A named preset
// registry (`steady`, `diurnal`, `flashcrowd`, `mixdrift`, `heavytail`)
// applies adversarial shapes to any spec, so every CLI subcommand and
// bench exercises new policies against the same suite
// (`--scenario NAME[:key=val,...]`).
//
// Determinism contract: a source's output is a pure function of its spec
// and the Rng stream it is pulled with.  A single-component constant-rate
// scenario consumes draws in the canonical single-model order (gap, batch),
// and a static multi-component one in the mixed order (gap, model, batch),
// matching the adapter sources below bit-for-bit on the same seed
// (asserted by workload_scenario_test).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"
#include "workload/trace.h"

namespace pe::workload {

// ---- The abstraction ----------------------------------------------------

// A pull-based stream of query events.  Stateful: each Next() advances the
// source's internal clock and id counter.  Implementations must be a pure
// function of (construction arguments, pulls, rng draws) -- no hidden
// global state -- so any drained prefix reproduces bit-identically.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // The next event, or nullopt when a finite source is exhausted.
  // Generative sources never return nullopt.
  virtual std::optional<Query> Next(Rng& rng) = 0;

  virtual std::string Describe() const = 0;
};

// Drains up to `max_queries` events into a trace (stops early only when
// the source is exhausted).
QueryTrace Take(TraceSource& source, std::size_t max_queries, Rng& rng);

// ---- Adapters over the legacy generator inputs ---------------------------

// The single-model shape: one arrival process, one batch distribution,
// model id fixed at 0.  Both references are borrowed.  Draw order per
// query is (gap, batch) -- the canonical order every consumer pins.
class ArrivalTraceSource final : public TraceSource {
 public:
  ArrivalTraceSource(ArrivalProcess& arrivals, const BatchDistribution& dist);

  std::optional<Query> Next(Rng& rng) override;
  std::string Describe() const override;

 private:
  ArrivalProcess& arrivals_;
  const BatchDistribution& dist_;
  SimTime now_ = 0;
  std::uint64_t id_ = 0;
};

// The drifting shape: the batch distribution switches across
// count-bounded phases while the arrival process runs continuously.  Pulls
// past the last phase's budget keep its distribution (the tail of the day
// looks like its final phase).  Throws std::invalid_argument on an empty
// phase list or a null phase distribution.
class PhasedTraceSource final : public TraceSource {
 public:
  PhasedTraceSource(ArrivalProcess& arrivals,
                    std::vector<WorkloadPhase> phases);

  std::optional<Query> Next(Rng& rng) override;
  std::string Describe() const override;

 private:
  ArrivalProcess& arrivals_;
  std::vector<WorkloadPhase> phases_;
  std::size_t phase_ = 0;
  std::size_t in_phase_ = 0;
  SimTime now_ = 0;
  std::uint64_t id_ = 0;
};

// The mixed shape: model identity drawn from a MixSpec's shares, batch
// from the chosen component's distribution, draw order (gap, model,
// batch).  `mix` is borrowed (components borrow their distributions).
class MixTraceSource final : public TraceSource {
 public:
  MixTraceSource(ArrivalProcess& arrivals, const MixSpec& mix);

  std::optional<Query> Next(Rng& rng) override;
  std::string Describe() const override;

 private:
  ArrivalProcess& arrivals_;
  const MixSpec& mix_;
  std::vector<double> shares_;  // normalized
  SimTime now_ = 0;
  std::uint64_t id_ = 0;
};

// Replays a captured trace verbatim (consumes no RNG); nullopt at the end.
// `trace` is borrowed and must outlive the source.
class ReplayTraceSource final : public TraceSource {
 public:
  explicit ReplayTraceSource(const QueryTrace& trace) : trace_(trace) {}

  std::optional<Query> Next(Rng& rng) override;
  std::string Describe() const override;

 private:
  const QueryTrace& trace_;
  std::size_t next_ = 0;
};

// ---- Declarative scenarios ------------------------------------------------

enum class RateShape { kConstant, kDiurnal, kFlash };

const char* ToString(RateShape shape);

// Offered-load curve lambda(t).  The generator samples each inter-arrival
// gap at the rate in effect at the previous arrival (piecewise-constant
// approximation of the non-homogeneous Poisson process); a constant curve
// therefore consumes exactly one Exponential(base_qps) draw per arrival,
// matching PoissonArrivals bit for bit.
struct RateCurve {
  RateShape shape = RateShape::kConstant;
  double base_qps = 100.0;

  // Diurnal sinusoid: qps(t) = base * (1 + amplitude * sin(2*pi*t/period)).
  // amplitude must stay in [0, 1) so the rate never hits zero.
  double amplitude = 0.6;
  double period_sec = 60.0;

  // Flash crowd: baseline until `flash_at_sec`, then an instantaneous jump
  // to base * flash_mult decaying exponentially back to baseline with time
  // constant `flash_decay_sec`.
  double flash_at_sec = 10.0;
  double flash_mult = 8.0;
  double flash_decay_sec = 5.0;

  double QpsAt(double t_sec) const;
  std::string Describe() const;
};

// One model's slice of a scenario: its mix weight and batch distribution
// parameters, each optionally drifting over the spec's drift window.
struct ComponentSpec {
  int model_id = 0;
  std::string model_name;  // symbolic; carried into trace capture

  double weight = 1.0;      // relative mix weight at t = 0
  double end_weight = -1.0; // weight at t >= drift_window_sec; < 0 = static

  double median = 6.0;   // log-normal batch median
  double sigma = 0.9;    // log-normal batch sigma at t = 0
  double end_sigma = -1.0;  // sigma at t >= drift_window_sec; < 0 = static
};

// Correlated model bursts: at exponentially distributed intervals one
// uniformly drawn model captures `share` of the traffic for
// `duration_sec`.  Disabled when rate_per_sec == 0 or the scenario has a
// single component (no draws are consumed either way).
struct BurstSpec {
  double rate_per_sec = 0.0;
  double duration_sec = 2.0;
  double share = 0.9;
};

struct ScenarioSpec {
  std::string name = "steady";
  RateCurve rate;
  std::vector<ComponentSpec> components;
  BurstSpec burst;
  // Window over which weight/sigma drift interpolates linearly from the
  // start to the end value (clamped afterwards).
  double drift_window_sec = 60.0;
  // Discretization of a drifting sigma: the window is cut into this many
  // equal steps, each with its own precomputed distribution.
  int sigma_steps = 8;
  int max_batch = 32;

  // Throws std::invalid_argument naming the offending field.
  void Validate() const;
  std::string Describe() const;
};

// The composable generator behind every scenario.  Owns its batch
// distributions (built from the spec), so it has no borrowed-lifetime
// hazards; copy the spec in and pull.
class ScenarioTraceSource final : public TraceSource {
 public:
  // Validates the spec (throws std::invalid_argument on a bad one).
  explicit ScenarioTraceSource(ScenarioSpec spec);

  std::optional<Query> Next(Rng& rng) override;
  std::string Describe() const override;

  const ScenarioSpec& spec() const { return spec_; }

 private:
  int SigmaStep(double frac) const;
  void EffectiveWeights(double t_sec, bool in_burst, int burst_model);

  ScenarioSpec spec_;
  // Per component: one distribution when sigma is static, `sigma_steps`
  // interpolated ones when it drifts.
  std::vector<std::vector<std::unique_ptr<BatchDistribution>>> dists_;
  std::vector<double> weights_;  // normalized scratch, rebuilt per pull
  bool static_mix_ = true;       // no weight drift and no bursts
  // Burst state machine (lazily seeded on the first pull).
  bool burst_clock_started_ = false;
  SimTime next_burst_at_ = 0;
  SimTime burst_until_ = 0;
  int burst_model_ = 0;
  SimTime now_ = 0;
  std::uint64_t id_ = 0;
};

// Convenience: seed an Rng, build the source, and drain `num_queries`.
QueryTrace GenerateScenarioTrace(const ScenarioSpec& spec,
                                 std::size_t num_queries, std::uint64_t seed);

// ---- Named preset registry ------------------------------------------------

// A parsed `--scenario NAME[:key=val,...]` reference.
struct ScenarioOptions {
  std::string name;
  std::vector<std::pair<std::string, std::string>> overrides;
};

// Splits "flashcrowd:rate=500,mult=10" into name + key/value overrides.
// Throws std::invalid_argument on an empty name or a malformed pair.
ScenarioOptions ParseScenarioRef(const std::string& ref);

// The registered preset names: steady, diurnal, flashcrowd, mixdrift,
// heavytail.
const std::vector<std::string>& ScenarioNames();

// Applies the named preset, then the key=val overrides, onto `spec` (whose
// components -- model names, weights, medians -- the caller has already
// filled in from its serving config).  Presets reshape the load:
//   steady      constant rate (the legacy Poisson baseline)
//   diurnal     sinusoidal day curve        [rate, amplitude, period]
//   flashcrowd  step + exponential decay    [rate, at, mult, decay]
//   mixdrift    mix weights drift to the reversed vector over the window
//               (the MixedRepartitionController's chase target)  [rate,
//               window]
//   heavytail   batch sigma forced to 1.8 on every component     [rate,
//               sigma]
// Shared override keys valid for every preset: rate, window, sigma,
// burst-rate, burst-dur, burst-share.  Throws std::invalid_argument on an
// unknown preset or key, or a bad value; the final spec is Validate()d.
void ApplyScenario(ScenarioSpec& spec, const ScenarioOptions& opts);

inline void ApplyScenario(ScenarioSpec& spec, const std::string& ref) {
  ApplyScenario(spec, ParseScenarioRef(ref));
}

}  // namespace pe::workload
