#include "workload/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pe::workload {

QueryTrace::QueryTrace(std::vector<Query> queries)
    : queries_(std::move(queries)) {
  if (!std::is_sorted(queries_.begin(), queries_.end(),
                      [](const Query& a, const Query& b) {
                        return a.arrival < b.arrival;
                      })) {
    std::sort(queries_.begin(), queries_.end(),
              [](const Query& a, const Query& b) {
                return a.arrival < b.arrival;
              });
  }
}

SimTime QueryTrace::Span() const {
  return queries_.empty() ? 0 : queries_.back().arrival;
}

double QueryTrace::OfferedQps() const {
  const SimTime span = Span();
  if (span <= 0 || queries_.size() < 2) return 0.0;
  return static_cast<double>(queries_.size() - 1) / TicksToSec(span);
}

double QueryTrace::MeanBatch() const {
  if (queries_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : queries_) sum += q.batch;
  return sum / static_cast<double>(queries_.size());
}

int QueryTrace::NumModels() const {
  int max_id = 0;
  for (const auto& q : queries_) max_id = std::max(max_id, q.model_id);
  return max_id + 1;
}

QueryTrace QueryTrace::FilterModel(int model_id) const {
  std::vector<Query> filtered;
  for (const auto& q : queries_) {
    if (q.model_id != model_id) continue;
    Query copy = q;
    copy.id = filtered.size();
    filtered.push_back(copy);
  }
  return QueryTrace(std::move(filtered));
}

void QueryTrace::SaveCsv(std::ostream& os) const {
  const bool multi =
      std::any_of(queries_.begin(), queries_.end(),
                  [](const Query& q) { return q.model_id != 0; });
  os << (multi ? "id,arrival_ns,batch,model\n" : "id,arrival_ns,batch\n");
  for (const auto& q : queries_) {
    os << q.id << ',' << q.arrival << ',' << q.batch;
    if (multi) os << ',' << q.model_id;
    os << '\n';
  }
}

QueryTrace QueryTrace::LoadCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("QueryTrace::LoadCsv: empty input");
  }
  const bool multi = line.find(",model") != std::string::npos;
  std::vector<Query> queries;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    Query q;
    std::getline(ls, field, ',');
    q.id = std::stoull(field);
    std::getline(ls, field, ',');
    q.arrival = std::stoll(field);
    std::getline(ls, field, ',');
    q.batch = std::stoi(field);
    if (multi && std::getline(ls, field, ',')) {
      q.model_id = std::stoi(field);
    }
    queries.push_back(q);
  }
  return QueryTrace(std::move(queries));
}

QueryTrace GenerateDriftingTrace(ArrivalProcess& arrivals,
                                 const std::vector<WorkloadPhase>& phases,
                                 Rng& rng) {
  std::vector<Query> queries;
  SimTime now = 0;
  std::uint64_t id = 0;
  for (const auto& phase : phases) {
    if (phase.dist == nullptr) {
      throw std::invalid_argument("GenerateDriftingTrace: null distribution");
    }
    for (std::size_t i = 0; i < phase.num_queries; ++i) {
      now += arrivals.NextGap(rng);
      Query q;
      q.id = id++;
      q.arrival = now;
      q.batch = phase.dist->Sample(rng);
      queries.push_back(q);
    }
  }
  return QueryTrace(std::move(queries));
}

std::vector<double> MixSpec::NormalizedShares() const {
  if (components.empty()) {
    throw std::invalid_argument("MixSpec: no components");
  }
  std::vector<double> shares;
  shares.reserve(components.size());
  double total = 0.0;
  for (const auto& c : components) {
    if (c.share < 0.0) {
      throw std::invalid_argument("MixSpec: negative share");
    }
    shares.push_back(c.share);
    total += c.share;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("MixSpec: shares sum to zero");
  }
  for (double& s : shares) s /= total;
  return shares;
}

QueryTrace GenerateMixedTrace(ArrivalProcess& arrivals, const MixSpec& mix,
                              std::size_t num_queries, Rng& rng) {
  const std::vector<double> shares = mix.NormalizedShares();
  for (const auto& c : mix.components) {
    if (c.dist == nullptr) {
      throw std::invalid_argument("GenerateMixedTrace: null distribution");
    }
  }
  std::vector<Query> queries;
  queries.reserve(num_queries);
  SimTime now = 0;
  for (std::size_t i = 0; i < num_queries; ++i) {
    now += arrivals.NextGap(rng);
    // Single-component mixes skip the model-selection draw so the
    // degenerate one-model case stays bit-identical to GenerateTrace.
    std::size_t k = 0;
    if (mix.components.size() > 1) {
      const double u = rng.NextDouble();
      double acc = 0.0;
      for (std::size_t j = 0; j < shares.size(); ++j) {
        acc += shares[j];
        if (u < acc || j + 1 == shares.size()) {
          k = j;
          break;
        }
      }
    }
    const MixComponent& c = mix.components[k];
    Query q;
    q.id = i;
    q.arrival = now;
    q.batch = c.dist->Sample(rng);
    q.model_id = c.model_id;
    queries.push_back(q);
  }
  return QueryTrace(std::move(queries));
}

QueryTrace GenerateTrace(ArrivalProcess& arrivals,
                         const BatchDistribution& batches,
                         std::size_t num_queries, Rng& rng) {
  std::vector<Query> queries;
  queries.reserve(num_queries);
  SimTime now = 0;
  for (std::size_t i = 0; i < num_queries; ++i) {
    now += arrivals.NextGap(rng);
    Query q;
    q.id = i;
    q.arrival = now;
    q.batch = batches.Sample(rng);
    queries.push_back(q);
  }
  return QueryTrace(std::move(queries));
}

}  // namespace pe::workload
