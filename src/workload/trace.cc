#include "workload/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pe::workload {

QueryTrace::QueryTrace(std::vector<Query> queries)
    : queries_(std::move(queries)) {
  if (!std::is_sorted(queries_.begin(), queries_.end(),
                      [](const Query& a, const Query& b) {
                        return a.arrival < b.arrival;
                      })) {
    std::sort(queries_.begin(), queries_.end(),
              [](const Query& a, const Query& b) {
                return a.arrival < b.arrival;
              });
  }
}

SimTime QueryTrace::Span() const {
  return queries_.empty() ? 0 : queries_.back().arrival;
}

double QueryTrace::OfferedQps() const {
  const SimTime span = Span();
  if (span <= 0 || queries_.size() < 2) return 0.0;
  return static_cast<double>(queries_.size() - 1) / TicksToSec(span);
}

double QueryTrace::MeanBatch() const {
  if (queries_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : queries_) sum += q.batch;
  return sum / static_cast<double>(queries_.size());
}

void QueryTrace::SaveCsv(std::ostream& os) const {
  os << "id,arrival_ns,batch\n";
  for (const auto& q : queries_) {
    os << q.id << ',' << q.arrival << ',' << q.batch << '\n';
  }
}

QueryTrace QueryTrace::LoadCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("QueryTrace::LoadCsv: empty input");
  }
  std::vector<Query> queries;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    Query q;
    std::getline(ls, field, ',');
    q.id = std::stoull(field);
    std::getline(ls, field, ',');
    q.arrival = std::stoll(field);
    std::getline(ls, field, ',');
    q.batch = std::stoi(field);
    queries.push_back(q);
  }
  return QueryTrace(std::move(queries));
}

QueryTrace GenerateDriftingTrace(ArrivalProcess& arrivals,
                                 const std::vector<WorkloadPhase>& phases,
                                 Rng& rng) {
  std::vector<Query> queries;
  SimTime now = 0;
  std::uint64_t id = 0;
  for (const auto& phase : phases) {
    if (phase.dist == nullptr) {
      throw std::invalid_argument("GenerateDriftingTrace: null distribution");
    }
    for (std::size_t i = 0; i < phase.num_queries; ++i) {
      now += arrivals.NextGap(rng);
      Query q;
      q.id = id++;
      q.arrival = now;
      q.batch = phase.dist->Sample(rng);
      queries.push_back(q);
    }
  }
  return QueryTrace(std::move(queries));
}

QueryTrace GenerateTrace(ArrivalProcess& arrivals,
                         const BatchDistribution& batches,
                         std::size_t num_queries, Rng& rng) {
  std::vector<Query> queries;
  queries.reserve(num_queries);
  SimTime now = 0;
  for (std::size_t i = 0; i < num_queries; ++i) {
    now += arrivals.NextGap(rng);
    Query q;
    q.id = i;
    q.arrival = now;
    q.batch = batches.Sample(rng);
    queries.push_back(q);
  }
  return QueryTrace(std::move(queries));
}

}  // namespace pe::workload
