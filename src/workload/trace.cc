#include "workload/trace.h"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pe::workload {

QueryTrace::QueryTrace(std::vector<Query> queries)
    : queries_(std::move(queries)) {
  if (!std::is_sorted(queries_.begin(), queries_.end(),
                      [](const Query& a, const Query& b) {
                        return a.arrival < b.arrival;
                      })) {
    std::sort(queries_.begin(), queries_.end(),
              [](const Query& a, const Query& b) {
                return a.arrival < b.arrival;
              });
  }
}

SimTime QueryTrace::Span() const {
  return queries_.empty() ? 0 : queries_.back().arrival;
}

double QueryTrace::OfferedQps() const {
  const SimTime span = Span();
  if (span <= 0 || queries_.size() < 2) return 0.0;
  return static_cast<double>(queries_.size() - 1) / TicksToSec(span);
}

double QueryTrace::MeanBatch() const {
  if (queries_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& q : queries_) sum += q.batch;
  return sum / static_cast<double>(queries_.size());
}

int QueryTrace::NumModels() const {
  int max_id = 0;
  for (const auto& q : queries_) max_id = std::max(max_id, q.model_id);
  return max_id + 1;
}

QueryTrace QueryTrace::FilterModel(int model_id) const {
  std::vector<Query> filtered;
  for (const auto& q : queries_) {
    if (q.model_id != model_id) continue;
    Query copy = q;
    copy.id = filtered.size();
    filtered.push_back(copy);
  }
  return QueryTrace(std::move(filtered));
}

void QueryTrace::SaveCsv(std::ostream& os) const {
  const bool multi =
      std::any_of(queries_.begin(), queries_.end(),
                  [](const Query& q) { return q.model_id != 0; });
  os << (multi ? "id,arrival_ns,batch,model\n" : "id,arrival_ns,batch\n");
  for (const auto& q : queries_) {
    os << q.id << ',' << q.arrival << ',' << q.batch;
    if (multi) os << ',' << q.model_id;
    os << '\n';
  }
}

namespace {

[[noreturn]] void CsvFail(int line_no, const std::string& what) {
  throw std::runtime_error("QueryTrace::LoadCsv: line " +
                           std::to_string(line_no) + ": " + what);
}

// Parses one strictly numeric CSV field: the whole field must be digits
// (with an optional leading '-'), so "12x" or an empty field fails loudly
// instead of silently truncating like std::stoll would.
std::int64_t CsvInt(const std::string& field, int line_no,
                    const char* column) {
  if (field.empty()) {
    CsvFail(line_no, std::string("empty ") + column + " field");
  }
  std::size_t i = field[0] == '-' ? 1 : 0;
  if (i == field.size()) {
    CsvFail(line_no, std::string("bad ") + column + " value '" + field + "'");
  }
  std::int64_t value = 0;
  for (; i < field.size(); ++i) {
    const char c = field[i];
    if (c < '0' || c > '9') {
      CsvFail(line_no,
              std::string("bad ") + column + " value '" + field + "'");
    }
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    const int d = c - '0';
    if (value > (kMax - d) / 10) {
      CsvFail(line_no, std::string(column) + " value out of range");
    }
    value = value * 10 + d;
  }
  return field[0] == '-' ? -value : value;
}

std::vector<std::string> CsvFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string::size_type begin = 0;
  for (;;) {
    const auto comma = line.find(',', begin);
    fields.push_back(line.substr(begin, comma - begin));
    if (comma == std::string::npos) return fields;
    begin = comma + 1;
  }
}

}  // namespace

QueryTrace QueryTrace::LoadCsv(std::istream& is) {
  std::string line;
  int line_no = 1;
  if (!std::getline(is, line)) {
    throw std::runtime_error("QueryTrace::LoadCsv: empty input");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  bool multi = false;
  if (line == "id,arrival_ns,batch,model") {
    multi = true;
  } else if (line != "id,arrival_ns,batch") {
    CsvFail(line_no, "bad header '" + line +
                         "' (expected id,arrival_ns,batch[,model])");
  }
  const std::size_t expected_fields = multi ? 4 : 3;
  std::vector<Query> queries;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> fields = CsvFields(line);
    if (fields.size() != expected_fields) {
      CsvFail(line_no, "expected " + std::to_string(expected_fields) +
                           " fields, got " + std::to_string(fields.size()));
    }
    Query q;
    const std::int64_t id = CsvInt(fields[0], line_no, "id");
    if (id < 0) CsvFail(line_no, "negative id");
    q.id = static_cast<std::uint64_t>(id);
    q.arrival = CsvInt(fields[1], line_no, "arrival_ns");
    if (q.arrival < 0) CsvFail(line_no, "negative arrival_ns");
    const std::int64_t batch = CsvInt(fields[2], line_no, "batch");
    if (batch < 1 || batch > std::numeric_limits<int>::max()) {
      CsvFail(line_no, "batch must be >= 1");
    }
    q.batch = static_cast<int>(batch);
    if (multi) {
      const std::int64_t model = CsvInt(fields[3], line_no, "model");
      if (model < 0 || model > std::numeric_limits<int>::max()) {
        CsvFail(line_no, "bad model id");
      }
      q.model_id = static_cast<int>(model);
    }
    queries.push_back(q);
  }
  return QueryTrace(std::move(queries));
}

std::vector<double> MixSpec::NormalizedShares() const {
  if (components.empty()) {
    throw std::invalid_argument("MixSpec: no components");
  }
  std::vector<double> shares;
  shares.reserve(components.size());
  double total = 0.0;
  for (const auto& c : components) {
    if (c.share < 0.0) {
      throw std::invalid_argument("MixSpec: negative share");
    }
    shares.push_back(c.share);
    total += c.share;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("MixSpec: shares sum to zero");
  }
  for (double& s : shares) s /= total;
  return shares;
}

}  // namespace pe::workload
