// Query traces: the concrete (arrival time, batch size) sequence the
// simulated inference server replays.  Generated from an arrival process +
// batch distribution, or loaded from CSV for externally supplied traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"

namespace pe::workload {

struct Query {
  std::uint64_t id = 0;
  SimTime arrival = 0;
  int batch = 1;
  // Identity of the DNN model this query targets; an index into the
  // serving repertoire (profile::ModelRepertoire).  Single-model servers
  // leave it at 0, the degenerate one-model case.
  int model_id = 0;
};

class QueryTrace {
 public:
  QueryTrace() = default;
  explicit QueryTrace(std::vector<Query> queries);

  const std::vector<Query>& queries() const { return queries_; }
  std::size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }

  // Duration from time zero to the last arrival.
  SimTime Span() const;

  // Offered load over the trace span, queries/sec.
  double OfferedQps() const;

  // Mean batch size over the trace.
  double MeanBatch() const;

  // Number of distinct model ids referenced (max model_id + 1); 1 for an
  // empty or single-model trace.
  int NumModels() const;

  // Queries of one model, keeping arrival times but re-numbering ids
  // densely from 0 (the form a dedicated per-model server replays).
  QueryTrace FilterModel(int model_id) const;

  // CSV round trip: columns id,arrival_ns,batch[,model].  The model column
  // is written only when some query has model_id != 0, so single-model
  // traces keep the legacy byte-identical format; LoadCsv accepts both.
  // LoadCsv is strict: a bad header, wrong field count, or non-numeric
  // field fails with a std::runtime_error naming the input line instead of
  // silently misparsing.  (For the versioned JSON capture format with
  // symbolic model names, see workload/trace_io.h.)
  void SaveCsv(std::ostream& os) const;
  static QueryTrace LoadCsv(std::istream& is);

 private:
  std::vector<Query> queries_;  // sorted by arrival time
};

// DEPRECATED: thin adapter over workload::ArrivalTraceSource + Take()
// (workload/scenario.h); bit-identical to the historical implementation on
// the same Rng stream.  New code should build a TraceSource (or a
// ScenarioSpec) directly.  Scheduled for removal one release after the
// scenario API lands.
//
// Generates `num_queries` queries starting at time zero.
QueryTrace GenerateTrace(ArrivalProcess& arrivals,
                         const BatchDistribution& batches,
                         std::size_t num_queries, Rng& rng);

// One phase of a drifting workload: `num_queries` drawn from `dist`.
// `dist` is borrowed and must outlive the GenerateDriftingTrace call.
struct WorkloadPhase {
  const BatchDistribution* dist = nullptr;
  std::size_t num_queries = 0;
};

// DEPRECATED: thin adapter over workload::PhasedTraceSource + Take()
// (workload/scenario.h); bit-identical to the historical implementation on
// the same Rng stream.  Scheduled for removal one release after the
// scenario API lands.
//
// Generates a trace whose batch-size distribution changes across phases
// (e.g. the morning's small-batch traffic turning into the evening's
// large-batch traffic) while the arrival process runs continuously.
// Used by the online re-partitioning extension.
QueryTrace GenerateDriftingTrace(ArrivalProcess& arrivals,
                                 const std::vector<WorkloadPhase>& phases,
                                 Rng& rng);

// ---- Mixed-model workloads ---------------------------------------------

// One model's slice of a mixed workload: its share of the query stream and
// its own batch-size distribution.  `dist` is borrowed and must outlive the
// MixSpec's use.
struct MixComponent {
  int model_id = 0;
  double share = 1.0;  // relative weight; normalized across the spec
  const BatchDistribution* dist = nullptr;
};

// A multi-model traffic mix: per-model rate shares + batch distributions.
struct MixSpec {
  std::vector<MixComponent> components;

  // Shares normalized to sum 1, indexed like `components`.  Throws
  // std::invalid_argument on an empty spec, a negative share, or an
  // all-zero total.
  std::vector<double> NormalizedShares() const;
};

// DEPRECATED: thin adapter over workload::MixTraceSource + Take()
// (workload/scenario.h); bit-identical to the historical implementation on
// the same Rng stream.  Scheduled for removal one release after the
// scenario API lands.
//
// Generates `num_queries` queries whose model identity is drawn from the
// mix's shares and whose batch from the chosen component's distribution.
// With a single component no model-selection draw is consumed, so the
// one-model mix is bit-identical to GenerateTrace on the same Rng stream.
QueryTrace GenerateMixedTrace(ArrivalProcess& arrivals, const MixSpec& mix,
                              std::size_t num_queries, Rng& rng);

}  // namespace pe::workload
