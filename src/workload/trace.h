// Query traces: the concrete (arrival time, batch size) sequence the
// simulated inference server replays.  Generated from an arrival process +
// batch distribution, or loaded from CSV for externally supplied traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"

namespace pe::workload {

struct Query {
  std::uint64_t id = 0;
  SimTime arrival = 0;
  int batch = 1;
};

class QueryTrace {
 public:
  QueryTrace() = default;
  explicit QueryTrace(std::vector<Query> queries);

  const std::vector<Query>& queries() const { return queries_; }
  std::size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }

  // Duration from time zero to the last arrival.
  SimTime Span() const;

  // Offered load over the trace span, queries/sec.
  double OfferedQps() const;

  // Mean batch size over the trace.
  double MeanBatch() const;

  // CSV round trip: columns id,arrival_ns,batch.
  void SaveCsv(std::ostream& os) const;
  static QueryTrace LoadCsv(std::istream& is);

 private:
  std::vector<Query> queries_;  // sorted by arrival time
};

// Generates `num_queries` queries starting at time zero.
QueryTrace GenerateTrace(ArrivalProcess& arrivals,
                         const BatchDistribution& batches,
                         std::size_t num_queries, Rng& rng);

// One phase of a drifting workload: `num_queries` drawn from `dist`.
// `dist` is borrowed and must outlive the GenerateDriftingTrace call.
struct WorkloadPhase {
  const BatchDistribution* dist = nullptr;
  std::size_t num_queries = 0;
};

// Generates a trace whose batch-size distribution changes across phases
// (e.g. the morning's small-batch traffic turning into the evening's
// large-batch traffic) while the arrival process runs continuously.
// Used by the online re-partitioning extension.
QueryTrace GenerateDriftingTrace(ArrivalProcess& arrivals,
                                 const std::vector<WorkloadPhase>& phases,
                                 Rng& rng);

}  // namespace pe::workload
