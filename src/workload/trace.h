// Query traces: the concrete (arrival time, batch size) sequence the
// simulated inference server replays.  Generated from an arrival process +
// batch distribution, or loaded from CSV for externally supplied traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"

namespace pe::workload {

struct Query {
  std::uint64_t id = 0;
  SimTime arrival = 0;
  int batch = 1;
  // Identity of the DNN model this query targets; an index into the
  // serving repertoire (profile::ModelRepertoire).  Single-model servers
  // leave it at 0, the degenerate one-model case.
  int model_id = 0;
};

class QueryTrace {
 public:
  QueryTrace() = default;
  explicit QueryTrace(std::vector<Query> queries);

  const std::vector<Query>& queries() const { return queries_; }
  std::size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }

  // Duration from time zero to the last arrival.
  SimTime Span() const;

  // Offered load over the trace span, queries/sec.
  double OfferedQps() const;

  // Mean batch size over the trace.
  double MeanBatch() const;

  // Number of distinct model ids referenced (max model_id + 1); 1 for an
  // empty or single-model trace.
  int NumModels() const;

  // Queries of one model, keeping arrival times but re-numbering ids
  // densely from 0 (the form a dedicated per-model server replays).
  QueryTrace FilterModel(int model_id) const;

  // CSV round trip: columns id,arrival_ns,batch[,model].  The model column
  // is written only when some query has model_id != 0, so single-model
  // traces keep the legacy byte-identical format; LoadCsv accepts both.
  // LoadCsv is strict: a bad header, wrong field count, or non-numeric
  // field fails with a std::runtime_error naming the input line instead of
  // silently misparsing.  (For the versioned JSON capture format with
  // symbolic model names, see workload/trace_io.h.)
  void SaveCsv(std::ostream& os) const;
  static QueryTrace LoadCsv(std::istream& is);

 private:
  std::vector<Query> queries_;  // sorted by arrival time
};

// One phase of a drifting workload: `num_queries` drawn from `dist`.
// `dist` is borrowed and must outlive the consuming PhasedTraceSource
// (workload/scenario.h).
struct WorkloadPhase {
  const BatchDistribution* dist = nullptr;
  std::size_t num_queries = 0;
};

// ---- Mixed-model workloads ---------------------------------------------

// One model's slice of a mixed workload: its share of the query stream and
// its own batch-size distribution.  `dist` is borrowed and must outlive the
// MixSpec's use.
struct MixComponent {
  int model_id = 0;
  double share = 1.0;  // relative weight; normalized across the spec
  const BatchDistribution* dist = nullptr;
};

// A multi-model traffic mix: per-model rate shares + batch distributions.
// Consumed by MixTraceSource (workload/scenario.h).
struct MixSpec {
  std::vector<MixComponent> components;

  // Shares normalized to sum 1, indexed like `components`.  Throws
  // std::invalid_argument on an empty spec, a negative share, or an
  // all-zero total.
  std::vector<double> NormalizedShares() const;
};

}  // namespace pe::workload
