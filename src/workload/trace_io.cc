#include "workload/trace_io.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pe::workload {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// A minimal schema-directed JSON reader that tracks the input line so every
// failure is reported as "trace_io: line N: ...".  It only implements what
// the v1 document needs (objects, arrays, strings, integers) plus generic
// value skipping for unknown keys.
class JsonReader {
 public:
  explicit JsonReader(std::istream& is) : is_(is) {}

  int line() const { return line_; }

  [[noreturn]] void Fail(const std::string& what) const {
    std::ostringstream os;
    os << "trace_io: line " << line_ << ": " << what;
    throw std::runtime_error(os.str());
  }

  void SkipWs() {
    while (true) {
      int c = is_.peek();
      if (c == '\n' || c == ' ' || c == '\t' || c == '\r') {
        Get();
      } else {
        return;
      }
    }
  }

  // Consumes `expected` (after whitespace) or fails.
  void Expect(char expected) {
    SkipWs();
    int c = Get();
    if (c != expected) {
      Fail(std::string("expected '") + expected + "', got " + Show(c));
    }
  }

  // Consumes `maybe` (after whitespace) if it is next; returns whether.
  bool TryConsume(char maybe) {
    SkipWs();
    if (is_.peek() == maybe) {
      Get();
      return true;
    }
    return false;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      int c = Get();
      if (c == EOF) Fail("unterminated string");
      if (c == '"') return out;
      if (c == '\n') Fail("unterminated string");
      if (c == '\\') {
        int e = Get();
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              int h = Get();
              if (h >= '0' && h <= '9') {
                code = code * 16 + (h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code = code * 16 + (h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code = code * 16 + (h - 'A' + 10);
              } else {
                Fail("bad \\u escape in string");
              }
            }
            if (code > 0x7F) Fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default:
            Fail("unsupported escape in string");
        }
      } else {
        out += static_cast<char>(c);
      }
    }
  }

  std::int64_t ParseInt() {
    SkipWs();
    bool negative = false;
    if (is_.peek() == '-') {
      Get();
      negative = true;
    }
    if (!std::isdigit(is_.peek())) Fail("expected an integer");
    std::uint64_t magnitude = 0;
    constexpr std::uint64_t kMax =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    while (std::isdigit(is_.peek())) {
      int d = Get() - '0';
      if (magnitude > (kMax - static_cast<std::uint64_t>(d)) / 10) {
        Fail("integer out of range");
      }
      magnitude = magnitude * 10 + static_cast<std::uint64_t>(d);
    }
    int next = is_.peek();
    if (next == '.' || next == 'e' || next == 'E') {
      Fail("expected an integer, got a fractional number");
    }
    auto value = static_cast<std::int64_t>(magnitude);
    return negative ? -value : value;
  }

  // Skips one JSON value of any type (for unknown forward-compat keys).
  void SkipValue() {
    SkipWs();
    int c = is_.peek();
    if (c == '"') {
      ParseString();
    } else if (c == '{') {
      Get();
      if (TryConsume('}')) return;
      while (true) {
        ParseString();
        Expect(':');
        SkipValue();
        if (TryConsume(',')) continue;
        Expect('}');
        return;
      }
    } else if (c == '[') {
      Get();
      if (TryConsume(']')) return;
      while (true) {
        SkipValue();
        if (TryConsume(',')) continue;
        Expect(']');
        return;
      }
    } else if (c == '-' || std::isdigit(c)) {
      Get();
      while (true) {
        c = is_.peek();
        if (std::isdigit(c) || c == '.' || c == '-' || c == '+' || c == 'e' ||
            c == 'E') {
          Get();
        } else {
          return;
        }
      }
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (std::isalpha(is_.peek())) Get();
    } else {
      Fail(std::string("unexpected character ") + Show(c));
    }
  }

  void ExpectEnd() {
    SkipWs();
    int c = is_.peek();
    if (c != EOF) {
      Fail(std::string("trailing content after document: ") + Show(c));
    }
  }

 private:
  int Get() {
    int c = is_.get();
    if (c == '\n') ++line_;
    return c;
  }

  static std::string Show(int c) {
    if (c == EOF) return "end of input";
    return std::string("'") + static_cast<char>(c) + "'";
  }

  std::istream& is_;
  int line_ = 1;
};

}  // namespace

void TraceDocument::Validate() const {
  if (models.empty()) {
    throw std::invalid_argument("TraceDocument: models[] must be non-empty");
  }
  for (const auto& name : models) {
    if (name.empty()) {
      throw std::invalid_argument("TraceDocument: model names must be "
                                  "non-empty");
    }
  }
  SimTime prev_arrival = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Query& q = trace.queries()[i];
    if (q.id != i) {
      throw std::invalid_argument(
          "TraceDocument: query ids must be dense in row order (row " +
          std::to_string(i) + " has id " + std::to_string(q.id) + ")");
    }
    if (q.arrival < prev_arrival) {
      throw std::invalid_argument(
          "TraceDocument: arrivals must be non-decreasing (query " +
          std::to_string(i) + ")");
    }
    prev_arrival = q.arrival;
    if (q.batch < 1) {
      throw std::invalid_argument("TraceDocument: batch must be >= 1 (query " +
                                  std::to_string(i) + ")");
    }
    if (q.model_id < 0 ||
        static_cast<std::size_t>(q.model_id) >= models.size()) {
      throw std::invalid_argument(
          "TraceDocument: query " + std::to_string(i) + " references model " +
          std::to_string(q.model_id) + " outside models[0.." +
          std::to_string(models.size() - 1) + "]");
    }
  }
}

void SaveTrace(std::ostream& os, const TraceDocument& doc) {
  doc.Validate();
  os << "{\n";
  os << "  \"schema\": \"" << kTraceSchema << "\",\n";
  os << "  \"time_unit\": \"ns\",\n";
  if (!doc.scenario.empty()) {
    os << "  \"scenario\": \"" << EscapeJson(doc.scenario) << "\",\n";
  }
  os << "  \"models\": [";
  for (std::size_t i = 0; i < doc.models.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << EscapeJson(doc.models[i]) << '"';
  }
  os << "],\n";
  os << "  \"queries\": [";
  for (std::size_t i = 0; i < doc.trace.size(); ++i) {
    const Query& q = doc.trace.queries()[i];
    os << (i > 0 ? ",\n    " : "\n    ");
    os << '[' << q.id << ", " << q.arrival << ", " << q.batch << ", "
       << q.model_id << ']';
  }
  os << (doc.trace.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

void SaveTraceFile(const std::string& path, const TraceDocument& doc) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("trace_io: cannot open '" + path +
                             "' for writing");
  }
  SaveTrace(os, doc);
  os.flush();
  if (!os) {
    throw std::runtime_error("trace_io: error writing '" + path + "'");
  }
}

TraceDocument LoadTrace(std::istream& is) {
  JsonReader r(is);
  TraceDocument doc;
  std::vector<Query> queries;
  bool seen_schema = false;
  bool seen_models = false;
  bool seen_queries = false;

  r.Expect('{');
  if (!r.TryConsume('}')) {
    while (true) {
      r.SkipWs();
      std::string key = r.ParseString();
      r.Expect(':');
      if (key == "schema") {
        std::string schema = r.ParseString();
        if (schema != kTraceSchema) {
          r.Fail("unsupported schema '" + schema + "' (expected " +
                 kTraceSchema + ")");
        }
        seen_schema = true;
      } else if (key == "time_unit") {
        std::string unit = r.ParseString();
        if (unit != "ns") {
          r.Fail("unsupported time_unit '" + unit + "' (expected ns)");
        }
      } else if (key == "scenario") {
        doc.scenario = r.ParseString();
      } else if (key == "models") {
        if (seen_models) r.Fail("duplicate key 'models'");
        seen_models = true;
        r.Expect('[');
        if (!r.TryConsume(']')) {
          while (true) {
            r.SkipWs();
            doc.models.push_back(r.ParseString());
            if (r.TryConsume(',')) continue;
            r.Expect(']');
            break;
          }
        }
      } else if (key == "queries") {
        if (seen_queries) r.Fail("duplicate key 'queries'");
        seen_queries = true;
        r.Expect('[');
        SimTime prev_arrival = 0;
        if (!r.TryConsume(']')) {
          while (true) {
            r.Expect('[');
            std::int64_t id = r.ParseInt();
            r.Expect(',');
            std::int64_t arrival = r.ParseInt();
            r.Expect(',');
            std::int64_t batch = r.ParseInt();
            r.Expect(',');
            std::int64_t model = r.ParseInt();
            r.Expect(']');
            if (id != static_cast<std::int64_t>(queries.size())) {
              r.Fail("query id " + std::to_string(id) +
                     " out of order (expected " +
                     std::to_string(queries.size()) + ")");
            }
            if (arrival < 0) r.Fail("negative arrival time");
            if (arrival < prev_arrival) {
              r.Fail("arrivals must be non-decreasing");
            }
            prev_arrival = arrival;
            if (batch < 1) r.Fail("batch must be >= 1");
            if (batch > std::numeric_limits<int>::max()) {
              r.Fail("batch out of range");
            }
            if (model < 0 || model > std::numeric_limits<int>::max()) {
              r.Fail("model id out of range");
            }
            queries.push_back(Query{static_cast<std::uint64_t>(id), arrival,
                                    static_cast<int>(batch),
                                    static_cast<int>(model)});
            if (r.TryConsume(',')) continue;
            r.Expect(']');
            break;
          }
        }
      } else {
        r.SkipValue();  // Unknown keys: forward-compatible, skip.
      }
      if (r.TryConsume(',')) continue;
      r.Expect('}');
      break;
    }
  }
  r.ExpectEnd();

  if (!seen_schema) r.Fail("missing required key 'schema'");
  if (!seen_models) r.Fail("missing required key 'models'");
  if (!seen_queries) r.Fail("missing required key 'queries'");
  if (doc.models.empty()) r.Fail("models[] must be non-empty");
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (static_cast<std::size_t>(queries[i].model_id) >= doc.models.size()) {
      r.Fail("query " + std::to_string(i) + " references model " +
             std::to_string(queries[i].model_id) + " outside models[0.." +
             std::to_string(doc.models.size() - 1) + "]");
    }
  }
  doc.trace = QueryTrace(std::move(queries));
  doc.Validate();
  return doc;
}

TraceDocument LoadTraceFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("trace_io: cannot open '" + path +
                             "' for reading");
  }
  return LoadTrace(is);
}

}  // namespace pe::workload
