// Versioned trace capture and replay (`paris-elsa-trace-v1`).
//
// Any generated or simulated QueryTrace can be saved to a small JSON
// document and replayed bit-faithfully: arrivals are integer ticks, batch
// and model ids integers, so a round trip loses nothing.  Model identity
// is carried *symbolically* -- `models[k]` names the model behind
// Query::model_id == k -- so a captured trace (including a per-server
// sub-trace split out of a fleet run, whose local model ids differ from
// the fleet-global ones) replays standalone: the loader's models[] is the
// complete repertoire the replay needs.
//
// Document shape (see docs/TRACE_SCHEMA.md):
//
//   {
//     "schema": "paris-elsa-trace-v1",
//     "time_unit": "ns",
//     "scenario": "flashcrowd:rate=500",     // provenance; optional
//     "models": ["resnet", "mobilenet"],     // index == Query::model_id
//     "queries": [
//       [0, 12345, 4, 0],                    // [id, arrival, batch, model]
//       ...
//     ]
//   }
//
// The loader is strict and diagnostic: every malformed token, schema
// mismatch, out-of-order id, or out-of-range field fails with the input
// line number instead of silently misparsing.  Unknown top-level keys are
// skipped, so v1 readers tolerate forward-compatible additions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace pe::workload {

inline constexpr const char* kTraceSchema = "paris-elsa-trace-v1";

struct TraceDocument {
  // Free-form provenance label (typically the --scenario reference the
  // trace was generated from); may be empty.
  std::string scenario;
  // Symbolic model names; index == Query::model_id.  Must cover every
  // model id the trace references.
  std::vector<std::string> models;
  QueryTrace trace;

  // The invariants SaveTrace enforces and LoadTrace guarantees: models[]
  // non-empty and covering the trace, ids dense in row order (id == row
  // index -- the replay engines require dense ids), arrivals >= 0 and
  // non-decreasing, batches >= 1.  Throws std::invalid_argument.
  void Validate() const;
};

// Serializes `doc` (validated first, so an unloadable file is never
// written).  The stream form writes one query per line, which is what
// makes the loader's line-number diagnostics actionable.
void SaveTrace(std::ostream& os, const TraceDocument& doc);

// File convenience; throws std::runtime_error when `path` cannot be
// opened or written.
void SaveTraceFile(const std::string& path, const TraceDocument& doc);

// Parses and validates a paris-elsa-trace-v1 document.  Throws
// std::runtime_error with the offending line number on malformed JSON, a
// schema mismatch, or any violated document invariant.
TraceDocument LoadTrace(std::istream& is);

// File convenience; throws std::runtime_error when `path` cannot be read.
TraceDocument LoadTraceFile(const std::string& path);

}  // namespace pe::workload
