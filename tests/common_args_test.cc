#include "common/args.h"

#include <gtest/gtest.h>

namespace pe {
namespace {

ArgParser Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, SubcommandAndPositionals) {
  const auto args = Parse({"simulate", "extra1", "extra2"});
  ASSERT_TRUE(args.Subcommand().has_value());
  EXPECT_EQ(*args.Subcommand(), "simulate");
  EXPECT_EQ(args.Positionals(), (std::vector<std::string>{"extra1", "extra2"}));
}

TEST(ArgParser, NoSubcommand) {
  const auto args = Parse({"--model", "resnet"});
  EXPECT_FALSE(args.Subcommand().has_value());
  EXPECT_TRUE(args.Positionals().empty());
}

TEST(ArgParser, SpaceSeparatedValue) {
  const auto args = Parse({"plan", "--model", "bert"});
  EXPECT_EQ(args.GetString("model", ""), "bert");
}

TEST(ArgParser, EqualsSeparatedValue) {
  const auto args = Parse({"plan", "--model=conformer"});
  EXPECT_EQ(args.GetString("model", ""), "conformer");
}

TEST(ArgParser, BareFlag) {
  const auto args = Parse({"sweep", "--csv"});
  EXPECT_TRUE(args.HasFlag("csv"));
  EXPECT_FALSE(args.HasFlag("json"));
}

TEST(ArgParser, FlagFollowedByOption) {
  // "--csv --rate 5": csv must not consume "--rate" as its value.
  const auto args = Parse({"x", "--csv", "--rate", "5"});
  EXPECT_TRUE(args.HasFlag("csv"));
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 5.0);
}

TEST(ArgParser, NumericParsing) {
  const auto args = Parse({"x", "--rate", "123.5", "--queries", "4000"});
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 123.5);
  EXPECT_EQ(args.GetInt("queries", 0), 4000);
  EXPECT_DOUBLE_EQ(args.GetDouble("missing", 7.5), 7.5);
  EXPECT_EQ(args.GetInt("missing", -2), -2);
}

TEST(ArgParser, MalformedNumbersThrow) {
  const auto args = Parse({"x", "--rate", "fast", "--queries", "12x"});
  EXPECT_THROW(args.GetDouble("rate", 0.0), std::invalid_argument);
  EXPECT_THROW(args.GetInt("queries", 0), std::invalid_argument);
}

TEST(ArgParser, UnknownKeysReported) {
  const auto args = Parse({"x", "--model", "resnet", "--typo", "1"});
  const auto unknown = args.UnknownKeys({"model", "rate"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(ArgParser, EmptyArgv) {
  const char* argv[] = {"prog"};
  ArgParser args(1, argv);
  EXPECT_FALSE(args.Subcommand().has_value());
  EXPECT_EQ(args.program(), "prog");
}

}  // namespace
}  // namespace pe
