#include "common/args.h"

#include <gtest/gtest.h>

#include <limits>

namespace pe {
namespace {

ArgParser Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, SubcommandAndPositionals) {
  const auto args = Parse({"simulate", "extra1", "extra2"});
  ASSERT_TRUE(args.Subcommand().has_value());
  EXPECT_EQ(*args.Subcommand(), "simulate");
  EXPECT_EQ(args.Positionals(), (std::vector<std::string>{"extra1", "extra2"}));
}

TEST(ArgParser, NoSubcommand) {
  const auto args = Parse({"--model", "resnet"});
  EXPECT_FALSE(args.Subcommand().has_value());
  EXPECT_TRUE(args.Positionals().empty());
}

TEST(ArgParser, SpaceSeparatedValue) {
  const auto args = Parse({"plan", "--model", "bert"});
  EXPECT_EQ(args.GetString("model", ""), "bert");
}

TEST(ArgParser, EqualsSeparatedValue) {
  const auto args = Parse({"plan", "--model=conformer"});
  EXPECT_EQ(args.GetString("model", ""), "conformer");
}

TEST(ArgParser, BareFlag) {
  const auto args = Parse({"sweep", "--csv"});
  EXPECT_TRUE(args.HasFlag("csv"));
  EXPECT_FALSE(args.HasFlag("json"));
}

TEST(ArgParser, FlagFollowedByOption) {
  // "--csv --rate 5": csv must not consume "--rate" as its value.
  const auto args = Parse({"x", "--csv", "--rate", "5"});
  EXPECT_TRUE(args.HasFlag("csv"));
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 5.0);
}

TEST(ArgParser, NumericParsing) {
  const auto args = Parse({"x", "--rate", "123.5", "--queries", "4000"});
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 123.5);
  EXPECT_EQ(args.GetInt("queries", 0), 4000);
  EXPECT_DOUBLE_EQ(args.GetDouble("missing", 7.5), 7.5);
  EXPECT_EQ(args.GetInt("missing", -2), -2);
}

TEST(ArgParser, MalformedNumbersThrow) {
  const auto args = Parse({"x", "--rate", "fast", "--queries", "12x"});
  EXPECT_THROW(args.GetDouble("rate", 0.0), std::invalid_argument);
  EXPECT_THROW(args.GetInt("queries", 0), std::invalid_argument);
}

TEST(ArgParser, UnknownKeysReported) {
  const auto args = Parse({"x", "--model", "resnet", "--typo", "1"});
  const auto unknown = args.UnknownKeys({"model", "rate"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(ArgParser, NegativeNumberSpaceSeparated) {
  const auto args = Parse({"x", "--rate", "-5", "--offset", "-12"});
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), -5.0);
  EXPECT_EQ(args.GetInt("offset", 0), -12);
}

TEST(ArgParser, NegativeNumberEqualsSeparated) {
  const auto args = Parse({"x", "--rate=-3.5", "--offset=-7"});
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), -3.5);
  EXPECT_EQ(args.GetInt("offset", 0), -7);
}

TEST(ArgParser, NegativeFractionValue) {
  const auto args = Parse({"x", "--bias", "-.5"});
  EXPECT_DOUBLE_EQ(args.GetDouble("bias", 0.0), -0.5);
}

TEST(ArgParser, ShortHelpFlag) {
  const auto args = Parse({"-h"});
  EXPECT_TRUE(args.HasFlag("h"));
  EXPECT_FALSE(args.Subcommand().has_value());
}

TEST(ArgParser, LongHelpFlag) {
  const auto args = Parse({"--help"});
  EXPECT_TRUE(args.HasFlag("help"));
  EXPECT_FALSE(args.Subcommand().has_value());
}

TEST(ArgParser, ShortFlagNeverConsumesValue) {
  const auto args = Parse({"run", "-h", "value"});
  EXPECT_TRUE(args.HasFlag("h"));
  EXPECT_EQ(args.GetString("h", "sentinel"), "");
  EXPECT_EQ(args.Positionals(), (std::vector<std::string>{"value"}));
}

TEST(ArgParser, DashPrefixedStringValue) {
  // Only single-letter "-x" tokens are short flags; longer dash-prefixed
  // tokens are plain values, so "--rate -inf" keeps old-parser behavior.
  const auto args = Parse({"x", "--rate", "-inf", "--tag", "-mytag"});
  EXPECT_EQ(args.GetString("tag", ""), "-mytag");
  EXPECT_FALSE(args.HasFlag("mytag"));
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0),
                   -std::numeric_limits<double>::infinity());
}

TEST(ArgParser, UndeclaredFlagBeforePositionalConsumesIt) {
  // Documented trap: without a flag declaration ArgParser cannot know
  // "csv" takes no value, so a flag placed before the subcommand
  // swallows it.  Callers must declare flags or order the subcommand
  // first ("sweep --csv").
  const auto args = Parse({"--csv", "sweep"});
  EXPECT_TRUE(args.HasFlag("csv"));
  EXPECT_EQ(args.GetString("csv", ""), "sweep");
  EXPECT_FALSE(args.Subcommand().has_value());
}

TEST(ArgParser, DeclaredFlagNeverConsumesValue) {
  const std::vector<const char*> argv = {"prog", "--csv", "sweep", "--rate",
                                         "9"};
  const ArgParser args(static_cast<int>(argv.size()), argv.data(), {"csv"});
  EXPECT_TRUE(args.HasFlag("csv"));
  EXPECT_EQ(args.GetString("csv", "sentinel"), "");
  ASSERT_TRUE(args.Subcommand().has_value());
  EXPECT_EQ(*args.Subcommand(), "sweep");
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 9.0);
}

TEST(ArgParser, MalformedOptionTokenBecomesValue) {
  // "--5" is not a valid option name, so it is consumed as the literal
  // value of --rate and rejected explicitly by the numeric getter --
  // rather than silently turning both tokens into bare flags.
  const auto args = Parse({"x", "--rate", "--5"});
  EXPECT_EQ(args.GetString("rate", ""), "--5");
  EXPECT_THROW(args.GetDouble("rate", 0.0), std::invalid_argument);
  EXPECT_FALSE(args.HasFlag("5"));
}

TEST(ArgParser, BareFlagRejectedByNumericGetters) {
  const auto args = Parse({"x", "--rate", "--csv"});
  EXPECT_TRUE(args.HasFlag("rate"));
  EXPECT_THROW(args.GetDouble("rate", 0.0), std::invalid_argument);
  EXPECT_THROW(args.GetInt("rate", 0), std::invalid_argument);
}

TEST(ArgParser, EmptyEqualsValueRejectedByNumericGetters) {
  const auto args = Parse({"x", "--rate="});
  EXPECT_EQ(args.GetString("rate", "sentinel"), "");
  EXPECT_THROW(args.GetDouble("rate", 0.0), std::invalid_argument);
}

TEST(ArgParser, DoubleDashEndsOptionParsing) {
  const auto args = Parse({"run", "--csv", "--", "--not-an-option", "-x"});
  EXPECT_TRUE(args.HasFlag("csv"));
  EXPECT_FALSE(args.HasFlag("not-an-option"));
  EXPECT_EQ(args.Positionals(),
            (std::vector<std::string>{"--not-an-option", "-x"}));
}

TEST(ArgParser, NegativeNumberAsPositional) {
  const auto args = Parse({"run", "-5"});
  EXPECT_EQ(args.Positionals(), (std::vector<std::string>{"-5"}));
}

TEST(ArgParser, SpellingEchoesOriginalToken) {
  const auto args = Parse({"x", "--q", "5", "-z", "--rate=1"});
  EXPECT_EQ(args.Spelling("q"), "--q");   // single-letter long option
  EXPECT_EQ(args.Spelling("z"), "-z");    // short flag
  EXPECT_EQ(args.Spelling("rate"), "--rate");
  EXPECT_EQ(args.Spelling("never-given"), "--never-given");
}

TEST(ArgParser, EmptyArgv) {
  const char* argv[] = {"prog"};
  ArgParser args(1, argv);
  EXPECT_FALSE(args.Subcommand().has_value());
  EXPECT_EQ(args.program(), "prog");
}

}  // namespace
}  // namespace pe
