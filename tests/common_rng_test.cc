#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace pe {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.NextU64());
  EXPECT_GT(seen.size(), 95u);  // not stuck or cyclic
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.UniformInt(2, 6));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(2));
  EXPECT_TRUE(seen.count(6));
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.UniformInt(5, 5), 5);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(13);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialAlwaysPositive) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.Exponential(100.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(19);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.Normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.03);
  EXPECT_NEAR(var, 9.0, 0.15);
}

TEST(Rng, LogNormalMedianIsExpMu) {
  Rng r(23);
  std::vector<double> xs;
  const int n = 100001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(r.LogNormal(std::log(8.0), 0.9));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 8.0, 0.25);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Fork();
  // The child must differ from a same-state parent continuation.
  Rng parent_copy(99);
  (void)parent_copy.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.NextU64() == parent.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(5), b(5);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

}  // namespace
}  // namespace pe
