#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pe {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeEqualsSequential) {
  StreamingStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.Merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Percentile, EmptyReturnsZero) {
  Percentile p;
  EXPECT_EQ(p.Value(50), 0.0);
  EXPECT_EQ(p.P95(), 0.0);
}

TEST(Percentile, SingleSample) {
  Percentile p;
  p.Add(42.0);
  EXPECT_DOUBLE_EQ(p.Value(0), 42.0);
  EXPECT_DOUBLE_EQ(p.Value(100), 42.0);
  EXPECT_DOUBLE_EQ(p.P95(), 42.0);
}

TEST(Percentile, MedianOfOddCount) {
  Percentile p;
  for (double x : {5.0, 1.0, 3.0}) p.Add(x);
  EXPECT_DOUBLE_EQ(p.P50(), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  Percentile p;
  p.Add(10.0);
  p.Add(20.0);
  EXPECT_DOUBLE_EQ(p.P50(), 15.0);
  EXPECT_DOUBLE_EQ(p.Value(25), 12.5);
}

TEST(Percentile, P95OfUniformRamp) {
  Percentile p;
  for (int i = 1; i <= 100; ++i) p.Add(static_cast<double>(i));
  EXPECT_NEAR(p.P95(), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(p.Max(), 100.0);
  EXPECT_DOUBLE_EQ(p.Mean(), 50.5);
}

TEST(Percentile, AddAfterQueryStillCorrect) {
  Percentile p;
  p.Add(1.0);
  EXPECT_DOUBLE_EQ(p.P50(), 1.0);
  p.Add(3.0);
  EXPECT_DOUBLE_EQ(p.P50(), 2.0);  // re-sorts lazily after mutation
}

TEST(Percentile, ClearResets) {
  Percentile p;
  p.Add(1.0);
  p.Clear();
  EXPECT_EQ(p.count(), 0u);
  EXPECT_EQ(p.P95(), 0.0);
}

TEST(Histogram, BinsCountCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.7);
  h.Add(9.9);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

}  // namespace
}  // namespace pe
