#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/sim_time.h"

namespace pe {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"a", "long_header"});
  t.AddRow({"xxxxxx", "1"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Three lines: header, rule, row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  // Every line has the same width.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);
  const std::size_t width = line.size();
  while (std::getline(is, line)) EXPECT_EQ(line.size(), width);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| 1"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
  EXPECT_EQ(Table::Int(-42), "-42");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "value"});
  t.AddRow({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainFieldsUnquoted) {
  Table t({"h"});
  t.AddRow({"plain"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "h\nplain\n");
}

TEST(SimTime, MsRoundTrip) {
  EXPECT_EQ(MsToTicks(1.0), kNsPerMs);
  EXPECT_DOUBLE_EQ(TicksToMs(kNsPerMs), 1.0);
  EXPECT_EQ(MsToTicks(0.5), kNsPerMs / 2);
}

TEST(SimTime, SecondConversions) {
  EXPECT_EQ(SecToTicks(2.0), 2 * kNsPerSec);
  EXPECT_DOUBLE_EQ(TicksToSec(kNsPerSec / 2), 0.5);
  EXPECT_EQ(UsToTicks(1.5), 1500);
}

TEST(SimTime, RoundsToNearestTick) {
  EXPECT_EQ(MsToTicks(1e-6), 1);         // 1 ns
  EXPECT_EQ(MsToTicks(0.4e-6), 0);       // rounds down
  EXPECT_EQ(MsToTicks(-1.0), -kNsPerMs); // negative preserved
}

}  // namespace
}  // namespace pe
