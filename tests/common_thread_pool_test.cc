#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pe {
namespace {

TEST(ThreadPool, RunsSubmittedTasksToCompletion) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter, i] {
      counter.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 1; });
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("probe exploded"); });
  EXPECT_EQ(ok.get(), 1);
  try {
    bad.get();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "probe exploded");
  }
}

TEST(ThreadPool, ExceptionDoesNotKillWorkers) {
  ThreadPool pool(1);
  pool.Submit([]() -> int { throw std::logic_error("boom"); });
  // The single worker survives the throw and runs the next task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1, std::memory_order_relaxed);
        return 0;
      });
    }
    // Destruction must wait for all 32, not discard the backlog.
  }
  EXPECT_EQ(completed.load(), 32);
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ParallelMap, PreservesIndexOrder) {
  const auto squares =
      ParallelMap(50, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 50u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelMap, SerialAndParallelResultsAreIdentical) {
  auto fn = [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); };
  const auto serial = ParallelMap(64, 1, fn);
  const auto parallel = ParallelMap(64, 8, fn);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelMap, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(ParallelMap(0, 4, [](std::size_t i) { return i; }).empty());
}

TEST(ParallelMap, PropagatesFirstExceptionByIndex) {
  try {
    ParallelMap(16, 4, [](std::size_t i) -> int {
      if (i % 2 == 1) {
        throw std::runtime_error("bad index " + std::to_string(i));
      }
      return static_cast<int>(i);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "bad index 1");
  }
}

}  // namespace
}  // namespace pe
