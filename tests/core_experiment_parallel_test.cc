// Determinism contract of the parallel experiment engine: every fan-out
// entry point must produce bit-identical results for any SearchOptions.jobs
// value, because each probe runs a fresh scheduler + seeded RNG and shares
// no mutable state.  threads=1 is the reference serial loop.
#include "core/experiment.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace pe::core {
namespace {

const Testbed& MobilenetTb() {
  static const Testbed tb{[] {
    TestbedConfig c;
    c.model_name = "mobilenet";
    return c;
  }()};
  return tb;
}

SearchOptions FastSearch(int jobs) {
  SearchOptions o;
  o.num_queries = 600;
  o.iterations = 4;
  o.jobs = jobs;
  return o;
}

int HardwareJobs() {
  return static_cast<int>(ThreadPool::DefaultThreads());
}

// Bit-identical, not approximately-equal: memcmp the raw double bytes so
// even a last-ulp divergence between the serial and parallel paths fails.
void ExpectBitIdentical(const ThroughputResult& a, const ThroughputResult& b) {
  EXPECT_EQ(std::memcmp(&a.qps, &b.qps, sizeof(a.qps)), 0);
  EXPECT_EQ(std::memcmp(&a.p95_at_qps_ms, &b.p95_at_qps_ms,
                        sizeof(a.p95_at_qps_ms)),
            0);
}

TEST(ParallelExperiment, BestHomogeneousIsThreadCountInvariant) {
  const auto& tb = MobilenetTb();
  const double sla_ms = TicksToMs(tb.sla_target());
  const auto serial =
      BestHomogeneous(tb, SchedulerKind::kFifs, sla_ms, FastSearch(1));
  const auto parallel = BestHomogeneous(tb, SchedulerKind::kFifs, sla_ms,
                                        FastSearch(HardwareJobs()));
  EXPECT_EQ(serial.partition_gpcs, parallel.partition_gpcs);
  EXPECT_EQ(std::memcmp(&serial.qps, &parallel.qps, sizeof(serial.qps)), 0);
}

TEST(ParallelExperiment, TailLatencyCurveIsThreadCountInvariant) {
  const auto& tb = MobilenetTb();
  const auto plan = tb.PlanHomogeneous(7);
  const double sla_ms = TicksToMs(tb.sla_target());
  const std::vector<double> fractions = {0.5, 0.8, 1.0, 1.2};
  const auto serial = TailLatencyCurve(tb, plan, SchedulerKind::kFifs,
                                       fractions, sla_ms, FastSearch(1));
  const auto parallel =
      TailLatencyCurve(tb, plan, SchedulerKind::kFifs, fractions, sla_ms,
                       FastSearch(HardwareJobs()));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(std::memcmp(&serial[i], &parallel[i], sizeof(RatePoint)), 0)
        << "sweep point " << i << " diverged between jobs=1 and jobs="
        << HardwareJobs();
  }
}

TEST(ParallelExperiment, BatchMatchesSerialLatencyBoundedThroughput) {
  const auto& tb = MobilenetTb();
  const double sla_ms = TicksToMs(tb.sla_target());
  std::vector<ProbeSpec> specs;
  for (int size : {7, 3, 1}) {
    specs.push_back({"GPU(" + std::to_string(size) + ")",
                     tb.PlanHomogeneous(size), SchedulerKind::kFifs,
                     sched::ElsaParams{}});
  }
  specs.push_back({"PARIS+ELSA", tb.PlanParis(), SchedulerKind::kElsa,
                   sched::ElsaParams{}});

  const auto batch = LatencyBoundedThroughputBatch(tb, specs, sla_ms,
                                                   FastSearch(HardwareJobs()));
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto reference =
        LatencyBoundedThroughput(tb, specs[i].plan, specs[i].kind, sla_ms,
                                 FastSearch(1), specs[i].elsa);
    ExpectBitIdentical(batch[i], reference);
  }
}

TEST(ParallelExperiment, RepeatedParallelRunsAreIdentical) {
  const auto& tb = MobilenetTb();
  const double sla_ms = TicksToMs(tb.sla_target());
  const auto plan = tb.PlanParis();
  const auto a = LatencyBoundedThroughput(tb, plan, SchedulerKind::kElsa,
                                          sla_ms, FastSearch(HardwareJobs()));
  const auto b = LatencyBoundedThroughput(tb, plan, SchedulerKind::kElsa,
                                          sla_ms, FastSearch(HardwareJobs()));
  ExpectBitIdentical(a, b);
}

}  // namespace
}  // namespace pe::core
