#include "core/experiment.h"

#include <gtest/gtest.h>

namespace pe::core {
namespace {

const Testbed& MobilenetTb() {
  static const Testbed tb{[] {
    TestbedConfig c;
    c.model_name = "mobilenet";
    return c;
  }()};
  return tb;
}

SearchOptions FastSearch() {
  SearchOptions o;
  o.num_queries = 1500;
  o.iterations = 6;
  return o;
}

TEST(LatencyBoundedThroughput, PositiveForFeasibleDesign) {
  const auto& tb = MobilenetTb();
  const auto plan = tb.PlanHomogeneous(7);
  const auto r = LatencyBoundedThroughput(tb, plan, SchedulerKind::kFifs,
                                          TicksToMs(tb.sla_target()),
                                          FastSearch());
  EXPECT_GT(r.qps, 10.0);
  EXPECT_LE(r.p95_at_qps_ms, TicksToMs(tb.sla_target()));
}

TEST(LatencyBoundedThroughput, ZeroForImpossibleBound) {
  const auto& tb = MobilenetTb();
  const auto plan = tb.PlanHomogeneous(7);
  // A 1 us bound is unachievable even unloaded.
  const auto r = LatencyBoundedThroughput(tb, plan, SchedulerKind::kFifs,
                                          1e-3, FastSearch());
  EXPECT_EQ(r.qps, 0.0);
}

TEST(LatencyBoundedThroughput, LooserBoundGivesMoreThroughput) {
  const auto& tb = MobilenetTb();
  const auto plan = tb.PlanHomogeneous(7);
  const double sla_ms = TicksToMs(tb.sla_target());
  const auto tight = LatencyBoundedThroughput(
      tb, plan, SchedulerKind::kFifs, sla_ms, FastSearch());
  const auto loose = LatencyBoundedThroughput(
      tb, plan, SchedulerKind::kFifs, 2.0 * sla_ms, FastSearch());
  EXPECT_GE(loose.qps, tight.qps);
}

TEST(LatencyBoundedThroughput, ParisElsaBeatsGpu7Fifs) {
  // The paper's headline Figure 12 comparison, for MobileNet.
  const auto& tb = MobilenetTb();
  const double sla_ms = TicksToMs(tb.sla_target());
  const auto base = LatencyBoundedThroughput(
      tb, tb.PlanHomogeneous(7), SchedulerKind::kFifs, sla_ms, FastSearch());
  const auto ours = LatencyBoundedThroughput(
      tb, tb.PlanParis(), SchedulerKind::kElsa, sla_ms, FastSearch());
  EXPECT_GT(ours.qps, base.qps);
}

TEST(TailLatencyCurve, MonotoneDegradationUnderLoad) {
  const auto& tb = MobilenetTb();
  const auto plan = tb.PlanHomogeneous(7);
  const auto curve =
      TailLatencyCurve(tb, plan, SchedulerKind::kFifs, {0.5, 0.9, 1.3},
                       TicksToMs(tb.sla_target()), FastSearch());
  ASSERT_EQ(curve.size(), 3u);
  // p95 grows with offered load.
  EXPECT_LT(curve[0].p95_ms, curve[2].p95_ms);
  // Overload point exceeds the SLA.
  EXPECT_GT(curve[2].p95_ms, TicksToMs(tb.sla_target()));
  for (const auto& p : curve) {
    EXPECT_GT(p.achieved_qps, 0.0);
    EXPECT_GE(p.utilization, 0.0);
    EXPECT_LE(p.utilization, 1.0);
  }
}

TEST(BestHomogeneous, ReturnsValidSizeWithPositiveQps) {
  const auto& tb = MobilenetTb();
  const auto best = BestHomogeneous(tb, SchedulerKind::kFifs,
                                    TicksToMs(tb.sla_target()), FastSearch());
  EXPECT_TRUE(best.partition_gpcs == 1 || best.partition_gpcs == 2 ||
              best.partition_gpcs == 3 || best.partition_gpcs == 7);
  EXPECT_GT(best.qps, 0.0);
}

TEST(BestHomogeneous, BeatsOrMatchesGpu7) {
  const auto& tb = MobilenetTb();
  const double sla_ms = TicksToMs(tb.sla_target());
  const auto best =
      BestHomogeneous(tb, SchedulerKind::kFifs, sla_ms, FastSearch());
  const auto gpu7 = LatencyBoundedThroughput(
      tb, tb.PlanHomogeneous(7), SchedulerKind::kFifs, sla_ms, FastSearch());
  EXPECT_GE(best.qps, gpu7.qps * 0.99);
}

}  // namespace
}  // namespace pe::core
