// FleetTestbed end-to-end tests, including the fleet driver's acceptance
// contract: record-by-record identical per-server results at --jobs 1, 2,
// and hardware concurrency, for every router policy.
#include "core/fleet_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace pe::core {
namespace {

FleetTestbedConfig SmallFleet(int servers, fleet::RouterPolicy policy) {
  FleetTestbedConfig fc;
  fc.mix.models.push_back({"resnet", 0.6, 6.0, 0.9});
  fc.mix.models.push_back({"mobilenet", 0.4, 4.0, 0.8});
  fc.mix.swap_cost_us = 200.0;
  fc.num_servers = servers;
  fc.policy = policy;
  return fc;
}

bool SameRecords(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& x = a.records[i];
    const auto& y = b.records[i];
    if (x.id != y.id || x.batch != y.batch || x.model != y.model ||
        x.arrival != y.arrival || x.started != y.started ||
        x.finished != y.finished || x.worker != y.worker ||
        x.model_swap != y.model_swap) {
      return false;
    }
  }
  return true;
}

TEST(FleetTestbed, BitIdenticalAcrossJobsForEveryPolicy) {
  const int hw = std::max(
      2, static_cast<int>(std::thread::hardware_concurrency()));
  for (const auto policy :
       {fleet::RouterPolicy::kHash, fleet::RouterPolicy::kLeastLoaded,
        fleet::RouterPolicy::kPowerOfTwo}) {
    const FleetTestbed tb(SmallFleet(4, policy));
    const auto trace = tb.GenerateFleetTrace(600.0, 4000, /*seed=*/7);
    const auto base = tb.Run(trace, 1);
    for (const int jobs : {2, hw}) {
      const auto run = tb.Run(trace, jobs);
      ASSERT_EQ(run.per_server.size(), base.per_server.size());
      for (std::size_t s = 0; s < base.per_server.size(); ++s) {
        EXPECT_TRUE(SameRecords(base.per_server[s], run.per_server[s]))
            << fleet::ToString(policy) << " server " << s
            << " diverged at jobs=" << jobs;
      }
    }
  }
}

TEST(FleetTestbed, PlansEveryServerAndServesTheWholeTrace) {
  const FleetTestbed tb(SmallFleet(3, fleet::RouterPolicy::kLeastLoaded));
  // Every server got a planner-filled MIG layout within its budget.
  for (int s = 0; s < tb.num_servers(); ++s) {
    const auto& sp = tb.placement().server(s);
    ASSERT_FALSE(sp.partition_gpcs.empty());
    int total = 0;
    for (const int g : sp.partition_gpcs) total += g;
    EXPECT_LE(total, sp.gpc_budget);
  }
  const auto trace = tb.GenerateFleetTrace(450.0, 3000, /*seed=*/3);
  const auto stats = tb.RunStats(trace, 2);
  EXPECT_EQ(stats.routed_queries, trace.size());
  EXPECT_GT(stats.aggregate.completed, 0u);
  // Per-server ModelStats carry fleet-global model ids (0..1 here).
  for (const auto& server : stats.per_server) {
    for (const auto& m : server.models) {
      EXPECT_GE(m.model, 0);
      EXPECT_LT(m.model, 2);
    }
  }
}

TEST(FleetTestbed, ShardedPlacementPartitionsPerShard) {
  // Under sharding, a server plans a layout for the models it hosts, not
  // the whole zoo -- so a 1-model shard still yields a valid layout and
  // the fleet still serves every query of both models.
  FleetTestbedConfig fc = SmallFleet(4, fleet::RouterPolicy::kHash);
  fc.placement = fleet::PlacementKind::kSharded;
  fc.replicas = 2;
  const FleetTestbed tb(fc);
  const auto trace = tb.GenerateFleetTrace(500.0, 2500, /*seed=*/9);
  const auto stats = tb.RunStats(trace, 2);
  EXPECT_EQ(stats.routed_queries, trace.size());
  std::uint64_t routed = 0;
  for (const auto n : stats.routed_per_server) routed += n;
  EXPECT_EQ(routed, trace.size());
}

TEST(FleetTestbed, RejectsDegenerateConfigs) {
  FleetTestbedConfig bad = SmallFleet(0, fleet::RouterPolicy::kHash);
  EXPECT_THROW(FleetTestbed{bad}, std::invalid_argument);
}

TEST(FleetTestbed, ReferenceEngineMatchesFastEngine) {
  // The fleet inherits the single-server golden rule: the pre-optimization
  // reference engine and the fast engine produce identical records for
  // the same fleet run.
  FleetTestbedConfig fast_cfg = SmallFleet(3, fleet::RouterPolicy::kHash);
  FleetTestbedConfig ref_cfg = fast_cfg;
  ref_cfg.reference_engine = true;
  const FleetTestbed fast_tb(fast_cfg);
  const FleetTestbed ref_tb(ref_cfg);
  const auto trace = fast_tb.GenerateFleetTrace(450.0, 2000, /*seed=*/5);
  const auto fast_run = fast_tb.Run(trace, 2);
  const auto ref_run = ref_tb.Run(trace, 2);
  ASSERT_EQ(fast_run.per_server.size(), ref_run.per_server.size());
  for (std::size_t s = 0; s < fast_run.per_server.size(); ++s) {
    EXPECT_TRUE(SameRecords(fast_run.per_server[s], ref_run.per_server[s]))
        << "engines diverged on server " << s;
  }
}

}  // namespace
}  // namespace pe::core
