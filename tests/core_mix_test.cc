// MixTestbed end-to-end tests, including the acceptance contract: a
// one-model mix (share 1.0, swap cost 0) replays bit-identically to the
// single-model Testbed simulate path at the same seed.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/mix_runner.h"
#include "core/server_builder.h"

namespace pe::core {
namespace {

TEST(MixTestbed, RejectsDegenerateConfigs) {
  EXPECT_THROW(MixTestbed{MixConfig{}}, std::invalid_argument);
  MixConfig dup;
  dup.models.push_back({"resnet", 0.5, 6.0, 0.9});
  dup.models.push_back({"resnet", 0.5, 6.0, 0.9});
  EXPECT_THROW(MixTestbed{dup}, std::invalid_argument);
  MixConfig negative;
  negative.models.push_back({"resnet", 1.0, 6.0, 0.9});
  negative.swap_cost_us = -1.0;
  EXPECT_THROW(MixTestbed{negative}, std::invalid_argument);
}

// The acceptance contract of the multi-model refactor: with one model,
// share 1.0 and swap cost 0, the whole mix pipeline (zoo repertoire,
// mixed-PARIS plan, mixed trace, repertoire server) must reproduce the
// original single-model simulate path record by record.
TEST(MixTestbed, SingleModelMixBitIdenticalToSimulatePath) {
  const double rate_qps = 300.0;
  const std::size_t num_queries = 3000;
  const std::uint64_t seed = 7;

  // The existing simulate path: Testbed + PARIS plan + ELSA.
  TestbedConfig tc;
  tc.model_name = "resnet";
  const Testbed tb(tc);
  const auto plan = tb.PlanParis();
  auto scheduler = tb.MakeScheduler(SchedulerKind::kElsa);
  RunOptions run;
  run.rate_qps = rate_qps;
  run.num_queries = num_queries;
  run.seed = seed;
  const auto expected = tb.Run(plan, *scheduler, run);

  // The mix path, degenerate one-model case.
  MixConfig mc;
  mc.models.push_back({"resnet", 1.0, tc.dist_median, tc.dist_sigma});
  mc.max_batch = tc.max_batch;
  mc.sla_n = tc.sla_n;
  mc.swap_cost_us = 0.0;
  const MixTestbed mix_tb(mc);
  EXPECT_EQ(mix_tb.sla_target(), tb.sla_target());

  const auto mixed = mix_tb.PlanMixed();
  auto sorted = [](std::vector<int> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  ASSERT_EQ(sorted(mixed.plan.instance_gpcs), sorted(plan.instance_gpcs));

  const auto trace = mix_tb.GenerateMix(rate_qps, num_queries, seed);
  auto mix_scheduler = mix_tb.MakeScheduler(SchedulerKind::kElsa);
  const auto actual =
      mix_tb.Run(mixed.plan.instance_gpcs, *mix_scheduler, trace, seed);

  ASSERT_EQ(actual.records.size(), expected.records.size());
  for (std::size_t i = 0; i < expected.records.size(); ++i) {
    const auto& e = expected.records[i];
    const auto& a = actual.records[i];
    EXPECT_EQ(a.id, e.id) << "query " << i;
    EXPECT_EQ(a.batch, e.batch) << "query " << i;
    EXPECT_EQ(a.model, 0) << "query " << i;
    EXPECT_EQ(a.arrival, e.arrival) << "query " << i;
    EXPECT_EQ(a.dispatched, e.dispatched) << "query " << i;
    EXPECT_EQ(a.started, e.started) << "query " << i;
    EXPECT_EQ(a.finished, e.finished) << "query " << i;
    EXPECT_EQ(a.worker, e.worker) << "query " << i;
    EXPECT_EQ(a.worker_gpcs, e.worker_gpcs) << "query " << i;
    EXPECT_FALSE(a.model_swap) << "query " << i;
  }
}

TEST(MixTestbed, TwoModelMixServesBothWithinPlan) {
  MixConfig mc;
  mc.models.push_back({"resnet", 0.6, 6.0, 0.9});
  mc.models.push_back({"mobilenet", 0.4, 4.0, 0.9});
  mc.swap_cost_us = 500.0;
  const MixTestbed tb(mc);
  ASSERT_EQ(tb.num_models(), 2);

  const auto mixed = tb.PlanMixed();
  EXPECT_EQ(mixed.budgets.size(), 2u);
  EXPECT_LE(mixed.plan.TotalGpcs(), mc.gpc_budget);

  const auto trace = tb.GenerateMix(250.0, 2000, /*seed=*/3);
  EXPECT_EQ(trace.NumModels(), 2);
  auto scheduler = tb.MakeScheduler(SchedulerKind::kElsa);
  const auto result =
      tb.Run(mixed.plan.instance_gpcs, *scheduler, trace, /*seed=*/3);
  const auto stats = result.Stats(tb.sla_target(), /*warmup_fraction=*/0.0);

  EXPECT_EQ(stats.completed, trace.size());
  ASSERT_EQ(stats.models.size(), 2u);
  EXPECT_GT(stats.models[0].completed, 0u);
  EXPECT_GT(stats.models[1].completed, 0u);
  EXPECT_EQ(stats.models[0].completed + stats.models[1].completed,
            stats.completed);
  // Interleaved traffic on shared partitions must have displaced models.
  EXPECT_GT(stats.model_swaps, 0u);
}

}  // namespace
}  // namespace pe::core
