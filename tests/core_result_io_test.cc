#include "core/result_io.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

namespace pe::core {
namespace {

TEST(Json, ScalarsDumpCompactly) {
  EXPECT_EQ(Json().Dump(0), "null");
  EXPECT_EQ(Json(true).Dump(0), "true");
  EXPECT_EQ(Json(false).Dump(0), "false");
  EXPECT_EQ(Json(42).Dump(0), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).Dump(0), "-7");
  EXPECT_EQ(Json("hi").Dump(0), "\"hi\"");
}

TEST(Json, DoublesRoundTripAndKeepTheDecimalPoint) {
  EXPECT_EQ(Json(0.5).Dump(0), "0.5");
  // Integral doubles keep a ".0" so the token stays a double.
  EXPECT_EQ(Json(60.0).Dump(0), "60.0");
  // Shortest round-trip form, not fixed precision.
  EXPECT_EQ(Json(0.1).Dump(0), "0.1");
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).Dump(0), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(0), "null");
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(Json::Escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(Json::Escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(Json::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ObjectsPreserveInsertionOrderAndOverwriteInPlace) {
  Json obj = Json::Object();
  obj.Set("b", 1);
  obj.Set("a", 2);
  obj.Set("b", 3);  // overwrite keeps position
  EXPECT_EQ(obj.Dump(0), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, NestedPrettyPrintIsStable) {
  Json obj = Json::Object();
  Json arr = Json::Array();
  arr.Add(1);
  arr.Add("x");
  obj.Set("items", std::move(arr));
  EXPECT_EQ(obj.Dump(2),
            "{\n  \"items\": [\n    1,\n    \"x\"\n  ]\n}");
  EXPECT_EQ(Json::Array().Dump(2), "[]");
  EXPECT_EQ(Json::Object().Dump(2), "{}");
}

TEST(ResultIo, ThroughputResultFields) {
  ThroughputResult r;
  r.qps = 123.5;
  r.p95_at_qps_ms = 9.25;
  EXPECT_EQ(ToJson(r).Dump(0), "{\"qps\":123.5,\"p95_at_qps_ms\":9.25}");
}

TEST(ResultIo, RatePointAndCurveFields) {
  RatePoint p;
  p.offered_qps = 10.0;
  p.achieved_qps = 9.5;
  p.p95_ms = 5.25;
  p.mean_ms = 2.5;
  p.violation_rate = 0.0;
  p.utilization = 0.75;
  const std::string dumped = ToJson(std::vector<RatePoint>{p}).Dump(0);
  EXPECT_EQ(dumped,
            "[{\"offered_qps\":10.0,\"achieved_qps\":9.5,\"p95_ms\":5.25,"
            "\"mean_ms\":2.5,\"violation_rate\":0.0,\"utilization\":0.75}]");
}

TEST(ResultIo, BenchReportSkeletonCarriesTheSchemaTag) {
  auto report = MakeBenchReport("fig99_example", /*smoke=*/true, /*jobs=*/4);
  const std::string dumped = report.Dump(0);
  EXPECT_NE(dumped.find("\"schema\":\"paris-elsa-bench-v1\""),
            std::string::npos);
  EXPECT_NE(dumped.find("\"bench\":\"fig99_example\""), std::string::npos);
  EXPECT_NE(dumped.find("\"smoke\":true"), std::string::npos);
  EXPECT_NE(dumped.find("\"jobs\":4"), std::string::npos);
}

TEST(ResultIo, WriteJsonFileRoundTrips) {
  const std::string path =
      testing::TempDir() + "/result_io_roundtrip.json";
  Json doc = Json::Object();
  doc.Set("x", 1);
  WriteJsonFile(path, doc);
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(buf.str(), "{\n  \"x\": 1\n}\n");
  std::remove(path.c_str());
}

TEST(ResultIo, WriteJsonFileThrowsOnUnopenablePath) {
  EXPECT_THROW(WriteJsonFile("/nonexistent-dir/x/y.json", Json::Object()),
               std::runtime_error);
}

}  // namespace
}  // namespace pe::core
