#include "core/server_builder.h"

#include <gtest/gtest.h>

#include "core/paper_config.h"

namespace pe::core {
namespace {

TEST(PaperConfig, Table1RowsMatchPaper) {
  const auto& table = PaperTable1();
  ASSERT_EQ(table.size(), 5u);
  EXPECT_EQ(Table1For("shufflenet").gpc_budget, 24);
  EXPECT_EQ(Table1For("mobilenet").gpc_budget, 24);
  EXPECT_EQ(Table1For("mobilenet").gpc_budget_gpu7, 28);
  EXPECT_EQ(Table1For("resnet").gpc_budget, 48);
  EXPECT_EQ(Table1For("resnet").gpc_budget_gpu7, 56);
  EXPECT_EQ(Table1For("bert").gpc_budget, 42);
  EXPECT_EQ(Table1For("bert").gpc_budget_gpu7, 42);
  EXPECT_EQ(Table1For("bert").num_gpus, 6);
  EXPECT_EQ(Table1For("conformer").num_gpus, 8);
  EXPECT_THROW(Table1For("vgg"), std::invalid_argument);
}

class TestbedFixture : public ::testing::Test {
 protected:
  static const Testbed& tb() {
    static const Testbed instance{[] {
      TestbedConfig c;
      c.model_name = "resnet";
      return c;
    }()};
    return instance;
  }
};

TEST_F(TestbedFixture, SlaRuleIsNTimesGpu7MaxBatch) {
  const double base = tb().profile().LatencySec(7, 32);
  EXPECT_NEAR(TicksToSec(tb().sla_target()), 1.5 * base, 1e-9);
}

TEST_F(TestbedFixture, BudgetForGpu7UsesWiderBudget) {
  EXPECT_EQ(tb().BudgetFor(7), 56);
  EXPECT_EQ(tb().BudgetFor(3), 48);
  EXPECT_EQ(tb().BudgetFor(1), 48);
}

TEST_F(TestbedFixture, HomogeneousPlansMatchTable1) {
  EXPECT_EQ(tb().PlanHomogeneous(1).NumInstances(), 48);
  EXPECT_EQ(tb().PlanHomogeneous(2).NumInstances(), 24);
  EXPECT_EQ(tb().PlanHomogeneous(3).NumInstances(), 16);
  EXPECT_EQ(tb().PlanHomogeneous(7).NumInstances(), 8);
}

TEST_F(TestbedFixture, ParisPlanIsHeterogeneousForResnet) {
  const auto plan = tb().PlanParis();
  std::set<int> sizes(plan.instance_gpcs.begin(), plan.instance_gpcs.end());
  EXPECT_GT(sizes.size(), 1u);
  EXPECT_LE(plan.TotalGpcs(), 48);
}

TEST_F(TestbedFixture, SchedulerFactoryProducesAllKinds) {
  EXPECT_EQ(tb().MakeScheduler(SchedulerKind::kFifs)->name(), "FIFS");
  EXPECT_EQ(tb().MakeScheduler(SchedulerKind::kElsa)->name(), "ELSA");
  EXPECT_EQ(tb().MakeScheduler(SchedulerKind::kJsq)->name(), "JSQ");
  EXPECT_EQ(tb().MakeScheduler(SchedulerKind::kGreedyFastest)->name(),
            "GreedyFastest");
}

TEST_F(TestbedFixture, RunProducesCompleteRecords) {
  const auto plan = tb().PlanHomogeneous(7);
  auto sched = tb().MakeScheduler(SchedulerKind::kFifs);
  RunOptions opt;
  opt.rate_qps = 200.0;
  opt.num_queries = 500;
  const auto result = tb().Run(plan, *sched, opt);
  ASSERT_EQ(result.records.size(), 500u);
  for (const auto& r : result.records) {
    EXPECT_GT(r.finished, r.arrival);
    EXPECT_GE(r.worker, 0);
  }
}

TEST_F(TestbedFixture, RunIsDeterministic) {
  const auto plan = tb().PlanParis();
  RunOptions opt;
  opt.rate_qps = 300.0;
  opt.num_queries = 400;
  opt.seed = 99;
  const auto a = tb().RunStats(plan, SchedulerKind::kElsa, opt);
  const auto b = tb().RunStats(plan, SchedulerKind::kElsa, opt);
  EXPECT_DOUBLE_EQ(a.p95_latency_ms, b.p95_latency_ms);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.completed, b.completed);
}

TEST_F(TestbedFixture, ActualLatencyOutlivesTestbed) {
  sim::LatencyFn fn;
  {
    TestbedConfig c;
    c.model_name = "mobilenet";
    Testbed local(c);
    fn = local.ActualLatency();
  }
  EXPECT_GT(fn(7, 8), 0.0);  // must not dangle
}

TEST_F(TestbedFixture, RejectsEmptyPlan) {
  partition::PartitionPlan empty;
  auto sched = tb().MakeScheduler(SchedulerKind::kFifs);
  EXPECT_THROW(tb().Run(empty, *sched, RunOptions{}), std::invalid_argument);
}

TEST(Testbed, SchedulerKindNames) {
  EXPECT_STREQ(ToString(SchedulerKind::kFifs), "FIFS");
  EXPECT_STREQ(ToString(SchedulerKind::kElsa), "ELSA");
}

TEST(Testbed, UnknownModelThrows) {
  TestbedConfig c;
  c.model_name = "alexnet";
  EXPECT_THROW(Testbed tb(c), std::invalid_argument);
}

}  // namespace
}  // namespace pe::core
