// Golden determinism suite for the event-engine fast path: the optimized
// engine (compiled profile lookups, incremental scheduler view, sorted
// arrival cursor) must produce QueryRecord streams bit-identical to the
// reference (pre-optimization) engine for every covered scenario -- FIFS
// and ELSA, single-model and mixed traffic, static runs and live
// reconfigurations, across several seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "online/elastic_server.h"
#include "online/repartition_controller.h"
#include "sched/elsa.h"
#include "sched/fifs.h"
#include "sim/server.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace pe::sim {
namespace {

// Distinct per-model cost surfaces; the actual latency deliberately
// diverges from the profile so estimate/actual paths stay distinguishable.
profile::ProfileTable MakeTable(const std::string& name, double scale) {
  profile::ProfileTable t(name, {1, 2, 3, 7}, {1, 2, 4, 8, 16, 32});
  for (int g : t.partition_sizes()) {
    for (int b : t.batch_sizes()) {
      profile::ProfileEntry e;
      e.latency_sec = scale * 1e-3 * (0.5 + 0.4 * b) / static_cast<double>(g);
      e.utilization = std::min(1.0, 0.08 * b);
      t.Set(g, b, e);
    }
  }
  return t;
}

profile::ModelRepertoire MakeRepertoire(int num_models) {
  profile::ModelRepertoire rep;
  for (int m = 0; m < num_models; ++m) {
    const double scale = 1.0 + 0.6 * m;
    // Built via += (not `"m" + std::to_string(...)`): GCC-12's -Wrestrict
    // false-positives on operator+(const char*, string&&) in Release.
    std::string name = "m";
    name += std::to_string(m);
    rep.Register(std::move(name), MakeTable("m", scale),
                 [scale](int gpcs, int batch) {
                   return scale * 1.07e-3 * (0.5 + 0.4 * batch) /
                          static_cast<double>(gpcs);
                 });
  }
  return rep;
}

workload::QueryTrace MakeTraceFor(const profile::ModelRepertoire& rep,
                                  std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  workload::PoissonArrivals arrivals(/*rate_qps=*/900.0);
  workload::LogNormalBatchDist d0(6.0, 0.9, 32);
  workload::LogNormalBatchDist d1(4.0, 0.7, 32);
  workload::LogNormalBatchDist d2(9.0, 0.8, 32);
  if (rep.size() == 1) {
    workload::ArrivalTraceSource source(arrivals, d0);
    return workload::Take(source, n, rng);
  }
  workload::MixSpec mix;
  mix.components.push_back({0, 0.5, &d0});
  mix.components.push_back({1, 0.3, &d1});
  mix.components.push_back({2, 0.2, &d2});
  workload::MixTraceSource source(arrivals, mix);
  return workload::Take(source, n, rng);
}

enum class Sched { kFifs, kElsa };

struct Scenario {
  Sched sched = Sched::kFifs;
  int models = 1;
  bool reconfigure = false;
  std::uint64_t seed = 1;
};

std::unique_ptr<sched::Scheduler> MakeSched(
    const Scenario& s, const profile::ModelRepertoire& rep, SimTime sla,
    bool reference) {
  if (s.sched == Sched::kFifs) {
    return std::make_unique<sched::FifsScheduler>();
  }
  sched::ElsaParams params;
  params.locality_tie_sec = s.models > 1 ? 0.002 : 0.0;
  // The reference leg also takes the uncompiled estimate path, so the
  // comparison covers both the engine and the scheduler lookups.
  params.compiled_lookups = !reference;
  return std::make_unique<sched::ElsaScheduler>(rep, sla, params);
}

SimResult RunScenario(const Scenario& s, bool reference) {
  const auto rep = MakeRepertoire(s.models);
  const SimTime sla = MsToTicks(40.0);
  ServerConfig config;
  config.partition_gpcs = {1, 1, 2, 3, 7, 7};
  config.sla_target = sla;
  config.latency_noise_sigma = 0.25;  // exercise the RNG stream
  config.seed = s.seed ^ 0xBEEF;
  config.model_swap_cost = UsToTicks(250.0);
  config.reference_engine = reference;
  auto scheduler = MakeSched(s, rep, sla, reference);
  InferenceServer server(config, rep, *scheduler);
  const auto trace = MakeTraceFor(rep, 600, s.seed);
  if (!s.reconfigure) return server.Run(trace);
  // Live-reconfiguration driving: chunked advances around two layout
  // swaps (the second supersedes nothing; both complete).
  server.InjectTrace(trace);
  server.AdvanceTo(MsToTicks(120.0));
  server.BeginReconfigure({2, 2, 3, 7}, MsToTicks(15.0));
  server.AdvanceTo(MsToTicks(300.0));
  server.BeginReconfigure({1, 2, 3, 3, 7, 7}, MsToTicks(10.0));
  return server.Finish();
}

void ExpectIdenticalRecords(const std::vector<QueryRecord>& fast,
                            const std::vector<QueryRecord>& ref,
                            const std::string& label) {
  ASSERT_EQ(fast.size(), ref.size()) << label;
  for (std::size_t i = 0; i < fast.size(); ++i) {
    const QueryRecord& a = fast[i];
    const QueryRecord& b = ref[i];
    EXPECT_EQ(a.id, b.id) << label << " record " << i;
    EXPECT_EQ(a.batch, b.batch) << label << " record " << i;
    EXPECT_EQ(a.model, b.model) << label << " record " << i;
    EXPECT_EQ(a.arrival, b.arrival) << label << " record " << i;
    EXPECT_EQ(a.dispatched, b.dispatched) << label << " record " << i;
    EXPECT_EQ(a.started, b.started) << label << " record " << i;
    EXPECT_EQ(a.finished, b.finished) << label << " record " << i;
    EXPECT_EQ(a.worker, b.worker) << label << " record " << i;
    EXPECT_EQ(a.worker_gpcs, b.worker_gpcs) << label << " record " << i;
    EXPECT_EQ(a.model_swap, b.model_swap) << label << " record " << i;
    EXPECT_EQ(a.reconfig_stalls, b.reconfig_stalls)
        << label << " record " << i;
    // One diverging record is enough detail.
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(EngineGolden, FastPathMatchesReferenceEverywhere) {
  for (const Sched sched : {Sched::kFifs, Sched::kElsa}) {
    for (const int models : {1, 3}) {
      for (const bool reconfigure : {false, true}) {
        for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
          const Scenario s{sched, models, reconfigure, seed};
          std::string label = sched == Sched::kFifs ? "FIFS" : "ELSA";
          label += "/m";
          label += std::to_string(models);
          label += reconfigure ? "/reconfig" : "/static";
          label += "/seed";
          label += std::to_string(seed);
          const auto fast = RunScenario(s, /*reference=*/false);
          const auto ref = RunScenario(s, /*reference=*/true);
          ExpectIdenticalRecords(fast.records, ref.records, label);
          if (::testing::Test::HasFailure()) return;
        }
      }
    }
  }
}

// Out-of-order injection falls off the sorted cursor onto the heap; the
// merged order must still equal the reference engine's single-queue order.
TEST(EngineGolden, OutOfOrderInjectionMatchesReference) {
  const auto rep = MakeRepertoire(1);
  ServerConfig config;
  config.partition_gpcs = {1, 7};
  config.sla_target = MsToTicks(30.0);
  config.seed = 5;
  std::vector<workload::Query> qs;
  const SimTime arrivals[] = {MsToTicks(0.0), MsToTicks(9.0), MsToTicks(3.0),
                              MsToTicks(3.0), MsToTicks(12.0), MsToTicks(1.0)};
  for (std::size_t i = 0; i < 6; ++i) {
    workload::Query q;
    q.id = i;
    q.arrival = arrivals[i];
    q.batch = 8;
    qs.push_back(q);
  }
  std::vector<std::vector<QueryRecord>> results;
  for (const bool reference : {false, true}) {
    auto c = config;
    c.reference_engine = reference;
    sched::FifsScheduler fifs;
    InferenceServer server(c, rep, fifs);
    for (const auto& q : qs) server.InjectQuery(q);
    results.push_back(server.Finish().records);
  }
  ExpectIdenticalRecords(results[0], results[1], "out-of-order");
}

// Calendar-ordering scenarios: each stresses one structural mechanism of
// the bucketed event calendar (sim/event_calendar.h) and pins the result
// record-by-record against the reference engine's single binary heap.

// Same-timestamp bursts: many arrivals share one instant, so their
// frontend/worker completion events collide on single timestamps too; the
// (time, seq) tie-break must order them across calendar buckets exactly
// as the heap does, and the batched same-instant sweep must not perturb
// scheduler decisions made mid-burst.
TEST(EngineGolden, SameInstantBurstTieBreakMatchesReference) {
  const auto rep = MakeRepertoire(1);
  ServerConfig config;
  config.partition_gpcs = {1, 1, 2, 7};
  config.sla_target = MsToTicks(30.0);
  config.seed = 17;
  config.frontend.enabled = true;  // same-instant frontend-done trains
  config.frontend.lanes = 3;
  std::vector<workload::Query> qs;
  for (std::size_t burst = 0; burst < 50; ++burst) {
    const SimTime at = MsToTicks(5.0 * static_cast<double>(burst));
    for (int k = 0; k < 8; ++k) {
      workload::Query q;
      q.id = qs.size();
      q.arrival = at;  // every query of the burst lands on one tick
      q.batch = 1 + (k % 4) * 8;
      qs.push_back(q);
    }
  }
  const workload::QueryTrace trace(std::move(qs));
  std::vector<std::vector<QueryRecord>> results;
  for (const bool reference : {false, true}) {
    auto c = config;
    c.reference_engine = reference;
    sched::FifsScheduler fifs;
    InferenceServer server(c, rep, fifs);
    results.push_back(server.Run(trace).records);
  }
  ExpectIdenticalRecords(results[0], results[1], "same-instant bursts");
}

// Overflow-spill promotion: out-of-order injections spanning several
// seconds land far beyond the calendar's initial ~67 ms wheel horizon, so
// they wait in the spill and are promoted across multiple re-anchors;
// the pop order must still be the exact global (time, seq) order.
TEST(EngineGolden, FarFutureSpillPromotionMatchesReference) {
  const auto rep = MakeRepertoire(1);
  ServerConfig config;
  config.partition_gpcs = {1, 7};
  config.sla_target = MsToTicks(30.0);
  config.seed = 23;
  // Alternating near/far arrivals in injection order: every second query
  // breaks the sorted-cursor invariant and falls into the calendar, with
  // times spread over ~8 s (hundreds of wheel horizons apart).
  std::vector<workload::Query> qs;
  for (std::size_t i = 0; i < 40; ++i) {
    workload::Query q;
    q.id = i;
    q.arrival = (i % 2 == 0)
                    ? MsToTicks(1.0 * static_cast<double>(i))
                    : MsToTicks(8000.0 - 150.0 * static_cast<double>(i));
    q.batch = 4;
    qs.push_back(q);
  }
  std::vector<std::vector<QueryRecord>> results;
  for (const bool reference : {false, true}) {
    auto c = config;
    c.reference_engine = reference;
    sched::FifsScheduler fifs;
    InferenceServer server(c, rep, fifs);
    for (const auto& q : qs) server.InjectQuery(q);
    results.push_back(server.Finish().records);
  }
  ExpectIdenticalRecords(results[0], results[1], "far-future spill");
}

// Out-of-order fallback under incremental driving: chunked AdvanceTo
// between injection waves, so calendar pops interleave with clock moves
// and a partially drained wheel keeps receiving behind-the-cursor pushes.
TEST(EngineGolden, IncrementalOutOfOrderWavesMatchReference) {
  const auto rep = MakeRepertoire(1);
  ServerConfig config;
  config.partition_gpcs = {1, 2, 7};
  config.sla_target = MsToTicks(30.0);
  config.seed = 31;
  std::vector<std::vector<QueryRecord>> results;
  for (const bool reference : {false, true}) {
    auto c = config;
    c.reference_engine = reference;
    sched::FifsScheduler fifs;
    InferenceServer server(c, rep, fifs);
    std::uint64_t id = 0;
    for (int wave = 0; wave < 4; ++wave) {
      const SimTime base = MsToTicks(25.0 * static_cast<double>(wave));
      // Each wave injects: ahead-of-now in-order arrivals, then a burst
      // that jumps backwards relative to the previous push (calendar
      // fallback), all at or after the current clock.
      for (int k = 0; k < 6; ++k) {
        workload::Query q;
        q.id = id++;
        q.arrival = base + MsToTicks(20.0 + static_cast<double>(k));
        q.batch = 8;
        server.InjectQuery(q);
      }
      for (int k = 0; k < 6; ++k) {
        workload::Query q;
        q.id = id++;
        q.arrival = base + MsToTicks(5.0 + 2.0 * static_cast<double>(k));
        q.batch = 2;
        server.InjectQuery(q);
      }
      server.AdvanceTo(base + MsToTicks(25.0));
    }
    results.push_back(server.Finish().records);
  }
  ExpectIdenticalRecords(results[0], results[1], "incremental waves");
}

// The elastic driver (epoch advances + controller-ordered live
// reconfigurations) over both engines: per-epoch and total stats match
// exactly.
class ForcedSwitchPolicy final : public online::RepartitionPolicy {
 public:
  ForcedSwitchPolicy(std::vector<int> initial, std::vector<int> next,
                     int switch_at_call)
      : switch_at_call_(switch_at_call) {
    current_.instance_gpcs = std::move(initial);
    next_.instance_gpcs = std::move(next);
    config_.reconfig_downtime = MsToTicks(12.0);
  }

  const partition::PartitionPlan& current_plan() const override {
    return current_;
  }
  const online::ElasticConfig& config() const override { return config_; }

  std::optional<partition::PartitionPlan> MaybeRepartition(
      const online::TrafficEstimator& estimator) override {
    (void)estimator;
    if (++calls_ == switch_at_call_) {
      current_ = next_;
      return current_;
    }
    return std::nullopt;
  }

 private:
  partition::PartitionPlan current_;
  partition::PartitionPlan next_;
  online::ElasticConfig config_;
  int switch_at_call_ = 0;
  int calls_ = 0;
};

TEST(EngineGolden, ElasticDriverMatchesReference) {
  const auto rep = MakeRepertoire(3);
  const SimTime sla = MsToTicks(40.0);
  const auto trace = MakeTraceFor(rep, 900, /*seed=*/11);
  std::vector<online::ElasticResult> results;
  for (const bool reference : {false, true}) {
    ForcedSwitchPolicy policy({1, 2, 7}, {2, 3, 3, 7}, /*switch_at_call=*/2);
    sched::ElsaParams params;
    params.locality_tie_sec = 0.002;
    params.compiled_lookups = !reference;
    online::ElasticServerSim elastic(
        policy, rep,
        [&rep, sla, params] {
          return std::make_unique<sched::ElsaScheduler>(rep, sla, params);
        },
        sla, /*queries_per_epoch=*/250, /*seed=*/77,
        /*model_swap_cost=*/UsToTicks(250.0));
    elastic.set_reference_engine(reference);
    results.push_back(elastic.Run(trace));
  }
  const auto& fast = results[0];
  const auto& ref = results[1];
  EXPECT_EQ(fast.reconfigurations, 1);
  ASSERT_EQ(fast.reconfigurations, ref.reconfigurations);
  ASSERT_EQ(fast.epochs.size(), ref.epochs.size());
  for (std::size_t e = 0; e < fast.epochs.size(); ++e) {
    EXPECT_EQ(fast.epochs[e].queries, ref.epochs[e].queries) << "epoch " << e;
    EXPECT_EQ(fast.epochs[e].p95_ms, ref.epochs[e].p95_ms) << "epoch " << e;
    EXPECT_EQ(fast.epochs[e].violation_rate, ref.epochs[e].violation_rate)
        << "epoch " << e;
    EXPECT_EQ(fast.epochs[e].stalled, ref.epochs[e].stalled) << "epoch " << e;
    EXPECT_EQ(fast.epochs[e].reconfigured, ref.epochs[e].reconfigured)
        << "epoch " << e;
    EXPECT_EQ(fast.epochs[e].layout, ref.epochs[e].layout) << "epoch " << e;
  }
  EXPECT_EQ(fast.total.completed, ref.total.completed);
  EXPECT_EQ(fast.total.p95_latency_ms, ref.total.p95_latency_ms);
  EXPECT_EQ(fast.total.p99_latency_ms, ref.total.p99_latency_ms);
  EXPECT_EQ(fast.total.mean_latency_ms, ref.total.mean_latency_ms);
  EXPECT_EQ(fast.total.sla_violation_rate, ref.total.sla_violation_rate);
  EXPECT_EQ(fast.total.reconfig_stalled, ref.total.reconfig_stalled);
  EXPECT_EQ(fast.total.model_swaps, ref.total.model_swaps);
}

}  // namespace
}  // namespace pe::sim
