// Unit tests for the two-level bucketed event calendar: pop order must be
// the exact global (time, seq) order a binary heap produces, regardless of
// bucket geometry, re-anchoring, spill promotion, or reuse after Clear().
#include "sim/event_calendar.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace pe::sim {
namespace {

Event Ev(SimTime time, std::uint64_t seq) {
  Event e;
  e.time = time;
  e.seq = seq;
  e.payload = static_cast<std::uint32_t>(seq);
  e.type = EventType::kWorkerDone;
  return e;
}

// Drains the calendar and checks the stream equals `expected` (which is
// sorted by (time, seq) in here, so callers pass the push population).
void ExpectDrainsSorted(EventCalendar& calendar, std::vector<Event> expected) {
  std::sort(expected.begin(), expected.end(),
            [](const Event& a, const Event& b) { return b > a; });
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_FALSE(calendar.empty()) << "event " << i;
    const Event* head = calendar.Peek();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->time, expected[i].time) << "event " << i;
    EXPECT_EQ(head->seq, expected[i].seq) << "event " << i;
    const Event popped = calendar.Pop();
    EXPECT_EQ(popped.time, expected[i].time) << "event " << i;
    EXPECT_EQ(popped.seq, expected[i].seq) << "event " << i;
    EXPECT_EQ(popped.payload, expected[i].payload) << "event " << i;
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.Peek(), nullptr);
}

TEST(EventCalendar, EmptyBehaviour) {
  EventCalendar calendar;
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.size(), 0u);
  EXPECT_EQ(calendar.Peek(), nullptr);
}

TEST(EventCalendar, SameTimestampPopsInSeqOrderAcrossBuckets) {
  EventCalendar calendar;
  std::vector<Event> events;
  // Ties pushed in scrambled seq order, interleaved with events in other
  // buckets so the tie group does not sit alone in the cursor bucket.
  const SimTime t = MsToTicks(3.0);
  for (const std::uint64_t seq : {9ull, 2ull, 7ull, 0ull, 5ull}) {
    events.push_back(Ev(t, seq));
  }
  events.push_back(Ev(MsToTicks(1.0), 3));
  events.push_back(Ev(MsToTicks(90.0), 4));  // separate window
  events.push_back(Ev(t, 1));
  for (const Event& e : events) calendar.Push(e);
  ExpectDrainsSorted(calendar, events);
}

TEST(EventCalendar, FarFutureSpillPromotedInOrder) {
  EventCalendar calendar;
  std::vector<Event> events;
  // Initial horizon is 64 buckets x ~1 ms; everything near 10 s lives in
  // the spill until re-anchoring promotes it, across several geometries.
  std::uint64_t seq = 0;
  for (int i = 0; i < 30; ++i) {
    events.push_back(Ev(MsToTicks(1.0 * i), seq++));
    events.push_back(Ev(SecToTicks(10.0) + MsToTicks(35.0 * i), seq++));
    events.push_back(Ev(SecToTicks(200.0) - MsToTicks(4.0 * i), seq++));
  }
  for (const Event& e : events) calendar.Push(e);
  EXPECT_EQ(calendar.size(), events.size());
  ExpectDrainsSorted(calendar, events);
}

TEST(EventCalendar, InterleavedPushPopKeepsGlobalOrder) {
  // The engine's real usage: pops interleaved with pushes at or after the
  // popped time (completion events scheduled from the current instant).
  EventCalendar calendar;
  Rng rng(123);
  std::uint64_t seq = 0;
  SimTime now = 0;
  std::vector<SimTime> popped;
  for (int i = 0; i < 64; ++i) {
    calendar.Push(Ev(now + UsToTicks(50.0 * static_cast<double>(
                               rng.UniformInt(1, 2000))),
                     seq++));
  }
  while (!calendar.empty()) {
    const Event e = calendar.Pop();
    EXPECT_GE(e.time, now);
    now = e.time;
    popped.push_back(e.time);
    if (seq < 600) {
      // Push just after the current instant and far ahead, both legal:
      // completions are always scheduled at or after the event being
      // processed.
      calendar.Push(Ev(now + UsToTicks(5.0), seq++));
      if (seq % 3 == 0) {
        calendar.Push(Ev(now + SecToTicks(2.0), seq++));
      }
    }
  }
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  EXPECT_EQ(popped.size(), seq);  // every push eventually popped
}

TEST(EventCalendar, RandomizedStreamMatchesSortReference) {
  EventCalendar calendar;
  Rng rng(7);
  std::vector<Event> events;
  for (std::uint64_t seq = 0; seq < 5000; ++seq) {
    // Heavy-tailed spread: mostly near-future, occasional far spikes, and
    // deliberate timestamp collisions (coarse 10 us quantization).
    const std::int64_t coarse = rng.UniformInt(0, 400);
    const SimTime spike =
        rng.UniformInt(0, 19) == 0 ? SecToTicks(5.0) : SimTime{0};
    events.push_back(Ev(spike + UsToTicks(10.0 * coarse), seq));
  }
  for (const Event& e : events) calendar.Push(e);
  ExpectDrainsSorted(calendar, events);
}

TEST(EventCalendar, ClearResetsForReuseAtTimeZero) {
  EventCalendar calendar;
  // First incarnation ends far from zero, adapting the geometry.
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    calendar.Push(Ev(SecToTicks(100.0) + MsToTicks(1.0 * seq), seq));
  }
  while (!calendar.empty()) calendar.Pop();
  calendar.Clear();
  EXPECT_TRUE(calendar.empty());
  // Second incarnation restarts at time zero; the carried-over geometry
  // must not strand its events.
  std::vector<Event> events;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    events.push_back(Ev(MsToTicks(0.5 * seq), seq));
  }
  for (const Event& e : events) calendar.Push(e);
  ExpectDrainsSorted(calendar, events);
}

}  // namespace
}  // namespace pe::sim
