// fleet::Cluster tests: per-server RNG stream independence (pure seed
// derivation, no cross-server reuse, invariance under simulation order)
// and the parallel fleet driver's bit-identity across jobs counts.
#include "fleet/cluster.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "fleet/placement.h"
#include "fleet/router.h"
#include "profile/model_repertoire.h"
#include "sched/fifs.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace pe::fleet {
namespace {

TEST(ClusterSeeds, NoCrossServerOrRouterReuse) {
  // The streams are pure functions of (fleet seed, id): across a wide id
  // range and several fleet seeds, every derived seed must be distinct,
  // and the router's stream must not collide with any server's.
  for (const std::uint64_t fleet_seed : {0ull, 1ull, 0x5EEDull, ~0ull}) {
    std::set<std::uint64_t> seen;
    seen.insert(Cluster::RouterSeed(fleet_seed));
    for (int s = 0; s < 4096; ++s) {
      const auto seed = Cluster::ServerSeed(fleet_seed, s);
      EXPECT_TRUE(seen.insert(seed).second)
          << "stream reuse at fleet seed " << fleet_seed << ", server " << s;
    }
  }
}

TEST(ClusterSeeds, PureFunctionOfInputs) {
  // Calling in any order, any number of times, yields the same values --
  // the property that makes per-server streams independent of the order
  // servers are constructed or simulated.
  const auto a = Cluster::ServerSeed(7, 3);
  const auto b = Cluster::ServerSeed(7, 0);
  EXPECT_EQ(Cluster::ServerSeed(7, 0), b);
  EXPECT_EQ(Cluster::ServerSeed(7, 3), a);
  EXPECT_NE(a, b);
  // And distinct fleet seeds give distinct streams for the same server.
  EXPECT_NE(Cluster::ServerSeed(7, 3), Cluster::ServerSeed(8, 3));
}

workload::QueryTrace MakeTrace(std::size_t n, int num_models,
                               std::uint64_t seed) {
  Rng rng(seed);
  workload::PoissonArrivals arrivals(400.0);
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  workload::MixSpec mix;
  for (int m = 0; m < num_models; ++m) {
    mix.components.push_back({m, 1.0 / num_models, &dist});
  }
  workload::MixTraceSource source(arrivals, mix);
  return workload::Take(source, n, rng);
}

std::unique_ptr<Cluster> MakeCluster(const profile::ModelRepertoire& zoo,
                                     int num_servers, std::uint64_t seed,
                                     double noise_sigma = 0.0) {
  auto placement = UniformPlacement(num_servers, zoo.size());
  for (int s = 0; s < num_servers; ++s) {
    // A small fixed layout; the planner pass is core's job, not fleet's.
    placement.mutable_server(s).partition_gpcs = {7, 3, 2, 1};
  }
  FleetConfig config;
  config.policy = RouterPolicy::kHash;
  config.sla_target = MsToTicks(50.0);
  config.latency_noise_sigma = noise_sigma;
  config.seed = seed;
  return std::make_unique<Cluster>(
      std::move(config), std::move(placement), zoo,
      [](int, const profile::ModelRepertoire&) {
        return std::make_unique<sched::FifsScheduler>();
      });
}

bool SameRecords(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& x = a.records[i];
    const auto& y = b.records[i];
    if (x.id != y.id || x.batch != y.batch || x.model != y.model ||
        x.arrival != y.arrival || x.started != y.started ||
        x.finished != y.finished || x.worker != y.worker ||
        x.model_swap != y.model_swap) {
      return false;
    }
  }
  return true;
}

TEST(Cluster, BitIdenticalAcrossJobsCounts) {
  const auto zoo =
      profile::BuildZooRepertoire({"resnet", "mobilenet"});
  // Noise on: the per-server RNG streams are actually consumed, so a
  // threading bug that shuffled streams would flip records.
  const auto cluster = MakeCluster(zoo, 5, /*seed=*/21, /*noise=*/0.03);
  const auto trace = MakeTrace(4000, zoo.size(), /*seed=*/9);

  const auto jobs1 = cluster->Simulate(trace, 1);
  for (const int jobs : {2, 3, 8}) {
    const auto jobsN = cluster->Simulate(trace, jobs);
    ASSERT_EQ(jobsN.per_server.size(), jobs1.per_server.size());
    for (std::size_t s = 0; s < jobs1.per_server.size(); ++s) {
      EXPECT_TRUE(SameRecords(jobs1.per_server[s], jobsN.per_server[s]))
          << "server " << s << " diverged at jobs=" << jobs;
    }
  }
}

TEST(Cluster, ServerStreamUsedInFleetIsThePureDerivedOne) {
  // Observable form of iteration-order independence: inside a fleet run,
  // server 0 consumes exactly the stream ServerSeed(fleet seed, 0) -- a
  // pure function of the two inputs, not of fleet width, construction
  // order, or which pool thread replays it.  A standalone
  // sim::InferenceServer seeded with that value and fed server 0's
  // sub-trace must reproduce the fleet run's server-0 records bit for
  // bit (noise on, so the stream is actually consumed).
  const auto zoo = profile::BuildZooRepertoire({"resnet", "mobilenet"});
  const auto cluster = MakeCluster(zoo, 4, /*seed=*/33, /*noise=*/0.05);
  const auto trace = MakeTrace(2500, zoo.size(), /*seed=*/4);
  const auto fleet_run = cluster->Simulate(trace, 2);

  auto router = cluster->MakeFleetRouter();
  const auto split = SplitTrace(trace, *router, cluster->placement());
  sim::ServerConfig sc;
  sc.partition_gpcs = cluster->placement().server(0).partition_gpcs;
  sc.sla_target = MsToTicks(50.0);
  sc.latency_noise_sigma = 0.05;
  sc.seed = Cluster::ServerSeed(33, 0);
  sched::FifsScheduler fifs;
  sim::InferenceServer solo(sc, cluster->server_repertoire(0), fifs);
  const auto expected = solo.Run(split.Server(0));
  EXPECT_TRUE(SameRecords(fleet_run.per_server[0], expected));
}

TEST(Cluster, StatsMergeCoversEveryServer) {
  const auto zoo = profile::BuildZooRepertoire({"resnet", "bert"});
  const auto cluster = MakeCluster(zoo, 3, /*seed=*/5);
  const auto trace = MakeTrace(3000, zoo.size(), /*seed=*/2);
  const auto result = cluster->Simulate(trace, 2);
  const auto stats = result.Stats(MsToTicks(50.0));

  EXPECT_EQ(stats.num_servers, 3);
  EXPECT_EQ(stats.routed_queries, trace.size());
  ASSERT_EQ(stats.per_server.size(), 3u);
  ASSERT_EQ(stats.routed_per_server.size(), 3u);
  std::uint64_t routed = 0;
  for (const auto n : stats.routed_per_server) routed += n;
  EXPECT_EQ(routed, trace.size());
  // The aggregate is computed over the union of all records: its
  // completed count matches the per-server sum (same warmup fraction
  // applies, but per-server warmup windows differ from the fleet-wide
  // one, so compare against the raw record union instead).
  std::size_t raw_records = 0;
  for (const auto& sr : result.per_server) raw_records += sr.records.size();
  EXPECT_GT(stats.aggregate.completed, 0u);
  EXPECT_LE(stats.aggregate.completed, raw_records);
}

TEST(Cluster, RejectsUnplannedLayouts) {
  const auto zoo = profile::BuildZooRepertoire({"resnet"});
  auto placement = UniformPlacement(2, 1);
  // partition_gpcs left empty: the cluster must refuse it.
  FleetConfig config;
  EXPECT_THROW(Cluster(config, std::move(placement), zoo,
                       [](int, const profile::ModelRepertoire&) {
                         return std::make_unique<sched::FifsScheduler>();
                       }),
               std::invalid_argument);
}

}  // namespace
}  // namespace pe::fleet
