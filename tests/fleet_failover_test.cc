// Fault-tolerant fleet driver acceptance tests:
//  * an EMPTY fault plan is the identity -- record-by-record bit-identical
//    to the fault-free Cluster::Simulate path;
//  * crashing the sole replica of a model sheds (never silently loses)
//    the affected queries, while a replicated crash reroutes them and
//    completes everything;
//  * fault runs are bit-identical at --jobs 1, 2 and hardware
//    concurrency, and across repeated runs with the same seed;
//  * the `--faults` grammar (ParseFaultRef / ResolveFaultPlan) resolves
//    deterministically and rejects unknown presets and keys.
#include "fleet/failover.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet_runner.h"
#include "fleet/fault.h"
#include "workload/trace.h"

namespace pe::fleet {
namespace {

core::FleetTestbedConfig ShardedFleet(int servers, int replicas,
                                      std::uint64_t seed = 0x5EED) {
  core::FleetTestbedConfig fc;
  fc.mix.models.push_back({"resnet", 0.6, 6.0, 0.9});
  fc.mix.models.push_back({"mobilenet", 0.4, 4.0, 0.8});
  fc.mix.swap_cost_us = 200.0;
  fc.num_servers = servers;
  fc.placement = PlacementKind::kSharded;
  fc.replicas = replicas;
  fc.seed = seed;
  return fc;
}

bool SameRecord(const sim::QueryRecord& x, const sim::QueryRecord& y) {
  return x.id == y.id && x.batch == y.batch && x.model == y.model &&
         x.arrival == y.arrival && x.dispatched == y.dispatched &&
         x.started == y.started && x.finished == y.finished &&
         x.worker == y.worker && x.worker_gpcs == y.worker_gpcs &&
         x.model_swap == y.model_swap && x.failed == y.failed &&
         x.shed == y.shed && x.retries == y.retries;
}

void ExpectSameResult(const FleetResult& a, const FleetResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.per_server.size(), b.per_server.size()) << label;
  ASSERT_EQ(a.global_ids, b.global_ids) << label;
  ASSERT_EQ(a.id_offsets, b.id_offsets) << label;
  for (std::size_t s = 0; s < a.per_server.size(); ++s) {
    const auto& ra = a.per_server[s].records;
    const auto& rb = b.per_server[s].records;
    ASSERT_EQ(ra.size(), rb.size()) << label << " server " << s;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_TRUE(SameRecord(ra[i], rb[i]))
          << label << " server " << s << " record " << i;
    }
  }
  EXPECT_EQ(a.fault.completed, b.fault.completed) << label;
  EXPECT_EQ(a.fault.failed, b.fault.failed) << label;
  EXPECT_EQ(a.fault.shed, b.fault.shed) << label;
  EXPECT_EQ(a.fault.retried, b.fault.retried) << label;
  EXPECT_EQ(a.fault.rerouted, b.fault.rerouted) << label;
  EXPECT_EQ(a.fault.repartitions, b.fault.repartitions) << label;
  EXPECT_EQ(a.fault.makespan, b.fault.makespan) << label;
}

TEST(FaultRef, ParsesNameAndOverrides) {
  const auto bare = ParseFaultRef("serverloss");
  EXPECT_EQ(bare.name, "serverloss");
  EXPECT_TRUE(bare.overrides.empty());

  const auto full = ParseFaultRef("cascade:count=3,down-ms=500");
  EXPECT_EQ(full.name, "cascade");
  ASSERT_EQ(full.overrides.size(), 2u);
  EXPECT_EQ(full.overrides[0].first, "count");
  EXPECT_EQ(full.overrides[0].second, "3");
  EXPECT_EQ(full.overrides[1].first, "down-ms");
  EXPECT_EQ(full.overrides[1].second, "500");

  EXPECT_THROW(ParseFaultRef(""), std::invalid_argument);
  EXPECT_THROW(ParseFaultRef("flaky:count"), std::invalid_argument);
}

TEST(FaultPlanResolve, PresetsAreDeterministicAndValidated) {
  const auto placement = ShardedPlacement(6, 2, 3);
  const SimTime span = MsToTicks(10'000.0);

  EXPECT_TRUE(ResolveFaultPlan({"none", {}}, placement, span, 1).empty());
  EXPECT_THROW(ResolveFaultPlan({"meteor", {}}, placement, span, 1),
               std::invalid_argument);
  EXPECT_THROW(
      ResolveFaultPlan({"serverloss", {{"bogus", "1"}}}, placement, span, 1),
      std::invalid_argument);

  // Same (spec, seed) -> same schedule; schedules are sorted by time.
  for (const auto& name : FaultPresetNames()) {
    const auto a = ResolveFaultPlan({name, {}}, placement, span, 42);
    const auto b = ResolveFaultPlan({name, {}}, placement, span, 42);
    ASSERT_EQ(a.events.size(), b.events.size()) << name;
    EXPECT_FALSE(a.empty()) << name;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      EXPECT_EQ(a.events[i].time, b.events[i].time) << name;
      EXPECT_EQ(a.events[i].kind, b.events[i].kind) << name;
      EXPECT_EQ(a.events[i].server, b.events[i].server) << name;
      EXPECT_EQ(a.events[i].worker, b.events[i].worker) << name;
      EXPECT_EQ(a.events[i].factor, b.events[i].factor) << name;
      if (i > 0) {
        EXPECT_GE(a.events[i].time, a.events[i - 1].time) << name;
      }
    }
  }

  // Policy-knob overrides land on the plan, and count clamps to the fleet.
  const auto tuned = ResolveFaultPlan(
      {"serverloss",
       {{"count", "99"}, {"retries", "5"}, {"deadline-ms", "800"},
        {"repartition", "0"}}},
      placement, span, 7);
  EXPECT_EQ(tuned.max_retries, 5);
  EXPECT_EQ(tuned.deadline, MsToTicks(800.0));
  EXPECT_FALSE(tuned.repartition);
  EXPECT_EQ(tuned.events.size(), 6u);  // one crash per server, clamped
}

TEST(FleetFailover, EmptyPlanIsBitIdenticalToTheBatchPath) {
  const core::FleetTestbed tb(ShardedFleet(4, 2));
  const auto trace = tb.GenerateFleetTrace(600.0, 4000, /*seed=*/7);
  const auto base = tb.Run(trace, /*jobs=*/2);
  const auto faulted = tb.RunWithFaults(trace, FaultPlan{}, /*jobs=*/2);
  EXPECT_FALSE(faulted.fault.faulted);
  ExpectSameResult(base, faulted, "empty plan");
}

TEST(FleetFailover, SoleReplicaCrashShedsInsteadOfLosingQueries) {
  // 2 servers, 2 models, replicas=1: each server is the sole host of one
  // model (no empty server for the backfill rule to pad), so crashing
  // server 0 leaves its model with NO healthy replica -- the affected
  // queries must shed or fail, loudly accounted, never silently dropped.
  const core::FleetTestbed tb(ShardedFleet(2, 1));
  const auto trace = tb.GenerateFleetTrace(300.0, 3000, /*seed=*/11);
  FaultPlan plan;
  plan.name = "manual-crash";
  plan.events.push_back({trace.queries().back().arrival / 4,
                         FaultKind::kServerCrash, /*server=*/0});
  const auto result = tb.RunWithFaults(trace, plan, /*jobs=*/2);
  const auto& f = result.fault;
  EXPECT_TRUE(f.faulted);
  EXPECT_EQ(f.injected, trace.size());
  EXPECT_EQ(f.completed + f.failed + f.shed, f.injected);
  EXPECT_GT(f.failed + f.shed, 0u);
  EXPECT_LT(f.completed, f.injected);
  // Permanent crash at span/4: server 0's availability is about 25%.
  ASSERT_EQ(f.availability.size(), 2u);
  EXPECT_LT(f.availability[0], 0.5);
  EXPECT_EQ(f.availability[1], 1.0);
}

TEST(FleetFailover, ReplicatedCrashReroutesEverythingWithoutLoss) {
  // replicas=3: two healthy replicas survive any single crash, so every
  // query must complete -- casualties retry, down-window arrivals divert.
  const core::FleetTestbed tb(ShardedFleet(6, 3));
  const auto trace = tb.GenerateFleetTrace(900.0, 6000, /*seed=*/13);
  FaultPlan plan;
  plan.name = "manual-crash";
  plan.events.push_back({trace.queries().back().arrival / 4,
                         FaultKind::kServerCrash, /*server=*/0});
  const auto result = tb.RunWithFaults(trace, plan, /*jobs=*/2);
  const auto& f = result.fault;
  EXPECT_EQ(f.completed, f.injected);
  EXPECT_EQ(f.failed, 0u);
  EXPECT_EQ(f.shed, 0u);
  EXPECT_GT(f.rerouted, 0u);
  EXPECT_LT(f.availability[0], 1.0);
  // The crashed engine must end with no un-terminal record.
  for (const auto& sr : result.per_server) {
    for (const auto& r : sr.records) {
      EXPECT_TRUE(r.finished > 0 || r.failed || r.shed);
    }
  }
}

TEST(FleetFailover, SlowdownWindowShowsUpAsIncidentLatency) {
  const core::FleetTestbed tb(ShardedFleet(4, 2));
  const auto trace = tb.GenerateFleetTrace(600.0, 4000, /*seed=*/17);
  const SimTime span = trace.queries().back().arrival;
  FaultPlan plan;
  plan.name = "manual-brownout";
  plan.events.push_back(
      {span / 4, FaultKind::kSlowdownBegin, /*server=*/1, -1, 4.0});
  plan.events.push_back({(span * 3) / 4, FaultKind::kSlowdownEnd, 1});
  const auto result = tb.RunWithFaults(trace, plan, /*jobs=*/2);
  const auto& f = result.fault;
  // A slowdown degrades, it does not lose: everything still completes and
  // the incident-window tail is measured.
  EXPECT_EQ(f.completed, f.injected);
  EXPECT_GT(f.incident_completions, 0u);
  EXPECT_GT(f.p99_incident_ms, 0.0);
  // No crash anywhere: availability stays 1.0 (slowdowns are not downtime).
  for (const double a : f.availability) EXPECT_EQ(a, 1.0);
}

TEST(FleetFailover, BitIdenticalAcrossJobsAndRepeatedRuns) {
  const int hw =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  const core::FleetTestbed tb(ShardedFleet(6, 3));
  const auto trace = tb.GenerateFleetTrace(900.0, 5000, /*seed=*/19);
  const auto plan = tb.ResolveFaults(ParseFaultRef("cascade:down-ms=400"),
                                     trace);
  const auto base = tb.RunWithFaults(trace, plan, /*jobs=*/1);
  for (const int jobs : {2, hw}) {
    ExpectSameResult(base, tb.RunWithFaults(trace, plan, jobs),
                     "jobs=" + std::to_string(jobs));
  }
  // Re-resolving the same spec yields the same plan, hence the same run.
  const auto replan = tb.ResolveFaults(ParseFaultRef("cascade:down-ms=400"),
                                       trace);
  ExpectSameResult(base, tb.RunWithFaults(trace, replan, /*jobs=*/2),
                   "re-resolved plan");
}

TEST(FleetFailover, HealthViewWindowsMatchTheSchedule) {
  FaultPlan plan;
  plan.events.push_back({100, FaultKind::kServerCrash, 0});
  plan.events.push_back({200, FaultKind::kServerRecover, 0});
  plan.events.push_back({400, FaultKind::kSlowdownBegin, 1, -1, 2.0});
  plan.events.push_back({500, FaultKind::kSlowdownEnd, 1});
  const HealthView hv(plan, /*num_servers=*/2);
  EXPECT_TRUE(hv.IsUp(0, 99));
  EXPECT_FALSE(hv.IsUp(0, 100));   // down window is [crash, recover)
  EXPECT_FALSE(hv.IsUp(0, 199));
  EXPECT_TRUE(hv.IsUp(0, 200));
  EXPECT_TRUE(hv.IsUp(1, 450));    // slowdown is degraded, not down
  EXPECT_EQ(hv.DownTicks(0, /*horizon=*/1000), 100);
  EXPECT_EQ(hv.DownTicks(1, /*horizon=*/1000), 0);
  EXPECT_TRUE(hv.InIncident(150));
  EXPECT_TRUE(hv.InIncident(450));
  EXPECT_FALSE(hv.InIncident(300));
  EXPECT_FALSE(hv.InIncident(990));
}

}  // namespace
}  // namespace pe::fleet
