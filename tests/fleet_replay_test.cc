// Replay fidelity for versioned trace capture (satellite of the scenario
// API): a trace captured from a fleet run and round-tripped through the
// paris-elsa-trace-v1 format must drive both the fast and the reference
// engines to record-by-record identical results, and a per-server
// sub-trace captured with symbolic model names must replay standalone.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/fleet_runner.h"
#include "workload/scenario.h"
#include "workload/trace_io.h"

namespace pe::core {
namespace {

FleetTestbedConfig TestFleet(int servers, bool reference) {
  FleetTestbedConfig fc;
  fc.mix.models.push_back({"resnet", 0.6, 6.0, 0.9});
  fc.mix.models.push_back({"mobilenet", 0.4, 4.0, 0.8});
  fc.mix.swap_cost_us = 200.0;
  fc.mix.latency_noise_sigma = 0.2;  // exercise the engines' RNG streams
  fc.num_servers = servers;
  fc.reference_engine = reference;
  return fc;
}

// Scenario-shaped fleet workload: the flashcrowd preset over this fleet's
// mix, captured the way the CLI's --capture-trace path does it.
workload::TraceDocument CaptureFleetTrace(const FleetTestbed& tb,
                                          std::size_t n, std::uint64_t seed) {
  workload::ScenarioSpec spec = tb.mix().ScenarioFor(/*rate_qps=*/800.0);
  workload::ApplyScenario(spec, "flashcrowd:at=1,mult=6,decay=2");
  workload::TraceDocument doc;
  doc.scenario = "flashcrowd:at=1,mult=6,decay=2";
  doc.models = tb.mix().ModelNames();
  doc.trace = workload::GenerateScenarioTrace(spec, n, seed);
  return doc;
}

void ExpectIdenticalRecords(const std::vector<sim::QueryRecord>& a,
                            const std::vector<sim::QueryRecord>& b,
                            const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " record " << i;
    EXPECT_EQ(a[i].batch, b[i].batch) << label << " record " << i;
    EXPECT_EQ(a[i].model, b[i].model) << label << " record " << i;
    EXPECT_EQ(a[i].arrival, b[i].arrival) << label << " record " << i;
    EXPECT_EQ(a[i].dispatched, b[i].dispatched) << label << " record " << i;
    EXPECT_EQ(a[i].started, b[i].started) << label << " record " << i;
    EXPECT_EQ(a[i].finished, b[i].finished) << label << " record " << i;
    EXPECT_EQ(a[i].worker, b[i].worker) << label << " record " << i;
    EXPECT_EQ(a[i].model_swap, b[i].model_swap) << label << " record " << i;
    if (::testing::Test::HasFailure()) return;
  }
}

void ExpectIdenticalStats(const sim::ServerStats& a, const sim::ServerStats& b,
                          const std::string& label) {
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms) << label;
  EXPECT_EQ(a.p50_latency_ms, b.p50_latency_ms) << label;
  EXPECT_EQ(a.p95_latency_ms, b.p95_latency_ms) << label;
  EXPECT_EQ(a.p99_latency_ms, b.p99_latency_ms) << label;
  EXPECT_EQ(a.max_latency_ms, b.max_latency_ms) << label;
  EXPECT_EQ(a.sla_violation_rate, b.sla_violation_rate) << label;
  EXPECT_EQ(a.achieved_qps, b.achieved_qps) << label;
  EXPECT_EQ(a.reconfig_stalled, b.reconfig_stalled) << label;
  EXPECT_EQ(a.model_swaps, b.model_swaps) << label;
}

TEST(FleetReplay, CapturedTraceRoundTripsBitFaithfully) {
  const FleetTestbed tb(TestFleet(4, /*reference=*/false));
  const auto doc = CaptureFleetTrace(tb, 3000, /*seed=*/7);

  std::stringstream ss;
  workload::SaveTrace(ss, doc);
  const auto loaded = workload::LoadTrace(ss);

  EXPECT_EQ(loaded.scenario, doc.scenario);
  EXPECT_EQ(loaded.models, doc.models);
  ASSERT_EQ(loaded.trace.size(), doc.trace.size());
  for (std::size_t i = 0; i < doc.trace.size(); ++i) {
    const auto& a = doc.trace.queries()[i];
    const auto& b = loaded.trace.queries()[i];
    ASSERT_EQ(a.arrival, b.arrival) << "query " << i;
    ASSERT_EQ(a.batch, b.batch) << "query " << i;
    ASSERT_EQ(a.model_id, b.model_id) << "query " << i;
  }
}

// The headline fidelity contract: capture from a 4-server fleet run,
// replay the loaded trace through the fast AND the reference engines, and
// the replay is indistinguishable from the original run -- record by
// record, server by server, at any jobs count.
TEST(FleetReplay, ReplayDrivesBothEnginesToIdenticalResults) {
  const FleetTestbed fast_tb(TestFleet(4, /*reference=*/false));
  const FleetTestbed ref_tb(TestFleet(4, /*reference=*/true));
  const auto doc = CaptureFleetTrace(fast_tb, 3000, /*seed=*/11);

  // Original run on the generated trace.
  const auto original = fast_tb.Run(doc.trace, /*jobs=*/1);

  // Round-trip the capture, then replay on both engines.
  std::stringstream ss;
  workload::SaveTrace(ss, doc);
  const auto loaded = workload::LoadTrace(ss);
  const auto fast_replay = fast_tb.Run(loaded.trace, /*jobs=*/4);
  const auto ref_replay = ref_tb.Run(loaded.trace, /*jobs=*/2);

  ASSERT_EQ(fast_replay.per_server.size(), original.per_server.size());
  ASSERT_EQ(ref_replay.per_server.size(), original.per_server.size());
  for (std::size_t s = 0; s < original.per_server.size(); ++s) {
    const std::string label = "server " + std::to_string(s);
    ExpectIdenticalRecords(original.per_server[s].records,
                           fast_replay.per_server[s].records,
                           label + " (fast replay)");
    ExpectIdenticalRecords(original.per_server[s].records,
                           ref_replay.per_server[s].records,
                           label + " (reference replay)");
    if (::testing::Test::HasFailure()) return;
  }

  // And the merged fleet statistics agree exactly.
  const auto sla = fast_tb.sla_target();
  const auto original_stats = original.Stats(sla);
  const auto fast_stats = fast_replay.Stats(sla);
  const auto ref_stats = ref_replay.Stats(sla);
  EXPECT_EQ(fast_stats.routed_queries, original_stats.routed_queries);
  EXPECT_EQ(ref_stats.routed_queries, original_stats.routed_queries);
  ExpectIdenticalStats(original_stats.aggregate, fast_stats.aggregate,
                       "aggregate (fast)");
  ExpectIdenticalStats(original_stats.aggregate, ref_stats.aggregate,
                       "aggregate (reference)");
  for (std::size_t s = 0; s < original_stats.per_server.size(); ++s) {
    ExpectIdenticalStats(original_stats.per_server[s],
                         fast_stats.per_server[s],
                         "server " + std::to_string(s) + " stats (fast)");
    ExpectIdenticalStats(
        original_stats.per_server[s], ref_stats.per_server[s],
        "server " + std::to_string(s) + " stats (reference)");
  }
}

// A per-server sub-trace (local dense ids, server-local model ids) captured
// with the *server's* symbolic model names replays standalone: the loaded
// models[] is the complete repertoire the replay needs, independent of the
// fleet-global numbering.
TEST(FleetReplay, ServerSubTraceReplaysStandalone) {
  FleetTestbedConfig fc = TestFleet(4, /*reference=*/false);
  fc.placement = fleet::PlacementKind::kSharded;
  fc.replicas = 2;
  const FleetTestbed tb(fc);
  const auto doc = CaptureFleetTrace(tb, 2000, /*seed=*/13);
  const auto fleet_run = tb.Run(doc.trace, /*jobs=*/2);

  const auto fleet_names = tb.mix().ModelNames();
  for (int s = 0; s < tb.num_servers(); ++s) {
    const auto& result = fleet_run.per_server[s];
    if (result.records.empty()) continue;

    // Reconstruct this server's sub-trace exactly as its engine saw it:
    // local dense ids, server-local model ids, fleet arrival times.
    std::vector<workload::Query> qs;
    qs.reserve(result.records.size());
    for (const auto& rec : result.records) {
      workload::Query q;
      q.id = rec.id;
      q.arrival = rec.arrival;
      q.batch = rec.batch;
      q.model_id = rec.model;
      qs.push_back(q);
    }
    workload::TraceDocument sub;
    sub.scenario = doc.scenario + " [server " + std::to_string(s) + "]";
    for (const int global_model : fleet_run.global_models[s]) {
      sub.models.push_back(fleet_names[static_cast<std::size_t>(global_model)]);
    }
    sub.trace = workload::QueryTrace(std::move(qs));

    std::stringstream ss;
    workload::SaveTrace(ss, sub);
    const auto loaded = workload::LoadTrace(ss);

    // The loaded sub-trace is self-describing: every model id resolves
    // against its own models[], and the payload is bit-identical.
    ASSERT_EQ(loaded.trace.size(), result.records.size()) << "server " << s;
    EXPECT_EQ(loaded.models.size(), fleet_run.global_models[s].size());
    for (std::size_t i = 0; i < loaded.trace.size(); ++i) {
      const auto& q = loaded.trace.queries()[i];
      EXPECT_EQ(q.id, i) << "server " << s;
      EXPECT_LT(static_cast<std::size_t>(q.model_id), loaded.models.size())
          << "server " << s;
      EXPECT_EQ(q.arrival, result.records[i].arrival) << "server " << s;
      EXPECT_EQ(q.batch, result.records[i].batch) << "server " << s;
    }
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace pe::core
