// Router-tier unit tests: every policy must route a trace
// deterministically, respect the placement's replica sets, and reproduce
// its decision sequence after Reset() -- the properties the fleet driver's
// bit-identity claim rests on.
#include "fleet/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fleet/placement.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"
#include "workload/scenario.h"
#include "workload/trace.h"

namespace pe::fleet {
namespace {

workload::QueryTrace MakeTrace(std::size_t n, int num_models,
                               std::uint64_t seed) {
  Rng rng(seed);
  workload::PoissonArrivals arrivals(500.0);
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  workload::MixSpec mix;
  for (int m = 0; m < num_models; ++m) {
    mix.components.push_back({m, 1.0 / num_models, &dist});
  }
  workload::MixTraceSource source(arrivals, mix);
  return workload::Take(source, n, rng);
}

// The per-query reference loop (what Router::RouteAll's base
// implementation does); the batch overrides must match it exactly.
std::vector<int> RouteSerially(Router& router,
                               const workload::QueryTrace& trace) {
  std::vector<int> out;
  out.reserve(trace.size());
  for (const auto& q : trace.queries()) out.push_back(router.Route(q));
  return out;
}

TEST(RouterPolicy, ParseAndToStringRoundTrip) {
  for (const auto policy : {RouterPolicy::kHash, RouterPolicy::kLeastLoaded,
                            RouterPolicy::kPowerOfTwo}) {
    const auto parsed = ParseRouterPolicy(ToString(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseRouterPolicy("roundrobin").has_value());
  EXPECT_FALSE(ParsePlacementKind("striped").has_value());
}

TEST(Router, EveryPolicyRespectsReplicaSets) {
  // 6 servers, 4 models, 2 replicas each: routing a model anywhere but
  // its replica set would hand a server a query it cannot serve.
  const auto placement = ShardedPlacement(6, 4, 2);
  const auto trace = MakeTrace(2000, 4, /*seed=*/11);
  for (const auto policy : {RouterPolicy::kHash, RouterPolicy::kLeastLoaded,
                            RouterPolicy::kPowerOfTwo}) {
    auto router = MakeRouter(policy, placement, nullptr, /*seed=*/99);
    for (const auto& q : trace.queries()) {
      const int server = router->Route(q);
      const auto& reps = placement.Replicas(q.model_id);
      EXPECT_NE(std::find(reps.begin(), reps.end(), server), reps.end())
          << ToString(policy) << " routed model " << q.model_id
          << " to non-replica server " << server;
    }
  }
}

TEST(Router, DeterministicAcrossFreshInstances) {
  const auto placement = UniformPlacement(8, 3);
  const auto trace = MakeTrace(3000, 3, /*seed=*/5);
  for (const auto policy : {RouterPolicy::kHash, RouterPolicy::kLeastLoaded,
                            RouterPolicy::kPowerOfTwo}) {
    auto a = MakeRouter(policy, placement, nullptr, /*seed=*/42);
    auto b = MakeRouter(policy, placement, nullptr, /*seed=*/42);
    EXPECT_EQ(RouteSerially(*a, trace), RouteSerially(*b, trace))
        << ToString(policy);
  }
}

TEST(Router, RouteAllMatchesPerQueryRoute) {
  // The devirtualized batch loops must reproduce the per-query reference
  // decision sequence exactly -- same replica picks, same backlog
  // arithmetic, same RNG stream consumption -- with and without a
  // repertoire-backed backlog model (the memoized-cost path).
  const auto placement = ShardedPlacement(7, 4, 3);
  const auto trace = MakeTrace(4000, 4, /*seed=*/23);
  for (const auto policy : {RouterPolicy::kHash, RouterPolicy::kLeastLoaded,
                            RouterPolicy::kPowerOfTwo}) {
    auto batch = MakeRouter(policy, placement, nullptr, /*seed=*/31);
    auto serial = MakeRouter(policy, placement, nullptr, /*seed=*/31);
    EXPECT_EQ(batch->RouteAll(trace), RouteSerially(*serial, trace))
        << ToString(policy);
    // After Reset() the batch path replays the same sequence.
    batch->Reset();
    serial->Reset();
    EXPECT_EQ(batch->RouteAll(trace), RouteSerially(*serial, trace))
        << ToString(policy) << " after Reset";
  }
}

TEST(Router, ResetReproducesTheDecisionSequence) {
  // po2c is the only stateful-RNG policy; least-loaded carries a virtual
  // backlog clock.  Both must replay identically after Reset().
  const auto placement = UniformPlacement(5, 2);
  const auto trace = MakeTrace(1500, 2, /*seed=*/3);
  for (const auto policy : {RouterPolicy::kHash, RouterPolicy::kLeastLoaded,
                            RouterPolicy::kPowerOfTwo}) {
    auto router = MakeRouter(policy, placement, nullptr, /*seed=*/7);
    const auto first = RouteSerially(*router, trace);
    router->Reset();
    EXPECT_EQ(RouteSerially(*router, trace), first) << ToString(policy);
  }
}

TEST(Router, PoliciesActuallyDiffer) {
  // Sanity that the three policies are not the same function in disguise:
  // on a uniform placement with many servers they should not produce the
  // identical assignment vector.
  const auto placement = UniformPlacement(8, 2);
  const auto trace = MakeTrace(2000, 2, /*seed=*/13);
  auto hash = MakeRouter(RouterPolicy::kHash, placement, nullptr, 1);
  auto least = MakeRouter(RouterPolicy::kLeastLoaded, placement, nullptr, 1);
  auto po2c = MakeRouter(RouterPolicy::kPowerOfTwo, placement, nullptr, 1);
  const auto h = RouteSerially(*hash, trace);
  const auto l = RouteSerially(*least, trace);
  const auto p = RouteSerially(*po2c, trace);
  EXPECT_NE(h, l);
  EXPECT_NE(h, p);
  EXPECT_NE(l, p);
}

TEST(SplitTrace, DenseLocalIdsAndModelRemap) {
  const auto placement = ShardedPlacement(4, 3, 2);
  const auto trace = MakeTrace(2500, 3, /*seed=*/17);
  auto router = MakeRouter(RouterPolicy::kHash, placement, nullptr, 1);
  const auto split = SplitTrace(trace, *router, placement);

  ASSERT_EQ(split.num_servers(), 4);
  ASSERT_EQ(split.arena.size(), trace.size());
  ASSERT_EQ(split.global_ids.size(), trace.size());
  std::size_t total = 0;
  std::vector<bool> seen(trace.size(), false);
  for (int s = 0; s < 4; ++s) {
    const auto& sp = placement.server(s);
    const auto queries = split.Server(s);
    const auto gids = split.GlobalIds(s);
    ASSERT_EQ(gids.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      // Engine contract: local ids are dense injection indices.
      EXPECT_EQ(queries[i].id, i);
      // Local model ids index the server's sorted hosted list.
      ASSERT_GE(queries[i].model_id, 0);
      ASSERT_LT(queries[i].model_id,
                static_cast<int>(sp.model_ids.size()));
      const auto gid = gids[i];
      ASSERT_LT(gid, trace.size());
      EXPECT_FALSE(seen[gid]) << "query " << gid << " routed twice";
      seen[gid] = true;
      // The remap preserves the query's identity: same arrival/batch, and
      // the local model id maps back to the fleet-global one.
      const auto& original = trace.queries()[gid];
      EXPECT_EQ(queries[i].arrival, original.arrival);
      EXPECT_EQ(queries[i].batch, original.batch);
      EXPECT_EQ(sp.model_ids[static_cast<std::size_t>(queries[i].model_id)],
                original.model_id);
    }
    total += queries.size();
  }
  EXPECT_EQ(total, trace.size());
}

TEST(SplitTrace, FastSplitMatchesReferenceRecordForRecord) {
  // The two-pass arena split and the retained per-query reference path
  // must agree on every byte of every sub-trace, for every policy.
  const auto placement = ShardedPlacement(6, 4, 2);
  const auto trace = MakeTrace(3000, 4, /*seed=*/29);
  for (const auto policy : {RouterPolicy::kHash, RouterPolicy::kLeastLoaded,
                            RouterPolicy::kPowerOfTwo}) {
    auto fast_router = MakeRouter(policy, placement, nullptr, /*seed=*/71);
    auto ref_router = MakeRouter(policy, placement, nullptr, /*seed=*/71);
    const auto fast = SplitTrace(trace, *fast_router, placement);
    const auto ref = SplitTraceReference(trace, *ref_router, placement);
    ASSERT_EQ(fast.offsets, ref.offsets) << ToString(policy);
    ASSERT_EQ(fast.global_ids, ref.global_ids) << ToString(policy);
    ASSERT_EQ(fast.arena.size(), ref.arena.size()) << ToString(policy);
    for (std::size_t i = 0; i < fast.arena.size(); ++i) {
      EXPECT_EQ(fast.arena[i].id, ref.arena[i].id) << ToString(policy);
      EXPECT_EQ(fast.arena[i].arrival, ref.arena[i].arrival)
          << ToString(policy);
      EXPECT_EQ(fast.arena[i].batch, ref.arena[i].batch) << ToString(policy);
      EXPECT_EQ(fast.arena[i].model_id, ref.arena[i].model_id)
          << ToString(policy);
    }
  }
}

TEST(Router, UnplacedModelThrowsLogicErrorNamingTheModel) {
  // Regression: routing a model no server hosts used to be UB (indexing
  // an out-of-range / empty replica set); every policy must now throw a
  // logic_error that names the offending model, on both the per-query
  // and the batch path.
  const auto placement = ShardedPlacement(3, 2, 2);
  workload::Query stray;
  stray.id = 0;
  stray.model_id = 9;  // only models 0..1 are placed
  workload::QueryTrace stray_trace(std::vector<workload::Query>{stray});
  for (const auto policy : {RouterPolicy::kHash, RouterPolicy::kLeastLoaded,
                            RouterPolicy::kPowerOfTwo}) {
    auto router = MakeRouter(policy, placement, nullptr, /*seed=*/5);
    try {
      router->Route(stray);
      FAIL() << ToString(policy) << ": Route accepted an unplaced model";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("model 9"), std::string::npos)
          << ToString(policy) << " message: " << e.what();
    }
    router->Reset();
    EXPECT_THROW(router->RouteAll(stray_trace), std::logic_error)
        << ToString(policy);
    router->Reset();
    EXPECT_THROW(SplitTrace(stray_trace, *router, placement),
                 std::logic_error)
        << ToString(policy);
  }
}

TEST(Router, OnPlacementChangeRebuildsTheCostTables) {
  // The load-aware policies snapshot each server's layout geometry
  // (largest partition, lane count) and derived cost tables at
  // construction.  A failover repartition edits the placement underneath
  // the router; OnPlacementChange must rebuild those tables -- after the
  // call the router routes exactly like one freshly built over the edited
  // placement, while a router that skipped the call keeps serving the
  // stale costs (the regression this test pins).
  auto placement = UniformPlacement(4, 2);
  for (int s = 0; s < 4; ++s) {
    placement.mutable_server(s).partition_gpcs = {7};  // one lane each
  }
  const auto trace = MakeTrace(2000, 2, /*seed=*/41);

  auto stale = MakeRouter(RouterPolicy::kLeastLoaded, placement, nullptr, 1);
  auto refreshed =
      MakeRouter(RouterPolicy::kLeastLoaded, placement, nullptr, 1);
  // Repartition server 0 into seven 1-GPC lanes: its backlog charges drop
  // 7x, so post-edit routing must favor it.
  placement.mutable_server(0).partition_gpcs = {1, 1, 1, 1, 1, 1, 1};
  refreshed->OnPlacementChange();
  auto fresh = MakeRouter(RouterPolicy::kLeastLoaded, placement, nullptr, 1);

  const auto want = RouteSerially(*fresh, trace);
  EXPECT_EQ(RouteSerially(*refreshed, trace), want);
  EXPECT_NE(RouteSerially(*stale, trace), want);
}

TEST(SplitByAssignment, DropsPreShedQueriesAndKeepsDenseIds) {
  // The failover driver routes around planned downtime and marks
  // no-healthy-replica queries with -1; the split must skip exactly those
  // while renumbering the survivors densely.
  const auto placement = UniformPlacement(3, 2);
  const auto trace = MakeTrace(900, 2, /*seed=*/53);
  auto router = MakeRouter(RouterPolicy::kHash, placement, nullptr, 1);
  auto assignment = router->RouteAll(trace);
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < assignment.size(); i += 7) {
    assignment[i] = -1;
    ++dropped;
  }
  const auto split = SplitByAssignment(trace, assignment, placement);
  ASSERT_EQ(split.arena.size(), trace.size() - dropped);
  std::size_t total = 0;
  for (int s = 0; s < 3; ++s) {
    const auto queries = split.Server(s);
    const auto gids = split.GlobalIds(s);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(queries[i].id, i);  // dense after the drops
      EXPECT_NE(gids[i] % 7, 0u);   // no dropped query survived
    }
    total += queries.size();
  }
  EXPECT_EQ(total, trace.size() - dropped);

  // Size mismatch between trace and assignment is a caller bug.
  assignment.pop_back();
  EXPECT_THROW(SplitByAssignment(trace, assignment, placement),
               std::logic_error);
}

TEST(Placement, ValidatesAndShards) {
  EXPECT_THROW(UniformPlacement(0, 2), std::invalid_argument);
  EXPECT_THROW(UniformPlacement(2, 0), std::invalid_argument);
  const auto sharded = ShardedPlacement(5, 3, 2);
  // Every model has at least its 2 round-robin replicas (the backfill
  // rule may add more on otherwise-empty servers), all distinct.
  for (int m = 0; m < 3; ++m) {
    const auto& reps = sharded.Replicas(m);
    ASSERT_GE(reps.size(), 2u);
    std::set<int> distinct(reps.begin(), reps.end());
    EXPECT_EQ(distinct.size(), reps.size());
  }
  // Every server hosts at least one model (backfill rule).
  for (int s = 0; s < 5; ++s) {
    EXPECT_FALSE(sharded.server(s).model_ids.empty());
  }
}

}  // namespace
}  // namespace pe::fleet
