// Fleet aggregation fidelity: the zero-copy parallel FleetResult::Stats
// must equal the retained merged-vector reference (StatsReference) field
// for field -- exact percentiles from the k-way latency merge, per-model
// slices, worker utilizations, and every order-sensitive mean -- across
// router policies, seeds, and jobs counts.  Plus the unplaced-model
// routing-error regression at the fleet level.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fleet_runner.h"
#include "fleet/cluster.h"
#include "fleet/router.h"
#include "sim/metrics.h"
#include "workload/trace.h"

namespace pe::core {
namespace {

FleetTestbedConfig MixedFleet(int servers, fleet::RouterPolicy policy,
                              std::uint64_t seed) {
  FleetTestbedConfig fc;
  fc.mix.models.push_back({"resnet", 0.4, 6.0, 0.9});
  fc.mix.models.push_back({"mobilenet", 0.3, 4.0, 0.8});
  fc.mix.models.push_back({"bert", 0.3, 2.0, 0.7});
  fc.mix.swap_cost_us = 200.0;
  fc.mix.latency_noise_sigma = 0.2;  // consume the per-server RNG streams
  fc.num_servers = servers;
  fc.placement = fleet::PlacementKind::kSharded;
  fc.replicas = 2;
  fc.policy = policy;
  fc.seed = seed;
  return fc;
}

void ExpectIdenticalServerStats(const sim::ServerStats& fast,
                                const sim::ServerStats& ref,
                                const std::string& label) {
  EXPECT_EQ(fast.completed, ref.completed) << label;
  // EXPECT_EQ on doubles is bit-exact equality -- the fast path must
  // reproduce the reference arithmetic, not approximate it.
  EXPECT_EQ(fast.mean_latency_ms, ref.mean_latency_ms) << label;
  EXPECT_EQ(fast.p50_latency_ms, ref.p50_latency_ms) << label;
  EXPECT_EQ(fast.p95_latency_ms, ref.p95_latency_ms) << label;
  EXPECT_EQ(fast.p99_latency_ms, ref.p99_latency_ms) << label;
  EXPECT_EQ(fast.max_latency_ms, ref.max_latency_ms) << label;
  EXPECT_EQ(fast.mean_queue_delay_ms, ref.mean_queue_delay_ms) << label;
  EXPECT_EQ(fast.sla_violation_rate, ref.sla_violation_rate) << label;
  EXPECT_EQ(fast.achieved_qps, ref.achieved_qps) << label;
  EXPECT_EQ(fast.mean_worker_utilization, ref.mean_worker_utilization)
      << label;
  EXPECT_EQ(fast.reconfig_stalled, ref.reconfig_stalled) << label;
  EXPECT_EQ(fast.model_swaps, ref.model_swaps) << label;
  EXPECT_EQ(fast.failed, ref.failed) << label;
  EXPECT_EQ(fast.shed, ref.shed) << label;

  ASSERT_EQ(fast.workers.size(), ref.workers.size()) << label;
  for (std::size_t w = 0; w < ref.workers.size(); ++w) {
    const std::string wl = label + " worker " + std::to_string(w);
    EXPECT_EQ(fast.workers[w].index, ref.workers[w].index) << wl;
    EXPECT_EQ(fast.workers[w].gpcs, ref.workers[w].gpcs) << wl;
    EXPECT_EQ(fast.workers[w].busy_ticks, ref.workers[w].busy_ticks) << wl;
    EXPECT_EQ(fast.workers[w].queries, ref.workers[w].queries) << wl;
    EXPECT_EQ(fast.workers[w].utilization, ref.workers[w].utilization) << wl;
  }

  ASSERT_EQ(fast.models.size(), ref.models.size()) << label;
  for (std::size_t m = 0; m < ref.models.size(); ++m) {
    const std::string ml = label + " model slice " + std::to_string(m);
    EXPECT_EQ(fast.models[m].model, ref.models[m].model) << ml;
    EXPECT_EQ(fast.models[m].completed, ref.models[m].completed) << ml;
    EXPECT_EQ(fast.models[m].mean_latency_ms, ref.models[m].mean_latency_ms)
        << ml;
    EXPECT_EQ(fast.models[m].p95_latency_ms, ref.models[m].p95_latency_ms)
        << ml;
    EXPECT_EQ(fast.models[m].p99_latency_ms, ref.models[m].p99_latency_ms)
        << ml;
    EXPECT_EQ(fast.models[m].sla_violation_rate,
              ref.models[m].sla_violation_rate)
        << ml;
    EXPECT_EQ(fast.models[m].swaps, ref.models[m].swaps) << ml;
  }
}

void ExpectIdenticalFleetStats(const fleet::FleetStats& fast,
                               const fleet::FleetStats& ref,
                               const std::string& label) {
  EXPECT_EQ(fast.num_servers, ref.num_servers) << label;
  EXPECT_EQ(fast.routed_queries, ref.routed_queries) << label;
  EXPECT_EQ(fast.routed_per_server, ref.routed_per_server) << label;
  ExpectIdenticalServerStats(fast.aggregate, ref.aggregate,
                             label + " aggregate");
  ASSERT_EQ(fast.per_server.size(), ref.per_server.size()) << label;
  for (std::size_t s = 0; s < ref.per_server.size(); ++s) {
    ExpectIdenticalServerStats(fast.per_server[s], ref.per_server[s],
                               label + " server " + std::to_string(s));
  }
}

TEST(FleetStats, ZeroCopyAggregateMatchesReferenceEverywhere) {
  // Multi-server, mixed-model traffic: every policy x seed x jobs cell
  // must agree with the merged-vector reference on every field.
  for (const auto policy :
       {fleet::RouterPolicy::kHash, fleet::RouterPolicy::kLeastLoaded,
        fleet::RouterPolicy::kPowerOfTwo}) {
    for (const std::uint64_t seed : {7ull, 1234ull}) {
      const FleetTestbed tb(MixedFleet(5, policy, seed));
      const auto trace = tb.GenerateFleetTrace(/*rate_qps=*/2500.0,
                                               /*num_queries=*/4000, seed);
      const auto result = tb.Run(trace, /*jobs=*/2);
      const auto ref = result.StatsReference(tb.sla_target());
      for (const int jobs : {1, 3}) {
        const auto fast =
            result.Stats(tb.sla_target(), /*warmup_fraction=*/0.1, jobs);
        ExpectIdenticalFleetStats(
            fast, ref,
            std::string(ToString(policy)) + " seed " + std::to_string(seed) +
                " jobs " + std::to_string(jobs));
      }
    }
  }
}

TEST(FleetStats, AgreesAtZeroWarmupAndOnEmptyResults) {
  // warmup 0 exercises the no-skip merge walk; an empty FleetResult must
  // come back zeroed from both paths instead of dividing by the span.
  const FleetTestbed tb(MixedFleet(3, fleet::RouterPolicy::kHash, 3));
  const auto trace = tb.GenerateFleetTrace(1500.0, 2000, /*seed=*/3);
  const auto result = tb.Run(trace, /*jobs=*/2);
  ExpectIdenticalFleetStats(
      result.Stats(tb.sla_target(), /*warmup_fraction=*/0.0, 2),
      result.StatsReference(tb.sla_target(), /*warmup_fraction=*/0.0),
      "warmup 0");

  fleet::FleetResult empty;
  const auto fast = empty.Stats(tb.sla_target(), 0.1, 2);
  const auto ref = empty.StatsReference(tb.sla_target(), 0.1);
  EXPECT_EQ(fast.routed_queries, 0u);
  ExpectIdenticalFleetStats(fast, ref, "empty result");
}

TEST(FleetStats, FallbackOrderOnUnsortedTraceAndForeignIds) {
  // The fast aggregate's scatter walk assumes the source trace arrives
  // sorted and its ids are the trace positions; an arrival inversion or
  // out-of-range ids must route through the pairwise-merge fallback and
  // still match the reference bit for bit.
  const FleetTestbed tb(MixedFleet(4, fleet::RouterPolicy::kLeastLoaded, 11));
  const auto sorted = tb.GenerateFleetTrace(/*rate_qps=*/2000.0,
                                            /*num_queries=*/3000, /*seed=*/11);

  auto reversed = sorted.queries();
  std::reverse(reversed.begin(), reversed.end());
  const auto r1 = tb.Run(workload::QueryTrace(std::move(reversed)), /*jobs=*/2);
  ExpectIdenticalFleetStats(r1.Stats(tb.sla_target(), 0.1, 3),
                            r1.StatsReference(tb.sla_target()),
                            "reversed trace");

  auto sparse = sorted.queries();
  for (auto& q : sparse) q.id = q.id * 2 + 1;  // ids outside the positions
  const auto r2 = tb.Run(workload::QueryTrace(std::move(sparse)), /*jobs=*/2);
  ExpectIdenticalFleetStats(r2.Stats(tb.sla_target(), 0.1, 3),
                            r2.StatsReference(tb.sla_target()), "sparse ids");
}

TEST(FleetStats, CasualtiesAreCountedButExcludedFromThePercentilePool) {
  // A failed attempt's `finished` is the failure instant and a shed
  // query's is its drop time -- sampling either would poison the
  // percentiles.  Hand-build a one-server result where the casualty
  // "latency" dwarfs every genuine completion: the latency figures must
  // not move, while failed/shed are tallied separately.
  fleet::FleetResult result;
  sim::SimResult sr;
  const SimTime ms = MsToTicks(1.0);
  for (int i = 0; i < 12; ++i) {
    sim::QueryRecord r;
    r.id = static_cast<std::uint64_t>(i);
    r.arrival = static_cast<SimTime>(i) * 10 * ms;
    r.dispatched = r.arrival;
    r.started = r.arrival + ms;
    r.worker = 0;
    r.worker_gpcs = 7;
    if (i == 5) {
      r.failed = true;
      r.finished = r.arrival + 100'000 * ms;  // absurd sentinel latency
    } else if (i == 9) {
      r.shed = true;
      r.finished = r.arrival + 50'000 * ms;
    } else {
      r.finished = r.started + (2 + i % 4) * ms;
    }
    sr.records.push_back(r);
  }
  result.per_server.push_back(std::move(sr));
  result.global_ids = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  result.id_offsets = {0, 12};
  result.global_models = {{0}};
  result.worker_base = {0};

  for (const int jobs : {1, 2}) {
    const auto stats =
        result.Stats(/*sla_target=*/20 * ms, /*warmup_fraction=*/0.0, jobs);
    const auto& agg = stats.aggregate;
    EXPECT_EQ(agg.completed, 10u);
    EXPECT_EQ(agg.failed, 1u);
    EXPECT_EQ(agg.shed, 1u);
    // Pool = completions only: the worst genuine latency is 6 ms
    // (1 ms queue + 5 ms service), nowhere near the casualty sentinels.
    EXPECT_EQ(agg.max_latency_ms, 6.0);
    EXPECT_LE(agg.p99_latency_ms, 6.0);
    EXPECT_EQ(agg.sla_violation_rate, 0.0);
    ExpectIdenticalFleetStats(
        stats, result.StatsReference(20 * ms, /*warmup_fraction=*/0.0),
        "hand-built casualties jobs " + std::to_string(jobs));
    ASSERT_EQ(stats.per_server.size(), 1u);
    EXPECT_EQ(stats.per_server[0].failed, 1u);
    EXPECT_EQ(stats.per_server[0].shed, 1u);
  }
}

TEST(FleetStats, FaultedRunsAgreeWithTheReferenceEverywhere) {
  // End-to-end: a sole-replica crash produces real failed/shed records
  // spread across servers; the zero-copy aggregate must still match the
  // merged-vector reference field for field at every jobs count.
  FleetTestbedConfig fc = MixedFleet(3, fleet::RouterPolicy::kHash, 5);
  fc.replicas = 1;
  const FleetTestbed tb(fc);
  const auto trace = tb.GenerateFleetTrace(1500.0, 3000, /*seed=*/5);
  fleet::FaultPlan plan;
  plan.name = "manual-crash";
  plan.events.push_back({trace.queries().back().arrival / 3,
                         fleet::FaultKind::kServerCrash, /*server=*/1});
  const auto result = tb.RunWithFaults(trace, plan, /*jobs=*/2);
  ASSERT_GT(result.fault.failed + result.fault.shed, 0u);
  const auto ref = result.StatsReference(tb.sla_target());
  EXPECT_GT(ref.aggregate.failed + ref.aggregate.shed, 0u);
  for (const int jobs : {1, 3}) {
    ExpectIdenticalFleetStats(result.Stats(tb.sla_target(), 0.1, jobs), ref,
                              "faulted jobs " + std::to_string(jobs));
  }
}

TEST(FleetStats, UnplacedModelRoutingErrorNamesTheModel) {
  // Regression: a fleet trace carrying a model id no server hosts must
  // surface as a logic_error naming the model, not UB in the replica
  // lookup.  Build the stray trace by hand -- the testbed's own
  // generator can only emit placed models.
  const FleetTestbed tb(MixedFleet(3, fleet::RouterPolicy::kPowerOfTwo, 9));
  workload::Query stray;
  stray.id = 0;
  stray.model_id = 42;  // zoo has 3 models
  const workload::QueryTrace trace(std::vector<workload::Query>{stray});
  try {
    tb.Run(trace, /*jobs=*/1);
    FAIL() << "routing an unplaced model did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("model 42"), std::string::npos)
        << "message: " << e.what();
  }
}

}  // namespace
}  // namespace pe::core
