// Randomized invariant tests ("fuzz-light"): across many random
// configurations -- random partition layouts, schedulers, loads and seeds --
// the simulator must uphold structural invariants regardless of policy:
//   * every query completes exactly once, after its arrival;
//   * a worker never serves two queries at overlapping times;
//   * service time equals the ground-truth latency of (partition, batch)
//     when noise is off;
//   * identical configurations replay bit-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/fleet_runner.h"
#include "core/server_builder.h"
#include "fleet/fault.h"
#include "hw/mig.h"
#include "perf/model_zoo.h"

namespace pe {
namespace {

using core::SchedulerKind;

struct FuzzCase {
  std::uint64_t seed;
  SchedulerKind kind;
};

class FuzzInvariantsTest : public ::testing::TestWithParam<FuzzCase> {
 protected:
  // A single shared testbed (profiling is the expensive part).
  static const core::Testbed& tb() {
    static const core::Testbed instance{[] {
      core::TestbedConfig c;
      c.model_name = "resnet";
      return c;
    }()};
    return instance;
  }

  // Random valid heterogeneous plan derived from the fuzz seed.
  static partition::PartitionPlan RandomPlan(std::uint64_t seed) {
    return tb().PlanRandom(seed);
  }
};

TEST_P(FuzzInvariantsTest, StructuralInvariantsHold) {
  const auto& [seed, kind] = GetParam();
  Rng rng(seed);
  const auto plan = RandomPlan(seed);
  auto scheduler = tb().MakeScheduler(kind);

  core::RunOptions opt;
  // Loads from lightly loaded to overloaded.
  opt.rate_qps = rng.Uniform(50.0, 3000.0);
  opt.num_queries = 1500;
  opt.seed = seed ^ 0xF00D;
  const auto result = tb().Run(plan, *scheduler, opt);

  ASSERT_EQ(result.records.size(), opt.num_queries);

  // Per-query sanity.
  std::map<int, std::vector<std::pair<SimTime, SimTime>>> busy;
  for (const auto& r : result.records) {
    EXPECT_GE(r.dispatched, r.arrival) << "query " << r.id;
    EXPECT_GE(r.started, r.dispatched) << "query " << r.id;
    EXPECT_GT(r.finished, r.started) << "query " << r.id;
    EXPECT_GE(r.worker, 0);
    EXPECT_TRUE(hw::GpuSpec::IsValidPartitionSize(r.worker_gpcs));
    // Noise off: service time must match ground truth exactly (to tick
    // rounding).
    const SimTime expected = std::max<SimTime>(
        1, SecToTicks(tb().engine().LatencySec(tb().model(), r.worker_gpcs,
                                               r.batch)));
    EXPECT_EQ(r.finished - r.started, expected) << "query " << r.id;
    busy[r.worker].emplace_back(r.started, r.finished);
  }

  // No overlapping service on any worker.
  for (auto& [worker, spans] : busy) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second) << "worker " << worker;
    }
  }

  // Bit-identical replay.
  auto scheduler2 = tb().MakeScheduler(kind);
  const auto replay = tb().Run(plan, *scheduler2, opt);
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].finished, replay.records[i].finished);
    EXPECT_EQ(result.records[i].worker, replay.records[i].worker);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzInvariantsTest,
    ::testing::ValuesIn([] {
      std::vector<FuzzCase> cases;
      const SchedulerKind kinds[] = {
          SchedulerKind::kFifs, SchedulerKind::kElsa, SchedulerKind::kJsq,
          SchedulerKind::kGreedyFastest};
      std::uint64_t seed = 1000;
      for (int i = 0; i < 6; ++i) {
        for (SchedulerKind kind : kinds) {
          cases.push_back({seed++, kind});
        }
      }
      return cases;
    }()),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return std::string(core::ToString(info.param.kind)) + "_" +
             std::to_string(info.param.seed);
    });

// Randomized fault schedules over a small sharded fleet: whatever breaks
// whenever, the failover driver must classify every injected query exactly
// once (completed + failed + shed == injected), leave no record
// un-terminal at Finish, and replay bit-identically.
TEST(FuzzFaultInvariants, RandomFaultSchedulesConserveEveryQuery) {
  core::FleetTestbedConfig fc;
  fc.mix.models.push_back({"resnet", 0.6, 6.0, 0.9});
  fc.mix.models.push_back({"mobilenet", 0.4, 4.0, 0.8});
  fc.mix.swap_cost_us = 200.0;
  fc.num_servers = 4;
  fc.placement = fleet::PlacementKind::kSharded;
  fc.replicas = 2;
  const core::FleetTestbed tb(fc);

  for (const std::uint64_t seed : {31ull, 32ull, 33ull, 34ull}) {
    Rng rng(seed);
    const auto trace =
        tb.GenerateFleetTrace(rng.Uniform(300.0, 1200.0), 2500, seed);
    const SimTime span = trace.queries().back().arrival;

    fleet::FaultPlan plan;
    plan.name = "fuzz";
    const int incidents = static_cast<int>(rng.UniformInt(2, 6));
    for (int k = 0; k < incidents; ++k) {
      const int server =
          static_cast<int>(rng.UniformInt(0, fc.num_servers - 1));
      const auto t0 = static_cast<SimTime>(rng.Uniform(0.1, 0.8) *
                                           static_cast<double>(span));
      const auto dur = static_cast<SimTime>(rng.Uniform(0.05, 0.2) *
                                            static_cast<double>(span));
      switch (rng.UniformInt(0, 2)) {
        case 0:  // crash, sometimes permanent
          plan.events.push_back({t0, fleet::FaultKind::kServerCrash, server});
          if (rng.UniformInt(0, 3) > 0) {
            plan.events.push_back(
                {t0 + dur, fleet::FaultKind::kServerRecover, server});
          }
          break;
        case 1: {  // single-slice outage
          const auto lanes = static_cast<std::int64_t>(
              tb.placement().server(server).partition_gpcs.size());
          const int w = static_cast<int>(rng.UniformInt(0, lanes - 1));
          plan.events.push_back(
              {t0, fleet::FaultKind::kWorkerFail, server, w});
          plan.events.push_back(
              {t0 + dur, fleet::FaultKind::kWorkerRecover, server, w});
          break;
        }
        default:  // brownout window
          plan.events.push_back({t0, fleet::FaultKind::kSlowdownBegin, server,
                                 -1, rng.Uniform(1.5, 6.0)});
          plan.events.push_back(
              {t0 + dur, fleet::FaultKind::kSlowdownEnd, server});
      }
    }
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const fleet::FaultEvent& a, const fleet::FaultEvent& b) {
                       return a.time < b.time;
                     });
    plan.max_retries = static_cast<int>(rng.UniformInt(0, 3));
    plan.deadline =
        rng.UniformInt(0, 1) ? MsToTicks(rng.Uniform(100.0, 1000.0)) : 0;

    const auto result = tb.RunWithFaults(trace, plan, /*jobs=*/2);
    const auto& f = result.fault;
    EXPECT_EQ(f.injected, trace.size()) << "seed " << seed;
    EXPECT_EQ(f.completed + f.failed + f.shed, f.injected)
        << "seed " << seed;
    // No stuck server: every record the engines emitted ended terminal.
    for (const auto& sr : result.per_server) {
      for (const auto& r : sr.records) {
        EXPECT_TRUE(r.finished > 0 || r.failed || r.shed)
            << "seed " << seed << " query " << r.id;
      }
    }
    // Same plan, different jobs: bit-identical terminal accounting.
    const auto replay = tb.RunWithFaults(trace, plan, /*jobs=*/1);
    EXPECT_EQ(replay.fault.completed, f.completed) << "seed " << seed;
    EXPECT_EQ(replay.fault.failed, f.failed) << "seed " << seed;
    EXPECT_EQ(replay.fault.shed, f.shed) << "seed " << seed;
    EXPECT_EQ(replay.fault.retried, f.retried) << "seed " << seed;
    EXPECT_EQ(replay.fault.makespan, f.makespan) << "seed " << seed;
  }
}

// With noise on, estimates diverge from actuals; invariants must still
// hold (the scheduler may be wrong, the simulator must not be).
TEST(FuzzInvariantsNoise, NoiseDoesNotBreakConservation) {
  core::TestbedConfig c;
  c.model_name = "mobilenet";
  c.latency_noise_sigma = 0.3;
  const core::Testbed tb(c);
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    const auto plan = tb.PlanRandom(seed);
    auto scheduler = tb.MakeScheduler(SchedulerKind::kElsa);
    core::RunOptions opt;
    opt.rate_qps = 800.0;
    opt.num_queries = 2000;
    opt.seed = seed;
    const auto result = tb.Run(plan, *scheduler, opt);
    std::map<int, std::vector<std::pair<SimTime, SimTime>>> busy;
    for (const auto& r : result.records) {
      EXPECT_GT(r.finished, r.started);
      busy[r.worker].emplace_back(r.started, r.finished);
    }
    for (auto& [worker, spans] : busy) {
      std::sort(spans.begin(), spans.end());
      for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_GE(spans[i].first, spans[i - 1].second);
      }
    }
  }
}

}  // namespace
}  // namespace pe
