#include "hw/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace pe::hw {
namespace {

TEST(Cluster, TotalGpcs) {
  Cluster c(8);
  EXPECT_EQ(c.total_gpcs(), 56);
  EXPECT_EQ(c.num_gpus(), 8);
}

TEST(Cluster, PacksHomogeneousOnes) {
  Cluster c(2);
  const std::vector<int> sizes(14, 1);
  auto layout = c.Pack(sizes);
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->TotalUsedGpcs(), 14);
  EXPECT_EQ(layout->AllInstanceSizes().size(), 14u);
}

TEST(Cluster, RejectsOverBudget) {
  Cluster c(1);
  EXPECT_FALSE(c.CanPack(std::vector<int>(8, 1)));
  EXPECT_FALSE(c.CanPack({7, 1}));
}

TEST(Cluster, RejectsInvalidSizes) {
  Cluster c(2);
  EXPECT_FALSE(c.CanPack({5}));
  EXPECT_FALSE(c.CanPack({6, 1}));
}

TEST(Cluster, SplitsAcrossGpus) {
  Cluster c(2);
  // Two 4g instances cannot share one GPU but fit on two.
  auto layout = c.Pack({4, 4});
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->per_gpu[0], (std::vector<int>{4}));
  EXPECT_EQ(layout->per_gpu[1], (std::vector<int>{4}));
}

TEST(Cluster, PaperBertConfigPacks) {
  // 2xGPU(3) + 2xGPU(4) + 4xGPU(7) on 6 A100s (the paper's PARIS output
  // for BERT, 42 GPCs).
  Cluster c(6);
  auto layout = c.Pack({3, 3, 4, 4, 7, 7, 7, 7});
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->TotalUsedGpcs(), 42);
}

TEST(Cluster, PaperMobilenetConfigPacks) {
  // 6xGPU(1) + 4xGPU(2) + 2xGPU(3) + 1xGPU(4) on 4 A100s (24 GPCs).
  Cluster c(4);
  auto layout = c.Pack({1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 4});
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->TotalUsedGpcs(), 24);
}

TEST(Cluster, EachGpuLayoutIsMigFeasible) {
  Cluster c(3);
  auto layout = c.Pack({4, 4, 4, 3, 3, 3});
  ASSERT_TRUE(layout.has_value());
  for (const auto& gpu : layout->per_gpu) {
    EXPECT_TRUE(MigLayout::CanPlaceAll(gpu));
  }
}

TEST(Cluster, DeterministicPacking) {
  Cluster c(4);
  const std::vector<int> sizes = {3, 2, 2, 1, 1, 1, 7, 4};
  auto a = c.Pack(sizes);
  auto b = c.Pack(sizes);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->per_gpu, b->per_gpu);
}

TEST(Cluster, EmptyMultisetPacks) {
  Cluster c(1);
  auto layout = c.Pack({});
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->TotalUsedGpcs(), 0);
}

TEST(PackWithRepair, PassesThroughFeasible) {
  Cluster c(2);
  auto layout = PackWithRepair(c, {7, 7});
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->AllInstanceSizes(), (std::vector<int>{7, 7}));
}

TEST(PackWithRepair, SplitsPreserveTotalGpcs) {
  // Three 4g instances cannot pack on 2 GPUs (one 4g per GPU); repair
  // splits one 4 -> 3+1 which fits as {4,3} {4,1,...}.
  Cluster c(2);
  auto layout = PackWithRepair(c, {4, 4, 4});
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->TotalUsedGpcs(), 12);
}

TEST(PackWithRepair, FailsWhenBudgetExceeded) {
  Cluster c(1);
  EXPECT_FALSE(PackWithRepair(c, {7, 7}).has_value());
  EXPECT_FALSE(PackWithRepair(c, std::vector<int>(8, 1)).has_value());
}

TEST(PackWithRepair, DegradesToAllOnes) {
  // 8 GPCs of demand as {4,4} on one GPU is infeasible no matter the split
  // (7 slots); but {4,3} totals 7 and fits after repairing one 4 into 3+1
  // -- wait, {4,4}=8 > 7 exceeds the budget and must fail.
  Cluster c(1);
  EXPECT_FALSE(PackWithRepair(c, {4, 4}).has_value());
  // 7 GPCs as {4,2,1} is directly feasible.
  auto layout = PackWithRepair(c, {4, 2, 1});
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->TotalUsedGpcs(), 7);
}

TEST(PackWithRepair, RepairChainDownToAllOnes) {
  // Two single-slice GPUs: nothing but 1g instances can ever place, so a
  // 2g demand must walk the full split chain (2 -> 1+1) before packing.
  GpuSpec tiny;
  tiny.gpcs = 1;
  Cluster c(2, tiny);
  EXPECT_FALSE(c.Pack({2}).has_value());
  auto layout = PackWithRepair(c, {2});
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->AllInstanceSizes(), (std::vector<int>{1, 1}));
  EXPECT_EQ(layout->TotalUsedGpcs(), 2);

  // Four such GPUs force the longest chain: 4 -> 3+1 -> 2+1+1 -> 1x4.
  Cluster c4(4, tiny);
  auto deep = PackWithRepair(c4, {4});
  ASSERT_TRUE(deep.has_value());
  EXPECT_EQ(deep->AllInstanceSizes(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(deep->TotalUsedGpcs(), 4);
}

TEST(PackWithRepair, ExactCapacityFits) {
  // Direct exact-capacity fit: eight 7g instances fill 8 A100s to the GPC.
  Cluster full(8);
  auto layout = PackWithRepair(full, std::vector<int>(8, 7));
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->TotalUsedGpcs(), full.total_gpcs());

  // Exact capacity through repair: {4,4,4,1,1} = 14 GPCs on 2 GPUs only
  // packs after splitting one 4 into 3+1 ({4,3} | {4,1,1,1}).
  Cluster two(2);
  EXPECT_FALSE(two.Pack({4, 4, 4, 1, 1}).has_value());
  auto repaired = PackWithRepair(two, {4, 4, 4, 1, 1});
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(repaired->TotalUsedGpcs(), two.total_gpcs());

  // Exact capacity in all-1s: fourteen 1g instances on 2 GPUs.
  auto ones = PackWithRepair(two, std::vector<int>(14, 1));
  ASSERT_TRUE(ones.has_value());
  EXPECT_EQ(ones->TotalUsedGpcs(), 14);
}

TEST(PackWithRepair, OverCapacityInfeasibleEvenAfterFullRepair) {
  // One GPC over capacity: no split sequence can shed demand, so the
  // repair loop must terminate with nullopt (total GPCs are preserved by
  // every split).
  Cluster two(2);
  EXPECT_FALSE(PackWithRepair(two, {7, 7, 1}).has_value());
  EXPECT_FALSE(PackWithRepair(two, std::vector<int>(15, 1)).has_value());
  // Over capacity with splittable sizes only: still infeasible.
  EXPECT_FALSE(PackWithRepair(two, {4, 4, 4, 3}).has_value());
}

TEST(PackWithRepair, InvalidProfileSizeIsNotSilentlyDropped) {
  // 5 GPCs is not a MIG profile and has no split rule; the repair must
  // report infeasibility rather than erase the demand and "succeed" with
  // an emptier layout.
  Cluster c(2);
  EXPECT_FALSE(PackWithRepair(c, {5}).has_value());
  EXPECT_FALSE(PackWithRepair(c, {5, 1, 1}).has_value());
}

TEST(ClusterLayout, AllInstanceSizesSortedDescending) {
  Cluster c(2);
  auto layout = c.Pack({1, 7, 2, 3});
  ASSERT_TRUE(layout.has_value());
  const auto sizes = layout->AllInstanceSizes();
  EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end(), std::greater<int>()));
}

// Property: any multiset of total <= capacity made only of 1s and 2s packs.
class SmallSizesPackTest : public ::testing::TestWithParam<int> {};

TEST_P(SmallSizesPackTest, OnesAndTwosAlwaysPack) {
  const int twos = GetParam();
  Cluster c(4);  // 28 GPCs
  std::vector<int> sizes(static_cast<std::size_t>(twos), 2);
  const int remaining = 28 - 2 * twos;
  // A100 fits three 2g per GPU (slots 0,2,4) plus one 1g (slot 6): filling
  // the remainder with 1s stays feasible as long as per-GPU twos <= 3.
  for (int i = 0; i < remaining; ++i) sizes.push_back(1);
  EXPECT_TRUE(c.CanPack(sizes)) << "twos=" << twos;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SmallSizesPackTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 10, 12));

}  // namespace
}  // namespace pe::hw
