#include "hw/gpu_spec.h"

#include <gtest/gtest.h>

namespace pe::hw {
namespace {

TEST(GpuSpec, ValidPartitionSizes) {
  const auto& sizes = GpuSpec::ValidPartitionSizes();
  EXPECT_EQ(sizes, (std::vector<int>{1, 2, 3, 4, 7}));
  for (int s : sizes) EXPECT_TRUE(GpuSpec::IsValidPartitionSize(s));
  EXPECT_FALSE(GpuSpec::IsValidPartitionSize(0));
  EXPECT_FALSE(GpuSpec::IsValidPartitionSize(5));
  EXPECT_FALSE(GpuSpec::IsValidPartitionSize(6));
  EXPECT_FALSE(GpuSpec::IsValidPartitionSize(8));
}

TEST(GpuSpec, MemorySliceMapMatchesA100Profiles) {
  GpuSpec spec;
  // 1g.5gb=1, 2g.10gb=2, 3g.20gb=4, 4g.20gb=4, 7g.40gb=8 of 8 slices.
  EXPECT_EQ(spec.MemorySlicesFor(1), 1);
  EXPECT_EQ(spec.MemorySlicesFor(2), 2);
  EXPECT_EQ(spec.MemorySlicesFor(3), 4);
  EXPECT_EQ(spec.MemorySlicesFor(4), 4);
  EXPECT_EQ(spec.MemorySlicesFor(7), 8);
}

TEST(GpuSpec, PartitionResourcesScaleWithGpcs) {
  GpuSpec spec;
  const auto full = spec.Partition(7);
  EXPECT_EQ(full.sms, 98);
  EXPECT_DOUBLE_EQ(full.dram_bw, spec.dram_bw);
  EXPECT_DOUBLE_EQ(full.l2_bytes, spec.l2_bytes);

  const auto one = spec.Partition(1);
  EXPECT_EQ(one.sms, 14);
  EXPECT_DOUBLE_EQ(one.dram_bw, spec.dram_bw / 8.0);
  EXPECT_DOUBLE_EQ(one.peak_flops, 14.0 * spec.peak_flops_per_sm);
}

TEST(GpuSpec, ThreeGpcPartitionGetsHalfTheMemory) {
  GpuSpec spec;
  const auto three = spec.Partition(3);
  EXPECT_DOUBLE_EQ(three.dram_bw, spec.dram_bw / 2.0);
  // A 3g instance has *more* bandwidth per GPC than proportional -- the
  // heterogeneity the perf model exploits.
  const auto four = spec.Partition(4);
  EXPECT_DOUBLE_EQ(four.dram_bw, three.dram_bw);
  EXPECT_GT(three.dram_bw / 3.0, spec.dram_bw / 7.0);
}

TEST(GpuSpec, PeakFlopsMonotoneInSize) {
  GpuSpec spec;
  double prev = 0.0;
  for (int s : GpuSpec::ValidPartitionSizes()) {
    const auto r = spec.Partition(s);
    EXPECT_GT(r.peak_flops, prev);
    prev = r.peak_flops;
  }
}

}  // namespace
}  // namespace pe::hw
