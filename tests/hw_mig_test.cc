#include "hw/mig.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace pe::hw {
namespace {

TEST(LegalStartSlots, MatchesA100PlacementTable) {
  EXPECT_EQ(LegalStartSlots(1), (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(LegalStartSlots(2), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(LegalStartSlots(3), (std::vector<int>{0, 4}));
  EXPECT_EQ(LegalStartSlots(4), (std::vector<int>{0}));
  EXPECT_EQ(LegalStartSlots(7), (std::vector<int>{0}));
  EXPECT_TRUE(LegalStartSlots(5).empty());
}

TEST(MigLayout, SevenOnesFit) {
  MigLayout layout;
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(layout.TryPlace(1).has_value()) << "instance " << i;
  }
  EXPECT_FALSE(layout.TryPlace(1).has_value());
  EXPECT_EQ(layout.used_gpcs(), 7);
  EXPECT_EQ(layout.free_gpcs(), 0);
}

TEST(MigLayout, FourPlusThreeFits) {
  MigLayout layout;
  auto p4 = layout.TryPlace(4);
  ASSERT_TRUE(p4.has_value());
  EXPECT_EQ(p4->start_slot, 0);
  auto p3 = layout.TryPlace(3);
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->start_slot, 4);
  EXPECT_EQ(layout.used_gpcs(), 7);
}

TEST(MigLayout, SecondFourRejected) {
  MigLayout layout;
  EXPECT_TRUE(layout.TryPlace(4).has_value());
  EXPECT_FALSE(layout.TryPlace(4).has_value());
}

TEST(MigLayout, SevenIsExclusive) {
  MigLayout layout;
  EXPECT_TRUE(layout.TryPlace(7).has_value());
  for (int s : {1, 2, 3, 4, 7}) {
    EXPECT_FALSE(layout.TryPlace(s).has_value()) << "size " << s;
  }
}

TEST(MigLayout, TwoGpcAlignment) {
  MigLayout layout;
  // Three 2g instances at slots 0, 2, 4; slot 6 leaves room for one 1g.
  EXPECT_TRUE(layout.TryPlace(2).has_value());
  EXPECT_TRUE(layout.TryPlace(2).has_value());
  EXPECT_TRUE(layout.TryPlace(2).has_value());
  EXPECT_FALSE(layout.TryPlace(2).has_value());
  EXPECT_TRUE(layout.TryPlace(1).has_value());
  EXPECT_EQ(layout.used_gpcs(), 7);
}

TEST(MigLayout, RemoveFreesSlots) {
  MigLayout layout;
  auto p = layout.TryPlace(4);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(layout.Remove(*p));
  EXPECT_EQ(layout.used_gpcs(), 0);
  EXPECT_TRUE(layout.TryPlace(4).has_value());
  EXPECT_FALSE(layout.Remove(Placement{3, 0}));  // never placed
}

TEST(MigLayout, PaperFigure2Heterogeneous) {
  // Paper Figure 2's example heterogeneous splits.
  EXPECT_TRUE(MigLayout::CanPlaceAll({4, 2, 1}));
  EXPECT_TRUE(MigLayout::CanPlaceAll({3, 2, 1, 1}));
  EXPECT_TRUE(MigLayout::CanPlaceAll({2, 2, 2, 1}));
  EXPECT_TRUE(MigLayout::CanPlaceAll({1, 1, 1, 1, 1, 1, 1}));
}

TEST(MigLayout, InfeasibleMultisets) {
  EXPECT_FALSE(MigLayout::CanPlaceAll({4, 4}));
  EXPECT_FALSE(MigLayout::CanPlaceAll({7, 1}));
  EXPECT_FALSE(MigLayout::CanPlaceAll({4, 2, 2}));  // 2g slots 0,2 blocked
}

TEST(MigLayout, ThreeThreeOneIsFeasible) {
  // 3g@0 (slots 0-2), 3g@4 (slots 4-6) leaves slot 3 free for a 1g.
  EXPECT_TRUE(MigLayout::CanPlaceAll({3, 3}));
  EXPECT_TRUE(MigLayout::CanPlaceAll({3, 3, 1}));
}

TEST(MigLayout, EmptyMultisetTriviallyFeasible) {
  EXPECT_TRUE(MigLayout::CanPlaceAll({}));
}

TEST(MigLayout, InvalidSizeRejected) {
  EXPECT_FALSE(MigLayout::CanPlaceAll({5}));
  EXPECT_FALSE(MigLayout::CanPlaceAll({6}));
}

TEST(MigLayout, EnumerationContainsKnownLayouts) {
  const auto sets = MigLayout::EnumerateFeasibleMultisets();
  auto contains = [&](std::vector<int> v) {
    std::sort(v.begin(), v.end(), std::greater<int>());
    return std::find(sets.begin(), sets.end(), v) != sets.end();
  };
  EXPECT_TRUE(contains({7}));
  EXPECT_TRUE(contains({4, 3}));
  EXPECT_TRUE(contains({4, 2, 1}));
  EXPECT_TRUE(contains({3, 2, 1, 1}));
  EXPECT_TRUE(contains({2, 2, 2, 1}));
  EXPECT_TRUE(contains({1, 1, 1, 1, 1, 1, 1}));
  EXPECT_TRUE(contains({}));
  EXPECT_FALSE(contains({4, 4}));
  EXPECT_FALSE(contains({7, 1}));
}

TEST(MigLayout, AllEnumeratedSetsArePlaceableAndWithinBudget) {
  for (const auto& sizes : MigLayout::EnumerateFeasibleMultisets()) {
    EXPECT_TRUE(MigLayout::CanPlaceAll(sizes));
    EXPECT_LE(std::accumulate(sizes.begin(), sizes.end(), 0), 7);
  }
}

TEST(MigLayout, ToStringSortedBySlot) {
  MigLayout layout;
  layout.TryPlace(3);
  layout.TryPlace(2);  // lands at slot 4
  EXPECT_EQ(layout.ToString(), "[3@0 2@4]");
}

TEST(MigLayout, GreedyTryPlaceIsNotComplete) {
  // {3,2,2} is feasible only with the 3g at slot 4; greedy TryPlace puts it
  // at slot 0 and gets stuck.  Backtracking CanPlaceAll must still succeed.
  EXPECT_TRUE(MigLayout::CanPlaceAll({3, 2, 2}));
  MigLayout layout;
  EXPECT_TRUE(layout.TryPlace(3).has_value());  // lands at slot 0
  EXPECT_TRUE(layout.TryPlace(2).has_value());  // slot 4
  EXPECT_FALSE(layout.TryPlace(2).has_value());
}

// Property sweep: every enumerated multiset must be re-verified feasible by
// the backtracking placer, and its total must fit the GPU.
class MigEnumerationTest
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(MigEnumerationTest, BacktrackingPlacementSucceeds) {
  auto sizes = GetParam();
  EXPECT_TRUE(MigLayout::CanPlaceAll(sizes));
  // Any sub-multiset of a feasible multiset is feasible too.
  for (std::size_t drop = 0; drop < sizes.size(); ++drop) {
    auto sub = sizes;
    sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(drop));
    EXPECT_TRUE(MigLayout::CanPlaceAll(sub));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFeasible, MigEnumerationTest,
    ::testing::ValuesIn([] {
      auto sets = MigLayout::EnumerateFeasibleMultisets();
      // Drop the empty set (nothing to place).
      sets.erase(std::remove_if(sets.begin(), sets.end(),
                                [](const auto& v) { return v.empty(); }),
                 sets.end());
      return sets;
    }()));

}  // namespace
}  // namespace pe::hw
