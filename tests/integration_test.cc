// Cross-module integration tests: full pipeline from model zoo through
// profiling, PARIS partitioning, ELSA scheduling and simulation, asserting
// the paper's qualitative results end-to-end.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/server_builder.h"

namespace pe {
namespace {

using core::RunOptions;
using core::SchedulerKind;
using core::Testbed;
using core::TestbedConfig;

Testbed MakeTb(const std::string& model) {
  TestbedConfig c;
  c.model_name = model;
  return Testbed(c);
}

// Paper Figure 5 / 10: on a heterogeneous server under tight SLA, ELSA
// yields fewer SLA violations than FIFS at the same load.
TEST(Integration, ElsaReducesViolationsOnHeterogeneousServer) {
  const auto tb = MakeTb("resnet");
  const auto plan = tb.PlanParis();
  RunOptions opt;
  opt.num_queries = 6000;
  opt.rate_qps = 500.0;
  const auto fifs = tb.RunStats(plan, SchedulerKind::kFifs, opt);
  const auto elsa = tb.RunStats(plan, SchedulerKind::kElsa, opt);
  EXPECT_LT(elsa.sla_violation_rate, fifs.sla_violation_rate);
  EXPECT_LT(elsa.p95_latency_ms, fifs.p95_latency_ms);
}

// Paper Section IV-C: ELSA Step A prefers small partitions to keep
// utilization high; large batches still reach the large partitions.
TEST(Integration, ElsaRoutesBatchesBySize) {
  const auto tb = MakeTb("resnet");
  const auto plan = tb.PlanParis();
  auto sched = tb.MakeScheduler(SchedulerKind::kElsa);
  RunOptions opt;
  opt.num_queries = 4000;
  opt.rate_qps = 300.0;
  const auto result = tb.Run(plan, *sched, opt);
  double small_batch_sum = 0, small_count = 0;
  double large_batch_sum = 0, large_count = 0;
  for (const auto& r : result.records) {
    if (r.worker_gpcs <= 2) {
      small_batch_sum += r.batch;
      ++small_count;
    } else if (r.worker_gpcs == 7) {
      large_batch_sum += r.batch;
      ++large_count;
    }
  }
  ASSERT_GT(small_count, 0);
  ASSERT_GT(large_count, 0);
  EXPECT_LT(small_batch_sum / small_count, large_batch_sum / large_count);
}

// Paper Figure 12 qualitative shape for every model: PARIS+ELSA beats
// GPU(7)+FIFS in latency-bounded throughput.
class Figure12ShapeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(Figure12ShapeTest, ParisElsaBeatsGpu7Fifs) {
  const auto tb = MakeTb(GetParam());
  core::SearchOptions so;
  so.num_queries = 2000;
  so.iterations = 7;
  const double sla_ms = TicksToMs(tb.sla_target());
  const auto base = core::LatencyBoundedThroughput(
      tb, tb.PlanHomogeneous(7), SchedulerKind::kFifs, sla_ms, so);
  const auto ours = core::LatencyBoundedThroughput(
      tb, tb.PlanParis(), SchedulerKind::kElsa, sla_ms, so);
  EXPECT_GT(ours.qps, base.qps) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModels, Figure12ShapeTest,
                         ::testing::Values("shufflenet", "mobilenet",
                                           "resnet", "bert", "conformer"));

// Random partitioning + ELSA is competitive (paper Section VI-B) -- a lucky
// random draw can even win -- but PARIS+ELSA must beat the *average* random
// layout, which is what "systematic beats blind" means statistically.
TEST(Integration, ParisElsaBeatsAverageRandomElsa) {
  const auto tb = MakeTb("mobilenet");
  core::SearchOptions so;
  so.num_queries = 2000;
  so.iterations = 7;
  const double sla_ms = TicksToMs(tb.sla_target());
  double random_sum = 0.0;
  const std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};
  for (std::uint64_t seed : kSeeds) {
    random_sum += core::LatencyBoundedThroughput(
                      tb, tb.PlanRandom(seed), SchedulerKind::kElsa, sla_ms,
                      so)
                      .qps;
  }
  const auto paris = core::LatencyBoundedThroughput(
      tb, tb.PlanParis(), SchedulerKind::kElsa, sla_ms, so);
  EXPECT_GT(paris.qps, random_sum / std::size(kSeeds));
}

// Estimate/actual divergence: with execution-time noise the scheduler's
// predictions are imperfect but the system still functions and ELSA still
// beats FIFS.
TEST(Integration, RobustToLatencyNoise) {
  TestbedConfig c;
  c.model_name = "resnet";
  c.latency_noise_sigma = 0.1;
  const Testbed tb(c);
  const auto plan = tb.PlanParis();
  RunOptions opt;
  opt.num_queries = 5000;
  opt.rate_qps = 500.0;
  const auto fifs = tb.RunStats(plan, SchedulerKind::kFifs, opt);
  const auto elsa = tb.RunStats(plan, SchedulerKind::kElsa, opt);
  EXPECT_EQ(elsa.completed + fifs.completed > 0, true);
  EXPECT_LT(elsa.p95_latency_ms, fifs.p95_latency_ms);
}

// Work conservation under overload: the server still completes every query
// and per-GPC utilization approaches saturation on the loaded classes.
TEST(Integration, OverloadStillCompletesAllQueries) {
  const auto tb = MakeTb("mobilenet");
  const auto plan = tb.PlanParis();
  auto sched = tb.MakeScheduler(SchedulerKind::kElsa);
  RunOptions opt;
  opt.num_queries = 3000;
  opt.rate_qps = 1e5;  // far beyond capacity
  const auto result = tb.Run(plan, *sched, opt);
  for (const auto& r : result.records) {
    EXPECT_GT(r.finished, 0);
  }
  const auto stats = result.Stats(tb.sla_target());
  EXPECT_GT(stats.mean_worker_utilization, 0.5);
}

// The frontend bottleneck the paper describes for MobileNet at 48 GPCs
// (Section V): with a constrained frontend, adding backend GPCs does not
// increase goodput.
TEST(Integration, FrontendBottleneckCapsThroughput) {
  TestbedConfig c;
  c.model_name = "mobilenet";
  c.frontend.enabled = true;
  c.frontend.lanes = 4;
  c.frontend.cost_per_query = MsToTicks(1.0);  // cap: 4000 qps across lanes
  const Testbed tb(c);
  const auto plan = tb.PlanHomogeneous(1);
  auto sched = tb.MakeScheduler(SchedulerKind::kFifs);
  RunOptions opt;
  opt.num_queries = 4000;
  opt.rate_qps = 1e4;  // above the frontend cap
  const auto result = tb.Run(plan, *sched, opt);
  const auto stats = result.Stats(tb.sla_target(), 0.0);
  EXPECT_LE(stats.achieved_qps, 4200.0);
}

// Bit-exact reproducibility of a full experiment across separately
// constructed testbeds (determinism is a stated design requirement).
TEST(Integration, FullPipelineBitReproducible) {
  auto run_once = [] {
    TestbedConfig c;
    c.model_name = "bert";
    const Testbed tb(c);
    RunOptions opt;
    opt.num_queries = 1000;
    opt.rate_qps = 100.0;
    opt.seed = 77;
    return tb.RunStats(tb.PlanParis(), SchedulerKind::kElsa, opt);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.p95_latency_ms, b.p95_latency_ms);
  EXPECT_DOUBLE_EQ(a.achieved_qps, b.achieved_qps);
  EXPECT_DOUBLE_EQ(a.mean_worker_utilization, b.mean_worker_utilization);
}

}  // namespace
}  // namespace pe
