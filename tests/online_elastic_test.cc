// Tests for the online elastic re-partitioning extension: traffic
// estimation, drift-triggered repartitioning, and the epoch simulator.
#include <gtest/gtest.h>

#include "online/elastic_server.h"
#include "online/repartition_controller.h"
#include "online/traffic_estimator.h"
#include "perf/model_zoo.h"
#include "profile/profiler.h"
#include "sched/elsa.h"
#include "workload/scenario.h"

namespace pe::online {
namespace {

TEST(TrafficEstimator, EmptyState) {
  TrafficEstimator est(32);
  EXPECT_TRUE(est.empty());
  EXPECT_EQ(est.count(), 0u);
  const auto pmf = est.Pmf();
  for (double p : pmf) EXPECT_EQ(p, 0.0);
  EXPECT_THROW(est.Snapshot(), std::logic_error);
}

TEST(TrafficEstimator, CountsObservations) {
  TrafficEstimator est(8);
  est.Observe(2);
  est.Observe(2);
  est.Observe(4);
  const auto pmf = est.Pmf();
  EXPECT_NEAR(pmf[2], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pmf[4], 1.0 / 3.0, 1e-12);
  EXPECT_EQ(est.count(), 3u);
}

TEST(TrafficEstimator, ClampsOutOfRange) {
  TrafficEstimator est(8);
  est.Observe(100);
  est.Observe(0);
  est.Observe(-3);
  const auto pmf = est.Pmf();
  EXPECT_NEAR(pmf[8], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pmf[1], 2.0 / 3.0, 1e-12);
}

TEST(TrafficEstimator, SlidingWindowEvicts) {
  TrafficEstimator est(8, /*window=*/4);
  for (int i = 0; i < 4; ++i) est.Observe(1);
  for (int i = 0; i < 4; ++i) est.Observe(8);
  EXPECT_EQ(est.count(), 4u);
  const auto pmf = est.Pmf();
  EXPECT_EQ(pmf[1], 0.0);  // fully evicted
  EXPECT_DOUBLE_EQ(pmf[8], 1.0);
}

TEST(TrafficEstimator, SnapshotMatchesPmf) {
  TrafficEstimator est(4);
  for (int i = 0; i < 10; ++i) est.Observe(1);
  for (int i = 0; i < 30; ++i) est.Observe(3);
  const auto dist = est.Snapshot();
  EXPECT_NEAR(dist.Pdf(1), 0.25, 1e-12);
  EXPECT_NEAR(dist.Pdf(3), 0.75, 1e-12);
  EXPECT_EQ(dist.max_batch(), 4);
}

TEST(TrafficEstimator, TotalVariationProperties) {
  TrafficEstimator est(4);
  est.Observe(1);
  // Identical PMFs -> 0; disjoint -> 1.
  EXPECT_NEAR(est.TotalVariation(est.Pmf()), 0.0, 1e-12);
  std::vector<double> disjoint(5, 0.0);
  disjoint[4] = 1.0;
  EXPECT_NEAR(est.TotalVariation(disjoint), 1.0, 1e-12);
}

TEST(TrafficEstimator, InvalidConstruction) {
  EXPECT_THROW(TrafficEstimator(0), std::invalid_argument);
  EXPECT_THROW(TrafficEstimator(8, 0), std::invalid_argument);
}

class ControllerFixture : public ::testing::Test {
 protected:
  static const profile::ProfileTable& Profile() {
    static const profile::ProfileTable table = [] {
      profile::Profiler profiler;
      return profiler.Profile(perf::BuildResNet50(),
                              profile::ProfilerConfig::Default(64));
    }();
    return table;
  }

  static RepartitionController MakeController(ElasticConfig config = {}) {
    static const workload::LogNormalBatchDist initial(4.0, 0.6, 32);
    return RepartitionController(Profile(), hw::Cluster(8), 48, initial,
                                 partition::ParisConfig{}, config);
  }
};

TEST_F(ControllerFixture, InitialPlanFromSeedDistribution) {
  auto controller = MakeController();
  EXPECT_GT(controller.current_plan().NumInstances(), 0);
  EXPECT_LE(controller.current_plan().TotalGpcs(), 48);
  EXPECT_EQ(controller.reconfigurations(), 0);
}

TEST_F(ControllerFixture, NoRepartitionBelowMinObservations) {
  ElasticConfig config;
  config.min_observations = 100;
  auto controller = MakeController(config);
  TrafficEstimator est(32);
  for (int i = 0; i < 50; ++i) est.Observe(32);  // wildly drifted but few
  EXPECT_FALSE(controller.MaybeRepartition(est).has_value());
}

TEST_F(ControllerFixture, NoRepartitionWithoutDrift) {
  auto controller = MakeController();
  TrafficEstimator est(32);
  // Feed traffic matching the seed distribution.
  workload::LogNormalBatchDist seed(4.0, 0.6, 32);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) est.Observe(seed.Sample(rng));
  EXPECT_LT(controller.DriftOf(est), 0.1);
  EXPECT_FALSE(controller.MaybeRepartition(est).has_value());
  EXPECT_EQ(controller.reconfigurations(), 0);
}

TEST_F(ControllerFixture, RepartitionsOnLargeDrift) {
  auto controller = MakeController();
  const auto before = controller.current_plan().instance_gpcs;
  TrafficEstimator est(32);
  // Drift to consistently large batches: demands bigger partitions.
  workload::LogNormalBatchDist drifted(24.0, 0.4, 32);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) est.Observe(drifted.Sample(rng));
  EXPECT_GT(controller.DriftOf(est), 0.3);
  const auto new_plan = controller.MaybeRepartition(est);
  ASSERT_TRUE(new_plan.has_value());
  EXPECT_EQ(controller.reconfigurations(), 1);
  EXPECT_NE(new_plan->instance_gpcs, before);
  // Larger batches -> larger mean partition size.
  auto mean = [](const std::vector<int>& v) {
    double s = 0;
    for (int g : v) s += g;
    return s / static_cast<double>(v.size());
  };
  EXPECT_GT(mean(new_plan->instance_gpcs), mean(before));
}

TEST_F(ControllerFixture, DriftResetAfterCommit) {
  auto controller = MakeController();
  TrafficEstimator est(32);
  workload::LogNormalBatchDist drifted(24.0, 0.4, 32);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) est.Observe(drifted.Sample(rng));
  ASSERT_TRUE(controller.MaybeRepartition(est).has_value());
  // Same traffic again: no further drift, no second reconfiguration.
  EXPECT_LT(controller.DriftOf(est), 0.05);
  EXPECT_FALSE(controller.MaybeRepartition(est).has_value());
  EXPECT_EQ(controller.reconfigurations(), 1);
}

// The elastic simulator is a thin controller over ONE continuous
// InferenceServer run: with drift-triggered repartitioning disabled, its
// per-query records must be bit-identical to a plain static Run of the
// same trace on the initial layout with the same seed.
TEST_F(ControllerFixture, DriftFreeRunMatchesStaticServerBitIdentical) {
  ElasticConfig config;
  config.drift_threshold = 2.0;  // unreachable: never repartitions
  auto controller = MakeController(config);

  workload::LogNormalBatchDist dist(4.0, 0.6, 32);
  workload::PoissonArrivals arrivals(250.0);
  Rng rng(9);
  workload::ArrivalTraceSource steady(arrivals, dist);
  const auto trace = workload::Take(steady, 3000, rng);

  const auto& profile = Profile();
  const SimTime sla = SecToTicks(1.5 * profile.LatencySec(7, 32));
  const auto model = perf::BuildResNet50();
  perf::RooflineEngine engine;
  sim::LatencyFn actual = [engine, model](int g, int b) {
    return engine.LatencySec(model, g, b);
  };
  const std::uint64_t seed = 0xABCD;

  ElasticServerSim elastic(
      controller, profile,
      [&] { return std::make_unique<sched::ElsaScheduler>(profile, sla); },
      actual, sla, /*queries_per_epoch=*/500, seed);
  const auto elastic_result = elastic.Run(trace);
  EXPECT_EQ(elastic_result.reconfigurations, 0);
  EXPECT_EQ(elastic_result.total.reconfig_stalled, 0u);

  sim::ServerConfig sc;
  sc.partition_gpcs = controller.current_plan().instance_gpcs;
  sc.sla_target = sla;
  sc.seed = seed;
  sched::ElsaScheduler elsa(profile, sla);
  sim::InferenceServer server(sc, profile, elsa, actual);
  const auto static_result = server.Run(trace);

  // Recompute the elastic totals from the static records: identical
  // records imply identical aggregate stats.
  const auto static_total =
      sim::ComputeStats(static_result.records, sla, /*warmup_fraction=*/0.0);
  EXPECT_EQ(elastic_result.total.completed, static_total.completed);
  EXPECT_DOUBLE_EQ(elastic_result.total.p95_latency_ms,
                   static_total.p95_latency_ms);
  // And assert it record by record (the memcmp-level contract).
  // ElasticResult does not expose records, so replay the elastic sim's
  // exact driving pattern (inject everything, advance in epoch chunks)
  // and compare per-query records against the batch Run.
  sched::ElsaScheduler elsa2(profile, sla);
  sim::InferenceServer continuous(sc, profile, elsa2, actual);
  continuous.InjectTrace(trace);
  for (std::size_t begin = 500; begin < trace.size(); begin += 500) {
    continuous.AdvanceTo(trace.queries()[begin].arrival);
  }
  const auto continuous_result = continuous.Finish();
  ASSERT_EQ(continuous_result.records.size(), static_result.records.size());
  for (std::size_t i = 0; i < static_result.records.size(); ++i) {
    const auto& s = static_result.records[i];
    const auto& c = continuous_result.records[i];
    EXPECT_EQ(s.dispatched, c.dispatched) << "query " << i;
    EXPECT_EQ(s.started, c.started) << "query " << i;
    EXPECT_EQ(s.finished, c.finished) << "query " << i;
    EXPECT_EQ(s.worker, c.worker) << "query " << i;
    EXPECT_EQ(s.reconfig_stalls, c.reconfig_stalls) << "query " << i;
  }
}

// Same trace, same seed: elastic runs are reproducible end-to-end now
// that the seed is plumbed through instead of hard-coded.
TEST_F(ControllerFixture, SameSeedSameResult) {
  workload::LogNormalBatchDist small(3.0, 0.5, 32);
  workload::LogNormalBatchDist large(20.0, 0.4, 32);
  workload::PoissonArrivals arrivals(300.0);
  Rng rng(6);
  workload::PhasedTraceSource drifting(arrivals,
                                       {{&small, 2000}, {&large, 2000}});
  const auto trace = workload::Take(drifting, 4000, rng);

  const auto& profile = Profile();
  const SimTime sla = SecToTicks(1.5 * profile.LatencySec(7, 32));
  const auto model = perf::BuildResNet50();
  perf::RooflineEngine engine;
  sim::LatencyFn actual = [engine, model](int g, int b) {
    return engine.LatencySec(model, g, b);
  };

  auto run_once = [&] {
    ElasticConfig config;
    config.min_observations = 400;
    config.drift_threshold = 0.15;
    auto controller = MakeController(config);
    ElasticServerSim sim(
        controller, profile,
        [&] { return std::make_unique<sched::ElsaScheduler>(profile, sla); },
        actual, sla, /*queries_per_epoch=*/1000, /*seed=*/42);
    return sim.Run(trace);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
  EXPECT_EQ(a.total.reconfig_stalled, b.total.reconfig_stalled);
  EXPECT_DOUBLE_EQ(a.total.p95_latency_ms, b.total.p95_latency_ms);
  EXPECT_DOUBLE_EQ(a.total.mean_latency_ms, b.total.mean_latency_ms);
}

TEST_F(ControllerFixture, ElasticServerTracksDriftingWorkload) {
  ElasticConfig config;
  config.min_observations = 400;
  config.drift_threshold = 0.15;
  auto controller = MakeController(config);

  // Build a drifting trace: small-batch phase then large-batch phase.
  workload::LogNormalBatchDist small(3.0, 0.5, 32);
  workload::LogNormalBatchDist large(20.0, 0.4, 32);
  workload::PoissonArrivals arrivals(300.0);
  Rng rng(6);
  workload::PhasedTraceSource drifting(arrivals,
                                       {{&small, 4000}, {&large, 4000}});
  const auto trace = workload::Take(drifting, 8000, rng);

  const auto& profile = Profile();
  const SimTime sla = SecToTicks(1.5 * profile.LatencySec(7, 32));
  const auto model = perf::BuildResNet50();
  perf::RooflineEngine engine;
  ElasticServerSim sim(
      controller, profile,
      [&] { return std::make_unique<sched::ElsaScheduler>(profile, sla); },
      [engine, model](int g, int b) { return engine.LatencySec(model, g, b); },
      sla, /*queries_per_epoch=*/1000);
  const auto result = sim.Run(trace);

  EXPECT_EQ(result.total.completed, trace.size());
  EXPECT_GE(result.reconfigurations, 1);
  EXPECT_EQ(result.epochs.size(), 8u);
  // Reconfigurations are simulated live: the downtime window must have
  // held queries, visible in the stall metric (totals and per epoch).
  EXPECT_GT(result.total.reconfig_stalled, 0u);
  std::size_t epoch_stalled = 0;
  for (const auto& ep : result.epochs) epoch_stalled += ep.stalled;
  EXPECT_EQ(epoch_stalled, result.total.reconfig_stalled);
  // After adapting, the final layout must be bigger-partitioned than the
  // initial one.
  auto mean = [](const std::vector<int>& v) {
    double s = 0;
    for (int g : v) s += g;
    return s / static_cast<double>(v.size());
  };
  EXPECT_GT(mean(result.epochs.back().layout),
            mean(result.epochs.front().layout));
}

}  // namespace
}  // namespace pe::online
