// Tests for the multi-model online path: per-model traffic estimation and
// the mixed repartition controller reacting to drift in the *mix*, driven
// end-to-end through the continuous elastic simulator.
#include <gtest/gtest.h>

#include "online/elastic_server.h"
#include "online/repartition_controller.h"
#include "online/traffic_estimator.h"
#include "profile/model_repertoire.h"
#include "sched/elsa.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"
#include "workload/scenario.h"

namespace pe::online {
namespace {

TEST(TrafficEstimatorMix, TracksPerModelSharesAndPmfs) {
  TrafficEstimator est(8);
  for (int i = 0; i < 30; ++i) est.Observe(0, 2);
  for (int i = 0; i < 10; ++i) est.Observe(1, 8);
  EXPECT_EQ(est.count(), 40u);
  EXPECT_EQ(est.ModelCount(0), 30u);
  EXPECT_EQ(est.ModelCount(1), 10u);
  EXPECT_EQ(est.ModelCount(5), 0u);

  const auto shares = est.ModelShares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0], 0.75);
  EXPECT_DOUBLE_EQ(shares[1], 0.25);
  // Padding to a larger model universe.
  EXPECT_EQ(est.ModelShares(4).size(), 4u);

  const auto pmf0 = est.ModelPmf(0);
  EXPECT_DOUBLE_EQ(pmf0[2], 1.0);
  const auto pmf1 = est.ModelPmf(1);
  EXPECT_DOUBLE_EQ(pmf1[8], 1.0);
  // The aggregate PMF blends both models.
  const auto pmf = est.Pmf();
  EXPECT_DOUBLE_EQ(pmf[2], 0.75);
  EXPECT_DOUBLE_EQ(pmf[8], 0.25);

  const auto snap1 = est.ModelSnapshot(1);
  EXPECT_DOUBLE_EQ(snap1.Pdf(8), 1.0);
  EXPECT_THROW(est.ModelSnapshot(3), std::logic_error);
  EXPECT_THROW(est.Observe(-1, 4), std::invalid_argument);
}

TEST(TrafficEstimatorMix, EvictionAndShareDrift) {
  TrafficEstimator est(8, /*window=*/10);
  for (int i = 0; i < 10; ++i) est.Observe(0, 2);
  EXPECT_DOUBLE_EQ(est.ShareDrift({1.0, 0.0}), 0.0);
  // Model 1 floods the window: shares flip, old observations evict.
  for (int i = 0; i < 10; ++i) est.Observe(1, 4);
  EXPECT_EQ(est.ModelCount(0), 0u);
  EXPECT_EQ(est.ModelCount(1), 10u);
  EXPECT_DOUBLE_EQ(est.ShareDrift({1.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(est.ShareDrift({0.0, 1.0}), 0.0);
  est.Clear();
  EXPECT_EQ(est.ModelCount(1), 0u);
  // Empty estimator: shares are all-zero, so drift vs any baseline is
  // half the baseline's mass (same convention as TotalVariation); the
  // controllers never consult it below min_observations.
  EXPECT_DOUBLE_EQ(est.ShareDrift({0.0, 1.0}), 0.5);
}

TEST(TrafficEstimatorMix, LegacySingleArgObserveIsModelZero) {
  TrafficEstimator est(8);
  est.Observe(4);
  EXPECT_EQ(est.ModelCount(0), 1u);
  const auto shares = est.ModelShares();
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_DOUBLE_EQ(shares[0], 1.0);
}

class MixedControllerFixture : public ::testing::Test {
 protected:
  static const profile::ModelRepertoire& Repertoire() {
    static const profile::ModelRepertoire rep =
        profile::BuildZooRepertoire({"resnet", "mobilenet"});
    return rep;
  }

  // 50/50 provisioning guess with moderate batch sizes for both models.
  static MixedRepartitionController MakeController(ElasticConfig config = {}) {
    static const workload::LogNormalBatchDist heavy(6.0, 0.6, 32);
    static const workload::LogNormalBatchDist light(4.0, 0.6, 32);
    workload::MixSpec mix;
    mix.components.push_back({0, 0.5, &heavy});
    mix.components.push_back({1, 0.5, &light});
    return MixedRepartitionController(Repertoire(), hw::Cluster(8), 48, mix,
                                      partition::ParisConfig{}, config);
  }
};

TEST_F(MixedControllerFixture, InitialPlanSplitsBudgetByShares) {
  auto controller = MakeController();
  EXPECT_EQ(controller.current_budgets().size(), 2u);
  EXPECT_EQ(controller.current_budgets()[0], 24);
  EXPECT_EQ(controller.current_budgets()[1], 24);
  EXPECT_LE(controller.current_plan().TotalGpcs(), 48);
  EXPECT_EQ(controller.reconfigurations(), 0);
}

TEST_F(MixedControllerFixture, NoRepartitionWithoutMixDrift) {
  auto controller = MakeController();
  TrafficEstimator est(32);
  workload::LogNormalBatchDist heavy(6.0, 0.6, 32);
  workload::LogNormalBatchDist light(4.0, 0.6, 32);
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    est.Observe(i % 2, (i % 2 == 0 ? heavy : light).Sample(rng));
  }
  EXPECT_LT(controller.DriftOf(est), 0.1);
  EXPECT_FALSE(controller.MaybeRepartition(est).has_value());
}

TEST_F(MixedControllerFixture, ShareDriftAloneTriggersRepartition) {
  ElasticConfig config;
  config.drift_threshold = 0.15;
  auto controller = MakeController(config);
  const auto before = controller.current_budgets();

  // Same per-model batch PMFs, but the mix flips to 90/10: only the
  // share axis drifts.
  TrafficEstimator est(32);
  workload::LogNormalBatchDist heavy(6.0, 0.6, 32);
  workload::LogNormalBatchDist light(4.0, 0.6, 32);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const int model = (i % 10) < 9 ? 0 : 1;
    est.Observe(model, (model == 0 ? heavy : light).Sample(rng));
  }
  EXPECT_GT(controller.DriftOf(est), 0.3);
  const auto plan = controller.MaybeRepartition(est);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(controller.reconfigurations(), 1);
  // The dominant model's budget grew at the other's expense.
  EXPECT_GT(controller.current_budgets()[0], before[0]);
  EXPECT_LT(controller.current_budgets()[1], before[1]);
  // Committed state refreshed: same traffic again is drift-free.
  EXPECT_LT(controller.DriftOf(est), 0.05);
  EXPECT_FALSE(controller.MaybeRepartition(est).has_value());
}

TEST_F(MixedControllerFixture, BelowMinObservationsNeverTriggers) {
  ElasticConfig config;
  config.min_observations = 1000;
  auto controller = MakeController(config);
  TrafficEstimator est(32);
  for (int i = 0; i < 500; ++i) est.Observe(0, 32);  // wildly drifted
  EXPECT_FALSE(controller.MaybeRepartition(est).has_value());
}

// End to end: one continuous multi-model run whose mix flips mid-trace;
// the controller must order at least one live reconfiguration and the
// layout must shift toward the newly dominant model.
TEST_F(MixedControllerFixture, MixDriftDrivesLiveReconfiguration) {
  const auto& rep = Repertoire();
  workload::LogNormalBatchDist heavy(6.0, 0.6, 32);
  workload::LogNormalBatchDist light(4.0, 0.6, 32);

  // Phase 1: 50/50; phase 2: 90/10 toward the heavy model.
  workload::MixSpec balanced;
  balanced.components.push_back({0, 0.5, &heavy});
  balanced.components.push_back({1, 0.5, &light});
  workload::MixSpec skewed;
  skewed.components.push_back({0, 0.9, &heavy});
  skewed.components.push_back({1, 0.1, &light});

  workload::PoissonArrivals arrivals(300.0);
  Rng rng(6);
  workload::MixTraceSource balanced_source(arrivals, balanced);
  const auto phase1 = workload::Take(balanced_source, 3000, rng);
  workload::MixTraceSource skewed_source(arrivals, skewed);
  const auto phase2 = workload::Take(skewed_source, 3000, rng);
  std::vector<workload::Query> all = phase1.queries();
  const SimTime offset = phase1.Span();
  for (workload::Query q : phase2.queries()) {
    q.id += phase1.size();
    q.arrival += offset;
    all.push_back(q);
  }
  const workload::QueryTrace trace(std::move(all));

  ElasticConfig config;
  config.drift_threshold = 0.15;
  config.min_observations = 400;
  auto controller = MakeController(config);
  const auto initial_budgets = controller.current_budgets();

  const SimTime sla = SecToTicks(1.5 * rep.profile(0).LatencySec(7, 32));
  ElasticServerSim sim(
      controller, rep,
      [&] { return std::make_unique<sched::ElsaScheduler>(rep, sla); }, sla,
      /*queries_per_epoch=*/1000, /*seed=*/42);
  const auto result = sim.Run(trace);

  EXPECT_EQ(result.total.completed, trace.size());
  EXPECT_GE(result.reconfigurations, 1);
  EXPECT_GT(result.total.reconfig_stalled, 0u);
  EXPECT_GT(controller.current_budgets()[0], initial_budgets[0]);
  ASSERT_EQ(result.total.models.size(), 2u);
  EXPECT_GT(result.total.models[0].completed,
            result.total.models[1].completed);
}

}  // namespace
}  // namespace pe::online
