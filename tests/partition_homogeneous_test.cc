#include "partition/homogeneous.h"

#include <gtest/gtest.h>

#include <numeric>

namespace pe::partition {
namespace {

TEST(Homogeneous, Gpu1FillsBudget) {
  hw::Cluster cluster(4);  // 28 GPCs
  HomogeneousPartitioner p(1);
  const auto plan = p.Plan(cluster, 24);
  EXPECT_EQ(plan.NumInstances(), 24);
  EXPECT_EQ(plan.TotalGpcs(), 24);
  for (int g : plan.instance_gpcs) EXPECT_EQ(g, 1);
}

TEST(Homogeneous, Gpu7OnePerGpu) {
  hw::Cluster cluster(8);
  HomogeneousPartitioner p(7);
  const auto plan = p.Plan(cluster, 56);
  EXPECT_EQ(plan.NumInstances(), 8);
  EXPECT_EQ(plan.TotalGpcs(), 56);
}

TEST(Homogeneous, Gpu4LimitedByPlacementNotBudget) {
  // Table I's GPU(4) caveat: one GPU(4) per A100, stranding 3 GPCs.
  hw::Cluster cluster(8);
  HomogeneousPartitioner p(4);
  const auto plan = p.Plan(cluster, 56);
  EXPECT_EQ(plan.NumInstances(), 8);   // not 14 = 56/4
  EXPECT_EQ(plan.TotalGpcs(), 32);
}

TEST(Homogeneous, Gpu2ThreePerGpu) {
  hw::Cluster cluster(4);
  HomogeneousPartitioner p(2);
  const auto plan = p.Plan(cluster, 24);
  EXPECT_EQ(plan.NumInstances(), 12);
  EXPECT_EQ(plan.TotalGpcs(), 24);
}

TEST(Homogeneous, Gpu3TwoPerGpu) {
  hw::Cluster cluster(8);
  HomogeneousPartitioner p(3);
  const auto plan = p.Plan(cluster, 48);
  EXPECT_EQ(plan.NumInstances(), 16);
  EXPECT_EQ(plan.TotalGpcs(), 48);
}

TEST(Homogeneous, PaperTable1InstanceCounts) {
  // Table I: ResNet row -- 48 GPU(1), 24 GPU(2), 16 GPU(3), 8 GPU(7).
  hw::Cluster cluster(8);
  EXPECT_EQ(HomogeneousPartitioner(1).Plan(cluster, 48).NumInstances(), 48);
  EXPECT_EQ(HomogeneousPartitioner(2).Plan(cluster, 48).NumInstances(), 24);
  EXPECT_EQ(HomogeneousPartitioner(3).Plan(cluster, 48).NumInstances(), 16);
  EXPECT_EQ(HomogeneousPartitioner(7).Plan(cluster, 56).NumInstances(), 8);
}

TEST(Homogeneous, BudgetSmallerThanClusterRespected) {
  hw::Cluster cluster(8);  // 56 GPCs available
  HomogeneousPartitioner p(7);
  const auto plan = p.Plan(cluster, 42);  // BERT row
  EXPECT_EQ(plan.NumInstances(), 6);
}

TEST(Homogeneous, InvalidSizeThrows) {
  EXPECT_THROW(HomogeneousPartitioner(5), std::invalid_argument);
  EXPECT_THROW(HomogeneousPartitioner(0), std::invalid_argument);
}

TEST(Homogeneous, BudgetBelowOneInstanceThrows) {
  hw::Cluster cluster(1);
  HomogeneousPartitioner p(7);
  EXPECT_THROW(p.Plan(cluster, 3), std::runtime_error);
}

TEST(Homogeneous, NameIncludesSize) {
  EXPECT_EQ(HomogeneousPartitioner(3).name(), "GPU(3)");
}

TEST(PartitionPlan, SummaryGroupsBySize) {
  hw::Cluster cluster(2);
  const auto plan = MakePlan(cluster, {7, 3, 3, 1}, "test");
  EXPECT_EQ(plan.Summary(), "1xGPU(7) 2xGPU(3) 1xGPU(1)");
}

TEST(MakePlan, ThrowsWhenInfeasible) {
  hw::Cluster cluster(1);
  EXPECT_THROW(MakePlan(cluster, {7, 7}, "too big"), std::runtime_error);
}

}  // namespace
}  // namespace pe::partition
