// Tests for multi-model PARIS: share-derived GPC budgets and the packed
// union layout, including the single-model degenerate identity.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "partition/mix.h"
#include "partition/paris.h"
#include "profile/model_repertoire.h"
#include "workload/batch_dist.h"

namespace pe::partition {
namespace {

class MixFixture : public ::testing::Test {
 protected:
  static const profile::ModelRepertoire& Repertoire() {
    static const profile::ModelRepertoire rep =
        profile::BuildZooRepertoire({"resnet", "mobilenet"});
    return rep;
  }
};

TEST(ShareBudgets, LargestRemainderSumsExactly) {
  EXPECT_EQ(ShareBudgets({0.5, 0.5}, 48), (std::vector<int>{24, 24}));
  EXPECT_EQ(ShareBudgets({0.6, 0.4}, 48), (std::vector<int>{29, 19}));
  // Unnormalized weights are fine.
  EXPECT_EQ(ShareBudgets({3.0, 1.0}, 8), (std::vector<int>{6, 2}));
  const auto split = ShareBudgets({0.21, 0.33, 0.46}, 48);
  EXPECT_EQ(std::accumulate(split.begin(), split.end(), 0), 48);
}

TEST(ShareBudgets, PositiveShareGetsAtLeastOneGpc) {
  const auto budgets = ShareBudgets({0.99, 0.01}, 10);
  EXPECT_EQ(budgets, (std::vector<int>{9, 1}));
  // Zero shares stay at zero.
  EXPECT_EQ(ShareBudgets({1.0, 0.0}, 10), (std::vector<int>{10, 0}));
}

TEST(ShareBudgets, RejectsDegenerateInputs) {
  EXPECT_THROW(ShareBudgets({}, 10), std::invalid_argument);
  EXPECT_THROW(ShareBudgets({0.5}, 0), std::invalid_argument);
  EXPECT_THROW(ShareBudgets({-0.1, 1.1}, 10), std::invalid_argument);
  EXPECT_THROW(ShareBudgets({0.0, 0.0}, 10), std::invalid_argument);
}

TEST_F(MixFixture, UnionPacksWithinBudget) {
  const auto& rep = Repertoire();
  workload::LogNormalBatchDist heavy(6.0, 0.9, 32);
  workload::LogNormalBatchDist light(4.0, 0.9, 32);
  std::vector<MixModelInput> inputs;
  inputs.push_back({0, 0.6, &rep.profile(0), &heavy});
  inputs.push_back({1, 0.4, &rep.profile(1), &light});
  const hw::Cluster cluster(8);
  const auto mixed = PlanMixedParis(inputs, cluster, 48);

  ASSERT_EQ(mixed.budgets.size(), 2u);
  EXPECT_EQ(mixed.budgets[0] + mixed.budgets[1], 48);
  EXPECT_EQ(mixed.budgets[0], 29);
  EXPECT_LE(mixed.plan.TotalGpcs(), 48);
  EXPECT_GT(mixed.plan.NumInstances(), 0);

  // Each model's multiset fits its own budget, and the union is exactly
  // the concatenation (possibly re-ordered / split-repaired by packing).
  int union_gpcs = 0;
  for (std::size_t m = 0; m < mixed.per_model_sizes.size(); ++m) {
    const auto& sizes = mixed.per_model_sizes[m];
    const int total = std::accumulate(sizes.begin(), sizes.end(), 0);
    EXPECT_LE(total, mixed.budgets[m]);
    EXPECT_FALSE(sizes.empty());
    union_gpcs += total;
  }
  EXPECT_EQ(mixed.plan.TotalGpcs(), union_gpcs);
}

TEST_F(MixFixture, SingleModelDegeneratesToPlainParis) {
  const auto& rep = Repertoire();
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  const hw::Cluster cluster(8);

  std::vector<MixModelInput> inputs;
  inputs.push_back({0, 1.0, &rep.profile(0), &dist});
  const auto mixed = PlanMixedParis(inputs, cluster, 48);

  ParisPartitioner paris(rep.profile(0), dist);
  const auto plain = paris.Plan(cluster, 48);

  auto sorted = [](std::vector<int> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(mixed.plan.instance_gpcs), sorted(plain.instance_gpcs));
  EXPECT_EQ(mixed.budgets, (std::vector<int>{48}));
}

TEST_F(MixFixture, RejectsNullInputsAndEmptyMix) {
  const hw::Cluster cluster(8);
  EXPECT_THROW(PlanMixedParis({}, cluster, 48), std::invalid_argument);
  std::vector<MixModelInput> inputs;
  inputs.push_back({0, 1.0, nullptr, nullptr});
  EXPECT_THROW(PlanMixedParis(inputs, cluster, 48), std::invalid_argument);
}

}  // namespace
}  // namespace pe::partition
