#include "partition/paris.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "hw/mig.h"
#include "perf/model_zoo.h"
#include "profile/profiler.h"

namespace pe::partition {
namespace {

// The paper's Figure 8 driving example, reconstructed exactly:
// two partition sizes (small = 1 GPC, large = 7 GPCs for concreteness),
// knees B1 = 2 and B2 = 4, batch PDF {0.2, 0.2, 0.4, 0.2}, and throughputs
// small: {40, 20} q/s for batches 1/2; large: {30, 20} q/s for batches 3/4.
profile::ProfileTable Figure8Profile() {
  profile::ProfileTable t("fig8", {1, 7}, {1, 2, 3, 4});
  // Utilization chosen so the absolute 0.8 knee lands at B1=2, B2=4.
  t.Set(1, 1, {1.0 / 40.0, 0.5});
  t.Set(1, 2, {1.0 / 20.0, 0.85});
  t.Set(1, 3, {1.0 / 15.0, 0.9});
  t.Set(1, 4, {1.0 / 10.0, 0.95});
  t.Set(7, 1, {1.0 / 60.0, 0.2});
  t.Set(7, 2, {1.0 / 50.0, 0.4});
  t.Set(7, 3, {1.0 / 30.0, 0.6});
  t.Set(7, 4, {1.0 / 20.0, 0.85});
  return t;
}

TEST(Paris, Figure8RatiosMatchPaper) {
  const auto profile = Figure8Profile();
  workload::EmpiricalBatchDist dist({20, 20, 40, 20});
  ParisConfig config;
  config.knee_mode = profile::KneeMode::kAbsolute;
  ParisPartitioner paris(profile, dist, config);
  const auto d = paris.Derive(14);

  ASSERT_EQ(d.partition_sizes, (std::vector<int>{1, 7}));
  EXPECT_EQ(d.knees[0], 2);
  EXPECT_EQ(d.knees[1], 4);
  // Paper: small GPU demand = 20/40 + 20/20 per 100 queries = 1.5 GPUs;
  // here normalized per query: 0.2/40 + 0.2/20 = 0.015.
  EXPECT_NEAR(d.ratios[0], 0.2 / 40 + 0.2 / 20, 1e-12);
  // Large GPU: 0.4/30 + 0.2/20 = 0.0233... (paper's "2.3 large GPUs" per
  // 100 queries).
  EXPECT_NEAR(d.ratios[1], 0.4 / 30 + 0.2 / 20, 1e-12);
  // The paper's ratio 1.5 : 2.3.
  EXPECT_NEAR(d.ratios[1] / d.ratios[0], 2.3333 / 1.5, 1e-3);
}

TEST(Paris, InstanceCountsRespectBudget) {
  const auto profile = Figure8Profile();
  workload::EmpiricalBatchDist dist({20, 20, 40, 20});
  ParisConfig config;
  config.knee_mode = profile::KneeMode::kAbsolute;
  ParisPartitioner paris(profile, dist, config);
  for (int budget : {7, 14, 21, 28, 56}) {
    const auto d = paris.Derive(budget);
    int used = 0;
    for (std::size_t k = 0; k < d.instances.size(); ++k) {
      used += d.instances[k] * d.partition_sizes[k];
    }
    EXPECT_LE(used, budget) << "budget " << budget;
    EXPECT_GT(std::accumulate(d.instances.begin(), d.instances.end(), 0), 0);
  }
}

TEST(Paris, ZeroMassSegmentsGetNoInstances) {
  const auto profile = Figure8Profile();
  // All traffic is batch 1-2: the large partition's segment is empty.
  workload::EmpiricalBatchDist dist({50, 50, 0, 0});
  ParisConfig config;
  config.knee_mode = profile::KneeMode::kAbsolute;
  ParisPartitioner paris(profile, dist, config);
  const auto d = paris.Derive(14);
  EXPECT_GT(d.instances[0], 0);
  EXPECT_EQ(d.ratios[1], 0.0);
}

TEST(Paris, InvalidBudgetThrows) {
  const auto profile = Figure8Profile();
  workload::EmpiricalBatchDist dist({1, 1, 1, 1});
  ParisPartitioner paris(profile, dist);
  EXPECT_THROW(paris.Derive(0), std::invalid_argument);
}

TEST(Paris, PlanPacksOntoCluster) {
  const auto profile = Figure8Profile();
  workload::EmpiricalBatchDist dist({20, 20, 40, 20});
  ParisConfig config;
  config.knee_mode = profile::KneeMode::kAbsolute;
  ParisPartitioner paris(profile, dist, config);
  hw::Cluster cluster(4);
  const auto plan = paris.Plan(cluster, 28);
  EXPECT_LE(plan.TotalGpcs(), 28);
  EXPECT_GT(plan.NumInstances(), 0);
  for (const auto& gpu : plan.layout.per_gpu) {
    EXPECT_TRUE(hw::MigLayout::CanPlaceAll(gpu));
  }
  EXPECT_NE(plan.rationale.find("PARIS"), std::string::npos);
}

// --- End-to-end behaviour on the real model zoo ------------------------

class ParisModelTest : public ::testing::TestWithParam<const char*> {
 protected:
  static profile::ProfileTable ProfileFor(const std::string& name) {
    profile::Profiler profiler;
    return profiler.Profile(perf::BuildModelByName(name),
                            profile::ProfilerConfig::Default(64));
  }
};

TEST_P(ParisModelTest, BudgetNeverExceededAndPlacementValid) {
  const auto profile = ProfileFor(GetParam());
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  ParisPartitioner paris(profile, dist);
  hw::Cluster cluster(8);
  for (int budget : {14, 24, 42, 48, 56}) {
    const auto plan = paris.Plan(cluster, budget);
    EXPECT_LE(plan.TotalGpcs(), budget);
    // PARIS should strand at most a couple of GPCs.
    EXPECT_GE(plan.TotalGpcs(), budget - 2);
    for (const auto& gpu : plan.layout.per_gpu) {
      EXPECT_TRUE(hw::MigLayout::CanPlaceAll(gpu));
    }
  }
}

TEST_P(ParisModelTest, KneesMonotoneInPartitionSize) {
  const auto profile = ProfileFor(GetParam());
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  ParisPartitioner paris(profile, dist);
  const auto d = paris.Derive(48);
  for (std::size_t k = 1; k < d.knees.size(); ++k) {
    EXPECT_LE(d.knees[k - 1], d.knees[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ParisModelTest,
                         ::testing::Values("shufflenet", "mobilenet",
                                           "resnet", "bert", "conformer"));

TEST(Paris, BertPrefersLargerPartitionsThanMobilenet) {
  // The paper's headline qualitative claim: compute-hungry BERT gets big
  // partitions; lightweight MobileNet gets small ones.
  profile::Profiler profiler;
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  hw::Cluster cluster(8);

  const auto bert_profile = profiler.Profile(
      perf::BuildBertBase(), profile::ProfilerConfig::Default(64));
  ParisPartitioner bert_paris(bert_profile, dist);
  const auto bert_plan = bert_paris.Plan(cluster, 42);

  const auto mobile_profile = profiler.Profile(
      perf::BuildMobileNetV1(), profile::ProfilerConfig::Default(64));
  ParisPartitioner mobile_paris(mobile_profile, dist);
  const auto mobile_plan = mobile_paris.Plan(cluster, 24);

  auto mean_size = [](const PartitionPlan& p) {
    return static_cast<double>(p.TotalGpcs()) / p.NumInstances();
  };
  EXPECT_GT(mean_size(bert_plan), 1.4 * mean_size(mobile_plan));
  // BERT puts the majority of its GPCs into large (>= 4 GPC) partitions;
  // MobileNet does not.
  auto large_share = [](const PartitionPlan& p) {
    int large = 0;
    for (int g : p.instance_gpcs) {
      if (g >= 4) large += g;
    }
    return static_cast<double>(large) / p.TotalGpcs();
  };
  EXPECT_GT(large_share(bert_plan), 0.5);
  EXPECT_LT(large_share(mobile_plan), 0.5);
  // BERT's plan must contain at least one GPU(7); MobileNet's none.
  EXPECT_NE(std::find(bert_plan.instance_gpcs.begin(),
                      bert_plan.instance_gpcs.end(), 7),
            bert_plan.instance_gpcs.end());
}

TEST(Paris, EveryTrafficSegmentKeepsAnInstance) {
  // Segment-coverage guarantee: a segment with nonzero PDF mass must keep
  // at least one instance even when largest-remainder rounding would zero
  // it (the big-batch tail's R_k is tiny because large partitions are
  // fast, yet its queries have nowhere else to meet SLA).
  profile::Profiler profiler;
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  for (const char* name : {"mobilenet", "resnet", "conformer"}) {
    const auto profile = profiler.Profile(perf::BuildModelByName(name),
                                          profile::ProfilerConfig::Default(64));
    ParisPartitioner paris(profile, dist);
    const auto d = paris.Derive(48);
    for (std::size_t k = 0; k < d.ratios.size(); ++k) {
      if (d.ratios[k] > 0.0) {
        EXPECT_GT(d.instances[k], 0)
            << name << " GPU(" << d.partition_sizes[k] << ")";
      }
    }
  }
}

TEST(Paris, WiderDistributionYieldsMoreDistinctSizes) {
  // Figure 13(a) intuition: a wider batch distribution favors a more
  // heterogeneous partitioning.
  profile::Profiler profiler;
  const auto profile = profiler.Profile(perf::BuildResNet50(),
                                        profile::ProfilerConfig::Default(64));
  hw::Cluster cluster(8);

  workload::LogNormalBatchDist narrow(6.0, 0.3, 32);
  workload::LogNormalBatchDist wide(6.0, 1.8, 32);
  ParisPartitioner p_narrow(profile, narrow);
  ParisPartitioner p_wide(profile, wide);
  auto distinct = [](const PartitionPlan& p) {
    return std::set<int>(p.instance_gpcs.begin(), p.instance_gpcs.end())
        .size();
  };
  EXPECT_GE(distinct(p_wide.Plan(cluster, 48)),
            distinct(p_narrow.Plan(cluster, 48)));
}

}  // namespace
}  // namespace pe::partition
