#include "partition/random_partition.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "hw/mig.h"

namespace pe::partition {
namespace {

TEST(Random, ConsumesFullBudget) {
  hw::Cluster cluster(8);
  RandomPartitioner p(123);
  const auto plan = p.Plan(cluster, 48);
  EXPECT_EQ(plan.TotalGpcs(), 48);
}

TEST(Random, DeterministicPerSeed) {
  hw::Cluster cluster(4);
  RandomPartitioner a(7), b(7);
  EXPECT_EQ(a.Plan(cluster, 24).instance_gpcs,
            b.Plan(cluster, 24).instance_gpcs);
}

TEST(Random, DifferentSeedsGiveDifferentLayouts) {
  hw::Cluster cluster(8);
  std::set<std::vector<int>> layouts;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    RandomPartitioner p(seed);
    layouts.insert(p.Plan(cluster, 48).instance_gpcs);
  }
  EXPECT_GT(layouts.size(), 4u);
}

TEST(Random, ProducesHeterogeneousMixesSometimes) {
  // Across seeds, at least one plan must contain two distinct sizes
  // (otherwise "Random heterogeneous" would be mislabeled).
  hw::Cluster cluster(8);
  bool heterogeneous = false;
  for (std::uint64_t seed = 0; seed < 8 && !heterogeneous; ++seed) {
    RandomPartitioner p(seed);
    const auto sizes = p.Plan(cluster, 48).instance_gpcs;
    heterogeneous = std::set<int>(sizes.begin(), sizes.end()).size() > 1;
  }
  EXPECT_TRUE(heterogeneous);
}

TEST(Random, EveryGpuLayoutIsMigValid) {
  hw::Cluster cluster(8);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RandomPartitioner p(seed);
    const auto plan = p.Plan(cluster, 48);
    for (const auto& gpu : plan.layout.per_gpu) {
      EXPECT_TRUE(hw::MigLayout::CanPlaceAll(gpu))
          << "seed " << seed;
    }
  }
}

TEST(Random, SmallBudget) {
  hw::Cluster cluster(1);
  RandomPartitioner p(3);
  const auto plan = p.Plan(cluster, 3);
  EXPECT_EQ(plan.TotalGpcs(), 3);
}

TEST(Random, BudgetClampedToCluster) {
  hw::Cluster cluster(1);  // 7 GPCs
  RandomPartitioner p(5);
  const auto plan = p.Plan(cluster, 1000);
  EXPECT_EQ(plan.TotalGpcs(), 7);
}

}  // namespace
}  // namespace pe::partition
