// Tests for the extension models (GPT-2, DLRM) and their behaviour through
// the full profiling + PARIS pipeline -- generalization beyond the paper's
// five benchmarks.
#include <gtest/gtest.h>

#include "hw/mig.h"
#include "partition/paris.h"
#include "perf/model_zoo.h"
#include "perf/roofline.h"
#include "profile/profiler.h"
#include "workload/batch_dist.h"

namespace pe::perf {
namespace {

TEST(Gpt2, FlopsComparableToTransformerMath) {
  // ~2 * 85M params * 256 tokens plus attention and the LM head.
  const auto m = BuildGpt2Small(256);
  const double f = m.TotalFlopsPerSample();
  EXPECT_GT(f, 30e9);
  EXPECT_LT(f, 80e9);
}

TEST(Gpt2, ScalesWithSequenceLength) {
  EXPECT_GT(BuildGpt2Small(512).TotalFlopsPerSample(),
            1.9 * BuildGpt2Small(256).TotalFlopsPerSample());
}

TEST(Gpt2, HighIntensityLikeBert) {
  const auto gpt2 = BuildGpt2Small();
  const auto mobilenet = BuildMobileNetV1();
  EXPECT_GT(gpt2.ArithmeticIntensity(8), mobilenet.ArithmeticIntensity(8));
}

TEST(Dlrm, ExtremelyLowIntensity) {
  const auto dlrm = BuildDlrm();
  // flops/byte far below every paper model.
  for (const auto& m : BuildPaperModels()) {
    EXPECT_LT(dlrm.ArithmeticIntensity(8), m.ArithmeticIntensity(8))
        << m.name();
  }
}

TEST(Dlrm, TinyPerQueryLatency) {
  RooflineEngine engine;
  const auto dlrm = BuildDlrm();
  // Milliseconds even at batch 64 on the smallest partition -- orders of
  // magnitude below the CNN/transformer models at the same point.
  EXPECT_LT(engine.LatencySec(dlrm, 1, 64), 15e-3);
  EXPECT_LT(engine.LatencySec(dlrm, 1, 64),
            0.2 * engine.LatencySec(BuildMobileNetV1(), 1, 64));
}

TEST(ExtensionModels, UtilizationCurvesStillSaturate) {
  RooflineEngine engine;
  for (const auto& m : {BuildGpt2Small(), BuildDlrm()}) {
    EXPECT_GT(engine.Utilization(m, 1, 64), engine.Utilization(m, 1, 1))
        << m.name();
    EXPECT_GT(engine.Utilization(m, 1, 8), engine.Utilization(m, 7, 8))
        << m.name();
  }
}

TEST(ExtensionModels, ParisPipelineWorksEndToEnd) {
  profile::Profiler profiler;
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  hw::Cluster cluster(8);
  for (const auto& m : {BuildGpt2Small(), BuildDlrm()}) {
    const auto table =
        profiler.Profile(m, profile::ProfilerConfig::Default(64));
    partition::ParisPartitioner paris(table, dist);
    const auto plan = paris.Plan(cluster, 48);
    EXPECT_GT(plan.NumInstances(), 0) << m.name();
    EXPECT_LE(plan.TotalGpcs(), 48) << m.name();
    for (const auto& gpu : plan.layout.per_gpu) {
      EXPECT_TRUE(hw::MigLayout::CanPlaceAll(gpu)) << m.name();
    }
  }
}

TEST(ExtensionModels, OppositeEndsGetOppositePlans) {
  // GPT-2 (compute heavy) must receive a larger mean partition size than
  // DLRM (memory-only lookups + tiny MLPs).
  profile::Profiler profiler;
  workload::LogNormalBatchDist dist(6.0, 0.9, 32);
  hw::Cluster cluster(8);
  auto mean_size = [&](const DnnModel& m) {
    const auto table =
        profiler.Profile(m, profile::ProfilerConfig::Default(64));
    partition::ParisPartitioner paris(table, dist);
    const auto plan = paris.Plan(cluster, 48);
    return static_cast<double>(plan.TotalGpcs()) / plan.NumInstances();
  };
  EXPECT_GT(mean_size(BuildGpt2Small()), mean_size(BuildDlrm()));
}

}  // namespace
}  // namespace pe::perf
