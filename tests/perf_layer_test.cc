#include "perf/layer.h"

#include <gtest/gtest.h>

namespace pe::perf {
namespace {

constexpr double kDtype = 4.0;

TEST(Conv2d, FlopsAndBytes) {
  // 8x8x16 input, 32 filters of 3x3, stride 1.
  const Layer l = Conv2d("c", 8, 8, 16, 32, 3, 3, 1, kDtype);
  EXPECT_EQ(l.kind, LayerKind::kConv);
  EXPECT_DOUBLE_EQ(l.flops_per_sample, 2.0 * 32 * 16 * 3 * 3 * 8 * 8);
  EXPECT_DOUBLE_EQ(l.weight_bytes, 32.0 * 16 * 3 * 3 * kDtype);
  EXPECT_DOUBLE_EQ(l.io_bytes_per_sample,
                   (8.0 * 8 * 16 + 8.0 * 8 * 32) * kDtype);
  EXPECT_DOUBLE_EQ(l.gemm_m_per_sample, 64.0);
  EXPECT_DOUBLE_EQ(l.gemm_n, 32.0);
}

TEST(Conv2d, StrideShrinksOutput) {
  const Layer l = Conv2d("c", 224, 224, 3, 32, 3, 3, 2, kDtype);
  EXPECT_DOUBLE_EQ(l.gemm_m_per_sample, 112.0 * 112.0);
  EXPECT_DOUBLE_EQ(l.flops_per_sample, 2.0 * 32 * 3 * 3 * 3 * 112 * 112);
}

TEST(DepthwiseConv2d, FlopsScaleWithChannelsNotSquared) {
  const Layer dw = DepthwiseConv2d("dw", 14, 14, 256, 3, 3, 1, kDtype);
  EXPECT_EQ(dw.kind, LayerKind::kDepthwiseConv);
  EXPECT_DOUBLE_EQ(dw.flops_per_sample, 2.0 * 256 * 3 * 3 * 14 * 14);
  // Dense conv over the same shape does C times more work.
  const Layer dense = Conv2d("c", 14, 14, 256, 256, 3, 3, 1, kDtype);
  EXPECT_DOUBLE_EQ(dense.flops_per_sample, dw.flops_per_sample * 256.0);
}

TEST(DepthwiseConv2d, LowArithmeticIntensity) {
  const Layer dw = DepthwiseConv2d("dw", 56, 56, 128, 3, 3, 1, kDtype);
  const double intensity = dw.flops_per_sample / dw.io_bytes_per_sample;
  EXPECT_LT(intensity, 4.0);  // heavily memory-bound by construction
}

TEST(Linear, TokensMultiplyWork) {
  const Layer fc = Linear("fc", 1, 1024, 1000, kDtype);
  EXPECT_DOUBLE_EQ(fc.flops_per_sample, 2.0 * 1024 * 1000);
  const Layer seq = Linear("proj", 128, 768, 768, kDtype);
  EXPECT_DOUBLE_EQ(seq.flops_per_sample, 2.0 * 128 * 768 * 768);
  EXPECT_DOUBLE_EQ(seq.gemm_m_per_sample, 128.0);
  EXPECT_DOUBLE_EQ(seq.weight_bytes, 768.0 * 768 * kDtype);
}

TEST(Attention, ScoresAndContextSameFlops) {
  const Layer s = AttentionScores("s", 128, 64, 12, kDtype);
  const Layer c = AttentionContext("c", 128, 64, 12, kDtype);
  EXPECT_DOUBLE_EQ(s.flops_per_sample, c.flops_per_sample);
  EXPECT_DOUBLE_EQ(s.flops_per_sample, 2.0 * 128 * 128 * 64 * 12);
  EXPECT_EQ(s.groups, 12);
  EXPECT_EQ(c.groups, 12);
  EXPECT_DOUBLE_EQ(s.weight_bytes, 0.0);
}

TEST(Attention, GeometryDiffers) {
  const Layer s = AttentionScores("s", 128, 64, 12, kDtype);
  const Layer c = AttentionContext("c", 128, 64, 12, kDtype);
  EXPECT_DOUBLE_EQ(s.gemm_n, 128.0);  // seq x seq output
  EXPECT_DOUBLE_EQ(c.gemm_n, 64.0);   // seq x d_head output
}

TEST(Elementwise, FlopsAndIo) {
  const Layer l = Elementwise("relu", 1000.0, 1.0, kDtype);
  EXPECT_DOUBLE_EQ(l.flops_per_sample, 1000.0);
  EXPECT_DOUBLE_EQ(l.io_bytes_per_sample, 2.0 * 1000.0 * kDtype);
  EXPECT_EQ(l.kind, LayerKind::kElementwise);
}

TEST(Pool2d, GlobalPoolOutputsOnePixel) {
  const Layer l = Pool2d("gap", 7, 7, 1024, 7, 7, 7, kDtype);
  EXPECT_EQ(l.kind, LayerKind::kPool);
  // Output is 1x1x1024; io = input + output.
  EXPECT_DOUBLE_EQ(l.io_bytes_per_sample, (7.0 * 7 * 1024 + 1024.0) * kDtype);
}

TEST(MemoryOp, PureTrafficOp) {
  const Layer l = MemoryOp("shuffle", 4096.0);
  EXPECT_EQ(l.kind, LayerKind::kMemoryOp);
  EXPECT_DOUBLE_EQ(l.io_bytes_per_sample, 4096.0);
  EXPECT_GT(l.flops_per_sample, 0.0);  // address arithmetic only
  EXPECT_LT(l.flops_per_sample, l.io_bytes_per_sample);
}

TEST(LayerKind, NamesAreStable) {
  EXPECT_STREQ(ToString(LayerKind::kConv), "conv");
  EXPECT_STREQ(ToString(LayerKind::kDepthwiseConv), "dwconv");
  EXPECT_STREQ(ToString(LayerKind::kGemm), "gemm");
  EXPECT_STREQ(ToString(LayerKind::kAttention), "attention");
  EXPECT_STREQ(ToString(LayerKind::kMemoryOp), "memory");
}

}  // namespace
}  // namespace pe::perf
