#include "perf/model_zoo.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pe::perf {
namespace {

TEST(ModelZoo, FiveModelsInPaperOrder) {
  const auto models = BuildPaperModels();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models[0].name(), "shufflenet");
  EXPECT_EQ(models[1].name(), "mobilenet");
  EXPECT_EQ(models[2].name(), "resnet");
  EXPECT_EQ(models[3].name(), "bert");
  EXPECT_EQ(models[4].name(), "conformer");
}

TEST(ModelZoo, LookupByName) {
  EXPECT_EQ(BuildModelByName("resnet").name(), "resnet");
  EXPECT_THROW(BuildModelByName("vgg"), std::invalid_argument);
}

TEST(ModelZoo, IntensityClassesMatchPaper) {
  EXPECT_EQ(IntensityOf("shufflenet"), ComputeIntensity::kLow);
  EXPECT_EQ(IntensityOf("mobilenet"), ComputeIntensity::kLow);
  EXPECT_EQ(IntensityOf("resnet"), ComputeIntensity::kMedium);
  EXPECT_EQ(IntensityOf("conformer"), ComputeIntensity::kMedium);
  EXPECT_EQ(IntensityOf("bert"), ComputeIntensity::kHigh);
  EXPECT_THROW(IntensityOf("vgg"), std::invalid_argument);
}

TEST(ModelZoo, FlopsOrderingMatchesIntensityNarrative) {
  // ShuffleNet < MobileNet < ResNet; BERT is the heaviest.
  const double shuffle = BuildShuffleNetV2().TotalFlopsPerSample();
  const double mobile = BuildMobileNetV1().TotalFlopsPerSample();
  const double resnet = BuildResNet50().TotalFlopsPerSample();
  const double bert = BuildBertBase().TotalFlopsPerSample();
  EXPECT_LT(shuffle, mobile);
  EXPECT_LT(mobile, resnet);
  EXPECT_LT(resnet, bert);
}

TEST(ModelZoo, MobileNetFlopsInKnownRange) {
  // MobileNetV1 is ~1.1 GFLOPs (2x 0.57 GMACs) for 224x224.
  const double f = BuildMobileNetV1().TotalFlopsPerSample();
  EXPECT_GT(f, 0.9e9);
  EXPECT_LT(f, 1.6e9);
}

TEST(ModelZoo, ResNet50FlopsInKnownRange) {
  // ResNet-50 is ~8.2 GFLOPs (2x 4.1 GMACs).
  const double f = BuildResNet50().TotalFlopsPerSample();
  EXPECT_GT(f, 7.0e9);
  EXPECT_LT(f, 10.0e9);
}

TEST(ModelZoo, ShuffleNetFlopsInKnownRange) {
  // ShuffleNetV2 1.0x is ~0.3 GFLOPs of conv work; with head conv5 and
  // eager-mode extras it stays well under a GFLOP.
  const double f = BuildShuffleNetV2().TotalFlopsPerSample();
  EXPECT_GT(f, 0.2e9);
  EXPECT_LT(f, 1.0e9);
}

TEST(ModelZoo, BertParamsInKnownRange) {
  // BERT-base encoder weights ~85M params x 4 bytes (embeddings are a
  // lookup, not dense weights here).
  const double w = BuildBertBase().TotalWeightBytes();
  EXPECT_GT(w, 70e6 * 4);
  EXPECT_LT(w, 110e6 * 4);
}

TEST(ModelZoo, BertFlopsScaleWithSeqLen) {
  const double f128 = BuildBertBase(128).TotalFlopsPerSample();
  const double f384 = BuildBertBase(384).TotalFlopsPerSample();
  EXPECT_GT(f384, 2.9 * f128);  // superlinear: attention term is quadratic
}

TEST(ModelZoo, ResNetLayerCountReflectsEagerMode) {
  // 53 convs + bn/relu/residual kernels: well over 100 launches.
  const auto m = BuildResNet50();
  EXPECT_GT(m.num_layers(), 120u);
  EXPECT_LT(m.num_layers(), 260u);
}

TEST(ModelZoo, MobileNetHasDepthwiseLayers) {
  const auto m = BuildMobileNetV1();
  int dw = 0;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kDepthwiseConv) ++dw;
  }
  EXPECT_EQ(dw, 13);
}

TEST(ModelZoo, ConformerHasMacaronStructure) {
  const auto m = BuildConformer();
  int attention = 0, dwconv = 0;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kAttention) ++attention;
    if (l.kind == LayerKind::kDepthwiseConv) ++dwconv;
  }
  EXPECT_EQ(attention, 2 * 17);  // scores + context per block
  EXPECT_EQ(dwconv, 17);
}

TEST(ModelZoo, AllLayersHaveNonNegativeCosts) {
  for (const auto& m : BuildPaperModels()) {
    for (const auto& l : m.layers()) {
      EXPECT_GE(l.flops_per_sample, 0.0) << m.name() << ":" << l.name;
      EXPECT_GE(l.weight_bytes, 0.0) << m.name() << ":" << l.name;
      EXPECT_GT(l.io_bytes_per_sample, 0.0) << m.name() << ":" << l.name;
      EXPECT_GE(l.gemm_m_per_sample, 0.0) << m.name() << ":" << l.name;
      EXPECT_GE(l.gemm_n, 1.0) << m.name() << ":" << l.name;
      EXPECT_GE(l.groups, 1) << m.name() << ":" << l.name;
    }
  }
}

TEST(ModelZoo, ArithmeticIntensityGrowsWithBatch) {
  // Weights amortize across the batch, so flops/byte must be
  // non-decreasing in batch size.
  for (const auto& m : BuildPaperModels()) {
    EXPECT_GT(m.ArithmeticIntensity(32), m.ArithmeticIntensity(1))
        << m.name();
  }
}

TEST(ModelZoo, BertIntensityHighest) {
  const auto models = BuildPaperModels();
  const double bert = models[3].ArithmeticIntensity(8);
  for (const auto& m : models) {
    if (m.name() == "bert") continue;
    EXPECT_GT(bert, m.ArithmeticIntensity(8)) << m.name();
  }
}

}  // namespace
}  // namespace pe::perf
