#include "perf/roofline.h"

#include <gtest/gtest.h>

#include <tuple>

#include "perf/model_zoo.h"

namespace pe::perf {
namespace {

class RooflineFixture : public ::testing::Test {
 protected:
  RooflineEngine engine_;
};

TEST_F(RooflineFixture, LatencyPositiveAndFinite) {
  const auto m = BuildResNet50();
  for (int g : {1, 2, 3, 4, 7}) {
    for (int b : {1, 8, 64}) {
      const double t = engine_.LatencySec(m, g, b);
      EXPECT_GT(t, 0.0);
      EXPECT_LT(t, 10.0);
    }
  }
}

TEST_F(RooflineFixture, LatencyMonotoneInBatch) {
  for (const auto& m : BuildPaperModels()) {
    for (int g : {1, 3, 7}) {
      double prev = 0.0;
      for (int b = 1; b <= 64; b *= 2) {
        const double t = engine_.LatencySec(m, g, b);
        EXPECT_GT(t, prev) << m.name() << " gpcs=" << g << " b=" << b;
        prev = t;
      }
    }
  }
}

TEST_F(RooflineFixture, LatencyMonotoneInPartitionSize) {
  // Bigger partitions are never slower.
  for (const auto& m : BuildPaperModels()) {
    for (int b : {1, 8, 32}) {
      double prev = 1e9;
      for (int g : {1, 2, 3, 4, 7}) {
        const double t = engine_.LatencySec(m, g, b);
        EXPECT_LE(t, prev * 1.0001) << m.name() << " gpcs=" << g << " b=" << b;
        prev = t;
      }
    }
  }
}

TEST_F(RooflineFixture, UtilizationInUnitInterval) {
  for (const auto& m : BuildPaperModels()) {
    for (int g : {1, 2, 3, 4, 7}) {
      for (int b : {1, 4, 16, 64}) {
        const double u = engine_.Utilization(m, g, b);
        EXPECT_GE(u, 0.0) << m.name();
        EXPECT_LE(u, 1.0) << m.name();
      }
    }
  }
}

TEST_F(RooflineFixture, UtilizationRisesWithBatch) {
  for (const auto& m : BuildPaperModels()) {
    for (int g : {1, 7}) {
      EXPECT_GT(engine_.Utilization(m, g, 64), engine_.Utilization(m, g, 1))
          << m.name() << " gpcs=" << g;
    }
  }
}

TEST_F(RooflineFixture, SmallPartitionsSaturateEarlier) {
  // Paper Figure 4(a): at a small-to-medium batch, GPU(1) utilization
  // exceeds GPU(7) utilization for every model.
  for (const auto& m : BuildPaperModels()) {
    EXPECT_GT(engine_.Utilization(m, 1, 8), engine_.Utilization(m, 7, 8))
        << m.name();
  }
}

TEST_F(RooflineFixture, BertPunishedMostBySmallPartitions) {
  // Paper Figure 3: the latency blow-up from GPU(7) -> GPU(1) at batch 8 is
  // largest for BERT, smallest for the lightweight models.
  auto ratio = [&](const DnnModel& m) {
    return engine_.LatencySec(m, 1, 8) / engine_.LatencySec(m, 7, 8);
  };
  const double mobilenet = ratio(BuildMobileNetV1());
  const double resnet = ratio(BuildResNet50());
  const double bert = ratio(BuildBertBase());
  EXPECT_GT(bert, resnet);
  EXPECT_GT(resnet, mobilenet);
  EXPECT_GT(bert, 3.0);       // compute-bound: close to the 7x compute gap
  EXPECT_LT(mobilenet, 3.0);  // host/overhead compressed
}

TEST_F(RooflineFixture, GpuTimeExcludesHostCosts) {
  const auto m = BuildResNet50();
  const auto t = engine_.Time(m, 7, 8);
  const double host = engine_.params().host_fixed_sec +
                      8 * engine_.params().host_per_sample_sec;
  EXPECT_NEAR(t.latency_sec, t.gpu_sec + host, 1e-12);
}

TEST_F(RooflineFixture, BreakdownSumsToGpuTime) {
  const auto m = BuildMobileNetV1();
  const auto t = engine_.Time(m, 3, 4);
  const auto breakdown = engine_.Breakdown(m, 3, 4);
  ASSERT_EQ(breakdown.size(), m.num_layers());
  double sum = 0.0;
  for (const auto& lt : breakdown) sum += lt.seconds;
  EXPECT_NEAR(sum, t.gpu_sec, 1e-9);
}

TEST_F(RooflineFixture, DepthwiseLayersAreMemoryBound) {
  const auto m = BuildMobileNetV1();
  const auto breakdown = engine_.Breakdown(m, 7, 8);
  std::size_t i = 0;
  int dw_total = 0, dw_membound = 0;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kDepthwiseConv) {
      ++dw_total;
      if (breakdown[i].memory_bound) ++dw_membound;
    }
    ++i;
  }
  EXPECT_GT(dw_total, 0);
  EXPECT_EQ(dw_membound, dw_total);
}

TEST_F(RooflineFixture, KernelOverheadFloorsTinyLayers) {
  Layer tiny = Elementwise("t", 8.0, 1.0, 4.0);
  const auto t = engine_.TimeLayer(tiny, 7, 1);
  EXPECT_GE(t.seconds, engine_.params().kernel_overhead_sec);
}

TEST_F(RooflineFixture, WaveQuantizationVisibleOnLargePartition) {
  // A single-tile kernel on GPU(7) occupies 1/98 of the SMs.
  Layer one_tile = Linear("fc", 1, 128, 128, 4.0);
  const auto t = engine_.TimeLayer(one_tile, 7, 1);
  EXPECT_NEAR(t.occupancy, 1.0 / 98.0, 1e-9);
  const auto t1 = engine_.TimeLayer(one_tile, 1, 1);
  EXPECT_NEAR(t1.occupancy, 1.0 / 14.0, 1e-9);
}

TEST_F(RooflineFixture, EfficiencyTableCoversAllKinds) {
  RooflineParams p;
  for (LayerKind k :
       {LayerKind::kConv, LayerKind::kDepthwiseConv, LayerKind::kGemm,
        LayerKind::kAttention, LayerKind::kElementwise,
        LayerKind::kNormalization, LayerKind::kPool, LayerKind::kMemoryOp}) {
    EXPECT_GT(p.EfficiencyFor(k), 0.0);
    EXPECT_LE(p.EfficiencyFor(k), 1.0);
  }
}

// Property sweep over the whole (model x partition x batch) grid:
// throughput in samples/sec must not decrease when batch grows (batching
// never hurts throughput in this model), and utilization must be higher on
// GPU(1) than GPU(7) at equal batch.
class RooflineGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RooflineGridTest, BatchingNeverHurtsThroughput) {
  const auto [model_idx, gpcs] = GetParam();
  const auto m = BuildPaperModels()[static_cast<std::size_t>(model_idx)];
  RooflineEngine engine;
  double prev_tput = 0.0;
  for (int b = 1; b <= 64; b *= 2) {
    const double tput = b / engine.LatencySec(m, gpcs, b);
    EXPECT_GE(tput, prev_tput * 0.999) << m.name() << " b=" << b;
    prev_tput = tput;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllPartitions, RooflineGridTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1, 2, 3, 4, 7)));

}  // namespace
}  // namespace pe::perf
