// CompiledProfile must be a bit-identical, drop-in compilation of the
// ProfileTable / ModelRepertoire lookup surface: same doubles, same snap
// semantics, same error behavior outside the compiled range.
#include "profile/compiled_profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "profile/model_repertoire.h"
#include "profile/profile_table.h"

namespace pe::profile {
namespace {

ProfileTable MakeTable(const std::string& name, double scale) {
  ProfileTable t(name, {1, 2, 3, 7}, {1, 2, 4, 8, 16, 32});
  for (int g : t.partition_sizes()) {
    for (int b : t.batch_sizes()) {
      ProfileEntry e;
      e.latency_sec = scale * 1e-3 * (1.0 + 0.9 * b) / static_cast<double>(g);
      e.utilization = std::min(1.0, 0.1 * b);
      t.Set(g, b, e);
    }
  }
  return t;
}

ModelRepertoire MakeRepertoire() {
  ModelRepertoire rep;
  int id = 0;
  for (double scale : {1.0, 2.5}) {
    const int captured = id++;
    // Built via += (not `"m" + std::to_string(...)`): GCC-12's -Wrestrict
    // false-positives on operator+(const char*, string&&) in Release.
    std::string name = "m";
    name += std::to_string(captured);
    rep.Register(std::move(name), MakeTable("m", scale),
                 [scale](int gpcs, int batch) {
                   return scale * 1.1e-3 * (1.0 + batch) /
                          static_cast<double>(gpcs);
                 });
  }
  return rep;
}

TEST(CompiledProfile, EstimatesMatchRepertoireBitForBit) {
  const auto rep = MakeRepertoire();
  const CompiledProfile compiled(rep);
  for (int m = 0; m < rep.size(); ++m) {
    for (int g : rep.profile(m).partition_sizes()) {
      // Sweep past the profiled max to exercise snap + clamp.
      for (int b = 1; b <= 40; ++b) {
        EXPECT_EQ(compiled.EstimateSec(m, g, b), rep.EstimateSec(m, g, b))
            << "m=" << m << " g=" << g << " b=" << b;
        EXPECT_EQ(compiled.EstimateTicks(m, g, b),
                  std::max<SimTime>(1, SecToTicks(rep.EstimateSec(m, g, b))))
            << "m=" << m << " g=" << g << " b=" << b;
      }
    }
  }
}

TEST(CompiledProfile, ActualMatchesAndMemoizes) {
  const auto rep = MakeRepertoire();
  const CompiledProfile compiled(rep);
  for (int m = 0; m < rep.size(); ++m) {
    for (int g = 1; g <= 7; ++g) {
      for (int b : {1, 3, 8, 32}) {
        // Twice: the first call fills the memo, the second serves from it.
        EXPECT_EQ(compiled.ActualSec(m, g, b), rep.ActualSec(m, g, b));
        EXPECT_EQ(compiled.ActualSec(m, g, b), rep.ActualSec(m, g, b));
      }
    }
  }
  // Outside the memo grid the LatencyFn is called directly.
  EXPECT_EQ(compiled.ActualSec(0, 1, 1000), rep.ActualSec(0, 1, 1000));
}

TEST(CompiledProfile, FallbackPreservesErrorBehavior) {
  const auto rep = MakeRepertoire();
  const CompiledProfile compiled(rep);
  // Unprofiled partition size and unknown model throw exactly like the
  // uncompiled path.
  EXPECT_THROW(compiled.EstimateSec(0, 5, 8), std::out_of_range);
  EXPECT_THROW(compiled.EstimateSec(7, 1, 8), std::out_of_range);
  EXPECT_THROW(compiled.EstimateTicks(0, 6, 8), std::out_of_range);
}

TEST(CompiledProfile, SparseTableHolesFallBack) {
  ProfileTable t("sparse", {1, 7}, {8, 32});
  t.Set(1, 8, {2e-3, 0.5});
  t.Set(1, 32, {8e-3, 0.9});
  t.Set(7, 32, {1e-3, 0.4});  // (7, 8) is a hole
  const CompiledProfile compiled(t);
  EXPECT_EQ(compiled.EstimateSec(0, 1, 5), t.LatencySec(1, 5));
  EXPECT_EQ(compiled.EstimateSec(0, 7, 32), t.LatencySec(7, 32));
  // The hole throws, exactly like ProfileTable::LatencySec.
  EXPECT_THROW(compiled.EstimateSec(0, 7, 4), std::out_of_range);
  EXPECT_THROW(t.LatencySec(7, 4), std::out_of_range);
}

TEST(CompiledProfile, SingleTableFormIsModelOblivious) {
  const auto t = MakeTable("solo", 1.0);
  const CompiledProfile compiled(t);
  // Any model id answers from the one table (legacy scheduler behavior).
  EXPECT_EQ(compiled.EstimateSec(0, 2, 8), t.LatencySec(2, 8));
  EXPECT_EQ(compiled.EstimateSec(42, 2, 8), t.LatencySec(2, 8));
  // No ground truth in this form.
  EXPECT_THROW(compiled.ActualSec(0, 2, 8), std::logic_error);
}

}  // namespace
}  // namespace pe::profile
