// Tests for the ModelRepertoire: registration, lookups, error paths, and
// the model-zoo builder.
#include <gtest/gtest.h>

#include "perf/model_zoo.h"
#include "profile/model_repertoire.h"

namespace pe::profile {
namespace {

ProfileTable MakeTable(const std::string& name, double scale) {
  ProfileTable table(name, {1, 2}, {1, 2, 4});
  for (int g : {1, 2}) {
    for (int b : {1, 2, 4}) {
      ProfileEntry e;
      e.latency_sec = scale * b / g;
      e.utilization = 0.5;
      table.Set(g, b, e);
    }
  }
  return table;
}

TEST(ModelRepertoire, RegisterAndLookup) {
  ModelRepertoire rep;
  EXPECT_TRUE(rep.empty());
  const int a = rep.Register("alpha", MakeTable("alpha", 0.001),
                             [](int, int) { return 0.001; });
  const int b = rep.Register("beta", MakeTable("beta", 0.002),
                             [](int, int) { return 0.002; });
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(rep.size(), 2);
  EXPECT_EQ(rep.name(0), "alpha");
  EXPECT_EQ(rep.name(1), "beta");
  EXPECT_EQ(rep.IdOf("beta"), 1);
  EXPECT_EQ(rep.IdOf("gamma"), -1);
  EXPECT_TRUE(rep.Has(1));
  EXPECT_FALSE(rep.Has(2));
  EXPECT_FALSE(rep.Has(-1));
  EXPECT_DOUBLE_EQ(rep.EstimateSec(0, 2, 4), 0.001 * 4 / 2);
  EXPECT_DOUBLE_EQ(rep.EstimateSec(1, 1, 2), 0.002 * 2);
  EXPECT_DOUBLE_EQ(rep.ActualSec(1, 1, 1), 0.002);
  EXPECT_EQ(rep.max_batch(), 4);
}

TEST(ModelRepertoire, RejectsDuplicatesAndBadLookups) {
  ModelRepertoire rep;
  rep.Register("alpha", MakeTable("alpha", 0.001),
               [](int, int) { return 0.001; });
  EXPECT_THROW(rep.Register("alpha", MakeTable("alpha", 0.001),
                            [](int, int) { return 0.001; }),
               std::invalid_argument);
  EXPECT_THROW(rep.Register("null", MakeTable("null", 0.001), LatencyFn{}),
               std::invalid_argument);
  EXPECT_THROW(rep.profile(1), std::out_of_range);
  EXPECT_THROW(rep.name(-1), std::out_of_range);
  EXPECT_THROW(rep.EstimateSec(7, 1, 1), std::out_of_range);
}

TEST(ModelRepertoire, ZooBuilderProfilesEachModel) {
  const auto rep =
      BuildZooRepertoire({"shufflenet", "mobilenet"}, perf::RooflineEngine{},
                         /*max_batch=*/32);
  ASSERT_EQ(rep.size(), 2);
  EXPECT_EQ(rep.IdOf("shufflenet"), 0);
  EXPECT_EQ(rep.IdOf("mobilenet"), 1);
  // Profiled at least to batch 64 so knee detection sees the plateau.
  EXPECT_GE(rep.max_batch(), 64);
  for (int m = 0; m < rep.size(); ++m) {
    // Estimates come from the profiled grid of the model's own table, and
    // ground truth from the bound roofline engine: they agree on grid
    // points by construction.
    EXPECT_NEAR(rep.EstimateSec(m, 7, 8), rep.ActualSec(m, 7, 8), 1e-12);
    // More compute never hurts.
    EXPECT_LE(rep.EstimateSec(m, 7, 8), rep.EstimateSec(m, 1, 8));
  }
  // Distinct models, distinct tables.
  EXPECT_NE(rep.EstimateSec(0, 7, 8), rep.EstimateSec(1, 7, 8));
}

}  // namespace
}  // namespace pe::profile
