#include "profile/profile_table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "perf/model_zoo.h"
#include "profile/profiler.h"

namespace pe::profile {
namespace {

ProfileTable TinyTable() {
  // Hand-built: two partition sizes, batches {1, 2, 4}.
  ProfileTable t("toy", {1, 7}, {1, 2, 4});
  t.Set(1, 1, {0.010, 0.50});
  t.Set(1, 2, {0.020, 0.85});
  t.Set(1, 4, {0.040, 0.95});
  t.Set(7, 1, {0.005, 0.10});
  t.Set(7, 2, {0.006, 0.30});
  t.Set(7, 4, {0.008, 0.85});
  return t;
}

TEST(ProfileTable, ExactLookup) {
  const auto t = TinyTable();
  EXPECT_DOUBLE_EQ(t.At(1, 2).latency_sec, 0.020);
  EXPECT_DOUBLE_EQ(t.At(7, 4).utilization, 0.85);
  EXPECT_THROW(t.At(3, 1), std::out_of_range);
  EXPECT_THROW(t.At(1, 3), std::out_of_range);
}

TEST(ProfileTable, ThroughputIsInverseLatency) {
  const auto t = TinyTable();
  // Figure 8 semantics: a query is one batch.
  EXPECT_DOUBLE_EQ(t.At(1, 1).throughput_qps(), 100.0);
  EXPECT_DOUBLE_EQ(t.At(1, 2).throughput_qps(), 50.0);
}

TEST(ProfileTable, LatencySnapsUpToNextGridPoint) {
  const auto t = TinyTable();
  EXPECT_DOUBLE_EQ(t.LatencySec(1, 3), 0.040);  // snaps to batch 4
  EXPECT_DOUBLE_EQ(t.LatencySec(1, 4), 0.040);
  EXPECT_DOUBLE_EQ(t.LatencySec(1, 99), 0.040);  // clamps to max batch
}

TEST(ProfileTable, AbsoluteKnee) {
  const auto t = TinyTable();
  EXPECT_EQ(t.MaxBatchKnee(1, 0.8, KneeMode::kAbsolute), 2);
  EXPECT_EQ(t.MaxBatchKnee(7, 0.8, KneeMode::kAbsolute), 4);
}

TEST(ProfileTable, AbsoluteKneeFallsBackToMaxBatch) {
  ProfileTable t("toy", {1}, {1, 2});
  t.Set(1, 1, {0.01, 0.10});
  t.Set(1, 2, {0.02, 0.20});  // never crosses 0.8
  EXPECT_EQ(t.MaxBatchKnee(1, 0.8, KneeMode::kAbsolute), 2);
}

TEST(ProfileTable, RelativeKneeUsesPlateau) {
  ProfileTable t("toy", {1}, {1, 2, 4});
  t.Set(1, 1, {0.01, 0.30});
  t.Set(1, 2, {0.02, 0.45});  // >= 0.8 * 0.50
  t.Set(1, 4, {0.04, 0.50});
  EXPECT_EQ(t.MaxBatchKnee(1, 0.8, KneeMode::kRelative), 2);
}

TEST(ProfileTable, AllKneesMonotoneAndLastClamped) {
  const auto t = TinyTable();
  const auto knees = t.AllKnees(0.8, KneeMode::kAbsolute);
  ASSERT_EQ(knees.size(), 2u);
  EXPECT_LE(knees[0], knees[1]);
  EXPECT_EQ(knees.back(), 4);  // last partition covers the max batch
}

TEST(ProfileTable, AllKneesEnforceMonotonicity) {
  // Construct a pathological table where the larger partition saturates
  // earlier; AllKnees must still return a non-decreasing sequence.
  ProfileTable t("toy", {1, 7}, {1, 2, 4});
  t.Set(1, 1, {0.01, 0.10});
  t.Set(1, 2, {0.02, 0.50});
  t.Set(1, 4, {0.04, 0.90});
  t.Set(7, 1, {0.005, 0.95});
  t.Set(7, 2, {0.006, 0.95});
  t.Set(7, 4, {0.008, 0.95});
  const auto knees = t.AllKnees(0.8, KneeMode::kAbsolute);
  EXPECT_LE(knees[0], knees[1]);
}

TEST(ProfileTable, CsvRoundTrip) {
  const auto t = TinyTable();
  std::stringstream ss;
  t.SaveCsv(ss);
  const auto loaded = ProfileTable::LoadCsv(ss);
  EXPECT_EQ(loaded.model_name(), "toy");
  EXPECT_EQ(loaded.partition_sizes(), t.partition_sizes());
  EXPECT_EQ(loaded.batch_sizes(), t.batch_sizes());
  for (int g : {1, 7}) {
    for (int b : {1, 2, 4}) {
      EXPECT_DOUBLE_EQ(loaded.At(g, b).latency_sec, t.At(g, b).latency_sec);
      EXPECT_DOUBLE_EQ(loaded.At(g, b).utilization, t.At(g, b).utilization);
    }
  }
}

TEST(ProfileTable, LoadCsvRejectsEmpty) {
  std::stringstream ss;
  EXPECT_THROW(ProfileTable::LoadCsv(ss), std::runtime_error);
}

TEST(Profiler, DefaultConfigCoversPaperGrid) {
  const auto c = ProfilerConfig::Default(64);
  EXPECT_EQ(c.partition_sizes, (std::vector<int>{1, 2, 3, 4, 7}));
  EXPECT_EQ(c.batch_sizes.front(), 1);
  EXPECT_EQ(c.batch_sizes.back(), 64);
  // Single-batch resolution where knees live.
  for (int b = 1; b <= 8; ++b) {
    EXPECT_NE(std::find(c.batch_sizes.begin(), c.batch_sizes.end(), b),
              c.batch_sizes.end());
  }
}

TEST(Profiler, ProfilesFullGrid) {
  Profiler profiler;
  const auto model = perf::BuildMobileNetV1();
  const auto table = profiler.Profile(model, ProfilerConfig::Default(16));
  EXPECT_EQ(table.model_name(), "mobilenet");
  for (int g : {1, 2, 3, 4, 7}) {
    for (int b : table.batch_sizes()) {
      EXPECT_TRUE(table.Has(g, b));
      EXPECT_GT(table.At(g, b).latency_sec, 0.0);
    }
  }
}

TEST(Profiler, TableMatchesEngineDirectly) {
  Profiler profiler;
  const auto model = perf::BuildResNet50();
  const auto table = profiler.Profile(model, ProfilerConfig::Default(8));
  const auto& engine = profiler.engine();
  EXPECT_DOUBLE_EQ(table.At(3, 4).latency_sec, engine.LatencySec(model, 3, 4));
  EXPECT_DOUBLE_EQ(table.At(3, 4).utilization,
                   engine.Utilization(model, 3, 4));
}

}  // namespace
}  // namespace pe::profile
