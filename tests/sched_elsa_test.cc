#include "sched/elsa.h"

#include <gtest/gtest.h>

#include "sched/baselines.h"

namespace pe::sched {
namespace {

// Two partition sizes with fixed estimated latencies:
//   GPU(1): 10 ms per batch-N query (any N; single profiled batch point 32)
//   GPU(7):  2 ms
profile::ProfileTable MakeProfile(double small_ms = 10.0,
                                  double large_ms = 2.0) {
  profile::ProfileTable t("toy", {1, 7}, {32});
  t.Set(1, 32, {small_ms * 1e-3, 0.9});
  t.Set(7, 32, {large_ms * 1e-3, 0.5});
  return t;
}

workload::Query Q(int batch) {
  workload::Query q;
  q.batch = batch;
  return q;
}

WorkerState W(int index, int gpcs, SimTime wait) {
  WorkerState w;
  w.index = index;
  w.gpcs = gpcs;
  w.idle = (wait == 0);
  w.wait_ticks = wait;
  return w;
}

TEST(Elsa, DoesNotUseCentralQueue) {
  const auto profile = MakeProfile();
  ElsaScheduler s(profile, MsToTicks(15.0));
  EXPECT_FALSE(s.UsesCentralQueue());
  EXPECT_EQ(s.name(), "ELSA");
}

TEST(Elsa, StepAPrefersSmallestWithSlack) {
  const auto profile = MakeProfile();
  // SLA 15 ms; idle small partition: slack = 15 - 10 > 0 -> pick it even
  // though the large one is also idle and faster.
  ElsaScheduler s(profile, MsToTicks(15.0));
  const std::vector<WorkerState> workers = {W(0, 1, 0), W(1, 7, 0)};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 0);
}

TEST(Elsa, SkipsSmallWhenSlackInsufficient) {
  const auto profile = MakeProfile();
  // SLA 8 ms: small takes 10 ms -> violates; large takes 2 ms -> fits.
  ElsaScheduler s(profile, MsToTicks(8.0));
  const std::vector<WorkerState> workers = {W(0, 1, 0), W(1, 7, 0)};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 1);
}

TEST(Elsa, AccountsForQueueWait) {
  const auto profile = MakeProfile();
  // SLA 15 ms.  Small partition has 6 ms of queued work: 6 + 10 > 15 ->
  // overloaded; large partition with 1 ms wait: 1 + 2 < 15 -> chosen.
  ElsaScheduler s(profile, MsToTicks(15.0));
  const std::vector<WorkerState> workers = {W(0, 1, MsToTicks(6.0)),
                                            W(1, 7, MsToTicks(1.0))};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 1);
}

TEST(Elsa, StepBMinimizesCompletionWhenNoSlack) {
  const auto profile = MakeProfile();
  // SLA 1 ms: nothing fits.  Completion times: small 0+10, large 5+2 ->
  // large wins.
  ElsaScheduler s(profile, MsToTicks(1.0));
  const std::vector<WorkerState> workers = {W(0, 1, 0),
                                            W(1, 7, MsToTicks(5.0))};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 1);
}

TEST(Elsa, StepBPicksSmallIfItCompletesSooner) {
  const auto profile = MakeProfile();
  // SLA 1 ms; large is backed up by 20 ms: small 10 < large 22.
  ElsaScheduler s(profile, MsToTicks(1.0));
  const std::vector<WorkerState> workers = {W(0, 1, 0),
                                            W(1, 7, MsToTicks(20.0))};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 0);
}

TEST(Elsa, VisitsWorkersInSizeOrderNotIndexOrder) {
  const auto profile = MakeProfile();
  ElsaScheduler s(profile, MsToTicks(15.0));
  // Large partition listed first; ELSA must still prefer the small one.
  const std::vector<WorkerState> workers = {W(0, 7, 0), W(1, 1, 0)};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 1);
}

TEST(Elsa, AlphaScalesAggressiveness) {
  const auto profile = MakeProfile();
  // With alpha = 2, the small partition's effective cost doubles: 2*10 > 15
  // -> falls through to the large one.
  ElsaParams params;
  params.alpha = 2.0;
  ElsaScheduler s(profile, MsToTicks(15.0), params);
  const std::vector<WorkerState> workers = {W(0, 1, 0), W(1, 7, 0)};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 1);
}

TEST(Elsa, BetaWeightsNewQueryTerm) {
  const auto profile = MakeProfile();
  // beta = 0 ignores the query's own execution time: slack = 15 - wait.
  ElsaParams params;
  params.beta = 0.0;
  ElsaScheduler s(profile, MsToTicks(15.0), params);
  // Small has 14 ms queued: slack = 1 > 0 -> still chosen (beta=0 blind).
  const std::vector<WorkerState> workers = {W(0, 1, MsToTicks(14.0)),
                                            W(1, 7, 0)};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 0);
}

TEST(Elsa, SlackSecMatchesEquation2) {
  const auto profile = MakeProfile();
  ElsaParams params;
  params.alpha = 1.5;
  params.beta = 2.0;
  ElsaScheduler s(profile, MsToTicks(20.0), params);
  const WorkerState w = W(0, 1, MsToTicks(3.0));
  // slack = 20 - 1.5 * (3 + 2 * 10) = 20 - 34.5 = -14.5 ms.
  EXPECT_NEAR(s.SlackSec(w, 8), -14.5e-3, 1e-9);
}

TEST(Elsa, SwapCostChargesOnlySwapNeedingWorkers) {
  const auto profile = MakeProfile();
  ElsaParams params;
  params.swap_cost_sec = 4e-3;  // 4 ms weight re-load
  ElsaScheduler s(profile, MsToTicks(20.0), params);
  // Resident model matches (or was never loaded): no charge.
  WorkerState fresh = W(0, 1, MsToTicks(3.0));
  EXPECT_NEAR(s.SlackSec(fresh, /*model_id=*/0, 8), (20.0 - 13.0) * 1e-3,
              1e-9);
  WorkerState resident = fresh;
  resident.resident_model = 0;
  EXPECT_NEAR(s.SlackSec(resident, 0, 8), (20.0 - 13.0) * 1e-3, 1e-9);
  // A different resident model pays Tswap inside the alpha term:
  // slack = 20 - (3 + 4 + 10) = 3 ms.
  WorkerState swapping = fresh;
  swapping.resident_model = 1;
  EXPECT_NEAR(s.SlackSec(swapping, 0, 8), 3e-3, 1e-9);
}

TEST(Elsa, SwapCostZeroIsBitIdenticalToLegacyPredictor) {
  const auto profile = MakeProfile();
  ElsaScheduler legacy(profile, MsToTicks(20.0));
  ElsaParams params;
  params.swap_cost_sec = 0.0;
  ElsaScheduler zero(profile, MsToTicks(20.0), params);
  WorkerState w = W(0, 1, MsToTicks(3.0));
  w.resident_model = 1;
  // Exact equality on purpose: 0 must restore the swap-oblivious
  // predictor bit for bit (the guarantee engine_golden_test leans on).
  EXPECT_EQ(zero.SlackSec(w, 0, 8), legacy.SlackSec(w, 0, 8));
}

TEST(Elsa, SwapCostRedirectsStepA) {
  const auto profile = MakeProfile();
  // SLA 14 ms.  Small idle partition with the query's model resident:
  // slack = 14 - 10 > 0.  Same-size partition holding the other model
  // pays 5 ms swap: slack = 14 - 15 < 0.  With the charge, ELSA must
  // skip the swap-needing worker it would otherwise bind (lower index).
  ElsaParams params;
  params.swap_cost_sec = 5e-3;
  ElsaScheduler s(profile, MsToTicks(14.0), params);
  WorkerState needs_swap = W(0, 1, 0);
  needs_swap.resident_model = 1;
  WorkerState warm = W(1, 1, 0);
  warm.resident_model = 0;
  const std::vector<WorkerState> workers = {needs_swap, warm};
  workload::Query q = Q(8);
  q.model_id = 0;
  EXPECT_EQ(s.OnQueryArrival(q, workers), 1);
}

TEST(GreedyFastest, IsElsaStepBOnly) {
  const auto profile = MakeProfile();
  GreedyFastestScheduler s(profile);
  // Both idle: large (2 ms) beats small (10 ms) -- no utilization
  // preference, unlike ELSA Step A.
  const std::vector<WorkerState> workers = {W(0, 1, 0), W(1, 7, 0)};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 1);
}

TEST(Jsq, PicksShortestQueue) {
  JsqScheduler s;
  const std::vector<WorkerState> workers = {W(0, 1, MsToTicks(4.0)),
                                            W(1, 7, MsToTicks(9.0))};
  EXPECT_EQ(s.OnQueryArrival(Q(8), workers), 0);
  EXPECT_FALSE(s.UsesCentralQueue());
}

}  // namespace
}  // namespace pe::sched
