#include "sched/fifs.h"

#include <gtest/gtest.h>

namespace pe::sched {
namespace {

workload::Query Q(int batch) {
  workload::Query q;
  q.id = 0;
  q.arrival = 0;
  q.batch = batch;
  return q;
}

WorkerState W(int index, int gpcs, bool idle, SimTime wait = 0) {
  WorkerState w;
  w.index = index;
  w.gpcs = gpcs;
  w.idle = idle;
  w.wait_ticks = wait;
  return w;
}

TEST(Fifs, UsesCentralQueue) {
  FifsScheduler s;
  EXPECT_TRUE(s.UsesCentralQueue());
  EXPECT_EQ(s.name(), "FIFS");
}

TEST(Fifs, PicksIdleWorker) {
  FifsScheduler s;
  const std::vector<WorkerState> workers = {W(0, 1, false), W(1, 2, true)};
  EXPECT_EQ(s.OnQueryArrival(Q(4), workers), 1);
}

TEST(Fifs, NoIdleMeansCentralQueue) {
  FifsScheduler s;
  const std::vector<WorkerState> workers = {W(0, 1, false), W(1, 7, false)};
  EXPECT_EQ(s.OnQueryArrival(Q(4), workers), kNoAssignment);
}

TEST(Fifs, PrefersLargestIdle) {
  FifsScheduler s;
  const std::vector<WorkerState> workers = {W(0, 1, true), W(1, 3, true),
                                            W(2, 7, true), W(3, 2, true)};
  EXPECT_EQ(s.OnQueryArrival(Q(4), workers), 2);
}

TEST(Fifs, TakesSmallIdleWhenOnlyOption) {
  // The Figure 5(b) pathology: only a small GPU is idle, so the heavy query
  // lands there even though a large GPU would finish sooner.
  FifsScheduler s;
  const std::vector<WorkerState> workers = {W(0, 1, true), W(1, 7, false, 10)};
  EXPECT_EQ(s.OnQueryArrival(Q(32), workers), 0);
}

TEST(Fifs, IgnoresBatchSize) {
  FifsScheduler s;
  const std::vector<WorkerState> workers = {W(0, 1, true), W(1, 7, false)};
  EXPECT_EQ(s.OnQueryArrival(Q(1), workers),
            s.OnQueryArrival(Q(32), workers));
}

}  // namespace
}  // namespace pe::sched
