// Engine-level fault injection semantics: FailWorker kills the in-flight
// attempt and re-places (or returns) queued work, RecoverWorker replays
// parked queries, FailCentralQueue empties the server for the
// whole-server-crash path, SetSlowdownFactor stretches actual execution
// without touching estimates, and Finish leaves no record un-terminal
// even under a total outage.
#include "sim/server.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sched/fifs.h"

namespace pe::sim {
namespace {

// Fixed-latency world (same toy as sim_server_test): GPU(1) takes 10 ms,
// GPU(7) takes 2 ms, any batch.
profile::ProfileTable MakeProfile() {
  profile::ProfileTable t("toy", {1, 7}, {32});
  t.Set(1, 32, {10e-3, 0.9});
  t.Set(7, 32, {2e-3, 0.5});
  return t;
}

LatencyFn FixedLatency() {
  return [](int gpcs, int batch) {
    (void)batch;
    return gpcs == 1 ? 10e-3 : 2e-3;
  };
}

workload::QueryTrace MakeTrace(std::size_t n, SimTime gap, int batch = 8) {
  std::vector<workload::Query> qs;
  for (std::size_t i = 0; i < n; ++i) {
    workload::Query q;
    q.id = i;
    q.arrival = static_cast<SimTime>(i) * gap;
    q.batch = batch;
    qs.push_back(q);
  }
  return workload::QueryTrace(std::move(qs));
}

ServerConfig Config(std::vector<int> gpcs) {
  ServerConfig c;
  c.partition_gpcs = std::move(gpcs);
  c.sla_target = MsToTicks(15.0);
  c.seed = 1;
  return c;
}

TEST(FaultInjection, FailWorkerKillsTheInFlightAttempt) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  server.InjectTrace(MakeTrace(1, 0));
  server.AdvanceTo(MsToTicks(1.0));  // mid-flight on the 2 ms worker
  const auto lost = server.FailWorker(0);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].id, 0u);
  EXPECT_EQ(server.num_failed_workers(), 1);
  const auto result = server.Finish();
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_TRUE(result.records[0].failed);
  EXPECT_FALSE(result.records[0].shed);
  // `finished` records the failure instant, not a completion.
  EXPECT_EQ(result.records[0].finished, MsToTicks(1.0));
}

TEST(FaultInjection, FailWorkerIsIdempotentAndRecoverRestoresService) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  server.AdvanceTo(MsToTicks(1.0));
  EXPECT_FALSE(server.FailWorker(0).size());  // idle worker: nothing lost
  EXPECT_TRUE(server.FailWorker(0).empty());  // already failed: no-op
  EXPECT_EQ(server.num_failed_workers(), 1);

  // Arrivals during the outage park centrally (sole worker is down)...
  workload::Query q;
  q.id = 0;
  q.arrival = MsToTicks(2.0);
  q.batch = 8;
  server.InjectQuery(q);
  server.AdvanceTo(MsToTicks(5.0));
  // ...and replay on recovery.
  server.RecoverWorker(0);
  EXPECT_EQ(server.num_failed_workers(), 0);
  const auto result = server.Finish();
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_FALSE(result.records[0].failed);
  EXPECT_EQ(result.records[0].finished, MsToTicks(7.0));
}

TEST(FaultInjection, OrphansRequeueOntoSurvivingWorkers) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  // Two 2 ms workers, four simultaneous arrivals: two start, two queue.
  InferenceServer server(Config({7, 7}), profile, fifs, FixedLatency());
  server.InjectTrace(MakeTrace(4, 0));
  server.AdvanceTo(MsToTicks(1.0));
  server.FailWorker(0, /*requeue_orphans=*/true);
  const auto result = server.Finish();
  ASSERT_EQ(result.records.size(), 4u);
  std::size_t failed = 0;
  for (const auto& r : result.records) {
    if (r.failed) {
      ++failed;
    } else {
      // Every survivor completed on the one healthy worker.
      EXPECT_EQ(r.worker, 1);
      EXPECT_GT(r.finished, r.started);
    }
  }
  EXPECT_EQ(failed, 1u);  // exactly the in-flight attempt on worker 0
}

TEST(FaultInjection, WholeServerCrashReturnsEveryInSystemQuery) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7, 7}), profile, fifs, FixedLatency());
  server.InjectTrace(MakeTrace(6, 0));
  server.AdvanceTo(MsToTicks(1.0));
  // The fleet driver's crash sequence: fail every worker without local
  // requeue, then drain the central queue.
  std::vector<workload::Query> lost;
  for (int w = 0; w < server.num_workers(); ++w) {
    for (auto& q : server.FailWorker(w, /*requeue_orphans=*/false)) {
      lost.push_back(q);
    }
  }
  for (auto& q : server.FailCentralQueue()) lost.push_back(q);
  EXPECT_EQ(lost.size(), 6u);  // 2 in-flight + 4 queued, all returned
  const auto result = server.Finish();
  for (const auto& r : result.records) {
    EXPECT_TRUE(r.failed) << "query " << r.id;
    EXPECT_EQ(r.finished, MsToTicks(1.0));
  }
}

TEST(FaultInjection, TotalOutageParksArrivalsAndFinishFailsThem) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  server.FailWorker(0);
  server.InjectTrace(MakeTrace(3, MsToTicks(0.5)));
  // No recovery ever happens: Finish must still terminate every record.
  const auto result = server.Finish();
  ASSERT_EQ(result.records.size(), 3u);
  for (const auto& r : result.records) {
    EXPECT_TRUE(r.failed) << "query " << r.id;
  }
}

TEST(FaultInjection, SlowdownStretchesActualExecutionOnly) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  server.SetSlowdownFactor(3.0);
  server.InjectTrace(MakeTrace(1, 0));
  auto result = server.Finish();
  // 2 ms nominal x 3: the degraded replica underdelivers.
  EXPECT_EQ(result.records[0].finished - result.records[0].started,
            MsToTicks(6.0));

  // Back to nominal: 1.0 restores the clean-run service time.
  InferenceServer healed(Config({7}), profile, fifs, FixedLatency());
  healed.SetSlowdownFactor(2.0);
  healed.SetSlowdownFactor(1.0);
  healed.InjectTrace(MakeTrace(1, 0));
  result = healed.Finish();
  EXPECT_EQ(result.records[0].finished - result.records[0].started,
            MsToTicks(2.0));

  EXPECT_THROW(server.SetSlowdownFactor(0.0), std::invalid_argument);
  EXPECT_THROW(server.SetSlowdownFactor(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace pe::sim
