#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace pe::sim {
namespace {

QueryRecord Rec(std::uint64_t id, SimTime arrival, SimTime started,
                SimTime finished, int worker = 0, int gpcs = 1) {
  QueryRecord r;
  r.id = id;
  r.batch = 1;
  r.arrival = arrival;
  r.dispatched = arrival;
  r.started = started;
  r.finished = finished;
  r.worker = worker;
  r.worker_gpcs = gpcs;
  return r;
}

TEST(QueryRecord, LatencyAndQueueDelay) {
  const auto r = Rec(0, MsToTicks(1), MsToTicks(3), MsToTicks(8));
  EXPECT_EQ(r.Latency(), MsToTicks(7));
  EXPECT_EQ(r.QueueDelay(), MsToTicks(2));
}

TEST(ComputeStats, EmptyRecords) {
  const auto s = ComputeStats({}, MsToTicks(10));
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.p95_latency_ms, 0.0);
  EXPECT_EQ(s.achieved_qps, 0.0);
  EXPECT_EQ(s.mean_worker_utilization, 0.0);
  EXPECT_EQ(s.reconfig_stalled, 0u);
  EXPECT_TRUE(s.workers.empty());
}

TEST(ComputeStats, ZeroLengthSpanYieldsZeroedRates) {
  // A single record whose measurement window has zero length (arrival ==
  // finished): latency stats are real, rate/utilization metrics zero out
  // instead of dividing by the zero-length span.  Possible in a short
  // reconfig-heavy epoch slice.
  QueryRecord r = Rec(0, MsToTicks(5), MsToTicks(5), MsToTicks(5));
  const auto s = ComputeStats({r}, MsToTicks(10), 0.0);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_DOUBLE_EQ(s.mean_latency_ms, 0.0);
  EXPECT_EQ(s.achieved_qps, 0.0);
  EXPECT_EQ(s.mean_worker_utilization, 0.0);
  // The per-worker breakdown still exists, with zero utilization.
  ASSERT_EQ(s.workers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.workers[0].utilization, 0.0);
}

TEST(ComputeStats, ReusedWorkerIndexAcrossLayoutsStaysSeparate) {
  // A live reconfiguration reuses worker indices: index 0 was a GPU(7)
  // before the swap and a GPU(4) after.  The per-worker breakdown (and
  // the GPC-weighted utilization) must keep the two partitions distinct.
  std::vector<QueryRecord> recs = {
      Rec(0, 0, 0, MsToTicks(5), /*worker=*/0, /*gpcs=*/7),
      Rec(1, 0, MsToTicks(5), MsToTicks(10), /*worker=*/0, /*gpcs=*/4),
  };
  const auto s = ComputeStats(recs, MsToTicks(100), 0.0);
  ASSERT_EQ(s.workers.size(), 2u);
  EXPECT_EQ(s.workers[0].gpcs, 4);
  EXPECT_EQ(s.workers[1].gpcs, 7);
  EXPECT_EQ(s.workers[0].queries, 1u);
  EXPECT_EQ(s.workers[1].queries, 1u);
}

TEST(ComputeStats, CountsReconfigStalledQueries) {
  std::vector<QueryRecord> recs;
  for (int i = 0; i < 6; ++i) {
    QueryRecord r = Rec(static_cast<std::uint64_t>(i), MsToTicks(i),
                        MsToTicks(i), MsToTicks(i + 2));
    r.reconfig_stalls = (i % 3 == 0) ? 2 : 0;
    recs.push_back(r);
  }
  const auto s = ComputeStats(recs, MsToTicks(10), 0.0);
  EXPECT_EQ(s.reconfig_stalled, 2u);  // ids 0 and 3
}

TEST(ComputeStats, SingleRecordNoWarmup) {
  std::vector<QueryRecord> recs = {Rec(0, 0, 0, MsToTicks(5))};
  const auto s = ComputeStats(recs, MsToTicks(10), 0.0);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_DOUBLE_EQ(s.mean_latency_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.p95_latency_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.sla_violation_rate, 0.0);
}

TEST(ComputeStats, ViolationRateCounted) {
  std::vector<QueryRecord> recs;
  for (int i = 0; i < 10; ++i) {
    const SimTime lat = (i < 3) ? MsToTicks(20) : MsToTicks(5);
    recs.push_back(Rec(static_cast<std::uint64_t>(i), MsToTicks(i),
                       MsToTicks(i), MsToTicks(i) + lat));
  }
  const auto s = ComputeStats(recs, MsToTicks(10), 0.0);
  EXPECT_DOUBLE_EQ(s.sla_violation_rate, 0.3);
}

TEST(ComputeStats, WarmupDiscardsEarlyRecords) {
  std::vector<QueryRecord> recs;
  // First 10% (one record) has a huge latency; warmup removes it.
  recs.push_back(Rec(0, 0, 0, MsToTicks(1000)));
  for (int i = 1; i < 10; ++i) {
    recs.push_back(Rec(static_cast<std::uint64_t>(i), MsToTicks(i),
                       MsToTicks(i), MsToTicks(i + 1)));
  }
  const auto with_warmup = ComputeStats(recs, MsToTicks(10), 0.1);
  EXPECT_EQ(with_warmup.completed, 9u);
  EXPECT_DOUBLE_EQ(with_warmup.max_latency_ms, 1.0);
  const auto without = ComputeStats(recs, MsToTicks(10), 0.0);
  EXPECT_DOUBLE_EQ(without.max_latency_ms, 1000.0);
}

TEST(ComputeStats, PerWorkerUtilization) {
  // Two workers over a 10 ms window: worker 0 busy 5 ms, worker 1 busy 10.
  std::vector<QueryRecord> recs = {
      Rec(0, 0, 0, MsToTicks(5), /*worker=*/0, /*gpcs=*/1),
      Rec(1, 0, 0, MsToTicks(10), /*worker=*/1, /*gpcs=*/7),
  };
  const auto s = ComputeStats(recs, MsToTicks(100), 0.0);
  ASSERT_EQ(s.workers.size(), 2u);
  EXPECT_DOUBLE_EQ(s.workers[0].utilization, 0.5);
  EXPECT_DOUBLE_EQ(s.workers[1].utilization, 1.0);
  // GPC-weighted mean: (0.5*1 + 1.0*7) / 8.
  EXPECT_NEAR(s.mean_worker_utilization, 7.5 / 8.0, 1e-12);
}

TEST(ComputeStats, AchievedQpsOverWindow) {
  std::vector<QueryRecord> recs;
  for (int i = 0; i < 11; ++i) {
    recs.push_back(Rec(static_cast<std::uint64_t>(i), MsToTicks(i * 100),
                       MsToTicks(i * 100), MsToTicks(i * 100 + 1)));
  }
  const auto s = ComputeStats(recs, MsToTicks(10), 0.0);
  // 11 completions over ~1.001 s.
  EXPECT_NEAR(s.achieved_qps, 11.0 / 1.001, 0.1);
}

TEST(ComputeStats, SortsRecordsByArrival) {
  // Records supplied out of arrival order; warmup must cut by arrival time.
  std::vector<QueryRecord> recs = {
      Rec(1, MsToTicks(100), MsToTicks(100), MsToTicks(101)),
      Rec(0, 0, 0, MsToTicks(1000)),  // earliest arrival, huge latency
  };
  const auto s = ComputeStats(recs, MsToTicks(10), 0.5);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_DOUBLE_EQ(s.max_latency_ms, 1.0);
}

}  // namespace
}  // namespace pe::sim
