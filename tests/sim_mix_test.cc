// Multi-model serving in the simulator core: model-swap penalties, the
// resident-model snapshot, per-model stats, and ELSA's locality tie-break.
#include <gtest/gtest.h>

#include "profile/model_repertoire.h"
#include "sched/elsa.h"
#include "sched/fifs.h"
#include "sim/server.h"

namespace pe::sim {
namespace {

// Two synthetic models with flat 10 ms latency on a 1-GPC partition grid:
// swap arithmetic becomes exact.
profile::ModelRepertoire MakeRepertoire() {
  profile::ModelRepertoire rep;
  for (const char* name : {"alpha", "beta"}) {
    profile::ProfileTable table(name, {1, 2}, {1, 2, 4});
    for (int g : {1, 2}) {
      for (int b : {1, 2, 4}) {
        profile::ProfileEntry e;
        e.latency_sec = 0.010;
        e.utilization = 0.9;
        table.Set(g, b, e);
      }
    }
    rep.Register(name, std::move(table), [](int, int) { return 0.010; });
  }
  return rep;
}

workload::Query MakeQuery(std::uint64_t id, SimTime arrival, int model) {
  workload::Query q;
  q.id = id;
  q.arrival = arrival;
  q.batch = 1;
  q.model_id = model;
  return q;
}

TEST(ModelSwap, ChargedOnlyWhenResidentModelChanges) {
  const auto rep = MakeRepertoire();
  ServerConfig sc;
  sc.partition_gpcs = {1};  // one worker: serialized starts
  sc.seed = 3;
  sc.model_swap_cost = MsToTicks(5.0);
  sched::FifsScheduler fifs;
  InferenceServer server(sc, rep, fifs);

  // Same model back to back, then alternate: swaps on q2 and q3 only.
  server.InjectQuery(MakeQuery(0, 0, 0));
  server.InjectQuery(MakeQuery(1, MsToTicks(1.0), 0));
  server.InjectQuery(MakeQuery(2, MsToTicks(2.0), 1));
  server.InjectQuery(MakeQuery(3, MsToTicks(3.0), 0));
  const auto result = server.Finish();

  ASSERT_EQ(result.records.size(), 4u);
  // First-ever start loads a model but displaces nothing.
  EXPECT_FALSE(result.records[0].model_swap);
  EXPECT_EQ(result.records[0].finished - result.records[0].started,
            MsToTicks(10.0));
  EXPECT_FALSE(result.records[1].model_swap);
  EXPECT_EQ(result.records[1].finished - result.records[1].started,
            MsToTicks(10.0));
  // alpha -> beta and beta -> alpha both pay the 5 ms re-load.
  EXPECT_TRUE(result.records[2].model_swap);
  EXPECT_EQ(result.records[2].finished - result.records[2].started,
            MsToTicks(15.0));
  EXPECT_TRUE(result.records[3].model_swap);
  EXPECT_EQ(result.records[3].finished - result.records[3].started,
            MsToTicks(15.0));

  const auto stats = ComputeStats(result.records, MsToTicks(100.0),
                                  /*warmup_fraction=*/0.0);
  EXPECT_EQ(stats.model_swaps, 2u);
  ASSERT_EQ(stats.models.size(), 2u);
  EXPECT_EQ(stats.models[0].model, 0);
  EXPECT_EQ(stats.models[0].completed, 3u);
  EXPECT_EQ(stats.models[0].swaps, 1u);
  EXPECT_EQ(stats.models[1].model, 1);
  EXPECT_EQ(stats.models[1].completed, 1u);
  EXPECT_EQ(stats.models[1].swaps, 1u);
}

TEST(ModelSwap, SingleModelNeverCharged) {
  const auto rep = MakeRepertoire();
  ServerConfig sc;
  sc.partition_gpcs = {1};
  sc.model_swap_cost = MsToTicks(50.0);  // would be very visible
  sched::FifsScheduler fifs;
  InferenceServer server(sc, rep, fifs);
  for (std::uint64_t i = 0; i < 8; ++i) {
    server.InjectQuery(MakeQuery(i, MsToTicks(static_cast<double>(i)), 0));
  }
  const auto result = server.Finish();
  for (const auto& r : result.records) {
    EXPECT_FALSE(r.model_swap);
    EXPECT_EQ(r.finished - r.started, MsToTicks(10.0));
  }
}

TEST(ModelSwap, UnknownModelIdRejectedAtInjection) {
  const auto rep = MakeRepertoire();
  ServerConfig sc;
  sc.partition_gpcs = {1};
  sched::FifsScheduler fifs;
  InferenceServer server(sc, rep, fifs);
  EXPECT_THROW(server.InjectQuery(MakeQuery(0, 0, 7)), std::invalid_argument);
  EXPECT_THROW(server.InjectQuery(MakeQuery(0, 0, -1)), std::invalid_argument);
}

TEST(ModelSwap, ResidentModelVisibleInWorkerSnapshots) {
  const auto rep = MakeRepertoire();
  ServerConfig sc;
  sc.partition_gpcs = {1, 2};
  sched::FifsScheduler fifs;
  InferenceServer server(sc, rep, fifs);
  for (const auto& w : server.workers()) {
    EXPECT_EQ(w.Snapshot(0).resident_model, -1);
  }
  // FIFS sends the first arrival to the largest idle partition (index 1).
  server.InjectQuery(MakeQuery(0, 0, 1));
  server.AdvanceTo(MsToTicks(1.0));
  EXPECT_EQ(server.workers()[1].resident_model(), 1);
  EXPECT_EQ(server.workers()[1].Snapshot(server.now()).resident_model, 1);
  EXPECT_EQ(server.workers()[0].resident_model(), -1);
}

TEST(ElsaLocality, PrefersResidentModelWithinTie) {
  const auto rep = MakeRepertoire();
  const SimTime sla = MsToTicks(100.0);

  auto make_worker = [](int index, int resident) {
    sched::WorkerState w;
    w.index = index;
    w.gpcs = 1;
    w.idle = true;
    w.wait_ticks = 0;
    w.queue_length = 0;
    w.resident_model = resident;
    return w;
  };
  const std::vector<sched::WorkerState> workers = {make_worker(0, 0),
                                                   make_worker(1, 1)};
  workload::Query q = MakeQuery(0, 0, /*model=*/1);

  // Model-oblivious Algorithm 2: smallest (gpcs, index) positive-slack
  // worker wins regardless of residency.
  sched::ElsaScheduler oblivious(rep, sla);
  EXPECT_EQ(oblivious.OnQueryArrival(q, workers), 0);

  // Locality tie-break: worker 1 already holds beta and its completion
  // ties worker 0's exactly, so it wins and the swap is avoided.
  sched::ElsaParams params;
  params.locality_tie_sec = 0.001;
  sched::ElsaScheduler local(rep, sla, params);
  EXPECT_EQ(local.OnQueryArrival(q, workers), 1);

  // A same-model worker far outside the tie window must not win.
  std::vector<sched::WorkerState> loaded = workers;
  loaded[1].idle = false;
  loaded[1].wait_ticks = MsToTicks(50.0);  // 50 ms behind: no tie
  EXPECT_EQ(local.OnQueryArrival(q, loaded), 0);

  // Same-model arrivals see no difference from the oblivious policy.
  q.model_id = 0;
  EXPECT_EQ(local.OnQueryArrival(q, workers),
            oblivious.OnQueryArrival(q, workers));
}

TEST(ElsaLocality, ReducesSwapsEndToEnd) {
  const auto rep = MakeRepertoire();
  const SimTime sla = MsToTicks(100.0);
  ServerConfig sc;
  sc.partition_gpcs = {1, 1};
  sc.model_swap_cost = MsToTicks(5.0);
  sc.seed = 11;

  auto run = [&](sched::ElsaParams params) {
    sched::ElsaScheduler elsa(rep, sla, params);
    InferenceServer server(sc, rep, elsa);
    // Strictly alternating models, arrivals slow enough that some worker
    // is always free: the locality policy can pin each model to "its"
    // worker while the oblivious one keeps swapping on worker 0.
    for (std::uint64_t i = 0; i < 40; ++i) {
      server.InjectQuery(MakeQuery(i, MsToTicks(6.0 * static_cast<double>(i)),
                                   static_cast<int>(i % 2)));
    }
    const auto stats = ComputeStats(server.Finish().records, sla,
                                    /*warmup_fraction=*/0.0);
    return stats.model_swaps;
  };

  const std::size_t oblivious_swaps = run(sched::ElsaParams{});
  sched::ElsaParams params;
  params.locality_tie_sec = 0.001;
  const std::size_t local_swaps = run(params);
  EXPECT_GT(oblivious_swaps, 10u);
  EXPECT_LT(local_swaps, 3u);
}

}  // namespace
}  // namespace pe::sim
