// Live-reconfiguration semantics of the continuous event engine: queries
// queued across a BeginReconfigure boundary are neither lost nor
// duplicated, downtime lands in their queue delay, held/orphaned work is
// flagged in the stall metric, and a run that never reconfigures is
// bit-identical to a plain InferenceServer::Run.
#include "sim/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sched/elsa.h"
#include "sched/fifs.h"

namespace pe::sim {
namespace {

// Fixed-latency world: GPU(1) takes 10 ms, GPU(7) takes 2 ms, any batch.
profile::ProfileTable MakeProfile() {
  profile::ProfileTable t("toy", {1, 7}, {32});
  t.Set(1, 32, {10e-3, 0.9});
  t.Set(7, 32, {2e-3, 0.5});
  return t;
}

LatencyFn FixedLatency() {
  return [](int gpcs, int batch) {
    (void)batch;
    return gpcs == 1 ? 10e-3 : 2e-3;
  };
}

workload::QueryTrace MakeTrace(std::size_t n, SimTime gap, int batch = 8) {
  std::vector<workload::Query> qs;
  for (std::size_t i = 0; i < n; ++i) {
    workload::Query q;
    q.id = i;
    q.arrival = static_cast<SimTime>(i) * gap;
    q.batch = batch;
    qs.push_back(q);
  }
  return workload::QueryTrace(std::move(qs));
}

ServerConfig Config(std::vector<int> gpcs) {
  ServerConfig c;
  c.partition_gpcs = std::move(gpcs);
  c.sla_target = MsToTicks(15.0);
  c.seed = 1;
  return c;
}

void ExpectSameRecords(const std::vector<QueryRecord>& a,
                       const std::vector<QueryRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "record " << i;
    EXPECT_EQ(a[i].batch, b[i].batch) << "record " << i;
    EXPECT_EQ(a[i].arrival, b[i].arrival) << "record " << i;
    EXPECT_EQ(a[i].dispatched, b[i].dispatched) << "record " << i;
    EXPECT_EQ(a[i].started, b[i].started) << "record " << i;
    EXPECT_EQ(a[i].finished, b[i].finished) << "record " << i;
    EXPECT_EQ(a[i].worker, b[i].worker) << "record " << i;
    EXPECT_EQ(a[i].worker_gpcs, b[i].worker_gpcs) << "record " << i;
    EXPECT_EQ(a[i].reconfig_stalls, b[i].reconfig_stalls) << "record " << i;
  }
}

// Every query injected appears exactly once, finished, with sane
// timestamps and non-overlapping service intervals per worker.
void ExpectConservation(const std::vector<QueryRecord>& records,
                        std::size_t expected) {
  ASSERT_EQ(records.size(), expected);
  std::set<std::uint64_t> ids;
  std::map<int, std::vector<std::pair<SimTime, SimTime>>> by_worker;
  for (const auto& r : records) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate id " << r.id;
    EXPECT_GE(r.started, r.arrival) << "query " << r.id;
    EXPECT_GT(r.finished, r.started) << "query " << r.id;
    by_worker[r.worker].emplace_back(r.started, r.finished);
  }
  EXPECT_EQ(ids.size(), expected);
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), expected - 1);
  for (auto& [worker, spans] : by_worker) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << "worker " << worker << " overlaps at interval " << i;
    }
  }
}

TEST(Reconfigure, DowntimeChargedToHeldArrival) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  // q0 at 0 (runs 0-2 ms), q1 at 1 ms (held by the window).
  server.InjectTrace(MakeTrace(2, MsToTicks(1.0)));
  server.AdvanceTo(MsToTicks(0.5));
  // Drain ends at 2 ms, layout up at 7 ms.
  server.BeginReconfigure({7}, MsToTicks(5.0));
  EXPECT_TRUE(server.reconfiguring());
  const auto result = server.Finish();
  ExpectConservation(result.records, 2);
  EXPECT_EQ(result.records[0].finished, MsToTicks(2.0));
  EXPECT_EQ(result.records[0].reconfig_stalls, 0);
  // q1 waited out the drain + the 5 ms downtime.
  EXPECT_EQ(result.records[1].started, MsToTicks(7.0));
  EXPECT_EQ(result.records[1].QueueDelay(), MsToTicks(6.0));
  EXPECT_GE(result.records[1].QueueDelay(), MsToTicks(5.0));
  EXPECT_EQ(result.records[1].reconfig_stalls, 1);
}

TEST(Reconfigure, LocalQueueOrphansCarriedToNewLayout) {
  const auto profile = MakeProfile();
  // Loose SLA: ELSA queues everything on the single GPU(7) locally.
  sched::ElsaScheduler elsa(profile, MsToTicks(50.0));
  InferenceServer server(Config({7}), profile, elsa, FixedLatency());
  server.InjectTrace(MakeTrace(3, 0));
  server.AdvanceTo(MsToTicks(1.0));
  // q0 in flight, q1/q2 queued locally; zero-downtime swap to {7, 7}.
  server.BeginReconfigure({7, 7}, 0);
  const auto result = server.Finish();
  ExpectConservation(result.records, 3);
  EXPECT_EQ(server.workers().size(), 2u);
  EXPECT_EQ(result.records[0].finished, MsToTicks(2.0));
  EXPECT_EQ(result.records[0].reconfig_stalls, 0);
  for (std::size_t i = 1; i < 3; ++i) {
    // Orphans were re-placed on the new layout, no earlier than the swap.
    EXPECT_EQ(result.records[i].reconfig_stalls, 1) << "query " << i;
    EXPECT_GE(result.records[i].started, MsToTicks(2.0)) << "query " << i;
  }
}

TEST(Reconfigure, CentralQueueCarriedInFifoOrder) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  // Five simultaneous arrivals: q0 runs 0-2, q1 runs 2-4, q2..q4 central.
  server.InjectTrace(MakeTrace(5, 0));
  server.AdvanceTo(MsToTicks(3.0));
  // Drain ends at 4 ms, new two-worker layout up at 5 ms.
  server.BeginReconfigure({7, 7}, MsToTicks(1.0));
  const auto result = server.Finish();
  ExpectConservation(result.records, 5);
  EXPECT_EQ(result.records[1].finished, MsToTicks(4.0));
  // q2/q3 start together on the fresh workers, q4 takes the next slot.
  EXPECT_EQ(result.records[2].started, MsToTicks(5.0));
  EXPECT_EQ(result.records[3].started, MsToTicks(5.0));
  EXPECT_EQ(result.records[4].started, MsToTicks(7.0));
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(result.records[i].reconfig_stalls, 1) << "query " << i;
  }
}

TEST(Reconfigure, SupersedingWindowRetargetsAndNeverShortens) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  workload::Query late;
  late.id = 0;
  late.arrival = MsToTicks(30.0);
  late.batch = 8;
  server.InjectQuery(late);
  server.AdvanceTo(MsToTicks(1.0));
  server.BeginReconfigure({1}, MsToTicks(10.0));   // ready at 11 ms
  server.BeginReconfigure({7, 7}, MsToTicks(20.0));  // ready at 21 ms
  const auto result = server.Finish();
  // The second target won; the first window's completion was superseded.
  ASSERT_EQ(server.workers().size(), 2u);
  EXPECT_EQ(server.workers()[0].gpcs(), 7);
  EXPECT_EQ(server.workers()[1].gpcs(), 7);
  // The late query arrived after the window closed: untouched.
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].started, MsToTicks(30.0));
  EXPECT_EQ(result.records[0].reconfig_stalls, 0);
}

TEST(Reconfigure, NoReconfigureIsBitIdenticalToPlainRun) {
  const auto profile = MakeProfile();
  auto config = Config({1, 7, 7});
  config.latency_noise_sigma = 0.2;  // exercise the RNG stream
  const auto trace = MakeTrace(200, MsToTicks(0.7));

  sched::FifsScheduler fifs_a;
  InferenceServer batch_server(config, profile, fifs_a, FixedLatency());
  const auto batch = batch_server.Run(trace);

  sched::FifsScheduler fifs_b;
  InferenceServer inc_server(config, profile, fifs_b, FixedLatency());
  inc_server.InjectTrace(trace);
  // Chunked advancing must not perturb event order or the RNG stream.
  for (int ms = 10; ms <= 150; ms += 10) {
    inc_server.AdvanceTo(MsToTicks(ms));
  }
  const auto incremental = inc_server.Finish();

  ExpectSameRecords(batch.records, incremental.records);
  for (const auto& r : incremental.records) {
    EXPECT_EQ(r.reconfig_stalls, 0) << "query " << r.id;
  }
}

TEST(Reconfigure, StallsSurfaceInComputeStats) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  server.InjectTrace(MakeTrace(5, 0));
  server.AdvanceTo(MsToTicks(3.0));
  server.BeginReconfigure({7}, MsToTicks(4.0));
  const auto result = server.Finish();
  const auto stats = ComputeStats(result.records, MsToTicks(15.0),
                                  /*warmup_fraction=*/0.0);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.reconfig_stalled, 3u);  // q2..q4 crossed the window
}

TEST(Reconfigure, RejectsInvalidArguments) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  EXPECT_THROW(server.BeginReconfigure({}, 0), std::invalid_argument);
  EXPECT_THROW(server.BeginReconfigure({0}, 0), std::invalid_argument);
  EXPECT_THROW(server.BeginReconfigure({7}, -1), std::invalid_argument);
}

TEST(Reconfigure, RejectsArrivalInThePast) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  server.AdvanceTo(MsToTicks(5.0));
  workload::Query q;
  q.id = 0;
  q.arrival = MsToTicks(1.0);
  EXPECT_THROW(server.InjectQuery(q), std::invalid_argument);
}

}  // namespace
}  // namespace pe::sim
