#include "sim/server.h"

#include <gtest/gtest.h>

#include "sched/elsa.h"
#include "sched/fifs.h"

namespace pe::sim {
namespace {

// Fixed-latency world: GPU(1) takes 10 ms, GPU(7) takes 2 ms, any batch.
profile::ProfileTable MakeProfile() {
  profile::ProfileTable t("toy", {1, 7}, {32});
  t.Set(1, 32, {10e-3, 0.9});
  t.Set(7, 32, {2e-3, 0.5});
  return t;
}

LatencyFn FixedLatency() {
  return [](int gpcs, int batch) {
    (void)batch;
    return gpcs == 1 ? 10e-3 : 2e-3;
  };
}

workload::QueryTrace MakeTrace(std::size_t n, SimTime gap, int batch = 8) {
  std::vector<workload::Query> qs;
  for (std::size_t i = 0; i < n; ++i) {
    workload::Query q;
    q.id = i;
    q.arrival = static_cast<SimTime>(i) * gap;
    q.batch = batch;
    qs.push_back(q);
  }
  return workload::QueryTrace(std::move(qs));
}

ServerConfig Config(std::vector<int> gpcs) {
  ServerConfig c;
  c.partition_gpcs = std::move(gpcs);
  c.sla_target = MsToTicks(15.0);
  c.seed = 1;
  return c;
}

TEST(InferenceServer, SingleWorkerSequentialExecution) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  // Three queries arriving simultaneously on one 2 ms worker.
  const auto result = server.Run(MakeTrace(3, 0));
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0].finished, MsToTicks(2.0));
  EXPECT_EQ(result.records[1].finished, MsToTicks(4.0));
  EXPECT_EQ(result.records[2].finished, MsToTicks(6.0));
}

TEST(InferenceServer, FifsUsesIdleWorkers) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7, 7}), profile, fifs, FixedLatency());
  const auto result = server.Run(MakeTrace(2, 0));
  // Both run in parallel.
  EXPECT_EQ(result.records[0].finished, MsToTicks(2.0));
  EXPECT_EQ(result.records[1].finished, MsToTicks(2.0));
  EXPECT_NE(result.records[0].worker, result.records[1].worker);
}

TEST(InferenceServer, CentralQueueDrainsInFifoOrder) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  const auto result = server.Run(MakeTrace(5, MsToTicks(0.1)));
  for (std::size_t i = 1; i < result.records.size(); ++i) {
    EXPECT_GT(result.records[i].started, result.records[i - 1].started);
  }
}

TEST(InferenceServer, ElsaAvoidsSlowWorkerUnderTightSla) {
  const auto profile = MakeProfile();
  // SLA 5 ms: the 10 ms GPU(1) can never satisfy it; every query must go to
  // the GPU(7) even when GPU(1) idles.
  sched::ElsaScheduler elsa(profile, MsToTicks(5.0));
  auto config = Config({1, 7});
  InferenceServer server(config, profile, elsa, FixedLatency());
  const auto result = server.Run(MakeTrace(10, MsToTicks(2.5)));
  for (const auto& r : result.records) {
    EXPECT_EQ(r.worker_gpcs, 7) << "query " << r.id;
  }
}

TEST(InferenceServer, ElsaUsesSmallWorkerWhenSlackAllows) {
  const auto profile = MakeProfile();
  // SLA 50 ms: GPU(1)'s 10 ms fits easily -> Step A prefers it.
  sched::ElsaScheduler elsa(profile, MsToTicks(50.0));
  InferenceServer server(Config({1, 7}), profile, elsa, FixedLatency());
  const auto result = server.Run(MakeTrace(1, 0));
  EXPECT_EQ(result.records[0].worker_gpcs, 1);
}

TEST(InferenceServer, DeterministicAcrossRuns) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  auto run = [&] {
    InferenceServer server(Config({1, 7, 7}), profile, fifs, FixedLatency());
    return server.Run(MakeTrace(100, MsToTicks(0.7)));
  };
  const auto a = run();
  const auto b = run();
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].finished, b.records[i].finished);
    EXPECT_EQ(a.records[i].worker, b.records[i].worker);
  }
}

TEST(InferenceServer, NoiseChangesLatenciesButStaysDeterministic) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  auto config = Config({7});
  config.latency_noise_sigma = 0.2;
  auto run = [&] {
    InferenceServer server(config, profile, fifs, FixedLatency());
    return server.Run(MakeTrace(50, MsToTicks(5.0)));
  };
  const auto a = run();
  const auto b = run();
  bool any_differs_from_nominal = false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].finished, b.records[i].finished);  // same seed
    if (a.records[i].finished - a.records[i].started != MsToTicks(2.0)) {
      any_differs_from_nominal = true;
    }
  }
  EXPECT_TRUE(any_differs_from_nominal);
}

TEST(InferenceServer, FrontendDelaysDispatch) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  // Three workers so every query binds the moment it clears the frontend.
  auto config = Config({7, 7, 7});
  config.frontend.enabled = true;
  config.frontend.lanes = 1;
  config.frontend.cost_per_query = MsToTicks(1.0);
  InferenceServer server(config, profile, fifs, FixedLatency());
  const auto result = server.Run(MakeTrace(3, 0));
  // Single frontend lane serializes entry: dispatch at 1, 2, 3 ms.
  EXPECT_EQ(result.records[0].dispatched, MsToTicks(1.0));
  EXPECT_EQ(result.records[1].dispatched, MsToTicks(2.0));
  EXPECT_EQ(result.records[2].dispatched, MsToTicks(3.0));
}

TEST(InferenceServer, FrontendWithManyLanesIsTransparent) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  auto config = Config({7});
  config.frontend.enabled = true;
  config.frontend.lanes = 16;
  config.frontend.cost_per_query = MsToTicks(0.5);
  InferenceServer server(config, profile, fifs, FixedLatency());
  const auto result = server.Run(MakeTrace(3, MsToTicks(10.0)));
  for (const auto& r : result.records) {
    EXPECT_EQ(r.dispatched - r.arrival, MsToTicks(0.5));
  }
}

TEST(InferenceServer, RejectsEmptyPartitionList) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  EXPECT_THROW(InferenceServer(Config({}), profile, fifs, FixedLatency()),
               std::invalid_argument);
}

TEST(InferenceServer, RejectsNonDenseQueryIds) {
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({7}), profile, fifs, FixedLatency());
  std::vector<workload::Query> qs(1);
  qs[0].id = 5;
  workload::QueryTrace trace(std::move(qs));
  EXPECT_THROW(server.Run(trace), std::invalid_argument);
}

TEST(InferenceServer, AllQueriesComplete) {
  const auto profile = MakeProfile();
  sched::ElsaScheduler elsa(profile, MsToTicks(15.0));
  InferenceServer server(Config({1, 1, 7}), profile, elsa, FixedLatency());
  const auto result = server.Run(MakeTrace(500, MsToTicks(1.0)));
  for (const auto& r : result.records) {
    EXPECT_GT(r.finished, 0) << "query " << r.id << " never finished";
    EXPECT_GE(r.started, r.arrival);
    EXPECT_GT(r.finished, r.started);
  }
}

TEST(InferenceServer, ConservationNoDuplicateService) {
  // Each worker's service intervals must not overlap.
  const auto profile = MakeProfile();
  sched::FifsScheduler fifs;
  InferenceServer server(Config({1, 7}), profile, fifs, FixedLatency());
  const auto result = server.Run(MakeTrace(200, MsToTicks(0.9)));
  std::map<int, std::vector<std::pair<SimTime, SimTime>>> by_worker;
  for (const auto& r : result.records) {
    by_worker[r.worker].emplace_back(r.started, r.finished);
  }
  for (auto& [worker, spans] : by_worker) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << "worker " << worker << " overlaps at interval " << i;
    }
  }
}

}  // namespace
}  // namespace pe::sim
