#include "sim/worker.h"

#include <gtest/gtest.h>

namespace pe::sim {
namespace {

workload::Query Q(std::uint64_t id, int batch = 4) {
  workload::Query q;
  q.id = id;
  q.batch = batch;
  return q;
}

TEST(PartitionWorker, StartsIdle) {
  PartitionWorker w(0, 3);
  EXPECT_TRUE(w.idle());
  EXPECT_FALSE(w.busy());
  EXPECT_FALSE(w.CanStart());
  EXPECT_EQ(w.EstimatedWait(0), 0);
  EXPECT_EQ(w.gpcs(), 3);
}

TEST(PartitionWorker, EnqueueMakesStartable) {
  PartitionWorker w(0, 1);
  w.Enqueue(Q(1), MsToTicks(5.0));
  EXPECT_FALSE(w.idle());
  EXPECT_TRUE(w.CanStart());
  EXPECT_EQ(w.queue_length(), 1u);
  EXPECT_EQ(w.Head().id, 1u);
}

TEST(PartitionWorker, StartPopsHeadFifo) {
  PartitionWorker w(0, 1);
  w.Enqueue(Q(1), MsToTicks(5.0));
  w.Enqueue(Q(2), MsToTicks(5.0));
  const auto started = w.Start(100, MsToTicks(6.0));
  EXPECT_EQ(started.id, 1u);
  EXPECT_TRUE(w.busy());
  EXPECT_EQ(w.queue_length(), 1u);
  EXPECT_EQ(w.busy_until(), 100 + MsToTicks(6.0));
  EXPECT_EQ(w.current_started(), 100);
}

TEST(PartitionWorker, FinishFreesWorker) {
  PartitionWorker w(0, 1);
  w.Enqueue(Q(7), MsToTicks(5.0));
  w.Start(0, MsToTicks(5.0));
  const auto done = w.Finish();
  EXPECT_EQ(done.id, 7u);
  EXPECT_FALSE(w.busy());
  EXPECT_TRUE(w.idle());
}

TEST(PartitionWorker, EstimatedWaitSumsQueue) {
  PartitionWorker w(0, 1);
  w.Enqueue(Q(1), MsToTicks(5.0));
  w.Enqueue(Q(2), MsToTicks(3.0));
  EXPECT_EQ(w.EstimatedWait(0), MsToTicks(8.0));
}

TEST(PartitionWorker, EstimatedWaitUsesElapsedTimestamp) {
  // Eq. 1: Tremaining,current = Testimated,current - Telapsed,current.
  PartitionWorker w(0, 1);
  w.Enqueue(Q(1), MsToTicks(10.0));
  w.Start(0, MsToTicks(10.0));
  w.Enqueue(Q(2), MsToTicks(4.0));
  // 6 ms into the 10 ms query: remaining 4 + queued 4 = 8 ms.
  EXPECT_EQ(w.EstimatedWait(MsToTicks(6.0)), MsToTicks(8.0));
}

TEST(PartitionWorker, EstimatedRemainderNeverNegative) {
  // The actual execution can run longer than the estimate; the estimated
  // remainder clamps at zero rather than going negative.
  PartitionWorker w(0, 1);
  w.Enqueue(Q(1), MsToTicks(10.0));
  w.Start(0, MsToTicks(20.0));  // actual is twice the estimate
  EXPECT_EQ(w.EstimatedWait(MsToTicks(15.0)), 0);
}

TEST(PartitionWorker, SnapshotReflectsState) {
  PartitionWorker w(3, 2);
  auto s = w.Snapshot(0);
  EXPECT_EQ(s.index, 3);
  EXPECT_EQ(s.gpcs, 2);
  EXPECT_TRUE(s.idle);
  EXPECT_EQ(s.queue_length, 0u);

  w.Enqueue(Q(1), MsToTicks(2.0));
  w.Start(0, MsToTicks(2.0));
  w.Enqueue(Q(2), MsToTicks(2.0));
  s = w.Snapshot(MsToTicks(1.0));
  EXPECT_FALSE(s.idle);
  EXPECT_EQ(s.queue_length, 1u);
  EXPECT_EQ(s.wait_ticks, MsToTicks(3.0));  // 1 remaining + 2 queued
}

TEST(PartitionWorker, QueueAccountingAcrossManyQueries) {
  PartitionWorker w(0, 1);
  SimTime now = 0;
  for (int i = 0; i < 100; ++i) w.Enqueue(Q(i), MsToTicks(1.0));
  EXPECT_EQ(w.EstimatedWait(0), MsToTicks(100.0));
  for (int i = 0; i < 100; ++i) {
    w.Start(now, MsToTicks(1.0));
    now += MsToTicks(1.0);
    w.Finish();
  }
  EXPECT_TRUE(w.idle());
  EXPECT_EQ(w.EstimatedWait(now), 0);
}

}  // namespace
}  // namespace pe::sim
